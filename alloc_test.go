package fairrank

import (
	"context"
	"fmt"
	"testing"
)

// TestDoSteadyStateZeroAllocPerDraw pins the allocation-free draw path:
// on a warm Ranker the marginal heap cost of a draw must be zero — all
// per-draw state (sample buffers, criterion scratch, RNGs) comes from
// pools built per request or cached per size. Per-request setup may
// allocate; per-draw must not.
//
// The measurement is differential: the same request at Samples = 1 and
// Samples = 1+extraDraws, so every per-request constant (instance
// build, result assembly, diagnostics) cancels and only the per-draw
// marginal remains. If pooling breaks, this fails loudly with the
// per-draw allocation count so the offending path is obvious.
func TestDoSteadyStateZeroAllocPerDraw(t *testing.T) {
	const n = 64
	const extraDraws = 100
	cases := []struct {
		name      string
		criterion Criterion
		noise     Noise // "" = the default Mallows mechanism
		theta     float64
		topK      int // 0 = full ranking
	}{
		{"ndcg/full", CriterionNDCG, "", 1.2, 0},
		{"ndcg/topk", CriterionNDCG, "", 1.2, 8},
		{"kt/full", CriterionKT, "", 1.2, 0},
		{"kt/topk", CriterionKT, "", 1.2, 8},
		{"uniform/topk", CriterionNDCG, "", 0, 8},
		{"gmallows/full", CriterionNDCG, NoiseGMallows, 1.2, 0},
		{"gmallows/topk", CriterionNDCG, NoiseGMallows, 1.2, 8},
		{"plackett-luce/full", CriterionNDCG, NoisePlackettLuce, 1.2, 0},
		{"plackett-luce/topk", CriterionNDCG, NoisePlackettLuce, 1.2, 8},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r, err := NewRanker(Config{Algorithm: AlgorithmMallowsBest, Criterion: c.criterion, Noise: c.noise})
			if err != nil {
				t.Fatal(err)
			}
			cands := pool(n)
			run := func(samples int) func() {
				req := Request{
					Candidates: cands,
					Theta:      &c.theta,
					Samples:    &samples,
					Seed:       sptr(11),
				}
				if c.topK > 0 {
					req.TopK = iptr(c.topK)
				}
				return func() {
					if _, err := r.Do(context.Background(), req); err != nil {
						t.Fatal(err)
					}
				}
			}
			// Warm the caches off the measurement: tables, discounts,
			// scratch pools, RNG pool.
			run(1)()
			base := testing.AllocsPerRun(20, run(1))
			long := testing.AllocsPerRun(20, run(1+extraDraws))
			perDraw := (long - base) / extraDraws
			if perDraw >= 0.5 {
				t.Fatal(allocReport(perDraw, base, long))
			}
		})
	}
}

// allocReport spells out the failure so a pooling regression is
// diagnosable from the test log alone.
func allocReport(perDraw, base, long float64) string {
	return fmt.Sprintf(
		"steady-state Do allocates %.2f heap objects PER DRAW (%.1f allocs at 1 sample vs %.1f at 101) — the draw path must be allocation-free; look for a buffer, scratch slice, or closure that escaped the per-request pools into the best-of-m loop",
		perDraw, base, long)
}
