package fairrank_test

// Tests for the algorithm & noise registry: registration validation,
// ErrUnknown* classification at the library layer, custom strategies
// ranking end to end through Ranker.Do, and Register racing Do (the
// latter meaningful under `go test -race`, which CI runs).
//
// Everything here uses only the public API — these tests double as the
// proof that a third-party package could do the same.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	fairrank "repro"
)

// registerOnce registers an algorithm, tolerating the duplicate error a
// repeated in-process run (go test -count=2) produces — the registry is
// process-global and first-registration-wins.
func registerOnce(t *testing.T, info fairrank.AlgorithmInfo, f fairrank.Factory) {
	t.Helper()
	if err := fairrank.Register(info, f); err != nil && !errors.Is(err, fairrank.ErrDuplicateAlgorithm) {
		t.Fatal(err)
	}
}

// registryPool builds a two-group pool with group-biased scores.
func registryPool(n int) []fairrank.Candidate {
	out := make([]fairrank.Candidate, n)
	for i := range out {
		g := "a"
		if i%2 == 1 {
			g = "b"
		}
		out[i] = fairrank.Candidate{ID: "r" + strconv.Itoa(i), Score: float64(n - i), Group: g}
	}
	return out
}

// reverseStrategy ranks worst-first relative to the central ranking — a
// deliberately simple, deterministic custom Strategy.
var reverseStrategy = fairrank.StrategyFunc(func(in *fairrank.Instance, _ *rand.Rand) ([]int, error) {
	c := in.Central()
	for i, j := 0, len(c)-1; i < j; i, j = i+1, j-1 {
		c[i], c[j] = c[j], c[i]
	}
	return c, nil
})

func TestRegisterValidation(t *testing.T) {
	if err := fairrank.Register(fairrank.AlgorithmInfo{}, nil); err == nil {
		t.Error("accepted an empty algorithm name")
	}
	if err := fairrank.Register(fairrank.AlgorithmInfo{Name: "test-nofactory"}, nil); err == nil {
		t.Error("accepted a nil factory for a non-sampling algorithm")
	}
	if err := fairrank.Register(fairrank.AlgorithmInfo{Name: "test-badgroups", MinGroups: 3, MaxGroups: 2},
		func(fairrank.Config) (fairrank.Strategy, error) { return reverseStrategy, nil }); err == nil {
		t.Error("accepted MinGroups > MaxGroups")
	}
	if err := fairrank.Register(fairrank.AlgorithmInfo{Name: "test-badnoise", Sampling: true, Noise: "no-such-noise"}, nil); !errors.Is(err, fairrank.ErrUnknownNoise) {
		t.Errorf("pinning an unregistered noise: got %v, want ErrUnknownNoise", err)
	}
	if err := fairrank.RegisterNoise(fairrank.NoiseInfo{Name: "test-nilsampler"}, nil); err == nil {
		t.Error("accepted a nil noise sampler")
	}
}

func TestRegisterDuplicateRejected(t *testing.T) {
	factory := func(fairrank.Config) (fairrank.Strategy, error) { return reverseStrategy, nil }
	info := fairrank.AlgorithmInfo{Name: "test-dup", Description: "first registration wins"}
	registerOnce(t, info, factory)
	if err := fairrank.Register(info, factory); !errors.Is(err, fairrank.ErrDuplicateAlgorithm) {
		t.Errorf("second Register: got %v, want ErrDuplicateAlgorithm", err)
	}
	// Built-in names are protected the same way.
	if err := fairrank.Register(fairrank.AlgorithmInfo{Name: string(fairrank.AlgorithmMallows)}, factory); !errors.Is(err, fairrank.ErrDuplicateAlgorithm) {
		t.Errorf("shadowing a built-in: got %v, want ErrDuplicateAlgorithm", err)
	}
	sampler := func(central []int, theta float64) (func(*rand.Rand) []int, error) {
		return func(*rand.Rand) []int { return append([]int(nil), central...) }, nil
	}
	if err := fairrank.RegisterNoise(fairrank.NoiseInfo{Name: "test-dupnoise"}, sampler); err != nil && !errors.Is(err, fairrank.ErrDuplicateNoise) {
		t.Fatal(err)
	}
	if err := fairrank.RegisterNoise(fairrank.NoiseInfo{Name: "test-dupnoise"}, sampler); !errors.Is(err, fairrank.ErrDuplicateNoise) {
		t.Errorf("second RegisterNoise: got %v, want ErrDuplicateNoise", err)
	}
}

func TestUnknownNamesSurfaceSentinels(t *testing.T) {
	if _, err := fairrank.NewRanker(fairrank.Config{Algorithm: "no-such-algorithm"}); !errors.Is(err, fairrank.ErrUnknownAlgorithm) {
		t.Errorf("NewRanker: got %v, want ErrUnknownAlgorithm", err)
	}
	if _, err := fairrank.Rank(registryPool(6), fairrank.Config{Algorithm: "no-such-algorithm"}); !errors.Is(err, fairrank.ErrUnknownAlgorithm) {
		t.Errorf("Rank: got %v, want ErrUnknownAlgorithm", err)
	}
	if _, err := fairrank.NewRanker(fairrank.Config{Noise: "no-such-noise"}); !errors.Is(err, fairrank.ErrUnknownNoise) {
		t.Errorf("NewRanker: got %v, want ErrUnknownNoise", err)
	}
	r, err := fairrank.NewRanker(fairrank.Config{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.Do(context.Background(), fairrank.Request{Candidates: registryPool(6), Noise: "no-such-noise"})
	if !errors.Is(err, fairrank.ErrUnknownNoise) {
		t.Errorf("Do with unknown noise override: got %v, want ErrUnknownNoise", err)
	}
}

// A custom Strategy registered through the public API must rank end to
// end through Ranker.Do, appear in Algorithms(), and audit like any
// built-in.
func TestCustomStrategyRankable(t *testing.T) {
	registerOnce(t, fairrank.AlgorithmInfo{
		Name:          "test-reverse",
		Description:   "central ranking reversed (test strategy)",
		Deterministic: true,
	}, func(cfg fairrank.Config) (fairrank.Strategy, error) {
		return reverseStrategy, nil
	})
	found := false
	for _, a := range fairrank.Algorithms() {
		if a.Name == "test-reverse" {
			found = true
		}
	}
	if !found {
		t.Fatal("registered algorithm missing from Algorithms()")
	}
	r, err := fairrank.NewRanker(fairrank.Config{Algorithm: "test-reverse", Central: fairrank.CentralScoreOrder})
	if err != nil {
		t.Fatal(err)
	}
	pool := registryPool(10)
	res, err := r.Do(context.Background(), fairrank.Request{Candidates: pool})
	if err != nil {
		t.Fatal(err)
	}
	// The score-order central reversed is worst-first.
	for i, c := range res.Ranking {
		if want := pool[len(pool)-1-i].ID; c.ID != want {
			t.Fatalf("rank %d: got %s, want %s", i, c.ID, want)
		}
	}
	if d := res.Diagnostics; d.Algorithm != "test-reverse" || d.DrawsEvaluated != 0 || d.Noise != "" {
		t.Errorf("diagnostics: %+v", d)
	}
}

// A defective Strategy must surface as an error, not as a corrupted
// ranking or an out-of-range panic in the audit.
func TestDefectiveStrategyRejected(t *testing.T) {
	cases := map[string]fairrank.StrategyFunc{
		"test-short": func(in *fairrank.Instance, _ *rand.Rand) ([]int, error) {
			return in.Central()[:in.N()-1], nil
		},
		"test-dupidx": func(in *fairrank.Instance, _ *rand.Rand) ([]int, error) {
			c := in.Central()
			c[0] = c[1]
			return c, nil
		},
	}
	for name, strat := range cases {
		strat := strat
		registerOnce(t, fairrank.AlgorithmInfo{Name: name, Description: "defective test strategy"},
			func(fairrank.Config) (fairrank.Strategy, error) { return strat, nil })
		r, err := fairrank.NewRanker(fairrank.Config{Algorithm: fairrank.Algorithm(name)})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Do(context.Background(), fairrank.Request{Candidates: registryPool(8)}); err == nil {
			t.Errorf("%s: defective output accepted", name)
		}
	}
}

// Registry metadata gates dispatch: an algorithm declaring group bounds
// is rejected cleanly outside them.
func TestGroupBoundsEnforced(t *testing.T) {
	three := registryPool(9)
	three[0].Group = "c"
	if _, err := fairrank.Rank(three, fairrank.Config{Algorithm: fairrank.AlgorithmGrBinary}); err == nil {
		t.Error("grbinary accepted three groups")
	}
}

// pl-best is the engine-managed best-of-m loop with the mechanism
// pinned to Plackett–Luce, so it must match mallows-best with the noise
// override, draw for draw.
func TestPLBestMatchesNoiseOverride(t *testing.T) {
	pool := registryPool(30)
	seed := int64(11)
	pl, err := fairrank.NewRanker(fairrank.Config{Algorithm: fairrank.AlgorithmPlackettLuce, Theta: 0.3, Samples: 8, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	overridden, err := fairrank.NewRanker(fairrank.Config{Algorithm: fairrank.AlgorithmMallowsBest, Noise: fairrank.NoisePlackettLuce, Theta: 0.3, Samples: 8, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	a, err := pl.Do(context.Background(), fairrank.Request{Candidates: pool})
	if err != nil {
		t.Fatal(err)
	}
	b, err := overridden.Do(context.Background(), fairrank.Request{Candidates: pool})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Ranking, b.Ranking) {
		t.Error("pl-best diverged from mallows-best with the plackett-luce noise override")
	}
	if a.Diagnostics.Noise != fairrank.NoisePlackettLuce || a.Diagnostics.DrawsEvaluated != 8 {
		t.Errorf("pl-best diagnostics: %+v", a.Diagnostics)
	}
}

// Every registered noise mechanism must serve deterministically (equal
// seeds ⇒ equal rankings) and invariantly across DoParallel worker
// counts.
func TestNoiseMechanismsDeterministic(t *testing.T) {
	pool := registryPool(40)
	for _, n := range fairrank.Noises() {
		n := n
		t.Run(n.Name, func(t *testing.T) {
			r, err := fairrank.NewRanker(fairrank.Config{Theta: 0.5, Samples: 6})
			if err != nil {
				t.Fatal(err)
			}
			seed := int64(3)
			req := fairrank.Request{Candidates: pool, Noise: fairrank.Noise(n.Name), Seed: &seed}
			first, err := r.Do(context.Background(), req)
			if err != nil {
				t.Fatal(err)
			}
			again, err := r.Do(context.Background(), req)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(first.Ranking, again.Ranking) {
				t.Fatal("equal seeds diverged")
			}
			if first.Diagnostics.Noise != fairrank.Noise(n.Name) {
				t.Fatalf("diagnostics noise = %q", first.Diagnostics.Noise)
			}
			base, err := r.DoParallel(context.Background(), req, 1)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 5, 16} {
				got, err := r.DoParallel(context.Background(), req, workers)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got.Ranking, base.Ranking) {
					t.Fatalf("workers=%d changed the ranking", workers)
				}
			}
		})
	}
}

var raceSeq atomic.Int64

// Register must be safe while Rankers serve traffic: CI runs this under
// -race.
func TestRegisterRacingDo(t *testing.T) {
	r, err := fairrank.NewRanker(fairrank.Config{Samples: 4})
	if err != nil {
		t.Fatal(err)
	}
	pool := registryPool(20)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				// raceSeq keeps names unique across repeated in-process
				// runs (go test -count=N), so every pass registers live.
				err := fairrank.Register(fairrank.AlgorithmInfo{
					Name:        fmt.Sprintf("test-race-%d", raceSeq.Add(1)),
					Description: "race test strategy",
				}, func(fairrank.Config) (fairrank.Strategy, error) { return reverseStrategy, nil })
				if err != nil {
					errs <- err
					return
				}
				fairrank.Algorithms() // concurrent snapshot reads
			}
		}(g)
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				if _, err := r.Do(context.Background(), fairrank.Request{Candidates: pool}); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
