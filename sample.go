package fairrank

import (
	"context"
	"fmt"
)

// Sample serves one request draws times, calling observe with each
// result in draw order. It is the multi-draw hook behind statistical
// verification (internal/conformance) and any caller that studies the
// distribution of rankings rather than a single one: the candidate pool
// is validated and the ranking instance (groups, constraints, central
// ranking) is assembled once, then reused for every draw, so sampling
// thousands of rankings costs thousands of draws — not thousands of
// instance builds or HTTP round-trips through the serving layer.
//
// Draw i runs with the resolved request's seed replaced by
// SampleSeed(seed, i), a splitmix64 mix: the per-draw streams are
// decorrelated, the whole sweep is reproducible from the one resolved
// seed, and any single draw can be replayed in isolation through Do by
// setting Request.Seed to the Diagnostics.Seed the observed result
// carried. Two Sample calls with equal resolved requests observe
// identical result sequences.
//
// ctx is checked before every draw (and, for the sampling algorithms,
// between their inner best-of-m draws); a cancelled context aborts the
// sweep with ctx.Err(). A non-nil error from observe aborts the sweep
// and is returned verbatim.
func (r *Ranker) Sample(ctx context.Context, req Request, draws int, observe func(draw int, res *Result) error) error {
	if draws < 1 {
		return fmt.Errorf("fairrank: sample draws = %d, want ≥ 1", draws)
	}
	if observe == nil {
		return fmt.Errorf("fairrank: nil observe func")
	}
	cfg, topK, err := r.resolve(req)
	if err != nil {
		return err
	}
	in, err := buildInstance(req.Candidates, cfg)
	if err != nil {
		return err
	}
	if err := r.entry.info.checkGroups(in.Groups.NumGroups()); err != nil {
		return err
	}
	base := cfg.Seed
	for i := 0; i < draws; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		cfg.Seed = SampleSeed(base, i)
		out, score, scored, n, noise, err := r.rankInstance(ctx, in, cfg, topK, 0)
		if err != nil {
			return fmt.Errorf("fairrank: sample draw %d (seed %d): %w", i, cfg.Seed, err)
		}
		diag, err := diagnose(in, cfg, out, topK, score, scored, n, noise)
		if err != nil {
			return fmt.Errorf("fairrank: sample draw %d (seed %d): %w", i, cfg.Seed, err)
		}
		res := &Result{
			Ranking:     pickCandidates(req.Candidates, out[:topK]),
			Diagnostics: diag,
		}
		if err := observe(i, res); err != nil {
			return err
		}
	}
	return nil
}

// SampleSeed derives the seed of Sample's draw i from the resolved
// request seed. Exported so a draw flagged by a verification sweep can
// be replayed in isolation (set Request.Seed to SampleSeed(seed, i) and
// call Do) without rerunning the sweep.
func SampleSeed(seed int64, draw int) int64 { return mixSeed(seed, draw) }
