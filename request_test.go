package fairrank

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
	"testing"
	"time"
)

func fptr(v float64) *float64 { return &v }
func iptr(v int) *int         { return &v }
func sptr(v int64) *int64     { return &v }

// The compatibility contract of the redesign: for every algorithm, the
// legacy package-level Rank, the legacy Ranker.Rank, and the new
// Ranker.Do return bit-identical rankings for equal seeds.
func TestDoMatchesLegacyAPIs(t *testing.T) {
	configs := []Config{
		{Algorithm: AlgorithmMallows, Theta: 0.5},
		{Algorithm: AlgorithmMallowsBest},
		{Algorithm: AlgorithmMallowsBest, Criterion: CriterionKT, Theta: 2},
		{Algorithm: AlgorithmMallowsBest, Central: CentralScoreOrder, Samples: 5},
		{Algorithm: AlgorithmMallowsBest, Central: CentralFairDCG, Criterion: CriterionKT},
		{Algorithm: AlgorithmScoreSorted},
		{Algorithm: AlgorithmDetConstSort},
		{Algorithm: AlgorithmIPF},
		{Algorithm: AlgorithmGrBinary},
		{Algorithm: AlgorithmILP},
	}
	cands := pool(24) // two groups, so grbinary is rankable too
	for _, cfg := range configs {
		cfg := cfg
		t.Run(string(cfg.Algorithm)+"/"+string(cfg.Criterion), func(t *testing.T) {
			r, err := NewRanker(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for seed := int64(0); seed < 3; seed++ {
				cfgSeeded := cfg
				cfgSeeded.Seed = seed
				want, err := Rank(cands, cfgSeeded)
				if err != nil {
					t.Fatal(err)
				}
				legacy, err := r.Rank(cands, seed)
				if err != nil {
					t.Fatal(err)
				}
				res, err := r.Do(context.Background(), Request{Candidates: cands, Seed: sptr(seed)})
				if err != nil {
					t.Fatal(err)
				}
				if !sameRanking(legacy, want) {
					t.Fatalf("seed %d: Ranker.Rank diverged from Rank", seed)
				}
				if !sameRanking(res.Ranking, want) {
					t.Fatalf("seed %d: Do diverged from Rank: %v vs %v", seed, ids(res.Ranking), ids(want))
				}
			}
		})
	}
}

// Per-request overrides must behave exactly as if the override values
// had been baked into the configuration: an engine constructed with one
// Config, asked with overrides, matches a legacy Rank with the merged
// Config — and serving mixed overrides through one engine causes no
// cross-request contamination.
func TestDoOverridesMatchMergedConfig(t *testing.T) {
	base := Config{Algorithm: AlgorithmMallowsBest, Theta: 2, Samples: 4, Tolerance: 0.2}
	r, err := NewRanker(base)
	if err != nil {
		t.Fatal(err)
	}
	cands := pool(30)
	cases := []struct {
		name   string
		req    Request
		merged Config
	}{
		{
			"theta",
			Request{Candidates: cands, Theta: fptr(0.5), Seed: sptr(3)},
			Config{Algorithm: AlgorithmMallowsBest, Theta: 0.5, Samples: 4, Tolerance: 0.2, Seed: 3},
		},
		{
			"samples+criterion",
			Request{Candidates: cands, Samples: iptr(9), Criterion: CriterionKT, Seed: sptr(5)},
			Config{Algorithm: AlgorithmMallowsBest, Theta: 2, Samples: 9, Criterion: CriterionKT, Tolerance: 0.2, Seed: 5},
		},
		{
			"tolerance",
			Request{Candidates: cands, Tolerance: fptr(0.05), Seed: sptr(7)},
			Config{Algorithm: AlgorithmMallowsBest, Theta: 2, Samples: 4, Tolerance: 0.05, Seed: 7},
		},
	}
	// Interleave: run all cases twice so later requests exercise caches
	// warmed by earlier, differently-overridden requests.
	for rep := 0; rep < 2; rep++ {
		for _, tc := range cases {
			want, err := Rank(cands, tc.merged)
			if err != nil {
				t.Fatal(err)
			}
			res, err := r.Do(context.Background(), tc.req)
			if err != nil {
				t.Fatal(err)
			}
			if !sameRanking(res.Ranking, want) {
				t.Fatalf("rep %d, %s: override result diverged from merged config", rep, tc.name)
			}
		}
	}
}

// θ = 0 and tolerance = 0 — unexpressible through Config's zero-means-
// default fields — are real values through Request.
func TestDoExplicitZeroValues(t *testing.T) {
	r, err := NewRanker(Config{Algorithm: AlgorithmMallows, Theta: 30})
	if err != nil {
		t.Fatal(err)
	}
	cands := pool(20)
	concentrated, err := r.Do(context.Background(), Request{Candidates: cands, Seed: sptr(1)})
	if err != nil {
		t.Fatal(err)
	}
	uniform, err := r.Do(context.Background(), Request{Candidates: cands, Theta: fptr(0), Seed: sptr(1)})
	if err != nil {
		t.Fatal(err)
	}
	if uniform.Diagnostics.Theta != 0 {
		t.Errorf("θ = 0 resolved to %v", uniform.Diagnostics.Theta)
	}
	// θ = 30 reproduces the central (KT ≈ 0); θ = 0 draws uniformly
	// (expected KT = n(n−1)/4 = 95 at n = 20). Deterministic under the
	// fixed seed.
	if uniform.Diagnostics.CentralKendallTau <= concentrated.Diagnostics.CentralKendallTau {
		t.Errorf("uniform KT %d not above concentrated KT %d",
			uniform.Diagnostics.CentralKendallTau, concentrated.Diagnostics.CentralKendallTau)
	}
	exact, err := r.Do(context.Background(), Request{Candidates: cands, Tolerance: fptr(0), Seed: sptr(1)})
	if err != nil {
		t.Fatal(err)
	}
	if exact.Diagnostics.Tolerance != 0 {
		t.Errorf("tolerance = 0 resolved to %v", exact.Diagnostics.Tolerance)
	}
}

func TestDoTopK(t *testing.T) {
	r, err := NewRanker(Config{})
	if err != nil {
		t.Fatal(err)
	}
	cands := pool(18)
	top, err := r.Do(context.Background(), Request{Candidates: cands, TopK: iptr(5), Seed: sptr(4)})
	if err != nil {
		t.Fatal(err)
	}
	if len(top.Ranking) != 5 || top.Diagnostics.TopK != 5 {
		t.Fatalf("TopK=5 returned %d entries (diag %d)", len(top.Ranking), top.Diagnostics.TopK)
	}
	// The default algorithm runs best-of-m selection, which for TopK
	// requests is prefix-scoped and served by the truncated draw path.
	// The full-length reference path must produce the identical result —
	// ranking and diagnostics — for the same request.
	ref, err := NewRanker(Config{})
	if err != nil {
		t.Fatal(err)
	}
	ref.forceFullDraws = true
	want, err := ref.Do(context.Background(), Request{Candidates: cands, TopK: iptr(5), Seed: sptr(4)})
	if err != nil {
		t.Fatal(err)
	}
	if !sameRanking(top.Ranking, want.Ranking) {
		t.Error("truncated draw path and full reference path disagree on the TopK ranking")
	}
	if top.Diagnostics != want.Diagnostics {
		t.Errorf("truncated path diagnostics %+v, reference path %+v", top.Diagnostics, want.Diagnostics)
	}
	// With a single draw (no selection), the delivered prefix is the
	// prefix of the full ranking for equal seeds, and the audit agrees
	// with the standalone PPfairTopK over the full ranking.
	r1, err := NewRanker(Config{Algorithm: AlgorithmMallows})
	if err != nil {
		t.Fatal(err)
	}
	full, err := r1.Do(context.Background(), Request{Candidates: cands, Seed: sptr(4)})
	if err != nil {
		t.Fatal(err)
	}
	top1, err := r1.Do(context.Background(), Request{Candidates: cands, TopK: iptr(5), Seed: sptr(4)})
	if err != nil {
		t.Fatal(err)
	}
	if !sameRanking(top1.Ranking, full.Ranking[:5]) {
		t.Error("single-draw TopK ranking is not a prefix of the full ranking")
	}
	pp, err := PPfairTopK(full.Ranking, 5, full.Diagnostics.Tolerance)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(top1.Diagnostics.PPfair-pp) > 1e-9 {
		t.Errorf("diagnostics PPfair %v, PPfairTopK %v", top1.Diagnostics.PPfair, pp)
	}
	// Oversized TopK clamps to the pool.
	big, err := r.Do(context.Background(), Request{Candidates: cands, TopK: iptr(99), Seed: sptr(4)})
	if err != nil {
		t.Fatal(err)
	}
	if len(big.Ranking) != 18 {
		t.Errorf("TopK=99 over 18 candidates returned %d entries", len(big.Ranking))
	}
}

// Diagnostics must agree with the standalone metric helpers evaluated
// on the returned ranking.
func TestDoDiagnosticsConsistent(t *testing.T) {
	r, err := NewRanker(Config{Algorithm: AlgorithmMallowsBest, Central: CentralScoreOrder, Samples: 6})
	if err != nil {
		t.Fatal(err)
	}
	cands := pool(16)
	res, err := r.Do(context.Background(), Request{Candidates: cands, Seed: sptr(8)})
	if err != nil {
		t.Fatal(err)
	}
	d := res.Diagnostics
	if d.DrawsEvaluated != 6 || d.Samples != 6 {
		t.Errorf("draws = %d, samples = %d, want 6", d.DrawsEvaluated, d.Samples)
	}
	ndcg, err := NDCG(res.Ranking)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.NDCG-ndcg) > 1e-12 {
		t.Errorf("diagnostics NDCG %v, metric helper %v", d.NDCG, ndcg)
	}
	// The score-order central is observable from outside: KT to it must
	// match the standalone KendallTau.
	byScore, err := Rank(cands, Config{Algorithm: AlgorithmScoreSorted})
	if err != nil {
		t.Fatal(err)
	}
	kt, err := KendallTau(res.Ranking, byScore)
	if err != nil {
		t.Fatal(err)
	}
	if d.CentralKendallTau != kt {
		t.Errorf("diagnostics central KT %d, metric helper %d", d.CentralKendallTau, kt)
	}
	pp, err := PPfairTopK(res.Ranking, len(res.Ranking), d.Tolerance)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.PPfair-pp) > 1e-9 {
		t.Errorf("diagnostics PPfair %v, metric helper %v", d.PPfair, pp)
	}
	ii, err := InfeasibleIndex(res.Ranking, d.Tolerance)
	if err != nil {
		t.Fatal(err)
	}
	if d.InfeasibleIndex != ii {
		t.Errorf("diagnostics II %d, metric helper %d", d.InfeasibleIndex, ii)
	}
	// Deterministic algorithms evaluate no draws and still audit.
	det, err := NewRanker(Config{Algorithm: AlgorithmScoreSorted})
	if err != nil {
		t.Fatal(err)
	}
	sres, err := det.Do(context.Background(), Request{Candidates: cands})
	if err != nil {
		t.Fatal(err)
	}
	if sres.Diagnostics.DrawsEvaluated != 0 {
		t.Errorf("score draws = %d, want 0", sres.Diagnostics.DrawsEvaluated)
	}
	if sres.Diagnostics.NDCG != 1 {
		t.Errorf("score NDCG = %v, want 1", sres.Diagnostics.NDCG)
	}
}

// errAfterCtx reports cancellation after a fixed number of Err calls,
// deterministically exercising the mid-sampling abort paths that a
// timer-based cancel could only hit flakily.
type errAfterCtx struct {
	context.Context
	calls atomic.Int64
	after int64
}

func (c *errAfterCtx) Err() error {
	if c.calls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

func TestDoCancelledContext(t *testing.T) {
	r, err := NewRanker(Config{Algorithm: AlgorithmMallowsBest, Samples: 40})
	if err != nil {
		t.Fatal(err)
	}
	cands := pool(50)
	// Pre-cancelled: rejected before any ranking work.
	pre, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.Do(pre, Request{Candidates: cands}); !errors.Is(err, context.Canceled) {
		t.Errorf("Do(pre-cancelled) = %v, want context.Canceled", err)
	}
	if _, err := r.DoParallel(pre, Request{Candidates: cands}, 4); !errors.Is(err, context.Canceled) {
		t.Errorf("DoParallel(pre-cancelled) = %v, want context.Canceled", err)
	}
	// Cancelled mid-sampling: the best-of-m loops observe the context
	// between draws and abort.
	seq := &errAfterCtx{Context: context.Background(), after: 3}
	if _, err := r.Do(seq, Request{Candidates: cands}); !errors.Is(err, context.Canceled) {
		t.Errorf("Do(cancel mid-loop) = %v, want context.Canceled", err)
	}
	if got := seq.calls.Load(); got >= 40 {
		t.Errorf("sequential loop ran %d context checks, expected an early abort", got)
	}
	par := &errAfterCtx{Context: context.Background(), after: 3}
	if _, err := r.DoParallel(par, Request{Candidates: cands}, 4); !errors.Is(err, context.Canceled) {
		t.Errorf("DoParallel(cancel mid-loop) = %v, want context.Canceled", err)
	}
	// Deadline propagation through the real context type.
	dl, cancelDL := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancelDL()
	if _, err := r.Do(dl, Request{Candidates: cands}); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Do(expired deadline) = %v, want context.DeadlineExceeded", err)
	}
}

func TestRequestValidation(t *testing.T) {
	r, err := NewRanker(Config{})
	if err != nil {
		t.Fatal(err)
	}
	cands := pool(8)
	bad := []Request{
		{Candidates: cands, Theta: fptr(-1)},
		{Candidates: cands, Theta: fptr(math.NaN())},
		{Candidates: cands, Samples: iptr(0)},
		{Candidates: cands, Samples: iptr(-2)},
		{Candidates: cands, Criterion: "vibes"},
		{Candidates: cands, Tolerance: fptr(-0.5)},
		{Candidates: cands, Tolerance: fptr(math.NaN())},
		{Candidates: cands, TopK: iptr(0)},
		{Candidates: cands, TopK: iptr(-3)},
	}
	for i, req := range bad {
		if _, err := r.Do(context.Background(), req); err == nil {
			t.Errorf("request %d accepted: %+v", i, req)
		}
	}
}
