// Package fairrank post-processes rankings for proportionate fairness,
// implementing "Fairness in Ranking: Robustness through Randomization
// without the Protected Attribute" (Kliachkin, Psaroudaki, Mareček,
// Fotakis; ICDE 2024) together with the baselines it evaluates.
//
// The headline method admixes Mallows noise to a ranking: sample m
// permutations from a Mallows distribution centred on a (weakly fair)
// baseline ranking and keep the best under a quality criterion. The
// mechanism never reads the protected attribute, so the fairness it
// induces is robust to attributes that are unknown at ranking time.
//
// # Quick start
//
//	candidates := []fairrank.Candidate{
//		{ID: "alice", Score: 9.1, Group: "f"},
//		{ID: "bob", Score: 8.7, Group: "m"},
//		// …
//	}
//	ranked, err := fairrank.Rank(candidates, fairrank.Config{
//		Algorithm: fairrank.AlgorithmMallowsBest,
//		Theta:     1,
//		Samples:   15,
//		Seed:      42,
//	})
//
// # Serving
//
// Rank rebuilds everything per call. For sustained traffic, construct a
// Ranker once and serve Requests through Do:
//
//	r, err := fairrank.NewRanker(fairrank.Config{})
//	// per request:
//	theta, seed := 0.5, int64(42)
//	res, err := r.Do(ctx, fairrank.Request{
//		Candidates: candidates,
//		Theta:      &theta, // per-request override; 0 is a real value
//		Seed:       &seed,
//	})
//	// res.Ranking, res.Diagnostics.{NDCG, PPfair, InfeasibleIndex, …}
//
// Request carries per-request overrides (Theta, Samples, Criterion,
// Tolerance, TopK, Seed) as pointer fields, so explicit zeros — θ = 0
// uniform noise, tolerance = 0 exact proportionality — are expressible;
// Config's zero-valued fields instead mean "use the default". Result
// returns the ranking together with diagnostics computed from state the
// engine already holds: NDCG, draws evaluated, Kendall tau to the
// central ranking, and a PPfair/InfeasibleIndex fairness audit of the
// delivered prefix. Do honors context cancellation and deadlines
// between Mallows draws.
//
// A Ranker returns exactly what Rank would for the same resolved
// parameters and seed while caching Mallows insertion-probability
// tables per (pool size, θ) — so mixed per-request dispersions share
// the cache — plus the DCG discount table, permutation scratch
// buffers, and pooled RNGs. DoParallel additionally fans the best-of-m
// draws across goroutines, deterministically in the seed. The legacy
// Ranker.Rank/RankParallel remain as thin wrappers over this path. The
// HTTP serving layer in internal/service and cmd/fairrankd builds on
// this type.
//
// Alongside the Mallows mechanism the package exposes the evaluated
// baselines (DetConstSort, ApproxMultiValuedIPF, GrBinaryIPF, and the
// exact DCG-optimal fair ranking of the paper's ILP) and the metrics of
// the evaluation: NDCG, Kendall tau, the Two-Sided Infeasible Index and
// the percentage of P-fair positions.
//
// # Extension points
//
// Algorithm dispatch is a registry, not a switch: every algorithm —
// including all built-ins — is an AlgorithmInfo metadata record
// (attribute-blind, deterministic, supported group counts, applicable
// tunables) plus either a Strategy factory or, for the Algorithm-1
// sampling family, capability flags the engine interprets. Register
// adds one; it is immediately constructible by name through
// NewRanker/Rank, servable and cataloged by the HTTP layer
// (GET /v1/algorithms), and listed in the CLI usage — no dispatch table
// to edit anywhere. See ExampleRegister.
//
// The randomization mechanism of the sampling algorithms is likewise a
// registry axis (§VI of the paper proposes mechanisms beyond Mallows):
// Config.Noise / Request.Noise select among the registered mechanisms —
// built-ins "mallows", "gmallows", "plackett-luce" — and RegisterNoise
// adds more. AlgorithmPlackettLuce ("pl-best") pins the Plackett–Luce
// mechanism as a first-class algorithm. Unknown names fail with errors
// wrapping ErrUnknownAlgorithm / ErrUnknownNoise.
//
// Implementation lives under internal/; see README.md for install,
// configuration tables, and command usage, and docs/ARCHITECTURE.md for
// the package map and the data flow of a ranking request.
package fairrank
