// Package fairrank post-processes rankings for proportionate fairness,
// implementing "Fairness in Ranking: Robustness through Randomization
// without the Protected Attribute" (Kliachkin, Psaroudaki, Mareček,
// Fotakis; ICDE 2024) together with the baselines it evaluates.
//
// The headline method admixes Mallows noise to a ranking: sample m
// permutations from a Mallows distribution centred on a (weakly fair)
// baseline ranking and keep the best under a quality criterion. The
// mechanism never reads the protected attribute, so the fairness it
// induces is robust to attributes that are unknown at ranking time.
//
// # Quick start
//
//	candidates := []fairrank.Candidate{
//		{ID: "alice", Score: 9.1, Group: "f"},
//		{ID: "bob", Score: 8.7, Group: "m"},
//		// …
//	}
//	ranked, err := fairrank.Rank(candidates, fairrank.Config{
//		Algorithm: fairrank.AlgorithmMallowsBest,
//		Theta:     1,
//		Samples:   15,
//		Seed:      42,
//	})
//
// Alongside the Mallows mechanism the package exposes the evaluated
// baselines (DetConstSort, ApproxMultiValuedIPF, GrBinaryIPF, and the
// exact DCG-optimal fair ranking of the paper's ILP) and the metrics of
// the evaluation: NDCG, Kendall tau, the Two-Sided Infeasible Index and
// the percentage of P-fair positions.
//
// Implementation lives under internal/; see DESIGN.md for the system
// inventory and EXPERIMENTS.md for the reproduction of every table and
// figure.
package fairrank
