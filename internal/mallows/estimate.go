package mallows

import (
	"fmt"
	"sort"

	"repro/internal/perm"
	"repro/internal/rankdist"
)

// EstimateTheta returns the maximum-likelihood dispersion for samples
// drawn around a known center. For the Mallows model the likelihood in θ
// depends on the data only through the mean Kendall tau distance d̄, and
// the MLE solves E_θ[D] = d̄, which is strictly decreasing in θ; we
// bisect.
//
// If d̄ is at least the uniform-distribution mean n(n−1)/4 the MLE is
// θ = 0; if d̄ = 0 the likelihood increases without bound and the
// function returns MaxTheta.
func EstimateTheta(samples []perm.Perm, center perm.Perm) (float64, error) {
	if len(samples) == 0 {
		return 0, fmt.Errorf("mallows: no samples")
	}
	var total int64
	for i, s := range samples {
		d, err := rankdist.KendallTau(s, center)
		if err != nil {
			return 0, fmt.Errorf("mallows: sample %d: %w", i, err)
		}
		total += d
	}
	n := len(center)
	mean := float64(total) / float64(len(samples))
	if mean >= ExpectedDistance(n, 0) {
		return 0, nil
	}
	if mean == 0 {
		return MaxTheta, nil
	}
	lo, hi := 0.0, MaxTheta
	for iter := 0; iter < 200; iter++ {
		mid := (lo + hi) / 2
		if ExpectedDistance(n, mid) > mean {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// MaxTheta caps the dispersion returned by EstimateTheta; at θ = 50 the
// probability of even a single discordant pair is below e^{−50} ≈ 2e−22.
const MaxTheta = 50.0

// EstimateCenterBorda returns the Borda-count consensus of the samples:
// items ordered by their mean rank. Borda is a consistent estimator of
// the Mallows center and a 5-approximation for Kemeny aggregation; exact
// center MLE is NP-hard in general.
func EstimateCenterBorda(samples []perm.Perm) (perm.Perm, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("mallows: no samples")
	}
	n := len(samples[0])
	sums := make([]float64, n)
	for i, s := range samples {
		if len(s) != n {
			return nil, fmt.Errorf("mallows: sample %d has %d items, want %d", i, len(s), n)
		}
		for r, item := range s {
			sums[item] += float64(r)
		}
	}
	center := perm.Identity(n)
	sort.SliceStable(center, func(a, b int) bool { return sums[center[a]] < sums[center[b]] })
	return center, nil
}

// Fit estimates both center (Borda) and dispersion (MLE given that
// center) from samples.
func Fit(samples []perm.Perm) (*Model, error) {
	center, err := EstimateCenterBorda(samples)
	if err != nil {
		return nil, err
	}
	theta, err := EstimateTheta(samples, center)
	if err != nil {
		return nil, err
	}
	return New(center, theta)
}
