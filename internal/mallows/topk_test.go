package mallows

import (
	"math/rand"
	"testing"

	"repro/internal/perm"
)

// TestSampleTopKPrefixBitIdentity pins the tentpole contract at the
// sampler level: for equal seeds, SampleTopKInto's delivered prefix is
// bit-identical to the first min(k, n) entries of the full insertion
// path, across sizes, dispersions (including the θ = 0 uniform limit),
// and window widths including k = 0, 1, n, and k > n.
func TestSampleTopKPrefixBitIdentity(t *testing.T) {
	sizes := []int{0, 1, 2, 3, 7, 25, 64, 200}
	thetas := []float64{0, 1e-9, 0.05, 0.5, 1, 3, 25, 700}
	for _, n := range sizes {
		ks := []int{0, 1, 2, n / 2, n - 1, n, n + 1, n + 7}
		for _, theta := range thetas {
			rng := rand.New(rand.NewSource(int64(n)*1000 + int64(theta*10)))
			m, err := New(perm.Random(n, rng), theta)
			if err != nil {
				t.Fatal(err)
			}
			tb := m.Tables()
			for _, k := range ks {
				if k < 0 {
					continue
				}
				for seed := int64(0); seed < 5; seed++ {
					full := m.SampleInto(tb, make(perm.Perm, 0, n), rand.New(rand.NewSource(seed)))
					want := k
					if want > n {
						want = n
					}
					got := m.SampleTopKInto(tb, k, make(perm.Perm, 0, want), rand.New(rand.NewSource(seed)))
					if len(got) != want {
						t.Fatalf("n=%d θ=%g k=%d seed=%d: prefix length %d, want %d", n, theta, k, seed, len(got), want)
					}
					for i := range got {
						if got[i] != full[i] {
							t.Fatalf("n=%d θ=%g k=%d seed=%d: prefix[%d] = %d, full[%d] = %d\nprefix %v\nfull   %v",
								n, theta, k, seed, i, got[i], i, full[i], got, full[:want])
						}
					}
				}
			}
		}
	}
}

// TestSampleTopKStreamIdentity checks that the truncated path consumes
// the RNG stream exactly like the full path — a draw must leave the
// generator in the same state either way, or sequential best-of-m draws
// sharing one stream would diverge between paths after the first draw.
func TestSampleTopKStreamIdentity(t *testing.T) {
	for _, theta := range []float64{0, 0.3, 2, 100} {
		for _, n := range []int{0, 1, 5, 40} {
			for _, k := range []int{0, 1, 3, n, n + 2} {
				m, err := New(perm.Identity(n), theta)
				if err != nil {
					t.Fatal(err)
				}
				tb := m.Tables()
				rngFull := rand.New(rand.NewSource(42))
				rngTopK := rand.New(rand.NewSource(42))
				m.SampleInto(tb, make(perm.Perm, 0, n), rngFull)
				m.SampleTopKInto(tb, k, make(perm.Perm, 0, n), rngTopK)
				if a, b := rngFull.Int63(), rngTopK.Int63(); a != b {
					t.Fatalf("n=%d θ=%g k=%d: stream diverged after one draw (next full %d, next topk %d)", n, theta, k, a, b)
				}
			}
		}
	}
}

// TestSampleTopKSequentialDraws pins the property the engine's
// best-of-m loop relies on: draws interleaved on one shared stream
// match the full path draw for draw, not just on the first draw.
func TestSampleTopKSequentialDraws(t *testing.T) {
	const n, k, draws = 60, 8, 12
	for _, theta := range []float64{0, 0.7, 4} {
		m, err := New(perm.Identity(n), theta)
		if err != nil {
			t.Fatal(err)
		}
		tb := m.Tables()
		rngFull := rand.New(rand.NewSource(7))
		rngTopK := rand.New(rand.NewSource(7))
		full := make(perm.Perm, 0, n)
		topk := make(perm.Perm, 0, k)
		for d := 0; d < draws; d++ {
			full = m.SampleInto(tb, full, rngFull)
			topk = m.SampleTopKInto(tb, k, topk, rngTopK)
			for i := range topk {
				if topk[i] != full[i] {
					t.Fatalf("θ=%g draw %d pos %d: topk %d, full %d", theta, d, i, topk[i], full[i])
				}
			}
		}
	}
}

// TestSampleTopKValid checks the delivered prefix is always a valid
// k-prefix: distinct items, all drawn from the center.
func TestSampleTopKValid(t *testing.T) {
	rng := rand.New(rand.NewSource(909))
	for _, theta := range []float64{0, 0.2, 5} {
		m, err := New(perm.Random(50, rng), theta)
		if err != nil {
			t.Fatal(err)
		}
		tb := m.Tables()
		member := make(map[int]bool, 50)
		for _, it := range m.Center {
			member[it] = true
		}
		out := make(perm.Perm, 0, 50)
		for i := 0; i < 50; i++ {
			k := rng.Intn(52)
			out = m.SampleTopKInto(tb, k, out, rng)
			seen := make(map[int]bool, len(out))
			for _, it := range out {
				if !member[it] {
					t.Fatalf("θ=%g k=%d: item %d not in center", theta, k, it)
				}
				if seen[it] {
					t.Fatalf("θ=%g k=%d: duplicate item %d in prefix %v", theta, k, it, out)
				}
				seen[it] = true
			}
		}
	}
}

// TestSampleTopKZeroAlloc pins the allocation-free contract: with
// tables built and capacity provided, a truncated draw performs no heap
// allocation.
func TestSampleTopKZeroAlloc(t *testing.T) {
	const n, k = 4096, 16
	m, err := New(perm.Identity(n), 0.8)
	if err != nil {
		t.Fatal(err)
	}
	tb := m.Tables()
	out := make(perm.Perm, 0, k)
	rng := rand.New(rand.NewSource(3))
	if avg := testing.AllocsPerRun(200, func() {
		out = m.SampleTopKInto(tb, k, out, rng)
	}); avg != 0 {
		t.Fatalf("SampleTopKInto allocates %.1f objects per draw, want 0", avg)
	}
}

// TestSampleTopKTableMismatchPanics mirrors SampleInto's contract.
func TestSampleTopKTableMismatchPanics(t *testing.T) {
	m, err := New(perm.Identity(10), 1)
	if err != nil {
		t.Fatal(err)
	}
	small, err := NewTables(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("undersized tables did not panic")
		}
	}()
	m.SampleTopKInto(small, 3, make(perm.Perm, 0, 3), rand.New(rand.NewSource(1)))
}
