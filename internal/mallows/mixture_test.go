package mallows

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/perm"
)

func twoComponentTruth(t *testing.T) *Mixture {
	t.Helper()
	a, err := New(perm.Identity(8), 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(perm.Identity(8).Reverse(), 2)
	if err != nil {
		t.Fatal(err)
	}
	mix, err := NewMixture([]*Model{a, b}, []float64{0.6, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	return mix
}

func TestNewMixtureValidation(t *testing.T) {
	a, _ := New(perm.Identity(4), 1)
	b, _ := New(perm.Identity(5), 1)
	if _, err := NewMixture(nil, nil); err == nil {
		t.Error("accepted empty mixture")
	}
	if _, err := NewMixture([]*Model{a}, []float64{0.5, 0.5}); err == nil {
		t.Error("accepted weight count mismatch")
	}
	if _, err := NewMixture([]*Model{a, b}, []float64{0.5, 0.5}); err == nil {
		t.Error("accepted mismatched item counts")
	}
	if _, err := NewMixture([]*Model{a}, []float64{0}); err == nil {
		t.Error("accepted zero weight")
	}
	if _, err := NewMixture([]*Model{a}, []float64{0.2}); err == nil {
		t.Error("accepted weights not summing to 1")
	}
	if _, err := NewMixture([]*Model{nil}, []float64{1}); err == nil {
		t.Error("accepted nil component")
	}
}

func TestMixtureProbSumsToOne(t *testing.T) {
	a, _ := New(perm.Identity(4), 1.5)
	b, _ := New(perm.MustNew(3, 1, 2, 0), 0.4)
	mix, err := NewMixture([]*Model{a, b}, []float64{0.3, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	perm.All(4, func(p perm.Perm) bool {
		lp, err := mix.LogProb(p)
		if err != nil {
			t.Fatal(err)
		}
		sum += math.Exp(lp)
		return true
	})
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("mixture probabilities sum to %v", sum)
	}
}

func TestMixtureSampleValid(t *testing.T) {
	mix := twoComponentTruth(t)
	rng := rand.New(rand.NewSource(120))
	for i := 0; i < 100; i++ {
		if err := mix.Sample(rng).Validate(); err != nil {
			t.Fatal(err)
		}
	}
	out := mix.SampleN(5, rng)
	if len(out) != 5 {
		t.Fatalf("SampleN returned %d", len(out))
	}
}

func TestMixtureSampleComponentFrequencies(t *testing.T) {
	// With well-separated components, classify each sample by the
	// nearest center; frequencies must match the mixture weights.
	mix := twoComponentTruth(t)
	rng := rand.New(rand.NewSource(121))
	const samples = 4000
	nearA := 0
	for i := 0; i < samples; i++ {
		s := mix.Sample(rng)
		da := s.InversionCount() // distance to identity
		rel, err := s.RelativeTo(mix.Components[1].Center)
		if err != nil {
			t.Fatal(err)
		}
		db := rel.InversionCount()
		if da < db {
			nearA++
		}
	}
	frac := float64(nearA) / samples
	if math.Abs(frac-0.6) > 0.03 {
		t.Fatalf("component-A fraction %v, want ≈ 0.6", frac)
	}
}

func TestFitMixtureEMRecoversComponents(t *testing.T) {
	mix := twoComponentTruth(t)
	rng := rand.New(rand.NewSource(122))
	samples := mix.SampleN(2000, rng)
	fitted, err := FitMixtureEM(samples, 2, 25, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Match fitted components to truth by center.
	id := perm.Identity(8)
	rev := id.Reverse()
	var wID, wRev float64
	var thID, thRev float64
	found := 0
	for i, c := range fitted.Components {
		switch {
		case c.Center.Equal(id):
			wID, thID = fitted.Weights[i], c.Theta
			found++
		case c.Center.Equal(rev):
			wRev, thRev = fitted.Weights[i], c.Theta
			found++
		}
	}
	if found != 2 {
		t.Fatalf("centers not recovered: %v / %v",
			fitted.Components[0].Center, fitted.Components[1].Center)
	}
	if math.Abs(wID-0.6) > 0.05 || math.Abs(wRev-0.4) > 0.05 {
		t.Fatalf("weights = %v / %v, want 0.6 / 0.4", wID, wRev)
	}
	if math.Abs(thID-2) > 0.4 || math.Abs(thRev-2) > 0.4 {
		t.Fatalf("thetas = %v / %v, want ≈ 2", thID, thRev)
	}
	// The fitted mixture must beat a single-component fit on likelihood.
	single, err := Fit(samples)
	if err != nil {
		t.Fatal(err)
	}
	singleMix, err := NewMixture([]*Model{single}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	llMix, err := fitted.LogLikelihood(samples)
	if err != nil {
		t.Fatal(err)
	}
	llSingle, err := singleMix.LogLikelihood(samples)
	if err != nil {
		t.Fatal(err)
	}
	if llMix <= llSingle {
		t.Fatalf("mixture loglik %v not above single-component %v", llMix, llSingle)
	}
}

func TestFitMixtureEMValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	if _, err := FitMixtureEM(nil, 1, 5, rng); err == nil {
		t.Error("accepted no samples")
	}
	s := []perm.Perm{perm.Identity(3), perm.Identity(3)}
	if _, err := FitMixtureEM(s, 0, 5, rng); err == nil {
		t.Error("accepted k=0")
	}
	if _, err := FitMixtureEM(s, 3, 5, rng); err == nil {
		t.Error("accepted k > samples")
	}
	if _, err := FitMixtureEM(s, 1, 0, rng); err == nil {
		t.Error("accepted zero iterations")
	}
	if _, err := FitMixtureEM([]perm.Perm{{0, 0}}, 1, 5, rng); err == nil {
		t.Error("accepted invalid sample")
	}
	if _, err := FitMixtureEM([]perm.Perm{perm.Identity(2), perm.Identity(3)}, 1, 5, rng); err == nil {
		t.Error("accepted ragged samples")
	}
	// k = 2 with identical samples exercises the duplicate-center path.
	mix, err := FitMixtureEM(s, 2, 3, rng)
	if err != nil || len(mix.Components) != 2 {
		t.Errorf("duplicate-sample fit = %v, %v", mix, err)
	}
}
