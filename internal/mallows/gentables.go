package mallows

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/perm"
)

// GeneralizedTables precomputes the per-step quantities of the
// generalized (Fligner–Verducci) displacement draw: with one dispersion
// θ_j per insertion step, step j needs its own ln q_j and CDF
// normalizer 1 − q_j^j, where q_j = e^{−θ_j}. One table serves every
// sample drawn from any GeneralizedModel with the same dispersion
// schedule, so a serving layer can build it once per (n, schedule) and
// amortize the Exp/Log/Pow evaluations that GeneralizedModel.Sample
// otherwise repeats on every displacement.
//
// Displacement draws through GeneralizedTables consume the RNG stream
// exactly like the table-free sampler and reproduce its arithmetic bit
// for bit, so equal seeds yield identical permutations with or without
// tables.
type GeneralizedTables struct {
	thetas  []float64 // per-step dispersions, cloned
	logQ    []float64 // logQ[j] = ln q_j, j = 1…n; 0 when θ_j = 0
	cdfZ    []float64 // cdfZ[j] = 1 − q_j^j, the CDF normalizer at step j
	invCdfZ []float64 // 1/cdfZ[j]; +Inf where θ_j = 0 (never consulted)
}

// NewGeneralizedTables builds displacement tables for generalized
// models over len(thetas) items; thetas[j−1] is the dispersion of
// insertion step j and must be ≥ 0.
func NewGeneralizedTables(thetas []float64) (*GeneralizedTables, error) {
	n := len(thetas)
	t := &GeneralizedTables{
		thetas:  append([]float64(nil), thetas...),
		logQ:    make([]float64, n+1),
		cdfZ:    make([]float64, n+1),
		invCdfZ: make([]float64, n+1),
	}
	for j := 1; j <= n; j++ {
		theta := thetas[j-1]
		if math.IsNaN(theta) || theta < 0 {
			return nil, fmt.Errorf("mallows: dispersion θ_%d = %v, want ≥ 0", j, theta)
		}
		if theta == 0 {
			t.invCdfZ[j] = math.Inf(1)
			continue
		}
		// Compute q_j, ln q_j, and q_j^j exactly as sampleDisplacement
		// does (Exp then Log/Pow, not −θ and iterated products) so draws
		// match the table-free path bit for bit.
		q := math.Exp(-theta)
		t.logQ[j] = math.Log(q)
		t.cdfZ[j] = 1 - math.Pow(q, float64(j))
		t.invCdfZ[j] = 1 / t.cdfZ[j]
	}
	return t, nil
}

// Tables returns displacement tables matching the model's schedule.
func (m *GeneralizedModel) Tables() *GeneralizedTables {
	t, err := NewGeneralizedTables(m.Thetas)
	if err != nil {
		panic(err) // unreachable: GeneralizedModel invariants guarantee valid thetas
	}
	return t
}

// N returns the number of items the tables cover.
func (t *GeneralizedTables) N() int { return len(t.thetas) }

// Thetas returns a copy of the per-step dispersion schedule.
func (t *GeneralizedTables) Thetas() []float64 {
	return append([]float64(nil), t.thetas...)
}

// Displacement draws V ∈ {0,…,j−1} with P(V=v) ∝ e^{−θ_j·v} — bit for
// bit the arithmetic of the table-free generalized draw at step j.
// It panics if j exceeds the table size.
func (t *GeneralizedTables) Displacement(j int, rng *rand.Rand) int {
	if j <= 1 {
		return 0
	}
	if t.thetas[j-1] == 0 {
		return rng.Intn(j)
	}
	u := rng.Float64()
	x := math.Log1p(-u*t.cdfZ[j]) / t.logQ[j]
	v := int(math.Ceil(x)) - 1
	if v < 0 {
		v = 0
	}
	if v > j-1 {
		v = j - 1
	}
	return v
}

// checkCenter panics unless the center matches the table size: the
// dispersion schedule is positional, so unlike the fixed-θ Tables a
// smaller center cannot borrow a larger table.
func (t *GeneralizedTables) checkCenter(center perm.Perm) {
	if len(center) != t.N() {
		panic(fmt.Sprintf("mallows: generalized tables over %d steps used with a %d-item center", t.N(), len(center)))
	}
}

// SampleInto draws one permutation from the generalized model
// (center, schedule) through the tables, writing it into out (capacity
// ≥ n required to avoid reallocation) and returning the sample. It is
// stream- and bit-identical to GeneralizedModel.Sample for equal seeds;
// with precomputed tables and enough capacity a draw performs no
// allocation. Panics if the center does not match the table size.
func (t *GeneralizedTables) SampleInto(center perm.Perm, out perm.Perm, rng *rand.Rand) perm.Perm {
	t.checkCenter(center)
	n := t.N()
	if cap(out) < n {
		out = make(perm.Perm, n)
	}
	out = out[:0]
	for j := 1; j <= n; j++ {
		v := t.Displacement(j, rng)
		idx := j - 1 - v // v items already placed end up below the new one
		out = append(out, 0)
		copy(out[idx+1:], out[idx:])
		out[idx] = center[j-1]
	}
	return out
}

// MissThresholds precomputes the per-step guaranteed-miss thresholds of
// SampleTopKInto at window size k, into dst (capacity ≥ n+1 required to
// avoid reallocation; the returned slice has length n+1). For a step
// j > k with θ_j > 0, a uniform u < dst[j] proves the insertion index
// lands at or below the window bottom — the truncated-geometric CDF at
// the window edge, (1 − q_j^{j−k})/(1 − q_j^j), minus the topKGuard
// slack that sends boundary draws to the exact inversion. Entries at
// j ≤ k or θ_j = 0 are 0 (never consulted). Building the thresholds
// once per (schedule, k) keeps the truncated draw's skip loop to one
// compare per step, with no Exp/Log in the hot path.
func (t *GeneralizedTables) MissThresholds(k int, dst []float64) []float64 {
	n := t.N()
	if k > n {
		k = n
	}
	if k < 0 {
		k = 0
	}
	if cap(dst) < n+1 {
		dst = make([]float64, n+1)
	}
	dst = dst[:n+1]
	for j := 0; j <= n && j <= k; j++ {
		dst[j] = 0
	}
	for j := k + 1; j <= n; j++ {
		if j <= 1 || t.thetas[j-1] == 0 {
			dst[j] = 0
			continue
		}
		// q_j^{j−k} via Exp(logQ·(j−k)): within ~1e-13 relative of the
		// Pow the inversion arithmetic implies wherever the power is
		// representable, far inside the topKGuard slack.
		dst[j] = (1-math.Exp(float64(j-k)*t.logQ[j]))*t.invCdfZ[j] - topKGuard
	}
	return dst
}

// SampleTopKInto draws one permutation from the generalized model
// exactly like SampleInto but materializes only the top-k prefix,
// writing it into out (capacity ≥ min(k, n) required; k is clamped to
// [0, n]) and returning the delivered prefix. It is the per-step-θ
// variant of Model.SampleTopKInto: the repeated insertion process only
// ever pushes items down, so an item inserted at index ≥ k never
// re-enters the window and the sampler keeps a k-length window,
// discarding every insertion below it with one compare of the raw
// uniform against the step's miss threshold.
//
// thresh is the MissThresholds(k, …) table; nil recomputes each
// threshold inline (same draws, slower skip loop) — callers amortizing
// draws over one request should precompute. The draw consumes the RNG
// stream exactly like Sample/SampleInto — one displacement draw per
// insertion step, same order, same arithmetic — so for equal seeds the
// delivered prefix is bit-identical to the first k entries of the
// full-path sample. Panics if the center does not match the table size.
func (t *GeneralizedTables) SampleTopKInto(center perm.Perm, k int, thresh []float64, out perm.Perm, rng *rand.Rand) perm.Perm {
	t.checkCenter(center)
	n := t.N()
	if k > n {
		k = n
	}
	if k < 0 {
		k = 0
	}
	if cap(out) < k {
		out = make(perm.Perm, k)
	}
	out = out[:0]
	w := 0 // current window length, min(items inserted so far, k)
	for j := 1; j <= n; j++ {
		var idx int
		switch {
		case j <= 1:
			// Displacement draws nothing at the first step.
			idx = 0
		case t.thetas[j-1] == 0:
			// Uniform limit: insertion index uniform over {0,…,j−1};
			// consume Intn exactly like the full path.
			idx = j - 1 - rng.Intn(j)
		default:
			u := rng.Float64()
			if j > k {
				var miss float64
				if thresh != nil {
					miss = thresh[j]
				} else {
					miss = (1-math.Exp(float64(j-k)*t.logQ[j]))*t.invCdfZ[j] - topKGuard
				}
				if u < miss {
					// Guaranteed miss: V ≤ j−1−k, so the insertion index
					// is ≥ k and the item lands below the window for good.
					continue
				}
			}
			// Exact CDF inversion, bit for bit the Displacement
			// arithmetic on the same uniform.
			x := math.Log1p(-u*t.cdfZ[j]) / t.logQ[j]
			v := int(math.Ceil(x)) - 1
			if v < 0 {
				v = 0
			}
			if v > j-1 {
				v = j - 1
			}
			idx = j - 1 - v
		}
		if idx >= k {
			continue
		}
		if w < k {
			out = append(out, 0)
			w++
		}
		copy(out[idx+1:w], out[idx:w-1])
		out[idx] = center[j-1]
	}
	return out
}
