package mallows

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/perm"
	"repro/internal/rankdist"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(perm.Identity(3), 0.5); err != nil {
		t.Fatal(err)
	}
	if _, err := New(perm.Perm{0, 0}, 0.5); err == nil {
		t.Error("accepted invalid center")
	}
	if _, err := New(perm.Identity(3), -0.1); err == nil {
		t.Error("accepted negative theta")
	}
	if _, err := New(perm.Identity(3), math.NaN()); err == nil {
		t.Error("accepted NaN theta")
	}
}

// bruteZ sums e^{−θ·d} over all permutations of n items.
func bruteZ(n int, theta float64) float64 {
	center := perm.Identity(n)
	var z float64
	perm.All(n, func(p perm.Perm) bool {
		d, _ := rankdist.KendallTau(p, center)
		z += math.Exp(-theta * float64(d))
		return true
	})
	return z
}

func TestLogZAgainstBrute(t *testing.T) {
	for n := 1; n <= 6; n++ {
		for _, theta := range []float64{0, 0.1, 0.5, 1, 2, 5} {
			got := math.Exp(LogZ(n, theta))
			want := bruteZ(n, theta)
			if math.Abs(got-want)/want > 1e-10 {
				t.Errorf("Z(%d, %v) = %v, want %v", n, theta, got, want)
			}
		}
	}
}

func TestProbSumsToOne(t *testing.T) {
	m, err := New(perm.MustNew(2, 0, 3, 1), 0.8)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	perm.All(4, func(p perm.Perm) bool {
		pr, err := m.Prob(p)
		if err != nil {
			t.Fatal(err)
		}
		sum += pr
		return true
	})
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("probabilities sum to %v", sum)
	}
}

func TestProbMonotoneInDistance(t *testing.T) {
	m, _ := New(perm.Identity(5), 1.2)
	pNear, _ := m.Prob(perm.MustNew(1, 0, 2, 3, 4))
	pFar, _ := m.Prob(perm.Identity(5).Reverse())
	pCenter, _ := m.Prob(perm.Identity(5))
	if !(pCenter > pNear && pNear > pFar) {
		t.Fatalf("probabilities not monotone: %v %v %v", pCenter, pNear, pFar)
	}
}

func TestDistanceCountsMahonian(t *testing.T) {
	// n=4 Mahonian numbers: 1 3 5 6 5 3 1.
	got := DistanceCounts(4)
	want := []float64{1, 3, 5, 6, 5, 3, 1}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("T(4,%d) = %v, want %v", i, got[i], want[i])
		}
	}
	// Row sums are n!.
	var sum float64
	for _, c := range DistanceCounts(6) {
		sum += c
	}
	if sum != 720 {
		t.Fatalf("sum T(6,·) = %v", sum)
	}
}

func TestDistanceDistribution(t *testing.T) {
	probs, err := DistanceDistribution(5, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	var sum, mean float64
	for d, p := range probs {
		sum += p
		mean += float64(d) * p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("distribution sums to %v", sum)
	}
	if want := ExpectedDistance(5, 0.7); math.Abs(mean-want) > 1e-10 {
		t.Fatalf("mean from distribution %v, closed form %v", mean, want)
	}
	if _, err := DistanceDistribution(-1, 1); err == nil {
		t.Error("accepted negative n")
	}
	if _, err := DistanceDistribution(3, -1); err == nil {
		t.Error("accepted negative theta")
	}
}

func TestExpectedDistanceLimits(t *testing.T) {
	// θ=0: uniform, E = n(n−1)/4.
	if got := ExpectedDistance(6, 0); got != 7.5 {
		t.Fatalf("E at θ=0 = %v", got)
	}
	// θ large: E → 0.
	if got := ExpectedDistance(6, 40); got > 1e-10 {
		t.Fatalf("E at θ=40 = %v", got)
	}
	// Monotone decreasing in θ.
	prev := math.Inf(1)
	for _, theta := range []float64{0, 0.25, 0.5, 1, 2, 4} {
		e := ExpectedDistance(10, theta)
		if e >= prev {
			t.Fatalf("E not decreasing at θ=%v: %v ≥ %v", theta, e, prev)
		}
		prev = e
	}
	if ExpectedDistance(1, 1) != 0 || ExpectedDistance(0, 1) != 0 {
		t.Fatal("degenerate sizes should give 0")
	}
}

func TestVarianceDistanceAgainstExact(t *testing.T) {
	for _, theta := range []float64{0, 0.3, 1, 2.5} {
		probs, err := DistanceDistribution(6, theta)
		if err != nil {
			t.Fatal(err)
		}
		var mean, m2 float64
		for d, p := range probs {
			mean += float64(d) * p
			m2 += float64(d) * float64(d) * p
		}
		want := m2 - mean*mean
		got := VarianceDistance(6, theta)
		if math.Abs(got-want) > 1e-9*math.Max(1, want) {
			t.Fatalf("Var(θ=%v) = %v, want %v", theta, got, want)
		}
	}
}

func TestSampleValidAndDistanceConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	m, _ := New(perm.Random(12, rng), 0.9)
	for i := 0; i < 200; i++ {
		p, d := m.SampleWithDistance(rng)
		if err := p.Validate(); err != nil {
			t.Fatalf("invalid sample: %v", err)
		}
		kt, err := rankdist.KendallTau(p, m.Center)
		if err != nil {
			t.Fatal(err)
		}
		if kt != d {
			t.Fatalf("reported distance %d, actual %d", d, kt)
		}
	}
}

func TestSamplerMatchesExactDistribution(t *testing.T) {
	// Total-variation distance between the empirical distance histogram
	// and the exact distance distribution must be small.
	const (
		n       = 5
		theta   = 0.7
		samples = 40000
	)
	rng := rand.New(rand.NewSource(51))
	m, _ := New(perm.Identity(n), theta)
	maxD := int(MaxDistance(n))
	hist := make([]float64, maxD+1)
	for i := 0; i < samples; i++ {
		_, d := m.SampleWithDistance(rng)
		hist[d]++
	}
	exact, err := DistanceDistribution(n, theta)
	if err != nil {
		t.Fatal(err)
	}
	var tv float64
	for d := 0; d <= maxD; d++ {
		tv += math.Abs(hist[d]/samples - exact[d])
	}
	tv /= 2
	if tv > 0.015 {
		t.Fatalf("total variation distance %v too large", tv)
	}
}

func TestSamplerUniformAtThetaZero(t *testing.T) {
	const samples = 24000
	rng := rand.New(rand.NewSource(52))
	m, _ := New(perm.Identity(4), 0)
	freq := map[string]int{}
	for i := 0; i < samples; i++ {
		freq[m.Sample(rng).String()]++
	}
	if len(freq) != 24 {
		t.Fatalf("saw %d distinct permutations, want 24", len(freq))
	}
	for s, f := range freq {
		// Expected 1000 each; 5σ ≈ 155.
		if f < 800 || f > 1200 {
			t.Fatalf("perm %s frequency %d implausible for uniform", s, f)
		}
	}
}

func TestSampleMeanDistanceMatchesExpectation(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for _, theta := range []float64{0.2, 0.5, 1, 2} {
		m, _ := New(perm.Identity(20), theta)
		const samples = 5000
		var total int64
		for i := 0; i < samples; i++ {
			_, d := m.SampleWithDistance(rng)
			total += d
		}
		got := float64(total) / samples
		want := ExpectedDistance(20, theta)
		sd := math.Sqrt(VarianceDistance(20, theta) / samples)
		if math.Abs(got-want) > 6*sd+1e-9 {
			t.Fatalf("θ=%v: mean %v, want %v ± %v", theta, got, want, 6*sd)
		}
	}
}

func TestSampleN(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	m, _ := New(perm.Identity(6), 1)
	out := m.SampleN(7, rng)
	if len(out) != 7 {
		t.Fatalf("SampleN returned %d", len(out))
	}
	for _, p := range out {
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestEstimateThetaRecovers(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for _, theta := range []float64{0.3, 0.8, 1.5} {
		m, _ := New(perm.Identity(15), theta)
		samples := m.SampleN(4000, rng)
		got, err := EstimateTheta(samples, m.Center)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-theta) > 0.1 {
			t.Fatalf("estimated θ = %v, want ≈ %v", got, theta)
		}
	}
}

func TestEstimateThetaEdgeCases(t *testing.T) {
	if _, err := EstimateTheta(nil, perm.Identity(3)); err == nil {
		t.Error("accepted empty samples")
	}
	// All samples identical to center → MaxTheta.
	center := perm.Identity(6)
	got, err := EstimateTheta([]perm.Perm{center.Clone(), center.Clone()}, center)
	if err != nil || got != MaxTheta {
		t.Errorf("θ for zero-distance samples = %v, %v", got, err)
	}
	// Samples at maximal spread → 0.
	rev := center.Reverse()
	got, err = EstimateTheta([]perm.Perm{rev, rev.Clone()}, center)
	if err != nil || got != 0 {
		t.Errorf("θ for max-distance samples = %v, %v", got, err)
	}
	// Size mismatch.
	if _, err := EstimateTheta([]perm.Perm{perm.Identity(4)}, center); err == nil {
		t.Error("accepted sample size mismatch")
	}
}

func TestEstimateCenterBorda(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	truth := perm.Random(10, rng)
	m, _ := New(truth, 1.5)
	samples := m.SampleN(3000, rng)
	center, err := EstimateCenterBorda(samples)
	if err != nil {
		t.Fatal(err)
	}
	if !center.Equal(truth) {
		t.Fatalf("Borda center %v, want %v", center, truth)
	}
	if _, err := EstimateCenterBorda(nil); err == nil {
		t.Error("accepted empty samples")
	}
	if _, err := EstimateCenterBorda([]perm.Perm{perm.Identity(3), perm.Identity(4)}); err == nil {
		t.Error("accepted ragged samples")
	}
}

func TestFitRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	truth, _ := New(perm.Random(8, rng), 1.1)
	fitted, err := Fit(truth.SampleN(4000, rng))
	if err != nil {
		t.Fatal(err)
	}
	if !fitted.Center.Equal(truth.Center) {
		t.Fatalf("fitted center %v, want %v", fitted.Center, truth.Center)
	}
	if math.Abs(fitted.Theta-truth.Theta) > 0.15 {
		t.Fatalf("fitted θ = %v, want ≈ %v", fitted.Theta, truth.Theta)
	}
}

func TestLogZConsistencyZeroThetaLimit(t *testing.T) {
	// LogZ must be continuous as θ→0: compare θ=1e-9 against θ=0.
	a := LogZ(8, 0)
	b := LogZ(8, 1e-9)
	if math.Abs(a-b) > 1e-5 {
		t.Fatalf("LogZ discontinuous at 0: %v vs %v", a, b)
	}
}
