package mallows

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/perm"
	"repro/internal/rankdist"
)

func TestNewGeneralizedValidation(t *testing.T) {
	if _, err := NewGeneralized(perm.Identity(3), []float64{1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := NewGeneralized(perm.Identity(3), []float64{1, 1}); err == nil {
		t.Error("accepted wrong dispersion count")
	}
	if _, err := NewGeneralized(perm.Identity(3), []float64{1, -1, 1}); err == nil {
		t.Error("accepted negative dispersion")
	}
	if _, err := NewGeneralized(perm.Identity(3), []float64{1, math.NaN(), 1}); err == nil {
		t.Error("accepted NaN dispersion")
	}
	if _, err := NewGeneralized(perm.Perm{0, 0, 1}, []float64{1, 1, 1}); err == nil {
		t.Error("accepted invalid center")
	}
}

func TestGeneralizedProbSumsToOne(t *testing.T) {
	m, err := NewGeneralized(perm.MustNew(1, 3, 0, 2), []float64{2, 0.3, 1.1, 0})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	perm.All(4, func(p perm.Perm) bool {
		lp, err := m.LogProb(p)
		if err != nil {
			t.Fatal(err)
		}
		sum += math.Exp(lp)
		return true
	})
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("probabilities sum to %v", sum)
	}
}

func TestGeneralizedReducesToStandard(t *testing.T) {
	center := perm.MustNew(2, 0, 1, 3)
	std, err := New(center, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := Uniform(center, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	perm.All(4, func(p perm.Perm) bool {
		a, err := std.LogProb(p)
		if err != nil {
			t.Fatal(err)
		}
		b, err := gen.LogProb(p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a-b) > 1e-10 {
			t.Fatalf("logprob mismatch at %v: %v vs %v", p, a, b)
		}
		return true
	})
	if math.Abs(gen.ExpectedDistance()-ExpectedDistance(4, 0.8)) > 1e-10 {
		t.Fatalf("expected distance mismatch: %v vs %v",
			gen.ExpectedDistance(), ExpectedDistance(4, 0.8))
	}
}

func TestGeneralizedDisplacements(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	center := perm.Random(9, rng)
	m, err := Uniform(center, 1)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 100; trial++ {
		p := perm.Random(9, rng)
		v, err := m.Displacements(p)
		if err != nil {
			t.Fatal(err)
		}
		var sum int64
		for j, d := range v {
			if d < 0 || d > j {
				t.Fatalf("V_%d = %d outside [0,%d]", j+1, d, j)
			}
			sum += int64(d)
		}
		kt, err := rankdist.KendallTau(p, center)
		if err != nil {
			t.Fatal(err)
		}
		if sum != kt {
			t.Fatalf("ΣV = %d, KT = %d", sum, kt)
		}
	}
	if _, err := m.Displacements(perm.Identity(4)); err == nil {
		t.Error("accepted size mismatch")
	}
}

func TestGeneralizedSamplerMeanDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	m, err := TopHeavy(perm.Identity(20), 3, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	const samples = 4000
	var total int64
	for i := 0; i < samples; i++ {
		s := m.Sample(rng)
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
		kt, err := rankdist.KendallTau(s, m.Center)
		if err != nil {
			t.Fatal(err)
		}
		total += kt
	}
	got := float64(total) / samples
	want := m.ExpectedDistance()
	if math.Abs(got-want) > 0.05*want+1 {
		t.Fatalf("mean distance %v, want ≈ %v", got, want)
	}
}

func TestTopHeavyPreservesHeadOrder(t *testing.T) {
	// Top-heavy dispersion keeps the *relative order* of head items much
	// more reliably than that of tail items: compare concordance of the
	// adjacent pair (0,1) against the adjacent pair (10,11).
	rng := rand.New(rand.NewSource(62))
	m, err := TopHeavy(perm.Identity(12), 6, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	const samples = 2000
	headConcordant, tailConcordant := 0, 0
	for i := 0; i < samples; i++ {
		pos := m.Sample(rng).Positions()
		if pos[0] < pos[1] {
			headConcordant++
		}
		if pos[10] < pos[11] {
			tailConcordant++
		}
	}
	// θ_2 = 3 → pair (0,1) flips with probability e^{−3}/(1+e^{−3}) ≈ 4.7%.
	if headConcordant < samples*90/100 {
		t.Fatalf("head pair concordant only %d/%d", headConcordant, samples)
	}
	// θ_12 ≈ 0.003 → pair (10,11) is close to a coin flip.
	if tailConcordant > samples*65/100 {
		t.Fatalf("tail pair too stable: %d/%d", tailConcordant, samples)
	}
	if _, err := TopHeavy(perm.Identity(3), -1, 0.5); err == nil {
		t.Error("accepted negative top")
	}
	if _, err := TopHeavy(perm.Identity(3), 1, 1.5); err == nil {
		t.Error("accepted decay > 1")
	}
}

func TestGeneralizedSampleN(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	m, err := Uniform(perm.Identity(5), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	out := m.SampleN(4, rng)
	if len(out) != 4 {
		t.Fatalf("SampleN returned %d", len(out))
	}
	for _, p := range out {
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}
