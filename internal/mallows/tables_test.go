package mallows

import (
	"math/rand"
	"testing"

	"repro/internal/perm"
)

// The serving layer's correctness rests on table-backed draws consuming
// the RNG stream exactly like the table-free samplers: equal seeds must
// yield identical permutations.
func TestSampleIntoMatchesSample(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 40, 200} {
		for _, theta := range []float64{0, 0.05, 0.5, 1, 3} {
			m, err := New(perm.Random(n, rand.New(rand.NewSource(int64(n)))), theta)
			if err != nil {
				t.Fatal(err)
			}
			tab := m.Tables()
			scratch := make(perm.Perm, 0, n)
			a := rand.New(rand.NewSource(9))
			b := rand.New(rand.NewSource(9))
			for rep := 0; rep < 20; rep++ {
				want := m.Sample(a)
				got := m.SampleInto(tab, scratch, b)
				if !got.Equal(want) {
					t.Fatalf("n=%d θ=%g rep %d: SampleInto %v, Sample %v", n, theta, rep, got, want)
				}
			}
		}
	}
}

func TestFastSamplerMatchesSampleFast(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 40, 200} {
		for _, theta := range []float64{0, 0.5, 2} {
			m, err := New(perm.Random(n, rand.New(rand.NewSource(int64(n)+100))), theta)
			if err != nil {
				t.Fatal(err)
			}
			s := m.NewFastSampler(nil)
			scratch := make(perm.Perm, n)
			a := rand.New(rand.NewSource(4))
			b := rand.New(rand.NewSource(4))
			for rep := 0; rep < 20; rep++ {
				want := m.SampleFast(a)
				got := s.SampleInto(scratch, b)
				if !got.Equal(want) {
					t.Fatalf("n=%d θ=%g rep %d: FastSampler %v, SampleFast %v", n, theta, rep, got, want)
				}
			}
		}
	}
}

// Tables built for a larger n serve smaller models of equal θ, which is
// what a per-(n, θ) cache relies on after shrinking candidate pools.
func TestTablesOversized(t *testing.T) {
	tab, err := NewTables(50, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(perm.Identity(20), 1)
	if err != nil {
		t.Fatal(err)
	}
	a := rand.New(rand.NewSource(7))
	b := rand.New(rand.NewSource(7))
	want := m.Sample(a)
	got := m.SampleInto(tab, nil, b)
	if !got.Equal(want) {
		t.Fatalf("oversized tables: got %v, want %v", got, want)
	}
}

func TestTablesValidation(t *testing.T) {
	if _, err := NewTables(-1, 1); err == nil {
		t.Error("negative n accepted")
	}
	if _, err := NewTables(10, -0.5); err == nil {
		t.Error("negative θ accepted")
	}
}

func TestSampleIntoMismatchPanics(t *testing.T) {
	m, err := New(perm.Identity(10), 1)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := NewTables(10, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("dispersion mismatch did not panic")
		}
	}()
	m.SampleInto(tab, nil, rand.New(rand.NewSource(1)))
}

// SampleInto must not allocate once scratch capacity and tables exist.
func TestSampleIntoAllocFree(t *testing.T) {
	m, err := New(perm.Identity(300), 1)
	if err != nil {
		t.Fatal(err)
	}
	tab := m.Tables()
	scratch := make(perm.Perm, 0, 300)
	rng := rand.New(rand.NewSource(3))
	allocs := testing.AllocsPerRun(50, func() {
		scratch = m.SampleInto(tab, scratch, rng)
	})
	if allocs > 0 {
		t.Errorf("SampleInto allocates %.1f objects per draw, want 0", allocs)
	}
}
