package mallows

import (
	"fmt"
	"math"
)

// DistanceCounts returns the Mahonian numbers T(n, d): the number of
// permutations of n items at Kendall tau distance d from any fixed
// center, for d = 0 … n(n−1)/2. Computed by the inversion-table DP
// T_j = T_{j−1} * (1 + x + … + x^{j−1}) in O(n·maxD) time.
//
// Counts are returned as float64 because they exceed int64 for n ≳ 20;
// relative error stays at machine precision for the sizes used here.
func DistanceCounts(n int) []float64 {
	maxD := int(MaxDistance(n))
	counts := make([]float64, maxD+1)
	counts[0] = 1
	cur := 0 // current max distance
	for j := 2; j <= n; j++ {
		next := cur + j - 1
		// Multiply by (1 + x + … + x^{j−1}) using a sliding window sum.
		out := make([]float64, next+1)
		var window float64
		for d := 0; d <= next; d++ {
			window += at(counts, d)
			if d-j >= 0 {
				window -= at(counts, d-j)
			}
			out[d] = window
		}
		copy(counts, out)
		cur = next
	}
	return counts[:maxD+1]
}

func at(xs []float64, i int) float64 {
	if i < 0 || i >= len(xs) {
		return 0
	}
	return xs[i]
}

// DistanceDistribution returns P[d_KT(π, π₀) = d] for d = 0 … n(n−1)/2
// under M(π₀, θ): T(n,d)·e^{−θd}/Z_n(θ).
func DistanceDistribution(n int, theta float64) ([]float64, error) {
	if n < 0 {
		return nil, fmt.Errorf("mallows: negative n %d", n)
	}
	if math.IsNaN(theta) || theta < 0 {
		return nil, fmt.Errorf("mallows: dispersion θ = %v, want ≥ 0", theta)
	}
	counts := DistanceCounts(n)
	logZ := LogZ(n, theta)
	probs := make([]float64, len(counts))
	for d, c := range counts {
		if c == 0 {
			continue
		}
		probs[d] = math.Exp(math.Log(c) - theta*float64(d) - logZ)
	}
	return probs, nil
}
