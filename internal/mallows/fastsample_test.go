package mallows

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/perm"
	"repro/internal/rankdist"
)

func TestSampleFastValid(t *testing.T) {
	rng := rand.New(rand.NewSource(130))
	m, err := New(perm.Random(30, rng), 0.8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := m.SampleFast(rng).Validate(); err != nil {
			t.Fatal(err)
		}
	}
	// Degenerate sizes.
	m0, err := New(perm.Perm{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p := m0.SampleFast(rng); len(p) != 0 {
		t.Fatalf("empty model sample = %v", p)
	}
	m1, err := New(perm.Identity(1), 1)
	if err != nil {
		t.Fatal(err)
	}
	if p := m1.SampleFast(rng); !p.Equal(perm.Identity(1)) {
		t.Fatalf("singleton sample = %v", p)
	}
}

func TestSampleFastMatchesExactDistribution(t *testing.T) {
	// Same check as for Sample: the distance histogram must match the
	// exact Mallows distance distribution.
	const (
		n       = 5
		theta   = 0.7
		samples = 40000
	)
	rng := rand.New(rand.NewSource(131))
	m, err := New(perm.Identity(n), theta)
	if err != nil {
		t.Fatal(err)
	}
	maxD := int(MaxDistance(n))
	hist := make([]float64, maxD+1)
	for i := 0; i < samples; i++ {
		d, err := rankdist.KendallTau(m.SampleFast(rng), m.Center)
		if err != nil {
			t.Fatal(err)
		}
		hist[d]++
	}
	exact, err := DistanceDistribution(n, theta)
	if err != nil {
		t.Fatal(err)
	}
	var tv float64
	for d := 0; d <= maxD; d++ {
		tv += math.Abs(hist[d]/samples - exact[d])
	}
	tv /= 2
	if tv > 0.015 {
		t.Fatalf("total variation distance %v too large", tv)
	}
}

func TestSampleFastPermutationDistribution(t *testing.T) {
	// Beyond the distance marginal: per-permutation frequencies on n=4
	// must match the exact PMF (distance-preserving bugs would pass the
	// histogram test but fail this).
	const samples = 48000
	rng := rand.New(rand.NewSource(132))
	m, err := New(perm.MustNew(2, 0, 3, 1), 0.9)
	if err != nil {
		t.Fatal(err)
	}
	freq := map[string]float64{}
	for i := 0; i < samples; i++ {
		freq[m.SampleFast(rng).String()]++
	}
	var tv float64
	perm.All(4, func(p perm.Perm) bool {
		want, err := m.Prob(p)
		if err != nil {
			t.Fatal(err)
		}
		tv += math.Abs(freq[p.String()]/samples - want)
		return true
	})
	tv /= 2
	if tv > 0.02 {
		t.Fatalf("per-permutation total variation %v too large", tv)
	}
}

func TestFreeSlotsSelection(t *testing.T) {
	// Claim every slot of a 7-slot tree in a scrambled k order and check
	// the positions come out consistent.
	f := newFreeSlots(7)
	got := make([]int, 0, 7)
	for _, k := range []int{3, 3, 0, 2, 0, 1, 0} {
		got = append(got, f.takeKth(k))
	}
	// Simulate with a plain slice to derive the expected positions.
	free := []int{0, 1, 2, 3, 4, 5, 6}
	want := make([]int, 0, 7)
	for _, k := range []int{3, 3, 0, 2, 0, 1, 0} {
		want = append(want, free[k])
		free = append(free[:k], free[k+1:]...)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("selection %d: got slot %d, want %d", i, got[i], want[i])
		}
	}
}
