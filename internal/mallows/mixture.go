package mallows

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/perm"
	"repro/internal/rankdist"
)

// Mixture is a finite mixture of Mallows models — the standard model
// for a population with heterogeneous preferences (the paper cites
// Busa-Fekete et al.'s work on learning Mallows block models). A draw
// picks component i with probability Weights[i] and samples M(centerᵢ, θᵢ).
type Mixture struct {
	Components []*Model
	Weights    []float64
}

// NewMixture validates the components (same item count) and weights
// (positive, summing to 1 within tolerance; they are renormalized).
func NewMixture(components []*Model, weights []float64) (*Mixture, error) {
	if len(components) == 0 {
		return nil, fmt.Errorf("mallows: empty mixture")
	}
	if len(weights) != len(components) {
		return nil, fmt.Errorf("mallows: %d weights for %d components", len(weights), len(components))
	}
	for i, c := range components {
		if c == nil {
			return nil, fmt.Errorf("mallows: component %d is nil", i)
		}
	}
	n := components[0].N()
	var sum float64
	for i, c := range components {
		if c.N() != n {
			return nil, fmt.Errorf("mallows: component %d has %d items, want %d", i, c.N(), n)
		}
		w := weights[i]
		if math.IsNaN(w) || w <= 0 {
			return nil, fmt.Errorf("mallows: weight %d is %v, want > 0", i, w)
		}
		sum += w
	}
	if math.Abs(sum-1) > 1e-6 {
		return nil, fmt.Errorf("mallows: weights sum to %v, want 1", sum)
	}
	norm := make([]float64, len(weights))
	for i, w := range weights {
		norm[i] = w / sum
	}
	return &Mixture{Components: components, Weights: norm}, nil
}

// N returns the number of items.
func (m *Mixture) N() int { return m.Components[0].N() }

// Sample draws one permutation from the mixture.
func (m *Mixture) Sample(rng *rand.Rand) perm.Perm {
	u := rng.Float64()
	for i, w := range m.Weights {
		if u < w || i == len(m.Weights)-1 {
			return m.Components[i].Sample(rng)
		}
		u -= w
	}
	return m.Components[len(m.Components)-1].Sample(rng) // unreachable
}

// SampleN draws count independent permutations.
func (m *Mixture) SampleN(count int, rng *rand.Rand) []perm.Perm {
	out := make([]perm.Perm, count)
	for i := range out {
		out[i] = m.Sample(rng)
	}
	return out
}

// LogProb returns ln P[π] = ln Σᵢ wᵢ·Pᵢ[π], computed with log-sum-exp.
func (m *Mixture) LogProb(p perm.Perm) (float64, error) {
	logs := make([]float64, len(m.Components))
	for i, c := range m.Components {
		lp, err := c.LogProb(p)
		if err != nil {
			return 0, err
		}
		logs[i] = math.Log(m.Weights[i]) + lp
	}
	return logSumExp(logs), nil
}

// LogLikelihood returns Σ ln P[sample].
func (m *Mixture) LogLikelihood(samples []perm.Perm) (float64, error) {
	var total float64
	for i, s := range samples {
		lp, err := m.LogProb(s)
		if err != nil {
			return 0, fmt.Errorf("mallows: sample %d: %w", i, err)
		}
		total += lp
	}
	return total, nil
}

func logSumExp(xs []float64) float64 {
	max := math.Inf(-1)
	for _, x := range xs {
		if x > max {
			max = x
		}
	}
	if math.IsInf(max, -1) {
		return max
	}
	var sum float64
	for _, x := range xs {
		sum += math.Exp(x - max)
	}
	return max + math.Log(sum)
}

// FitMixtureEM fits a k-component Mallows mixture by
// expectation-maximization:
//
//   - E-step: responsibilities rᵢ(s) ∝ wᵢ·Pᵢ[s];
//   - M-step: wᵢ = mean responsibility; centerᵢ = responsibility-weighted
//     Borda consensus; θᵢ solves E_θ[D] = the responsibility-weighted
//     mean distance to the new center (exact via bisection).
//
// The Borda center update is the standard consistent approximation (an
// exact weighted-Kemeny M-step is NP-hard), so the likelihood is not
// guaranteed monotone step-for-step; in practice a handful of
// iterations recovers well-separated components. Initialization picks k
// distinct samples as centers (seeded by rng).
func FitMixtureEM(samples []perm.Perm, k, iterations int, rng *rand.Rand) (*Mixture, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("mallows: no samples")
	}
	if k < 1 || k > len(samples) {
		return nil, fmt.Errorf("mallows: k = %d outside [1,%d]", k, len(samples))
	}
	if iterations < 1 {
		return nil, fmt.Errorf("mallows: iterations = %d, want ≥ 1", iterations)
	}
	n := len(samples[0])
	for i, s := range samples {
		if len(s) != n {
			return nil, fmt.Errorf("mallows: sample %d has %d items, want %d", i, len(s), n)
		}
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("mallows: sample %d: %w", i, err)
		}
	}

	// Init: k distinct samples as centers, θ = 1, uniform weights.
	components := make([]*Model, k)
	weights := make([]float64, k)
	order := rng.Perm(len(samples))
	ci := 0
	for _, idx := range order {
		dup := false
		for j := 0; j < ci; j++ {
			if components[j].Center.Equal(samples[idx]) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		model, err := New(samples[idx], 1)
		if err != nil {
			return nil, err
		}
		components[ci] = model
		weights[ci] = 1 / float64(k)
		ci++
		if ci == k {
			break
		}
	}
	for ci < k {
		// Fewer distinct samples than components: reuse the first center.
		model, err := New(samples[order[0]], 1)
		if err != nil {
			return nil, err
		}
		components[ci] = model
		weights[ci] = 1 / float64(k)
		ci++
	}

	resp := make([][]float64, len(samples))
	for i := range resp {
		resp[i] = make([]float64, k)
	}
	logs := make([]float64, k)
	for iter := 0; iter < iterations; iter++ {
		// E-step.
		for si, s := range samples {
			for i, c := range components {
				lp, err := c.LogProb(s)
				if err != nil {
					return nil, err
				}
				logs[i] = math.Log(weights[i]) + lp
			}
			z := logSumExp(logs)
			for i := range logs {
				resp[si][i] = math.Exp(logs[i] - z)
			}
		}
		// M-step.
		for i := 0; i < k; i++ {
			var mass float64
			rankSums := make([]float64, n)
			for si, s := range samples {
				r := resp[si][i]
				mass += r
				for rank, item := range s {
					rankSums[item] += r * float64(rank)
				}
			}
			if mass < 1e-12 {
				// Dead component: reseed on a random sample.
				model, err := New(samples[rng.Intn(len(samples))], 1)
				if err != nil {
					return nil, err
				}
				components[i] = model
				weights[i] = 1e-6
				continue
			}
			weights[i] = mass / float64(len(samples))
			center := perm.Identity(n)
			sort.SliceStable(center, func(a, b int) bool {
				return rankSums[center[a]] < rankSums[center[b]]
			})
			var distSum float64
			for si, s := range samples {
				d, err := rankdist.KendallTau(s, center)
				if err != nil {
					return nil, err
				}
				distSum += resp[si][i] * float64(d)
			}
			theta := solveTheta(n, distSum/mass)
			model, err := New(center, theta)
			if err != nil {
				return nil, err
			}
			components[i] = model
		}
		normalize(weights)
	}
	return NewMixture(components, weights)
}

// solveTheta inverts E_θ[D] = target by bisection (θ = 0 when the
// target is at or above the uniform mean, MaxTheta when it is 0).
func solveTheta(n int, target float64) float64 {
	if n < 2 || target >= ExpectedDistance(n, 0) {
		return 0
	}
	if target <= 0 {
		return MaxTheta
	}
	lo, hi := 0.0, MaxTheta
	for iter := 0; iter < 100; iter++ {
		mid := (lo + hi) / 2
		if ExpectedDistance(n, mid) > target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

func normalize(w []float64) {
	var sum float64
	for _, v := range w {
		sum += v
	}
	if sum == 0 {
		for i := range w {
			w[i] = 1 / float64(len(w))
		}
		return
	}
	for i := range w {
		w[i] /= sum
	}
}
