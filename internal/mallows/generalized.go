package mallows

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/perm"
)

// GeneralizedModel is the generalized Mallows model (Fligner–Verducci):
// one dispersion parameter per insertion step, so the noise level can
// differ along the ranking. Thetas[j−1] governs the j-th item of the
// center (j = 1…n); position-dependent dispersion is the "tuning
// parameters within the noise distribution" direction of the paper's
// future work (§VI) — e.g. large θ near the top to keep the head of the
// center in order and small θ in the tail where reshuffling is cheap.
//
// The probability of a permutation factorizes over the insertion
// displacements V_j ∈ {0,…,j−1}:
//
//	P[π] ∝ ∏_j e^{−θ_j·V_j(π)}
//
// and reduces to the standard model when all θ_j are equal.
type GeneralizedModel struct {
	Center perm.Perm
	Thetas []float64
}

// NewGeneralized validates the center and the per-step dispersions
// (one per item, all ≥ 0).
func NewGeneralized(center perm.Perm, thetas []float64) (*GeneralizedModel, error) {
	if err := center.Validate(); err != nil {
		return nil, fmt.Errorf("mallows: invalid center: %w", err)
	}
	if len(thetas) != len(center) {
		return nil, fmt.Errorf("mallows: %d dispersions for %d items", len(thetas), len(center))
	}
	for j, t := range thetas {
		if math.IsNaN(t) || t < 0 {
			return nil, fmt.Errorf("mallows: dispersion θ_%d = %v, want ≥ 0", j+1, t)
		}
	}
	return &GeneralizedModel{
		Center: center.Clone(),
		Thetas: append([]float64(nil), thetas...),
	}, nil
}

// N returns the number of items.
func (m *GeneralizedModel) N() int { return len(m.Center) }

// Sample draws one permutation via the repeated insertion model with
// per-step dispersions.
func (m *GeneralizedModel) Sample(rng *rand.Rand) perm.Perm {
	n := m.N()
	out := make(perm.Perm, 0, n)
	for j := 1; j <= n; j++ {
		v := sampleDisplacement(j, m.Thetas[j-1], rng)
		idx := j - 1 - v
		out = append(out, 0)
		copy(out[idx+1:], out[idx:])
		out[idx] = m.Center[j-1]
	}
	return out
}

// SampleN draws count independent samples.
func (m *GeneralizedModel) SampleN(count int, rng *rand.Rand) []perm.Perm {
	out := make([]perm.Perm, count)
	for i := range out {
		out[i] = m.Sample(rng)
	}
	return out
}

// LogZ returns the log partition function: the product of the per-step
// truncated-geometric normalizers.
func (m *GeneralizedModel) LogZ() float64 {
	var s float64
	for j := 1; j <= m.N(); j++ {
		s += logZStep(j, m.Thetas[j-1])
	}
	return s
}

// logZStep is ln Σ_{v=0}^{j−1} e^{−θv}.
func logZStep(j int, theta float64) float64 {
	if theta == 0 {
		return math.Log(float64(j))
	}
	// ln( (1 − e^{−jθ}) / (1 − e^{−θ}) )
	return math.Log1p(-math.Exp(-float64(j)*theta)) - math.Log1p(-math.Exp(-theta))
}

// LogProb returns ln P[π]: −Σ_j θ_j·V_j(π) − ln Z. The displacement
// vector V(π) is recovered from the Lehmer-style insertion code of π
// relative to the center.
func (m *GeneralizedModel) LogProb(p perm.Perm) (float64, error) {
	v, err := m.Displacements(p)
	if err != nil {
		return 0, err
	}
	var e float64
	for j, d := range v {
		e += m.Thetas[j] * float64(d)
	}
	return -e - m.LogZ(), nil
}

// Displacements recovers the insertion displacements V_1…V_n of p
// relative to the center: V_j is the number of items inserted before
// step j (i.e., ranked above item j in the center) that end up below it
// in p. Σ V_j is the Kendall tau distance to the center.
func (m *GeneralizedModel) Displacements(p perm.Perm) ([]int, error) {
	if len(p) != m.N() {
		return nil, fmt.Errorf("mallows: permutation of size %d, model has %d", len(p), m.N())
	}
	rel, err := p.RelativeTo(m.Center)
	if err != nil {
		return nil, err
	}
	// rel lists center-ranks in p-order; V_j counts earlier center items
	// below item j in p. In the inverse view: for center rank r (0-based,
	// item j = r+1), V_j = #{r' < r : pos_p(r') > pos_p(r)} — the Lehmer
	// code of rel's inverse.
	inv := rel.Positions()
	code := inv.LehmerCode()
	// code[t] counts larger earlier entries of inv; inv[r] = position in
	// p of the center's r-th item, so larger-earlier means "an earlier
	// center item sits below": exactly V_{r+1}.
	return code, nil
}

// ExpectedDistance returns E[d_KT(π, center)] = Σ_j E[V_j] with
// per-step dispersions.
func (m *GeneralizedModel) ExpectedDistance() float64 {
	var e float64
	for j := 2; j <= m.N(); j++ {
		e += expectedDisplacement(j, m.Thetas[j-1])
	}
	return e
}

// expectedDisplacement is E[V_j] for V_j ∈ {0,…,j−1}, P(v) ∝ e^{−θv}.
func expectedDisplacement(j int, theta float64) float64 {
	if j <= 1 {
		return 0
	}
	if theta == 0 {
		return float64(j-1) / 2
	}
	q := math.Exp(-theta)
	qj := math.Exp(-theta * float64(j))
	return q/(1-q) - float64(j)*qj/(1-qj)
}

// Uniform returns the standard model M(center, theta) lifted to the
// generalized form (all steps share theta).
func Uniform(center perm.Perm, theta float64) (*GeneralizedModel, error) {
	thetas := make([]float64, len(center))
	for i := range thetas {
		thetas[i] = theta
	}
	return NewGeneralized(center, thetas)
}

// TopHeavy returns a generalized model whose dispersion decays
// geometrically with depth: step j gets top·decay^{j−1}. Large top with
// decay < 1 preserves the relative order among the head of the center
// (their insertions are near-deterministic) while the tail's relative
// order mixes freely. Note the Fligner–Verducci factorization controls
// relative placements: a free-floating tail item may still land high,
// so absolute head positions are only protected indirectly.
func TopHeavy(center perm.Perm, top, decay float64) (*GeneralizedModel, error) {
	if top < 0 || decay < 0 || decay > 1 {
		return nil, fmt.Errorf("mallows: top-heavy parameters top=%v decay=%v", top, decay)
	}
	thetas := make([]float64, len(center))
	t := top
	for i := range thetas {
		thetas[i] = t
		t *= decay
	}
	return NewGeneralized(center, thetas)
}
