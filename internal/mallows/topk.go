package mallows

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/perm"
)

// topKGuard is the relative slack on the guaranteed-miss threshold of
// SampleTopKInto. The threshold and the CDF inversion evaluate the same
// truncated-geometric CDF through different float expressions, so their
// rounding can disagree by a few ulps (~1e-16 relative) around the
// boundary. Draws within the slack of the threshold take the exact
// inversion instead of the shortcut: a uniform lands there about once
// per 10⁹ insertion steps, so the cost is nil and the shortcut can never
// misclassify a window hit.
const topKGuard = 1e-9

// SampleTopKInto draws one permutation from the model exactly like
// SampleInto but materializes only the top-k prefix, writing it into out
// (capacity ≥ min(k, n) required; k is clamped to [0, n]) and returning
// the delivered prefix. With precomputed tables and enough capacity a
// draw performs no allocation.
//
// It consumes the RNG stream exactly like Sample/SampleInto — one
// displacement draw per insertion step, same order, same arithmetic —
// so for equal seeds the delivered prefix is bit-identical to the first
// k entries of the full-path sample, and a sequence of draws from one
// shared stream stays aligned draw for draw with the full path.
//
// The work per draw collapses because the repeated insertion process
// only ever pushes items down: an item inserted at index ≥ k can never
// re-enter the top-k window, so the sampler keeps a k-length window and
// discards every insertion below it. For θ > 0 the insertion index of
// step j is below the window with probability
// P(V ≤ j−1−k) = (1 − q^{j−k})/(1 − q^j), and because the CDF inversion
// is monotone in the uniform draw that test is a single compare of the
// raw uniform against a precomputed normalizer ratio — the whole
// stripe of sub-window steps consumes its randomness in one tight
// compare-and-skip loop with no logarithms, no CDF inversion, and no
// memmove. Only the ~k·(1 + θ⁻¹·ln(n/k)) window hits pay the exact
// inversion and an O(k) shift. At θ = 0 every step draws Intn(j) (the
// uniform limit has no skippable stripe) and only the k/j fraction of
// in-window hits shifts.
//
// Panics like SampleInto if t covers fewer items than the model or was
// built for a different dispersion.
func (m *Model) SampleTopKInto(t *Tables, k int, out perm.Perm, rng *rand.Rand) perm.Perm {
	n := m.N()
	if t.n < n || t.theta != m.Theta {
		panic(fmt.Sprintf("mallows: tables for (n=%d, θ=%g) used with model (n=%d, θ=%g)", t.n, t.theta, n, m.Theta))
	}
	if k > n {
		k = n
	}
	if k < 0 {
		k = 0
	}
	out = out[:0]
	w := 0 // current window length, min(items inserted so far, k)
	for j := 1; j <= n; j++ {
		var idx int
		switch {
		case j <= 1:
			// Displacement draws nothing at the first step.
			idx = 0
		case t.theta == 0:
			// Uniform limit: insertion index uniform over {0,…,j−1};
			// consume Intn exactly like the full path.
			idx = j - 1 - rng.Intn(j)
		default:
			u := rng.Float64()
			if j > k && u < t.cdfZ[j-k]*t.invCdfZ[j]-topKGuard {
				// Guaranteed miss: V ≤ j−1−k, so the insertion index is
				// ≥ k and the item lands below the window for good.
				continue
			}
			// Exact CDF inversion, bit for bit the Displacement
			// arithmetic on the same uniform.
			x := math.Log1p(-u*t.cdfZ[j]) / t.logQ
			v := int(math.Ceil(x)) - 1
			if v < 0 {
				v = 0
			}
			if v > j-1 {
				v = j - 1
			}
			idx = j - 1 - v
		}
		if idx >= k {
			continue
		}
		if w < k {
			out = append(out, 0)
			w++
		}
		copy(out[idx+1:w], out[idx:w-1])
		out[idx] = m.Center[j-1]
	}
	return out
}
