package mallows

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/perm"
)

// Tables precomputes the per-position quantities of the truncated-
// geometric displacement draw for a fixed (n, θ): 1 − q^j for every
// insertion step j and ln q, where q = e^{−θ}. A single table serves
// every sample drawn from any model over n items with dispersion θ, so a
// serving layer can build it once per (n, θ) and amortize the e^{−θ} and
// q^j evaluations that Sample otherwise repeats on every displacement.
//
// Displacement draws through Tables consume the RNG stream exactly like
// the table-free samplers and reproduce their arithmetic bit for bit, so
// equal seeds yield identical permutations with or without tables.
type Tables struct {
	n     int
	theta float64
	logQ  float64   // ln q, q = e^{−θ}; 0 when θ = 0
	cdfZ  []float64 // cdfZ[j] = 1 − q^j, the CDF normalizer at step j
	// invCdfZ[j] = 1/cdfZ[j] lets the truncated top-k sampler test
	// "displacement too small to reach the window" with one multiply per
	// insertion step instead of a divide (see Model.SampleTopKInto).
	// +Inf at j = 0, where the normalizer is 0; never consulted there.
	invCdfZ []float64
}

// NewTables builds displacement tables for models over n items with
// dispersion theta.
func NewTables(n int, theta float64) (*Tables, error) {
	if n < 0 {
		return nil, fmt.Errorf("mallows: tables over %d items", n)
	}
	if math.IsNaN(theta) || theta < 0 {
		return nil, fmt.Errorf("mallows: dispersion θ = %v, want ≥ 0", theta)
	}
	t := &Tables{n: n, theta: theta}
	if theta > 0 {
		// Compute q, ln q, and q^j exactly as sampleDisplacement does
		// (Exp then Log/Pow, not −θ and iterated products) so draws match
		// the table-free path bit for bit.
		q := math.Exp(-theta)
		t.logQ = math.Log(q)
		t.cdfZ = make([]float64, n+1)
		t.invCdfZ = make([]float64, n+1)
		for j := 0; j <= n; j++ {
			t.cdfZ[j] = 1 - math.Pow(q, float64(j))
			t.invCdfZ[j] = 1 / t.cdfZ[j]
		}
	}
	return t, nil
}

// N returns the number of items the tables cover.
func (t *Tables) N() int { return t.n }

// Theta returns the dispersion the tables were built for.
func (t *Tables) Theta() float64 { return t.theta }

// Displacement draws V ∈ {0,…,j−1} with P(V=v) ∝ e^{−θv}, the j-th
// insertion displacement, using the precomputed normalizers. It panics if
// j exceeds the table size.
func (t *Tables) Displacement(j int, rng *rand.Rand) int {
	if j <= 1 {
		return 0
	}
	if t.theta == 0 {
		return rng.Intn(j)
	}
	u := rng.Float64()
	x := math.Log1p(-u*t.cdfZ[j]) / t.logQ
	v := int(math.Ceil(x)) - 1
	if v < 0 {
		v = 0
	}
	if v > j-1 {
		v = j - 1
	}
	return v
}

// Tables returns displacement tables matching the model.
func (m *Model) Tables() *Tables {
	t, err := NewTables(m.N(), m.Theta)
	if err != nil {
		panic(err) // unreachable: Model invariants guarantee valid (n, θ)
	}
	return t
}

// SampleInto is Sample drawing its displacements through t and writing
// the permutation into out, which must have capacity ≥ n; it returns the
// (possibly reallocated) sample. With cap(out) ≥ n and precomputed
// tables, a draw performs no allocation, which is what the serving
// layer's scratch-buffer reuse relies on. Panics if t covers fewer items
// than the model or was built for a different dispersion.
func (m *Model) SampleInto(t *Tables, out perm.Perm, rng *rand.Rand) perm.Perm {
	n := m.N()
	if t.n < n || t.theta != m.Theta {
		panic(fmt.Sprintf("mallows: tables for (n=%d, θ=%g) used with model (n=%d, θ=%g)", t.n, t.theta, n, m.Theta))
	}
	out = out[:0]
	for j := 1; j <= n; j++ {
		v := t.Displacement(j, rng)
		idx := j - 1 - v // v items already placed end up below the new one
		out = append(out, 0)
		copy(out[idx+1:], out[idx:])
		out[idx] = m.Center[j-1]
	}
	return out
}

// SampleFast draws one permutation from the model in O(n log n)
// worst case, against Sample's O(n + total displacement) slice
// insertions.
//
// It runs the repeated insertion process backwards: the last-inserted
// item's insertion index is its final rank, so processing items from the
// bottom of the center upward, item j claims the (idx_j+1)-th still-free
// rank, where idx_j ∈ {0,…,j−1} is its insertion index. Selecting the
// k-th free slot is one descent of a Fenwick tree.
//
// When to prefer which (measured in BenchmarkMallowsSample): Sample's
// insertion cost is the number of displaced elements, whose expectation
// is E[d_KT] — O(n) for fixed θ > 0 thanks to memmove-fast shifts, but
// Θ(n²) as θ → 0. At n = 30000, SampleFast is ~7× faster at θ = 0 and
// ~1.5× slower at θ = 1. Use SampleFast for small dispersions or
// adversarially large n; Sample is the better default.
//
// The displacement distribution is identical to Sample's, so the two
// samplers draw from the same Mallows distribution; they consume the
// RNG stream in different orders, so corresponding draws differ.
//
// SampleFast builds its tables and Fenwick tree per call; repeated
// draws should construct a FastSampler once and reuse it.
func (m *Model) SampleFast(rng *rand.Rand) perm.Perm {
	return m.NewFastSampler(nil).Sample(rng)
}

// FastSampler couples a model with its displacement tables and a
// reusable Fenwick tree, so repeated SampleFast-style draws build
// nothing but the output permutation — and not even that when the caller
// provides scratch via SampleInto. It is not safe for concurrent use;
// pool FastSamplers to share across goroutines.
type FastSampler struct {
	m    *Model
	t    *Tables
	tree *freeSlots
}

// NewFastSampler returns a reusable Fenwick-tree sampler for the model.
// t may be nil, in which case tables are built; otherwise it must cover
// the model's size and dispersion (see Model.SampleInto).
func (m *Model) NewFastSampler(t *Tables) *FastSampler {
	if t == nil {
		t = m.Tables()
	} else if t.n < m.N() || t.theta != m.Theta {
		panic(fmt.Sprintf("mallows: tables for (n=%d, θ=%g) used with model (n=%d, θ=%g)", t.n, t.theta, m.N(), m.Theta))
	}
	return &FastSampler{m: m, t: t, tree: newFreeSlots(m.N())}
}

// Sample draws one permutation; it is distribution- and stream-identical
// to Model.SampleFast with the same RNG.
func (s *FastSampler) Sample(rng *rand.Rand) perm.Perm {
	return s.SampleInto(make(perm.Perm, s.m.N()), rng)
}

// SampleInto is Sample writing into out, which must have capacity ≥ n.
func (s *FastSampler) SampleInto(out perm.Perm, rng *rand.Rand) perm.Perm {
	n := s.m.N()
	out = out[:n]
	if n == 0 {
		return out
	}
	s.tree.reset()
	for j := n; j >= 1; j-- {
		v := s.t.Displacement(j, rng)
		idx := j - 1 - v // insertion index among the j items present
		rank := s.tree.takeKth(idx)
		out[rank] = s.m.Center[j-1]
	}
	return out
}

// freeSlots is a Fenwick tree over slots 0…n−1 supporting "claim the
// k-th free slot" in O(log n).
type freeSlots struct {
	n    int
	tree []int // 1-based Fenwick of free counts
	log2 uint
}

func newFreeSlots(n int) *freeSlots {
	f := &freeSlots{n: n, tree: make([]int, n+1)}
	f.reset()
	for 1<<(f.log2+1) <= n {
		f.log2++
	}
	return f
}

// reset marks every slot free again in O(n), letting one tree serve many
// draws.
func (f *freeSlots) reset() {
	clear(f.tree)
	for i := 1; i <= f.n; i++ {
		f.tree[i] += 1
		if j := i + (i & -i); j <= f.n {
			f.tree[j] += f.tree[i]
		}
	}
}

// takeKth removes and returns the 0-based position of the (k+1)-th free
// slot.
func (f *freeSlots) takeKth(k int) int {
	// Binary-lifting descent: find the smallest prefix holding k+1 frees.
	pos := 0
	remaining := k + 1
	for step := 1 << f.log2; step > 0; step >>= 1 {
		next := pos + step
		if next <= f.n && f.tree[next] < remaining {
			pos = next
			remaining -= f.tree[next]
		}
	}
	slot := pos // 0-based: pos is the count of slots strictly before it
	// Mark the slot used: subtract one on the path.
	for i := slot + 1; i <= f.n; i += i & -i {
		f.tree[i]--
	}
	return slot
}
