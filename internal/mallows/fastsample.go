package mallows

import (
	"math/rand"

	"repro/internal/perm"
)

// SampleFast draws one permutation from the model in O(n log n)
// worst case, against Sample's O(n + total displacement) slice
// insertions.
//
// It runs the repeated insertion process backwards: the last-inserted
// item's insertion index is its final rank, so processing items from the
// bottom of the center upward, item j claims the (idx_j+1)-th still-free
// rank, where idx_j ∈ {0,…,j−1} is its insertion index. Selecting the
// k-th free slot is one descent of a Fenwick tree.
//
// When to prefer which (measured in BenchmarkMallowsSample): Sample's
// insertion cost is the number of displaced elements, whose expectation
// is E[d_KT] — O(n) for fixed θ > 0 thanks to memmove-fast shifts, but
// Θ(n²) as θ → 0. At n = 30000, SampleFast is ~7× faster at θ = 0 and
// ~1.5× slower at θ = 1. Use SampleFast for small dispersions or
// adversarially large n; Sample is the better default.
//
// The displacement distribution is identical to Sample's, so the two
// samplers draw from the same Mallows distribution; they consume the
// RNG stream in different orders, so corresponding draws differ.
func (m *Model) SampleFast(rng *rand.Rand) perm.Perm {
	n := m.N()
	out := make(perm.Perm, n)
	if n == 0 {
		return out
	}
	tree := newFreeSlots(n)
	for j := n; j >= 1; j-- {
		v := sampleDisplacement(j, m.Theta, rng)
		idx := j - 1 - v // insertion index among the j items present
		rank := tree.takeKth(idx)
		out[rank] = m.Center[j-1]
	}
	return out
}

// freeSlots is a Fenwick tree over slots 0…n−1 supporting "claim the
// k-th free slot" in O(log n).
type freeSlots struct {
	n    int
	tree []int // 1-based Fenwick of free counts
	log2 uint
}

func newFreeSlots(n int) *freeSlots {
	f := &freeSlots{n: n, tree: make([]int, n+1)}
	for i := 1; i <= n; i++ {
		f.tree[i] += 1
		if j := i + (i & -i); j <= n {
			f.tree[j] += f.tree[i]
		}
	}
	for 1<<(f.log2+1) <= n {
		f.log2++
	}
	return f
}

// takeKth removes and returns the 0-based position of the (k+1)-th free
// slot.
func (f *freeSlots) takeKth(k int) int {
	// Binary-lifting descent: find the smallest prefix holding k+1 frees.
	pos := 0
	remaining := k + 1
	for step := 1 << f.log2; step > 0; step >>= 1 {
		next := pos + step
		if next <= f.n && f.tree[next] < remaining {
			pos = next
			remaining -= f.tree[next]
		}
	}
	slot := pos // 0-based: pos is the count of slots strictly before it
	// Mark the slot used: subtract one on the path.
	for i := slot + 1; i <= f.n; i += i & -i {
		f.tree[i]--
	}
	return slot
}
