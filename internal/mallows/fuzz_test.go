package mallows

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/perm"
)

// FuzzSampleDisplacement drives the truncated-geometric CDF inversion
// through adversarial (j, θ, seed) triples — the extreme-θ regimes where
// the float plumbing can betray it: θ → 0⁺ (q rounds to 1, the
// normalizer 1 − q^j underflows to 0 and the inversion degenerates),
// θ huge (q and every power underflow to 0), and ordinary values in
// between. It pins two properties: the draw always lands in the legal
// support {0,…,j−1}, and the table-backed Displacement reproduces the
// table-free arithmetic bit for bit on the same uniform.
func FuzzSampleDisplacement(f *testing.F) {
	f.Add(2, 1.0, int64(1))
	f.Add(1, 0.5, int64(2))
	f.Add(100, 0.0, int64(3))
	f.Add(50, 1e-300, int64(4))   // q rounds to exactly 1
	f.Add(50, 5e-17, int64(5))    // 1 − q^j on the edge of underflow
	f.Add(37, 745.0, int64(6))    // q underflows to exactly 0
	f.Add(64, 7000.0, int64(7))   // far past underflow
	f.Add(1000, 1e-12, int64(8))  // near-uniform, large j
	f.Add(3, math.Inf(1), int64(9))
	f.Fuzz(func(t *testing.T, j int, theta float64, seed int64) {
		if j < 0 || j > 1<<14 {
			t.Skip("support size out of fuzz range")
		}
		if math.IsNaN(theta) || theta < 0 {
			t.Skip("invalid dispersion by contract")
		}
		v := sampleDisplacement(j, theta, rand.New(rand.NewSource(seed)))
		if j <= 1 {
			if v != 0 {
				t.Fatalf("j=%d θ=%g: displacement %d, want 0", j, theta, v)
			}
			return
		}
		if v < 0 || v > j-1 {
			t.Fatalf("j=%d θ=%g: displacement %d outside [0, %d]", j, theta, v, j-1)
		}
		tb, err := NewTables(j, theta)
		if err != nil {
			t.Fatalf("NewTables(%d, %g): %v", j, theta, err)
		}
		if tv := tb.Displacement(j, rand.New(rand.NewSource(seed))); tv != v {
			t.Fatalf("j=%d θ=%g: table draw %d, table-free draw %d", j, theta, tv, v)
		}
	})
}

// FuzzSampleTopKPrefix fuzzes the truncated sampler against the full
// insertion path: any (n, k, θ, seed) must yield a bit-identical
// delivered prefix and leave the RNG stream in the same position.
func FuzzSampleTopKPrefix(f *testing.F) {
	f.Add(10, 3, 1.0, int64(1))
	f.Add(1, 1, 0.0, int64(2))
	f.Add(64, 64, 0.01, int64(3))
	f.Add(64, 80, 700.0, int64(4))
	f.Add(200, 1, 1e-300, int64(5))
	f.Add(33, 0, 2.5, int64(6))
	f.Fuzz(func(t *testing.T, n, k int, theta float64, seed int64) {
		if n < 0 || n > 512 || k < 0 || k > 1024 {
			t.Skip("size out of fuzz range")
		}
		if math.IsNaN(theta) || math.IsInf(theta, 0) || theta < 0 {
			t.Skip("invalid dispersion by contract")
		}
		m, err := New(perm.Random(n, rand.New(rand.NewSource(seed))), theta)
		if err != nil {
			t.Skip("invalid model by contract")
		}
		tb := m.Tables()
		rngFull := rand.New(rand.NewSource(seed))
		rngTopK := rand.New(rand.NewSource(seed))
		full := m.SampleInto(tb, make(perm.Perm, 0, n), rngFull)
		got := m.SampleTopKInto(tb, k, make(perm.Perm, 0, min(k, n)), rngTopK)
		want := min(k, n)
		if len(got) != want {
			t.Fatalf("n=%d k=%d θ=%g: prefix length %d, want %d", n, k, theta, len(got), want)
		}
		for i := range got {
			if got[i] != full[i] {
				t.Fatalf("n=%d k=%d θ=%g seed=%d: prefix[%d] = %d, full %d", n, k, theta, seed, i, got[i], full[i])
			}
		}
		if a, b := rngFull.Int63(), rngTopK.Int63(); a != b {
			t.Fatalf("n=%d k=%d θ=%g: RNG streams diverged (%d vs %d)", n, k, theta, a, b)
		}
	})
}

// FuzzGeneralizedTopKPrefix fuzzes the per-step-θ truncated sampler
// against the table-backed full draw: any (n, k, θ₀, decay, seed) —
// interpreted as the geometric schedule θ_j = θ₀·decay^j — must yield a
// bit-identical delivered prefix and leave the RNG stream in the same
// position, with precomputed and inline thresholds alike.
func FuzzGeneralizedTopKPrefix(f *testing.F) {
	f.Add(10, 3, 1.0, 0.97, int64(1))
	f.Add(1, 1, 0.0, 0.5, int64(2))
	f.Add(64, 64, 0.01, 1.0, int64(3))
	f.Add(64, 80, 700.0, 0.97, int64(4))
	f.Add(200, 1, 1e-300, 0.99, int64(5))
	f.Add(33, 0, 2.5, 0.0, int64(6))
	f.Fuzz(func(t *testing.T, n, k int, theta, decay float64, seed int64) {
		if n < 0 || n > 512 || k < 0 || k > 1024 {
			t.Skip("size out of fuzz range")
		}
		if math.IsNaN(theta) || math.IsInf(theta, 0) || theta < 0 {
			t.Skip("invalid dispersion by contract")
		}
		if math.IsNaN(decay) || decay < 0 || decay > 1 {
			t.Skip("decay outside [0, 1]")
		}
		thetas := make([]float64, n)
		for j := range thetas {
			thetas[j] = theta * math.Pow(decay, float64(j))
		}
		center := perm.Random(n, rand.New(rand.NewSource(seed)))
		m, err := NewGeneralized(center, thetas)
		if err != nil {
			t.Skip("invalid model by contract")
		}
		tb := m.Tables()
		thresh := tb.MissThresholds(k, nil)
		full := tb.SampleInto(center, make(perm.Perm, 0, n), rand.New(rand.NewSource(seed)))
		want := min(k, n)
		for _, th := range [][]float64{thresh, nil} {
			rngFull := rand.New(rand.NewSource(seed))
			rngTopK := rand.New(rand.NewSource(seed))
			tb.SampleInto(center, make(perm.Perm, 0, n), rngFull)
			got := tb.SampleTopKInto(center, k, th, make(perm.Perm, 0, min(k, n)), rngTopK)
			if len(got) != want {
				t.Fatalf("n=%d k=%d θ=%g decay=%g: prefix length %d, want %d", n, k, theta, decay, len(got), want)
			}
			for i := range got {
				if got[i] != full[i] {
					t.Fatalf("n=%d k=%d θ=%g decay=%g seed=%d: prefix[%d] = %d, full %d", n, k, theta, decay, seed, i, got[i], full[i])
				}
			}
			if a, b := rngFull.Int63(), rngTopK.Int63(); a != b {
				t.Fatalf("n=%d k=%d θ=%g decay=%g: RNG streams diverged (%d vs %d)", n, k, theta, decay, a, b)
			}
		}
	})
}
