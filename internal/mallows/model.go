// Package mallows implements the Mallows distance-based ranking model
// M(π₀, θ) of §III-E under the Kendall tau distance: the probability of a
// permutation π is exp(−θ·d_KT(π, π₀))/Z_n(θ). It provides the partition
// function, exact probabilities, moments of the distance, an exact
// sampler (repeated insertion model), a dispersion estimator, and
// exhaustive small-n distributions used as test oracles.
package mallows

import (
	"fmt"
	"math"

	"repro/internal/perm"
	"repro/internal/rankdist"
)

// Model is a Mallows distribution with central ranking Center and
// dispersion Theta ≥ 0. Theta = 0 is the uniform distribution over
// permutations; Theta → ∞ concentrates on Center.
type Model struct {
	Center perm.Perm
	Theta  float64
}

// New validates the center and dispersion and returns a Model.
func New(center perm.Perm, theta float64) (*Model, error) {
	if err := center.Validate(); err != nil {
		return nil, fmt.Errorf("mallows: invalid center: %w", err)
	}
	if math.IsNaN(theta) || theta < 0 {
		return nil, fmt.Errorf("mallows: dispersion θ = %v, want ≥ 0", theta)
	}
	return &Model{Center: center.Clone(), Theta: theta}, nil
}

// N returns the number of items.
func (m *Model) N() int { return len(m.Center) }

// LogZ returns ln Z_n(θ) for the Kendall tau Mallows model:
//
//	Z_n(θ) = ∏_{j=1}^{n} (1 − e^{−jθ})/(1 − e^{−θ})   for θ > 0
//	Z_n(0) = n!
//
// The product form follows from the inversion-table decomposition: the
// j-th insertion contributes an independent displacement V_j ∈ {0,…,j−1}
// with weight e^{−θv}, whose normalizer is the geometric partial sum.
func LogZ(n int, theta float64) float64 {
	if theta == 0 {
		var s float64
		for j := 2; j <= n; j++ {
			s += math.Log(float64(j))
		}
		return s
	}
	var s float64
	for j := 1; j <= n; j++ {
		// ln( (1 − e^{−jθ}) / (1 − e^{−θ}) )
		s += math.Log1p(-math.Exp(-float64(j)*theta)) - math.Log1p(-math.Exp(-theta))
	}
	return s
}

// Z returns the partition function Z_n(θ); may overflow to +Inf for
// large n at θ = 0, where callers should prefer LogZ.
func Z(n int, theta float64) float64 { return math.Exp(LogZ(n, theta)) }

// LogProb returns ln P[π] under the model.
func (m *Model) LogProb(p perm.Perm) (float64, error) {
	d, err := rankdist.KendallTau(p, m.Center)
	if err != nil {
		return 0, err
	}
	return -m.Theta*float64(d) - LogZ(m.N(), m.Theta), nil
}

// Prob returns P[π] under the model.
func (m *Model) Prob(p perm.Perm) (float64, error) {
	lp, err := m.LogProb(p)
	if err != nil {
		return 0, err
	}
	return math.Exp(lp), nil
}

// ExpectedDistance returns E[d_KT(π, π₀)] for a Mallows model over n
// items with dispersion θ:
//
//	E[D] = Σ_{j=1}^{n} E[V_j],   E[V_j] = q/(1−q) − j·q^j/(1−q^j),  q = e^{−θ}
//
// with the θ = 0 limit E[D] = n(n−1)/4 (half the maximum).
func ExpectedDistance(n int, theta float64) float64 {
	if n < 2 {
		return 0
	}
	if theta == 0 {
		return float64(n) * float64(n-1) / 4
	}
	q := math.Exp(-theta)
	common := q / (1 - q)
	var e float64
	for j := 1; j <= n; j++ {
		qj := math.Exp(-theta * float64(j))
		e += common - float64(j)*qj/(1-qj)
	}
	return e
}

// VarianceDistance returns Var[d_KT(π, π₀)]; the insertion displacements
// V_j are independent, so the variance is the sum of
//
//	Var(V_j) = q/(1−q)² − j²·q^j/(1−q^j)²
//
// with the θ = 0 limit Σ (j²−1)/12 = n(n−1)(2n+5)/72.
func VarianceDistance(n int, theta float64) float64 {
	if n < 2 {
		return 0
	}
	if theta == 0 {
		nn := float64(n)
		return nn * (nn - 1) * (2*nn + 5) / 72
	}
	q := math.Exp(-theta)
	common := q / ((1 - q) * (1 - q))
	var v float64
	for j := 1; j <= n; j++ {
		qj := math.Exp(-theta * float64(j))
		v += common - float64(j)*float64(j)*qj/((1-qj)*(1-qj))
	}
	return v
}

// MaxDistance returns the largest Kendall tau distance on n items.
func MaxDistance(n int) int64 { return rankdist.MaxKendallTau(n) }
