package mallows

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/perm"
)

// genThetaSchedules returns per-step dispersion schedules covering the
// regimes the tables must reproduce bit for bit: constant θ (the plain
// model as a degenerate schedule), the geometric decay the engine's
// gmallows axis uses, mixed scales, schedules with exact zeros (uniform
// steps that draw through Intn), and extremes near under/overflow.
func genThetaSchedules(n int, rng *rand.Rand) [][]float64 {
	mk := func(f func(j int) float64) []float64 {
		th := make([]float64, n)
		for j := range th {
			th[j] = f(j)
		}
		return th
	}
	schedules := [][]float64{
		mk(func(int) float64 { return 0 }),
		mk(func(int) float64 { return 0.5 }),
		mk(func(j int) float64 { return 1.0 * math.Pow(0.97, float64(j)) }), // engine's decay shape
		mk(func(j int) float64 { return 3.0 * math.Pow(0.5, float64(j)) }),
		mk(func(j int) float64 {
			if j%3 == 0 {
				return 0
			}
			return float64(j%7) + 0.1
		}),
		mk(func(int) float64 { return 1e-300 }),
		mk(func(int) float64 { return 745.0 }),
	}
	schedules = append(schedules, mk(func(int) float64 { return rng.ExpFloat64() }))
	return schedules
}

func TestNewGeneralizedTablesValidation(t *testing.T) {
	if _, err := NewGeneralizedTables([]float64{1, -0.1}); err == nil {
		t.Error("accepted negative dispersion")
	}
	if _, err := NewGeneralizedTables([]float64{math.NaN()}); err == nil {
		t.Error("accepted NaN dispersion")
	}
	tb, err := NewGeneralizedTables(nil)
	if err != nil || tb.N() != 0 {
		t.Errorf("empty schedule: %v, %v", tb, err)
	}
}

// Table-backed SampleInto must be bit- and stream-identical to the
// table-free GeneralizedModel.Sample across schedules, sizes, and seeds.
func TestGeneralizedSampleIntoBitIdentity(t *testing.T) {
	gridRng := rand.New(rand.NewSource(11))
	for _, n := range []int{0, 1, 2, 3, 7, 25, 64, 200} {
		for si, thetas := range genThetaSchedules(n, gridRng) {
			center := perm.Random(n, gridRng)
			m, err := NewGeneralized(center, thetas)
			if err != nil {
				t.Fatalf("n=%d schedule=%d: %v", n, si, err)
			}
			tb := m.Tables()
			for seed := int64(0); seed < 5; seed++ {
				rngA := rand.New(rand.NewSource(seed))
				rngB := rand.New(rand.NewSource(seed))
				want := m.Sample(rngA)
				got := tb.SampleInto(center, make(perm.Perm, 0, n), rngB)
				if len(got) != len(want) {
					t.Fatalf("n=%d schedule=%d seed=%d: length %d, want %d", n, si, seed, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("n=%d schedule=%d seed=%d: pos %d = %d, want %d", n, si, seed, i, got[i], want[i])
					}
				}
				if a, b := rngA.Int63(), rngB.Int63(); a != b {
					t.Fatalf("n=%d schedule=%d seed=%d: RNG streams diverged (%d vs %d)", n, si, seed, a, b)
				}
			}
		}
	}
}

// The delivered top-k prefix must be bit-identical to the first k
// entries of the full draw, with the RNG left in the same position —
// with both precomputed MissThresholds and the nil (inline) fallback.
func TestGeneralizedSampleTopKPrefixBitIdentity(t *testing.T) {
	gridRng := rand.New(rand.NewSource(13))
	for _, n := range []int{0, 1, 2, 3, 7, 25, 64, 200} {
		for si, thetas := range genThetaSchedules(n, gridRng) {
			center := perm.Random(n, gridRng)
			m, err := NewGeneralized(center, thetas)
			if err != nil {
				t.Fatalf("n=%d schedule=%d: %v", n, si, err)
			}
			tb := m.Tables()
			ks := []int{0, 1, 2, n / 2, n - 1, n, n + 1, n + 7}
			for _, k := range ks {
				if k < 0 {
					continue
				}
				thresh := tb.MissThresholds(k, nil)
				for seed := int64(0); seed < 5; seed++ {
					full := tb.SampleInto(center, make(perm.Perm, 0, n), rand.New(rand.NewSource(seed)))
					want := k
					if want > n {
						want = n
					}
					for name, th := range map[string][]float64{"precomputed": thresh, "inline": nil} {
						rngTopK := rand.New(rand.NewSource(seed))
						got := tb.SampleTopKInto(center, k, th, make(perm.Perm, 0, n), rngTopK)
						if len(got) != want {
							t.Fatalf("n=%d schedule=%d k=%d seed=%d (%s): prefix length %d, want %d",
								n, si, k, seed, name, len(got), want)
						}
						for i := range got {
							if got[i] != full[i] {
								t.Fatalf("n=%d schedule=%d k=%d seed=%d (%s): prefix[%d] = %d, full draw has %d\nprefix: %v\nfull:   %v",
									n, si, k, seed, name, i, got[i], full[i], got, full[:want])
							}
						}
						rngFull := rand.New(rand.NewSource(seed))
						tb.SampleInto(center, make(perm.Perm, 0, n), rngFull)
						if a, b := rngFull.Int63(), rngTopK.Int63(); a != b {
							t.Fatalf("n=%d schedule=%d k=%d seed=%d (%s): RNG streams diverged (%d vs %d)",
								n, si, k, seed, name, a, b)
						}
					}
				}
			}
		}
	}
}

// A sequence of truncated draws from one shared stream stays aligned
// draw for draw with the full path — the best-of-m loop's actual usage.
func TestGeneralizedSampleTopKSequentialDraws(t *testing.T) {
	const n, k, draws = 60, 8, 12
	rng := rand.New(rand.NewSource(17))
	thetas := make([]float64, n)
	for j := range thetas {
		thetas[j] = 0.8 * math.Pow(0.97, float64(j))
	}
	center := perm.Random(n, rng)
	m, err := NewGeneralized(center, thetas)
	if err != nil {
		t.Fatal(err)
	}
	tb := m.Tables()
	thresh := tb.MissThresholds(k, nil)
	rngFull := rand.New(rand.NewSource(23))
	rngTopK := rand.New(rand.NewSource(23))
	full := make(perm.Perm, 0, n)
	out := make(perm.Perm, 0, k)
	for d := 0; d < draws; d++ {
		full = tb.SampleInto(center, full, rngFull)
		out = tb.SampleTopKInto(center, k, thresh, out, rngTopK)
		for i := range out {
			if out[i] != full[i] {
				t.Fatalf("draw %d: prefix[%d] = %d, full draw has %d", d, i, out[i], full[i])
			}
		}
	}
}

// MissThresholds entries must be valid CDF lower bounds: in [0, 1) and
// 0 wherever the step cannot miss (j ≤ k, j ≤ 1, or θ_j = 0).
func TestGeneralizedMissThresholds(t *testing.T) {
	const n = 50
	thetas := make([]float64, n)
	for j := range thetas {
		if j%4 == 0 {
			thetas[j] = 0
		} else {
			thetas[j] = 2.0 * math.Pow(0.9, float64(j))
		}
	}
	tb, err := NewGeneralizedTables(thetas)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{-3, 0, 1, 10, n, n + 5} {
		th := tb.MissThresholds(k, nil)
		if len(th) != n+1 {
			t.Fatalf("k=%d: threshold table length %d, want %d", k, len(th), n+1)
		}
		ck := k
		if ck > n {
			ck = n
		}
		if ck < 0 {
			ck = 0
		}
		for j := 0; j <= n; j++ {
			switch {
			case j <= ck || j <= 1 || thetas[max(j-1, 0)] == 0:
				if th[j] != 0 {
					t.Fatalf("k=%d j=%d: threshold %v, want 0", k, j, th[j])
				}
			default:
				if th[j] < 0 || th[j] >= 1 {
					t.Fatalf("k=%d j=%d: threshold %v outside [0, 1)", k, j, th[j])
				}
			}
		}
	}
	// Reuse of a pooled destination must not leak stale entries.
	dst := make([]float64, n+1)
	for i := range dst {
		dst[i] = 99
	}
	th := tb.MissThresholds(n+5, dst)
	for j, v := range th {
		if v != 0 {
			t.Fatalf("k=n+5 j=%d: threshold %v, want 0 (no step can miss)", j, v)
		}
	}
}

// The tables are positional: a center of any other size must panic
// rather than silently borrow a mismatched schedule.
func TestGeneralizedTablesCenterMismatchPanics(t *testing.T) {
	tb, err := NewGeneralizedTables([]float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, fn := range map[string]func(){
		"SampleInto": func() {
			tb.SampleInto(perm.Identity(2), nil, rand.New(rand.NewSource(1)))
		},
		"SampleTopKInto": func() {
			tb.SampleTopKInto(perm.Identity(4), 2, nil, nil, rand.New(rand.NewSource(1)))
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("mismatched center did not panic")
				}
			}()
			fn()
		}()
	}
}

// With precomputed thresholds and enough capacity, neither the full nor
// the truncated table-backed draw allocates.
func TestGeneralizedSampleZeroAlloc(t *testing.T) {
	const n, k = 4096, 16
	rng := rand.New(rand.NewSource(29))
	thetas := make([]float64, n)
	for j := range thetas {
		thetas[j] = 0.5 * math.Pow(0.999, float64(j))
	}
	center := perm.Random(n, rng)
	tb, err := NewGeneralizedTables(thetas)
	if err != nil {
		t.Fatal(err)
	}
	thresh := tb.MissThresholds(k, nil)
	out := make(perm.Perm, 0, n)
	if allocs := testing.AllocsPerRun(200, func() {
		out = tb.SampleTopKInto(center, k, thresh, out, rng)
	}); allocs != 0 {
		t.Fatalf("SampleTopKInto allocates %.1f times per draw, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		out = tb.SampleInto(center, out, rng)
	}); allocs != 0 {
		t.Fatalf("SampleInto allocates %.1f times per draw, want 0", allocs)
	}
}

func TestGeneralizedTablesAccessors(t *testing.T) {
	in := []float64{0.5, 0, 2}
	tb, err := NewGeneralizedTables(in)
	if err != nil {
		t.Fatal(err)
	}
	got := tb.Thetas()
	for i := range in {
		if got[i] != in[i] {
			t.Fatalf("Thetas()[%d] = %v, want %v", i, got[i], in[i])
		}
	}
	got[0] = 99
	if tb.Thetas()[0] != in[0] {
		t.Fatal("Thetas() aliases internal state")
	}
}
