package mallows

import (
	"math"
	"math/rand"

	"repro/internal/perm"
)

// Sample draws one permutation from the model via the repeated insertion
// model (RIM), which is exact for the Kendall tau Mallows distribution:
// the j-th item of the center is inserted above v ∈ {0,…,j−1} of the
// already-placed items with probability proportional to e^{−θv}; the
// total displacement Σv equals the Kendall tau distance to the center.
//
// The slice insertions make a draw O(n + Σv) — memmove-fast and linear
// in expectation for fixed θ > 0, but Θ(n²) worst case as θ → 0. The
// displacement draw itself is O(1) by inverting the truncated-geometric
// CDF. Callers who hit the quadratic regime (small dispersions,
// adversarially large n) should draw through the Fenwick-backed
// FastSampler/SampleFast, which is O(n log n) unconditionally; callers
// who only consume a short prefix should use SampleTopKInto, which
// skips the sub-window insertions entirely.
func (m *Model) Sample(rng *rand.Rand) perm.Perm {
	p, _ := m.SampleWithDistance(rng)
	return p
}

// SampleWithDistance is Sample but also returns the Kendall tau distance
// of the sample from the center, which the insertion process yields for
// free. It shares Sample's cost profile; see Sample for when the
// Fenwick-backed fast path is the better choice.
func (m *Model) SampleWithDistance(rng *rand.Rand) (perm.Perm, int64) {
	n := m.N()
	out := make(perm.Perm, 0, n)
	var dist int64
	for j := 1; j <= n; j++ {
		v := sampleDisplacement(j, m.Theta, rng)
		dist += int64(v)
		idx := j - 1 - v // v items already placed end up below the new one
		out = append(out, 0)
		copy(out[idx+1:], out[idx:])
		out[idx] = m.Center[j-1]
	}
	return out, dist
}

// SampleN draws m independent samples.
func (m *Model) SampleN(count int, rng *rand.Rand) []perm.Perm {
	out := make([]perm.Perm, count)
	for i := range out {
		out[i] = m.Sample(rng)
	}
	return out
}

// sampleDisplacement draws V ∈ {0,…,j−1} with P(V=v) ∝ e^{−θv}.
func sampleDisplacement(j int, theta float64, rng *rand.Rand) int {
	if j <= 1 {
		return 0
	}
	if theta == 0 {
		return rng.Intn(j)
	}
	q := math.Exp(-theta)
	// CDF(v) = (1 − q^{v+1})/(1 − q^{j}); invert at u ~ U(0,1):
	// v = ⌈ ln(1 − u(1−q^j)) / ln q ⌉ − 1.
	u := rng.Float64()
	x := math.Log1p(-u*(1-math.Pow(q, float64(j)))) / math.Log(q)
	v := int(math.Ceil(x)) - 1
	if v < 0 {
		v = 0
	}
	if v > j-1 {
		v = j - 1
	}
	return v
}
