package jobstore

import (
	"encoding/json"
	"sort"
	"sync"
	"time"
)

// Mem is the in-memory Store: the PR 5 job-store behavior refitted
// behind the interface. Records die with the process — it is the
// default for tests, embedded uses, and servers run without -job-dir.
type Mem struct {
	mu      sync.Mutex
	jobs    map[string]*memJob
	seq     uint64
	evicted int64
}

type memJob struct {
	job     Job
	claimed bool
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem {
	return &Mem{jobs: make(map[string]*memJob)}
}

func (m *Mem) Create(job *Job) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.seq++
	job.ID = formatID(m.seq)
	if job.State == "" {
		job.State = StatePending
	}
	if job.Created.IsZero() {
		job.Created = time.Now()
	}
	j := &memJob{job: *job.clone(), claimed: true}
	if j.job.Items == nil {
		j.job.Items = make([]json.RawMessage, j.job.Total)
	}
	m.jobs[job.ID] = j
	return nil
}

func (m *Mem) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, false
	}
	return j.job.clone(), true
}

func (m *Mem) List(q ListQuery) ListPage {
	m.mu.Lock()
	defer m.mu.Unlock()
	return listFrom(q, len(m.jobs), func(visit func(seq uint64, j *Job)) {
		for id, j := range m.jobs {
			if n, ok := seqOf(id); ok {
				visit(n, &j.job)
			}
		}
	})
}

func (m *Mem) SetState(id string, state State) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil
	}
	applyState(&j.job, state, time.Now())
	if state == StatePending {
		j.claimed = false
	}
	return nil
}

func (m *Mem) PutItem(id string, idx int, result json.RawMessage, failed bool) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil
	}
	applyItem(&j.job, idx, result, failed)
	return nil
}

func (m *Mem) MarkWebhookSent(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if j, ok := m.jobs[id]; ok {
		j.job.WebhookSent = true
	}
	return nil
}

func (m *Mem) Claim(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok || j.claimed || j.job.State.Terminal() {
		return nil, false
	}
	j.claimed = true
	j.job.State = StateRunning
	return j.job.clone(), true
}

func (m *Mem) Remove(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, false
	}
	delete(m.jobs, id)
	return j.job.clone(), true
}

func (m *Mem) Sweep(now time.Time, ttl time.Duration) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for id, j := range m.jobs {
		if expired(&j.job, now, ttl) {
			delete(m.jobs, id)
			n++
		}
	}
	m.evicted += int64(n)
	return n
}

func (m *Mem) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.jobs)
}

func (m *Mem) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := Stats{Stored: len(m.jobs), Submitted: int64(m.seq), Evicted: m.evicted}
	for _, j := range m.jobs {
		countState(&st, j.job.State)
	}
	return st
}

func (m *Mem) Close() error { return nil }

// --- shared record mechanics (used by Mem and Disk) ---

// applyState applies one state transition to a record. Terminal states
// are sticky (only Remove undoes them) and the first terminal
// transition stamps Finished; replaying a duplicate transition is
// idempotent.
func applyState(j *Job, state State, at time.Time) {
	if !state.valid() || j.State == state {
		return
	}
	if j.State.Terminal() && !state.Terminal() {
		return
	}
	j.State = state
	if state.Terminal() && j.Finished.IsZero() {
		j.Finished = at
	}
}

// applyItem stores item idx's result, growing the slot slice inside the
// job's Total bound and keeping the progress counters consistent.
// Out-of-range indices are dropped (a corrupt replay record must not
// grow unbounded memory); overwriting a filled slot is idempotent and
// never double-counts.
func applyItem(j *Job, idx int, result json.RawMessage, failed bool) {
	if idx < 0 || idx >= j.Total {
		return
	}
	if len(j.Items) < j.Total {
		grown := make([]json.RawMessage, j.Total)
		copy(grown, j.Items)
		j.Items = grown
	}
	if j.Items[idx] == nil {
		j.Completed++
		if failed {
			j.Failed++
		}
	}
	j.Items[idx] = result
}

func expired(j *Job, now time.Time, ttl time.Duration) bool {
	return j.State.Terminal() && now.Sub(j.Finished) >= ttl
}

func countState(st *Stats, s State) {
	switch s {
	case StatePending:
		st.Pending++
	case StateRunning:
		st.Running++
	case StateDone:
		st.Done++
	case StateCancelled:
		st.Cancelled++
	}
}

// listFrom assembles one List page from an implementation's record
// iterator: collect the matching jobs past the cursor, order them by
// sequence number, cut the page, and report whether anything remains.
func listFrom(q ListQuery, capHint int, each func(visit func(seq uint64, j *Job))) ListPage {
	var after uint64
	if q.After != "" {
		after, _ = seqOf(q.After) // unparseable cursors list from the start
	}
	type entry struct {
		seq uint64
		job *Job
	}
	matched := make([]entry, 0, capHint)
	each(func(seq uint64, j *Job) {
		if seq > after && q.matches(j.State) {
			matched = append(matched, entry{seq, j})
		}
	})
	sort.Slice(matched, func(a, b int) bool { return matched[a].seq < matched[b].seq })
	page := ListPage{}
	for i, e := range matched {
		if q.Limit > 0 && i >= q.Limit {
			page.NextCursor = page.Jobs[len(page.Jobs)-1].ID
			break
		}
		page.Jobs = append(page.Jobs, e.job.clone())
	}
	return page
}
