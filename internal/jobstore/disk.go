package jobstore

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Disk is the durable Store: one append-only JSON-lines WAL per job
// (`<id>.wal`) plus a compacting snapshot (`<id>.snap`, a single
// snapshot record written via tmp-file + rename). Every mutation
// appends a record; state transitions fsync (item appends ride the
// page cache, which survives a process SIGKILL, and the next
// transition flushes them). When a job's WAL grows past snapshotEvery
// records it is folded into the snapshot and truncated; a terminal
// transition folds everything into the snapshot and deletes the WAL.
//
// OpenDisk replays the directory: snapshot first, then the WAL on top,
// truncating the file at the first torn or corrupt record (the classic
// corrupt-tail rule — everything before the tear is intact because
// records are appended in order). Replay is idempotent against the
// crash windows of compaction: a duplicate create is skipped, item
// records overwrite their slot without double-counting, and a stale
// state record can never regress a terminal snapshot.
type Disk struct {
	dir string
	// snapshotEvery is the WAL-records-per-job threshold that triggers
	// mid-life compaction. In-package tests shrink it to force
	// compaction windows; everyone else gets the default.
	snapshotEvery int

	mu      sync.Mutex
	jobs    map[string]*diskJob
	seq     uint64
	evicted int64
}

type diskJob struct {
	job     Job
	claimed bool
	// wal is the open append handle; nil once the job is terminal and
	// fully compacted into its snapshot.
	wal      *os.File
	appended int
}

const defaultSnapshotEvery = 256

// maxReplayTotal bounds the item count a replayed record may declare.
// The WAL is trusted input written by this process, but replay runs
// under a fuzzer and a corrupt length must tear the tail, not allocate
// unbounded memory.
const maxReplayTotal = 1 << 20

// walRecord is one JSON line. Op selects which fields matter: "create"
// and "snapshot" carry Job; "state" carries State/At; "item" carries
// I/Failed/Result; "webhook" carries nothing.
type walRecord struct {
	Op    string          `json:"op"`
	Job   *walJob         `json:"job,omitempty"`
	State State           `json:"state,omitempty"`
	At    time.Time       `json:"at,omitzero"`
	Index int             `json:"i,omitempty"`
	Fail  bool            `json:"failed,omitempty"`
	Res   json.RawMessage `json:"result,omitempty"`
}

const (
	opCreate   = "create"
	opState    = "state"
	opItem     = "item"
	opWebhook  = "webhook"
	opSnapshot = "snapshot"
)

// walJob is the serialized Job inside create and snapshot records.
// Incomplete item slots marshal as JSON null; toJob maps them back to
// nil (a RawMessage holding literal null is not a stored result).
type walJob struct {
	ID          string            `json:"id"`
	State       State             `json:"state"`
	Created     time.Time         `json:"created"`
	Finished    time.Time         `json:"finished,omitzero"`
	Total       int               `json:"total"`
	Failed      int               `json:"failed,omitempty"`
	WebhookURL  string            `json:"webhook_url,omitempty"`
	WebhookSent bool              `json:"webhook_sent,omitempty"`
	Request     json.RawMessage   `json:"request,omitempty"`
	Items       []json.RawMessage `json:"items,omitempty"`
}

func (w *walJob) valid() bool {
	_, okID := seqOf(w.ID)
	return okID && w.State.valid() &&
		w.Total >= 0 && w.Total <= maxReplayTotal && len(w.Items) <= w.Total
}

// toJob rebuilds the in-memory record. Completed derives from the
// filled slots (applyItem's bookkeeping depends on that invariant);
// Failed is taken from the record, capped by what the slots allow.
func (w *walJob) toJob() *Job {
	j := &Job{
		ID: w.ID, State: w.State, Created: w.Created, Finished: w.Finished,
		Total: w.Total, WebhookURL: w.WebhookURL, WebhookSent: w.WebhookSent,
		Request: w.Request,
	}
	j.Items = make([]json.RawMessage, w.Total)
	for i, it := range w.Items {
		if len(it) > 0 && !bytes.Equal(it, []byte("null")) {
			j.Items[i] = it
			j.Completed++
		}
	}
	j.Failed = min(w.Failed, j.Completed)
	return j
}

func snapJob(j *Job) *walJob {
	return &walJob{
		ID: j.ID, State: j.State, Created: j.Created, Finished: j.Finished,
		Total: j.Total, Failed: j.Failed, WebhookURL: j.WebhookURL,
		WebhookSent: j.WebhookSent, Request: j.Request, Items: j.Items,
	}
}

// OpenDisk opens (creating if needed) a durable store rooted at dir
// and replays every job it finds there. Only real I/O errors fail the
// open; corrupt data is truncated away per the corrupt-tail rule.
func OpenDisk(dir string) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobstore: open %s: %w", dir, err)
	}
	d := &Disk{dir: dir, snapshotEvery: defaultSnapshotEvery, jobs: make(map[string]*diskJob)}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("jobstore: open %s: %w", dir, err)
	}
	seen := make(map[string]bool)
	var ids []string
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			// A compaction that died before its rename; the WAL (or the
			// previous snapshot) is still authoritative.
			os.Remove(filepath.Join(dir, name))
			continue
		}
		id := strings.TrimSuffix(strings.TrimSuffix(name, ".wal"), ".snap")
		if id == name {
			continue
		}
		if _, ok := seqOf(id); ok && !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	for _, id := range ids {
		if err := d.replayJob(id); err != nil {
			d.Close()
			return nil, fmt.Errorf("jobstore: replay %s: %w", id, err)
		}
	}
	return d, nil
}

func (d *Disk) walPath(id string) string  { return filepath.Join(d.dir, id+".wal") }
func (d *Disk) snapPath(id string) string { return filepath.Join(d.dir, id+".snap") }

func (d *Disk) replayJob(id string) error {
	var job *Job
	if raw, err := os.ReadFile(d.snapPath(id)); err == nil {
		var rec walRecord
		if json.Unmarshal(bytes.TrimSpace(raw), &rec) == nil &&
			rec.Op == opSnapshot && rec.Job != nil && rec.Job.ID == id && rec.Job.valid() {
			job = rec.Job.toJob()
		} else {
			// A corrupt snapshot cannot happen through the tmp+rename
			// protocol, but replay tolerates it: drop the file and fall
			// back to whatever the WAL says.
			os.Remove(d.snapPath(id))
		}
	} else if !os.IsNotExist(err) {
		return err
	}

	walPath := d.walPath(id)
	walRaw, err := os.ReadFile(walPath)
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	if err == nil {
		good := 0
		for off := 0; off < len(walRaw); {
			nl := bytes.IndexByte(walRaw[off:], '\n')
			if nl < 0 {
				break // torn final record: the newline never made it out
			}
			var rec walRecord
			if json.Unmarshal(walRaw[off:off+nl], &rec) != nil || !applyRecord(&job, id, &rec) {
				break
			}
			off += nl + 1
			good = off
		}
		if good < len(walRaw) {
			if err := os.Truncate(walPath, int64(good)); err != nil {
				return err
			}
		}
	}

	if job == nil {
		// Nothing intact — an empty or corrupt-from-the-start WAL with
		// no snapshot. The job was never acknowledged; forget it.
		os.Remove(walPath)
		os.Remove(d.snapPath(id))
		return nil
	}
	if n, ok := seqOf(job.ID); ok && n > d.seq {
		d.seq = n
	}
	dj := &diskJob{job: *job}
	if job.State.Terminal() {
		// Normalize an interrupted compaction: fold the replayed state
		// into the snapshot and drop the WAL.
		if err := d.writeSnapshot(dj); err != nil {
			return err
		}
		if err := os.Remove(walPath); err != nil && !os.IsNotExist(err) {
			return err
		}
	} else {
		f, err := os.OpenFile(walPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		dj.wal = f
	}
	d.jobs[job.ID] = dj
	return nil
}

// applyRecord folds one replayed WAL record into job. It returns false
// when the record is corrupt — replay stops there and truncates the
// tail. Records made redundant by a compaction crash window (duplicate
// create, pre-snapshot items or states) apply idempotently instead.
func applyRecord(job **Job, id string, rec *walRecord) bool {
	switch rec.Op {
	case opCreate:
		if rec.Job == nil || rec.Job.ID != id || !rec.Job.valid() {
			return false
		}
		if *job == nil {
			*job = rec.Job.toJob()
		}
		return true
	case opState:
		if *job == nil || !rec.State.valid() {
			return false
		}
		applyState(*job, rec.State, rec.At)
		return true
	case opItem:
		if *job == nil {
			return false
		}
		applyItem(*job, rec.Index, rec.Res, rec.Fail)
		return true
	case opWebhook:
		if *job == nil {
			return false
		}
		(*job).WebhookSent = true
		return true
	}
	return false
}

// append marshals rec onto the job's WAL; sync forces the record to
// stable storage before returning.
func (d *Disk) append(dj *diskJob, rec *walRecord, sync bool) error {
	raw, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if _, err := dj.wal.Write(append(raw, '\n')); err != nil {
		return err
	}
	dj.appended++
	if sync {
		return dj.wal.Sync()
	}
	return nil
}

// writeSnapshot persists the job's full state as `<id>.snap` via the
// tmp-write / fsync / rename protocol, then fsyncs the directory so
// the rename itself is durable.
func (d *Disk) writeSnapshot(dj *diskJob) error {
	raw, err := json.Marshal(&walRecord{Op: opSnapshot, Job: snapJob(&dj.job)})
	if err != nil {
		return err
	}
	tmp := d.snapPath(dj.job.ID) + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(raw, '\n')); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, d.snapPath(dj.job.ID)); err != nil {
		return err
	}
	return d.syncDir()
}

func (d *Disk) syncDir() error {
	f, err := os.Open(d.dir)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

// compact folds the job into its snapshot. Terminal jobs lose their
// WAL entirely; live jobs keep the handle and start appending from a
// truncated file.
func (d *Disk) compact(dj *diskJob) error {
	if err := d.writeSnapshot(dj); err != nil {
		return err
	}
	dj.appended = 0
	if dj.job.State.Terminal() {
		if dj.wal != nil {
			dj.wal.Close()
			dj.wal = nil
		}
		if err := os.Remove(d.walPath(dj.job.ID)); err != nil && !os.IsNotExist(err) {
			return err
		}
		return d.syncDir()
	}
	return dj.wal.Truncate(0)
}

func (d *Disk) Create(job *Job) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.seq++
	job.ID = formatID(d.seq)
	if job.State == "" {
		job.State = StatePending
	}
	if job.Created.IsZero() {
		job.Created = time.Now()
	}
	dj := &diskJob{job: *job.clone(), claimed: true}
	if dj.job.Items == nil {
		dj.job.Items = make([]json.RawMessage, dj.job.Total)
	}
	f, err := os.OpenFile(d.walPath(job.ID), os.O_CREATE|os.O_EXCL|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		d.seq--
		return err
	}
	dj.wal = f
	if err := d.append(dj, &walRecord{Op: opCreate, Job: snapJob(&dj.job)}, true); err != nil {
		f.Close()
		os.Remove(d.walPath(job.ID))
		d.seq--
		return err
	}
	if err := d.syncDir(); err != nil {
		f.Close()
		os.Remove(d.walPath(job.ID))
		d.seq--
		return err
	}
	d.jobs[job.ID] = dj
	return nil
}

func (d *Disk) Get(id string) (*Job, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	dj, ok := d.jobs[id]
	if !ok {
		return nil, false
	}
	return dj.job.clone(), true
}

func (d *Disk) List(q ListQuery) ListPage {
	d.mu.Lock()
	defer d.mu.Unlock()
	return listFrom(q, len(d.jobs), func(visit func(seq uint64, j *Job)) {
		for id, dj := range d.jobs {
			if n, ok := seqOf(id); ok {
				visit(n, &dj.job)
			}
		}
	})
}

func (d *Disk) SetState(id string, state State) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	dj, ok := d.jobs[id]
	if !ok {
		return nil
	}
	if state == StatePending {
		dj.claimed = false
	}
	before := dj.job.State
	now := time.Now()
	applyState(&dj.job, state, now)
	if dj.job.State == before || dj.wal == nil {
		return nil
	}
	if err := d.append(dj, &walRecord{Op: opState, State: dj.job.State, At: now}, false); err != nil {
		return err
	}
	if dj.job.State.Terminal() || dj.appended >= d.snapshotEvery {
		// The compaction snapshot is fsync'd, which flushes the append
		// along the way.
		return d.compact(dj)
	}
	return dj.wal.Sync()
}

func (d *Disk) PutItem(id string, idx int, result json.RawMessage, failed bool) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	dj, ok := d.jobs[id]
	if !ok || idx < 0 || idx >= dj.job.Total {
		return nil
	}
	applyItem(&dj.job, idx, result, failed)
	if dj.wal == nil {
		return nil
	}
	if err := d.append(dj, &walRecord{Op: opItem, Index: idx, Res: result, Fail: failed}, false); err != nil {
		return err
	}
	if dj.appended >= d.snapshotEvery {
		return d.compact(dj)
	}
	return nil
}

func (d *Disk) MarkWebhookSent(id string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	dj, ok := d.jobs[id]
	if !ok {
		return nil
	}
	dj.job.WebhookSent = true
	if dj.wal != nil {
		return d.append(dj, &walRecord{Op: opWebhook}, true)
	}
	// Terminal and compacted: the snapshot is the only persistent form
	// left, so rewrite it.
	return d.writeSnapshot(dj)
}

// Claim is process-local (claims are about which goroutine supervises
// the job, not about durability) — nothing is appended. After a crash
// the job replays in its last persisted state, unclaimed, and the
// resume path claims it again.
func (d *Disk) Claim(id string) (*Job, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	dj, ok := d.jobs[id]
	if !ok || dj.claimed || dj.job.State.Terminal() {
		return nil, false
	}
	dj.claimed = true
	dj.job.State = StateRunning
	return dj.job.clone(), true
}

func (d *Disk) Remove(id string) (*Job, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.removeLocked(id)
}

func (d *Disk) removeLocked(id string) (*Job, bool) {
	dj, ok := d.jobs[id]
	if !ok {
		return nil, false
	}
	if dj.wal != nil {
		dj.wal.Close()
		dj.wal = nil
	}
	os.Remove(d.walPath(id))
	os.Remove(d.snapPath(id))
	d.syncDir()
	delete(d.jobs, id)
	return dj.job.clone(), true
}

func (d *Disk) Sweep(now time.Time, ttl time.Duration) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	var expiredIDs []string
	for id, dj := range d.jobs {
		if expired(&dj.job, now, ttl) {
			expiredIDs = append(expiredIDs, id)
		}
	}
	for _, id := range expiredIDs {
		d.removeLocked(id)
	}
	d.evicted += int64(len(expiredIDs))
	return len(expiredIDs)
}

func (d *Disk) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.jobs)
}

func (d *Disk) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := Stats{Stored: len(d.jobs), Submitted: int64(d.seq), Evicted: d.evicted}
	for _, dj := range d.jobs {
		countState(&st, dj.job.State)
	}
	return st
}

func (d *Disk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, dj := range d.jobs {
		if dj.wal != nil {
			dj.wal.Close()
			dj.wal = nil
		}
	}
	return nil
}
