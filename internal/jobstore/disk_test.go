package jobstore

// Disk-only mechanics: WAL replay edge cases (empty files, torn tails,
// snapshot+tail, duplicate records), the crash windows of compaction,
// and restart round-trips. The behavioral Store contract is covered by
// the conformance suite in jobstore_test.go.

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func reopen(t *testing.T, d *Disk) *Disk {
	t.Helper()
	dir := d.dir
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	nd, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	return nd
}

// walLine marshals one record the way the store writes it.
func walLine(t *testing.T, rec *walRecord) []byte {
	t.Helper()
	raw, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	return append(raw, '\n')
}

func writeFileT(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestDiskRestartRoundTrip: the baseline durability claim — everything
// written before a clean close replays identically, and the sequence
// counter resumes past the highest replayed ID.
func TestDiskRestartRoundTrip(t *testing.T) {
	d, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	running := mustCreate(t, d, &Job{Total: 2, Request: json.RawMessage(`{"r":1}`), WebhookURL: "http://x/hook"})
	d.SetState(running.ID, StateRunning)
	d.PutItem(running.ID, 1, json.RawMessage(`{"ok":1}`), false)
	finished := mustCreate(t, d, &Job{Total: 1})
	d.SetState(finished.ID, StateRunning)
	d.PutItem(finished.ID, 0, json.RawMessage(`{"error":"x"}`), true)
	d.SetState(finished.ID, StateDone)
	d.MarkWebhookSent(finished.ID)

	d = reopen(t, d)
	defer d.Close()

	r, ok := d.Get(running.ID)
	if !ok || r.State != StateRunning || r.Completed != 1 || r.Items[0] != nil ||
		string(r.Items[1]) != `{"ok":1}` || string(r.Request) != `{"r":1}` || r.WebhookURL != "http://x/hook" {
		t.Fatalf("running job after restart: ok=%v %+v", ok, r)
	}
	// Replay leaves jobs unclaimed: the resume path must be able to
	// claim what the dead process was running.
	if _, ok := d.Claim(running.ID); !ok {
		t.Fatal("replayed job not claimable")
	}

	f, ok := d.Get(finished.ID)
	if !ok || f.State != StateDone || f.Failed != 1 || !f.WebhookSent || f.Finished.IsZero() {
		t.Fatalf("finished job after restart: ok=%v %+v", ok, f)
	}
	// Terminal jobs are fully compacted: snapshot only, no WAL left.
	if _, err := os.Stat(d.walPath(finished.ID)); !os.IsNotExist(err) {
		t.Fatalf("terminal job still has a WAL: %v", err)
	}

	if next := mustCreate(t, d, &Job{Total: 1}); next.ID != "job-000003" {
		t.Fatalf("sequence did not resume: %q", next.ID)
	}
}

// TestDiskReplayEmptyWAL: a WAL that never got its create record (the
// crash hit between open and append) identifies a job that was never
// acknowledged — replay forgets it and removes the file.
func TestDiskReplayEmptyWAL(t *testing.T) {
	dir := t.TempDir()
	writeFileT(t, filepath.Join(dir, "job-000007.wal"), nil)
	d, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.Len() != 0 {
		t.Fatalf("empty WAL materialized %d jobs", d.Len())
	}
	if _, err := os.Stat(filepath.Join(dir, "job-000007.wal")); !os.IsNotExist(err) {
		t.Fatal("empty WAL not cleaned up")
	}
	// The unacknowledged job never happened, so its ID is reusable.
	if j := mustCreate(t, d, &Job{Total: 1}); j.ID != "job-000001" {
		t.Fatalf("sequence advanced past a forgotten job: %q", j.ID)
	}
}

// TestDiskReplayTornFinalRecord: a crash mid-append leaves a final line
// with no newline. Replay keeps everything before the tear, truncates
// the file there, and the job keeps working.
func TestDiskReplayTornFinalRecord(t *testing.T) {
	dir := t.TempDir()
	id := "job-000001"
	var wal []byte
	wal = append(wal, walLine(t, &walRecord{Op: opCreate, Job: &walJob{
		ID: id, State: StatePending, Created: time.Now().UTC(), Total: 2,
	}})...)
	wal = append(wal, walLine(t, &walRecord{Op: opState, State: StateRunning, At: time.Now().UTC()})...)
	full := walLine(t, &walRecord{Op: opItem, Index: 0, Res: json.RawMessage(`{"ok":1}`)})
	wal = append(wal, full[:len(full)/2]...) // torn: half a record, no newline
	path := filepath.Join(dir, id+".wal")
	writeFileT(t, path, wal)
	goodLen := len(wal) - len(full)/2

	d, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	j, ok := d.Get(id)
	if !ok || j.State != StateRunning || j.Completed != 0 {
		t.Fatalf("job after torn replay: ok=%v %+v", ok, j)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != goodLen {
		t.Fatalf("tail not truncated: %d bytes, want %d", len(raw), goodLen)
	}
	// The store appends past the truncation point cleanly.
	if err := d.PutItem(id, 0, json.RawMessage(`{"ok":1}`), false); err != nil {
		t.Fatal(err)
	}
	d = reopen(t, d)
	defer d.Close()
	if j, _ := d.Get(id); j.Completed != 1 {
		t.Fatalf("append after truncation lost: %+v", j)
	}
}

// TestDiskReplayCorruptMiddle: garbage in the middle of the WAL tears
// everything from that point — later intact-looking records are NOT
// applied (order is the only thing that makes replay sound).
func TestDiskReplayCorruptMiddle(t *testing.T) {
	dir := t.TempDir()
	id := "job-000001"
	var wal []byte
	wal = append(wal, walLine(t, &walRecord{Op: opCreate, Job: &walJob{
		ID: id, State: StatePending, Created: time.Now().UTC(), Total: 1,
	}})...)
	wal = append(wal, []byte("{corrupt garbage}\n")...)
	wal = append(wal, walLine(t, &walRecord{Op: opState, State: StateDone, At: time.Now().UTC()})...)
	writeFileT(t, filepath.Join(dir, id+".wal"), wal)

	d, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	j, ok := d.Get(id)
	if !ok || j.State != StatePending {
		t.Fatalf("replay crossed a corrupt record: ok=%v %+v", ok, j)
	}
}

// TestDiskReplaySnapshotPlusTail: a compacted job keeps mutating; the
// replayed state is snapshot + WAL tail.
func TestDiskReplaySnapshotPlusTail(t *testing.T) {
	d, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d.snapshotEvery = 3 // force a mid-life compaction quickly
	j := mustCreate(t, d, &Job{Total: 4})
	d.SetState(j.ID, StateRunning)
	d.PutItem(j.ID, 0, json.RawMessage(`{"i":0}`), false)
	d.PutItem(j.ID, 1, json.RawMessage(`{"i":1}`), false) // 3rd append: compacts
	if _, err := os.Stat(d.snapPath(j.ID)); err != nil {
		t.Fatalf("compaction never fired: %v", err)
	}
	d.PutItem(j.ID, 2, json.RawMessage(`{"i":2}`), true) // tail past the snapshot

	d = reopen(t, d)
	defer d.Close()
	got, ok := d.Get(j.ID)
	if !ok || got.State != StateRunning || got.Completed != 3 || got.Failed != 1 {
		t.Fatalf("snapshot+tail replay: ok=%v %+v", ok, got)
	}
	for i := 0; i < 3; i++ {
		if got.Items[i] == nil {
			t.Fatalf("item %d lost across compaction", i)
		}
	}
}

// TestDiskReplayDuplicateTransitions: duplicate state records and
// re-delivered item records (both what a compaction crash window
// produces) replay idempotently — counters never double, terminal
// states never regress, Finished keeps its first stamp.
func TestDiskReplayDuplicateTransitions(t *testing.T) {
	dir := t.TempDir()
	id := "job-000001"
	first := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	later := first.Add(time.Hour)
	var wal []byte
	wal = append(wal, walLine(t, &walRecord{Op: opCreate, Job: &walJob{
		ID: id, State: StatePending, Created: first, Total: 2,
	}})...)
	wal = append(wal, walLine(t, &walRecord{Op: opCreate, Job: &walJob{ // duplicate create: skipped
		ID: id, State: StatePending, Created: later, Total: 2,
	}})...)
	wal = append(wal, walLine(t, &walRecord{Op: opState, State: StateRunning, At: first})...)
	wal = append(wal, walLine(t, &walRecord{Op: opState, State: StateRunning, At: later})...)
	wal = append(wal, walLine(t, &walRecord{Op: opItem, Index: 0, Res: json.RawMessage(`{"a":1}`), Fail: true})...)
	wal = append(wal, walLine(t, &walRecord{Op: opItem, Index: 0, Res: json.RawMessage(`{"a":2}`), Fail: true})...)
	wal = append(wal, walLine(t, &walRecord{Op: opState, State: StateDone, At: first})...)
	wal = append(wal, walLine(t, &walRecord{Op: opState, State: StateRunning, At: later})...) // regression: ignored
	wal = append(wal, walLine(t, &walRecord{Op: opState, State: StateDone, At: later})...)    // duplicate terminal
	writeFileT(t, filepath.Join(dir, id+".wal"), wal)

	d, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	j, ok := d.Get(id)
	if !ok {
		t.Fatal("job lost")
	}
	if j.State != StateDone || j.Completed != 1 || j.Failed != 1 {
		t.Fatalf("duplicates double-counted: %+v", j)
	}
	if !j.Created.Equal(first) || !j.Finished.Equal(first) {
		t.Fatalf("duplicate records moved the timestamps: created=%v finished=%v", j.Created, j.Finished)
	}
}

// TestDiskCrashBeforeSnapshotRename: crash window (a) of compaction —
// the tmp file was written but never renamed. The leftover .tmp is
// removed at open and the WAL stays authoritative.
func TestDiskCrashBeforeSnapshotRename(t *testing.T) {
	d, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	j := mustCreate(t, d, &Job{Total: 1})
	d.SetState(j.ID, StateRunning)
	tmp := d.snapPath(j.ID) + ".tmp"
	writeFileT(t, tmp, []byte(`{"op":"snapshot","job":{"id":"job-000001","state":"cancelled"`)) // half-written

	d = reopen(t, d)
	defer d.Close()
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("leftover .tmp survived reopen")
	}
	got, ok := d.Get(j.ID)
	if !ok || got.State != StateRunning {
		t.Fatalf("WAL not authoritative after dead compaction: ok=%v %+v", ok, got)
	}
}

// TestDiskCrashAfterSnapshotRename: crash window (b) — the snapshot
// landed but the WAL was never truncated, so every WAL record is also
// folded into the snapshot. Replay applies them idempotently on top.
func TestDiskCrashAfterSnapshotRename(t *testing.T) {
	dir := t.TempDir()
	id := "job-000001"
	created := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	snap := walLine(t, &walRecord{Op: opSnapshot, Job: &walJob{
		ID: id, State: StateRunning, Created: created, Total: 2, Failed: 1,
		Items: []json.RawMessage{json.RawMessage(`{"a":1}`), json.RawMessage(`{"b":1}`)},
	}})
	writeFileT(t, filepath.Join(dir, id+".snap"), snap)
	var wal []byte // the records the snapshot was folded from, un-truncated
	wal = append(wal, walLine(t, &walRecord{Op: opCreate, Job: &walJob{
		ID: id, State: StatePending, Created: created, Total: 2,
	}})...)
	wal = append(wal, walLine(t, &walRecord{Op: opState, State: StateRunning, At: created})...)
	wal = append(wal, walLine(t, &walRecord{Op: opItem, Index: 0, Res: json.RawMessage(`{"a":1}`), Fail: true})...)
	wal = append(wal, walLine(t, &walRecord{Op: opItem, Index: 1, Res: json.RawMessage(`{"b":1}`)})...)
	writeFileT(t, filepath.Join(dir, id+".wal"), wal)

	d, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	j, ok := d.Get(id)
	if !ok || j.State != StateRunning || j.Completed != 2 || j.Failed != 1 {
		t.Fatalf("stale WAL over snapshot double-applied: ok=%v %+v", ok, j)
	}
}

// TestDiskCorruptSnapshotFallsBackToWAL: an unreadable snapshot is
// dropped and the WAL replays from scratch.
func TestDiskCorruptSnapshotFallsBackToWAL(t *testing.T) {
	dir := t.TempDir()
	id := "job-000001"
	writeFileT(t, filepath.Join(dir, id+".snap"), []byte("not json at all\n"))
	writeFileT(t, filepath.Join(dir, id+".wal"), walLine(t, &walRecord{Op: opCreate, Job: &walJob{
		ID: id, State: StatePending, Created: time.Now().UTC(), Total: 1,
	}}))

	d, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if j, ok := d.Get(id); !ok || j.State != StatePending {
		t.Fatalf("WAL fallback failed: ok=%v %+v", ok, j)
	}
	if _, err := os.Stat(filepath.Join(dir, id+".snap")); !os.IsNotExist(err) {
		t.Fatal("corrupt snapshot not dropped")
	}
}

// TestDiskWebhookMarkerAfterCompaction: MarkWebhookSent on a fully
// compacted (terminal, WAL-less) job rewrites the snapshot, and the
// marker survives a restart — the at-least-once redelivery loop
// depends on exactly this.
func TestDiskWebhookMarkerAfterCompaction(t *testing.T) {
	d, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	j := mustCreate(t, d, &Job{Total: 0, WebhookURL: "http://x/hook"})
	d.SetState(j.ID, StateDone) // compacts: snapshot only
	d = reopen(t, d)
	if got, _ := d.Get(j.ID); got.WebhookSent {
		t.Fatal("marker set before any delivery")
	}
	if err := d.MarkWebhookSent(j.ID); err != nil {
		t.Fatal(err)
	}
	d = reopen(t, d)
	defer d.Close()
	if got, _ := d.Get(j.ID); !got.WebhookSent {
		t.Fatal("webhook marker lost across restart")
	}
}

// TestDiskRemoveIsDurable: a removed job stays gone after restart, and
// replay tolerates the directory shrinking under it.
func TestDiskRemoveIsDurable(t *testing.T) {
	d, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	keep := mustCreate(t, d, &Job{Total: 1})
	gone := mustCreate(t, d, &Job{Total: 1})
	d.SetState(gone.ID, StateDone)
	if _, ok := d.Remove(gone.ID); !ok {
		t.Fatal("remove failed")
	}
	d = reopen(t, d)
	defer d.Close()
	if _, ok := d.Get(gone.ID); ok {
		t.Fatal("removed job resurrected by replay")
	}
	if _, ok := d.Get(keep.ID); !ok {
		t.Fatal("unrelated job lost")
	}
}

// FuzzReplay feeds arbitrary bytes to the replay path as a job's
// snapshot and WAL. Whatever the bytes, OpenDisk must not panic, must
// not report an error (corruption is truncated, only real I/O fails
// the open), and must normalize the directory so that a second open
// replays to the identical record — the fuzzer's stand-in for "a crash
// at any byte boundary leaves a store the next process can run on".
func FuzzReplay(f *testing.F) {
	id := "job-000001"
	mk := func(recs ...*walRecord) []byte {
		var out []byte
		for _, r := range recs {
			raw, _ := json.Marshal(r)
			out = append(out, append(raw, '\n')...)
		}
		return out
	}
	create := &walRecord{Op: opCreate, Job: &walJob{ID: id, State: StatePending, Created: time.Unix(1700000000, 0).UTC(), Total: 2}}
	running := &walRecord{Op: opState, State: StateRunning, At: time.Unix(1700000001, 0).UTC()}
	item := &walRecord{Op: opItem, Index: 1, Res: json.RawMessage(`{"ok":1}`)}
	done := &walRecord{Op: opState, State: StateDone, At: time.Unix(1700000002, 0).UTC()}
	snap := &walRecord{Op: opSnapshot, Job: &walJob{ID: id, State: StateRunning, Created: time.Unix(1700000000, 0).UTC(), Total: 2,
		Items: []json.RawMessage{nil, json.RawMessage(`{"ok":1}`)}}}

	f.Add([]byte(""), []byte(""))
	f.Add([]byte(""), mk(create, running, item))
	f.Add([]byte(""), mk(create, running, item, done))
	f.Add(mk(snap), mk(create, running, item))          // un-truncated WAL behind a snapshot
	f.Add(mk(snap), []byte("{torn"))                    // torn tail
	f.Add(mk(snap)[:20], mk(create))                    // torn snapshot
	f.Add([]byte("garbage\n"), mk(create, create, running, running, done, done))
	f.Add([]byte(""), append(mk(create, running), []byte(`{"op":"item","i":999999999,"result":{}}`+"\n")...))

	f.Fuzz(func(t *testing.T, snapRaw, walRaw []byte) {
		dir := t.TempDir()
		if len(snapRaw) > 0 {
			writeFileT(t, filepath.Join(dir, id+".snap"), snapRaw)
		}
		writeFileT(t, filepath.Join(dir, id+".wal"), walRaw)

		d, err := OpenDisk(dir)
		if err != nil {
			t.Fatalf("replay errored on corrupt input (must truncate instead): %v", err)
		}
		first, ok := d.Get(id)
		if ok {
			// Whatever survived must be internally consistent.
			if first.Completed > first.Total || first.Failed > first.Completed || len(first.Items) != first.Total {
				t.Fatalf("inconsistent replayed job: %+v", first)
			}
			if !first.State.valid() {
				t.Fatalf("invalid replayed state %q", first.State)
			}
		}
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}

		// Second open: replay must be a fixpoint of its own output.
		d2, err := OpenDisk(dir)
		if err != nil {
			t.Fatalf("reopen after normalization: %v", err)
		}
		defer d2.Close()
		second, ok2 := d2.Get(id)
		if ok != ok2 {
			t.Fatalf("job existence flapped across reopen: %v vs %v", ok, ok2)
		}
		if ok {
			a, _ := json.Marshal(snapJob(first))
			b, _ := json.Marshal(snapJob(second))
			if !bytes.Equal(a, b) {
				t.Fatalf("replay not idempotent:\nfirst  %s\nsecond %s", a, b)
			}
		}
	})
}
