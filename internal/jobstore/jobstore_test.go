package jobstore

// Store-conformance tests: every behavioral contract in the Store
// interface docs, run identically against Mem and Disk. Disk-only
// mechanics (replay, compaction, crash windows) live in disk_test.go.

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"
)

// eachStore runs fn against a fresh instance of every Store
// implementation.
func eachStore(t *testing.T, fn func(t *testing.T, s Store)) {
	t.Run("mem", func(t *testing.T) {
		s := NewMem()
		defer s.Close()
		fn(t, s)
	})
	t.Run("disk", func(t *testing.T) {
		s, err := OpenDisk(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		fn(t, s)
	})
}

func mustCreate(t *testing.T, s Store, job *Job) *Job {
	t.Helper()
	if err := s.Create(job); err != nil {
		t.Fatal(err)
	}
	return job
}

func TestStoreLifecycle(t *testing.T) {
	eachStore(t, func(t *testing.T, s Store) {
		j := mustCreate(t, s, &Job{Total: 2, Request: json.RawMessage(`{"n":1}`), WebhookURL: "http://x/hook"})
		if j.ID != "job-000001" {
			t.Fatalf("first ID %q", j.ID)
		}

		got, ok := s.Get(j.ID)
		if !ok || got.State != StatePending || got.Total != 2 || len(got.Items) != 2 {
			t.Fatalf("created job: ok=%v %+v", ok, got)
		}
		if string(got.Request) != `{"n":1}` || got.WebhookURL != "http://x/hook" {
			t.Fatalf("payload fields lost: %+v", got)
		}

		// Create counts as claimed: the creating process supervises it.
		if _, ok := s.Claim(j.ID); ok {
			t.Fatal("claimed a job its creator already owns")
		}

		if err := s.SetState(j.ID, StateRunning); err != nil {
			t.Fatal(err)
		}
		if err := s.PutItem(j.ID, 0, json.RawMessage(`{"ok":true}`), false); err != nil {
			t.Fatal(err)
		}
		if err := s.PutItem(j.ID, 1, json.RawMessage(`{"error":"bad"}`), true); err != nil {
			t.Fatal(err)
		}
		got, _ = s.Get(j.ID)
		if got.Completed != 2 || got.Failed != 1 {
			t.Fatalf("progress %d/%d failed=%d", got.Completed, got.Total, got.Failed)
		}

		if err := s.SetState(j.ID, StateDone); err != nil {
			t.Fatal(err)
		}
		got, _ = s.Get(j.ID)
		if got.State != StateDone || got.Finished.IsZero() {
			t.Fatalf("terminal transition: %+v", got)
		}

		// Terminal states are sticky: only Remove undoes them.
		if err := s.SetState(j.ID, StateRunning); err != nil {
			t.Fatal(err)
		}
		if got, _ = s.Get(j.ID); got.State != StateDone {
			t.Fatalf("terminal state regressed to %q", got.State)
		}

		if err := s.MarkWebhookSent(j.ID); err != nil {
			t.Fatal(err)
		}
		if got, _ = s.Get(j.ID); !got.WebhookSent {
			t.Fatal("webhook marker lost")
		}

		if removed, ok := s.Remove(j.ID); !ok || removed.ID != j.ID {
			t.Fatalf("remove: ok=%v %+v", ok, removed)
		}
		if _, ok := s.Get(j.ID); ok {
			t.Fatal("removed job still readable")
		}
		if _, ok := s.Remove(j.ID); ok {
			t.Fatal("double remove succeeded")
		}
	})
}

// TestStoreClaimRelease: SetState(pending) releases the claim — the
// drain path hands the job back to the store, and a resuming process
// claims it again. Claim itself flips the record to running.
func TestStoreClaimRelease(t *testing.T) {
	eachStore(t, func(t *testing.T, s Store) {
		j := mustCreate(t, s, &Job{Total: 1})
		if err := s.SetState(j.ID, StateRunning); err != nil {
			t.Fatal(err)
		}
		if err := s.SetState(j.ID, StatePending); err != nil {
			t.Fatal(err)
		}
		claimed, ok := s.Claim(j.ID)
		if !ok || claimed.State != StateRunning {
			t.Fatalf("claim after release: ok=%v %+v", ok, claimed)
		}
		if _, ok := s.Claim(j.ID); ok {
			t.Fatal("double claim succeeded")
		}
		if err := s.SetState(j.ID, StateDone); err != nil {
			t.Fatal(err)
		}
		if _, ok := s.Claim(j.ID); ok {
			t.Fatal("claimed a terminal job")
		}
	})
}

// TestStoreUnknownIDsAreNoOps: mutating a job that raced a Remove is a
// no-op, never an error.
func TestStoreUnknownIDsAreNoOps(t *testing.T) {
	eachStore(t, func(t *testing.T, s Store) {
		if err := s.SetState("job-000099", StateDone); err != nil {
			t.Fatal(err)
		}
		if err := s.PutItem("job-000099", 0, json.RawMessage(`1`), false); err != nil {
			t.Fatal(err)
		}
		if err := s.MarkWebhookSent("job-000099"); err != nil {
			t.Fatal(err)
		}
		if _, ok := s.Claim("job-000099"); ok {
			t.Fatal("claimed a job the store never held")
		}
		if s.Len() != 0 {
			t.Fatalf("no-ops materialized %d jobs", s.Len())
		}
	})
}

// TestStoreItemBounds: out-of-range item indices are dropped and
// overwriting a filled slot never double-counts.
func TestStoreItemBounds(t *testing.T) {
	eachStore(t, func(t *testing.T, s Store) {
		j := mustCreate(t, s, &Job{Total: 2})
		for _, idx := range []int{-1, 2, 1 << 30} {
			if err := s.PutItem(j.ID, idx, json.RawMessage(`1`), false); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.PutItem(j.ID, 0, json.RawMessage(`1`), true); err != nil {
			t.Fatal(err)
		}
		if err := s.PutItem(j.ID, 0, json.RawMessage(`2`), true); err != nil {
			t.Fatal(err)
		}
		got, _ := s.Get(j.ID)
		if got.Completed != 1 || got.Failed != 1 {
			t.Fatalf("counters after overwrite: completed=%d failed=%d", got.Completed, got.Failed)
		}
		if string(got.Items[0]) != `2` {
			t.Fatalf("overwrite did not land: %s", got.Items[0])
		}
	})
}

func TestStoreListPaging(t *testing.T) {
	eachStore(t, func(t *testing.T, s Store) {
		for i := 0; i < 5; i++ {
			mustCreate(t, s, &Job{Total: 1})
		}
		s.SetState("job-000002", StateDone)
		s.SetState("job-000004", StateDone)

		page := s.List(ListQuery{Limit: 2})
		if len(page.Jobs) != 2 || page.Jobs[0].ID != "job-000001" || page.Jobs[1].ID != "job-000002" {
			t.Fatalf("first page: %+v", page)
		}
		if page.NextCursor != "job-000002" {
			t.Fatalf("first cursor %q", page.NextCursor)
		}
		page = s.List(ListQuery{Limit: 10, After: page.NextCursor})
		if len(page.Jobs) != 3 || page.Jobs[0].ID != "job-000003" || page.NextCursor != "" {
			t.Fatalf("second page: %+v", page)
		}

		// Filtered listing, and an exactly-full page carries no cursor.
		page = s.List(ListQuery{States: []State{StateDone}, Limit: 2})
		if len(page.Jobs) != 2 || page.Jobs[0].ID != "job-000002" || page.Jobs[1].ID != "job-000004" {
			t.Fatalf("filtered page: %+v", page)
		}
		if page.NextCursor != "" {
			t.Fatalf("exhausted filtered listing still has cursor %q", page.NextCursor)
		}

		// Unparseable cursors restart from the beginning, not error.
		page = s.List(ListQuery{After: "definitely-not-a-job", Limit: 1})
		if len(page.Jobs) != 1 || page.Jobs[0].ID != "job-000001" {
			t.Fatalf("foreign cursor page: %+v", page)
		}
	})
}

func TestStoreSweepAndStats(t *testing.T) {
	eachStore(t, func(t *testing.T, s Store) {
		a := mustCreate(t, s, &Job{Total: 1})
		mustCreate(t, s, &Job{Total: 1})
		c := mustCreate(t, s, &Job{Total: 1})
		s.SetState(a.ID, StateDone)
		s.SetState(c.ID, StateCancelled)

		st := s.Stats()
		if st.Stored != 3 || st.Pending != 1 || st.Done != 1 || st.Cancelled != 1 || st.Submitted != 3 {
			t.Fatalf("stats: %+v", st)
		}

		// Only terminal jobs past the TTL go; the pending one stays even
		// with a zero TTL.
		if n := s.Sweep(time.Now().Add(time.Hour), time.Minute); n != 2 {
			t.Fatalf("swept %d, want 2", n)
		}
		if n := s.Sweep(time.Now().Add(time.Hour), time.Minute); n != 0 {
			t.Fatalf("second sweep evicted %d", n)
		}
		st = s.Stats()
		if st.Stored != 1 || st.Pending != 1 || st.Evicted != 2 {
			t.Fatalf("stats after sweep: %+v", st)
		}
	})
}

// TestListOrdersNumerically pins the claim in the cursor docs: listing
// order is the numeric sequence, not the string form, so paging keeps
// working past job-999999 where zero-padding stops aligning the two.
func TestListOrdersNumerically(t *testing.T) {
	m := NewMem()
	defer m.Close()
	m.seq = 999998
	for i := 0; i < 3; i++ {
		mustCreate(t, m, &Job{Total: 1})
	}
	// String order would put "job-1000000" < "job-999999".
	page := m.List(ListQuery{Limit: 2})
	if page.Jobs[0].ID != "job-999999" || page.Jobs[1].ID != "job-1000000" || page.NextCursor != "job-1000000" {
		t.Fatalf("page across the padding boundary: %+v", page)
	}
	page = m.List(ListQuery{After: page.NextCursor})
	if len(page.Jobs) != 1 || page.Jobs[0].ID != "job-1000001" {
		t.Fatalf("resume across the padding boundary: %+v", page)
	}
}

func TestIDFormatRoundTrip(t *testing.T) {
	for _, n := range []uint64{1, 42, 999999, 1000000, 1 << 40} {
		id := formatID(n)
		got, ok := seqOf(id)
		if !ok || got != n {
			t.Fatalf("seqOf(formatID(%d)) = %d, %v", n, got, ok)
		}
	}
	for _, id := range []string{"", "job-", "job-x", "jobs-000001", "b2-job-000001"} {
		if _, ok := seqOf(id); ok {
			t.Fatalf("seqOf accepted foreign ID %q", id)
		}
	}
}

// TestStoreSnapshotIsolation: jobs leaving the store are copies;
// mutating them must not reach the record.
func TestStoreSnapshotIsolation(t *testing.T) {
	eachStore(t, func(t *testing.T, s Store) {
		j := mustCreate(t, s, &Job{Total: 1})
		got, _ := s.Get(j.ID)
		got.State = StateCancelled
		got.Items[0] = json.RawMessage(`"tampered"`)
		fresh, _ := s.Get(j.ID)
		if fresh.State != StatePending || fresh.Items[0] != nil {
			t.Fatalf("caller mutation reached the store: %+v", fresh)
		}
	})
}

func TestStoreConcurrentUse(t *testing.T) {
	eachStore(t, func(t *testing.T, s Store) {
		const jobs = 8
		ids := make([]string, jobs)
		for i := range ids {
			ids[i] = mustCreate(t, s, &Job{Total: 4}).ID
		}
		done := make(chan struct{})
		for i, id := range ids {
			go func(i int, id string) {
				defer func() { done <- struct{}{} }()
				s.SetState(id, StateRunning)
				for idx := 0; idx < 4; idx++ {
					s.PutItem(id, idx, json.RawMessage(fmt.Sprintf(`{"i":%d}`, idx)), false)
					s.Get(id)
					s.List(ListQuery{Limit: 3})
				}
				s.SetState(id, StateDone)
			}(i, id)
		}
		for range ids {
			<-done
		}
		st := s.Stats()
		if st.Done != jobs {
			t.Fatalf("stats after concurrent runs: %+v", st)
		}
		for _, id := range ids {
			if j, _ := s.Get(id); j.Completed != 4 {
				t.Fatalf("job %s completed %d/4", id, j.Completed)
			}
		}
	})
}
