// Package jobstore is the durable persistence layer under the serving
// pipeline's async jobs: a Store interface over job records —
// create/get/list-with-paging/update-state/claim/remove — with two
// implementations. Mem keeps everything in process memory (the PR 5
// behavior, refitted behind the interface); Disk survives restarts by
// appending every mutation to a per-job JSON-lines write-ahead log,
// fsync'd on state transitions, compacted into a single-record snapshot
// as the log grows and when the job reaches a terminal state.
//
// The store holds *records*, not goroutines: the serving layer
// (internal/service) owns supervisors, contexts, and the admission
// queue, and treats the payloads it stores here — the batch request and
// the per-item results — as opaque JSON. That split is what makes
// resume-on-restart work: a restarted process replays the WAL, Claims
// every unfinished record, and re-runs exactly the items whose results
// are missing; the per-item requests carry their own seeds, so the
// re-run is bit-identical to the run the crash interrupted.
//
// Concurrency: every Store implementation is safe for concurrent use,
// and every Job leaving the store is a snapshot copy — callers can read
// it without holding any store lock, and mutating it affects nothing.
package jobstore

import (
	"encoding/json"
	"strconv"
	"strings"
	"time"
)

// State is a job's lifecycle state. Pending and Running are "unfinished"
// (a restart resumes them); Done and Cancelled are terminal.
type State string

const (
	StatePending   State = "pending"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateCancelled State = "cancelled"
)

// Terminal reports whether s is a terminal state.
func (s State) Terminal() bool { return s == StateDone || s == StateCancelled }

// valid reports whether s is one of the four lifecycle states.
func (s State) valid() bool {
	switch s {
	case StatePending, StateRunning, StateDone, StateCancelled:
		return true
	}
	return false
}

// Job is one stored job record. The store assigns ID on Create and owns
// every field afterwards; the Request payload and the per-item Results
// are opaque JSON to the store (the serving layer defines their shape).
type Job struct {
	// ID is store-assigned, sequential ("job-000017"), and never reused
	// while the jobs that defined the sequence remain on disk.
	ID string
	// State is the lifecycle state; transitions persist through SetState.
	State State
	// Created and Finished bracket the job's life; Finished is zero
	// until the job reaches a terminal state.
	Created  time.Time
	Finished time.Time
	// Total is the number of items the job ranks; Completed counts items
	// with a stored result, Failed the subset whose result is an error.
	Total     int
	Completed int
	Failed    int
	// WebhookURL, when nonempty, is the completion-event subscription
	// registered at submit time; WebhookSent records a successful
	// delivery, so a restart redelivers unsent events (at-least-once).
	WebhookURL  string
	WebhookSent bool
	// Request is the submitted batch payload, opaque to the store.
	Request json.RawMessage
	// Items holds one result slot per item, index-aligned with the batch
	// entries; nil slots are not yet completed. Result bytes are treated
	// as immutable by everyone.
	Items []json.RawMessage
}

// clone returns a snapshot copy safe to hand out of the store: the
// Items slice is copied (the RawMessage contents are shared but
// immutable by convention).
func (j *Job) clone() *Job {
	c := *j
	if j.Items != nil {
		c.Items = make([]json.RawMessage, len(j.Items))
		copy(c.Items, j.Items)
	}
	return &c
}

// seqOf parses the numeric suffix of a store-assigned ID; ok is false
// for foreign IDs. Numeric ordering is the store's listing order — the
// zero-padded string form sorts identically only below 10^6, so cursors
// compare by sequence number, never by string.
func seqOf(id string) (uint64, bool) {
	rest, found := strings.CutPrefix(id, "job-")
	if !found || rest == "" {
		return 0, false
	}
	n, err := strconv.ParseUint(rest, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// formatID renders sequence number n as a store ID.
func formatID(n uint64) string {
	id := strconv.FormatUint(n, 10)
	for len(id) < 6 {
		id = "0" + id
	}
	return "job-" + id
}

// ListQuery selects a page of jobs, in creation (sequence) order.
type ListQuery struct {
	// States filters to the given states; empty means all.
	States []State
	// After is the exclusive cursor: only jobs created after the job
	// with this ID are returned. Empty starts from the beginning. An
	// unparseable cursor lists from the beginning (cursors are opaque
	// hints, not capabilities).
	After string
	// Limit bounds the page size; <= 0 means no bound.
	Limit int
}

func (q ListQuery) matches(s State) bool {
	if len(q.States) == 0 {
		return true
	}
	for _, want := range q.States {
		if s == want {
			return true
		}
	}
	return false
}

// ListPage is one page of List results.
type ListPage struct {
	// Jobs holds the page, in creation order (snapshot copies).
	Jobs []*Job
	// NextCursor is the After value of the next page; empty when the
	// listing is exhausted.
	NextCursor string
}

// Stats is the store-level gauge snapshot for the metrics endpoint.
type Stats struct {
	// Stored counts jobs currently held; the per-state gauges
	// partition it.
	Stored    int
	Pending   int
	Running   int
	Done      int
	Cancelled int
	// Submitted is the highest sequence number ever assigned (jobs ever
	// accepted, as far as the store can still tell after replay);
	// Evicted counts jobs dropped by Sweep since the store opened.
	Submitted int64
	Evicted   int64
}

// Store holds job records. Implementations are safe for concurrent use;
// all returned jobs are snapshot copies.
type Store interface {
	// Create assigns the next sequential ID, persists the record, and
	// fills job.ID. Durable implementations fsync before returning: a
	// job the caller acknowledged is a job a restart will find. The
	// created job counts as claimed — the creating process runs it.
	Create(job *Job) error

	// Get returns a snapshot of the job, or ok=false if the store does
	// not hold it.
	Get(id string) (*Job, bool)

	// List returns one page of jobs in creation order; see ListQuery.
	List(q ListQuery) ListPage

	// SetState persists a state transition (fsync'd in durable
	// implementations). Transitioning into a terminal state stamps
	// Finished and compacts the job's log into a snapshot; transitioning
	// a running job back to StatePending releases its claim — the drain
	// path's "hand the job back to the store" move. Unknown IDs are a
	// no-op (the job raced a Remove), not an error.
	SetState(id string, state State) error

	// PutItem persists item idx's result. Appends are not individually
	// fsync'd — a process crash cannot lose buffered appends (the page
	// cache survives SIGKILL), and the next state transition flushes
	// them. Unknown IDs are a no-op.
	PutItem(id string, idx int, result json.RawMessage, failed bool) error

	// MarkWebhookSent durably records a successful completion-event
	// delivery, so restarts stop redelivering. Unknown IDs are a no-op.
	MarkWebhookSent(id string) error

	// Claim marks an unfinished, unclaimed job as running under the
	// caller and returns its snapshot — the resume path's handshake. It
	// returns ok=false for unknown, terminal, or already-claimed jobs.
	Claim(id string) (*Job, bool)

	// Remove deletes the job and returns its last snapshot.
	Remove(id string) (*Job, bool)

	// Sweep drops terminal jobs whose Finished time is at least ttl ago
	// and returns how many it evicted.
	Sweep(now time.Time, ttl time.Duration) int

	// Len counts stored jobs.
	Len() int

	// Stats snapshots the store's gauges.
	Stats() Stats

	// Close releases the store's resources. The caller guarantees no
	// concurrent or subsequent use.
	Close() error
}
