package stats

import (
	"math"
	"math/rand"
	"testing"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestDescriptives(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !almost(m, 5, 1e-12) {
		t.Errorf("Mean = %v", m)
	}
	if v := Variance(xs); !almost(v, 32.0/7, 1e-12) {
		t.Errorf("Variance = %v", v)
	}
	if s := StdDev(xs); !almost(s, math.Sqrt(32.0/7), 1e-12) {
		t.Errorf("StdDev = %v", s)
	}
	if med := Median(xs); !almost(med, 4.5, 1e-12) {
		t.Errorf("Median = %v", med)
	}
	if mn, mx := Min(xs), Max(xs); mn != 2 || mx != 9 {
		t.Errorf("Min/Max = %v/%v", mn, mx)
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || Median(nil) != 0 {
		t.Error("empty sample should give zeros")
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Error("empty Min/Max should be infinities")
	}
	one := []float64{3}
	if Mean(one) != 3 || Variance(one) != 0 || Median(one) != 3 {
		t.Error("singleton stats wrong")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {-1, 1}, {2, 4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almost(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Quantile must not reorder the caller's slice.
	ys := []float64{3, 1, 2}
	Quantile(ys, 0.5)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Error("Quantile mutated input")
	}
}

func TestBootstrapMeanCoversTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = rng.NormFloat64() + 10
	}
	iv, err := BootstrapMean(xs, 1000, 0.95, rng)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Lo > iv.Point || iv.Point > iv.Hi {
		t.Fatalf("interval does not bracket point: %+v", iv)
	}
	if iv.Lo > 10 || iv.Hi < 10 {
		// 95% CI on 200 N(10,1) draws essentially always covers 10.
		t.Fatalf("interval misses true mean: %+v", iv)
	}
	width := iv.Hi - iv.Lo
	if width <= 0 || width > 1 {
		t.Fatalf("implausible CI width %v", width)
	}
}

func TestBootstrapMedian(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = float64(i)
	}
	iv, err := BootstrapMedian(xs, 500, 0.9, rng)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Point != 50 {
		t.Fatalf("median point = %v", iv.Point)
	}
	if iv.Lo > 50 || iv.Hi < 50 {
		t.Fatalf("CI misses median: %+v", iv)
	}
}

func TestBootstrapValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	if _, err := Bootstrap(nil, Mean, 10, 0.9, rng); err == nil {
		t.Error("accepted empty sample")
	}
	if _, err := Bootstrap([]float64{1}, Mean, 0, 0.9, rng); err == nil {
		t.Error("accepted zero resamples")
	}
	if _, err := Bootstrap([]float64{1}, Mean, 10, 0, rng); err == nil {
		t.Error("accepted confidence 0")
	}
	if _, err := Bootstrap([]float64{1}, Mean, 10, 1, rng); err == nil {
		t.Error("accepted confidence 1")
	}
}

func TestBootstrapDeterministicGivenSeed(t *testing.T) {
	xs := []float64{1, 5, 2, 8, 3}
	a, err := Bootstrap(xs, Mean, 200, 0.95, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Bootstrap(xs, Mean, 200, 0.95, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed, different intervals: %+v vs %+v", a, b)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.N != 3 || s.Mean != 2 || s.Median != 2 || s.Min != 1 || s.Max != 3 {
		t.Fatalf("Summary = %+v", s)
	}
	if !almost(s.Std, 1, 1e-12) {
		t.Fatalf("Std = %v", s.Std)
	}
}
