// Package stats provides the descriptive statistics and bootstrap
// confidence intervals used throughout the experimental evaluation
// (every figure in the paper reports bootstrap CIs with n = 1000
// resamples).
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Mean returns the arithmetic mean; 0 for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance; 0 for fewer than two
// observations.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Median returns the middle order statistic (mean of the two middle
// values for even n); 0 for an empty sample.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) using linear
// interpolation between order statistics; 0 for an empty sample.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Min returns the smallest value; +Inf for an empty sample.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value; −Inf for an empty sample.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Interval is a two-sided confidence interval around a point estimate.
type Interval struct {
	Point float64
	Lo    float64
	Hi    float64
}

// Statistic reduces a sample to a single number (e.g. Mean or Median).
type Statistic func([]float64) float64

// Bootstrap draws resamples resamples-with-replacement from xs, applies
// stat to each, and returns the percentile confidence interval at the
// given confidence level (e.g. 0.95) around stat(xs).
func Bootstrap(xs []float64, stat Statistic, resamples int, confidence float64, rng *rand.Rand) (Interval, error) {
	if len(xs) == 0 {
		return Interval{}, fmt.Errorf("stats: bootstrap of empty sample")
	}
	if resamples < 1 {
		return Interval{}, fmt.Errorf("stats: resamples = %d, want ≥ 1", resamples)
	}
	if confidence <= 0 || confidence >= 1 {
		return Interval{}, fmt.Errorf("stats: confidence = %v, want (0,1)", confidence)
	}
	estimates := make([]float64, resamples)
	resample := make([]float64, len(xs))
	for b := 0; b < resamples; b++ {
		for i := range resample {
			resample[i] = xs[rng.Intn(len(xs))]
		}
		estimates[b] = stat(resample)
	}
	sort.Float64s(estimates)
	tail := (1 - confidence) / 2
	return Interval{
		Point: stat(xs),
		Lo:    quantileSorted(estimates, tail),
		Hi:    quantileSorted(estimates, 1-tail),
	}, nil
}

// BootstrapMean is Bootstrap with the mean, the paper's default CI.
func BootstrapMean(xs []float64, resamples int, confidence float64, rng *rand.Rand) (Interval, error) {
	return Bootstrap(xs, Mean, resamples, confidence, rng)
}

// BootstrapMedian is Bootstrap with the median (used by Figs. 5 and 6).
func BootstrapMedian(xs []float64, resamples int, confidence float64, rng *rand.Rand) (Interval, error) {
	return Bootstrap(xs, Median, resamples, confidence, rng)
}

// Summary bundles the descriptive statistics reported by the figures.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	Median float64
	Min    float64
	Max    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		Std:    StdDev(xs),
		Median: Median(xs),
		Min:    Min(xs),
		Max:    Max(xs),
	}
}
