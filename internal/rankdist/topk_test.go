package rankdist

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/perm"
)

func TestKendallTopKIdentical(t *testing.T) {
	d, err := KendallTopK([]int{3, 1, 4}, []int{3, 1, 4}, 0.5)
	if err != nil || d != 0 {
		t.Fatalf("identical lists = %v, %v", d, err)
	}
}

func TestKendallTopKReducesToFullKT(t *testing.T) {
	// On two full permutations of the same set, every pair is case 1 and
	// the distance equals the ordinary Kendall tau for any p.
	rng := rand.New(rand.NewSource(110))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(10)
		a, b := perm.Random(n, rng), perm.Random(n, rng)
		want, err := KendallTau(a, b)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []float64{0, 0.5, 1} {
			got, err := KendallTopK([]int(a), []int(b), p)
			if err != nil {
				t.Fatal(err)
			}
			if got != float64(want) {
				t.Fatalf("p=%v: topk KT %v, full KT %d", p, got, want)
			}
		}
	}
}

func TestKendallTopKDisjoint(t *testing.T) {
	// Disjoint lists of size k: k² case-3 pairs (one item per list) plus
	// 2·C(k,2) case-4 pairs (both in one list, neither in the other).
	a := []int{0, 1, 2}
	b := []int{10, 11, 12}
	for _, p := range []float64{0, 0.5, 1} {
		got, err := KendallTopK(a, b, p)
		if err != nil {
			t.Fatal(err)
		}
		want := 9 + p*6
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("p=%v: disjoint distance %v, want %v", p, got, want)
		}
	}
}

func TestKendallTopKPartialOverlap(t *testing.T) {
	// a = [1 2], b = [2 3]:
	// pair {1,2}: both in a, only 2 in b → b says 2 < 1; a says 1 < 2 → 1.
	// pair {1,3}: 1 only in a, 3 only in b → case 3 → 1.
	// pair {2,3}: both in b, only 2 in a → a says 2 < 3; b says 2 < 3 → 0.
	got, err := KendallTopK([]int{1, 2}, []int{2, 3}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Fatalf("distance = %v, want 2", got)
	}
}

func TestKendallTopKMonotoneInP(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	for trial := 0; trial < 40; trial++ {
		// Random overlapping lists.
		k := 2 + rng.Intn(5)
		pool := rng.Perm(12)
		a := pool[:k]
		b := pool[k/2 : k/2+k]
		d0, err := KendallTopK(a, b, 0)
		if err != nil {
			t.Fatal(err)
		}
		dHalf, err := KendallTopK(a, b, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		d1, err := KendallTopK(a, b, 1)
		if err != nil {
			t.Fatal(err)
		}
		if d0 > dHalf+1e-12 || dHalf > d1+1e-12 {
			t.Fatalf("not monotone in p: %v %v %v", d0, dHalf, d1)
		}
	}
}

func TestKendallTopKSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(112))
	for trial := 0; trial < 40; trial++ {
		pool := rng.Perm(10)
		a := pool[:3+rng.Intn(3)]
		b := pool[2 : 5+rng.Intn(3)]
		x, err := KendallTopK(a, b, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		y, err := KendallTopK(b, a, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if x != y {
			t.Fatalf("not symmetric: %v vs %v", x, y)
		}
	}
}

func TestKendallTopKValidation(t *testing.T) {
	if _, err := KendallTopK([]int{1, 1}, []int{2}, 0.5); err == nil {
		t.Error("accepted duplicate in first list")
	}
	if _, err := KendallTopK([]int{1}, []int{2, 2}, 0.5); err == nil {
		t.Error("accepted duplicate in second list")
	}
	if _, err := KendallTopK([]int{1}, []int{2}, -0.1); err == nil {
		t.Error("accepted negative penalty")
	}
	if _, err := KendallTopK([]int{1}, []int{2}, 1.1); err == nil {
		t.Error("accepted penalty above 1")
	}
}

func TestFootruleTopK(t *testing.T) {
	// Identical lists → 0.
	d, err := FootruleTopK([]int{5, 6}, []int{5, 6}, 2)
	if err != nil || d != 0 {
		t.Fatalf("identical = %v, %v", d, err)
	}
	// a=[1 2], b=[2 3], ℓ=2:
	// item 1: |0−2| = 2; item 2: |1−0| = 1; item 3: |2−1| = 1 → 4.
	d, err = FootruleTopK([]int{1, 2}, []int{2, 3}, 2)
	if err != nil || d != 4 {
		t.Fatalf("partial overlap = %v, %v", d, err)
	}
	// Full permutations reduce to the ordinary footrule.
	rng := rand.New(rand.NewSource(113))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(8)
		a, b := perm.Random(n, rng), perm.Random(n, rng)
		want, err := Footrule(a, b)
		if err != nil {
			t.Fatal(err)
		}
		got, err := FootruleTopK([]int(a), []int(b), n)
		if err != nil {
			t.Fatal(err)
		}
		if got != float64(want) {
			t.Fatalf("topk footrule %v, full %d", got, want)
		}
	}
	if _, err := FootruleTopK([]int{1, 2}, []int{3}, 1); err == nil {
		t.Error("accepted location below list length")
	}
	if _, err := FootruleTopK([]int{1, 1}, []int{3}, 3); err == nil {
		t.Error("accepted duplicates")
	}
	if _, err := FootruleTopK([]int{2}, []int{3, 3}, 3); err == nil {
		t.Error("accepted duplicates in second list")
	}
}

func TestFootruleTopKSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(114))
	for trial := 0; trial < 30; trial++ {
		pool := rng.Perm(10)
		a := pool[:4]
		b := pool[2:6]
		x, err := FootruleTopK(a, b, 6)
		if err != nil {
			t.Fatal(err)
		}
		y, err := FootruleTopK(b, a, 6)
		if err != nil {
			t.Fatal(err)
		}
		if x != y {
			t.Fatalf("not symmetric: %v vs %v", x, y)
		}
	}
}
