// Package rankdist implements the distance metrics between rankings used
// by the paper (§III-C): Kendall tau distance and coefficient, Spearman
// distance (total squared displacement), Spearman footrule, and — because
// the related work (Wei et al., Chakraborty et al.) states results for
// them — Ulam, Cayley, and Hamming distances.
//
// All functions take two rankings over the same ground set {0,…,d−1} in
// the perm.Perm one-line representation (item at each rank) and are
// symmetric in their arguments.
package rankdist

import (
	"fmt"
	"sort"

	"repro/internal/perm"
)

func checkSizes(name string, p, q perm.Perm) error {
	if len(p) != len(q) {
		return fmt.Errorf("rankdist: %s: size mismatch %d vs %d", name, len(p), len(q))
	}
	return nil
}

// KendallTau returns the Kendall tau distance between p and q: the number
// of item pairs ranked in opposite relative order by the two rankings.
// Runs in O(d log d).
func KendallTau(p, q perm.Perm) (int64, error) {
	if err := checkSizes("KendallTau", p, q); err != nil {
		return 0, err
	}
	rel, err := p.RelativeTo(q)
	if err != nil {
		return 0, err
	}
	return rel.InversionCount(), nil
}

// MaxKendallTau returns the largest possible Kendall tau distance between
// two rankings of d items: d(d−1)/2.
func MaxKendallTau(d int) int64 {
	n := int64(d)
	return n * (n - 1) / 2
}

// KendallTauNormalized returns KendallTau scaled into [0,1] by its
// maximum d(d−1)/2. For d < 2 the distance is defined as 0.
func KendallTauNormalized(p, q perm.Perm) (float64, error) {
	d, err := KendallTau(p, q)
	if err != nil {
		return 0, err
	}
	max := MaxKendallTau(len(p))
	if max == 0 {
		return 0, nil
	}
	return float64(d) / float64(max), nil
}

// KendallTauCoefficient returns Kendall's tau correlation coefficient
// kτ = 1 − 4·d_KT/(k(k−1)) ∈ [−1, 1]; 1 means identical rankings, −1
// perfect disagreement. For k < 2 the coefficient is defined as 1.
func KendallTauCoefficient(p, q perm.Perm) (float64, error) {
	d, err := KendallTau(p, q)
	if err != nil {
		return 0, err
	}
	k := int64(len(p))
	if k < 2 {
		return 1, nil
	}
	return 1 - 4*float64(d)/float64(k*(k-1)), nil
}

// Spearman returns the Spearman distance d₂(p,q) = Σᵢ (pos_p(i) − pos_q(i))²,
// the total squared element-wise displacement (§III-C of the paper).
func Spearman(p, q perm.Perm) (int64, error) {
	if err := checkSizes("Spearman", p, q); err != nil {
		return 0, err
	}
	pp, qp := p.Positions(), q.Positions()
	var sum int64
	for item := range pp {
		d := int64(pp[item] - qp[item])
		sum += d * d
	}
	return sum, nil
}

// SpearmanRho returns the Spearman rank-correlation coefficient
// ρ = 1 − 6·d₂ / (d(d²−1)) ∈ [−1, 1]. For d < 2 it is defined as 1.
func SpearmanRho(p, q perm.Perm) (float64, error) {
	d2, err := Spearman(p, q)
	if err != nil {
		return 0, err
	}
	n := int64(len(p))
	if n < 2 {
		return 1, nil
	}
	return 1 - 6*float64(d2)/float64(n*(n*n-1)), nil
}

// Footrule returns the Spearman footrule distance
// F(p,q) = Σᵢ |pos_p(i) − pos_q(i)|, the total absolute displacement.
// ApproxMultiValuedIPF optimizes this objective.
func Footrule(p, q perm.Perm) (int64, error) {
	if err := checkSizes("Footrule", p, q); err != nil {
		return 0, err
	}
	pp, qp := p.Positions(), q.Positions()
	var sum int64
	for item := range pp {
		d := int64(pp[item] - qp[item])
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return sum, nil
}

// Ulam returns the Ulam distance: the minimum number of move-one-item
// operations transforming q into p, which equals d minus the length of
// the longest increasing subsequence of p relabeled by q. O(d log d).
func Ulam(p, q perm.Perm) (int, error) {
	if err := checkSizes("Ulam", p, q); err != nil {
		return 0, err
	}
	rel, err := p.RelativeTo(q)
	if err != nil {
		return 0, err
	}
	return len(p) - lisLength(rel), nil
}

// lisLength returns the length of the longest strictly increasing
// subsequence via patience sorting.
func lisLength(s perm.Perm) int {
	tails := make([]int, 0, len(s))
	for _, v := range s {
		i := sort.SearchInts(tails, v)
		if i == len(tails) {
			tails = append(tails, v)
		} else {
			tails[i] = v
		}
	}
	return len(tails)
}

// Cayley returns the Cayley distance: the minimum number of (arbitrary)
// transpositions transforming q into p, which equals d minus the number
// of cycles of the relative permutation.
func Cayley(p, q perm.Perm) (int, error) {
	if err := checkSizes("Cayley", p, q); err != nil {
		return 0, err
	}
	rel, err := p.RelativeTo(q)
	if err != nil {
		return 0, err
	}
	return len(p) - rel.CycleCount(), nil
}

// Hamming returns the number of ranks at which p and q hold different
// items.
func Hamming(p, q perm.Perm) (int, error) {
	if err := checkSizes("Hamming", p, q); err != nil {
		return 0, err
	}
	n := 0
	for i := range p {
		if p[i] != q[i] {
			n++
		}
	}
	return n, nil
}
