package rankdist

import (
	"fmt"
	"math"
)

// Top-k list distances after Fagin, Kumar, Sivakumar ("Comparing top k
// lists", 2003). The paper's preliminaries admit incomplete rankings
// (S_{≤d}); these metrics compare two top-k lists that need not rank
// the same items.

// validateTopK checks that a list has no duplicates.
func validateTopK(name string, list []int) (map[int]int, error) {
	pos := make(map[int]int, len(list))
	for r, item := range list {
		if _, dup := pos[item]; dup {
			return nil, fmt.Errorf("rankdist: %s: duplicate item %d", name, item)
		}
		pos[item] = r
	}
	return pos, nil
}

// KendallTopK returns Fagin's Kendall tau distance with penalty
// parameter p ∈ [0,1] between two top-k lists (not necessarily over the
// same items, not necessarily the same length). For every unordered
// pair of items appearing in either list:
//
//   - both ranked in both lists: 1 if the lists disagree on the order;
//   - both ranked in one list, one of them ranked in the other: 1 if
//     the list ranking both places the absent-elsewhere item first
//     (the other list implicitly ranks it below its bottom);
//   - each ranked in exactly one list (one item per list): 1 — the
//     lists certainly disagree;
//   - both ranked in only one and the same list counts already handled;
//     both appearing in one list and neither in the other cannot happen
//     for pairs drawn from the union; the remaining ambiguous case —
//     both items missing from one of the lists but present in the other
//     — is scored p (optimistic 0, neutral 1/2, pessimistic 1).
//
// KendallTopK(p=0) is a metric-like "optimistic" distance; p = 1/2 is
// the neutral variant Fagin et al. recommend.
func KendallTopK(a, b []int, p float64) (float64, error) {
	if math.IsNaN(p) || p < 0 || p > 1 {
		return 0, fmt.Errorf("rankdist: penalty %v outside [0,1]", p)
	}
	posA, err := validateTopK("first list", a)
	if err != nil {
		return 0, err
	}
	posB, err := validateTopK("second list", b)
	if err != nil {
		return 0, err
	}
	union := make([]int, 0, len(posA)+len(posB))
	for _, item := range a {
		union = append(union, item)
	}
	for _, item := range b {
		if _, ok := posA[item]; !ok {
			union = append(union, item)
		}
	}
	var dist float64
	for x := 0; x < len(union); x++ {
		for y := x + 1; y < len(union); y++ {
			i, j := union[x], union[y]
			ia, aOK := posA[i]
			ja, jaOK := posA[j]
			ib, bOK := posB[i]
			jb, jbOK := posB[j]
			switch {
			case aOK && jaOK && bOK && jbOK:
				// Case 1: both lists rank both items.
				if (ia-ja)*(ib-jb) < 0 {
					dist++
				}
			case aOK && jaOK && !bOK && !jbOK, !aOK && !jaOK && bOK && jbOK:
				// Case 4: one list ranks both, the other ranks neither.
				dist += p
			case aOK && jaOK: // exactly one of i, j in b
				// Case 2: b implicitly puts its missing item below.
				if bOK { // i ∈ b, j ∉ b: b says i < j; disagreement iff a says j < i
					if ja < ia {
						dist++
					}
				} else { // j ∈ b, i ∉ b: b says j < i
					if ia < ja {
						dist++
					}
				}
			case bOK && jbOK: // exactly one of i, j in a
				if aOK { // i ∈ a, j ∉ a: a says i < j
					if jb < ib {
						dist++
					}
				} else {
					if ib < jb {
						dist++
					}
				}
			default:
				// Case 3: i in one list only, j in the other only — the
				// lists necessarily disagree.
				dist++
			}
		}
	}
	return dist, nil
}

// FootruleTopK returns the induced footrule distance with location
// parameter ℓ: items absent from a list are treated as ranked at
// position ℓ (0-based; Fagin et al. use ℓ = k, one past the bottom).
// ℓ must be at least the length of both lists.
func FootruleTopK(a, b []int, location int) (float64, error) {
	if location < len(a) || location < len(b) {
		return 0, fmt.Errorf("rankdist: location %d below list length", location)
	}
	posA, err := validateTopK("first list", a)
	if err != nil {
		return 0, err
	}
	posB, err := validateTopK("second list", b)
	if err != nil {
		return 0, err
	}
	var dist float64
	seen := map[int]bool{}
	for _, item := range a {
		seen[item] = true
		pb, ok := posB[item]
		if !ok {
			pb = location
		}
		dist += math.Abs(float64(posA[item] - pb))
	}
	for _, item := range b {
		if seen[item] {
			continue
		}
		dist += math.Abs(float64(location - posB[item]))
	}
	return dist, nil
}
