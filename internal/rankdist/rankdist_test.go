package rankdist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/perm"
)

// bruteKendall counts discordant pairs directly from the position maps.
func bruteKendall(p, q perm.Perm) int64 {
	pp, qp := p.Positions(), q.Positions()
	var n int64
	d := len(p)
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			if (pp[i]-pp[j])*(qp[i]-qp[j]) < 0 {
				n++
			}
		}
	}
	return n
}

func TestKendallTauKnownValues(t *testing.T) {
	id := perm.Identity(4)
	rev := id.Reverse()
	cases := []struct {
		p, q perm.Perm
		want int64
	}{
		{id, id, 0},
		{id, rev, 6},
		{perm.MustNew(1, 0, 2, 3), id, 1},
		{perm.MustNew(0, 2, 1, 3), perm.MustNew(0, 1, 2, 3), 1},
		{perm.MustNew(2, 0, 1), perm.MustNew(0, 1, 2), 2},
	}
	for _, c := range cases {
		got, err := KendallTau(c.p, c.q)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("KendallTau(%v,%v) = %d, want %d", c.p, c.q, got, c.want)
		}
	}
}

func TestKendallTauAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 200; trial++ {
		d := rng.Intn(40)
		p, q := perm.Random(d, rng), perm.Random(d, rng)
		got, err := KendallTau(p, q)
		if err != nil {
			t.Fatal(err)
		}
		if want := bruteKendall(p, q); got != want {
			t.Fatalf("KendallTau(%v,%v) = %d, want %d", p, q, got, want)
		}
	}
}

func TestMetricAxioms(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	type metric struct {
		name string
		f    func(p, q perm.Perm) (int64, error)
	}
	metrics := []metric{
		{"KendallTau", KendallTau},
		{"Footrule", Footrule},
		{"Spearman", Spearman}, // squared: not a metric (no triangle), still symmetric + identity
		{"Ulam", func(p, q perm.Perm) (int64, error) { v, err := Ulam(p, q); return int64(v), err }},
		{"Cayley", func(p, q perm.Perm) (int64, error) { v, err := Cayley(p, q); return int64(v), err }},
		{"Hamming", func(p, q perm.Perm) (int64, error) { v, err := Hamming(p, q); return int64(v), err }},
	}
	for trial := 0; trial < 60; trial++ {
		d := 1 + rng.Intn(16)
		p, q, r := perm.Random(d, rng), perm.Random(d, rng), perm.Random(d, rng)
		for _, m := range metrics {
			dpq, err := m.f(p, q)
			if err != nil {
				t.Fatal(err)
			}
			dqp, _ := m.f(q, p)
			if dpq != dqp {
				t.Fatalf("%s not symmetric: d(p,q)=%d d(q,p)=%d", m.name, dpq, dqp)
			}
			if self, _ := m.f(p, p); self != 0 {
				t.Fatalf("%s: d(p,p) = %d", m.name, self)
			}
			if dpq < 0 {
				t.Fatalf("%s negative: %d", m.name, dpq)
			}
			if m.name == "Spearman" {
				continue // squared displacement violates the triangle inequality
			}
			dpr, _ := m.f(p, r)
			drq, _ := m.f(r, q)
			if dpq > dpr+drq {
				t.Fatalf("%s triangle violated: d(p,q)=%d > d(p,r)+d(r,q)=%d (p=%v q=%v r=%v)",
					m.name, dpq, dpr+drq, p, q, r)
			}
		}
	}
}

func TestKendallRightInvariance(t *testing.T) {
	// d(p∘t, q∘t) = d(p, q) for relabelings t: Kendall tau is
	// right-invariant. In the one-line "item list" representation,
	// relabeling items of both rankings by the same bijection preserves
	// the distance.
	rng := rand.New(rand.NewSource(12))
	relabel := func(p perm.Perm, m perm.Perm) perm.Perm {
		out := make(perm.Perm, len(p))
		for r, item := range p {
			out[r] = m[item]
		}
		return out
	}
	for trial := 0; trial < 60; trial++ {
		d := 1 + rng.Intn(16)
		p, q, m := perm.Random(d, rng), perm.Random(d, rng), perm.Random(d, rng)
		a, err := KendallTau(p, q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := KendallTau(relabel(p, m), relabel(q, m))
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("not right-invariant: %d vs %d", a, b)
		}
	}
}

func TestCoefficientBoundsAndExtremes(t *testing.T) {
	id := perm.Identity(8)
	rev := id.Reverse()
	c, err := KendallTauCoefficient(id, id)
	if err != nil || c != 1 {
		t.Fatalf("kτ(id,id) = %v, %v", c, err)
	}
	c, err = KendallTauCoefficient(id, rev)
	if err != nil || c != -1 {
		t.Fatalf("kτ(id,rev) = %v, %v", c, err)
	}
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		d := 2 + rng.Intn(20)
		p, q := perm.Random(d, rng), perm.Random(d, rng)
		c, err := KendallTauCoefficient(p, q)
		if err != nil {
			t.Fatal(err)
		}
		if c < -1-1e-12 || c > 1+1e-12 {
			t.Fatalf("kτ out of range: %v", c)
		}
	}
	// Degenerate sizes.
	if c, _ := KendallTauCoefficient(perm.Identity(1), perm.Identity(1)); c != 1 {
		t.Fatalf("kτ on singleton = %v", c)
	}
}

func TestSpearmanRho(t *testing.T) {
	id := perm.Identity(10)
	rho, err := SpearmanRho(id, id)
	if err != nil || rho != 1 {
		t.Fatalf("ρ(id,id) = %v, %v", rho, err)
	}
	rho, err = SpearmanRho(id, id.Reverse())
	if err != nil || math.Abs(rho+1) > 1e-12 {
		t.Fatalf("ρ(id,rev) = %v, %v", rho, err)
	}
}

func TestFootruleKnown(t *testing.T) {
	// id vs reverse of size 4: displacements 3,1,1,3 → 8.
	got, err := Footrule(perm.Identity(4), perm.Identity(4).Reverse())
	if err != nil || got != 8 {
		t.Fatalf("Footrule(id, rev) = %d, %v", got, err)
	}
}

func TestFootruleKendallSandwich(t *testing.T) {
	// Diaconis–Graham: KT ≤ Footrule ≤ 2·KT.
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 200; trial++ {
		d := rng.Intn(32)
		p, q := perm.Random(d, rng), perm.Random(d, rng)
		kt, err := KendallTau(p, q)
		if err != nil {
			t.Fatal(err)
		}
		fr, err := Footrule(p, q)
		if err != nil {
			t.Fatal(err)
		}
		if fr < kt || fr > 2*kt {
			t.Fatalf("Diaconis–Graham violated: KT=%d footrule=%d (p=%v q=%v)", kt, fr, p, q)
		}
	}
}

func TestUlamKnown(t *testing.T) {
	id := perm.Identity(5)
	cases := []struct {
		p    perm.Perm
		want int
	}{
		{id, 0},
		{perm.MustNew(1, 2, 3, 4, 0), 1}, // move 0 to front
		{perm.MustNew(4, 0, 1, 2, 3), 1}, // move 4 to back
		{perm.MustNew(4, 3, 2, 1, 0), 4}, // reverse: LIS = 1
	}
	for _, c := range cases {
		got, err := Ulam(c.p, id)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("Ulam(%v, id) = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestCayleyKnown(t *testing.T) {
	id := perm.Identity(4)
	cases := []struct {
		p    perm.Perm
		want int
	}{
		{id, 0},
		{perm.MustNew(1, 0, 2, 3), 1},
		{perm.MustNew(1, 0, 3, 2), 2},
		{perm.MustNew(1, 2, 3, 0), 3}, // 4-cycle needs 3 transpositions
	}
	for _, c := range cases {
		got, err := Cayley(c.p, id)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("Cayley(%v, id) = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestHamming(t *testing.T) {
	got, err := Hamming(perm.MustNew(1, 0, 2), perm.Identity(3))
	if err != nil || got != 2 {
		t.Fatalf("Hamming = %d, %v", got, err)
	}
}

func TestSizeMismatchErrors(t *testing.T) {
	p, q := perm.Identity(3), perm.Identity(4)
	if _, err := KendallTau(p, q); err == nil {
		t.Error("KendallTau accepted mismatched sizes")
	}
	if _, err := Spearman(p, q); err == nil {
		t.Error("Spearman accepted mismatched sizes")
	}
	if _, err := Footrule(p, q); err == nil {
		t.Error("Footrule accepted mismatched sizes")
	}
	if _, err := Ulam(p, q); err == nil {
		t.Error("Ulam accepted mismatched sizes")
	}
	if _, err := Cayley(p, q); err == nil {
		t.Error("Cayley accepted mismatched sizes")
	}
	if _, err := Hamming(p, q); err == nil {
		t.Error("Hamming accepted mismatched sizes")
	}
	if _, err := KendallTauNormalized(p, q); err == nil {
		t.Error("KendallTauNormalized accepted mismatched sizes")
	}
	if _, err := KendallTauCoefficient(p, q); err == nil {
		t.Error("KendallTauCoefficient accepted mismatched sizes")
	}
	if _, err := SpearmanRho(p, q); err == nil {
		t.Error("SpearmanRho accepted mismatched sizes")
	}
}

func TestNormalizedKendallRange(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 100; trial++ {
		d := rng.Intn(24)
		p, q := perm.Random(d, rng), perm.Random(d, rng)
		v, err := KendallTauNormalized(p, q)
		if err != nil {
			t.Fatal(err)
		}
		if v < 0 || v > 1 {
			t.Fatalf("normalized KT out of range: %v", v)
		}
	}
	v, err := KendallTauNormalized(perm.Identity(6), perm.Identity(6).Reverse())
	if err != nil || v != 1 {
		t.Fatalf("normalized KT of reverse = %v, %v", v, err)
	}
}

func TestQuickUlamLowerBoundsKendall(t *testing.T) {
	// Every move-one-item operation changes KT by at most d−1, and more
	// simply Ulam ≤ KT always (each adjacent transposition is a special
	// move). Verify Ulam ≤ KT and Cayley ≤ KT.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 1 + rng.Intn(16)
		p, q := perm.Random(d, rng), perm.Random(d, rng)
		kt, _ := KendallTau(p, q)
		ul, _ := Ulam(p, q)
		cy, _ := Cayley(p, q)
		return int64(ul) <= kt && int64(cy) <= kt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
