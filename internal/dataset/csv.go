package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// csvHeader is the column layout of the on-disk format.
var csvHeader = []string{"id", "credit_amount", "age_sex", "housing"}

// WriteCSV serializes the dataset with a header row.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("dataset: writing header: %w", err)
	}
	for _, r := range d.Records {
		row := []string{
			strconv.Itoa(r.ID),
			strconv.FormatFloat(r.CreditAmount, 'f', -1, 64),
			r.AgeSex.String(),
			r.Housing.String(),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("dataset: writing record %d: %w", r.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset written by WriteCSV (or hand-prepared in the
// same format, e.g. from the real UCI file).
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("dataset: empty csv")
	}
	for i, name := range csvHeader {
		if rows[0][i] != name {
			return nil, fmt.Errorf("dataset: header column %d is %q, want %q", i, rows[0][i], name)
		}
	}
	out := &Dataset{Records: make([]Record, 0, len(rows)-1)}
	for n, row := range rows[1:] {
		id, err := strconv.Atoi(row[0])
		if err != nil {
			return nil, fmt.Errorf("dataset: row %d id: %w", n+1, err)
		}
		amount, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: row %d credit_amount: %w", n+1, err)
		}
		ageSex, err := parseAgeSex(row[2])
		if err != nil {
			return nil, fmt.Errorf("dataset: row %d: %w", n+1, err)
		}
		housing, err := parseHousing(row[3])
		if err != nil {
			return nil, fmt.Errorf("dataset: row %d: %w", n+1, err)
		}
		out.Records = append(out.Records, Record{
			ID: id, CreditAmount: amount, AgeSex: ageSex, Housing: housing,
		})
	}
	return out, nil
}

func parseAgeSex(s string) (AgeSex, error) {
	for a := AgeSex(0); a < NumAgeSex; a++ {
		if a.String() == s {
			return a, nil
		}
	}
	return 0, fmt.Errorf("unknown age_sex %q", s)
}

func parseHousing(s string) (Housing, error) {
	for h := Housing(0); h < NumHousing; h++ {
		if h.String() == s {
			return h, nil
		}
	}
	return 0, fmt.Errorf("unknown housing %q", s)
}
