package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV must reject or parse arbitrary input without panicking,
// and anything it parses must survive a write/read round trip.
func FuzzReadCSV(f *testing.F) {
	f.Add("id,credit_amount,age_sex,housing\n0,100,<35-male,own\n")
	f.Add("id,credit_amount,age_sex,housing\n")
	f.Add("")
	f.Add("id,credit_amount,age_sex,housing\n0,1e3,>=35-female,rent\n1,250,<35-female,free\n")
	f.Fuzz(func(t *testing.T, input string) {
		ds, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := ds.WriteCSV(&buf); err != nil {
			t.Fatalf("parsed dataset failed to serialize: %v", err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("serialized dataset failed to parse: %v", err)
		}
		if back.Len() != ds.Len() {
			t.Fatalf("round trip changed length: %d vs %d", back.Len(), ds.Len())
		}
	})
}
