// Package dataset provides the German Credit data used by the paper's
// third experiment (§V-C): a synthetic generator that reproduces the
// paper's Table I joint distribution of the Age–Sex and Housing
// attributes exactly, plus a CSV codec for running against the real UCI
// file when it is available.
//
// The experiments consume only three columns: Credit Amount (the ranking
// score), the combined Age–Sex attribute (four groups, treated as
// known), and Housing (three groups, treated as unknown). The synthetic
// generator matches the Table I cell counts exactly — so every fairness
// constraint, group share, and infeasibility behaviour is identical to
// the real data — and draws credit amounts from a lognormal fitted to
// the published summary statistics of the real attribute (median ≈ 2320
// DM, mean ≈ 3271 DM, range 250–18424). Scores enter the experiments
// only through their order and relative magnitude in DCG, so matching
// the marginal shape suffices; DESIGN.md records this substitution.
package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// AgeSex is the paper's combined four-valued protected attribute.
type AgeSex int

// Age–Sex groups in the paper's Table I row order.
const (
	YoungFemale AgeSex = iota // age < 35, female
	YoungMale                 // age < 35, male
	OldFemale                 // age ≥ 35, female
	OldMale                   // age ≥ 35, male
	NumAgeSex
)

func (a AgeSex) String() string {
	switch a {
	case YoungFemale:
		return "<35-female"
	case YoungMale:
		return "<35-male"
	case OldFemale:
		return ">=35-female"
	case OldMale:
		return ">=35-male"
	}
	return fmt.Sprintf("agesex(%d)", int(a))
}

// Housing is the paper's three-valued "unknown" protected attribute.
type Housing int

// Housing groups in the paper's Table I column order.
const (
	Free Housing = iota
	Own
	Rent
	NumHousing
)

func (h Housing) String() string {
	switch h {
	case Free:
		return "free"
	case Own:
		return "own"
	case Rent:
		return "rent"
	}
	return fmt.Sprintf("housing(%d)", int(h))
}

// TableI is the joint Age–Sex × Housing distribution of the German
// Credit dataset as published in the paper (rows: Age–Sex in declaration
// order; columns: free, own, rent).
var TableI = [NumAgeSex][NumHousing]int{
	YoungFemale: {2, 131, 80},
	YoungMale:   {23, 261, 51},
	OldFemale:   {17, 65, 15},
	OldMale:     {66, 256, 33},
}

// Record is one credit applicant.
type Record struct {
	ID           int
	CreditAmount float64
	AgeSex       AgeSex
	Housing      Housing
}

// Dataset is an ordered collection of records; IDs index into Records.
type Dataset struct {
	Records []Record
}

// Lognormal parameters fitted to the real Credit Amount attribute:
// median 2319.5 DM fixes μ = ln 2319.5; mean 3271.258 DM fixes
// σ = √(2·ln(mean/median)).
const (
	amountMu    = 7.749107 // ln(2319.5)
	amountSigma = 0.829567 // √(2·ln(3271.258/2319.5))
	amountMin   = 250
	amountMax   = 18424
)

// Per-group location shifts of the lognormal μ. The real attribute
// correlates mildly with the demographics (male and older applicants
// take larger credits on average), and that correlation is what makes
// the score-sorted ranking unfair — without it the §V-C experiment is
// trivial. The shifts are weighted to ≈0 under the Table I shares, so
// the overall marginal keeps the published median/mean.
var (
	amountMuByAgeSex = [NumAgeSex]float64{
		YoungFemale: -0.20,
		YoungMale:   +0.10,
		OldFemale:   -0.15,
		OldMale:     +0.05,
	}
	amountMuByHousing = [NumHousing]float64{
		Free: +0.25,
		Own:  0.00,
		Rent: -0.15,
	}
)

// SyntheticGermanCredit generates the 1000-record synthetic dataset:
// cell counts exactly as in Table I, record order shuffled, credit
// amounts lognormal clamped to the real attribute's range and rounded to
// whole Deutsche Mark. Deterministic for a fixed rng seed.
func SyntheticGermanCredit(rng *rand.Rand) *Dataset {
	var records []Record
	for a := AgeSex(0); a < NumAgeSex; a++ {
		for h := Housing(0); h < NumHousing; h++ {
			for i := 0; i < TableI[a][h]; i++ {
				records = append(records, Record{AgeSex: a, Housing: h})
			}
		}
	}
	rng.Shuffle(len(records), func(i, j int) { records[i], records[j] = records[j], records[i] })
	for i := range records {
		records[i].ID = i
		records[i].CreditAmount = sampleAmount(records[i].AgeSex, records[i].Housing, rng)
	}
	return &Dataset{Records: records}
}

func sampleAmount(a AgeSex, h Housing, rng *rand.Rand) float64 {
	mu := amountMu + amountMuByAgeSex[a] + amountMuByHousing[h]
	v := math.Exp(mu + amountSigma*rng.NormFloat64())
	if v < amountMin {
		v = amountMin
	}
	if v > amountMax {
		v = amountMax
	}
	return math.Round(v)
}

// Len returns the number of records.
func (d *Dataset) Len() int { return len(d.Records) }

// Scores returns the credit amounts indexed by record ID, the ranking
// scores of §V-C.
func (d *Dataset) Scores() []float64 {
	s := make([]float64, len(d.Records))
	for i, r := range d.Records {
		s[i] = r.CreditAmount
	}
	return s
}

// AgeSexAssign returns each record's Age–Sex group id (the known
// attribute).
func (d *Dataset) AgeSexAssign() []int {
	a := make([]int, len(d.Records))
	for i, r := range d.Records {
		a[i] = int(r.AgeSex)
	}
	return a
}

// SexAssign returns each record's sex as a binary group id (0 = female,
// 1 = male), derived from the combined Age–Sex attribute. Used by the
// binary-attribute extension experiment that exercises GrBinaryIPF.
func (d *Dataset) SexAssign() []int {
	a := make([]int, len(d.Records))
	for i, r := range d.Records {
		if r.AgeSex == YoungMale || r.AgeSex == OldMale {
			a[i] = 1
		}
	}
	return a
}

// HousingAssign returns each record's Housing group id (the unknown
// attribute).
func (d *Dataset) HousingAssign() []int {
	a := make([]int, len(d.Records))
	for i, r := range d.Records {
		a[i] = int(r.Housing)
	}
	return a
}

// CrossTab recomputes the Age–Sex × Housing contingency table of the
// dataset; for synthetic data it equals TableI.
func (d *Dataset) CrossTab() [NumAgeSex][NumHousing]int {
	var tab [NumAgeSex][NumHousing]int
	for _, r := range d.Records {
		tab[r.AgeSex][r.Housing]++
	}
	return tab
}

// TopByAmount returns a new Dataset holding the n records with the
// largest credit amounts (ties broken by ID for determinism), re-indexed
// with IDs 0…n−1 in non-increasing amount order. This is the candidate
// pool for a ranking task of size n.
func (d *Dataset) TopByAmount(n int) (*Dataset, error) {
	if n < 0 || n > len(d.Records) {
		return nil, fmt.Errorf("dataset: top %d of %d records", n, len(d.Records))
	}
	idx := make([]int, len(d.Records))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ra, rb := d.Records[idx[a]], d.Records[idx[b]]
		if ra.CreditAmount != rb.CreditAmount {
			return ra.CreditAmount > rb.CreditAmount
		}
		return ra.ID < rb.ID
	})
	out := &Dataset{Records: make([]Record, n)}
	for i := 0; i < n; i++ {
		r := d.Records[idx[i]]
		r.ID = i
		out.Records[i] = r
	}
	return out, nil
}
