package dataset

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestSyntheticMatchesTableI(t *testing.T) {
	d := SyntheticGermanCredit(rand.New(rand.NewSource(1)))
	if d.Len() != 1000 {
		t.Fatalf("Len = %d", d.Len())
	}
	tab := d.CrossTab()
	if tab != TableI {
		t.Fatalf("cross tab = %v, want Table I %v", tab, TableI)
	}
	// Row and column totals as printed in the paper.
	rowTotals := []int{213, 335, 97, 355}
	for a := AgeSex(0); a < NumAgeSex; a++ {
		sum := 0
		for h := Housing(0); h < NumHousing; h++ {
			sum += tab[a][h]
		}
		if sum != rowTotals[a] {
			t.Errorf("row %v total = %d, want %d", a, sum, rowTotals[a])
		}
	}
	colTotals := []int{108, 713, 179}
	for h := Housing(0); h < NumHousing; h++ {
		sum := 0
		for a := AgeSex(0); a < NumAgeSex; a++ {
			sum += tab[a][h]
		}
		if sum != colTotals[h] {
			t.Errorf("column %v total = %d, want %d", h, sum, colTotals[h])
		}
	}
}

func TestSyntheticAmountsPlausible(t *testing.T) {
	d := SyntheticGermanCredit(rand.New(rand.NewSource(2)))
	amounts := d.Scores()
	for i, v := range amounts {
		if v < amountMin || v > amountMax {
			t.Fatalf("record %d amount %v outside [%d,%d]", i, v, amountMin, amountMax)
		}
		if v != float64(int64(v)) {
			t.Fatalf("record %d amount %v not whole DM", i, v)
		}
	}
	// Median and mean near the real attribute's published statistics.
	med := stats.Median(amounts)
	if med < 1800 || med > 2900 {
		t.Errorf("median %v implausibly far from 2320", med)
	}
	mean := stats.Mean(amounts)
	if mean < 2700 || mean > 3900 {
		t.Errorf("mean %v implausibly far from 3271", mean)
	}
}

func TestSyntheticDeterministicPerSeed(t *testing.T) {
	a := SyntheticGermanCredit(rand.New(rand.NewSource(7)))
	b := SyntheticGermanCredit(rand.New(rand.NewSource(7)))
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("records %d differ across equal seeds", i)
		}
	}
	c := SyntheticGermanCredit(rand.New(rand.NewSource(8)))
	same := true
	for i := range a.Records {
		if a.Records[i] != c.Records[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical datasets")
	}
}

func TestAssignsAndScores(t *testing.T) {
	d := SyntheticGermanCredit(rand.New(rand.NewSource(3)))
	ages := d.AgeSexAssign()
	housing := d.HousingAssign()
	scores := d.Scores()
	if len(ages) != 1000 || len(housing) != 1000 || len(scores) != 1000 {
		t.Fatal("assign/score lengths wrong")
	}
	for i, r := range d.Records {
		if ages[i] != int(r.AgeSex) || housing[i] != int(r.Housing) || scores[i] != r.CreditAmount {
			t.Fatalf("record %d assigns inconsistent", i)
		}
		if r.ID != i {
			t.Fatalf("record %d has ID %d", i, r.ID)
		}
	}
}

func TestTopByAmount(t *testing.T) {
	d := SyntheticGermanCredit(rand.New(rand.NewSource(4)))
	top, err := d.TopByAmount(50)
	if err != nil {
		t.Fatal(err)
	}
	if top.Len() != 50 {
		t.Fatalf("top.Len = %d", top.Len())
	}
	for i := 1; i < top.Len(); i++ {
		if top.Records[i].CreditAmount > top.Records[i-1].CreditAmount {
			t.Fatal("top records not sorted by amount")
		}
	}
	for i, r := range top.Records {
		if r.ID != i {
			t.Fatalf("top record %d re-indexed to %d", i, r.ID)
		}
	}
	// The 50th amount must dominate everything outside the top set.
	cut := top.Records[49].CreditAmount
	above := 0
	for _, r := range d.Records {
		if r.CreditAmount > cut {
			above++
		}
	}
	if above > 49 {
		t.Fatalf("%d amounts above the 50th largest", above)
	}
	if _, err := d.TopByAmount(-1); err == nil {
		t.Error("accepted negative n")
	}
	if _, err := d.TopByAmount(1001); err == nil {
		t.Error("accepted n beyond dataset")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := SyntheticGermanCredit(rand.New(rand.NewSource(5)))
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != d.Len() {
		t.Fatalf("round trip length %d", back.Len())
	}
	for i := range d.Records {
		if d.Records[i] != back.Records[i] {
			t.Fatalf("record %d differs after round trip", i)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"bogus,header,row,x\n",
		"id,credit_amount,age_sex,housing\nnotanint,100,<35-male,own\n",
		"id,credit_amount,age_sex,housing\n0,notafloat,<35-male,own\n",
		"id,credit_amount,age_sex,housing\n0,100,alien,own\n",
		"id,credit_amount,age_sex,housing\n0,100,<35-male,castle\n",
		"id,credit_amount,age_sex,housing\n0,100,<35-male\n",
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: accepted malformed csv", i)
		}
	}
}

func TestEnumStrings(t *testing.T) {
	if YoungFemale.String() != "<35-female" || OldMale.String() != ">=35-male" {
		t.Error("AgeSex strings wrong")
	}
	if Free.String() != "free" || Own.String() != "own" || Rent.String() != "rent" {
		t.Error("Housing strings wrong")
	}
	if AgeSex(99).String() == "" || Housing(99).String() == "" {
		t.Error("fallback strings empty")
	}
}
