package perm

import "testing"

func TestPoolRoundTrip(t *testing.T) {
	pl := NewPool(5)
	if pl.Size() != 5 {
		t.Fatalf("Size = %d, want 5", pl.Size())
	}
	b := pl.Get()
	if len(b) != 5 {
		t.Fatalf("Get returned length %d, want 5", len(b))
	}
	copy(b, Identity(5))
	pl.Put(b)
	c := pl.Get()
	if len(c) != 5 {
		t.Fatalf("recycled buffer has length %d, want 5", len(c))
	}
}

func TestPoolDropsUndersized(t *testing.T) {
	pl := NewPool(8)
	pl.Put(make(Perm, 3)) // must be dropped, not handed back short
	if got := pl.Get(); len(got) != 8 {
		t.Fatalf("Get after undersized Put returned length %d, want 8", len(got))
	}
}

func TestPoolAcceptsOversized(t *testing.T) {
	pl := NewPool(4)
	pl.Put(make(Perm, 10))
	if got := pl.Get(); len(got) != 4 {
		t.Fatalf("Get returned length %d, want 4", len(got))
	}
}

func TestPoolZeroSize(t *testing.T) {
	pl := NewPool(0)
	if got := pl.Get(); len(got) != 0 {
		t.Fatalf("Get returned length %d, want 0", len(got))
	}
}

func TestPoolStats(t *testing.T) {
	pl := NewPool(6)
	if gets, misses := pl.Stats(); gets != 0 || misses != 0 {
		t.Fatalf("fresh pool Stats = (%d, %d), want (0, 0)", gets, misses)
	}
	b := pl.Get()
	if gets, misses := pl.Stats(); gets != 1 || misses != 1 {
		t.Fatalf("after first Get, Stats = (%d, %d), want (1, 1)", gets, misses)
	}
	pl.Put(b)
	pl.Put(pl.Get()) // served from the pool: a get without a miss
	gets, misses := pl.Stats()
	if gets != 2 {
		t.Fatalf("gets = %d, want 2", gets)
	}
	// The runtime may clear a sync.Pool at any GC, so misses ≤ gets is
	// the only portable bound beyond the first-Get case above.
	if misses > gets {
		t.Fatalf("misses = %d exceeds gets = %d", misses, gets)
	}
}
