package perm

import (
	"fmt"
	"math/rand"
)

// MaxFactorialLen is the largest d for which d! fits in an int64 and
// therefore the largest size LexRank and Unrank accept.
const MaxFactorialLen = 20

// Factorial returns n! for 0 ≤ n ≤ MaxFactorialLen.
func Factorial(n int) (int64, error) {
	if n < 0 || n > MaxFactorialLen {
		return 0, fmt.Errorf("perm: factorial argument %d outside [0,%d]", n, MaxFactorialLen)
	}
	f := int64(1)
	for i := 2; i <= n; i++ {
		f *= int64(i)
	}
	return f, nil
}

// LexRank returns the 0-based index of p in the lexicographic order of all
// permutations of its size (identity has rank 0). Sizes above
// MaxFactorialLen are rejected because the rank overflows int64.
func (p Perm) LexRank() (int64, error) {
	n := len(p)
	if n > MaxFactorialLen {
		return 0, fmt.Errorf("perm: LexRank of size %d overflows int64", n)
	}
	var rank int64
	fact, _ := Factorial(n - 1)
	used := make([]bool, n)
	for r := 0; r < n; r++ {
		smaller := 0
		for v := 0; v < p[r]; v++ {
			if !used[v] {
				smaller++
			}
		}
		used[p[r]] = true
		rank += int64(smaller) * fact
		if n-1-r > 0 {
			fact /= int64(n - 1 - r)
		}
	}
	return rank, nil
}

// Unrank returns the permutation of size d with the given 0-based
// lexicographic rank.
func Unrank(d int, rank int64) (Perm, error) {
	total, err := Factorial(d)
	if err != nil {
		return nil, err
	}
	if rank < 0 || rank >= total {
		return nil, fmt.Errorf("perm: rank %d outside [0,%d)", rank, total)
	}
	if d == 0 {
		return Perm{}, nil
	}
	avail := make([]int, d)
	for i := range avail {
		avail[i] = i
	}
	p := make(Perm, d)
	fact := total / int64(d)
	for r := 0; r < d; r++ {
		idx := int(rank / fact)
		rank %= fact
		p[r] = avail[idx]
		avail = append(avail[:idx], avail[idx+1:]...)
		if d-1-r > 0 {
			fact /= int64(d - 1 - r)
		}
	}
	return p, nil
}

// Random returns a uniformly random permutation of size d drawn from rng
// via the Fisher–Yates shuffle.
func Random(d int, rng *rand.Rand) Perm {
	p := Identity(d)
	for i := d - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// All enumerates every permutation of size d in lexicographic order and
// calls fn on each; enumeration stops early if fn returns false. The Perm
// passed to fn is reused between calls — clone it to retain it.
// All is intended for exhaustive checks at small d (test oracles).
func All(d int, fn func(Perm) bool) {
	p := Identity(d)
	for {
		if !fn(p) {
			return
		}
		if !nextLex(p) {
			return
		}
	}
}

// nextLex advances p to its lexicographic successor in place, returning
// false when p was the final (descending) permutation.
func nextLex(p Perm) bool {
	n := len(p)
	i := n - 2
	for i >= 0 && p[i] >= p[i+1] {
		i--
	}
	if i < 0 {
		return false
	}
	j := n - 1
	for p[j] <= p[i] {
		j--
	}
	p[i], p[j] = p[j], p[i]
	for l, r := i+1, n-1; l < r; l, r = l+1, r-1 {
		p[l], p[r] = p[r], p[l]
	}
	return true
}
