// Package perm implements permutations over {0, …, d−1} and the
// combinatorial utilities the rest of the repository is built on:
// inverses, composition, inversion counting, Lehmer codes, and
// lexicographic ranking/unranking.
//
// # Representation
//
// A Perm p is an ordered list of items: p[r] is the item occupying rank r
// (rank 0 is the top of the ranking). The inverse view — "at which rank
// does item i sit?" — is produced by Positions. The paper writes σ(i) for
// the position of item i; that corresponds to Positions()[i] here.
package perm

import (
	"fmt"
	"strconv"
	"strings"
)

// Perm is a permutation of {0, …, len(p)−1} in one-line notation:
// p[r] is the item placed at rank r.
type Perm []int

// Identity returns the identity permutation of size d: item i at rank i.
func Identity(d int) Perm {
	p := make(Perm, d)
	for i := range p {
		p[i] = i
	}
	return p
}

// New validates items as a permutation of {0,…,len(items)−1} and returns
// it as a Perm. The slice is not copied; use Clone if the caller retains
// ownership.
func New(items []int) (Perm, error) {
	p := Perm(items)
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustNew is New for tests and literals with known-good input.
// It panics on invalid input.
func MustNew(items ...int) Perm {
	p, err := New(items)
	if err != nil {
		panic(err)
	}
	return p
}

// Validate reports whether p is a permutation of {0,…,len(p)−1}.
func (p Perm) Validate() error {
	seen := make([]bool, len(p))
	for r, item := range p {
		if item < 0 || item >= len(p) {
			return fmt.Errorf("perm: rank %d holds item %d, want range [0,%d)", r, item, len(p))
		}
		if seen[item] {
			return fmt.Errorf("perm: item %d appears more than once", item)
		}
		seen[item] = true
	}
	return nil
}

// Len returns the number of items d.
func (p Perm) Len() int { return len(p) }

// Clone returns an independent copy of p.
func (p Perm) Clone() Perm {
	q := make(Perm, len(p))
	copy(q, p)
	return q
}

// Equal reports whether p and q are the same permutation.
func (p Perm) Equal(q Perm) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Positions returns the inverse permutation: Positions()[item] is the rank
// at which item sits. Positions is an involution with respect to Perm:
// p.Positions().Positions().Equal(p) holds for every valid p.
func (p Perm) Positions() Perm {
	inv := make(Perm, len(p))
	for r, item := range p {
		inv[item] = r
	}
	return inv
}

// Inverse is an alias for Positions, provided because both names are
// natural depending on whether p is read as a ranking or a bijection.
func (p Perm) Inverse() Perm { return p.Positions() }

// Compose returns the permutation r with r[i] = p[q[i]]: apply q first,
// then p, under the "one-line list" reading (the item at rank i of the
// composition is the item that p places at the rank q names).
func (p Perm) Compose(q Perm) (Perm, error) {
	if len(p) != len(q) {
		return nil, fmt.Errorf("perm: compose size mismatch %d vs %d", len(p), len(q))
	}
	r := make(Perm, len(p))
	for i := range q {
		r[i] = p[q[i]]
	}
	return r, nil
}

// RelativeTo re-expresses p in the coordinate system of base: the result
// s satisfies s[r] = rank within base of the item p puts at rank r.
// If p == base the result is the identity; the Kendall tau distance
// between p and base equals the inversion count of the result.
func (p Perm) RelativeTo(base Perm) (Perm, error) {
	if len(p) != len(base) {
		return nil, fmt.Errorf("perm: relativeTo size mismatch %d vs %d", len(p), len(base))
	}
	basePos := base.Positions()
	s := make(Perm, len(p))
	for r, item := range p {
		s[r] = basePos[item]
	}
	return s, nil
}

// Prefix returns the first k items of the ranking. It panics if k is out
// of range, matching slice semantics.
func (p Perm) Prefix(k int) []int {
	return append([]int(nil), p[:k]...)
}

// Reverse returns the reversed ranking (bottom becomes top).
func (p Perm) Reverse() Perm {
	q := make(Perm, len(p))
	for i := range p {
		q[i] = p[len(p)-1-i]
	}
	return q
}

// Swap exchanges the items at ranks i and j in place.
func (p Perm) Swap(i, j int) { p[i], p[j] = p[j], p[i] }

// CycleCount returns the number of cycles of p viewed as a bijection.
// The Cayley distance to the identity is Len() − CycleCount().
func (p Perm) CycleCount() int {
	seen := make([]bool, len(p))
	cycles := 0
	for i := range p {
		if seen[i] {
			continue
		}
		cycles++
		for j := i; !seen[j]; j = p[j] {
			seen[j] = true
		}
	}
	return cycles
}

// String renders p in one-line notation, e.g. "⟨2 0 1⟩".
func (p Perm) String() string {
	var b strings.Builder
	b.WriteString("⟨")
	for i, v := range p {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(strconv.Itoa(v))
	}
	b.WriteString("⟩")
	return b.String()
}
