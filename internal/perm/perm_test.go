package perm

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIdentity(t *testing.T) {
	for _, d := range []int{0, 1, 2, 5, 10} {
		p := Identity(d)
		if p.Len() != d {
			t.Fatalf("Identity(%d).Len() = %d", d, p.Len())
		}
		for i, v := range p {
			if v != i {
				t.Fatalf("Identity(%d)[%d] = %d", d, i, v)
			}
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("Identity(%d) invalid: %v", d, err)
		}
	}
}

func TestNewRejectsInvalid(t *testing.T) {
	cases := [][]int{
		{0, 0},
		{1, 2},
		{-1, 0},
		{0, 2},
		{3, 1, 0},
	}
	for _, c := range cases {
		if _, err := New(c); err == nil {
			t.Errorf("New(%v) accepted invalid permutation", c)
		}
	}
	if _, err := New([]int{2, 0, 1}); err != nil {
		t.Errorf("New rejected valid permutation: %v", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic on invalid input")
		}
	}()
	MustNew(0, 0)
}

func TestPositionsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		p := Random(1+rng.Intn(40), rng)
		inv := p.Positions()
		if err := inv.Validate(); err != nil {
			t.Fatalf("Positions invalid: %v", err)
		}
		if !inv.Positions().Equal(p) {
			t.Fatalf("Positions not involutive for %v", p)
		}
		for r, item := range p {
			if inv[item] != r {
				t.Fatalf("Positions()[%d] = %d, want %d", item, inv[item], r)
			}
		}
	}
}

func TestComposeWithInverseIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		d := 1 + rng.Intn(30)
		p := Random(d, rng)
		q, err := p.Compose(p.Inverse())
		if err != nil {
			t.Fatal(err)
		}
		if !q.Equal(Identity(d)) {
			t.Fatalf("p∘p⁻¹ != id for %v (got %v)", p, q)
		}
	}
}

func TestComposeSizeMismatch(t *testing.T) {
	if _, err := Identity(3).Compose(Identity(4)); err == nil {
		t.Fatal("Compose accepted mismatched sizes")
	}
	if _, err := Identity(3).RelativeTo(Identity(4)); err == nil {
		t.Fatal("RelativeTo accepted mismatched sizes")
	}
}

func TestRelativeTo(t *testing.T) {
	p := MustNew(2, 0, 1)
	s, err := p.RelativeTo(p)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Equal(Identity(3)) {
		t.Fatalf("p relative to itself = %v, want identity", s)
	}
	// Relative to identity, the relabeling is p itself.
	s, err = p.RelativeTo(Identity(3))
	if err != nil {
		t.Fatal(err)
	}
	if !s.Equal(p) {
		t.Fatalf("p relative to identity = %v, want %v", s, p)
	}
}

func TestInversionCountSmall(t *testing.T) {
	cases := []struct {
		p    Perm
		want int64
	}{
		{Identity(0), 0},
		{Identity(1), 0},
		{Identity(5), 0},
		{MustNew(1, 0), 1},
		{MustNew(2, 1, 0), 3},
		{MustNew(4, 3, 2, 1, 0), 10},
		{MustNew(0, 2, 1), 1},
		{MustNew(3, 0, 2, 1), 4},
	}
	for _, c := range cases {
		if got := c.p.InversionCount(); got != c.want {
			t.Errorf("InversionCount(%v) = %d, want %d", c.p, got, c.want)
		}
	}
}

// bruteInversions is the quadratic oracle.
func bruteInversions(p Perm) int64 {
	var n int64
	for i := 0; i < len(p); i++ {
		for j := i + 1; j < len(p); j++ {
			if p[i] > p[j] {
				n++
			}
		}
	}
	return n
}

func TestInversionCountAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		p := Random(rng.Intn(64), rng)
		if got, want := p.InversionCount(), bruteInversions(p); got != want {
			t.Fatalf("InversionCount(%v) = %d, want %d", p, got, want)
		}
	}
}

func TestInversionCountScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	work := make([]int, 64)
	buf := make([]int, 64)
	for trial := 0; trial < 200; trial++ {
		p := Random(rng.Intn(64), rng)
		before := p.Clone()
		if got, want := p.InversionCountScratch(work, buf), bruteInversions(p); got != want {
			t.Fatalf("InversionCountScratch(%v) = %d, want %d", p, got, want)
		}
		if !p.Equal(before) {
			t.Fatalf("InversionCountScratch modified its receiver: %v -> %v", before, p)
		}
	}
	p := MustNew(3, 0, 2, 1, 5, 4)
	if avg := testing.AllocsPerRun(100, func() {
		p.InversionCountScratch(work, buf)
	}); avg != 0 {
		t.Fatalf("InversionCountScratch allocates %.1f objects per call, want 0", avg)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("undersized scratch did not panic")
		}
	}()
	Random(10, rng).InversionCountScratch(make([]int, 3), make([]int, 3))
}

func TestLehmerCodeProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		p := Random(1+rng.Intn(32), rng)
		code := p.LehmerCode()
		var sum int64
		for r, c := range code {
			if c < 0 || c > r {
				t.Fatalf("code[%d] = %d out of [0,%d] for %v", r, c, r, p)
			}
			sum += int64(c)
		}
		if sum != p.InversionCount() {
			t.Fatalf("sum(code) = %d, want inversions %d for %v", sum, p.InversionCount(), p)
		}
		back, err := FromLehmerCode(code)
		if err != nil {
			t.Fatal(err)
		}
		if !back.Equal(p) {
			t.Fatalf("FromLehmerCode(LehmerCode(%v)) = %v", p, back)
		}
	}
}

func TestFromLehmerCodeRejectsInvalid(t *testing.T) {
	if _, err := FromLehmerCode([]int{0, 2}); err == nil {
		t.Fatal("accepted code value exceeding rank")
	}
	if _, err := FromLehmerCode([]int{-1}); err == nil {
		t.Fatal("accepted negative code value")
	}
}

func TestLexRankUnrankRoundTrip(t *testing.T) {
	for d := 0; d <= 6; d++ {
		total, err := Factorial(d)
		if err != nil {
			t.Fatal(err)
		}
		var i int64
		All(d, func(p Perm) bool {
			r, err := p.LexRank()
			if err != nil {
				t.Fatal(err)
			}
			if r != i {
				t.Fatalf("d=%d perm %v has LexRank %d, want %d", d, p, r, i)
			}
			back, err := Unrank(d, r)
			if err != nil {
				t.Fatal(err)
			}
			if !back.Equal(p) {
				t.Fatalf("Unrank(%d,%d) = %v, want %v", d, r, back, p)
			}
			i++
			return true
		})
		if i != total {
			t.Fatalf("All(%d) visited %d perms, want %d", d, i, total)
		}
	}
}

func TestUnrankRejectsOutOfRange(t *testing.T) {
	if _, err := Unrank(3, 6); err == nil {
		t.Fatal("accepted rank == d!")
	}
	if _, err := Unrank(3, -1); err == nil {
		t.Fatal("accepted negative rank")
	}
	if _, err := Unrank(25, 0); err == nil {
		t.Fatal("accepted size above MaxFactorialLen")
	}
}

func TestFactorial(t *testing.T) {
	want := []int64{1, 1, 2, 6, 24, 120, 720}
	for n, w := range want {
		got, err := Factorial(n)
		if err != nil {
			t.Fatal(err)
		}
		if got != w {
			t.Errorf("Factorial(%d) = %d, want %d", n, got, w)
		}
	}
	if _, err := Factorial(21); err == nil {
		t.Error("Factorial accepted overflow size")
	}
	if _, err := Factorial(-1); err == nil {
		t.Error("Factorial accepted negative size")
	}
	f20, err := Factorial(20)
	if err != nil || f20 != 2432902008176640000 {
		t.Errorf("Factorial(20) = %d, %v", f20, err)
	}
}

func TestRandomIsValidAndCoversAll(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// Every permutation of size 3 should appear in a modest sample.
	seen := map[string]bool{}
	for i := 0; i < 600; i++ {
		p := Random(3, rng)
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		seen[p.String()] = true
	}
	if len(seen) != 6 {
		t.Fatalf("Random(3) produced %d distinct perms in 600 draws, want 6", len(seen))
	}
}

func TestReverseAndCycles(t *testing.T) {
	p := MustNew(0, 1, 2, 3)
	if got := p.Reverse(); !got.Equal(MustNew(3, 2, 1, 0)) {
		t.Fatalf("Reverse = %v", got)
	}
	if got := Identity(5).CycleCount(); got != 5 {
		t.Fatalf("identity cycles = %d", got)
	}
	if got := MustNew(1, 0, 3, 2).CycleCount(); got != 2 {
		t.Fatalf("two transpositions cycles = %d", got)
	}
	if got := MustNew(1, 2, 3, 0).CycleCount(); got != 1 {
		t.Fatalf("4-cycle cycles = %d", got)
	}
}

func TestPrefixAndClone(t *testing.T) {
	p := MustNew(3, 1, 0, 2)
	pre := p.Prefix(2)
	if len(pre) != 2 || pre[0] != 3 || pre[1] != 1 {
		t.Fatalf("Prefix(2) = %v", pre)
	}
	pre[0] = 99 // must not alias
	if p[0] != 3 {
		t.Fatal("Prefix aliases the permutation")
	}
	q := p.Clone()
	q[0] = 0
	if p[0] != 3 {
		t.Fatal("Clone aliases the permutation")
	}
}

func TestString(t *testing.T) {
	if got := MustNew(2, 0, 1).String(); got != "⟨2 0 1⟩" {
		t.Fatalf("String = %q", got)
	}
	if got := (Perm{}).String(); got != "⟨⟩" {
		t.Fatalf("empty String = %q", got)
	}
}

// randomPermFromSeed builds deterministic perms for testing/quick.
func randomPermFromSeed(seed int64, maxD int) Perm {
	rng := rand.New(rand.NewSource(seed))
	return Random(1+rng.Intn(maxD), rng)
}

func TestQuickInversionCountMatchesLehmerSum(t *testing.T) {
	f := func(seed int64) bool {
		p := randomPermFromSeed(seed, 48)
		var sum int64
		for _, c := range p.LehmerCode() {
			sum += int64(c)
		}
		return sum == p.InversionCount()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickComposeAssociative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 1 + rng.Intn(16)
		a, b, c := Random(d, rng), Random(d, rng), Random(d, rng)
		bc, _ := b.Compose(c)
		ab, _ := a.Compose(b)
		l, _ := a.Compose(bc)
		r, _ := ab.Compose(c)
		return l.Equal(r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickReverseInversions(t *testing.T) {
	// Reversing a permutation complements its inversion count:
	// inv(p) + inv(reverse(p)) = C(n,2).
	f := func(seed int64) bool {
		p := randomPermFromSeed(seed, 32)
		n := int64(p.Len())
		return p.InversionCount()+p.Reverse().InversionCount() == n*(n-1)/2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
