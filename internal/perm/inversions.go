package perm

import "fmt"

// InversionCount returns the number of pairs (i, j), i < j, with
// p[i] > p[j]. This equals the Kendall tau distance between p and the
// identity permutation. The count is computed by a bottom-up merge sort
// in O(n log n) time and O(n) scratch space.
func (p Perm) InversionCount() int64 {
	n := len(p)
	if n < 2 {
		return 0
	}
	return p.InversionCountScratch(make([]int, n), make([]int, n))
}

// InversionCountScratch is InversionCount computing through
// caller-provided scratch: work and buf must each have capacity ≥
// len(p) (it panics otherwise) and come back with unspecified contents.
// With reused scratch the count performs no allocation, which is what
// the serving layer's per-draw selection criteria rely on. p itself is
// not modified.
func (p Perm) InversionCountScratch(work, buf []int) int64 {
	n := len(p)
	if n < 2 {
		return 0
	}
	work, buf = work[:n], buf[:n]
	copy(work, p)
	var inv int64
	for width := 1; width < n; width *= 2 {
		for lo := 0; lo < n-width; lo += 2 * width {
			mid := lo + width
			hi := mid + width
			if hi > n {
				hi = n
			}
			inv += mergeCount(work, buf, lo, mid, hi)
		}
	}
	return inv
}

// mergeCount merges the sorted runs work[lo:mid] and work[mid:hi] into
// place and returns the number of inversions across the two runs.
func mergeCount(work, buf []int, lo, mid, hi int) int64 {
	copy(buf[lo:hi], work[lo:hi])
	i, j := lo, mid
	var inv int64
	for k := lo; k < hi; k++ {
		switch {
		case i >= mid:
			work[k] = buf[j]
			j++
		case j >= hi:
			work[k] = buf[i]
			i++
		case buf[i] <= buf[j]:
			work[k] = buf[i]
			i++
		default:
			// buf[j] jumps ahead of every element remaining in the left
			// run; each of those pairs is an inversion.
			work[k] = buf[j]
			j++
			inv += int64(mid - i)
		}
	}
	return inv
}

// LehmerCode returns the inversion table L of p: L[r] is the number of
// items at ranks before r that are larger than p[r]. The sum of the code
// equals InversionCount, and the code determines p uniquely.
func (p Perm) LehmerCode() []int {
	n := len(p)
	code := make([]int, n)
	// Fenwick tree over item values; tree[i] counts items already seen
	// with value < i (1-based internally).
	tree := make([]int, n+1)
	add := func(i int) {
		for i++; i <= n; i += i & (-i) {
			tree[i]++
		}
	}
	prefix := func(i int) int { // count of seen values in [0, i]
		s := 0
		for i++; i > 0; i -= i & (-i) {
			s += tree[i]
		}
		return s
	}
	for r, item := range p {
		// r items seen so far; those ≤ item are not inversions.
		code[r] = r - prefix(item)
		add(item)
	}
	return code
}

// FromLehmerCode reconstructs the permutation whose Lehmer code is code.
// It is the inverse of LehmerCode: FromLehmerCode(p.LehmerCode()) == p.
//
// Reconstruction runs right to left: at rank r every not-yet-assigned item
// sits at a rank before r, so code[r] — the number of earlier larger items
// — equals the number of remaining items larger than p[r]. Hence p[r] is
// the (m−1−code[r])-th smallest of the m remaining items.
func FromLehmerCode(code []int) (Perm, error) {
	n := len(code)
	p := make(Perm, n)
	remaining := make([]int, n)
	for i := range remaining {
		remaining[i] = i
	}
	for r := n - 1; r >= 0; r-- {
		c := code[r]
		if c < 0 || c > r {
			return nil, errCode(r, c)
		}
		idx := len(remaining) - 1 - c
		p[r] = remaining[idx]
		remaining = append(remaining[:idx], remaining[idx+1:]...)
	}
	return p, nil
}

func errCode(r, c int) error {
	return fmt.Errorf("perm: invalid Lehmer code value %d at rank %d", c, r)
}
