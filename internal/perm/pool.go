package perm

import "sync"

// Pool recycles scratch permutations of one fixed size across goroutines.
// A serving layer that ranks many same-sized requests uses it to keep
// sampling and selection allocation-free on the steady state: Get a
// buffer, let a sampler overwrite it, Put it back.
//
// Buffers come back with unspecified contents — they are scratch, not
// permutations; callers must fully overwrite them before reading.
type Pool struct {
	d int
	p sync.Pool
}

// NewPool returns a pool of scratch permutations of size d.
func NewPool(d int) *Pool {
	pl := &Pool{d: d}
	pl.p.New = func() any { return make(Perm, d) }
	return pl
}

// Size returns the length of the permutations the pool hands out.
func (pl *Pool) Size() int { return pl.d }

// Get returns a scratch permutation of length Size with unspecified
// contents and capacity ≥ Size.
func (pl *Pool) Get() Perm {
	return pl.p.Get().(Perm)[:pl.d]
}

// Put returns a buffer to the pool. Buffers of a different capacity are
// dropped, so a pool can safely receive slices that were reallocated or
// came from elsewhere.
func (pl *Pool) Put(q Perm) {
	if cap(q) < pl.d {
		return
	}
	pl.p.Put(q[:pl.d])
}
