package perm

import (
	"sync"
	"sync/atomic"
)

// Pool recycles scratch permutations of one fixed size across goroutines.
// A serving layer that ranks many same-sized requests uses it to keep
// sampling and selection allocation-free on the steady state: Get a
// buffer, let a sampler overwrite it, Put it back.
//
// Buffers come back with unspecified contents — they are scratch, not
// permutations; callers must fully overwrite them before reading.
//
// The pool counts its traffic: Stats reports how many Gets it served and
// how many of those had to allocate a fresh buffer, so a serving layer
// can surface pooled-buffer reuse as a health signal — a miss rate stuck
// near 1 means the steady state is not steady.
type Pool struct {
	d      int
	p      sync.Pool
	gets   atomic.Uint64
	misses atomic.Uint64
}

// NewPool returns a pool of scratch permutations of size d.
func NewPool(d int) *Pool {
	pl := &Pool{d: d}
	pl.p.New = func() any {
		pl.misses.Add(1)
		return make(Perm, d)
	}
	return pl
}

// Size returns the length of the permutations the pool hands out.
func (pl *Pool) Size() int { return pl.d }

// Get returns a scratch permutation of length Size with unspecified
// contents and capacity ≥ Size.
func (pl *Pool) Get() Perm {
	pl.gets.Add(1)
	return pl.p.Get().(Perm)[:pl.d]
}

// Stats returns the number of Gets served so far and how many of them
// missed the pool and allocated. gets − misses is the reuse count; the
// runtime may evict idle pooled buffers between GCs, so misses can grow
// even under a perfectly disciplined Get/Put pattern.
func (pl *Pool) Stats() (gets, misses uint64) {
	return pl.gets.Load(), pl.misses.Load()
}

// Put returns a buffer to the pool. Buffers of a different capacity are
// dropped, so a pool can safely receive slices that were reallocated or
// came from elsewhere.
func (pl *Pool) Put(q Perm) {
	if cap(q) < pl.d {
		return
	}
	pl.p.Put(q[:pl.d])
}
