package perm

import (
	"testing"
)

// FuzzLehmerRoundTrip feeds arbitrary byte strings interpreted as
// Lehmer digits; valid codes must round-trip, invalid ones must be
// rejected without panicking.
func FuzzLehmerRoundTrip(f *testing.F) {
	f.Add([]byte{0, 1, 2})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0, 1, 0, 3, 2})
	f.Fuzz(func(t *testing.T, digits []byte) {
		if len(digits) > 32 {
			digits = digits[:32]
		}
		code := make([]int, len(digits))
		valid := true
		for i, d := range digits {
			code[i] = int(d)
			if code[i] > i {
				valid = false
			}
		}
		p, err := FromLehmerCode(code)
		if !valid {
			if err == nil {
				t.Fatalf("invalid code %v accepted", code)
			}
			return
		}
		if err != nil {
			t.Fatalf("valid code %v rejected: %v", code, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("reconstructed perm invalid: %v", err)
		}
		back := p.LehmerCode()
		for i := range code {
			if back[i] != code[i] {
				t.Fatalf("round trip: %v → %v → %v", code, p, back)
			}
		}
	})
}

// FuzzValidate must never panic on arbitrary int slices.
func FuzzValidate(f *testing.F) {
	f.Add([]byte{0, 1, 2})
	f.Add([]byte{255, 0})
	f.Fuzz(func(t *testing.T, raw []byte) {
		p := make(Perm, len(raw))
		for i, b := range raw {
			p[i] = int(b) - 128
		}
		err := p.Validate()
		// If Validate accepts, every derived operation must be safe.
		if err == nil {
			_ = p.Positions()
			_ = p.InversionCount()
			_ = p.LehmerCode()
			_ = p.CycleCount()
		}
	})
}
