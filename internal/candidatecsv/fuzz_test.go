package candidatecsv

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead must never panic; whatever parses must also serialize.
func FuzzRead(f *testing.F) {
	f.Add("id,score,group\nx,1,g\n")
	f.Add("id,score,group,attr\nx,1,g,v\n")
	f.Add("")
	f.Add("id,score,group\nx,NaN,g\n")
	f.Fuzz(func(t *testing.T, input string) {
		cands, extra, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, cands, extra); err != nil {
			t.Fatalf("parsed candidates failed to serialize: %v", err)
		}
	})
}
