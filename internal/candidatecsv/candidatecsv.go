// Package candidatecsv reads and writes the candidate CSV format of the
// fairrank CLI: a header `id,score,group` followed by one row per
// candidate; any extra header columns become evaluation attributes
// (Candidate.Attrs).
package candidatecsv

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	fairrank "repro"
)

// Read parses candidates and returns them together with the names of
// the extra attribute columns (in header order).
func Read(r io.Reader) ([]fairrank.Candidate, []string, error) {
	rows, err := csv.NewReader(r).ReadAll()
	if err != nil {
		return nil, nil, fmt.Errorf("candidatecsv: %w", err)
	}
	if len(rows) < 2 {
		return nil, nil, fmt.Errorf("candidatecsv: need a header and at least one candidate")
	}
	head := rows[0]
	if len(head) < 3 || head[0] != "id" || head[1] != "score" || head[2] != "group" {
		return nil, nil, fmt.Errorf("candidatecsv: header must start with id,score,group; got %v", head)
	}
	extra := head[3:]
	out := make([]fairrank.Candidate, 0, len(rows)-1)
	for n, row := range rows[1:] {
		if len(row) != len(head) {
			return nil, nil, fmt.Errorf("candidatecsv: row %d has %d fields, want %d", n+1, len(row), len(head))
		}
		score, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			return nil, nil, fmt.Errorf("candidatecsv: row %d score: %w", n+1, err)
		}
		c := fairrank.Candidate{ID: row[0], Score: score, Group: row[2]}
		if len(extra) > 0 {
			c.Attrs = make(map[string]string, len(extra))
			for i, name := range extra {
				c.Attrs[name] = row[3+i]
			}
		}
		out = append(out, c)
	}
	return out, extra, nil
}

// WritePool renders candidates in the input format Read parses (header
// id,score,group plus the extra attribute columns) — the inverse of
// Read, used to materialize generated pools as CLI input.
func WritePool(w io.Writer, pool []fairrank.Candidate, extra []string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(append([]string{"id", "score", "group"}, extra...)); err != nil {
		return fmt.Errorf("candidatecsv: %w", err)
	}
	for _, c := range pool {
		row := []string{c.ID, strconv.FormatFloat(c.Score, 'g', -1, 64), c.Group}
		for _, name := range extra {
			row = append(row, c.Attrs[name])
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("candidatecsv: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("candidatecsv: %w", err)
	}
	return nil
}

// Write renders ranked candidates with a 1-based rank column, echoing
// the extra attribute columns in the given order.
func Write(w io.Writer, ranked []fairrank.Candidate, extra []string) error {
	cw := csv.NewWriter(w)
	header := append([]string{"rank", "id", "score", "group"}, extra...)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("candidatecsv: %w", err)
	}
	for r, c := range ranked {
		row := []string{
			strconv.Itoa(r + 1), c.ID,
			strconv.FormatFloat(c.Score, 'g', -1, 64), c.Group,
		}
		for _, name := range extra {
			row = append(row, c.Attrs[name])
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("candidatecsv: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("candidatecsv: %w", err)
	}
	return nil
}
