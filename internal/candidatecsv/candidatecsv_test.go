package candidatecsv

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	fairrank "repro"
)

func TestReadBasic(t *testing.T) {
	in := "id,score,group\nalice,9.5,f\nbob,8,m\n"
	cands, extra, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(extra) != 0 {
		t.Fatalf("extra = %v", extra)
	}
	if len(cands) != 2 || cands[0].ID != "alice" || cands[0].Score != 9.5 || cands[1].Group != "m" {
		t.Fatalf("cands = %+v", cands)
	}
}

func TestReadWithAttrs(t *testing.T) {
	in := "id,score,group,region,tier\na,1,g1,north,gold\nb,2,g2,south,silver\n"
	cands, extra, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(extra) != 2 || extra[0] != "region" || extra[1] != "tier" {
		t.Fatalf("extra = %v", extra)
	}
	if cands[0].Attrs["region"] != "north" || cands[1].Attrs["tier"] != "silver" {
		t.Fatalf("attrs = %+v", cands)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"",
		"id,score,group\n",
		"foo,bar,baz\nx,1,g\n",
		"id,score\nx,1\n",
		"id,score,group\nx,notanumber,g\n",
		"id,score,group,extra\nx,1,g\n",
	}
	for i, c := range cases {
		if _, _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted malformed input", i)
		}
	}
}

func TestWriteRoundTrip(t *testing.T) {
	cands := []fairrank.Candidate{
		{ID: "x", Score: 3.25, Group: "a", Attrs: map[string]string{"city": "oslo"}},
		{ID: "y", Score: 1, Group: "b", Attrs: map[string]string{"city": "bergen"}},
	}
	var buf bytes.Buffer
	if err := Write(&buf, cands, []string{"city"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	want := "rank,id,score,group,city\n1,x,3.25,a,oslo\n2,y,1,b,bergen\n"
	if out != want {
		t.Fatalf("output:\n%s\nwant:\n%s", out, want)
	}
}

func TestReadWritePipeline(t *testing.T) {
	in := "id,score,group\nc1,5,g1\nc2,4,g2\nc3,3,g1\nc4,2,g2\n"
	cands, extra, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	ranked, err := fairrank.Rank(cands, fairrank.Config{Algorithm: fairrank.AlgorithmILP, Tolerance: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, ranked, extra); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("want 5 lines, got %d:\n%s", len(lines), buf.String())
	}
}

func TestWritePoolRoundTrip(t *testing.T) {
	pool := []fairrank.Candidate{
		{ID: "x", Score: 3.25, Group: "a", Attrs: map[string]string{"city": "oslo"}},
		{ID: "y", Score: 1, Group: "b", Attrs: map[string]string{"city": "bergen"}},
	}
	var buf bytes.Buffer
	if err := WritePool(&buf, pool, []string{"city"}); err != nil {
		t.Fatal(err)
	}
	want := "id,score,group,city\nx,3.25,a,oslo\ny,1,b,bergen\n"
	if buf.String() != want {
		t.Fatalf("output:\n%s\nwant:\n%s", buf.String(), want)
	}
	back, extra, err := Read(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("WritePool output does not Read back: %v", err)
	}
	if len(extra) != 1 || extra[0] != "city" {
		t.Fatalf("extra columns %v, want [city]", extra)
	}
	if !reflect.DeepEqual(back, pool) {
		t.Fatalf("round trip lost data: %+v vs %+v", back, pool)
	}
}
