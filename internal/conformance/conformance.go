// Package conformance statistically verifies that every registered
// fairrank algorithm×noise pair lives up to its registry metadata: the
// paper's distributional guarantees (P-fairness rates and bounded NDCG
// loss, asserted with bootstrap confidence intervals over many draws),
// Kendall-tau concentration around the central ranking with its θ = 0
// uniform limit, determinism-flag honesty, and seed reproducibility.
//
// The suite is registry-driven: Run enumerates fairrank.Algorithms()
// crossed with fairrank.Noises(), honoring each entry's capability
// flags (Sampling/BestOf/pinned Noise, group bounds), so a newly
// registered strategy or mechanism is verified with no suite edit — and
// a registration whose behavior does not match its advertised metadata
// fails with a machine-readable, reproducible violation report.
//
// Measurement protocol (the same one the built-in Guarantees floors
// were calibrated under): dispersion θ = 1, default samples and
// tolerance, the fair central ranking for sampling algorithms (the
// paper's robustness setting — noise around an ex-ante fair ranking)
// and the weakly fair central otherwise, fairness audited over the
// top-min(AuditTopK, n) prefix of the full ranking. Sweeps request full
// rankings — quality and concentration are whole-ranking guarantees, and
// a TopK request would scope the engine's selection and diagnostics to
// the delivered prefix (fairrank.Diagnostics) — and the suite computes
// the prefix fairness audit itself via fairrank.PPfairTopK. All sampling
// goes through fairrank.(*Ranker).Sample, so a sweep builds each ranking
// instance once and every flagged draw is replayable in isolation via
// fairrank.SampleSeed.
package conformance

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	fairrank "repro"
	"repro/internal/scenario"
	"repro/internal/stats"
)

// Config parameterizes Run. The zero value runs the full registry over
// the built-in "conformance" scenario corpus with the defaults below.
type Config struct {
	// Draws is the rankings sampled per pair×scenario sweep (default
	// 200). Reduce it (e.g. in CI) for speed at the cost of wider
	// confidence intervals.
	Draws int
	// DetDraws is the sweep length for algorithms whose registry entry
	// claims determinism — their draws are identical, so a long sweep
	// proves nothing more than a short one (default 4).
	DetDraws int
	// Seeds is the number of distinct seeds the determinism-honesty
	// check compares (default 5).
	Seeds int
	// Confidence is the bootstrap confidence level of the interval
	// checks (default 0.99). A floor is violated only when the whole
	// interval sits below it, so higher confidence means fewer false
	// alarms and strictly less power.
	Confidence float64
	// Resamples is the bootstrap resample count (default 500).
	Resamples int
	// AuditTopK is the prefix length the fairness audit covers,
	// clamped per scenario to the pool size (default 10 — the weak-k
	// fairness horizon the central rankings are built for).
	AuditTopK int
	// Seed derives every sweep's seeds; equal configs produce equal
	// reports (default 1).
	Seed int64
	// Scenarios is the workload suite (default the built-in
	// "conformance" corpus).
	Scenarios []scenario.Spec
	// Algorithms restricts the run to the given entries; nil enumerates
	// the full registry at call time, skipping names with the "test:"
	// prefix (the convention for throwaway strategies registered by
	// negative tests, which are verified by explicit Config only).
	Algorithms []fairrank.AlgorithmInfo
	// Noises restricts the noise axis; nil enumerates the registry,
	// with the same "test:" convention.
	Noises []fairrank.NoiseInfo
}

func (c Config) withDefaults() Config {
	if c.Draws <= 0 {
		c.Draws = 200
	}
	if c.DetDraws <= 0 {
		c.DetDraws = 4
	}
	if c.Seeds <= 0 {
		c.Seeds = 5
	}
	if c.Confidence <= 0 || c.Confidence >= 1 {
		c.Confidence = 0.99
	}
	if c.Resamples <= 0 {
		c.Resamples = 500
	}
	if c.AuditTopK <= 0 {
		c.AuditTopK = 10
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// testPrefix marks registry names the registry-derived enumeration
// skips: throwaway entries registered by negative tests. The registry
// has no unregister, so without the convention one deliberately broken
// test strategy would fail every later registry-derived run in the
// process.
const testPrefix = "test:"

// Run executes the conformance suite and returns its report. An error
// means the run itself could not be set up (bad config, an ungenerable
// scenario, a cancelled context); behavioral failures of the verified
// algorithms are never errors — they are Violations in the report.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Scenarios) == 0 {
		specs, err := scenario.Corpus("conformance")
		if err != nil {
			return nil, err
		}
		cfg.Scenarios = specs
	}
	algos := cfg.Algorithms
	if algos == nil {
		for _, a := range fairrank.Algorithms() {
			if !strings.HasPrefix(a.Name, testPrefix) {
				algos = append(algos, a)
			}
		}
	}
	noises := cfg.Noises
	if noises == nil {
		for _, n := range fairrank.Noises() {
			if !strings.HasPrefix(n.Name, testPrefix) {
				noises = append(noises, n)
			}
		}
	}
	if len(algos) == 0 {
		return nil, fmt.Errorf("conformance: no algorithms to verify")
	}
	pools := make(map[string][]fairrank.Candidate, len(cfg.Scenarios))
	for _, spec := range cfg.Scenarios {
		pool, err := spec.Generate()
		if err != nil {
			return nil, fmt.Errorf("conformance: %w", err)
		}
		pools[spec.Name] = pool
	}
	rep := &Report{
		Draws:      cfg.Draws,
		Confidence: cfg.Confidence,
		AuditTopK:  cfg.AuditTopK,
		Seed:       cfg.Seed,
	}
	for _, info := range algos {
		for _, noise := range pairNoises(info, noises) {
			pair := PairReport{Algorithm: info.Name, Noise: noise.pair}
			for _, spec := range cfg.Scenarios {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				if skipScenario(info, spec) {
					continue
				}
				sr := evalPair(ctx, cfg, info, noise, spec, pools[spec.Name])
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				pair.Scenarios = append(pair.Scenarios, sr)
				rep.Violations = append(rep.Violations, sr.Violations...)
			}
			rep.Pairs = append(rep.Pairs, pair)
		}
	}
	sortViolations(rep.Violations)
	return rep, nil
}

// pairNoise is one noise axis of an algorithm: request is the override
// sent per request (empty when the algorithm pins its own mechanism or
// draws nothing), pair the name the report carries.
type pairNoise struct {
	request string
	pair    string
}

// pairNoises derives an algorithm's noise axes from its capability
// flags: the full registry cross for sampling entries with a free noise
// axis, the pinned mechanism alone for pinned entries, and a single
// empty axis for algorithms that draw nothing.
func pairNoises(info fairrank.AlgorithmInfo, noises []fairrank.NoiseInfo) []pairNoise {
	if !info.Sampling {
		return []pairNoise{{}}
	}
	if info.Noise != "" {
		return []pairNoise{{pair: string(info.Noise)}}
	}
	out := make([]pairNoise, len(noises))
	for i, n := range noises {
		out[i] = pairNoise{request: n.Name, pair: n.Name}
	}
	return out
}

// skipScenario honors the algorithm's registry group bounds, exactly as
// the engine enforces them before dispatch.
func skipScenario(info fairrank.AlgorithmInfo, spec scenario.Spec) bool {
	if info.MinGroups > 0 && spec.Groups < info.MinGroups {
		return true
	}
	if info.MaxGroups > 0 && spec.Groups > info.MaxGroups {
		return true
	}
	return false
}

// sweep is one Sample pass: the per-draw measurements the checks
// judge, plus the first per-draw check violation (if any).
type sweep struct {
	ids    [][]string // ranking ID sequences, per draw
	ppfair []float64
	ndcg   []float64
	kt     []float64
	seeds  []int64 // Diagnostics.Seed per draw, for reproduction hints

	checkViolation *Violation
}

// evalPair measures one algorithm×noise pair on one scenario and runs
// every applicable check.
func evalPair(ctx context.Context, cfg Config, info fairrank.AlgorithmInfo, noise pairNoise, spec scenario.Spec, pool []fairrank.Candidate) ScenarioReport {
	sr := ScenarioReport{Scenario: spec.Name, N: spec.N, Groups: spec.Groups}
	violate := func(v Violation) {
		v.Algorithm = info.Name
		v.Noise = noise.pair
		v.Scenario = spec.Name
		sr.Violations = append(sr.Violations, v)
	}
	central := fairrank.CentralWeaklyFair
	if info.Sampling {
		central = fairrank.CentralFairDCG
	}
	ranker, err := fairrank.NewRanker(fairrank.Config{
		Algorithm: fairrank.Algorithm(info.Name),
		Central:   central,
	})
	if err != nil {
		violate(Violation{Check: CheckDrawError, Detail: fmt.Sprintf("constructing the ranker failed: %v", err)})
		return sr
	}
	draws := cfg.Draws
	if info.Deterministic {
		draws = cfg.DetDraws
	}
	sr.Draws = draws
	baseSeed := pairSeed(cfg.Seed, info.Name, noise.pair, spec.Name)
	auditK := cfg.AuditTopK
	if auditK > spec.N {
		auditK = spec.N
	}
	theta := 1.0
	baseReq := fairrank.Request{
		Candidates: pool,
		Theta:      &theta,
		Noise:      fairrank.Noise(noise.request),
		Seed:       &baseSeed,
	}

	// Base sweep: the θ = 1 protocol run behind the floor, concentration,
	// validity, and reproducibility checks.
	base, err := runSweep(ctx, ranker, baseReq, draws, auditK, func(i int, res *fairrank.Result) *Violation {
		return checkDraw(info, noise, pool, res)
	})
	if err != nil {
		violate(Violation{Check: CheckDrawError, Detail: fmt.Sprintf(
			"θ=1 sweep failed: %v (replay: scenario %q, Request.Seed = fairrank.SampleSeed(%d, failing draw))",
			err, spec.Name, baseSeed)})
		return sr
	}
	if base.checkViolation != nil {
		violate(*base.checkViolation)
	}

	// Seed reproducibility: the same sweep prefix again, expecting the
	// identical ranking sequence.
	reproDraws := min(draws, 5)
	repro, err := runSweep(ctx, ranker, baseReq, reproDraws, auditK, nil)
	if err != nil {
		violate(Violation{Check: CheckDrawError, Detail: fmt.Sprintf("reproducibility sweep failed: %v", err)})
		return sr
	}
	for i := 0; i < reproDraws; i++ {
		if !equalIDs(base.ids[i], repro.ids[i]) {
			violate(Violation{Check: CheckSeedReproducibility, Detail: fmt.Sprintf(
				"draw %d (seed %d) differed between two identical sweeps — the algorithm draws entropy outside the engine RNG; audit its Rank for global state (time, package-level rand)",
				i, base.seeds[i])})
			break
		}
	}

	checkDeterminismFlag(ctx, cfg, info, noise, ranker, pool, auditK, baseSeed, violate)

	// Floor checks: a violation requires the whole confidence interval
	// below the advertised floor, so sampling noise cannot trip it.
	rng := rand.New(rand.NewSource(baseSeed))
	sr.MeanPPfair = mustCI(base.ppfair, cfg, rng)
	sr.MeanNDCG = mustCI(base.ndcg, cfg, rng)
	if g := info.Guarantees.MinMeanPPfair; g > 0 && sr.MeanPPfair.Hi < g {
		ci := sr.MeanPPfair
		violate(Violation{Check: CheckPPfairFloor, Observed: ci.Point, Bound: g, CI: &ci, Detail: fmt.Sprintf(
			"mean PPfair over the top-%d prefix is %.2f (%v%% CI [%.2f, %.2f]), below the advertised floor %.2f — the algorithm does not deliver its registered fairness guarantee on this workload; lower AlgorithmInfo.Guarantees.MinMeanPPfair or fix the strategy",
			auditK, ci.Point, cfg.Confidence*100, ci.Lo, ci.Hi, g)})
	}
	if g := info.Guarantees.MinMeanNDCG; g > 0 && sr.MeanNDCG.Hi < g {
		ci := sr.MeanNDCG
		violate(Violation{Check: CheckNDCGFloor, Observed: ci.Point, Bound: g, CI: &ci, Detail: fmt.Sprintf(
			"mean NDCG is %.4f (%v%% CI [%.4f, %.4f]), below the advertised floor %.4f — quality loss exceeds the registered bound; lower AlgorithmInfo.Guarantees.MinMeanNDCG or fix the strategy",
			ci.Point, cfg.Confidence*100, ci.Lo, ci.Hi, g)})
	}

	if info.Sampling {
		checkNoiseShape(ctx, cfg, &sr, ranker, baseReq, base.kt, spec, draws, baseSeed, rng, violate)
	}
	return sr
}

// checkDraw validates one draw's result against the pool and the
// registry metadata.
func checkDraw(info fairrank.AlgorithmInfo, noise pairNoise, pool []fairrank.Candidate, res *fairrank.Result) *Violation {
	if len(res.Ranking) != len(pool) {
		return &Violation{Check: CheckValidity, Detail: fmt.Sprintf(
			"seed %d returned %d candidates, want the full pool of %d", res.Diagnostics.Seed, len(res.Ranking), len(pool))}
	}
	inPool := make(map[string]bool, len(pool))
	for _, c := range pool {
		inPool[c.ID] = true
	}
	seen := make(map[string]bool, len(res.Ranking))
	for _, c := range res.Ranking {
		if !inPool[c.ID] || seen[c.ID] {
			return &Violation{Check: CheckValidity, Detail: fmt.Sprintf(
				"seed %d: ranking entry %q is duplicated or not from the pool", res.Diagnostics.Seed, c.ID)}
		}
		seen[c.ID] = true
	}
	d := res.Diagnostics
	if info.Sampling && string(d.Noise) != noise.pair {
		return &Violation{Check: CheckValidity, Detail: fmt.Sprintf(
			"diagnostics report noise %q, want %q — the engine did not draw from the pair's mechanism", d.Noise, noise.pair)}
	}
	if !info.Sampling && d.DrawsEvaluated != 0 {
		return &Violation{Check: CheckValidity, Detail: fmt.Sprintf(
			"non-sampling algorithm reports %d noise draws, want 0", d.DrawsEvaluated)}
	}
	return nil
}

// runSweep samples draws full rankings through the multi-draw hook,
// collecting the per-draw measurements — full-ranking NDCG and central
// Kendall tau from the engine diagnostics, plus the top-auditK fairness
// audit recomputed over each full ranking (the engine's own audit is
// scoped to the delivered prefix, which a full-ranking sweep wants
// re-derived at the audit horizon). check (optional) may return a
// violation per draw, recorded once (the first) to keep reports short.
func runSweep(ctx context.Context, ranker *fairrank.Ranker, req fairrank.Request, draws, auditK int, check func(int, *fairrank.Result) *Violation) (*sweep, error) {
	out := &sweep{}
	err := ranker.Sample(ctx, req, draws, func(i int, res *fairrank.Result) error {
		ids := make([]string, len(res.Ranking))
		for j, c := range res.Ranking {
			ids[j] = c.ID
		}
		d := res.Diagnostics
		k := min(auditK, len(res.Ranking))
		pp, err := fairrank.PPfairTopK(res.Ranking, k, d.Tolerance)
		if err != nil {
			return fmt.Errorf("conformance: top-%d audit of draw %d: %w", k, i, err)
		}
		out.ids = append(out.ids, ids)
		out.ppfair = append(out.ppfair, pp)
		out.ndcg = append(out.ndcg, d.NDCG)
		out.kt = append(out.kt, float64(d.CentralKendallTau))
		out.seeds = append(out.seeds, d.Seed)
		if check != nil && out.checkViolation == nil {
			out.checkViolation = check(i, res)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// checkDeterminismFlag verifies the registry's Deterministic flag both
// ways: a deterministic entry must be seed-invariant; a randomized one
// must actually vary. The variation probe forces the uniform single-draw
// regime (θ = 0, samples = 1) on sampling algorithms, where a collision
// across distinct seeds is astronomically unlikely, so a "never varies"
// finding means the flag (or the mechanism) is wrong.
func checkDeterminismFlag(ctx context.Context, cfg Config, info fairrank.AlgorithmInfo, noise pairNoise, ranker *fairrank.Ranker, pool []fairrank.Candidate, auditK int, baseSeed int64, violate func(Violation)) {
	// The probe must draw from the pair's mechanism, not the ranker's
	// default, or a defective registered noise would pass vacuously.
	// Full rankings: seed variation anywhere in the ranking counts.
	req := fairrank.Request{Candidates: pool, Noise: fairrank.Noise(noise.request)}
	if info.Sampling {
		zero, one := 0.0, 1
		if !info.Deterministic {
			req.Theta = &zero
			req.Samples = &one
		}
	}
	distinct := map[string]int64{}
	for s := 0; s < cfg.Seeds; s++ {
		seed := fairrank.SampleSeed(baseSeed+1, s)
		req.Seed = &seed
		res, err := ranker.Do(ctx, req)
		if err != nil {
			violate(Violation{Check: CheckDrawError, Detail: fmt.Sprintf("determinism probe (seed %d): %v", seed, err)})
			return
		}
		distinct[fmt.Sprint(idsOf(res))] = seed
	}
	if info.Deterministic && len(distinct) > 1 {
		violate(Violation{Check: CheckDeterminismFlag, Observed: float64(len(distinct)), Bound: 1, Detail: fmt.Sprintf(
			"registry claims Deterministic, but %d distinct rankings appeared across %d seeds — unset AlgorithmInfo.Deterministic or remove the seed dependence",
			len(distinct), cfg.Seeds)})
	}
	if !info.Deterministic && len(distinct) == 1 {
		violate(Violation{Check: CheckDeterminismFlag, Observed: 1, Bound: 2, Detail: fmt.Sprintf(
			"registry claims a randomized algorithm, but %d seeds produced one identical ranking (probed at θ=0, samples=1 for sampling entries) — set AlgorithmInfo.Deterministic or fix the mechanism's seed plumbing",
			cfg.Seeds)})
	}
}

// checkNoiseShape runs the two distribution-shape checks of the
// sampling family: Kendall-tau concentration at θ = 1 and the uniform
// limit at θ = 0.
func checkNoiseShape(ctx context.Context, cfg Config, sr *ScenarioReport, ranker *fairrank.Ranker, baseReq fairrank.Request, baseKT []float64, spec scenario.Spec, draws int, baseSeed int64, rng *rand.Rand, violate func(Violation)) {
	n := float64(spec.N)
	uniformMean := n * (n - 1) / 4
	sr.UniformMeanKT = uniformMean

	// Concentration judges the base sweep's already-collected KT series.
	ktCI := mustCI(baseKT, cfg, rng)
	sr.MeanCentralKT = &ktCI
	if ktCI.Lo > uniformMean/2 {
		violate(Violation{Check: CheckKTConcentration, Observed: ktCI.Point, Bound: uniformMean / 2, CI: &ktCI, Detail: fmt.Sprintf(
			"mean Kendall tau to the central at θ=1 is %.1f (CI [%.1f, %.1f]), confidently above half the uniform expectation %.1f — the mechanism is not concentrating around the central ranking",
			ktCI.Point, ktCI.Lo, ktCI.Hi, uniformMean/2)})
	}

	// Uniform limit: θ = 0 single draws must look uniform over
	// permutations. Mean KT of a uniform permutation is n(n−1)/4 with
	// variance n(n−1)(2n+5)/72; six standard errors of slack makes a
	// false alarm negligible while still catching any mechanism whose
	// θ = 0 is not uniform (e.g. a constant or biased sampler).
	zero := 0.0
	one := 1
	uniformSeed := baseSeed + 2
	req := baseReq
	req.Theta = &zero
	req.Samples = &one
	req.Seed = &uniformSeed
	uni, err := runSweep(ctx, ranker, req, draws, spec.N, nil)
	if err != nil {
		violate(Violation{Check: CheckDrawError, Detail: fmt.Sprintf("θ=0 uniform-limit sweep failed: %v", err)})
		return
	}
	mean := stats.Mean(uni.kt)
	sr.UniformLimitKT = mean
	sd := math.Sqrt(n * (n - 1) * (2*n + 5) / 72)
	margin := 6*sd/math.Sqrt(float64(draws)) + 0.5
	if diff := math.Abs(mean - uniformMean); diff > margin {
		violate(Violation{Check: CheckUniformLimit, Observed: mean, Bound: uniformMean, Detail: fmt.Sprintf(
			"mean Kendall tau to the central at θ=0 over %d draws is %.1f, but a uniform mechanism gives %.1f ± %.1f — θ=0 must mean uniform (NoiseSampler contract); check the mechanism's zero-dispersion branch",
			draws, mean, uniformMean, margin)})
	}
}

// mustCI bootstraps the mean CI; the inputs are non-empty by
// construction, so errors cannot occur outside programmer error.
func mustCI(xs []float64, cfg Config, rng *rand.Rand) stats.Interval {
	ci, err := stats.BootstrapMean(xs, cfg.Resamples, cfg.Confidence, rng)
	if err != nil {
		panic(fmt.Sprintf("conformance: bootstrap: %v", err))
	}
	return ci
}

// pairSeed derives a stable per-(pair, scenario) seed from the master
// seed, so adding a pair or scenario does not shift every other sweep.
func pairSeed(master int64, algorithm, noise, spec string) int64 {
	h := uint64(master) * 0x9e3779b97f4a7c15
	for _, s := range []string{algorithm, noise, spec} {
		for _, b := range []byte(s) {
			h = (h ^ uint64(b)) * 0x100000001b3
		}
	}
	return int64(h & 0x7fffffffffffffff)
}

func idsOf(res *fairrank.Result) []string {
	ids := make([]string, len(res.Ranking))
	for i, c := range res.Ranking {
		ids[i] = c.ID
	}
	return ids
}

func equalIDs(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sortViolations orders violations by (algorithm, noise, scenario,
// check) for stable reports.
func sortViolations(vs []Violation) {
	sort.SliceStable(vs, func(i, j int) bool {
		a, b := vs[i], vs[j]
		if a.Algorithm != b.Algorithm {
			return a.Algorithm < b.Algorithm
		}
		if a.Noise != b.Noise {
			return a.Noise < b.Noise
		}
		if a.Scenario != b.Scenario {
			return a.Scenario < b.Scenario
		}
		return a.Check < b.Check
	})
}
