package conformance

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"strconv"
	"strings"
	"testing"

	fairrank "repro"
	"repro/internal/scenario"
)

// testDraws honors CONFORMANCE_DRAWS (the CI knob for a faster run)
// and otherwise keeps the in-tree default modest.
func testDraws(t *testing.T) int {
	if v := os.Getenv("CONFORMANCE_DRAWS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("CONFORMANCE_DRAWS=%q is not a positive integer", v)
		}
		return n
	}
	if testing.Short() {
		return 60
	}
	return 150
}

// TestConformanceBuiltins is the acceptance gate: every algorithm×noise
// pair derived from the live registry — no hard-coded algorithm list —
// must satisfy its advertised metadata on the full conformance corpus.
func TestConformanceBuiltins(t *testing.T) {
	rep, err := Run(context.Background(), Config{Draws: testDraws(t)})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if rep.Failed() {
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err == nil {
			t.Logf("full report:\n%s", buf.String())
		}
	}

	// Coverage: the report must hold exactly the pairs the registry
	// metadata implies, derived here independently from the same
	// registry snapshot.
	wantPairs := map[string]bool{}
	noises := fairrank.Noises()
	for _, a := range fairrank.Algorithms() {
		if strings.HasPrefix(a.Name, testPrefix) {
			continue
		}
		switch {
		case a.Sampling && a.Noise == "":
			for _, n := range noises {
				if !strings.HasPrefix(n.Name, testPrefix) {
					wantPairs[a.Name+"×"+n.Name] = true
				}
			}
		case a.Sampling:
			wantPairs[a.Name+"×"+string(a.Noise)] = true
		default:
			wantPairs[a.Name+"×"] = true
		}
	}
	gotPairs := map[string]bool{}
	for _, p := range rep.Pairs {
		gotPairs[p.Algorithm+"×"+p.Noise] = true
		if len(p.Scenarios) == 0 {
			t.Errorf("pair %s×%s ran no scenarios", p.Algorithm, p.Noise)
		}
	}
	for pair := range wantPairs {
		if !gotPairs[pair] {
			t.Errorf("registry-implied pair %s missing from the report", pair)
		}
	}
	for pair := range gotPairs {
		if !wantPairs[pair] {
			t.Errorf("report holds pair %s the registry does not imply", pair)
		}
	}
}

// TestConformanceHonorsGroupBounds pins the capability-flag dispatch:
// an algorithm bounded to two groups must only see two-group scenarios.
func TestConformanceHonorsGroupBounds(t *testing.T) {
	info, ok := fairrank.LookupAlgorithm(string(fairrank.AlgorithmGrBinary))
	if !ok {
		t.Skip("grbinary not registered")
	}
	rep, err := Run(context.Background(), Config{
		Draws:      8,
		Algorithms: []fairrank.AlgorithmInfo{info},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Pairs) != 1 {
		t.Fatalf("%d pairs for one non-sampling algorithm, want 1", len(rep.Pairs))
	}
	if len(rep.Pairs[0].Scenarios) == 0 {
		t.Fatal("group-bounded algorithm ran no scenarios at all")
	}
	for _, sr := range rep.Pairs[0].Scenarios {
		if sr.Groups != 2 {
			t.Errorf("grbinary ran scenario %s with %d groups, want 2 only", sr.Scenario, sr.Groups)
		}
	}
}

// TestReportDeterministic: equal configs must produce equal reports —
// the suite itself honors the reproducibility it checks for.
func TestReportDeterministic(t *testing.T) {
	info, ok := fairrank.LookupAlgorithm(string(fairrank.AlgorithmMallows))
	if !ok {
		t.Skip("mallows not registered")
	}
	specs, err := scenario.Corpus("conformance")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Draws:      30,
		Algorithms: []fairrank.AlgorithmInfo{info},
		Scenarios:  specs[:2],
		Seed:       9,
	}
	a, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	aj, bj := new(bytes.Buffer), new(bytes.Buffer)
	if err := a.WriteJSON(aj); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteJSON(bj); err != nil {
		t.Fatal(err)
	}
	if aj.String() != bj.String() {
		t.Fatal("equal configs produced different reports")
	}
}

func TestReportJSONShape(t *testing.T) {
	info, ok := fairrank.LookupAlgorithm(string(fairrank.AlgorithmScoreSorted))
	if !ok {
		t.Skip("score not registered")
	}
	specs, err := scenario.Corpus("conformance")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), Config{
		Draws:      6,
		Algorithms: []fairrank.AlgorithmInfo{info},
		Scenarios:  specs[:1],
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if len(back.Pairs) != 1 || back.Pairs[0].Algorithm != info.Name {
		t.Fatalf("round-tripped report lost its pair: %+v", back.Pairs)
	}
	if s := rep.Summary(); !strings.Contains(s, "violations") {
		t.Fatalf("summary %q lacks a violation count", s)
	}
}

func TestRunSetupErrors(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, Config{Draws: 2}); err == nil {
		t.Error("cancelled run returned no error")
	}
	if _, err := Run(context.Background(), Config{
		Scenarios: []scenario.Spec{{Name: "bad", N: -1, Groups: 1}},
	}); err == nil {
		t.Error("ungenerable scenario accepted")
	}
	if _, err := Run(context.Background(), Config{
		Algorithms: []fairrank.AlgorithmInfo{},
	}); err == nil {
		t.Error("empty explicit algorithm list accepted")
	}
}
