package conformance

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	fairrank "repro"
	"repro/internal/scenario"
)

// noiseSweepDraws keeps the degradation sweep cheap: curves report
// means, not confidence intervals, so far fewer draws than the floor
// checks need still give stable curve shapes.
func noiseSweepDraws(t *testing.T) int {
	d := testDraws(t) / 3
	if d < 20 {
		d = 20
	}
	return d
}

// TestNoiseSweepBuiltins is the degradation-sweep acceptance gate:
// every registry algorithm gets a curve on every applicable "noise"
// scenario, every curve covers the full ≥3-point level grid, and the
// noiseless anchor is bit-identical to the uncorrupted base sweep — on
// the anchor point the three fairness readings must agree exactly (the
// one-hot equivalence guarantee, end to end through the noise channel).
func TestNoiseSweepBuiltins(t *testing.T) {
	rep, err := RunNoiseSweep(context.Background(), Config{Draws: noiseSweepDraws(t)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if rep.Failed() {
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err == nil {
			t.Logf("full report:\n%s", buf.String())
		}
	}
	if len(rep.Levels) < 3 {
		t.Fatalf("default grid has %d levels, want ≥ 3", len(rep.Levels))
	}

	// Coverage: every non-test registry algorithm must appear, with a
	// curve per scenario its group bounds admit.
	specs, err := scenario.Corpus("noise")
	if err != nil {
		t.Fatal(err)
	}
	wantCurves := map[string]bool{}
	for _, a := range fairrank.Algorithms() {
		if strings.HasPrefix(a.Name, testPrefix) {
			continue
		}
		covered := false
		for _, spec := range specs {
			if skipScenario(a, spec) {
				continue
			}
			covered = true
			wantCurves[a.Name+"|"+spec.Name] = true
		}
		if !covered {
			t.Errorf("algorithm %q is skipped on every noise scenario — the corpus no longer covers its group bounds", a.Name)
		}
	}
	gotCurves := map[string]bool{}
	for _, c := range rep.Curves {
		gotCurves[c.Algorithm+"|"+c.Scenario] = true
	}
	for key := range wantCurves {
		if !gotCurves[key] {
			t.Errorf("curve %s missing from the sweep", key)
		}
	}
	for key := range gotCurves {
		if !wantCurves[key] {
			t.Errorf("unexpected curve %s", key)
		}
	}

	for _, c := range rep.Curves {
		if len(c.Points) != len(rep.Levels) {
			t.Errorf("curve %s×%s has %d points, want %d", c.Algorithm, c.Scenario, len(c.Points), len(rep.Levels))
			continue
		}
		if !c.ZeroNoiseIdentical {
			t.Errorf("curve %s×%s: noiseless level not bit-identical to the base sweep", c.Algorithm, c.Scenario)
		}
		for i, pt := range c.Points {
			if pt.Flip != rep.Levels[i].Flip || pt.Missing != rep.Levels[i].Missing {
				t.Errorf("curve %s×%s point %d is (%v, %v), want grid level (%v, %v)",
					c.Algorithm, c.Scenario, i, pt.Flip, pt.Missing, rep.Levels[i].Flip, rep.Levels[i].Missing)
			}
		}
		// The anchor point: zero noise leaves labels untouched and its
		// posteriors exactly one-hot, so all three audits must agree bit
		// for bit — not approximately.
		anchor := c.Points[0]
		if !rep.Levels[0].IsZero() {
			t.Fatal("default grid does not start with the noiseless anchor")
		}
		if anchor.MeanPPfairObserved != anchor.MeanPPfairTrue {
			t.Errorf("curve %s×%s anchor: observed %v != true %v", c.Algorithm, c.Scenario,
				anchor.MeanPPfairObserved, anchor.MeanPPfairTrue)
		}
		if anchor.MeanPPfairObserved != anchor.MeanExpectedPPfair {
			t.Errorf("curve %s×%s anchor: observed %v != expected %v", c.Algorithm, c.Scenario,
				anchor.MeanPPfairObserved, anchor.MeanExpectedPPfair)
		}
	}
}

// TestNoiseSweepReportJSON pins the report's wire shape: the fields CI
// greps for must survive a JSON round trip under their documented
// names.
func TestNoiseSweepReportJSON(t *testing.T) {
	score, ok := fairrank.LookupAlgorithm(string(fairrank.AlgorithmScoreSorted))
	if !ok {
		t.Fatal("score algorithm missing from the registry")
	}
	rep, err := RunNoiseSweep(context.Background(), Config{
		Draws:      10,
		Algorithms: []fairrank.AlgorithmInfo{score},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"draws", "audit_top_k", "seed", "levels", "curves", "violations"} {
		if _, ok := decoded[key]; !ok {
			t.Errorf("report JSON lacks %q", key)
		}
	}
	raw := buf.String()
	for _, key := range []string{"mean_ppfair_observed", "mean_ppfair_true", "mean_expected_ppfair",
		"mean_ndcg", "zero_noise_identical", `"flip"`, `"missing"`} {
		if !strings.Contains(raw, key) {
			t.Errorf("report JSON lacks %s", key)
		}
	}
	if strings.Contains(raw, "zero_noise_identical\": false") {
		t.Error("deterministic score sweep lost zero-noise identity")
	}
	if got := rep.Summary(); !strings.Contains(got, "noise sweep:") {
		t.Errorf("summary %q lacks the noise sweep prefix", got)
	}
}

// TestNoiseSweepSetupErrors: bad grids are setup errors, not
// violations — a sweep without a noiseless anchor proves nothing.
func TestNoiseSweepSetupErrors(t *testing.T) {
	if _, err := RunNoiseSweep(context.Background(), Config{}, []scenario.NoiseSpec{{Flip: 0.1}}); err == nil {
		t.Error("grid without a noiseless anchor accepted")
	}
	if _, err := RunNoiseSweep(context.Background(), Config{}, []scenario.NoiseSpec{{Flip: 1.5}}); err == nil {
		t.Error("invalid flip rate accepted")
	}
	if _, err := RunNoiseSweep(context.Background(), Config{Algorithms: []fairrank.AlgorithmInfo{}}, nil); err == nil {
		t.Error("empty algorithm list accepted")
	}
}
