package conformance

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/stats"
)

// Check names one conformance property. Every Violation carries the
// Check it failed, so reports are machine-filterable by property.
type Check string

// The checks the kit runs. Which of them apply to an algorithm×noise
// pair is derived from the pair's registry metadata (capability flags
// and Guarantees); see Run.
const (
	// CheckDrawError: a draw (or the ranker's construction) returned an
	// error — a defective strategy, noise mechanism, or factory.
	CheckDrawError Check = "draw-error"
	// CheckValidity: a returned ranking was not a valid truncated
	// permutation of the pool, or the diagnostics contradicted the
	// registry metadata (e.g. a deterministic algorithm reporting
	// noise draws).
	CheckValidity Check = "validity"
	// CheckSeedReproducibility: re-running a sweep with the same seed
	// observed a different ranking sequence — the strategy draws
	// entropy outside the engine-provided RNG.
	CheckSeedReproducibility Check = "seed-reproducibility"
	// CheckDeterminismFlag: the registry's Deterministic flag is
	// dishonest — a deterministic algorithm varied across seeds, or a
	// randomized one never did.
	CheckDeterminismFlag Check = "determinism-flag"
	// CheckPPfairFloor: the mean PPfair confidence interval sits
	// entirely below the algorithm's advertised Guarantees.MinMeanPPfair.
	CheckPPfairFloor Check = "ppfair-floor"
	// CheckNDCGFloor: the mean NDCG confidence interval sits entirely
	// below the advertised Guarantees.MinMeanNDCG.
	CheckNDCGFloor Check = "ndcg-floor"
	// CheckKTConcentration: at θ = 1 a sampling algorithm's rankings
	// are not concentrated around the central ranking (mean Kendall tau
	// confidently above half the uniform expectation).
	CheckKTConcentration Check = "kt-concentration"
	// CheckUniformLimit: at θ = 0 (and best-of disabled) a sampling
	// algorithm's noise mechanism is not uniform — the mean Kendall tau
	// to the central strays from n(n−1)/4 beyond sampling error.
	CheckUniformLimit Check = "uniform-limit"
	// CheckZeroNoiseIdentity: the degradation sweep's noiseless anchor
	// level produced a ranking sequence that is not bit-identical to the
	// uncorrupted base sweep — the zero-noise channel (or the engine's
	// handling of one-hot memberships) perturbs results it must not
	// touch. See RunNoiseSweep.
	CheckZeroNoiseIdentity Check = "zero-noise-identity"
)

// Violation is one failed check, self-describing enough to act on: the
// registry pair and scenario that failed, the observed statistic against
// its bound, and a Detail string with the reproduction recipe.
type Violation struct {
	Algorithm string          `json:"algorithm"`
	Noise     string          `json:"noise,omitempty"`
	Scenario  string          `json:"scenario,omitempty"`
	Check     Check           `json:"check"`
	Observed  float64         `json:"observed"`
	Bound     float64         `json:"bound"`
	CI        *stats.Interval `json:"ci,omitempty"`
	Detail    string          `json:"detail"`
}

func (v Violation) String() string {
	where := v.Algorithm
	if v.Noise != "" {
		where += "×" + v.Noise
	}
	if v.Scenario != "" {
		where += " on " + v.Scenario
	}
	return fmt.Sprintf("[%s] %s: %s", v.Check, where, v.Detail)
}

// ScenarioReport is the measured behavior of one algorithm×noise pair
// on one scenario: the confidence intervals the checks judged, plus any
// violations.
type ScenarioReport struct {
	Scenario string `json:"scenario"`
	N        int    `json:"n"`
	Groups   int    `json:"groups"`
	Draws    int    `json:"draws"`
	// MeanPPfair and MeanNDCG are bootstrap confidence intervals of the
	// mean PPfair (over the audited prefix) and mean full-ranking NDCG.
	MeanPPfair stats.Interval `json:"mean_ppfair"`
	MeanNDCG   stats.Interval `json:"mean_ndcg"`
	// MeanCentralKT is the bootstrap CI of the mean Kendall tau to the
	// central ranking; UniformMeanKT is the uniform-distribution
	// expectation n(n−1)/4 it is judged against. Sampling pairs only.
	MeanCentralKT *stats.Interval `json:"mean_central_kt,omitempty"`
	UniformMeanKT float64         `json:"uniform_mean_kt,omitempty"`
	// UniformLimitKT is the mean Kendall tau of the θ = 0 sweep
	// (sampling pairs only) — the uniform-limit check's observation.
	UniformLimitKT float64 `json:"uniform_limit_kt,omitempty"`

	Violations []Violation `json:"violations,omitempty"`
}

// PairReport is one algorithm×noise pair across every applicable
// scenario.
type PairReport struct {
	Algorithm string `json:"algorithm"`
	// Noise is the effective mechanism of the pair: the crossed or
	// pinned noise for sampling algorithms, empty for algorithms that
	// draw nothing.
	Noise     string           `json:"noise,omitempty"`
	Scenarios []ScenarioReport `json:"scenarios"`
}

// Report is the machine-readable outcome of a conformance run.
type Report struct {
	// Draws, Confidence, AuditTopK, and Seed echo the resolved run
	// configuration, so a stored report says what it proved.
	Draws      int     `json:"draws"`
	Confidence float64 `json:"confidence"`
	AuditTopK  int     `json:"audit_top_k"`
	Seed       int64   `json:"seed"`

	Pairs []PairReport `json:"pairs"`
	// Violations flattens every scenario's violations, worst first in
	// enumeration order; empty means the registry conforms.
	Violations []Violation `json:"violations"`
}

// Failed reports whether any check failed.
func (r *Report) Failed() bool { return len(r.Violations) > 0 }

// WriteJSON renders the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Summary renders a one-line human summary.
func (r *Report) Summary() string {
	pairs := len(r.Pairs)
	scenarios := 0
	for _, p := range r.Pairs {
		scenarios += len(p.Scenarios)
	}
	return fmt.Sprintf("conformance: %d pairs over %d pair×scenario runs, %d draws each: %d violations",
		pairs, scenarios, r.Draws, len(r.Violations))
}
