// The degradation sweep: how gracefully does each registered algorithm
// lose fairness and quality as the protected attribute it sees gets
// noisier? RunNoiseSweep passes every scenario pool through a grid of
// scenario.NoiseSpec channels and measures, per algorithm × scenario ×
// level, three fairness readings of the same rankings — audited against
// the observed (corrupted) labels, against the true labels, and in
// expectation under the Bayesian posterior the channel attaches as
// Membership — plus ranking quality (NDCG). The noiseless anchor level
// doubles as a regression guard: its ranking sequences must be
// bit-identical to an uncorrupted base sweep, or the report carries a
// CheckZeroNoiseIdentity violation.
package conformance

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	fairrank "repro"
	"repro/internal/scenario"
	"repro/internal/stats"
)

// NoiseCurvePoint is one (noise level → measured means) sample of a
// degradation curve.
type NoiseCurvePoint struct {
	Flip    float64 `json:"flip"`
	Missing float64 `json:"missing"`
	// MeanPPfairObserved audits the rankings against the corrupted
	// labels the algorithm actually saw — the fairness the pipeline
	// believes it delivered.
	MeanPPfairObserved float64 `json:"mean_ppfair_observed"`
	// MeanPPfairTrue audits the same rankings against the uncorrupted
	// labels — the fairness actually delivered to the true groups.
	MeanPPfairTrue float64 `json:"mean_ppfair_true"`
	// MeanExpectedPPfair is the probabilistic audit under the posterior
	// Membership the channel attaches — the fairness that is knowable
	// after corruption, between the two above.
	MeanExpectedPPfair float64 `json:"mean_expected_ppfair"`
	MeanNDCG           float64 `json:"mean_ndcg"`
}

// NoiseCurve is one algorithm × scenario degradation curve over the
// sweep's level grid.
type NoiseCurve struct {
	Algorithm string `json:"algorithm"`
	Noise     string `json:"noise,omitempty"`
	Scenario  string `json:"scenario"`
	N         int    `json:"n"`
	Groups    int    `json:"groups"`
	Draws     int    `json:"draws"`
	// ZeroNoiseIdentical reports that every noiseless level of the grid
	// reproduced the uncorrupted base sweep's ranking sequence draw for
	// draw, ID for ID.
	ZeroNoiseIdentical bool              `json:"zero_noise_identical"`
	Points             []NoiseCurvePoint `json:"points"`
	Violations         []Violation       `json:"violations,omitempty"`
}

// NoiseReport is the machine-readable outcome of a degradation sweep.
type NoiseReport struct {
	Draws     int                  `json:"draws"`
	AuditTopK int                  `json:"audit_top_k"`
	Seed      int64                `json:"seed"`
	Levels    []scenario.NoiseSpec `json:"levels"`

	Curves []NoiseCurve `json:"curves"`
	// Violations flattens every curve's violations; empty means every
	// anchor was bit-identical and every sweep ran clean.
	Violations []Violation `json:"violations"`
}

// Failed reports whether any check failed.
func (r *NoiseReport) Failed() bool { return len(r.Violations) > 0 }

// WriteJSON renders the report as indented JSON.
func (r *NoiseReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Summary renders a one-line human summary.
func (r *NoiseReport) Summary() string {
	algos := map[string]bool{}
	for _, c := range r.Curves {
		algos[c.Algorithm] = true
	}
	return fmt.Sprintf("noise sweep: %d curves over %d algorithms × %d levels, %d draws each: %d violations",
		len(r.Curves), len(algos), len(r.Levels), r.Draws, len(r.Violations))
}

// RunNoiseSweep executes the degradation sweep: every registry
// algorithm (honoring Config.Algorithms and the "test:" convention,
// one noise axis per algorithm) × every scenario (default the "noise"
// corpus) × every level of the grid (default scenario.NoiseLevels,
// which must contain a noiseless anchor). Setup failures are errors;
// behavioral failures are Violations in the report, exactly as in Run.
func RunNoiseSweep(ctx context.Context, cfg Config, levels []scenario.NoiseSpec) (*NoiseReport, error) {
	cfg = cfg.withDefaults()
	if levels == nil {
		levels = scenario.NoiseLevels(cfg.Seed)
	}
	anchored := false
	for _, l := range levels {
		if err := l.Validate(); err != nil {
			return nil, fmt.Errorf("conformance: %w", err)
		}
		anchored = anchored || l.IsZero()
	}
	if !anchored {
		return nil, fmt.Errorf("conformance: noise sweep needs a noiseless anchor level")
	}
	if len(cfg.Scenarios) == 0 {
		specs, err := scenario.Corpus("noise")
		if err != nil {
			return nil, err
		}
		cfg.Scenarios = specs
	}
	algos := cfg.Algorithms
	if algos == nil {
		for _, a := range fairrank.Algorithms() {
			if !strings.HasPrefix(a.Name, testPrefix) {
				algos = append(algos, a)
			}
		}
	}
	if len(algos) == 0 {
		return nil, fmt.Errorf("conformance: no algorithms to sweep")
	}
	noises := cfg.Noises
	if noises == nil {
		for _, n := range fairrank.Noises() {
			if !strings.HasPrefix(n.Name, testPrefix) {
				noises = append(noises, n)
			}
		}
	}
	pools := make(map[string][]fairrank.Candidate, len(cfg.Scenarios))
	for _, spec := range cfg.Scenarios {
		pool, err := spec.Generate()
		if err != nil {
			return nil, fmt.Errorf("conformance: %w", err)
		}
		pools[spec.Name] = pool
	}
	rep := &NoiseReport{Draws: cfg.Draws, AuditTopK: cfg.AuditTopK, Seed: cfg.Seed, Levels: levels}
	for _, info := range algos {
		noise := sweepNoise(info, noises)
		for _, spec := range cfg.Scenarios {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if skipScenario(info, spec) {
				continue
			}
			curve := evalNoiseCurve(ctx, cfg, info, noise, spec, pools[spec.Name], levels)
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			rep.Curves = append(rep.Curves, curve)
			rep.Violations = append(rep.Violations, curve.Violations...)
		}
	}
	sortViolations(rep.Violations)
	return rep, nil
}

// sweepNoise picks one noise axis per algorithm — a degradation curve
// is per algorithm, not per algorithm×noise pair, so a free sampling
// axis resolves to the first registered mechanism.
func sweepNoise(info fairrank.AlgorithmInfo, noises []fairrank.NoiseInfo) pairNoise {
	if !info.Sampling {
		return pairNoise{}
	}
	if info.Noise != "" {
		return pairNoise{pair: string(info.Noise)}
	}
	if len(noises) == 0 {
		return pairNoise{}
	}
	return pairNoise{request: noises[0].Name, pair: noises[0].Name}
}

// evalNoiseCurve measures one algorithm × scenario curve: an
// uncorrupted base sweep first, then one sweep per level with the same
// seed, so noiseless levels must reproduce the base sequence exactly.
func evalNoiseCurve(ctx context.Context, cfg Config, info fairrank.AlgorithmInfo, noise pairNoise, spec scenario.Spec, pool []fairrank.Candidate, levels []scenario.NoiseSpec) NoiseCurve {
	curve := NoiseCurve{Algorithm: info.Name, Noise: noise.pair, Scenario: spec.Name, N: spec.N, Groups: spec.Groups}
	violate := func(v Violation) {
		v.Algorithm = info.Name
		v.Noise = noise.pair
		v.Scenario = spec.Name
		curve.Violations = append(curve.Violations, v)
	}
	central := fairrank.CentralWeaklyFair
	if info.Sampling {
		central = fairrank.CentralFairDCG
	}
	ranker, err := fairrank.NewRanker(fairrank.Config{
		Algorithm: fairrank.Algorithm(info.Name),
		Central:   central,
	})
	if err != nil {
		violate(Violation{Check: CheckDrawError, Detail: fmt.Sprintf("constructing the ranker failed: %v", err)})
		return curve
	}
	draws := cfg.Draws
	if info.Deterministic {
		draws = cfg.DetDraws
	}
	curve.Draws = draws
	baseSeed := pairSeed(cfg.Seed, info.Name, noise.pair, spec.Name)
	auditK := min(cfg.AuditTopK, spec.N)
	theta := 1.0
	request := func(cands []fairrank.Candidate) fairrank.Request {
		return fairrank.Request{
			Candidates: cands,
			Theta:      &theta,
			Noise:      fairrank.Noise(noise.request),
			Seed:       &baseSeed,
		}
	}
	trueGroup := make(map[string]string, len(pool))
	for _, c := range pool {
		trueGroup[c.ID] = c.Group
	}

	// Base sweep on the uncorrupted pool: the identity anchor the
	// noiseless levels are held to.
	base, err := noiseRun(ctx, ranker, request(pool), draws, auditK, trueGroup)
	if err != nil {
		violate(Violation{Check: CheckDrawError, Detail: fmt.Sprintf("uncorrupted base sweep failed: %v", err)})
		return curve
	}

	zeroOK := true
	for _, level := range levels {
		corrupted, err := level.Apply(pool)
		if err != nil {
			violate(Violation{Check: CheckDrawError, Detail: fmt.Sprintf(
				"applying noise level (flip %v, missing %v) failed: %v", level.Flip, level.Missing, err)})
			if level.IsZero() {
				zeroOK = false
			}
			continue
		}
		pt, err := noiseRun(ctx, ranker, request(corrupted), draws, auditK, trueGroup)
		if err != nil {
			violate(Violation{Check: CheckDrawError, Detail: fmt.Sprintf(
				"sweep at noise level (flip %v, missing %v) failed: %v", level.Flip, level.Missing, err)})
			if level.IsZero() {
				zeroOK = false
			}
			continue
		}
		if level.IsZero() {
			for i := range base.ids {
				if !equalIDs(base.ids[i], pt.ids[i]) {
					zeroOK = false
					violate(Violation{Check: CheckZeroNoiseIdentity, Observed: float64(i), Detail: fmt.Sprintf(
						"draw %d of the noiseless level differs from the uncorrupted base sweep (seed %d) — the zero channel or the engine's one-hot membership path perturbs rankings it must not touch",
						i, baseSeed)})
					break
				}
			}
		}
		curve.Points = append(curve.Points, NoiseCurvePoint{
			Flip:               level.Flip,
			Missing:            level.Missing,
			MeanPPfairObserved: stats.Mean(pt.observed),
			MeanPPfairTrue:     stats.Mean(pt.truth),
			MeanExpectedPPfair: stats.Mean(pt.expected),
			MeanNDCG:           stats.Mean(pt.ndcg),
		})
	}
	curve.ZeroNoiseIdentical = zeroOK
	return curve
}

// noisePoint is one sweep's raw per-draw measurements: the three
// fairness readings of each ranking plus quality and the ID sequences
// the identity check compares.
type noisePoint struct {
	ids      [][]string
	observed []float64
	truth    []float64
	expected []float64
	ndcg     []float64
}

// noiseRun samples draws rankings and audits each three ways: against
// the labels the ranking carries (observed), against the uncorrupted
// pool's labels (true), and in expectation under the Membership
// posteriors (expected).
func noiseRun(ctx context.Context, ranker *fairrank.Ranker, req fairrank.Request, draws, auditK int, trueGroup map[string]string) (*noisePoint, error) {
	out := &noisePoint{}
	err := ranker.Sample(ctx, req, draws, func(i int, res *fairrank.Result) error {
		k := min(auditK, len(res.Ranking))
		tol := res.Diagnostics.Tolerance
		observed, err := fairrank.PPfairTopK(res.Ranking, k, tol)
		if err != nil {
			return fmt.Errorf("conformance: observed audit of draw %d: %w", i, err)
		}
		relabeled := make([]fairrank.Candidate, len(res.Ranking))
		for j, c := range res.Ranking {
			g, ok := trueGroup[c.ID]
			if !ok {
				return fmt.Errorf("conformance: draw %d ranked %q, which is not in the uncorrupted pool", i, c.ID)
			}
			c.Group = g
			c.Membership = nil
			relabeled[j] = c
		}
		truth, err := fairrank.PPfairTopK(relabeled, k, tol)
		if err != nil {
			return fmt.Errorf("conformance: true-label audit of draw %d: %w", i, err)
		}
		expected, err := fairrank.ExpectedPPfairTopK(res.Ranking, k, tol)
		if err != nil {
			return fmt.Errorf("conformance: expected audit of draw %d: %w", i, err)
		}
		out.ids = append(out.ids, idsOf(res))
		out.observed = append(out.observed, observed)
		out.truth = append(out.truth, truth)
		out.expected = append(out.expected, expected)
		out.ndcg = append(out.ndcg, res.Diagnostics.NDCG)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
