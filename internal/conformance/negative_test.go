package conformance

// The negative suite: deliberately defective strategies and mechanisms,
// registered under the "test:" prefix (so registry-derived runs skip
// them), must be flagged with actionable violation reports. This is the
// proof that a green conformance run means something.

import (
	"context"
	"math/rand"
	"strings"
	"sync"
	"testing"

	fairrank "repro"
	"repro/internal/scenario"
)

var registerBroken sync.Once

// brokenNames returns the registry entries of the negative suite,
// registering them on first use.
func brokenInfos(t *testing.T) map[string]fairrank.AlgorithmInfo {
	t.Helper()
	registerBroken.Do(func() {
		// Claims exact fairness and near-ideal quality, delivers the
		// reverse of the central ranking: both floors must trip.
		fairrank.MustRegister(fairrank.AlgorithmInfo{
			Name:           "test:broken-unfair",
			Description:    "negative-test strategy: reverses the central ranking while advertising high floors",
			AttributeBlind: true,
			Deterministic:  true,
			Guarantees:     fairrank.Guarantees{MinMeanPPfair: 95, MinMeanNDCG: 0.95},
		}, func(cfg fairrank.Config) (fairrank.Strategy, error) {
			return fairrank.StrategyFunc(func(in *fairrank.Instance, rng *rand.Rand) ([]int, error) {
				c := in.Central()
				for i, j := 0, len(c)-1; i < j; i, j = i+1, j-1 {
					c[i], c[j] = c[j], c[i]
				}
				return c, nil
			}), nil
		})
		// Claims determinism, shuffles with the engine RNG: the
		// determinism-flag check must trip.
		fairrank.MustRegister(fairrank.AlgorithmInfo{
			Name:          "test:broken-claims-deterministic",
			Description:   "negative-test strategy: claims Deterministic but shuffles per seed",
			Deterministic: true,
		}, func(cfg fairrank.Config) (fairrank.Strategy, error) {
			return fairrank.StrategyFunc(func(in *fairrank.Instance, rng *rand.Rand) ([]int, error) {
				c := in.Central()
				rng.Shuffle(len(c), func(i, j int) { c[i], c[j] = c[j], c[i] })
				return c, nil
			}), nil
		})
		// Returns a non-permutation: the engine rejects every draw, so
		// the report must carry a draw-error.
		fairrank.MustRegister(fairrank.AlgorithmInfo{
			Name:        "test:broken-invalid",
			Description: "negative-test strategy: returns duplicate indices",
		}, func(cfg fairrank.Config) (fairrank.Strategy, error) {
			return fairrank.StrategyFunc(func(in *fairrank.Instance, rng *rand.Rand) ([]int, error) {
				return make([]int, in.N()), nil
			}), nil
		})
		// A noise mechanism whose θ = 0 is not uniform (it always
		// returns the central): the uniform-limit check must trip.
		fairrank.MustRegisterNoise(fairrank.NoiseInfo{
			Name:        "test:broken-constant-noise",
			Description: "negative-test mechanism: ignores θ and returns the central unchanged",
		}, func(central []int, theta float64) (func(*rand.Rand) []int, error) {
			return func(rng *rand.Rand) []int {
				return append([]int(nil), central...)
			}, nil
		})
	})
	out := map[string]fairrank.AlgorithmInfo{}
	for _, name := range []string{"test:broken-unfair", "test:broken-claims-deterministic", "test:broken-invalid"} {
		info, ok := fairrank.LookupAlgorithm(name)
		if !ok {
			t.Fatalf("negative-suite algorithm %q not registered", name)
		}
		out[name] = info
	}
	return out
}

// violationsBy indexes a report's violations by check.
func violationsBy(rep *Report) map[Check][]Violation {
	out := map[Check][]Violation{}
	for _, v := range rep.Violations {
		out[v.Check] = append(out[v.Check], v)
	}
	return out
}

func TestBrokenStrategyFailsFloors(t *testing.T) {
	infos := brokenInfos(t)
	rep, err := Run(context.Background(), Config{
		Draws:      20,
		Algorithms: []fairrank.AlgorithmInfo{infos["test:broken-unfair"]},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() {
		t.Fatal("a strategy delivering the reverse of its advertised behavior passed conformance")
	}
	by := violationsBy(rep)
	if len(by[CheckPPfairFloor]) == 0 {
		t.Error("no ppfair-floor violation for a maximally unfair strategy")
	}
	if len(by[CheckNDCGFloor]) == 0 {
		t.Error("no ndcg-floor violation for a quality-destroying strategy")
	}
	// The report must be actionable: name the pair, the workload, the
	// observed-vs-bound gap, and what to change.
	for _, v := range append(by[CheckPPfairFloor], by[CheckNDCGFloor]...) {
		if v.Algorithm != "test:broken-unfair" || v.Scenario == "" {
			t.Errorf("violation lacks its pair/scenario coordinates: %+v", v)
		}
		if v.CI == nil || v.Bound == 0 {
			t.Errorf("violation lacks its statistical evidence: %+v", v)
		}
		if !strings.Contains(v.Detail, "AlgorithmInfo.Guarantees") {
			t.Errorf("violation detail is not actionable: %q", v.Detail)
		}
	}
	// And it must not cry wolf on the checks the strategy honors: the
	// reversal is deterministic and seed-clean.
	if len(by[CheckDeterminismFlag]) != 0 || len(by[CheckSeedReproducibility]) != 0 {
		t.Errorf("spurious determinism/reproducibility violations: %v", rep.Violations)
	}
}

func TestBrokenDeterminismClaimIsFlagged(t *testing.T) {
	infos := brokenInfos(t)
	rep, err := Run(context.Background(), Config{
		Draws:      10,
		Algorithms: []fairrank.AlgorithmInfo{infos["test:broken-claims-deterministic"]},
	})
	if err != nil {
		t.Fatal(err)
	}
	by := violationsBy(rep)
	if len(by[CheckDeterminismFlag]) == 0 {
		t.Fatalf("a seed-dependent strategy claiming Deterministic passed; violations: %v", rep.Violations)
	}
	if d := by[CheckDeterminismFlag][0].Detail; !strings.Contains(d, "Deterministic") {
		t.Errorf("determinism violation detail is not actionable: %q", d)
	}
}

func TestBrokenOutputIsFlagged(t *testing.T) {
	infos := brokenInfos(t)
	rep, err := Run(context.Background(), Config{
		Draws:      5,
		Algorithms: []fairrank.AlgorithmInfo{infos["test:broken-invalid"]},
	})
	if err != nil {
		t.Fatal(err)
	}
	by := violationsBy(rep)
	if len(by[CheckDrawError]) == 0 {
		t.Fatalf("a strategy returning non-permutations passed; violations: %v", rep.Violations)
	}
	if d := by[CheckDrawError][0].Detail; !strings.Contains(d, "replay") && !strings.Contains(d, "failed") {
		t.Errorf("draw-error detail carries no reproduction hint: %q", d)
	}
}

func TestBrokenNoiseFailsUniformLimit(t *testing.T) {
	brokenInfos(t) // ensure the noise is registered
	info, ok := fairrank.LookupAlgorithm(string(fairrank.AlgorithmMallows))
	if !ok {
		t.Skip("mallows not registered")
	}
	noise, ok := fairrank.LookupNoise("test:broken-constant-noise")
	if !ok {
		t.Fatal("negative-suite noise not registered")
	}
	specs, err := scenario.Corpus("conformance")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), Config{
		Draws:      40,
		Algorithms: []fairrank.AlgorithmInfo{info},
		Noises:     []fairrank.NoiseInfo{noise},
		Scenarios:  specs[:1],
	})
	if err != nil {
		t.Fatal(err)
	}
	by := violationsBy(rep)
	if len(by[CheckUniformLimit]) == 0 {
		t.Fatalf("a constant 'noise' mechanism passed the θ=0 uniform-limit check; violations: %v", rep.Violations)
	}
	if d := by[CheckUniformLimit][0].Detail; !strings.Contains(d, "θ=0") {
		t.Errorf("uniform-limit detail is not actionable: %q", d)
	}
}

// TestRegistryDerivedRunsSkipTestEntries: once the negative suite has
// registered its broken strategies, a registry-derived run must still
// be green — the "test:" convention keeps throwaway entries out.
func TestRegistryDerivedRunsSkipTestEntries(t *testing.T) {
	brokenInfos(t)
	specs, err := scenario.Corpus("conformance")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), Config{Draws: 10, Scenarios: specs[:1]})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range rep.Pairs {
		if strings.HasPrefix(p.Algorithm, testPrefix) || strings.HasPrefix(p.Noise, testPrefix) {
			t.Errorf("registry-derived run picked up test entry %s×%s", p.Algorithm, p.Noise)
		}
	}
}
