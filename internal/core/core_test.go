package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/fairness"
	"repro/internal/perm"
	"repro/internal/quality"
	"repro/internal/rankdist"
)

func TestPostProcessValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := PostProcess(perm.Identity(5), Config{Theta: -1, Samples: 1}, rng); err == nil {
		t.Error("accepted negative theta")
	}
	if _, err := PostProcess(perm.Identity(5), Config{Theta: 1, Samples: 0}, rng); err == nil {
		t.Error("accepted zero samples")
	}
	if _, err := PostProcess(perm.Perm{0, 0}, Config{Theta: 1, Samples: 1}, rng); err == nil {
		t.Error("accepted invalid central")
	}
}

func TestPostProcessReturnsValidPerm(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, theta := range []float64{0, 0.5, 3} {
		p, err := PostProcess(perm.Random(20, rng), Config{Theta: theta, Samples: 3}, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPostProcessHighThetaStaysClose(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	central := perm.Random(15, rng)
	p, err := PostProcess(central, Config{Theta: 20, Samples: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	d, err := rankdist.KendallTau(p, central)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("θ=20 sample at distance %d from central", d)
	}
}

func TestPostProcessBestOfImprovesCriterion(t *testing.T) {
	// With the KT criterion, best-of-m is stochastically closer to the
	// central ranking than a single draw. Compare means over trials.
	rngA := rand.New(rand.NewSource(4))
	rngB := rand.New(rand.NewSource(4))
	central := perm.Identity(12)
	crit := KTCriterion{Reference: central}
	var one, best float64
	const trials = 300
	for i := 0; i < trials; i++ {
		p1, err := PostProcess(central, Config{Theta: 0.3, Samples: 1, Criterion: crit}, rngA)
		if err != nil {
			t.Fatal(err)
		}
		d1, _ := rankdist.KendallTau(p1, central)
		one += float64(d1)
		p15, err := PostProcess(central, Config{Theta: 0.3, Samples: 15, Criterion: crit}, rngB)
		if err != nil {
			t.Fatal(err)
		}
		d15, _ := rankdist.KendallTau(p15, central)
		best += float64(d15)
	}
	if best >= one {
		t.Fatalf("best-of-15 mean distance %v not better than single-draw %v", best/trials, one/trials)
	}
}

func TestPostProcessNilCriterionConsumesDeterministicStream(t *testing.T) {
	// With the same seed, nil criterion and m samples must return the
	// first sample and leave the RNG in the same state as scoring runs —
	// i.e. exactly m draws consumed.
	central := perm.Identity(8)
	rng1 := rand.New(rand.NewSource(5))
	p1, err := PostProcess(central, Config{Theta: 1, Samples: 4}, rng1)
	if err != nil {
		t.Fatal(err)
	}
	after1 := rng1.Int63()

	rng2 := rand.New(rand.NewSource(5))
	first, err := PostProcess(central, Config{Theta: 1, Samples: 1}, rng2)
	if err != nil {
		t.Fatal(err)
	}
	if !p1.Equal(first) {
		t.Fatalf("nil criterion returned %v, want first sample %v", p1, first)
	}
	// Draw the remaining 3 samples manually; stream must align.
	for i := 0; i < 3; i++ {
		if _, err := PostProcess(central, Config{Theta: 1, Samples: 1}, rng2); err != nil {
			t.Fatal(err)
		}
	}
	if after2 := rng2.Int63(); after1 != after2 {
		t.Fatalf("RNG streams diverged: %d vs %d", after1, after2)
	}
}

func TestCriteriaScores(t *testing.T) {
	scores := quality.Scores{3, 2, 1}
	id := perm.Identity(3)
	rev := id.Reverse()

	n := NDCGCriterion{Scores: scores}
	vID, err := n.Score(id)
	if err != nil {
		t.Fatal(err)
	}
	vRev, err := n.Score(rev)
	if err != nil {
		t.Fatal(err)
	}
	if vID != 1 || vRev >= vID {
		t.Fatalf("NDCG criterion: id=%v rev=%v", vID, vRev)
	}
	if n.Name() != "ndcg" {
		t.Error("NDCG name")
	}

	k := KTCriterion{Reference: id}
	vSelf, _ := k.Score(id)
	vFar, _ := k.Score(rev)
	if vSelf != 0 || vFar != -3 {
		t.Fatalf("KT criterion: self=%v far=%v", vSelf, vFar)
	}
	if k.Name() != "kt" {
		t.Error("KT name")
	}

	gr := fairness.MustGroups([]int{0, 0, 1}, 2)
	c, _ := fairness.NewConstraints([]float64{0.3, 0.3}, []float64{0.7, 0.7})
	f := FairnessCriterion{Groups: gr, Constraints: c}
	v, err := f.Score(id)
	if err != nil {
		t.Fatal(err)
	}
	if v > 0 {
		t.Fatalf("fairness criterion positive: %v", v)
	}
	if f.Name() != "infeasible-index" {
		t.Error("fairness name")
	}
}

func TestCriterionErrorsPropagate(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	// Reference of the wrong size makes the KT criterion fail.
	_, err := PostProcess(perm.Identity(5),
		Config{Theta: 1, Samples: 2, Criterion: KTCriterion{Reference: perm.Identity(4)}}, rng)
	if err == nil {
		t.Fatal("criterion error not propagated")
	}
	// Same failure on the very first sample.
	_, err = PostProcess(perm.Identity(5),
		Config{Theta: 1, Samples: 1, Criterion: KTCriterion{Reference: perm.Identity(4)}}, rng)
	if err == nil {
		t.Fatal("first-sample criterion error not propagated")
	}
}

func TestRankEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	scores := quality.Scores{10, 9, 8, 7, 3, 2, 1, 0.5}
	gr := fairness.MustGroups([]int{0, 0, 0, 0, 1, 1, 1, 1}, 2)
	c, _ := fairness.NewConstraints([]float64{0.4, 0.4}, []float64{0.6, 0.6})
	p, err := Rank(scores, gr, c, 4, Config{Theta: 2, Samples: 5, Criterion: NDCGCriterion{Scores: scores}}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p) != 8 {
		t.Fatalf("ranked %d items", len(p))
	}
}

func TestRankInfeasibleCentral(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	// Group 1 has one member but ⌊0.9·3⌋ = 2 are demanded in the top 3.
	scores := quality.Scores{1, 2, 3}
	gr := fairness.MustGroups([]int{0, 0, 1}, 2)
	c, _ := fairness.NewConstraints([]float64{0.9, 0.9}, []float64{1, 1})
	if _, err := Rank(scores, gr, c, 3, Config{Theta: 1, Samples: 1}, rng); err == nil {
		t.Fatal("accepted infeasible weak-fairness demand")
	}
}

func TestPostProcessZeroThetaIsUniform(t *testing.T) {
	// θ=0 must not privilege the central ranking: over many draws the
	// mean distance should match the uniform expectation n(n−1)/4.
	rng := rand.New(rand.NewSource(9))
	central := perm.Identity(8)
	var total float64
	const trials = 4000
	for i := 0; i < trials; i++ {
		p, err := PostProcess(central, Config{Theta: 0, Samples: 1}, rng)
		if err != nil {
			t.Fatal(err)
		}
		d, _ := rankdist.KendallTau(p, central)
		total += float64(d)
	}
	mean := total / trials
	want := 8.0 * 7.0 / 4.0
	if math.Abs(mean-want) > 0.5 {
		t.Fatalf("θ=0 mean distance %v, want ≈ %v", mean, want)
	}
}
