package core

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/mallows"
	"repro/internal/perm"
	"repro/internal/pl"
)

// Noise is a randomization mechanism for rankings: given a central
// ranking it yields a sampler of perturbed rankings. The paper's §VI
// proposes exploring noise distributions beyond Mallows; implementations
// here cover the Mallows model (the paper's choice), its generalized
// per-position form, Plackett–Luce sampling, and adjacent-swap chains.
type Noise interface {
	// Name identifies the mechanism in reports.
	Name() string
	// Sampler validates the central ranking and returns a draw function.
	Sampler(central perm.Perm) (func(*rand.Rand) perm.Perm, error)
}

// MallowsNoise draws from M(central, Theta) — the paper's mechanism.
type MallowsNoise struct {
	Theta float64
}

// Name implements Noise.
func (n MallowsNoise) Name() string { return fmt.Sprintf("mallows(θ=%g)", n.Theta) }

// Sampler implements Noise.
func (n MallowsNoise) Sampler(central perm.Perm) (func(*rand.Rand) perm.Perm, error) {
	model, err := mallows.New(central, n.Theta)
	if err != nil {
		return nil, err
	}
	return model.Sample, nil
}

// GeneralizedMallowsNoise draws from the Fligner–Verducci generalized
// Mallows model with per-position dispersions.
type GeneralizedMallowsNoise struct {
	Thetas []float64
}

// Name implements Noise.
func (n GeneralizedMallowsNoise) Name() string { return "generalized-mallows" }

// Sampler implements Noise.
func (n GeneralizedMallowsNoise) Sampler(central perm.Perm) (func(*rand.Rand) perm.Perm, error) {
	model, err := mallows.NewGeneralized(central, n.Thetas)
	if err != nil {
		return nil, err
	}
	return model.Sample, nil
}

// PlackettLuceNoise samples a Plackett–Luce ranking whose item weights
// decay exponentially with central rank: the item at central rank r
// (0-based) has weight e^{−Strength·r}. Strength 0 is the uniform
// distribution; large Strength concentrates on the central ranking.
type PlackettLuceNoise struct {
	Strength float64
}

// Name implements Noise.
func (n PlackettLuceNoise) Name() string { return fmt.Sprintf("plackett-luce(s=%g)", n.Strength) }

// Sampler implements Noise. The model has item weights
// e^{−Strength·(central rank)}; drawing works directly on the
// log-weights (internal/pl, Gumbel-max trick), so long rankings and
// large strengths cannot underflow the tail weights to zero.
func (n PlackettLuceNoise) Sampler(central perm.Perm) (func(*rand.Rand) perm.Perm, error) {
	if err := central.Validate(); err != nil {
		return nil, err
	}
	if math.IsNaN(n.Strength) || n.Strength < 0 {
		return nil, fmt.Errorf("core: plackett-luce strength %v, want ≥ 0", n.Strength)
	}
	logw := make([]float64, len(central))
	for r, item := range central {
		logw[item] = -n.Strength * float64(r)
	}
	return func(rng *rand.Rand) perm.Perm { return pl.SampleLogWeights(logw, rng) }, nil
}

// AdjacentSwapNoise applies Swaps uniformly random adjacent
// transpositions to the central ranking — a lazy random walk on the
// Cayley graph that the Mallows model is the stationary analogue of.
type AdjacentSwapNoise struct {
	Swaps int
}

// Name implements Noise.
func (n AdjacentSwapNoise) Name() string { return fmt.Sprintf("adjacent-swaps(k=%d)", n.Swaps) }

// Sampler implements Noise.
func (n AdjacentSwapNoise) Sampler(central perm.Perm) (func(*rand.Rand) perm.Perm, error) {
	if err := central.Validate(); err != nil {
		return nil, err
	}
	if n.Swaps < 0 {
		return nil, fmt.Errorf("core: adjacent swaps %d, want ≥ 0", n.Swaps)
	}
	c := central.Clone()
	swaps := n.Swaps
	return func(rng *rand.Rand) perm.Perm {
		out := c.Clone()
		for s := 0; s < swaps && len(out) > 1; s++ {
			i := rng.Intn(len(out) - 1)
			out.Swap(i, i+1)
		}
		return out
	}, nil
}

// PostProcessWith generalizes Algorithm 1 to any noise mechanism: draw
// samples perturbed rankings around central and keep the best under
// criterion (the first draw when criterion is nil).
func PostProcessWith(central perm.Perm, noise Noise, samples int, criterion Criterion, rng *rand.Rand) (perm.Perm, error) {
	if noise == nil {
		return nil, fmt.Errorf("core: nil noise mechanism")
	}
	if samples < 1 {
		return nil, fmt.Errorf("core: samples = %d, want ≥ 1", samples)
	}
	draw, err := noise.Sampler(central)
	if err != nil {
		return nil, err
	}
	best := draw(rng)
	if criterion == nil {
		for i := 1; i < samples; i++ {
			draw(rng)
		}
		return best, nil
	}
	bestScore, err := criterion.Score(best)
	if err != nil {
		return nil, err
	}
	for i := 1; i < samples; i++ {
		s := draw(rng)
		v, err := criterion.Score(s)
		if err != nil {
			return nil, err
		}
		if v > bestScore {
			best, bestScore = s, v
		}
	}
	return best, nil
}
