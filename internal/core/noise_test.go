package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mallows"
	"repro/internal/perm"
	"repro/internal/quality"
	"repro/internal/rankdist"
)

func allNoises() []Noise {
	return []Noise{
		MallowsNoise{Theta: 1},
		GeneralizedMallowsNoise{Thetas: []float64{2, 1, 1, 0.5, 0.5, 0.2, 0.2, 0.1, 0.1, 0}},
		PlackettLuceNoise{Strength: 0.5},
		AdjacentSwapNoise{Swaps: 8},
	}
}

func TestNoiseSamplersProduceValidPerms(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	central := perm.Random(10, rng)
	for _, n := range allNoises() {
		draw, err := n.Sampler(central)
		if err != nil {
			t.Fatalf("%s: %v", n.Name(), err)
		}
		for i := 0; i < 50; i++ {
			p := draw(rng)
			if err := p.Validate(); err != nil {
				t.Fatalf("%s sample invalid: %v", n.Name(), err)
			}
			if len(p) != 10 {
				t.Fatalf("%s sample wrong size", n.Name())
			}
		}
		if n.Name() == "" {
			t.Fatal("empty noise name")
		}
	}
}

func TestNoiseSamplersRejectInvalidCentral(t *testing.T) {
	bad := perm.Perm{0, 0, 1}
	for _, n := range allNoises() {
		if _, err := n.Sampler(bad); err == nil {
			t.Errorf("%s accepted invalid central", n.Name())
		}
	}
}

func TestNoiseParameterValidation(t *testing.T) {
	central := perm.Identity(5)
	if _, err := (MallowsNoise{Theta: -1}).Sampler(central); err == nil {
		t.Error("mallows accepted negative theta")
	}
	if _, err := (GeneralizedMallowsNoise{Thetas: []float64{1}}).Sampler(central); err == nil {
		t.Error("generalized accepted wrong theta count")
	}
	if _, err := (PlackettLuceNoise{Strength: -1}).Sampler(central); err == nil {
		t.Error("plackett-luce accepted negative strength")
	}
	if _, err := (PlackettLuceNoise{Strength: math.NaN()}).Sampler(central); err == nil {
		t.Error("plackett-luce accepted NaN strength")
	}
	if _, err := (AdjacentSwapNoise{Swaps: -1}).Sampler(central); err == nil {
		t.Error("adjacent-swap accepted negative count")
	}
}

func TestZeroNoiseKeepsCentral(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	central := perm.Random(8, rng)
	cases := []Noise{
		AdjacentSwapNoise{Swaps: 0},
		MallowsNoise{Theta: 40},
		PlackettLuceNoise{Strength: 40},
	}
	for _, n := range cases {
		draw, err := n.Sampler(central)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			if p := draw(rng); !p.Equal(central) {
				t.Fatalf("%s at zero-noise setting moved the central: %v vs %v", n.Name(), p, central)
			}
		}
	}
}

func TestPlackettLuceUniformAtZeroStrength(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	draw, err := PlackettLuceNoise{}.Sampler(perm.Identity(4))
	if err != nil {
		t.Fatal(err)
	}
	freq := map[string]int{}
	const samples = 24000
	for i := 0; i < samples; i++ {
		freq[draw(rng).String()]++
	}
	if len(freq) != 24 {
		t.Fatalf("saw %d distinct perms, want 24", len(freq))
	}
	for s, f := range freq {
		if f < 800 || f > 1200 {
			t.Fatalf("perm %s frequency %d implausible for uniform", s, f)
		}
	}
}

func TestAdjacentSwapDistanceBound(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	central := perm.Identity(12)
	draw, err := AdjacentSwapNoise{Swaps: 5}.Sampler(central)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		d, err := rankdist.KendallTau(draw(rng), central)
		if err != nil {
			t.Fatal(err)
		}
		if d > 5 {
			t.Fatalf("5 adjacent swaps produced KT %d", d)
		}
	}
}

func TestPostProcessWith(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	central := perm.Identity(10)
	crit := KTCriterion{Reference: central}
	for _, n := range allNoises() {
		p, err := PostProcessWith(central, n, 5, crit, rng)
		if err != nil {
			t.Fatalf("%s: %v", n.Name(), err)
		}
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := PostProcessWith(central, nil, 5, crit, rng); err == nil {
		t.Error("accepted nil noise")
	}
	if _, err := PostProcessWith(central, MallowsNoise{Theta: 1}, 0, crit, rng); err == nil {
		t.Error("accepted zero samples")
	}
	// nil criterion keeps the first draw.
	p1, err := PostProcessWith(central, AdjacentSwapNoise{Swaps: 0}, 3, nil, rng)
	if err != nil || !p1.Equal(central) {
		t.Fatalf("nil criterion with zero swaps: %v, %v", p1, err)
	}
	// Criterion errors propagate.
	badCrit := KTCriterion{Reference: perm.Identity(4)}
	if _, err := PostProcessWith(central, MallowsNoise{Theta: 1}, 2, badCrit, rng); err == nil {
		t.Error("criterion error not propagated")
	}
}

func TestPostProcessWithMatchesPostProcess(t *testing.T) {
	// PostProcessWith(MallowsNoise) and PostProcess agree draw-for-draw
	// on the same seed.
	central := perm.Identity(9)
	crit := KTCriterion{Reference: central}
	a, err := PostProcess(central, Config{Theta: 0.7, Samples: 6, Criterion: crit}, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := PostProcessWith(central, MallowsNoise{Theta: 0.7}, 6, crit, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatalf("paths diverge: %v vs %v", a, b)
	}
}

func TestCalibrateTheta(t *testing.T) {
	for _, target := range []float64{1, 5, 12, 20} {
		theta, err := CalibrateTheta(12, target)
		if err != nil {
			t.Fatal(err)
		}
		got := mallows.ExpectedDistance(12, theta)
		if math.Abs(got-target) > 1e-6 {
			t.Fatalf("calibrated θ=%v gives E[d]=%v, want %v", theta, got, target)
		}
	}
	// Boundary and error cases.
	max := mallows.ExpectedDistance(12, 0)
	theta, err := CalibrateTheta(12, max)
	if err != nil || theta != 0 {
		t.Fatalf("target=max should give θ=0: %v, %v", theta, err)
	}
	if _, err := CalibrateTheta(1, 1); err == nil {
		t.Error("accepted n<2")
	}
	if _, err := CalibrateTheta(12, 0); err == nil {
		t.Error("accepted target 0")
	}
	if _, err := CalibrateTheta(12, max+1); err == nil {
		t.Error("accepted target beyond uniform mean")
	}
}

func TestCalibrateThetaNormalized(t *testing.T) {
	theta, err := CalibrateThetaNormalized(10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := mallows.ExpectedDistance(10, 0) * 0.5
	if got := mallows.ExpectedDistance(10, theta); math.Abs(got-want) > 1e-6 {
		t.Fatalf("normalized calibration off: %v vs %v", got, want)
	}
	if _, err := CalibrateThetaNormalized(10, 0); err == nil {
		t.Error("accepted frac 0")
	}
	if _, err := CalibrateThetaNormalized(10, 1.5); err == nil {
		t.Error("accepted frac > 1")
	}
}

func TestCalibrateThetaForNDCG(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	scores := make(quality.Scores, 20)
	for i := range scores {
		scores[i] = float64(20 - i)
	}
	central := perm.Identity(20)
	theta, err := CalibrateThetaForNDCG(central, scores, 0.95, 300, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Verify: mean NDCG at the calibrated θ is near the target.
	model, err := mallows.New(central, theta)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	const probes = 2000
	for i := 0; i < probes; i++ {
		v, err := quality.NDCG(model.Sample(rng), scores, 20)
		if err != nil {
			t.Fatal(err)
		}
		total += v
	}
	if got := total / probes; math.Abs(got-0.95) > 0.02 {
		t.Fatalf("calibrated θ=%v gives mean NDCG %v, want ≈ 0.95", theta, got)
	}
	// Validation.
	if _, err := CalibrateThetaForNDCG(perm.Perm{0, 0}, scores[:2], 0.9, 10, rng); err == nil {
		t.Error("accepted invalid central")
	}
	if _, err := CalibrateThetaForNDCG(central, scores[:5], 0.9, 10, rng); err == nil {
		t.Error("accepted score size mismatch")
	}
	if _, err := CalibrateThetaForNDCG(central, scores, 1.5, 10, rng); err == nil {
		t.Error("accepted target ≥ 1")
	}
	if _, err := CalibrateThetaForNDCG(central, scores, 0.9, 0, rng); err == nil {
		t.Error("accepted zero probes")
	}
}
