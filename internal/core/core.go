// Package core implements the paper's primary contribution (§IV-A,
// Algorithm 1): post-processing a ranking by admixing Mallows noise.
//
// Given a central ranking π₀ — in the fair-ranking setting, a weakly
// k-fair ranking of the candidates ordered by descending score — the
// algorithm draws m samples from the Mallows distribution M(π₀, θ) and
// keeps the best sample under a selection criterion. Because sampling
// never consults group membership, the randomization is oblivious to the
// protected attribute: the fairness it buys is robust to attributes that
// are unknown at ranking time, which is the paper's central claim.
package core

import (
	"fmt"
	"math/rand"

	"repro/internal/fairness"
	"repro/internal/mallows"
	"repro/internal/perm"
	"repro/internal/quality"
	"repro/internal/rankdist"
)

// Criterion scores a sampled ranking; PostProcess keeps the sample with
// the highest criterion value. Criteria must be deterministic.
type Criterion interface {
	// Score returns the selection score of candidate ranking p.
	Score(p perm.Perm) (float64, error)
	// Name identifies the criterion in reports.
	Name() string
}

// NDCGCriterion selects the sample with the highest NDCG under the given
// scores — the efficiency-first choice used when quality scores are
// known (§III-F).
type NDCGCriterion struct {
	Scores quality.Scores
}

// Score implements Criterion.
func (c NDCGCriterion) Score(p perm.Perm) (float64, error) {
	return quality.NDCG(p, c.Scores, len(p))
}

// Name implements Criterion.
func (c NDCGCriterion) Name() string { return "ndcg" }

// KTCriterion selects the sample closest to the reference ranking in
// Kendall tau distance — the efficiency measure used when the scores
// behind the input ranking are unknown (§III-F).
type KTCriterion struct {
	Reference perm.Perm
}

// Score implements Criterion.
func (c KTCriterion) Score(p perm.Perm) (float64, error) {
	d, err := rankdist.KendallTau(p, c.Reference)
	if err != nil {
		return 0, err
	}
	return -float64(d), nil
}

// Name implements Criterion.
func (c KTCriterion) Name() string { return "kt" }

// FairnessCriterion selects the sample with the fewest two-sided
// infeasible positions with respect to a known attribute. It is NOT
// attribute-blind; the paper's experiments do not use it, but it makes
// the fairness/efficiency trade-off of the mechanism measurable when an
// attribute is available (used by the ablation benches).
type FairnessCriterion struct {
	Groups      *fairness.Groups
	Constraints *fairness.Constraints
}

// Score implements Criterion.
func (c FairnessCriterion) Score(p perm.Perm) (float64, error) {
	ii, err := fairness.TwoSidedInfeasibleIndex(p, c.Groups, c.Constraints)
	if err != nil {
		return 0, err
	}
	return -float64(ii), nil
}

// Name implements Criterion.
func (c FairnessCriterion) Name() string { return "infeasible-index" }

// Config parameterizes Algorithm 1.
type Config struct {
	// Theta is the Mallows dispersion; larger values stay closer to the
	// central ranking (θ → ∞ reproduces it, θ = 0 is uniform shuffling).
	Theta float64
	// Samples is m, the number of Mallows draws. 1 yields pure
	// randomization; larger m trades computation for criterion value.
	Samples int
	// Criterion picks the best sample. nil keeps the first sample
	// regardless of quality (equivalent to m = 1 semantics for any m).
	Criterion Criterion
}

func (cfg Config) validate() error {
	if cfg.Theta < 0 {
		return fmt.Errorf("core: θ = %v, want ≥ 0", cfg.Theta)
	}
	if cfg.Samples < 1 {
		return fmt.Errorf("core: samples = %d, want ≥ 1", cfg.Samples)
	}
	return nil
}

// PostProcess runs Algorithm 1 around the given central ranking: draw
// cfg.Samples rankings from M(central, θ) and return the one maximizing
// cfg.Criterion (the first sample if the criterion is nil).
func PostProcess(central perm.Perm, cfg Config, rng *rand.Rand) (perm.Perm, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	model, err := mallows.New(central, cfg.Theta)
	if err != nil {
		return nil, err
	}
	best := model.Sample(rng)
	if cfg.Criterion == nil {
		for i := 1; i < cfg.Samples; i++ {
			model.Sample(rng) // consume the configured number of draws
		}
		return best, nil
	}
	bestScore, err := cfg.Criterion.Score(best)
	if err != nil {
		return nil, err
	}
	for i := 1; i < cfg.Samples; i++ {
		s := model.Sample(rng)
		v, err := cfg.Criterion.Score(s)
		if err != nil {
			return nil, err
		}
		if v > bestScore {
			best, bestScore = s, v
		}
	}
	return best, nil
}

// Rank is the end-to-end fair-ranking entry point: it constructs the
// weakly k-fair central permutation from the scores (candidates in
// descending score order, §IV-A) and post-processes it with Mallows
// noise. The groups and constraints are used only to build the central
// ranking; the randomization itself never reads them.
func Rank(scores quality.Scores, gr *fairness.Groups, c *fairness.Constraints, k int, cfg Config, rng *rand.Rand) (perm.Perm, error) {
	central, err := fairness.WeaklyFairRanking(scores, gr, c, k)
	if err != nil {
		return nil, fmt.Errorf("core: building weakly fair central: %w", err)
	}
	return PostProcess(central, cfg, rng)
}
