package core

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/mallows"
	"repro/internal/perm"
	"repro/internal/quality"
)

// CalibrateTheta returns the dispersion θ at which the Mallows model
// over n items has expected Kendall tau distance targetKT from its
// center. This is the "systematic methodology for incorporating noise"
// the paper's §VI calls for: pick the amount of reshuffling first, and
// derive θ from it. E[d] is strictly decreasing in θ, so bisection is
// exact up to floating point.
//
// targetKT must lie in (0, n(n−1)/4]; the upper end is the uniform
// distribution's mean, attained at θ = 0.
func CalibrateTheta(n int, targetKT float64) (float64, error) {
	if n < 2 {
		return 0, fmt.Errorf("core: calibrate needs n ≥ 2, have %d", n)
	}
	max := mallows.ExpectedDistance(n, 0)
	if math.IsNaN(targetKT) || targetKT <= 0 || targetKT > max {
		return 0, fmt.Errorf("core: target distance %v outside (0, %v]", targetKT, max)
	}
	if targetKT == max {
		return 0, nil
	}
	lo, hi := 0.0, mallows.MaxTheta
	for iter := 0; iter < 200; iter++ {
		mid := (lo + hi) / 2
		if mallows.ExpectedDistance(n, mid) > targetKT {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// CalibrateThetaNormalized is CalibrateTheta with the target expressed
// as a fraction of the uniform-distribution mean n(n−1)/4 (so frac = 1
// means θ = 0 and frac → 0 means θ → ∞).
func CalibrateThetaNormalized(n int, frac float64) (float64, error) {
	if frac <= 0 || frac > 1 {
		return 0, fmt.Errorf("core: fraction %v outside (0,1]", frac)
	}
	return CalibrateTheta(n, frac*mallows.ExpectedDistance(n, 0))
}

// CalibrateThetaForNDCG searches for the dispersion whose expected NDCG
// loss around the given central ranking matches targetNDCG. NDCG has no
// closed form under Mallows noise, so the expectation is estimated by
// Monte Carlo with the given sample count per probe; the result carries
// that sampling error. Expected NDCG is increasing in θ, so bisection
// applies.
func CalibrateThetaForNDCG(central perm.Perm, scores quality.Scores, targetNDCG float64, probes int, rng *rand.Rand) (float64, error) {
	if err := central.Validate(); err != nil {
		return 0, err
	}
	if len(scores) != len(central) {
		return 0, fmt.Errorf("core: %d scores for %d items", len(scores), len(central))
	}
	if targetNDCG <= 0 || targetNDCG >= 1 {
		return 0, fmt.Errorf("core: target NDCG %v outside (0,1)", targetNDCG)
	}
	if probes < 1 {
		return 0, fmt.Errorf("core: probes = %d, want ≥ 1", probes)
	}
	mean := func(theta float64) (float64, error) {
		model, err := mallows.New(central, theta)
		if err != nil {
			return 0, err
		}
		var total float64
		for i := 0; i < probes; i++ {
			v, err := quality.NDCG(model.Sample(rng), scores, len(central))
			if err != nil {
				return 0, err
			}
			total += v
		}
		return total / float64(probes), nil
	}
	atZero, err := mean(0)
	if err != nil {
		return 0, err
	}
	if targetNDCG <= atZero {
		return 0, nil // even uniform shuffling beats the target
	}
	lo, hi := 0.0, mallows.MaxTheta
	for iter := 0; iter < 40; iter++ {
		mid := (lo + hi) / 2
		v, err := mean(mid)
		if err != nil {
			return 0, err
		}
		if v < targetNDCG {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}
