// Package assignment solves the minimum-cost bipartite perfect matching
// (assignment) problem with the Hungarian algorithm in its O(n³)
// shortest-augmenting-path formulation with dual potentials.
//
// It is the substrate for ApproxMultiValuedIPF (Wei et al., SIGMOD'22),
// which computes a footrule-optimal P-fair ranking as a min-cost matching
// between candidates and positions; infeasible candidate/position pairs
// are modelled as +Inf edges.
package assignment

import (
	"fmt"
	"math"
)

// Forbidden marks an edge that must not be used.
var Forbidden = math.Inf(1)

// Solve returns, for the square cost matrix, the column assigned to each
// row under a minimum-total-cost perfect matching, together with the
// total cost. Entries equal to +Inf are forbidden; if no perfect
// matching over finite edges exists, Solve reports ErrInfeasible.
func Solve(cost [][]float64) ([]int, float64, error) {
	n := len(cost)
	for i, row := range cost {
		if len(row) != n {
			return nil, 0, fmt.Errorf("assignment: row %d has %d entries, want %d", i, len(row), n)
		}
		for j, v := range row {
			if math.IsNaN(v) {
				return nil, 0, fmt.Errorf("assignment: cost[%d][%d] is NaN", i, j)
			}
			if math.IsInf(v, -1) {
				return nil, 0, fmt.Errorf("assignment: cost[%d][%d] is -Inf", i, j)
			}
		}
	}
	if n == 0 {
		return []int{}, 0, nil
	}

	// 1-indexed duals and matching, following the classic formulation:
	// p[j] is the row matched to column j (0 = unmatched sentinel row).
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	p := make([]int, n+1)
	way := make([]int, n+1)
	a := func(i, j int) float64 { return cost[i-1][j-1] }

	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := range minv {
			minv[j] = math.Inf(1)
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := math.Inf(1)
			j1 := -1
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := a(i0, j) - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			if math.IsInf(delta, 1) {
				// No augmenting path over finite edges.
				return nil, 0, ErrInfeasible
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	match := make([]int, n)
	var total float64
	for j := 1; j <= n; j++ {
		match[p[j]-1] = j - 1
		total += cost[p[j]-1][j-1]
	}
	if math.IsInf(total, 1) {
		return nil, 0, ErrInfeasible
	}
	return match, total, nil
}

// ErrInfeasible reports that no perfect matching over finite-cost edges
// exists.
var ErrInfeasible = errInfeasible{}

type errInfeasible struct{}

func (errInfeasible) Error() string { return "no perfect matching over finite-cost edges" }
