package assignment

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// bruteMatch enumerates all assignments; returns min cost (+Inf if none
// finite).
func bruteMatch(cost [][]float64) float64 {
	n := len(cost)
	cols := make([]int, n)
	for i := range cols {
		cols[i] = i
	}
	best := math.Inf(1)
	var rec func(k int, acc float64)
	rec = func(k int, acc float64) {
		if acc >= best {
			return
		}
		if k == n {
			best = acc
			return
		}
		for i := k; i < n; i++ {
			cols[k], cols[i] = cols[i], cols[k]
			if !math.IsInf(cost[k][cols[k]], 1) {
				rec(k+1, acc+cost[k][cols[k]])
			}
			cols[k], cols[i] = cols[i], cols[k]
		}
	}
	rec(0, 0)
	return best
}

func TestSolveKnown(t *testing.T) {
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	match, total, err := Solve(cost)
	if err != nil {
		t.Fatal(err)
	}
	// Optimal: row0→col1 (1), row1→col0 (2), row2→col2 (2) = 5.
	if total != 5 {
		t.Fatalf("total = %v, want 5", total)
	}
	if match[0] != 1 || match[1] != 0 || match[2] != 2 {
		t.Fatalf("match = %v", match)
	}
}

func TestSolveAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	for trial := 0; trial < 150; trial++ {
		n := 1 + rng.Intn(7)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				if rng.Float64() < 0.15 {
					cost[i][j] = Forbidden
				} else {
					cost[i][j] = math.Round(rng.Float64()*1000) / 10
				}
			}
		}
		want := bruteMatch(cost)
		match, total, err := Solve(cost)
		if math.IsInf(want, 1) {
			if !errors.Is(err, ErrInfeasible) {
				t.Fatalf("brute infeasible but Solve gave %v, %v, %v", match, total, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("brute %v but Solve errored: %v", want, err)
		}
		if math.Abs(total-want) > 1e-9 {
			t.Fatalf("total = %v, want %v (cost=%v)", total, want, cost)
		}
		// match must be a permutation and cost must re-add to total.
		seen := make([]bool, n)
		var re float64
		for i, j := range match {
			if j < 0 || j >= n || seen[j] {
				t.Fatalf("match not a permutation: %v", match)
			}
			seen[j] = true
			re += cost[i][j]
		}
		if math.Abs(re-total) > 1e-9 {
			t.Fatalf("re-added cost %v, reported %v", re, total)
		}
	}
}

func TestSolveNegativeCosts(t *testing.T) {
	cost := [][]float64{
		{-5, 0},
		{0, -5},
	}
	_, total, err := Solve(cost)
	if err != nil {
		t.Fatal(err)
	}
	if total != -10 {
		t.Fatalf("total = %v, want -10", total)
	}
}

func TestSolveInfeasible(t *testing.T) {
	inf := Forbidden
	cost := [][]float64{
		{inf, inf},
		{1, 2},
	}
	if _, _, err := Solve(cost); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestSolveValidation(t *testing.T) {
	if _, _, err := Solve([][]float64{{1, 2}}); err == nil {
		t.Error("accepted non-square matrix")
	}
	if _, _, err := Solve([][]float64{{math.NaN()}}); err == nil {
		t.Error("accepted NaN cost")
	}
	if _, _, err := Solve([][]float64{{math.Inf(-1)}}); err == nil {
		t.Error("accepted -Inf cost")
	}
}

func TestSolveEmptyAndSingleton(t *testing.T) {
	match, total, err := Solve(nil)
	if err != nil || len(match) != 0 || total != 0 {
		t.Fatalf("empty solve = %v, %v, %v", match, total, err)
	}
	match, total, err = Solve([][]float64{{7}})
	if err != nil || match[0] != 0 || total != 7 {
		t.Fatalf("singleton solve = %v, %v, %v", match, total, err)
	}
}
