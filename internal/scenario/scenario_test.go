package scenario

import (
	"bytes"
	"math"
	"os"
	"reflect"
	"strings"
	"testing"

	fairrank "repro"
)

func TestGenerateDeterministic(t *testing.T) {
	spec := Spec{Name: "det", N: 200, Groups: 3, Scores: ScoresGaussian, Ordering: OrderRandom, ShadowGroups: 2, Seed: 7}
	a, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("equal specs generated different pools")
	}
	spec.Seed = 8
	c, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds generated identical pools")
	}
}

func TestGenerateShape(t *testing.T) {
	for _, corpus := range CorpusNames() {
		specs, err := Corpus(corpus)
		if err != nil {
			t.Fatal(err)
		}
		for _, spec := range specs {
			if spec.N > 20000 && testing.Short() {
				continue
			}
			cands, err := spec.Generate()
			if err != nil {
				t.Fatalf("%s/%s: %v", corpus, spec.Name, err)
			}
			if len(cands) != spec.N {
				t.Fatalf("%s/%s: %d candidates, want %d", corpus, spec.Name, len(cands), spec.N)
			}
			ids := make(map[string]bool, len(cands))
			groups := make(map[string]int)
			for _, c := range cands {
				if c.ID == "" || ids[c.ID] {
					t.Fatalf("%s/%s: empty or duplicate ID %q", corpus, spec.Name, c.ID)
				}
				ids[c.ID] = true
				if math.IsNaN(c.Score) || math.IsInf(c.Score, 0) || c.Score < 0 {
					t.Fatalf("%s/%s: bad score %v", corpus, spec.Name, c.Score)
				}
				groups[c.Group]++
				if spec.ShadowGroups >= 2 && c.Attrs["shadow"] == "" {
					t.Fatalf("%s/%s: missing shadow attribute", corpus, spec.Name)
				}
			}
			if len(groups) != spec.Groups {
				t.Fatalf("%s/%s: %d distinct groups, want %d", corpus, spec.Name, len(groups), spec.Groups)
			}
			for g, n := range groups {
				if n == 0 {
					t.Fatalf("%s/%s: empty group %s", corpus, spec.Name, g)
				}
			}
		}
	}
}

func TestProportionsSkew(t *testing.T) {
	spec := Spec{Name: "skew", N: 100, Groups: 2, Proportions: []float64{0.8, 0.2}, Seed: 1}
	cands, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, c := range cands {
		counts[c.Group]++
	}
	if counts["g00"] != 80 || counts["g01"] != 20 {
		t.Fatalf("group sizes %v, want g00=80 g01=20", counts)
	}
}

func TestAdversarialAllMinorityAtBottom(t *testing.T) {
	spec := Spec{Name: "adv", N: 60, Groups: 2, Proportions: []float64{0.75, 0.25}, Ordering: OrderAdversarial, Seed: 3}
	cands, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	var minMajority, maxMinority float64
	minMajority = math.Inf(1)
	maxMinority = math.Inf(-1)
	for _, c := range cands {
		if c.Group == "g00" {
			minMajority = math.Min(minMajority, c.Score)
		} else {
			maxMinority = math.Max(maxMinority, c.Score)
		}
	}
	if maxMinority > minMajority {
		t.Fatalf("adversarial ordering leaked: best minority score %v above worst majority score %v", maxMinority, minMajority)
	}
}

func TestTiedScoresAreTied(t *testing.T) {
	spec := Spec{Name: "tied", N: 100, Groups: 2, Scores: ScoresTied, Seed: 4}
	cands, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[float64]bool{}
	for _, c := range cands {
		distinct[c.Score] = true
	}
	if len(distinct) > 5 {
		t.Fatalf("%d distinct tied scores, want ≤ 5", len(distinct))
	}
}

func TestGeneratedPoolsAreRankable(t *testing.T) {
	specs, err := Corpus("conformance")
	if err != nil {
		t.Fatal(err)
	}
	r, err := fairrank.NewRanker(fairrank.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range specs {
		cands, err := spec.Generate()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Rank(cands, 1); err != nil {
			t.Fatalf("%s: generated pool not rankable: %v", spec.Name, err)
		}
	}
}

func TestLargePoolGenerates(t *testing.T) {
	if testing.Short() {
		t.Skip("n = 100000 generation in short mode")
	}
	specs, err := Corpus("soak")
	if err != nil {
		t.Fatal(err)
	}
	spec, err := Find(specs, "soak-100k-uniform")
	if err != nil {
		t.Fatal(err)
	}
	cands, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 100000 {
		t.Fatalf("%d candidates, want 100000", len(cands))
	}
}

func TestCorpusRoundTrip(t *testing.T) {
	specs, err := Corpus("conformance")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCorpus(&buf, specs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCorpus(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(specs, back) {
		t.Fatal("corpus did not round-trip through JSON")
	}
}

func TestReadCorpusRejects(t *testing.T) {
	cases := []struct {
		name, body, want string
	}{
		{"empty array", `[]`, "empty corpus"},
		{"missing name", `[{"n": 10, "groups": 2, "seed": 1}]`, "no name"},
		{"zero n", `[{"name": "x", "n": 0, "groups": 2, "seed": 1}]`, "want ≥ 1"},
		{"groups exceed n", `[{"name": "x", "n": 3, "groups": 4, "seed": 1}]`, "want 1..n"},
		{"proportion count", `[{"name": "x", "n": 10, "groups": 2, "proportions": [1], "seed": 1}]`, "1 proportions for 2 groups"},
		{"negative proportion", `[{"name": "x", "n": 10, "groups": 2, "proportions": [0.5, -0.5], "seed": 1}]`, "want > 0"},
		{"unknown scores", `[{"name": "x", "n": 10, "groups": 2, "scores": "zipf", "seed": 1}]`, "unknown score distribution"},
		{"unknown ordering", `[{"name": "x", "n": 10, "groups": 2, "ordering": "sorted", "seed": 1}]`, "unknown ordering"},
		{"shadow one", `[{"name": "x", "n": 10, "groups": 2, "shadow_groups": 1, "seed": 1}]`, "want 0 or ≥ 2"},
		{"duplicate names", `[{"name": "x", "n": 10, "groups": 2, "seed": 1}, {"name": "x", "n": 10, "groups": 2, "seed": 2}]`, "duplicate spec name"},
		{"unknown field", `[{"name": "x", "n": 10, "groups": 2, "sed": 1}]`, "unknown field"},
	}
	for _, tc := range cases {
		_, err := ReadCorpus(strings.NewReader(tc.body))
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

func TestLoadCorpusBuiltinAndFile(t *testing.T) {
	builtin, err := LoadCorpus("smoke")
	if err != nil {
		t.Fatal(err)
	}
	if len(builtin) == 0 {
		t.Fatal("built-in smoke corpus empty")
	}
	dir := t.TempDir()
	path := dir + "/corpus.json"
	var buf bytes.Buffer
	if err := WriteCorpus(&buf, builtin); err != nil {
		t.Fatal(err)
	}
	if err := writeFile(path, buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	fromFile, err := LoadCorpus(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(builtin, fromFile) {
		t.Fatal("file corpus differs from the built-in it was written from")
	}
	if _, err := LoadCorpus("no-such-corpus"); err == nil {
		t.Fatal("unknown corpus accepted")
	}
}

// writeFile is a tiny os.WriteFile wrapper keeping the imports tidy.
func writeFile(path string, data []byte) error { return os.WriteFile(path, data, 0o644) }
