// Package scenario generates deterministic synthetic ranking workloads
// for the conformance suite (internal/conformance), the soak generator
// (cmd/fairrank-soak), and ad-hoc experimentation (cmd/datagen). A Spec
// fully determines its candidate pool: equal specs (seed included)
// generate byte-identical pools, so a conformance violation or a soak
// regression names a Spec and is reproducible from the report alone.
//
// The generator covers the axes the paper's evaluation varies and the
// failure modes ranking post-processors are known to have:
//
//   - group structure: 2..k groups, balanced or skewed proportions;
//   - score shape: uniform, gaussian, heavy-tail, and heavily tied
//     distributions (ties exercise unstable sort/selection paths);
//   - score↔group correlation: random assignment, or the adversarial
//     all-minority-at-bottom ordering where every minority candidate
//     scores below every majority candidate;
//   - scale: pools from tens of candidates up to n = 100000.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"sort"

	fairrank "repro"
)

// ScoreDist names a score distribution.
type ScoreDist string

// The available score distributions. All produce finite, non-negative
// scores (NDCG treats scores as gains, so negatives are out of scope).
const (
	// ScoresUniform draws scores uniformly from [0, 100).
	ScoresUniform ScoreDist = "uniform"
	// ScoresGaussian draws from N(50, 15²), clamped at 0.
	ScoresGaussian ScoreDist = "gaussian"
	// ScoresHeavyTail draws from a Pareto distribution (x_m = 1,
	// α = 1.2): a few candidates dominate the total gain, stressing the
	// NDCG criterion and quality/fairness trade-offs.
	ScoresHeavyTail ScoreDist = "heavy-tail"
	// ScoresTied draws from five discrete levels {0, 10, 20, 30, 40},
	// producing massive ties — the regime where unstable ordering bugs
	// and nondeterministic tie-breaking surface.
	ScoresTied ScoreDist = "tied"
)

// Ordering names the score↔group correlation of the generated pool.
type Ordering string

// The available orderings.
const (
	// OrderRandom assigns groups independently of scores.
	OrderRandom Ordering = "random"
	// OrderAdversarial sorts groups by size (largest first) and hands
	// the best scores to the largest group: every candidate of a
	// smaller group scores below every candidate of a larger one. This
	// is the all-minority-at-bottom worst case for proportional prefix
	// fairness — a score-sorted ranking violates every early prefix.
	OrderAdversarial Ordering = "adversarial"
)

// Spec is one synthetic workload. The JSON form is the corpus wire
// format shared by the CLIs (see ReadCorpus/WriteCorpus).
type Spec struct {
	// Name identifies the scenario in corpora, conformance reports, and
	// soak output. Required, unique within a corpus.
	Name string `json:"name"`
	// N is the candidate-pool size; must be ≥ 1.
	N int `json:"n"`
	// Groups is the number of distinct protected groups; must be ≥ 1
	// and ≤ N.
	Groups int `json:"groups"`
	// Proportions optionally skews the group sizes: Proportions[g] is
	// group g's share of the pool. When set it must have exactly Groups
	// positive entries; they are normalized, and every group is
	// guaranteed at least one candidate. Empty means equal shares.
	Proportions []float64 `json:"proportions,omitempty"`
	// Scores picks the score distribution; defaults to ScoresUniform.
	Scores ScoreDist `json:"scores,omitempty"`
	// Ordering picks the score↔group correlation; defaults to
	// OrderRandom.
	Ordering Ordering `json:"ordering,omitempty"`
	// ShadowGroups, when ≥ 2, attaches a hidden attribute
	// Attrs["shadow"] with that many uniformly random values — the
	// paper's "unknown protected attribute" axis, for PPfairByAttr
	// evaluation. 0 attaches nothing.
	ShadowGroups int `json:"shadow_groups,omitempty"`
	// Seed seeds the generator; equal specs generate identical pools.
	Seed int64 `json:"seed"`
}

// Validate rejects specs Generate cannot honor.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: spec has no name")
	}
	if s.N < 1 {
		return fmt.Errorf("scenario %q: n = %d, want ≥ 1", s.Name, s.N)
	}
	if s.Groups < 1 || s.Groups > s.N {
		return fmt.Errorf("scenario %q: groups = %d, want 1..n (n = %d)", s.Name, s.Groups, s.N)
	}
	if len(s.Proportions) != 0 {
		if len(s.Proportions) != s.Groups {
			return fmt.Errorf("scenario %q: %d proportions for %d groups", s.Name, len(s.Proportions), s.Groups)
		}
		for g, p := range s.Proportions {
			if !(p > 0) {
				return fmt.Errorf("scenario %q: proportion[%d] = %v, want > 0", s.Name, g, p)
			}
		}
	}
	switch s.Scores {
	case "", ScoresUniform, ScoresGaussian, ScoresHeavyTail, ScoresTied:
	default:
		return fmt.Errorf("scenario %q: unknown score distribution %q", s.Name, s.Scores)
	}
	switch s.Ordering {
	case "", OrderRandom, OrderAdversarial:
	default:
		return fmt.Errorf("scenario %q: unknown ordering %q", s.Name, s.Ordering)
	}
	if s.ShadowGroups == 1 || s.ShadowGroups < 0 {
		return fmt.Errorf("scenario %q: shadow_groups = %d, want 0 or ≥ 2", s.Name, s.ShadowGroups)
	}
	return nil
}

// Generate materializes the candidate pool. The pool depends only on
// the spec: equal specs yield identical pools, across processes and
// runs. Generation is O(n log n), so n = 100000 pools are cheap enough
// to build per soak run rather than shipping fixtures.
func (s Spec) Generate() ([]fairrank.Candidate, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(s.Seed))
	scores := make([]float64, s.N)
	for i := range scores {
		scores[i] = drawScore(s.Scores, rng)
	}
	sizes := groupSizes(s.N, s.Groups, s.Proportions)
	labels := make([]int, 0, s.N)
	for g, size := range sizes {
		for j := 0; j < size; j++ {
			labels = append(labels, g)
		}
	}
	switch s.Ordering {
	case OrderAdversarial:
		// Hand the best scores to the largest groups: sort the scores
		// descending and lay the group blocks over them largest first,
		// so every smaller group sits strictly below every larger one.
		sort.Sort(sort.Reverse(sort.Float64Slice(scores)))
		order := make([]int, s.Groups)
		for g := range order {
			order[g] = g
		}
		sort.SliceStable(order, func(a, b int) bool { return sizes[order[a]] > sizes[order[b]] })
		labels = labels[:0]
		for _, g := range order {
			for j := 0; j < sizes[g]; j++ {
				labels = append(labels, g)
			}
		}
	default: // OrderRandom
		rng.Shuffle(len(labels), func(i, j int) { labels[i], labels[j] = labels[j], labels[i] })
	}
	out := make([]fairrank.Candidate, s.N)
	for i := range out {
		out[i] = fairrank.Candidate{
			ID:    fmt.Sprintf("c%06d", i),
			Score: scores[i],
			Group: groupName(labels[i]),
		}
		if s.ShadowGroups >= 2 {
			out[i].Attrs = map[string]string{"shadow": fmt.Sprintf("s%02d", rng.Intn(s.ShadowGroups))}
		}
	}
	return out, nil
}

// drawScore draws one score from the named distribution.
func drawScore(dist ScoreDist, rng *rand.Rand) float64 {
	switch dist {
	case ScoresGaussian:
		v := 50 + 15*rng.NormFloat64()
		if v < 0 {
			v = 0
		}
		return v
	case ScoresHeavyTail:
		// Pareto(x_m = 1, α = 1.2) via inverse transform. 1−U keeps the
		// draw away from the U = 0 pole.
		u := 1 - rng.Float64()
		return math.Pow(u, -1/1.2)
	case ScoresTied:
		return float64(rng.Intn(5)) * 10
	default: // ScoresUniform
		return rng.Float64() * 100
	}
}

// groupSizes splits n candidates over the groups by largest remainder,
// guaranteeing every group at least one candidate.
func groupSizes(n, groups int, proportions []float64) []int {
	shares := make([]float64, groups)
	if len(proportions) == 0 {
		for g := range shares {
			shares[g] = 1 / float64(groups)
		}
	} else {
		var total float64
		for _, p := range proportions {
			total += p
		}
		for g, p := range proportions {
			shares[g] = p / total
		}
	}
	sizes := make([]int, groups)
	type rem struct {
		g    int
		frac float64
	}
	rems := make([]rem, groups)
	assigned := 0
	for g, sh := range shares {
		exact := sh * float64(n)
		sizes[g] = int(exact)
		rems[g] = rem{g: g, frac: exact - float64(sizes[g])}
		assigned += sizes[g]
	}
	sort.SliceStable(rems, func(a, b int) bool { return rems[a].frac > rems[b].frac })
	for i := 0; assigned < n; i++ {
		sizes[rems[i%groups].g]++
		assigned++
	}
	// Every group must be represented, or the pool silently has fewer
	// groups than the spec promises; steal from the largest.
	for g := range sizes {
		for sizes[g] == 0 {
			big := 0
			for h := range sizes {
				if sizes[h] > sizes[big] {
					big = h
				}
			}
			sizes[big]--
			sizes[g]++
		}
	}
	return sizes
}

// groupName renders group id g; zero-padded so lexical group-name order
// (what fairrank sorts by) matches numeric order.
func groupName(g int) string { return fmt.Sprintf("g%02d", g) }

// ReadCorpus parses a JSON corpus: an array of Specs. Names must be
// present and unique, and every spec must validate.
func ReadCorpus(r io.Reader) ([]Spec, error) {
	var specs []Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&specs); err != nil {
		return nil, fmt.Errorf("scenario: parsing corpus: %w", err)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("scenario: empty corpus")
	}
	seen := make(map[string]bool, len(specs))
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			return nil, err
		}
		if seen[s.Name] {
			return nil, fmt.Errorf("scenario: duplicate spec name %q", s.Name)
		}
		seen[s.Name] = true
	}
	return specs, nil
}

// WriteCorpus renders specs as the JSON corpus format ReadCorpus parses.
func WriteCorpus(w io.Writer, specs []Spec) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(specs); err != nil {
		return fmt.Errorf("scenario: writing corpus: %w", err)
	}
	return nil
}

// LoadCorpus resolves nameOrPath as a built-in corpus name first and a
// JSON corpus file second — the shared corpus loader of cmd/fairrank-soak
// and cmd/datagen, so both CLIs accept the same -corpus values.
func LoadCorpus(nameOrPath string) ([]Spec, error) {
	if specs, err := Corpus(nameOrPath); err == nil {
		return specs, nil
	}
	f, err := os.Open(nameOrPath)
	if err != nil {
		return nil, fmt.Errorf("scenario: %q is neither a built-in corpus (%v) nor a readable corpus file: %w", nameOrPath, CorpusNames(), err)
	}
	defer f.Close()
	return ReadCorpus(f)
}
