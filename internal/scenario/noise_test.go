package scenario

import (
	"math"
	"testing"
)

func TestNoiseSpecValidate(t *testing.T) {
	good := []NoiseSpec{{}, {Flip: 0.5}, {Missing: 1}, {Flip: 1, Missing: 1}}
	for _, n := range good {
		if err := n.Validate(); err != nil {
			t.Errorf("%+v rejected: %v", n, err)
		}
	}
	bad := []NoiseSpec{
		{Flip: -0.1}, {Flip: 1.1}, {Flip: math.NaN()},
		{Missing: -0.1}, {Missing: 1.1}, {Missing: math.NaN()},
	}
	for _, n := range bad {
		if err := n.Validate(); err == nil {
			t.Errorf("%+v accepted", n)
		}
	}
}

func TestNoiseZeroIsIdentityWithOneHotPosterior(t *testing.T) {
	spec := Spec{Name: "z", N: 40, Groups: 3, Seed: 7}
	pool, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	out, err := NoiseSpec{Seed: 9}.Apply(pool)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range out {
		if c.Group != pool[i].Group || c.ID != pool[i].ID || c.Score != pool[i].Score {
			t.Fatalf("zero noise changed candidate %d: %+v vs %+v", i, c, pool[i])
		}
		// The posterior must be exactly one-hot: mass 1.0 at the true
		// group, 0.0 elsewhere — not approximately.
		for name, p := range c.Membership {
			want := 0.0
			if name == pool[i].Group {
				want = 1.0
			}
			if p != want {
				t.Fatalf("zero-noise posterior[%q] = %v, want %v", name, p, want)
			}
		}
		if err := observedMembershipSanity(c.Membership); err != nil {
			t.Fatal(err)
		}
	}
	// The input pool must not have been mutated.
	for i, c := range pool {
		if c.Membership != nil {
			t.Fatalf("Apply mutated input candidate %d: %+v", i, c)
		}
	}
}

func TestNoiseIsReplayable(t *testing.T) {
	spec := Spec{Name: "r", N: 60, Groups: 4, Seed: 11}
	pool, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	n := NoiseSpec{Flip: 0.3, Missing: 0.2, Seed: 13}
	a, err := n.Apply(pool)
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Apply(pool)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Group != b[i].Group {
			t.Fatalf("replay diverged at candidate %d: %q vs %q", i, a[i].Group, b[i].Group)
		}
		for name, p := range a[i].Membership {
			if b[i].Membership[name] != p {
				t.Fatalf("replay posterior diverged at candidate %d group %q", i, name)
			}
		}
	}
	other, err := NoiseSpec{Flip: 0.3, Missing: 0.2, Seed: 14}.Apply(pool)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i].Group != other[i].Group {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds corrupted identically")
	}
}

func TestNoiseFlipRateEmpirical(t *testing.T) {
	spec := Spec{Name: "f", N: 5000, Groups: 2, Seed: 17}
	pool, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	out, err := NoiseSpec{Flip: 0.25, Seed: 19}.Apply(pool)
	if err != nil {
		t.Fatal(err)
	}
	flipped := 0
	for i := range out {
		if out[i].Group != pool[i].Group {
			flipped++
		}
	}
	rate := float64(flipped) / float64(len(out))
	if math.Abs(rate-0.25) > 0.03 {
		t.Fatalf("empirical flip rate %v far from 0.25", rate)
	}
	for i := range out {
		if err := observedMembershipSanity(out[i].Membership); err != nil {
			t.Fatalf("candidate %d: %v", i, err)
		}
	}
}

func TestNoiseMissingPosteriorIsPrior(t *testing.T) {
	// Missing = 1: every label is imputed and every posterior must equal
	// the pool marginal exactly.
	spec := Spec{Name: "m", N: 200, Groups: 3, Proportions: []float64{0.5, 0.3, 0.2}, Seed: 23}
	pool, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	universe, prior, err := poolMarginal(pool)
	if err != nil {
		t.Fatal(err)
	}
	out, err := NoiseSpec{Missing: 1, Seed: 29}.Apply(pool)
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		for g, name := range universe {
			if out[i].Membership[name] != prior[g] {
				t.Fatalf("candidate %d posterior[%q] = %v, want prior %v", i, name, out[i].Membership[name], prior[g])
			}
		}
	}
}

func TestNoiseErrors(t *testing.T) {
	if _, err := (NoiseSpec{Flip: 2}).Apply(nil); err == nil {
		t.Error("accepted out-of-range flip")
	}
	if _, err := (NoiseSpec{}).Apply(nil); err == nil {
		t.Error("accepted empty pool")
	}
	oneGroup := Spec{Name: "o", N: 10, Groups: 1, Seed: 31}
	pool, err := oneGroup.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (NoiseSpec{Flip: 0.5}).Apply(pool); err == nil {
		t.Error("accepted flip noise over a single group")
	}
	if _, err := (NoiseSpec{Missing: 0.5}).Apply(pool); err != nil {
		t.Errorf("missingness over a single group should work: %v", err)
	}
}

func TestNoiseLevelsGrid(t *testing.T) {
	levels := NoiseLevels(42)
	if len(levels) < 3 {
		t.Fatalf("%d levels, want ≥ 3 for a degradation curve", len(levels))
	}
	if !levels[0].IsZero() {
		t.Fatalf("first level %+v is not the noiseless anchor", levels[0])
	}
	for i, l := range levels {
		if err := l.Validate(); err != nil {
			t.Fatalf("level %d: %v", i, err)
		}
		if i > 0 && l.IsZero() {
			t.Fatalf("level %d is a duplicate noiseless anchor", i)
		}
		if l.Seed != 42 {
			t.Fatalf("level %d seed %d, want 42", i, l.Seed)
		}
	}
}
