package scenario

import (
	"fmt"
	"sort"
)

// The built-in corpora. Each is a named, versioned-in-code suite of
// specs; Corpus returns fresh copies so callers can mutate freely.
//
//   - "conformance": moderate pools crossing every generator axis — the
//     statistical suite samples hundreds of rankings per spec, so the
//     pools stay small enough to keep the suite fast.
//   - "sweep": a group-count sweep at fixed n, isolating the group axis.
//   - "smoke": two small specs for CI soak smoke runs.
//   - "soak": the load-generator corpus, from hundreds of candidates up
//     to n = 100000.
//   - "topk": pools sized so a top-k prefix is a tiny slice of the
//     ranking — the workload where the engine's truncated draw path
//     carries the request; fairrank-soak's topk-weighted runs use it to
//     exercise and reconcile the draw-path counters.
//   - "noise": small pools for the attribute-noise degradation sweep
//     (conformance RunNoiseSweep and fairrank-soak -noise-sweep) —
//     each spec is corrupted at several NoiseSpec levels per run, so
//     the pools stay small.
var builtinCorpora = map[string][]Spec{
	"conformance": {
		{Name: "g2-balanced-uniform", N: 40, Groups: 2, Scores: ScoresUniform, Ordering: OrderRandom, Seed: 101},
		{Name: "g2-skewed-gaussian-adversarial", N: 40, Groups: 2, Proportions: []float64{0.8, 0.2}, Scores: ScoresGaussian, Ordering: OrderAdversarial, Seed: 102},
		{Name: "g2-minority-bottom-tied", N: 24, Groups: 2, Proportions: []float64{0.75, 0.25}, Scores: ScoresTied, Ordering: OrderAdversarial, Seed: 103},
		{Name: "g3-balanced-heavytail", N: 48, Groups: 3, Scores: ScoresHeavyTail, Ordering: OrderRandom, Seed: 104},
		{Name: "g4-skewed-tied-adversarial", N: 48, Groups: 4, Proportions: []float64{0.55, 0.25, 0.12, 0.08}, Scores: ScoresTied, Ordering: OrderAdversarial, Seed: 105},
		{Name: "g5-balanced-gaussian-shadow", N: 60, Groups: 5, Scores: ScoresGaussian, Ordering: OrderRandom, ShadowGroups: 2, Seed: 106},
	},
	"sweep": {
		{Name: "sweep-g2", N: 64, Groups: 2, Seed: 201},
		{Name: "sweep-g3", N: 64, Groups: 3, Seed: 202},
		{Name: "sweep-g4", N: 64, Groups: 4, Seed: 203},
		{Name: "sweep-g5", N: 64, Groups: 5, Seed: 204},
		{Name: "sweep-g6", N: 64, Groups: 6, Seed: 205},
		{Name: "sweep-g8", N: 64, Groups: 8, Seed: 206},
	},
	"smoke": {
		{Name: "smoke-small", N: 50, Groups: 2, Proportions: []float64{0.7, 0.3}, Scores: ScoresUniform, Ordering: OrderRandom, Seed: 301},
		{Name: "smoke-adversarial", N: 200, Groups: 3, Scores: ScoresGaussian, Ordering: OrderAdversarial, Seed: 302},
	},
	"soak": {
		{Name: "soak-100-uniform", N: 100, Groups: 2, Scores: ScoresUniform, Ordering: OrderRandom, Seed: 401},
		{Name: "soak-1k-gaussian", N: 1000, Groups: 3, Proportions: []float64{0.6, 0.3, 0.1}, Scores: ScoresGaussian, Ordering: OrderRandom, Seed: 402},
		{Name: "soak-1k-adversarial", N: 1000, Groups: 2, Proportions: []float64{0.85, 0.15}, Scores: ScoresHeavyTail, Ordering: OrderAdversarial, Seed: 403},
		{Name: "soak-10k-tied", N: 10000, Groups: 4, Scores: ScoresTied, Ordering: OrderRandom, Seed: 404},
		{Name: "soak-100k-uniform", N: 100000, Groups: 5, Scores: ScoresUniform, Ordering: OrderRandom, Seed: 405},
	},
	"noise": {
		{Name: "noise-g2-balanced", N: 40, Groups: 2, Scores: ScoresUniform, Ordering: OrderRandom, Seed: 601},
		{Name: "noise-g2-skewed-adversarial", N: 40, Groups: 2, Proportions: []float64{0.75, 0.25}, Scores: ScoresGaussian, Ordering: OrderAdversarial, Seed: 602},
		{Name: "noise-g3-heavytail", N: 48, Groups: 3, Scores: ScoresHeavyTail, Ordering: OrderRandom, Seed: 603},
	},
	"topk": {
		{Name: "topk-1k-gaussian", N: 1000, Groups: 3, Proportions: []float64{0.6, 0.3, 0.1}, Scores: ScoresGaussian, Ordering: OrderRandom, Seed: 501},
		{Name: "topk-5k-adversarial", N: 5000, Groups: 2, Proportions: []float64{0.8, 0.2}, Scores: ScoresHeavyTail, Ordering: OrderAdversarial, Seed: 502},
		{Name: "topk-20k-uniform", N: 20000, Groups: 4, Scores: ScoresUniform, Ordering: OrderRandom, Seed: 503},
	},
}

// Corpus returns a copy of the named built-in corpus.
func Corpus(name string) ([]Spec, error) {
	specs, ok := builtinCorpora[name]
	if !ok {
		return nil, fmt.Errorf("scenario: unknown corpus %q, have %v", name, CorpusNames())
	}
	out := make([]Spec, len(specs))
	for i, s := range specs {
		s.Proportions = append([]float64(nil), s.Proportions...)
		out[i] = s
	}
	return out, nil
}

// CorpusNames lists the built-in corpora, sorted.
func CorpusNames() []string {
	names := make([]string, 0, len(builtinCorpora))
	for name := range builtinCorpora {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Find returns the named spec from a corpus.
func Find(specs []Spec, name string) (Spec, error) {
	for _, s := range specs {
		if s.Name == name {
			return s, nil
		}
	}
	var names []string
	for _, s := range specs {
		names = append(names, s.Name)
	}
	return Spec{}, fmt.Errorf("scenario: no spec %q in corpus, have %v", name, names)
}
