package scenario

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	fairrank "repro"
)

// Attribute noise: the paper's central premise is that the protected
// attribute the ranker sees is not the truth — it is inferred, reported
// with error, or withheld. NoiseSpec models the standard measurement
// channel for a categorical attribute: a symmetric flip (the observed
// label is wrong with rate Flip, uniformly among the other groups) and
// missingness (the label is absent with rate Missing and must be
// imputed). Apply corrupts a generated pool through that channel and
// attaches the exact Bayesian posterior over true groups as each
// candidate's Membership, so the probabilistic fairness metrics can be
// evaluated against what is actually knowable after corruption.

// NoiseSpec parameterizes one attribute-noise channel. The zero value
// is the noiseless channel.
type NoiseSpec struct {
	// Flip is the symmetric label-flip rate: with probability Flip the
	// observed group is drawn uniformly from the other groups. Must lie
	// in [0, 1].
	Flip float64 `json:"flip"`
	// Missing is the missingness rate: with probability Missing the
	// label is dropped and the observed group is imputed from the pool
	// marginal. Must lie in [0, 1].
	Missing float64 `json:"missing"`
	// Seed seeds the channel; equal specs applied to equal pools
	// corrupt identically.
	Seed int64 `json:"seed"`
}

// Validate rejects channels Apply cannot honor.
func (n NoiseSpec) Validate() error {
	if !(n.Flip >= 0 && n.Flip <= 1) {
		return fmt.Errorf("scenario: noise flip rate = %v, want in [0,1]", n.Flip)
	}
	if !(n.Missing >= 0 && n.Missing <= 1) {
		return fmt.Errorf("scenario: noise missing rate = %v, want in [0,1]", n.Missing)
	}
	return nil
}

// IsZero reports whether the channel is noiseless.
func (n NoiseSpec) IsZero() bool { return n.Flip == 0 && n.Missing == 0 }

// Apply passes pool through the noise channel and returns the corrupted
// copy; pool itself is never mutated. Each returned candidate carries
// the possibly-corrupted hard Group plus a Membership distribution: the
// posterior P(true group | observation) under the channel, with the
// pool's empirical group marginal as the prior. A missing label's
// posterior is exactly the prior (the observation carries no group
// information); its hard Group is imputed from the marginal so
// downstream hard-label algorithms still run.
//
// The channel is replayable: the RNG consumption per candidate is fixed
// (three draws) regardless of outcome, so corruption of candidate i
// does not depend on the fate of candidates 0..i−1 beyond the seed.
//
// A noiseless channel returns candidates with Group unchanged and a
// Membership that is exactly one-hot at the true group (mass 1.0, the
// result of x/x division), so rankings and hard-label metrics computed
// from the output are bit-identical to the uncorrupted pool's.
func (n NoiseSpec) Apply(pool []fairrank.Candidate) ([]fairrank.Candidate, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	universe, prior, err := poolMarginal(pool)
	if err != nil {
		return nil, err
	}
	g := len(universe)
	if g < 2 && n.Flip > 0 {
		return nil, fmt.Errorf("scenario: flip noise needs ≥ 2 groups, pool has %d", g)
	}
	index := make(map[string]int, g)
	for i, name := range universe {
		index[name] = i
	}
	rng := rand.New(rand.NewSource(n.Seed))
	out := make([]fairrank.Candidate, len(pool))
	for i, c := range pool {
		truth := index[c.Group]
		// Fixed three-draw budget per candidate: missing?, flip?, and a
		// selector reused for either the imputation or the flip target.
		uMissing := rng.Float64()
		uFlip := rng.Float64()
		uPick := rng.Float64()

		obs := truth
		missing := uMissing < n.Missing
		switch {
		case missing:
			obs = drawMarginal(prior, uPick)
		case uFlip < n.Flip:
			// Uniform over the g−1 other groups.
			obs = int(uPick * float64(g-1))
			if obs >= g-1 { // uPick == 1−ε rounding guard
				obs = g - 2
			}
			if obs >= truth {
				obs++
			}
		}

		membership := make(map[string]float64, g)
		if missing {
			// The observation is uninformative: posterior = prior.
			for j, name := range universe {
				membership[name] = prior[j]
			}
		} else {
			// posterior(t) ∝ prior(t) · P(obs | true = t) with the
			// symmetric channel P(o|t) = (1−ρ)·1{o=t} + ρ/(g−1)·1{o≠t}.
			// The constant (1−μ) observation factor cancels.
			post := make([]float64, g)
			var z float64
			for t := 0; t < g; t++ {
				like := n.Flip / float64(g-1)
				if g == 1 {
					like = 0
				}
				if t == obs {
					like = 1 - n.Flip
				}
				post[t] = prior[t] * like
				z += post[t]
			}
			if !(z > 0) {
				return nil, fmt.Errorf("scenario: noise posterior for candidate %q has zero mass", c.ID)
			}
			for t := 0; t < g; t++ {
				membership[universe[t]] = post[t] / z
			}
		}

		c.Group = universe[obs]
		c.Membership = membership
		out[i] = c
	}
	return out, nil
}

// poolMarginal returns the sorted group universe of the pool and the
// empirical marginal over it.
func poolMarginal(pool []fairrank.Candidate) ([]string, []float64, error) {
	if len(pool) == 0 {
		return nil, nil, fmt.Errorf("scenario: noise channel applied to empty pool")
	}
	counts := make(map[string]int)
	for _, c := range pool {
		if c.Group == "" {
			return nil, nil, fmt.Errorf("scenario: candidate %q has no group, cannot corrupt", c.ID)
		}
		counts[c.Group]++
	}
	universe := make([]string, 0, len(counts))
	for name := range counts {
		universe = append(universe, name)
	}
	sort.Strings(universe)
	prior := make([]float64, len(universe))
	for i, name := range universe {
		prior[i] = float64(counts[name]) / float64(len(pool))
	}
	return universe, prior, nil
}

// drawMarginal inverts the marginal CDF at u ∈ [0,1).
func drawMarginal(prior []float64, u float64) int {
	var cum float64
	for g, p := range prior {
		cum += p
		if u < cum {
			return g
		}
	}
	return len(prior) - 1
}

// NoiseLevels is the default degradation-sweep grid: the noiseless
// anchor plus two corrupted levels. Conformance and the soak CLI use it
// when the caller does not pick levels explicitly.
func NoiseLevels(seed int64) []NoiseSpec {
	return []NoiseSpec{
		{Flip: 0, Missing: 0, Seed: seed},
		{Flip: 0.1, Missing: 0.05, Seed: seed},
		{Flip: 0.25, Missing: 0.15, Seed: seed},
	}
}

// observedMembershipSanity double-checks a posterior row sums to 1
// within the tolerance fairrank enforces; used by tests.
func observedMembershipSanity(m map[string]float64) error {
	var sum float64
	for name, p := range m {
		if math.IsNaN(p) || p < 0 || p > 1 {
			return fmt.Errorf("scenario: membership[%q] = %v", name, p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("scenario: membership sums to %v", sum)
	}
	return nil
}
