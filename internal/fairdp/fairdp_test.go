package fairdp_test

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/fairdp"
	"repro/internal/fairness"
	"repro/internal/ilp"
	"repro/internal/perm"
	"repro/internal/quality"
)

// bruteOptimal enumerates all permutations, keeps those whose every
// prefix satisfies the bounds, and returns the best DCG (−Inf if none).
func bruteOptimal(t *testing.T, scores []float64, gr *fairness.Groups, b *fairness.Bounds) float64 {
	t.Helper()
	best := math.Inf(-1)
	perm.All(len(scores), func(p perm.Perm) bool {
		v, err := fairness.EvaluateViolations(p, gr, b)
		if err != nil {
			t.Fatal(err)
		}
		if v.UnionCount() > 0 {
			return true
		}
		dcg, err := quality.DCG(p, quality.Scores(scores), len(p))
		if err != nil {
			t.Fatal(err)
		}
		if dcg > best {
			best = dcg
		}
		return true
	})
	return best
}

func randomInstance(rng *rand.Rand, d int) ([]float64, *fairness.Groups, *fairness.Bounds) {
	g := 2 + rng.Intn(2)
	assign := make([]int, d)
	for i := range assign {
		assign[i] = rng.Intn(g)
	}
	gr := fairness.MustGroups(assign, g)
	scores := make([]float64, d)
	for i := range scores {
		scores[i] = math.Round(rng.Float64()*100) / 10
	}
	tol := rng.Float64() * 0.4
	c, err := fairness.Proportional(gr, tol)
	if err != nil {
		panic(err)
	}
	b := c.Table(d)
	// Proportional tables are always satisfiable; perturb some of them
	// the way the noisy-constraint experiments do, which can create
	// infeasible instances the DP must detect.
	if rng.Float64() < 0.4 {
		for i := range b.Lower {
			for g := range b.Lower[i] {
				b.Lower[i][g] += rng.Intn(3) - 1
				b.Upper[i][g] += rng.Intn(3) - 1
			}
		}
		b.Clamp()
	}
	return scores, gr, b
}

func TestSolveMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	feasible, infeasible := 0, 0
	for trial := 0; trial < 120; trial++ {
		d := 2 + rng.Intn(5) // 2..6
		scores, gr, b := randomInstance(rng, d)
		want := bruteOptimal(t, scores, gr, b)

		got, val, err := fairdp.Solve(scores, gr, b, nil)
		if math.IsInf(want, -1) {
			if !errors.Is(err, fairdp.ErrInfeasible) {
				t.Fatalf("brute says infeasible, DP returned %v (err=%v)", got, err)
			}
			infeasible++
			continue
		}
		if err != nil {
			t.Fatalf("brute optimum %v but DP errored: %v", want, err)
		}
		feasible++
		if math.Abs(val-want) > 1e-9 {
			t.Fatalf("DP value %v, brute %v (d=%d)", val, want, d)
		}
		// The ranking must be valid, feasible, and worth its claimed DCG.
		if err := got.Validate(); err != nil {
			t.Fatal(err)
		}
		viol, err := fairness.EvaluateViolations(got, gr, b)
		if err != nil {
			t.Fatal(err)
		}
		if viol.UnionCount() > 0 {
			t.Fatalf("DP ranking violates bounds: %v", got)
		}
		dcg, err := quality.DCG(got, quality.Scores(scores), d)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(dcg-val) > 1e-9 {
			t.Fatalf("claimed value %v, actual DCG %v", val, dcg)
		}
	}
	if feasible == 0 || infeasible == 0 {
		t.Fatalf("want both outcomes exercised, got %d feasible / %d infeasible", feasible, infeasible)
	}
}

// buildILP constructs the paper's §IV-B integer program for the same
// instance: variables x_{ij} (item i at position j).
func buildILP(scores []float64, gr *fairness.Groups, b *fairness.Bounds) ilp.Problem {
	d := len(scores)
	obj := make([]float64, d*d)
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			obj[i*d+j] = scores[i] * quality.LogDiscount(j+1)
		}
	}
	var cons []ilp.Constraint
	for j := 0; j < d; j++ { // each position exactly one item
		c := make([]float64, d*d)
		for i := 0; i < d; i++ {
			c[i*d+j] = 1
		}
		cons = append(cons, ilp.Constraint{Coeffs: c, Rel: ilp.EQ, RHS: 1})
	}
	for i := 0; i < d; i++ { // each item at most once
		c := make([]float64, d*d)
		for j := 0; j < d; j++ {
			c[i*d+j] = 1
		}
		cons = append(cons, ilp.Constraint{Coeffs: c, Rel: ilp.LE, RHS: 1})
	}
	for ell := 1; ell <= d; ell++ {
		for p := 0; p < gr.NumGroups(); p++ {
			c := make([]float64, d*d)
			for i := 0; i < d; i++ {
				if gr.Of(i) != p {
					continue
				}
				for j := 0; j < ell; j++ {
					c[i*d+j] = 1
				}
			}
			cons = append(cons,
				ilp.Constraint{Coeffs: c, Rel: ilp.GE, RHS: float64(b.Lower[ell-1][p])},
				ilp.Constraint{Coeffs: append([]float64(nil), c...), Rel: ilp.LE, RHS: float64(b.Upper[ell-1][p])},
			)
		}
	}
	return ilp.Problem{Objective: obj, Constraints: cons, Integer: ilp.AllInteger(d * d)}
}

func TestSolveMatchesILP(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	checked := 0
	for trial := 0; trial < 12; trial++ {
		d := 3 + rng.Intn(3) // 3..5
		scores, gr, b := randomInstance(rng, d)
		_, dpVal, dpErr := fairdp.Solve(scores, gr, b, nil)

		sol, err := ilp.Solve(buildILP(scores, gr, b), ilp.Options{MaxNodes: 200000})
		if err != nil {
			t.Fatal(err)
		}
		if errors.Is(dpErr, fairdp.ErrInfeasible) {
			if sol.Status == ilp.Optimal {
				t.Fatalf("DP infeasible but ILP found %v", sol.Objective)
			}
			continue
		}
		if dpErr != nil {
			t.Fatal(dpErr)
		}
		if sol.Status != ilp.Optimal {
			t.Fatalf("DP value %v but ILP status %v", dpVal, sol.Status)
		}
		if math.Abs(sol.Objective-dpVal) > 1e-6 {
			t.Fatalf("ILP %v vs DP %v (d=%d)", sol.Objective, dpVal, d)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no feasible instances compared")
	}
}

func TestSolveValidation(t *testing.T) {
	gr := fairness.MustGroups([]int{0, 1}, 2)
	c, _ := fairness.NewConstraints([]float64{0, 0}, []float64{1, 1})
	if _, _, err := fairdp.Solve([]float64{1}, gr, c.Table(1), nil); err == nil {
		t.Error("accepted scores/groups mismatch")
	}
	if _, _, err := fairdp.Solve([]float64{1, 2}, gr, c.Table(1), nil); err == nil {
		t.Error("accepted short bounds table")
	}
	grBig := fairness.MustGroups([]int{0, 1}, 2)
	cNarrow, _ := fairness.NewConstraints([]float64{0}, []float64{1})
	if _, _, err := fairdp.Solve([]float64{1, 2}, grBig, cNarrow.Table(2), nil); err == nil {
		t.Error("accepted group-count mismatch")
	}
}

func TestSolveEmptyInstance(t *testing.T) {
	gr := fairness.MustGroups(nil, 1)
	c, _ := fairness.NewConstraints([]float64{0}, []float64{1})
	p, v, err := fairdp.Solve(nil, gr, c.Table(0), nil)
	if err != nil || len(p) != 0 || v != 0 {
		t.Fatalf("empty solve = %v, %v, %v", p, v, err)
	}
}

func TestSolveUnconstrainedGivesIdealOrder(t *testing.T) {
	scores := []float64{1, 9, 5, 7}
	gr := fairness.MustGroups([]int{0, 0, 1, 1}, 2)
	c, _ := fairness.NewConstraints([]float64{0, 0}, []float64{1, 1})
	p, _, err := fairdp.Solve(scores, gr, c.Table(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	want := perm.MustNew(1, 3, 2, 0)
	if !p.Equal(want) {
		t.Fatalf("unconstrained optimum = %v, want %v", p, want)
	}
}

func TestSolveStrictAlternation(t *testing.T) {
	// α=β=0.5 with two groups forces near-alternation; group A has all
	// the high scores so A leads each pair of positions.
	scores := []float64{10, 9, 8, 1, 0.5, 0.2}
	gr := fairness.MustGroups([]int{0, 0, 0, 1, 1, 1}, 2)
	c, _ := fairness.NewConstraints([]float64{0.5, 0.5}, []float64{0.5, 0.5})
	p, _, err := fairdp.Solve(scores, gr, c.Table(6), nil)
	if err != nil {
		t.Fatal(err)
	}
	want := perm.MustNew(0, 3, 1, 4, 2, 5)
	if !p.Equal(want) {
		t.Fatalf("alternating optimum = %v, want %v", p, want)
	}
}

func TestSolveInfeasibleBounds(t *testing.T) {
	scores := []float64{1, 2}
	gr := fairness.MustGroups([]int{0, 1}, 2)
	c, _ := fairness.NewConstraints([]float64{0.9, 0.9}, []float64{1, 1})
	// Prefix 1 needs ⌊0.9⌋=0 of each, prefix 2 needs ⌊1.8⌋=1 of each: ok.
	// Make it infeasible with a perturbed table instead.
	b := c.Table(2)
	b.Lower[0][0] = 1
	b.Lower[0][1] = 1 // prefix of length 1 cannot hold one of each
	_, _, err := fairdp.Solve(scores, gr, b, nil)
	if !errors.Is(err, fairdp.ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestSolveCustomDiscount(t *testing.T) {
	// With a unit discount every feasible pattern has the same value:
	// the total score.
	scores := []float64{4, 3, 2, 1}
	gr := fairness.MustGroups([]int{0, 1, 0, 1}, 2)
	cns, _ := fairness.NewConstraints([]float64{0.4, 0.4}, []float64{0.6, 0.6})
	_, v, err := fairdp.Solve(scores, gr, cns.Table(4), quality.UnitDiscount)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-10) > 1e-12 {
		t.Fatalf("unit-discount value = %v, want 10", v)
	}
}
