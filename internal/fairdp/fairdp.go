// Package fairdp computes the DCG-optimal (α,β)-fair ranking exactly by
// dynamic programming over per-group count vectors.
//
// It solves the same optimization as the paper's §IV-B ILP:
//
//	max  Σ_{i,j} s(i)·c(j)·x_{ij}
//	s.t. every position holds one item, every item at most one position,
//	     ⌊α_p·ℓ⌋ ≤ Σ_{i∈G_p} Σ_{j≤ℓ} x_{ij} ≤ ⌈β_p·ℓ⌉  for all ℓ, p
//
// but in O(k·g·∏(n_g+1)) time instead of exponential branch and bound.
//
// # Why the DP is exact
//
// The objective only sees an item through its score and its position
// discount, and the constraints only see it through its group. Fix the
// "group pattern" of a ranking (which group occupies each position):
// feasibility is a function of the pattern alone, and by the
// rearrangement inequality (discounts are non-increasing in position)
// the best completion of a pattern places each group's items in
// non-increasing score order across that group's positions. The DP
// therefore searches all feasible group patterns — states are vectors of
// per-group counts placed so far, with the prefix length implied by the
// vector's sum — and completes them greedily within groups, which loses
// nothing.
package fairdp

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/fairness"
	"repro/internal/perm"
	"repro/internal/quality"
)

// MaxStates bounds the DP state space ∏(n_g+1); beyond this the instance
// is refused rather than exhausting memory.
const MaxStates = 32 << 20

// Solve returns the DCG-maximal ranking of all items whose every prefix
// satisfies the bound table, together with its DCG value. The table must
// cover exactly len(scores) prefixes. A nil discount means the standard
// 1/log₂(1+rank).
//
// The error distinguishes invalid input from infeasibility: infeasible
// instances return ErrInfeasible (possibly wrapped).
func Solve(scores []float64, gr *fairness.Groups, b *fairness.Bounds, disc quality.Discount) (perm.Perm, float64, error) {
	d := len(scores)
	if gr.NumItems() != d {
		return nil, 0, fmt.Errorf("fairdp: %d scores vs %d items", d, gr.NumItems())
	}
	if b.K() != d {
		return nil, 0, fmt.Errorf("fairdp: bounds cover %d prefixes, want %d", b.K(), d)
	}
	g := gr.NumGroups()
	if d > 0 && b.NumGroups() != g {
		return nil, 0, fmt.Errorf("fairdp: bounds cover %d groups, want %d", b.NumGroups(), g)
	}
	if g > 127 {
		return nil, 0, fmt.Errorf("fairdp: %d groups exceed the supported 127", g)
	}
	if disc == nil {
		disc = quality.LogDiscount
	}
	if d == 0 {
		return perm.Perm{}, 0, nil
	}

	// Members of each group in non-increasing score order (ties by item
	// id for determinism).
	members := gr.Members()
	for _, ms := range members {
		sort.SliceStable(ms, func(a, b int) bool { return scores[ms[a]] > scores[ms[b]] })
	}
	sizes := gr.Sizes()

	// State encoding: mixed radix over counts, stride_g = ∏_{h<g}(n_h+1).
	strides := make([]int, g)
	total := 1
	for gid := 0; gid < g; gid++ {
		strides[gid] = total
		total *= sizes[gid] + 1
		if total > MaxStates {
			return nil, 0, fmt.Errorf("fairdp: state space exceeds %d states", MaxStates)
		}
	}

	value := make([]float64, total)
	choice := make([]int8, total)
	visited := make([]bool, total)
	for i := range value {
		value[i] = math.Inf(-1)
	}
	value[0] = 0
	visited[0] = true

	// Forward DP, processing layers ℓ = 0 … d−1 (sum of counts).
	frontier := []int{0}
	counts := make([]int, g)
	discount := make([]float64, d+1)
	for ell := 1; ell <= d; ell++ {
		discount[ell] = disc(ell)
	}
	for ell := 0; ell < d; ell++ {
		var next []int
		lo := b.Lower[ell] // bounds for prefix length ell+1
		hi := b.Upper[ell]
		for _, state := range frontier {
			decode(state, strides, counts)
			v := value[state]
			for gid := 0; gid < g; gid++ {
				c := counts[gid]
				if c >= sizes[gid] {
					continue
				}
				// Feasibility of the successor at prefix ell+1: only
				// group gid's count changes, but every group's bounds
				// must hold at the new prefix length.
				ok := true
				for q := 0; q < g; q++ {
					cq := counts[q]
					if q == gid {
						cq++
					}
					if cq < lo[q] || cq > hi[q] {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				nv := v + scores[members[gid][c]]*discount[ell+1]
				ns := state + strides[gid]
				if !visited[ns] {
					visited[ns] = true
					next = append(next, ns)
					value[ns] = nv
					choice[ns] = int8(gid)
				} else if nv > value[ns] {
					value[ns] = nv
					choice[ns] = int8(gid)
				}
			}
		}
		frontier = next
	}

	full := 0
	for gid := 0; gid < g; gid++ {
		full += sizes[gid] * strides[gid]
	}
	if !visited[full] {
		return nil, 0, fmt.Errorf("fairdp: %w", ErrInfeasible)
	}

	// Reconstruct the group pattern backwards, then fill items.
	out := make(perm.Perm, d)
	state := full
	decode(state, strides, counts)
	for ell := d - 1; ell >= 0; ell-- {
		gid := int(choice[state])
		counts[gid]--
		out[ell] = members[gid][counts[gid]]
		state -= strides[gid]
	}
	return out, value[full], nil
}

// ErrInfeasible reports that no ranking satisfies the bound table.
var ErrInfeasible = errInfeasible{}

type errInfeasible struct{}

func (errInfeasible) Error() string { return "no ranking satisfies the fairness bounds" }

func decode(state int, strides, out []int) {
	for gid := len(strides) - 1; gid >= 0; gid-- {
		out[gid] = state / strides[gid]
		state %= strides[gid]
	}
}
