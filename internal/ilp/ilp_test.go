package ilp

import (
	"math"
	"math/rand"
	"testing"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestSolveLPSimple(t *testing.T) {
	// max 3x + 2y  s.t. x + y ≤ 4, x ≤ 2 → x=2, y=2, obj=10.
	sol, err := SolveLP(
		[]float64{3, 2},
		[]Constraint{
			{Coeffs: []float64{1, 1}, Rel: LE, RHS: 4},
			{Coeffs: []float64{1, 0}, Rel: LE, RHS: 2},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !almost(sol.Objective, 10) || !almost(sol.X[0], 2) || !almost(sol.X[1], 2) {
		t.Fatalf("sol = %+v", sol)
	}
}

func TestSolveLPWithGEAndEQ(t *testing.T) {
	// max x + y  s.t. x + y = 3, x ≥ 1, y ≤ 1.5 → obj 3 with x ≥ 1.5.
	sol, err := SolveLP(
		[]float64{1, 1},
		[]Constraint{
			{Coeffs: []float64{1, 1}, Rel: EQ, RHS: 3},
			{Coeffs: []float64{1, 0}, Rel: GE, RHS: 1},
			{Coeffs: []float64{0, 1}, Rel: LE, RHS: 1.5},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !almost(sol.Objective, 3) {
		t.Fatalf("sol = %+v", sol)
	}
	if sol.X[0]+sol.X[1] < 3-1e-6 || sol.X[0] < 1-1e-6 || sol.X[1] > 1.5+1e-6 {
		t.Fatalf("constraints violated: %+v", sol)
	}
}

func TestSolveLPNegativeRHS(t *testing.T) {
	// x − y ≤ −1 with b<0 must be normalized correctly.
	// max x s.t. x − y ≤ −1, y ≤ 2 → x = 1 at y = 2.
	sol, err := SolveLP(
		[]float64{1, 0},
		[]Constraint{
			{Coeffs: []float64{1, -1}, Rel: LE, RHS: -1},
			{Coeffs: []float64{0, 1}, Rel: LE, RHS: 2},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !almost(sol.Objective, 1) {
		t.Fatalf("sol = %+v", sol)
	}
}

func TestSolveLPInfeasible(t *testing.T) {
	sol, err := SolveLP(
		[]float64{1},
		[]Constraint{
			{Coeffs: []float64{1}, Rel: GE, RHS: 5},
			{Coeffs: []float64{1}, Rel: LE, RHS: 3},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestSolveLPUnbounded(t *testing.T) {
	sol, err := SolveLP(
		[]float64{1, 1},
		[]Constraint{
			{Coeffs: []float64{1, -1}, Rel: LE, RHS: 1},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestSolveLPDegenerate(t *testing.T) {
	// Redundant constraints at the optimum (classic degeneracy) must not
	// cycle thanks to Bland's rule.
	sol, err := SolveLP(
		[]float64{1, 1},
		[]Constraint{
			{Coeffs: []float64{1, 0}, Rel: LE, RHS: 1},
			{Coeffs: []float64{0, 1}, Rel: LE, RHS: 1},
			{Coeffs: []float64{1, 1}, Rel: LE, RHS: 2},
			{Coeffs: []float64{2, 2}, Rel: LE, RHS: 4},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !almost(sol.Objective, 2) {
		t.Fatalf("sol = %+v", sol)
	}
}

func TestSolveLPValidation(t *testing.T) {
	if _, err := SolveLP([]float64{1}, []Constraint{{Coeffs: []float64{1, 2}, Rel: LE, RHS: 1}}); err == nil {
		t.Error("accepted constraint wider than objective")
	}
	if _, err := SolveLP([]float64{math.NaN()}, nil); err == nil {
		t.Error("accepted NaN objective")
	}
	if _, err := SolveLP([]float64{1}, []Constraint{{Coeffs: []float64{1}, Rel: LE, RHS: math.NaN()}}); err == nil {
		t.Error("accepted NaN rhs")
	}
}

func TestSolveLPShortCoeffsZeroPadded(t *testing.T) {
	// Constraint narrower than the variable count applies to a prefix.
	sol, err := SolveLP(
		[]float64{1, 1},
		[]Constraint{
			{Coeffs: []float64{1}, Rel: LE, RHS: 1},
			{Coeffs: []float64{0, 1}, Rel: LE, RHS: 2},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !almost(sol.Objective, 3) {
		t.Fatalf("sol = %+v", sol)
	}
}

func TestSolveILPRequiresBranching(t *testing.T) {
	// max x + y s.t. 2x + 2y ≤ 3: LP gives 1.5, ILP 1.
	sol, err := Solve(Problem{
		Objective:   []float64{1, 1},
		Constraints: []Constraint{{Coeffs: []float64{2, 2}, Rel: LE, RHS: 3}},
		Integer:     AllInteger(2),
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !almost(sol.Objective, 1) {
		t.Fatalf("sol = %+v", sol)
	}
	for _, v := range sol.X {
		if math.Abs(v-math.Round(v)) > 1e-6 {
			t.Fatalf("non-integral solution %v", sol.X)
		}
	}
}

func TestSolveILPKnapsack(t *testing.T) {
	// 0/1 knapsack: values 10,13,7,8; weights 3,4,2,3; capacity 6.
	// Optimum: items 1+2 (13+7=20, weight 6); greedy-by-value would take
	// item 0 and strand capacity.
	n := 4
	values := []float64{10, 13, 7, 8}
	weights := []float64{3, 4, 2, 3}
	cons := []Constraint{{Coeffs: weights, Rel: LE, RHS: 6}}
	for j := 0; j < n; j++ {
		cons = append(cons, boundConstraint(n, j, LE, 1))
	}
	sol, err := Solve(Problem{Objective: values, Constraints: cons, Integer: AllInteger(n)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !almost(sol.Objective, 20) {
		t.Fatalf("sol = %+v", sol)
	}
}

func TestSolveILPInfeasible(t *testing.T) {
	// 2x = 1 has no integral solution but a feasible relaxation.
	sol, err := Solve(Problem{
		Objective:   []float64{1},
		Constraints: []Constraint{{Coeffs: []float64{2}, Rel: EQ, RHS: 1}},
		Integer:     AllInteger(1),
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestSolveContinuousPassThrough(t *testing.T) {
	sol, err := Solve(Problem{
		Objective:   []float64{1},
		Constraints: []Constraint{{Coeffs: []float64{2}, Rel: EQ, RHS: 1}},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !almost(sol.Objective, 0.5) {
		t.Fatalf("sol = %+v", sol)
	}
}

func TestSolveValidation(t *testing.T) {
	if _, err := Solve(Problem{Objective: []float64{1, 2}, Integer: []bool{true}}, Options{}); err == nil {
		t.Error("accepted mismatched integrality mask")
	}
}

// bruteAssignment enumerates all assignments of n items to n positions.
func bruteAssignment(cost [][]float64) float64 {
	n := len(cost)
	permute := make([]int, n)
	for i := range permute {
		permute[i] = i
	}
	best := math.Inf(-1)
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			var v float64
			for i, j := range permute {
				v += cost[i][j]
			}
			if v > best {
				best = v
			}
			return
		}
		for i := k; i < n; i++ {
			permute[k], permute[i] = permute[i], permute[k]
			rec(k + 1)
			permute[k], permute[i] = permute[i], permute[k]
		}
	}
	rec(0)
	return best
}

func TestSolveAssignmentMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(3) // 3..5
		cost := make([][]float64, n)
		obj := make([]float64, n*n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = math.Round(rng.Float64()*100) / 10
				obj[i*n+j] = cost[i][j]
			}
		}
		var cons []Constraint
		for i := 0; i < n; i++ { // each item exactly once
			c := make([]float64, n*n)
			for j := 0; j < n; j++ {
				c[i*n+j] = 1
			}
			cons = append(cons, Constraint{Coeffs: c, Rel: EQ, RHS: 1})
		}
		for j := 0; j < n; j++ { // each position exactly once
			c := make([]float64, n*n)
			for i := 0; i < n; i++ {
				c[i*n+j] = 1
			}
			cons = append(cons, Constraint{Coeffs: c, Rel: EQ, RHS: 1})
		}
		sol, err := Solve(Problem{Objective: obj, Constraints: cons, Integer: AllInteger(n * n)}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := bruteAssignment(cost)
		if sol.Status != Optimal || !almost(sol.Objective, want) {
			t.Fatalf("n=%d assignment = %+v, want %v", n, sol.Objective, want)
		}
	}
}

func TestNodeLimit(t *testing.T) {
	// A problem that needs branching with MaxNodes=1 must report the cap.
	sol, err := Solve(Problem{
		Objective: []float64{1, 1, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{2, 2, 2}, Rel: LE, RHS: 5},
		},
		Integer: AllInteger(3),
	}, Options{MaxNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != IterationLimit {
		t.Fatalf("status = %v, want iteration-limit", sol.Status)
	}
}

func TestRelationAndStatusStrings(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "=" {
		t.Error("relation strings wrong")
	}
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" ||
		Unbounded.String() != "unbounded" || IterationLimit.String() != "iteration-limit" {
		t.Error("status strings wrong")
	}
	if Relation(9).String() != "?" || Status(9).String() != "unknown" {
		t.Error("fallback strings wrong")
	}
}
