package ilp

import (
	"container/heap"
	"fmt"
	"math"
)

// Problem is a maximization mixed-integer linear program over x ≥ 0.
type Problem struct {
	Objective   []float64
	Constraints []Constraint
	// Integer[j] marks variable j as integral. A nil slice means all
	// variables are continuous (plain LP).
	Integer []bool
}

// Options tunes the branch-and-bound search.
type Options struct {
	// MaxNodes caps the number of explored nodes (0 = default 1e6).
	MaxNodes int
	// IntTol is the integrality tolerance (0 = default 1e-6).
	IntTol float64
}

type node struct {
	extra []Constraint
	bound float64
	depth int
}

type nodeHeap []*node

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].bound > h[j].bound } // best bound first
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(*node)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Solve maximizes the problem with best-first branch and bound over the
// LP relaxation. The returned Status is Optimal, Infeasible (no integral
// point), Unbounded (relaxation unbounded), or IterationLimit (node or
// pivot cap hit before the tree was exhausted).
func Solve(p Problem, opts Options) (Solution, error) {
	if p.Integer != nil && len(p.Integer) != len(p.Objective) {
		return Solution{}, fmt.Errorf("ilp: %d integrality flags for %d variables", len(p.Integer), len(p.Objective))
	}
	maxNodes := opts.MaxNodes
	if maxNodes == 0 {
		maxNodes = 1_000_000
	}
	intTol := opts.IntTol
	if intTol == 0 {
		intTol = 1e-6
	}

	rootSol, err := SolveLP(p.Objective, p.Constraints)
	if err != nil {
		return Solution{}, err
	}
	if rootSol.Status != Optimal {
		return Solution{Status: rootSol.Status}, nil
	}
	if branchVar(rootSol.X, p.Integer, intTol) < 0 {
		return rootSol, nil
	}

	best := Solution{Status: Infeasible, Objective: math.Inf(-1)}
	h := &nodeHeap{{bound: rootSol.Objective}}
	heap.Init(h)
	nodes := 0
	for h.Len() > 0 {
		nodes++
		if nodes > maxNodes {
			if best.Status == Optimal {
				best.Status = IterationLimit
			} else {
				return Solution{Status: IterationLimit}, nil
			}
			return best, nil
		}
		nd := heap.Pop(h).(*node)
		if best.Status == Optimal && nd.bound <= best.Objective+1e-9 {
			continue // cannot improve the incumbent
		}
		cons := append(append([]Constraint(nil), p.Constraints...), nd.extra...)
		sol, err := SolveLP(p.Objective, cons)
		if err != nil {
			return Solution{}, err
		}
		switch sol.Status {
		case Infeasible:
			continue
		case Unbounded:
			return Solution{Status: Unbounded}, nil
		case IterationLimit:
			return Solution{Status: IterationLimit}, nil
		}
		if best.Status == Optimal && sol.Objective <= best.Objective+1e-9 {
			continue
		}
		j := branchVar(sol.X, p.Integer, intTol)
		if j < 0 {
			if best.Status != Optimal || sol.Objective > best.Objective {
				best = Solution{X: roundIntegral(sol.X, p.Integer, intTol), Objective: sol.Objective, Status: Optimal}
			}
			continue
		}
		v := sol.X[j]
		down := boundConstraint(len(p.Objective), j, LE, math.Floor(v))
		up := boundConstraint(len(p.Objective), j, GE, math.Ceil(v))
		heap.Push(h, &node{
			extra: append(append([]Constraint(nil), nd.extra...), down),
			bound: sol.Objective,
			depth: nd.depth + 1,
		})
		heap.Push(h, &node{
			extra: append(append([]Constraint(nil), nd.extra...), up),
			bound: sol.Objective,
			depth: nd.depth + 1,
		})
	}
	return best, nil
}

// branchVar picks the integral variable whose value is farthest from an
// integer (most fractional); −1 when all integral variables are settled.
func branchVar(x []float64, integer []bool, intTol float64) int {
	bestJ, bestFrac := -1, intTol
	for j, v := range x {
		if integer != nil && !integer[j] {
			continue
		}
		if integer == nil {
			continue
		}
		f := math.Abs(v - math.Round(v))
		if f > bestFrac {
			bestFrac = f
			bestJ = j
		}
	}
	return bestJ
}

// roundIntegral snaps near-integral entries exactly, leaving continuous
// variables untouched.
func roundIntegral(x []float64, integer []bool, intTol float64) []float64 {
	out := append([]float64(nil), x...)
	for j := range out {
		if integer != nil && integer[j] && math.Abs(out[j]-math.Round(out[j])) <= intTol {
			out[j] = math.Round(out[j])
		}
	}
	return out
}

func boundConstraint(n, j int, rel Relation, rhs float64) Constraint {
	coeffs := make([]float64, n)
	coeffs[j] = 1
	return Constraint{Coeffs: coeffs, Rel: rel, RHS: rhs}
}

// AllInteger returns an all-true integrality mask for n variables.
func AllInteger(n int) []bool {
	m := make([]bool, n)
	for i := range m {
		m[i] = true
	}
	return m
}
