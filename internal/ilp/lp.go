// Package ilp implements a dependency-free linear and integer linear
// programming solver: a dense two-phase primal simplex with Bland's
// anti-cycling rule, and a best-first branch-and-bound on top of it.
//
// It exists because the paper's §IV-B formulates the DCG-optimal
// (α,β)-fair ranking as an ILP and the evaluation runs that ILP; this
// module must work offline with the standard library only. The solver
// targets correctness and the moderate sizes of those instances, not
// industrial scale. internal/fairdp solves the same fairness instances by
// dynamic programming and cross-checks this solver in tests.
package ilp

import (
	"fmt"
	"math"
)

// Relation orders a constraint row against its right-hand side.
type Relation int

const (
	LE Relation = iota // Σ aᵢxᵢ ≤ b
	GE                 // Σ aᵢxᵢ ≥ b
	EQ                 // Σ aᵢxᵢ = b
)

func (r Relation) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	}
	return "?"
}

// Constraint is one row: Coeffs·x Rel RHS. Coeffs shorter than the
// variable count are implicitly zero-padded.
type Constraint struct {
	Coeffs []float64
	Rel    Relation
	RHS    float64
}

// Status reports the outcome of a solve.
type Status int

const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterationLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterationLimit:
		return "iteration-limit"
	}
	return "unknown"
}

// Solution is the result of an LP or ILP solve. X has one entry per
// variable; Objective is the attained maximum. X and Objective are only
// meaningful when Status == Optimal.
type Solution struct {
	X         []float64
	Objective float64
	Status    Status
}

const (
	tol = 1e-9
	// maxPivots bounds simplex iterations; Bland's rule guarantees
	// termination but a generous cap turns pathological inputs into a
	// reported status instead of a hang.
	maxPivots = 200000
)

// SolveLP maximizes objective·x subject to cons and x ≥ 0 using the
// two-phase primal simplex method.
func SolveLP(objective []float64, cons []Constraint) (Solution, error) {
	n := len(objective)
	for i, c := range cons {
		if len(c.Coeffs) > n {
			return Solution{}, fmt.Errorf("ilp: constraint %d has %d coefficients, objective has %d", i, len(c.Coeffs), n)
		}
		if math.IsNaN(c.RHS) {
			return Solution{}, fmt.Errorf("ilp: constraint %d has NaN rhs", i)
		}
	}
	for j, v := range objective {
		if math.IsNaN(v) {
			return Solution{}, fmt.Errorf("ilp: objective coefficient %d is NaN", j)
		}
	}

	t := newTableau(objective, cons)
	if status := t.phase1(); status != Optimal {
		return Solution{Status: status}, nil
	}
	status := t.phase2()
	if status != Optimal {
		return Solution{Status: status}, nil
	}
	return Solution{X: t.extract(), Objective: t.objectiveValue(), Status: Optimal}, nil
}

// tableau is a dense simplex tableau. Column layout:
// [0, n)              original variables
// [n, n+slacks)       slack/surplus variables
// [n+slacks, total)   artificial variables
// plus an rhs column held separately.
type tableau struct {
	n      int // original variables
	m      int // rows
	slacks int
	arts   int
	rows   [][]float64 // m × totalCols
	rhs    []float64   // m
	basis  []int       // basic variable of each row
	obj    []float64   // original objective, length n
	cost   []float64   // current objective row over all columns
	costC  float64     // current objective constant
}

func newTableau(objective []float64, cons []Constraint) *tableau {
	m := len(cons)
	n := len(objective)
	slacks, arts := 0, 0
	for _, c := range cons {
		switch c.Rel {
		case LE, GE:
			slacks++
		}
	}
	// Artificial count depends on sign-normalized relations; compute
	// after normalization below, so first copy rows.
	type row struct {
		a   []float64
		rel Relation
		b   float64
	}
	rowsIn := make([]row, m)
	for i, c := range cons {
		a := make([]float64, n)
		copy(a, c.Coeffs)
		rel, b := c.Rel, c.RHS
		if b < 0 {
			for j := range a {
				a[j] = -a[j]
			}
			b = -b
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		rowsIn[i] = row{a: a, rel: rel, b: b}
	}
	slacks = 0
	for _, r := range rowsIn {
		if r.rel == LE || r.rel == GE {
			slacks++
		}
		if r.rel == GE || r.rel == EQ {
			arts++
		}
	}
	total := n + slacks + arts
	t := &tableau{
		n:      n,
		m:      m,
		slacks: slacks,
		arts:   arts,
		rows:   make([][]float64, m),
		rhs:    make([]float64, m),
		basis:  make([]int, m),
		obj:    append([]float64(nil), objective...),
	}
	slackCol := n
	artCol := n + slacks
	for i, r := range rowsIn {
		t.rows[i] = make([]float64, total)
		copy(t.rows[i], r.a)
		t.rhs[i] = r.b
		switch r.rel {
		case LE:
			t.rows[i][slackCol] = 1
			t.basis[i] = slackCol
			slackCol++
		case GE:
			t.rows[i][slackCol] = -1
			slackCol++
			t.rows[i][artCol] = 1
			t.basis[i] = artCol
			artCol++
		case EQ:
			t.rows[i][artCol] = 1
			t.basis[i] = artCol
			artCol++
		}
	}
	return t
}

// setCost installs an objective over all columns and expresses it in
// terms of the nonbasic variables (reduced costs) by eliminating the
// basic columns.
func (t *tableau) setCost(c []float64, constant float64) {
	t.cost = append([]float64(nil), c...)
	t.costC = constant
	for i, bv := range t.basis {
		coef := t.cost[bv]
		if coef == 0 {
			continue
		}
		for j := range t.cost {
			t.cost[j] -= coef * t.rows[i][j]
		}
		t.costC += coef * t.rhs[i]
	}
}

// pivot performs a basis exchange at (row, col).
func (t *tableau) pivot(row, col int) {
	pr := t.rows[row]
	pv := pr[col]
	inv := 1 / pv
	for j := range pr {
		pr[j] *= inv
	}
	t.rhs[row] *= inv
	pr[col] = 1 // fight rounding
	for i := range t.rows {
		if i == row {
			continue
		}
		f := t.rows[i][col]
		if f == 0 {
			continue
		}
		ri := t.rows[i]
		for j := range ri {
			ri[j] -= f * pr[j]
		}
		ri[col] = 0
		t.rhs[i] -= f * t.rhs[row]
	}
	f := t.cost[col]
	if f != 0 {
		for j := range t.cost {
			t.cost[j] -= f * pr[j]
		}
		t.cost[col] = 0
		t.costC += f * t.rhs[row]
	}
	t.basis[row] = col
}

// iterate runs primal simplex pivots with Bland's rule (first improving
// column, smallest-index leaving variable) until optimality, an
// unbounded ray, or the iteration cap. forbid marks columns that may not
// enter (used to keep artificials out in phase 2).
func (t *tableau) iterate(forbid func(col int) bool) Status {
	for iter := 0; iter < maxPivots; iter++ {
		// Bland: entering column = lowest index with positive reduced cost.
		col := -1
		for j := range t.cost {
			if forbid != nil && forbid(j) {
				continue
			}
			if t.cost[j] > tol {
				col = j
				break
			}
		}
		if col < 0 {
			return Optimal
		}
		// Ratio test; Bland tie-break on lowest basis variable index.
		row := -1
		best := math.Inf(1)
		for i := 0; i < t.m; i++ {
			a := t.rows[i][col]
			if a <= tol {
				continue
			}
			ratio := t.rhs[i] / a
			if ratio < best-tol || (ratio < best+tol && (row < 0 || t.basis[i] < t.basis[row])) {
				best = ratio
				row = i
			}
		}
		if row < 0 {
			return Unbounded
		}
		t.pivot(row, col)
	}
	return IterationLimit
}

// phase1 finds a basic feasible solution by minimizing the artificial
// sum; afterwards artificial variables are pivoted out of the basis.
func (t *tableau) phase1() Status {
	if t.arts == 0 {
		return Optimal
	}
	c := make([]float64, t.n+t.slacks+t.arts)
	for j := t.n + t.slacks; j < len(c); j++ {
		c[j] = -1 // maximize −Σ artificials
	}
	t.setCost(c, 0)
	status := t.iterate(nil)
	if status != Optimal {
		return status
	}
	if t.costC < -1e-7 {
		return Infeasible
	}
	// Drive any remaining zero-valued artificial out of the basis.
	for i := 0; i < t.m; i++ {
		if t.basis[i] < t.n+t.slacks {
			continue
		}
		pivoted := false
		for j := 0; j < t.n+t.slacks; j++ {
			if math.Abs(t.rows[i][j]) > tol {
				t.pivot(i, j)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Redundant row: every structural coefficient is zero; the
			// artificial stays basic at value zero, which is harmless as
			// long as it never re-enters (phase 2 forbids that).
			continue
		}
	}
	return Optimal
}

func (t *tableau) phase2() Status {
	c := make([]float64, t.n+t.slacks+t.arts)
	copy(c, t.obj)
	t.setCost(c, 0)
	artStart := t.n + t.slacks
	return t.iterate(func(col int) bool { return col >= artStart })
}

// extract reads the original-variable values off the basis.
func (t *tableau) extract() []float64 {
	x := make([]float64, t.n)
	for i, bv := range t.basis {
		if bv < t.n {
			x[bv] = t.rhs[i]
		}
	}
	return x
}

func (t *tableau) objectiveValue() float64 {
	v := t.costC
	// costC accumulated during phase 2 equals c·x for the current basis:
	// setCost folded basic contributions into the constant and iterate
	// kept it updated on every pivot.
	return v
}
