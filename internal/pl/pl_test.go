package pl

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/perm"
)

func TestNewValidation(t *testing.T) {
	if _, err := New([]float64{1, 2, 0.5}); err != nil {
		t.Fatal(err)
	}
	bad := [][]float64{
		nil,
		{0},
		{-1},
		{math.NaN()},
		{math.Inf(1)},
		{1, 0},
	}
	for i, w := range bad {
		if _, err := New(w); err == nil {
			t.Errorf("case %d accepted invalid weights", i)
		}
	}
}

func TestFromScores(t *testing.T) {
	m, err := FromScores([]float64{0, 1, 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	w := m.Weights()
	if math.Abs(w[1]/w[0]-math.E) > 1e-12 {
		t.Fatalf("weight ratio = %v, want e", w[1]/w[0])
	}
	if _, err := FromScores([]float64{0}, math.NaN()); err == nil {
		t.Error("accepted NaN strength")
	}
}

func TestProbSumsToOne(t *testing.T) {
	m, err := New([]float64{3, 1, 0.5, 2})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	perm.All(4, func(p perm.Perm) bool {
		pr, err := m.Prob(p)
		if err != nil {
			t.Fatal(err)
		}
		sum += pr
		return true
	})
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("probabilities sum to %v", sum)
	}
}

func TestLogProbKnownValue(t *testing.T) {
	// Weights 2,1: P[⟨0 1⟩] = 2/3, P[⟨1 0⟩] = 1/3.
	m, err := New([]float64{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	p0, err := m.Prob(perm.Identity(2))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p0-2.0/3) > 1e-12 {
		t.Fatalf("P[id] = %v, want 2/3", p0)
	}
	if _, err := m.LogProb(perm.Identity(3)); err == nil {
		t.Error("accepted size mismatch")
	}
	if _, err := m.LogProb(perm.Perm{0, 0}); err == nil {
		t.Error("accepted invalid permutation")
	}
}

func TestSamplerMatchesExactProbabilities(t *testing.T) {
	m, err := New([]float64{4, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(100))
	const samples = 60000
	freq := map[string]float64{}
	for i := 0; i < samples; i++ {
		freq[m.Sample(rng).String()]++
	}
	var tv float64
	perm.All(3, func(p perm.Perm) bool {
		want, err := m.Prob(p)
		if err != nil {
			t.Fatal(err)
		}
		tv += math.Abs(freq[p.String()]/samples - want)
		return true
	})
	tv /= 2
	if tv > 0.01 {
		t.Fatalf("total variation distance %v too large", tv)
	}
}

func TestFitMMRecoversWeights(t *testing.T) {
	truth, err := New([]float64{4, 2, 1, 0.5, 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(101))
	votes := truth.SampleN(8000, rng)
	fitted, err := FitMM(votes, 200)
	if err != nil {
		t.Fatal(err)
	}
	// Compare weight ratios (the scale is not identifiable).
	tw, fw := truth.Weights(), fitted.Weights()
	for i := 1; i < len(tw); i++ {
		want := tw[i] / tw[0]
		got := fw[i] / fw[0]
		if math.Abs(math.Log(got/want)) > 0.15 {
			t.Fatalf("weight ratio %d: fitted %v, want %v", i, got, want)
		}
	}
}

func TestFitMMIncreasesLikelihood(t *testing.T) {
	truth, err := New([]float64{3, 1, 1, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(102))
	votes := truth.SampleN(500, rng)
	prev := math.Inf(-1)
	for _, iters := range []int{1, 3, 10, 50} {
		fitted, err := FitMM(votes, iters)
		if err != nil {
			t.Fatal(err)
		}
		ll, err := fitted.LogLikelihood(votes)
		if err != nil {
			t.Fatal(err)
		}
		if ll < prev-1e-9 {
			t.Fatalf("likelihood decreased: %v after %d iters (prev %v)", ll, iters, prev)
		}
		prev = ll
	}
	// The fit should beat the uniform model.
	uniform, err := New([]float64{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	uniLL, err := uniform.LogLikelihood(votes)
	if err != nil {
		t.Fatal(err)
	}
	if prev <= uniLL {
		t.Fatalf("fitted likelihood %v not above uniform %v", prev, uniLL)
	}
}

func TestFitMMValidation(t *testing.T) {
	if _, err := FitMM(nil, 10); err == nil {
		t.Error("accepted no votes")
	}
	if _, err := FitMM([]perm.Perm{perm.Identity(3)}, 0); err == nil {
		t.Error("accepted zero iterations")
	}
	if _, err := FitMM([]perm.Perm{perm.Identity(3), perm.Identity(4)}, 5); err == nil {
		t.Error("accepted ragged votes")
	}
	if _, err := FitMM([]perm.Perm{{0, 0, 1}}, 5); err == nil {
		t.Error("accepted invalid vote")
	}
	m, err := FitMM([]perm.Perm{perm.Identity(1)}, 5)
	if err != nil || m.N() != 1 {
		t.Errorf("singleton fit = %v, %v", m, err)
	}
}

func TestLogLikelihoodErrors(t *testing.T) {
	m, _ := New([]float64{1, 1})
	if _, err := m.LogLikelihood([]perm.Perm{perm.Identity(3)}); err == nil {
		t.Error("accepted mismatched vote")
	}
}
