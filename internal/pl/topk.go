package pl

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/perm"
)

// uniformBlock is the size of the Scratch's uniform buffer: the samplers
// pull uniforms from the RNG in blocks of this many, amortizing the
// per-call overhead of the hot best-of-m loop without changing the
// stream — the block is filled in item order with the zero-rejection
// applied per slot, exactly the draws the per-item loop would take.
const uniformBlock = 512

// Scratch is the pooled per-draw state of the zero-allocation samplers
// (SampleLogWeightsInto, SampleTopKInto): the uniform block buffer, the
// Gumbel-perturbed utilities, the k-slot selection heap, and the sorter
// the full-length path reuses instead of capturing a fresh sort.Slice
// closure per draw. A Scratch is not safe for concurrent use; pool one
// per worker. The zero value is usable — buffers grow on first use —
// but NewScratch pre-sizes them so the steady state never allocates.
type Scratch struct {
	uni   []float64 // uniform block buffer
	util  []float64 // per-item utilities (full-length path)
	heapU []float64 // top-k heap: utilities
	heapI []int     // top-k heap: item indices
	srt   plSorter  // reusable sort.Interface for the full-length path
}

// NewScratch returns a Scratch pre-sized for pools of up to n items, so
// draws at any k ≤ n perform no allocation.
func NewScratch(n int) *Scratch {
	if n < 0 {
		n = 0
	}
	return &Scratch{
		uni:   make([]float64, uniformBlock),
		util:  make([]float64, n),
		heapU: make([]float64, 0, n),
		heapI: make([]int, 0, n),
	}
}

// fillUniforms block-fills buf with the next len(buf) nonzero uniforms
// of the stream — exactly the draws the per-item rejection loop takes,
// in the same order, so block-filled and per-item consumption leave the
// RNG in the same state.
func fillUniforms(buf []float64, rng *rand.Rand) {
	for i := range buf {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		buf[i] = u
	}
}

// block returns the scratch uniform buffer, allocating it on first use
// of a zero-value Scratch.
func (s *Scratch) block() []float64 {
	if len(s.uni) == 0 {
		s.uni = make([]float64, uniformBlock)
	}
	return s.uni
}

// plSorter sorts a permutation descending by per-item utility with ties
// broken toward the lower item index — the same strict total order
// SampleLogWeights sorts by. A pointer receiver on a long-lived struct
// keeps the sort.Sort interface conversion allocation-free.
type plSorter struct {
	p    perm.Perm
	util []float64
}

func (s *plSorter) Len() int      { return len(s.p) }
func (s *plSorter) Swap(a, b int) { s.p[a], s.p[b] = s.p[b], s.p[a] }
func (s *plSorter) Less(a, b int) bool {
	ua, ub := s.util[s.p[a]], s.util[s.p[b]]
	if ua != ub {
		return ua > ub
	}
	return s.p[a] < s.p[b]
}

// SampleLogWeightsInto is SampleLogWeights drawing through pooled
// scratch: identical stream consumption, identical utilities, identical
// ranking for equal seeds, but no per-draw make and no sort closure
// capture — with a pre-sized Scratch and cap(out) ≥ len(logw) a draw
// performs no allocation. It writes the ranking into out and returns
// the (possibly reallocated) slice.
func SampleLogWeightsInto(logw []float64, out perm.Perm, s *Scratch, rng *rand.Rand) perm.Perm {
	n := len(logw)
	if cap(s.util) < n {
		s.util = make([]float64, n)
	}
	util := s.util[:n]
	blk := s.block()
	for lo := 0; lo < n; lo += len(blk) {
		hi := lo + len(blk)
		if hi > n {
			hi = n
		}
		b := blk[:hi-lo]
		fillUniforms(b, rng)
		for o, u := range b {
			util[lo+o] = logw[lo+o] - math.Log(-math.Log(u))
		}
	}
	if cap(out) < n {
		out = make(perm.Perm, n)
	}
	out = out[:n]
	for i := range out {
		out[i] = i
	}
	s.srt.p, s.srt.util = out, util
	sort.Sort(&s.srt)
	s.srt.p, s.srt.util = nil, nil
	return out
}

// heapWorse reports whether item (u1, i1) ranks strictly below (u2, i2)
// in the drawn ranking: lower utility, ties toward the higher index —
// the exact inverse of the plSorter order, so the heap's "worst kept
// item" is the one the full sort would place last within the prefix.
func heapWorse(u1 float64, i1 int, u2 float64, i2 int) bool {
	if u1 != u2 {
		return u1 < u2
	}
	return i1 > i2
}

// SampleTopKInto draws one Plackett–Luce ranking exactly like
// SampleLogWeights but materializes only the top-k prefix, writing it
// into out (reallocated if cap(out) < k) and returning the delivered
// prefix; k is clamped to [0, len(logw)].
//
// It consumes the RNG stream exactly like SampleLogWeights — one
// nonzero uniform per item, in item-index order — so for equal seeds
// the delivered prefix is bit-identical to the first k entries of the
// full draw, and a sequence of draws from one shared stream stays
// aligned draw for draw with the full path. Every item's Gumbel
// utility streams through a bounded k-slot min-heap ordered by
// (utility, index): the root is the weakest kept item, an incoming item
// replaces it only when it would outrank it, and the final heap drains
// back-to-front into the prefix. Because the (utility desc, index asc)
// comparator is a strict total order, the k heap survivors are exactly
// the first k items of the full stable descending sort, in the same
// order — O(n + k·log k·log n) expected against the full path's
// O(n log n), with zero allocations on pooled scratch.
//
// logw entries may be ±Inf (ties break by index) but must not be NaN:
// a NaN utility has no place in the total order, and the heap and the
// full sort may then disagree on the prefix.
func SampleTopKInto(logw []float64, k int, out perm.Perm, s *Scratch, rng *rand.Rand) perm.Perm {
	n := len(logw)
	if k > n {
		k = n
	}
	if k < 0 {
		k = 0
	}
	if cap(s.heapU) < k {
		s.heapU = make([]float64, 0, k)
		s.heapI = make([]int, 0, k)
	}
	hu, hi := s.heapU[:0], s.heapI[:0]
	blk := s.block()
	for lo := 0; lo < n; lo += len(blk) {
		bhi := lo + len(blk)
		if bhi > n {
			bhi = n
		}
		b := blk[:bhi-lo]
		fillUniforms(b, rng)
		for o, u := range b {
			i := lo + o
			ut := logw[i] - math.Log(-math.Log(u))
			if len(hu) < k {
				hu = append(hu, ut)
				hi = append(hi, i)
				siftUp(hu, hi, len(hu)-1)
			} else if k > 0 && heapWorse(hu[0], hi[0], ut, i) {
				hu[0], hi[0] = ut, i
				siftDown(hu, hi, 0)
			}
		}
	}
	s.heapU, s.heapI = hu, hi
	if cap(out) < k {
		out = make(perm.Perm, k)
	}
	out = out[:k]
	// Drain worst-first into the tail: the heap pops its items in
	// ascending rank order, which is the prefix read back to front.
	for w := len(hu) - 1; w >= 0; w-- {
		out[w] = hi[0]
		last := len(hu) - 1
		hu[0], hi[0] = hu[last], hi[last]
		hu, hi = hu[:last], hi[:last]
		siftDown(hu, hi, 0)
	}
	return out
}

// siftUp restores the min-heap invariant (parent worse than children
// under heapWorse) after appending at index i.
func siftUp(hu []float64, hi []int, i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !heapWorse(hu[i], hi[i], hu[p], hi[p]) {
			return
		}
		hu[i], hu[p] = hu[p], hu[i]
		hi[i], hi[p] = hi[p], hi[i]
		i = p
	}
}

// siftDown restores the min-heap invariant after replacing index i.
func siftDown(hu []float64, hi []int, i int) {
	for {
		l := 2*i + 1
		if l >= len(hu) {
			return
		}
		m := l
		if r := l + 1; r < len(hu) && heapWorse(hu[r], hi[r], hu[l], hi[l]) {
			m = r
		}
		if !heapWorse(hu[m], hi[m], hu[i], hi[i]) {
			return
		}
		hu[i], hu[m] = hu[m], hu[i]
		hi[i], hi[m] = hi[m], hi[i]
		i = m
	}
}
