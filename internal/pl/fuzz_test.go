package pl

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/perm"
)

// FuzzPLTopKPrefix fuzzes the bounded-heap truncated sampler against the
// full Gumbel sort: any (n, k, θ, seed) must yield a bit-identical
// delivered prefix and leave the RNG stream in the same position. The
// log-weights follow the engine's −θ·rank schedule; a second vector with
// ±Inf entries derived from the seed exercises the tie-break path.
func FuzzPLTopKPrefix(f *testing.F) {
	f.Add(10, 3, 1.0, int64(1))
	f.Add(1, 1, 0.0, int64(2))
	f.Add(64, 64, 0.01, int64(3))
	f.Add(64, 80, 700.0, int64(4))
	f.Add(200, 1, 1e-300, int64(5))
	f.Add(33, 0, 2.5, int64(6))
	f.Add(513, 7, 0.3, int64(7)) // spans two uniform blocks
	f.Fuzz(func(t *testing.T, n, k int, theta float64, seed int64) {
		if n < 0 || n > 1024 || k < 0 || k > 2048 {
			t.Skip("size out of fuzz range")
		}
		if math.IsNaN(theta) {
			t.Skip("NaN dispersion out of contract (NaN utilities break the total order)")
		}
		logw := make([]float64, n)
		for i := range logw {
			logw[i] = -theta * float64(i)
		}
		tieRng := rand.New(rand.NewSource(seed ^ 0x5eed))
		tied := make([]float64, n)
		for i := range tied {
			switch tieRng.Intn(4) {
			case 0:
				tied[i] = math.Inf(1)
			case 1:
				tied[i] = math.Inf(-1)
			default:
				tied[i] = tieRng.NormFloat64()
			}
		}
		for _, lw := range [][]float64{logw, tied} {
			hasNaN := false
			for _, v := range lw {
				if math.IsNaN(v) {
					hasNaN = true
				}
			}
			if hasNaN {
				continue
			}
			rngFull := rand.New(rand.NewSource(seed))
			rngTopK := rand.New(rand.NewSource(seed))
			full := SampleLogWeights(lw, rngFull)
			s := NewScratch(n)
			got := SampleTopKInto(lw, k, make(perm.Perm, 0, n), s, rngTopK)
			want := k
			if want > n {
				want = n
			}
			if len(got) != want {
				t.Fatalf("n=%d k=%d θ=%g: prefix length %d, want %d", n, k, theta, len(got), want)
			}
			for i := range got {
				if got[i] != full[i] {
					t.Fatalf("n=%d k=%d θ=%g seed=%d: prefix[%d] = %d, full %d", n, k, theta, seed, i, got[i], full[i])
				}
			}
			if a, b := rngFull.Int63(), rngTopK.Int63(); a != b {
				t.Fatalf("n=%d k=%d θ=%g: RNG streams diverged (%d vs %d)", n, k, theta, a, b)
			}
		}
	})
}
