// Package pl implements the Plackett–Luce ranking model: a ranking is
// built top-down by repeatedly choosing the next item with probability
// proportional to its positive weight among the remaining items,
//
//	P[π] = ∏_{r=0}^{n−1} w(π(r)) / Σ_{r'≥r} w(π(r')).
//
// The paper's §VI proposes exploring noise distributions beyond Mallows;
// Plackett–Luce is the canonical alternative (core.PlackettLuceNoise
// draws from this model with exponentially decaying weights). The
// package provides exact probabilities, a Gumbel-trick sampler, and
// maximum-likelihood fitting via Hunter's MM algorithm.
package pl

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/perm"
)

// Model is a Plackett–Luce distribution over rankings of n items;
// weights[i] > 0 is the choice weight of item i.
type Model struct {
	weights []float64
}

// New validates the weights (finite, strictly positive).
func New(weights []float64) (*Model, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("pl: no weights")
	}
	for i, w := range weights {
		if math.IsNaN(w) || math.IsInf(w, 0) || w <= 0 {
			return nil, fmt.Errorf("pl: weight of item %d is %v, want finite > 0", i, w)
		}
	}
	return &Model{weights: append([]float64(nil), weights...)}, nil
}

// FromScores builds a model with weights e^{strength·score(i)}
// (Bradley–Terry/softmax weights); strength 0 is uniform.
func FromScores(scores []float64, strength float64) (*Model, error) {
	if math.IsNaN(strength) {
		return nil, fmt.Errorf("pl: NaN strength")
	}
	w := make([]float64, len(scores))
	for i, s := range scores {
		w[i] = math.Exp(strength * s)
	}
	return New(w)
}

// N returns the number of items.
func (m *Model) N() int { return len(m.weights) }

// Weights returns a copy of the item weights.
func (m *Model) Weights() []float64 { return append([]float64(nil), m.weights...) }

// LogProb returns ln P[π].
func (m *Model) LogProb(p perm.Perm) (float64, error) {
	if len(p) != m.N() {
		return 0, fmt.Errorf("pl: ranking of %d items, model has %d", len(p), m.N())
	}
	if err := p.Validate(); err != nil {
		return 0, err
	}
	// Suffix weight sums from the bottom up.
	var lp, suffix float64
	for r := len(p) - 1; r >= 0; r-- {
		suffix += m.weights[p[r]]
		lp += math.Log(m.weights[p[r]]) - math.Log(suffix)
	}
	return lp, nil
}

// Prob returns P[π].
func (m *Model) Prob(p perm.Perm) (float64, error) {
	lp, err := m.LogProb(p)
	if err != nil {
		return 0, err
	}
	return math.Exp(lp), nil
}

// Sample draws one ranking by the Gumbel-max trick: item i gets utility
// ln w_i + Gumbel noise, and the ranking sorts utilities descending —
// an O(n log n) exact sampler for Plackett–Luce. Equal utilities (ties
// occur at ±Inf log-weights, where the Gumbel perturbation cannot
// separate items) break toward the lower item index, so equal seeds
// yield one well-defined ranking regardless of the sort algorithm.
func (m *Model) Sample(rng *rand.Rand) perm.Perm {
	n := m.N()
	utilities := make([]float64, n)
	for i, w := range m.weights {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		utilities[i] = math.Log(w) - math.Log(-math.Log(u))
	}
	out := perm.Identity(n)
	sort.Slice(out, func(a, b int) bool {
		ua, ub := utilities[out[a]], utilities[out[b]]
		if ua != ub {
			return ua > ub
		}
		return out[a] < out[b]
	})
	return out
}

// SampleLogWeights draws one Plackett–Luce ranking by the Gumbel-max
// trick directly from log-weights: item i gets utility logw[i] + Gumbel
// noise and the ranking sorts utilities descending. Operating in log
// space sidesteps the under/overflow of materializing w = e^{logw} —
// e.g. exponentially decaying weights over long rankings, where the
// tail weights round to zero and New would reject them.
//
// Equal utilities — possible when logw holds ±Inf entries, which the
// Gumbel perturbation cannot separate — break toward the lower item
// index. The tie-break makes the comparator a strict total order, so
// the drawn ranking is a deterministic function of the consumed
// uniforms regardless of the sort algorithm (sort.Slice alone is
// unstable and would leave tied orders unspecified across Go releases).
func SampleLogWeights(logw []float64, rng *rand.Rand) perm.Perm {
	utilities := make([]float64, len(logw))
	for i, lw := range logw {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		utilities[i] = lw - math.Log(-math.Log(u))
	}
	out := perm.Identity(len(logw))
	sort.Slice(out, func(a, b int) bool {
		ua, ub := utilities[out[a]], utilities[out[b]]
		if ua != ub {
			return ua > ub
		}
		return out[a] < out[b]
	})
	return out
}

// SampleN draws count independent rankings.
func (m *Model) SampleN(count int, rng *rand.Rand) []perm.Perm {
	out := make([]perm.Perm, count)
	for i := range out {
		out[i] = m.Sample(rng)
	}
	return out
}

// LogLikelihood returns Σ ln P[vote] over the votes.
func (m *Model) LogLikelihood(votes []perm.Perm) (float64, error) {
	var total float64
	for i, v := range votes {
		lp, err := m.LogProb(v)
		if err != nil {
			return 0, fmt.Errorf("pl: vote %d: %w", i, err)
		}
		total += lp
	}
	return total, nil
}

// FitMM fits Plackett–Luce weights to full rankings by Hunter's (2004)
// minorize–maximize algorithm, which increases the likelihood at every
// iteration:
//
//	w_i ← c_i / Σ_{votes, stages r with i in the remaining set}
//	            1 / (Σ_{k remaining at r} w_k)
//
// where c_i counts the stages at which i was chosen (every position
// except the last of each vote). Weights are normalized to geometric
// mean 1 after each sweep; the model is identifiable only up to a
// common scale. Items never chosen before the last position in any
// vote would be driven to weight 0; they are kept at a small floor.
func FitMM(votes []perm.Perm, iterations int) (*Model, error) {
	if len(votes) == 0 {
		return nil, fmt.Errorf("pl: no votes")
	}
	if iterations < 1 {
		return nil, fmt.Errorf("pl: iterations = %d, want ≥ 1", iterations)
	}
	n := len(votes[0])
	for i, v := range votes {
		if len(v) != n {
			return nil, fmt.Errorf("pl: vote %d ranks %d items, want %d", i, len(v), n)
		}
		if err := v.Validate(); err != nil {
			return nil, fmt.Errorf("pl: vote %d: %w", i, err)
		}
	}
	if n == 1 {
		return New([]float64{1})
	}

	wins := make([]float64, n) // c_i: times chosen at a competitive stage
	for _, v := range votes {
		for r := 0; r < n-1; r++ {
			wins[v[r]]++
		}
	}

	const floor = 1e-12
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	denom := make([]float64, n)
	for iter := 0; iter < iterations; iter++ {
		for i := range denom {
			denom[i] = 0
		}
		for _, v := range votes {
			// Stage r ∈ {0…n−2} has remaining set {v[r…n−1]} with weight
			// sum S_r; every item in that set collects 1/S_r. Walking
			// top-down, item v[r] participates in stages 0…r, so it
			// collects the running inverse sum at the moment it leaves.
			var remaining float64
			for _, item := range v {
				remaining += w[item]
			}
			var invAccum float64
			for r := 0; r < n-1; r++ {
				invAccum += 1 / remaining
				denom[v[r]] += invAccum
				remaining -= w[v[r]]
			}
			// The last item participated in every competitive stage.
			denom[v[n-1]] += invAccum
		}
		for i := range w {
			if denom[i] == 0 {
				w[i] = floor
				continue
			}
			w[i] = wins[i] / denom[i]
			if w[i] < floor {
				w[i] = floor
			}
		}
		normalizeGeoMean(w)
	}
	return New(w)
}

// normalizeGeoMean rescales the weights to geometric mean 1.
func normalizeGeoMean(w []float64) {
	var logSum float64
	for _, v := range w {
		logSum += math.Log(v)
	}
	scale := math.Exp(-logSum / float64(len(w)))
	for i := range w {
		w[i] *= scale
	}
}
