package pl

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/perm"
)

// plLogWeightGrids returns log-weight vectors covering the regimes the
// truncated sampler must agree with the full path on: decaying chains
// (the engine's -θ·rank schedule) at several strengths including 0
// (uniform: every ranking decided purely by the Gumbel noise), steep
// decay (near-deterministic order), and vectors with ±Inf entries where
// utilities tie and only the index tie-break orders the items.
func plLogWeightGrids(n int, rng *rand.Rand) [][]float64 {
	var grids [][]float64
	for _, theta := range []float64{0, 1e-9, 0.05, 0.5, 1, 3, 25, 700} {
		logw := make([]float64, n)
		for i := range logw {
			logw[i] = -theta * float64(i)
		}
		grids = append(grids, logw)
	}
	// Random log-weights, shuffled so index order carries no signal.
	logw := make([]float64, n)
	for i := range logw {
		logw[i] = rng.NormFloat64() * 3
	}
	grids = append(grids, logw)
	// ±Inf ties: several items pinned to +Inf (always on top, ordered by
	// index) and several to −Inf (always at the bottom, ordered by index).
	if n >= 2 {
		tied := make([]float64, n)
		for i := range tied {
			switch {
			case i%3 == 0:
				tied[i] = math.Inf(1)
			case i%3 == 1:
				tied[i] = math.Inf(-1)
			default:
				tied[i] = float64(i % 5)
			}
		}
		grids = append(grids, tied)
	}
	return grids
}

// The delivered top-k prefix must be bit-identical to the first k
// entries of the full draw for equal seeds, across sizes, log-weight
// shapes (including ±Inf ties), and k values straddling every edge.
func TestPLSampleTopKPrefixBitIdentity(t *testing.T) {
	gridRng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 2, 3, 7, 25, 64, 200} {
		for gi, logw := range plLogWeightGrids(n, gridRng) {
			ks := []int{0, 1, 2, n / 2, n - 1, n, n + 1, n + 7}
			for _, k := range ks {
				if k < 0 {
					continue
				}
				for seed := int64(0); seed < 5; seed++ {
					full := SampleLogWeights(logw, rand.New(rand.NewSource(seed)))
					s := NewScratch(n)
					got := SampleTopKInto(logw, k, make(perm.Perm, 0, n), s, rand.New(rand.NewSource(seed)))
					want := k
					if want > n {
						want = n
					}
					if len(got) != want {
						t.Fatalf("n=%d grid=%d k=%d seed=%d: prefix length %d, want %d",
							n, gi, k, seed, len(got), want)
					}
					for i := range got {
						if got[i] != full[i] {
							t.Fatalf("n=%d grid=%d k=%d seed=%d: prefix[%d] = %d, full draw has %d\nprefix: %v\nfull:   %v",
								n, gi, k, seed, i, got[i], full[i], got, full[:want])
						}
					}
				}
			}
		}
	}
}

// SampleLogWeightsInto is the pooled-scratch rebuild of
// SampleLogWeights: for equal seeds the two must produce bit-identical
// rankings and leave the RNG in the same position.
func TestPLSampleLogWeightsIntoBitIdentity(t *testing.T) {
	gridRng := rand.New(rand.NewSource(8))
	for _, n := range []int{0, 1, 2, 3, 7, 25, 64, 200, 513} {
		for gi, logw := range plLogWeightGrids(n, gridRng) {
			for seed := int64(0); seed < 5; seed++ {
				rngA := rand.New(rand.NewSource(seed))
				rngB := rand.New(rand.NewSource(seed))
				want := SampleLogWeights(logw, rngA)
				s := NewScratch(n)
				got := SampleLogWeightsInto(logw, make(perm.Perm, 0, n), s, rngB)
				if len(got) != len(want) {
					t.Fatalf("n=%d grid=%d seed=%d: length %d, want %d", n, gi, seed, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("n=%d grid=%d seed=%d: pos %d = %d, want %d", n, gi, seed, i, got[i], want[i])
					}
				}
				if a, b := rngA.Int63(), rngB.Int63(); a != b {
					t.Fatalf("n=%d grid=%d seed=%d: RNG streams diverged (%d vs %d)", n, gi, seed, a, b)
				}
			}
		}
	}
}

// The sort-stability regression: with tied utilities (±Inf log-weights)
// the drawn ranking must order tied items by ascending index — the
// documented strict total order — on every path.
func TestPLTiedWeightsDeterministicOrder(t *testing.T) {
	const n = 40
	logw := make([]float64, n)
	for i := range logw {
		if i%2 == 0 {
			logw[i] = math.Inf(1)
		} else {
			logw[i] = math.Inf(-1)
		}
	}
	check := func(name string, p perm.Perm) {
		t.Helper()
		// First half of the ranking: the +Inf items (even indices) in
		// ascending index order; second half: the −Inf items likewise.
		for i := 0; i < n/2; i++ {
			if p[i] != 2*i {
				t.Fatalf("%s: pos %d = %d, want %d (tied +Inf items must order by index)", name, i, p[i], 2*i)
			}
			if p[n/2+i] != 2*i+1 {
				t.Fatalf("%s: pos %d = %d, want %d (tied −Inf items must order by index)", name, n/2+i, p[n/2+i], 2*i+1)
			}
		}
	}
	for seed := int64(0); seed < 10; seed++ {
		check("SampleLogWeights", SampleLogWeights(logw, rand.New(rand.NewSource(seed))))
		s := NewScratch(n)
		check("SampleLogWeightsInto",
			SampleLogWeightsInto(logw, make(perm.Perm, 0, n), s, rand.New(rand.NewSource(seed))))
		check("SampleTopKInto",
			SampleTopKInto(logw, n, make(perm.Perm, 0, n), s, rand.New(rand.NewSource(seed))))
	}
	// Model.Sample ties the same way at +Inf/-Inf utilities; exercised
	// through exp-space weights it cannot represent ±Inf, so pin the
	// log-weight paths only.
}

// Truncated and full draws must consume the RNG stream identically: one
// draw from each on equal seeds leaves both generators in the same
// position, for every k including 0.
func TestPLSampleTopKStreamIdentity(t *testing.T) {
	const n = 129 // not a multiple of the uniform block
	logw := make([]float64, n)
	for i := range logw {
		logw[i] = -0.3 * float64(i)
	}
	for _, k := range []int{0, 1, 5, n / 2, n} {
		rngFull := rand.New(rand.NewSource(42))
		rngTopK := rand.New(rand.NewSource(42))
		SampleLogWeights(logw, rngFull)
		s := NewScratch(n)
		SampleTopKInto(logw, k, make(perm.Perm, 0, n), s, rngTopK)
		if a, b := rngFull.Int63(), rngTopK.Int63(); a != b {
			t.Fatalf("k=%d: RNG streams diverged after one draw (%d vs %d)", k, a, b)
		}
	}
}

// A sequence of draws from one shared stream stays aligned draw for
// draw with the full path — the best-of-m loop's actual usage.
func TestPLSampleTopKSequentialDraws(t *testing.T) {
	const n, k, draws = 60, 8, 12
	logw := make([]float64, n)
	for i := range logw {
		logw[i] = -0.5 * float64(i)
	}
	rngFull := rand.New(rand.NewSource(99))
	rngTopK := rand.New(rand.NewSource(99))
	s := NewScratch(n)
	out := make(perm.Perm, 0, n)
	for d := 0; d < draws; d++ {
		full := SampleLogWeights(logw, rngFull)
		out = SampleTopKInto(logw, k, out, s, rngTopK)
		for i := range out {
			if out[i] != full[i] {
				t.Fatalf("draw %d: prefix[%d] = %d, full draw has %d", d, i, out[i], full[i])
			}
		}
	}
}

// The delivered prefix is always a valid partial permutation: k distinct
// items from {0,…,n−1}.
func TestPLSampleTopKValid(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 50
	logw := make([]float64, n)
	for i := range logw {
		logw[i] = rng.NormFloat64()
	}
	s := NewScratch(n)
	for trial := 0; trial < 200; trial++ {
		k := rng.Intn(n + 2)
		got := SampleTopKInto(logw, k, make(perm.Perm, 0, n), s, rng)
		want := k
		if want > n {
			want = n
		}
		if len(got) != want {
			t.Fatalf("k=%d: length %d, want %d", k, len(got), want)
		}
		seen := make(map[int]bool, len(got))
		for _, v := range got {
			if v < 0 || v >= n {
				t.Fatalf("k=%d: item %d outside [0, %d)", k, v, n)
			}
			if seen[v] {
				t.Fatalf("k=%d: duplicate item %d in prefix %v", k, v, got)
			}
			seen[v] = true
		}
	}
}

// With a pre-sized Scratch and enough output capacity, neither the
// truncated nor the rebuilt full-length draw allocates.
func TestPLSampleZeroAlloc(t *testing.T) {
	const n, k = 4096, 16
	logw := make([]float64, n)
	for i := range logw {
		logw[i] = -0.01 * float64(i)
	}
	s := NewScratch(n)
	out := make(perm.Perm, 0, n)
	rng := rand.New(rand.NewSource(5))
	if allocs := testing.AllocsPerRun(200, func() {
		out = SampleTopKInto(logw, k, out, s, rng)
	}); allocs != 0 {
		t.Fatalf("SampleTopKInto allocates %.1f times per draw, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		out = SampleLogWeightsInto(logw, out, s, rng)
	}); allocs != 0 {
		t.Fatalf("SampleLogWeightsInto allocates %.1f times per draw, want 0", allocs)
	}
}

// A zero-value Scratch must work (growing its buffers on first use) so
// callers without sizing information still get correct draws.
func TestPLScratchZeroValue(t *testing.T) {
	const n, k = 30, 6
	logw := make([]float64, n)
	for i := range logw {
		logw[i] = -0.2 * float64(i)
	}
	for seed := int64(0); seed < 3; seed++ {
		full := SampleLogWeights(logw, rand.New(rand.NewSource(seed)))
		var s Scratch
		got := SampleTopKInto(logw, k, nil, &s, rand.New(rand.NewSource(seed)))
		for i := range got {
			if got[i] != full[i] {
				t.Fatalf("seed %d: prefix[%d] = %d, full draw has %d", seed, i, got[i], full[i])
			}
		}
		var s2 Scratch
		fullInto := SampleLogWeightsInto(logw, nil, &s2, rand.New(rand.NewSource(seed)))
		for i := range fullInto {
			if fullInto[i] != full[i] {
				t.Fatalf("seed %d: full-into pos %d = %d, want %d", seed, i, fullInto[i], full[i])
			}
		}
	}
}
