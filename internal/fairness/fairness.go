// Package fairness implements the proportionate-fairness machinery of
// §III-B: protected groups, (α,β) representation constraints, strong and
// weak k-fairness checks, the Two-Sided Infeasible Index, the percentage
// of P-fair positions, and the construction of weakly-fair rankings used
// as the central permutation of the Mallows mechanism.
//
// # Convention
//
// The paper's Definitions 1–3 typeset the α/β inequality inconsistently;
// following Chakraborty et al. (Defs 2.4/2.5), which the paper cites as
// the source, every prefix P under consideration must satisfy, for each
// group Gᵢ:
//
//	⌊αᵢ·|P|⌋ ≤ |P ∩ Gᵢ| ≤ ⌈βᵢ·|P|⌉   with  αᵢ ≤ βᵢ.
package fairness

import "fmt"

// Groups assigns each item of a ground set {0,…,d−1} to one of g
// protected groups {0,…,g−1}.
type Groups struct {
	assign []int
	g      int
}

// NewGroups validates assign (one group id per item) against numGroups.
// Groups may be empty; every id must lie in [0, numGroups).
func NewGroups(assign []int, numGroups int) (*Groups, error) {
	if numGroups < 1 {
		return nil, fmt.Errorf("fairness: numGroups = %d, want ≥ 1", numGroups)
	}
	for item, gid := range assign {
		if gid < 0 || gid >= numGroups {
			return nil, fmt.Errorf("fairness: item %d assigned to group %d, want [0,%d)", item, gid, numGroups)
		}
	}
	return &Groups{assign: append([]int(nil), assign...), g: numGroups}, nil
}

// MustGroups is NewGroups for literals with known-good input.
func MustGroups(assign []int, numGroups int) *Groups {
	gr, err := NewGroups(assign, numGroups)
	if err != nil {
		panic(err)
	}
	return gr
}

// NumGroups returns g.
func (gr *Groups) NumGroups() int { return gr.g }

// NumItems returns the size of the ground set.
func (gr *Groups) NumItems() int { return len(gr.assign) }

// Of returns the group of item.
func (gr *Groups) Of(item int) int { return gr.assign[item] }

// Sizes returns the number of items per group.
func (gr *Groups) Sizes() []int {
	sizes := make([]int, gr.g)
	for _, gid := range gr.assign {
		sizes[gid]++
	}
	return sizes
}

// Members returns the items of each group, in increasing item order.
func (gr *Groups) Members() [][]int {
	members := make([][]int, gr.g)
	for item, gid := range gr.assign {
		members[gid] = append(members[gid], item)
	}
	return members
}

// Shares returns each group's fraction of the ground set.
func (gr *Groups) Shares() []float64 {
	shares := make([]float64, gr.g)
	if len(gr.assign) == 0 {
		return shares
	}
	for _, gid := range gr.assign {
		shares[gid]++
	}
	for i := range shares {
		shares[i] /= float64(len(gr.assign))
	}
	return shares
}

// Subset returns a Groups over a reduced ground set: items[i] of the
// original set becomes item i of the new one. Used when ranking the top-N
// candidates of a larger pool. Duplicate indices are rejected — a
// repeated item would silently double-count its group's mass in every
// downstream share, size, and prefix-count computation.
func (gr *Groups) Subset(items []int) (*Groups, error) {
	assign := make([]int, len(items))
	seen := make(map[int]bool, len(items))
	for i, item := range items {
		if item < 0 || item >= len(gr.assign) {
			return nil, fmt.Errorf("fairness: subset item %d outside ground set of %d", item, len(gr.assign))
		}
		if seen[item] {
			return nil, fmt.Errorf("fairness: subset repeats item %d", item)
		}
		seen[item] = true
		assign[i] = gr.assign[item]
	}
	return &Groups{assign: assign, g: gr.g}, nil
}
