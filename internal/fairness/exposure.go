package fairness

import (
	"fmt"
	"math"

	"repro/internal/perm"
)

// Exposure metrics complement the prefix-count view of P-fairness with
// the position-discount view of the fairness-in-ranking literature the
// paper surveys (Zehlike, Yang, Stoyanovich — "Fairness in Ranking"):
// a rank carries attention proportional to a discount, and a group's
// exposure is the attention its members collect.

// ExposureDiscount maps a 1-based rank to its attention weight.
type ExposureDiscount func(rank int) float64

// LogExposure is the standard 1/log₂(1+rank) attention model (the same
// discount DCG uses).
func LogExposure(rank int) float64 { return 1 / math.Log2(float64(1+rank)) }

// GroupExposure returns each group's share of the total attention of
// the ranking under the discount (entries sum to 1 for non-empty
// rankings). A nil discount means LogExposure.
func GroupExposure(p perm.Perm, gr *Groups, disc ExposureDiscount) ([]float64, error) {
	if gr.NumItems() < len(p) {
		return nil, fmt.Errorf("fairness: groups cover %d items, ranking has %d", gr.NumItems(), len(p))
	}
	if disc == nil {
		disc = LogExposure
	}
	exposure := make([]float64, gr.NumGroups())
	var total float64
	for r, item := range p {
		w := disc(r + 1)
		if w < 0 || math.IsNaN(w) {
			return nil, fmt.Errorf("fairness: discount at rank %d is %v", r+1, w)
		}
		exposure[gr.Of(item)] += w
		total += w
	}
	if total > 0 {
		for g := range exposure {
			exposure[g] /= total
		}
	}
	return exposure, nil
}

// DisparateExposure returns the minimum over groups of
// (exposure share)/(population share) — 1 means every group receives
// attention exactly proportional to its size, smaller values mean the
// worst-off group is under-exposed by that factor. Groups with no
// members are skipped; if every group is empty the ratio is defined
// as 1.
func DisparateExposure(p perm.Perm, gr *Groups, disc ExposureDiscount) (float64, error) {
	exposure, err := GroupExposure(p, gr, disc)
	if err != nil {
		return 0, err
	}
	shares := gr.Shares()
	worst := math.Inf(1)
	for g := range exposure {
		if shares[g] == 0 {
			continue
		}
		ratio := exposure[g] / shares[g]
		if ratio < worst {
			worst = ratio
		}
	}
	if math.IsInf(worst, 1) {
		return 1, nil
	}
	return worst, nil
}

// ExposureGap returns the largest absolute difference between any
// group's exposure share and its population share; 0 means perfectly
// proportional attention.
func ExposureGap(p perm.Perm, gr *Groups, disc ExposureDiscount) (float64, error) {
	exposure, err := GroupExposure(p, gr, disc)
	if err != nil {
		return 0, err
	}
	shares := gr.Shares()
	var gap float64
	for g := range exposure {
		if d := math.Abs(exposure[g] - shares[g]); d > gap {
			gap = d
		}
	}
	return gap, nil
}
