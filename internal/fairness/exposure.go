package fairness

import (
	"fmt"
	"math"

	"repro/internal/perm"
)

// Exposure metrics complement the prefix-count view of P-fairness with
// the position-discount view of the fairness-in-ranking literature the
// paper surveys (Zehlike, Yang, Stoyanovich — "Fairness in Ranking"):
// a rank carries attention proportional to a discount, and a group's
// exposure is the attention its members collect.

// ExposureDiscount maps a 1-based rank to its attention weight.
type ExposureDiscount func(rank int) float64

// LogExposure is the standard 1/log₂(1+rank) attention model (the same
// discount DCG uses).
func LogExposure(rank int) float64 { return 1 / math.Log2(float64(1+rank)) }

// ExposureBaseline selects the reference shares an exposure metric
// compares against. The distinction only matters for prefix rankings
// (len(p) < NumItems): the two baselines coincide on full rankings.
type ExposureBaseline int

const (
	// BaselinePrefix compares each group's exposure share against its
	// share of the ranked items themselves, so the metric isolates
	// position bias: how attention is distributed among the items that
	// were actually ranked. This is the default for DisparateExposure
	// and ExposureGap — historically they compared prefix exposure
	// against full-pool shares, scoring a top-k ranking against a
	// baseline it could not reach even with perfect within-prefix
	// proportionality.
	BaselinePrefix ExposureBaseline = iota
	// BaselinePool compares against each group's share of the whole
	// ground set, conflating selection bias (who made the prefix) with
	// position bias (who sits where). Legitimate when that conflation
	// is the point — e.g. auditing a shortlist against the applicant
	// pool — so it stays available explicitly.
	BaselinePool
)

// GroupExposure returns each group's share of the total attention of
// the ranking under the discount (entries sum to 1 for non-empty
// rankings). A nil discount means LogExposure.
func GroupExposure(p perm.Perm, gr *Groups, disc ExposureDiscount) ([]float64, error) {
	if gr.NumItems() < len(p) {
		return nil, fmt.Errorf("fairness: groups cover %d items, ranking has %d", gr.NumItems(), len(p))
	}
	if disc == nil {
		disc = LogExposure
	}
	exposure := make([]float64, gr.NumGroups())
	var total float64
	for r, item := range p {
		w := disc(r + 1)
		if w < 0 || math.IsNaN(w) {
			return nil, fmt.Errorf("fairness: discount at rank %d is %v", r+1, w)
		}
		exposure[gr.Of(item)] += w
		total += w
	}
	if total > 0 {
		for g := range exposure {
			exposure[g] /= total
		}
	}
	return exposure, nil
}

// baselineShares returns the reference shares of the chosen baseline:
// the whole ground set's composition, or the composition of the ranked
// items themselves.
func baselineShares(p perm.Perm, gr *Groups, baseline ExposureBaseline) ([]float64, error) {
	switch baseline {
	case BaselinePool:
		return gr.Shares(), nil
	case BaselinePrefix:
		shares := make([]float64, gr.NumGroups())
		if len(p) == 0 {
			return shares, nil
		}
		for _, item := range p {
			shares[gr.Of(item)]++
		}
		for g := range shares {
			shares[g] /= float64(len(p))
		}
		return shares, nil
	default:
		return nil, fmt.Errorf("fairness: unknown exposure baseline %d", baseline)
	}
}

// worstExposureRatio returns the minimum exposure/share ratio over
// groups with positive baseline share; 1 when every group is skipped.
func worstExposureRatio(exposure, shares []float64) float64 {
	worst := math.Inf(1)
	for g := range exposure {
		if shares[g] == 0 {
			continue
		}
		ratio := exposure[g] / shares[g]
		if ratio < worst {
			worst = ratio
		}
	}
	if math.IsInf(worst, 1) {
		return 1
	}
	return worst
}

// largestExposureGap returns the largest |exposure − share| over groups.
func largestExposureGap(exposure, shares []float64) float64 {
	var gap float64
	for g := range exposure {
		if d := math.Abs(exposure[g] - shares[g]); d > gap {
			gap = d
		}
	}
	return gap
}

// DisparateExposureAgainst returns the minimum over groups of
// (exposure share)/(baseline share) — 1 means every group receives
// attention exactly proportional to its baseline share, smaller values
// mean the worst-off group is under-exposed by that factor. Groups with
// zero baseline share are skipped; if every group is skipped the ratio
// is defined as 1.
func DisparateExposureAgainst(p perm.Perm, gr *Groups, disc ExposureDiscount, baseline ExposureBaseline) (float64, error) {
	exposure, err := GroupExposure(p, gr, disc)
	if err != nil {
		return 0, err
	}
	shares, err := baselineShares(p, gr, baseline)
	if err != nil {
		return 0, err
	}
	return worstExposureRatio(exposure, shares), nil
}

// DisparateExposure is DisparateExposureAgainst with the
// prefix-consistent baseline: attention is judged against the group
// composition of the ranked items. For full rankings this equals the
// historical pool-share behavior exactly; for prefix rankings the old
// full-pool normalization was a bug (the prefix was scored against
// shares it could not attain) — pass BaselinePool explicitly to keep
// the selection-inclusive reading.
func DisparateExposure(p perm.Perm, gr *Groups, disc ExposureDiscount) (float64, error) {
	return DisparateExposureAgainst(p, gr, disc, BaselinePrefix)
}

// ExposureGapAgainst returns the largest absolute difference between
// any group's exposure share and its baseline share; 0 means perfectly
// proportional attention under that baseline.
func ExposureGapAgainst(p perm.Perm, gr *Groups, disc ExposureDiscount, baseline ExposureBaseline) (float64, error) {
	exposure, err := GroupExposure(p, gr, disc)
	if err != nil {
		return 0, err
	}
	shares, err := baselineShares(p, gr, baseline)
	if err != nil {
		return 0, err
	}
	return largestExposureGap(exposure, shares), nil
}

// ExposureGap is ExposureGapAgainst with the prefix-consistent
// baseline; see DisparateExposure for why the default moved off the
// full-pool shares.
func ExposureGap(p perm.Perm, gr *Groups, disc ExposureDiscount) (float64, error) {
	return ExposureGapAgainst(p, gr, disc, BaselinePrefix)
}
