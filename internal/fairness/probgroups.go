package fairness

import (
	"fmt"
	"math"

	"repro/internal/perm"
)

// ProbGroups is the probabilistic counterpart of Groups: each item of
// the ground set carries a distribution over the g groups instead of a
// single label — the "noisy protected attribute" setting of Mehrotra &
// Vishnoi, where membership is estimated rather than observed.
//
// Every metric over ProbGroups is an expectation of its Groups
// counterpart under independent per-item memberships, computed so that
// a one-hot distribution reproduces the deterministic arithmetic bit
// for bit: one-hot rows contribute exact 1.0/0.0 terms to every sum,
// and float addition of small integers and x+0.0 are exact, so the
// expected prefix counts, shares, and exposures of a one-hot ProbGroups
// are the identical float64 values the Groups path computes. The
// one-hot equivalence suite in probgroups_test.go pins this.
type ProbGroups struct {
	dist [][]float64 // dist[item][g]: membership probability
	g    int
}

// probSumTol bounds how far a membership row's sum may stray from 1
// before it is rejected as non-normalized. Rows inside the tolerance
// are kept exactly as given (no renormalization), preserving one-hot
// bit-identity.
const probSumTol = 1e-9

// NewProbGroups validates the per-item distributions: every row must
// have one entry per group, every entry must be a finite probability in
// [0,1] (no NaN, no negative mass), and each row must sum to 1 within
// probSumTol. Rows are copied.
func NewProbGroups(dist [][]float64, numGroups int) (*ProbGroups, error) {
	if numGroups < 1 {
		return nil, fmt.Errorf("fairness: numGroups = %d, want ≥ 1", numGroups)
	}
	rows := make([][]float64, len(dist))
	for item, row := range dist {
		if len(row) != numGroups {
			return nil, fmt.Errorf("fairness: item %d has %d membership probabilities, want %d", item, len(row), numGroups)
		}
		sum := 0.0
		for g, p := range row {
			if math.IsNaN(p) || p < 0 || p > 1 {
				return nil, fmt.Errorf("fairness: item %d membership probability for group %d is %v, want in [0,1]", item, g, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > probSumTol {
			return nil, fmt.Errorf("fairness: item %d membership sums to %v, want 1", item, sum)
		}
		rows[item] = append([]float64(nil), row...)
	}
	return &ProbGroups{dist: rows, g: numGroups}, nil
}

// MustProbGroups is NewProbGroups for literals with known-good input.
func MustProbGroups(dist [][]float64, numGroups int) *ProbGroups {
	pg, err := NewProbGroups(dist, numGroups)
	if err != nil {
		panic(err)
	}
	return pg
}

// OneHot lifts a deterministic Groups into ProbGroups: item i's row is
// 1 at Of(i) and 0 elsewhere. Every expected metric of the lift equals
// the Groups metric bit for bit.
func OneHot(gr *Groups) *ProbGroups {
	dist := make([][]float64, gr.NumItems())
	for i := range dist {
		row := make([]float64, gr.g)
		row[gr.assign[i]] = 1
		dist[i] = row
	}
	return &ProbGroups{dist: dist, g: gr.g}
}

// NumGroups returns g.
func (pg *ProbGroups) NumGroups() int { return pg.g }

// NumItems returns the size of the ground set.
func (pg *ProbGroups) NumItems() int { return len(pg.dist) }

// P returns item's membership probability for group g.
func (pg *ProbGroups) P(item, g int) float64 { return pg.dist[item][g] }

// Row returns a copy of item's distribution over the groups.
func (pg *ProbGroups) Row(item int) []float64 {
	return append([]float64(nil), pg.dist[item]...)
}

// IsOneHot reports whether every row puts all its mass on one group —
// the regime where ProbGroups reduces exactly to Groups.
func (pg *ProbGroups) IsOneHot() bool {
	for _, row := range pg.dist {
		for _, p := range row {
			if p != 0 && p != 1 {
				return false
			}
		}
	}
	return true
}

// Harden collapses a one-hot ProbGroups back into Groups; ok is false
// when any row carries fractional mass.
func (pg *ProbGroups) Harden() (*Groups, bool) {
	assign := make([]int, len(pg.dist))
	for i, row := range pg.dist {
		hot := -1
		for g, p := range row {
			switch p {
			case 1:
				hot = g
			case 0:
			default:
				return nil, false
			}
		}
		if hot < 0 {
			return nil, false
		}
		assign[i] = hot
	}
	return &Groups{assign: assign, g: pg.g}, true
}

// ExpectedSizes returns the expected number of items per group:
// Σ_items P(item ∈ g).
func (pg *ProbGroups) ExpectedSizes() []float64 {
	sizes := make([]float64, pg.g)
	for _, row := range pg.dist {
		for g, p := range row {
			sizes[g] += p
		}
	}
	return sizes
}

// ExpectedShares returns each group's expected fraction of the ground
// set — the probabilistic Shares. For a one-hot lift this is Shares()
// bit for bit (integer-valued float sums divided by the same count).
func (pg *ProbGroups) ExpectedShares() []float64 {
	shares := pg.ExpectedSizes()
	if len(pg.dist) == 0 {
		return shares
	}
	for g := range shares {
		shares[g] /= float64(len(pg.dist))
	}
	return shares
}

// Subset returns a ProbGroups over a reduced ground set: items[i] of
// the original set becomes item i of the new one. Like Groups.Subset it
// rejects out-of-range and duplicate indices — a repeated item would
// double-count its membership mass in every downstream expectation.
func (pg *ProbGroups) Subset(items []int) (*ProbGroups, error) {
	dist := make([][]float64, len(items))
	seen := make(map[int]bool, len(items))
	for i, item := range items {
		if item < 0 || item >= len(pg.dist) {
			return nil, fmt.Errorf("fairness: subset item %d outside ground set of %d", item, len(pg.dist))
		}
		if seen[item] {
			return nil, fmt.Errorf("fairness: subset repeats item %d", item)
		}
		seen[item] = true
		dist[i] = append([]float64(nil), pg.dist[item]...)
	}
	return &ProbGroups{dist: dist, g: pg.g}, nil
}

// ProportionalProb builds proportional constraints centred on the
// expected shares, widened by tol — the probabilistic Proportional. For
// a one-hot lift the constraints equal Proportional(gr, tol) exactly.
func ProportionalProb(pg *ProbGroups, tol float64) (*Constraints, error) {
	if tol < 0 {
		return nil, fmt.Errorf("fairness: negative tolerance %v", tol)
	}
	shares := pg.ExpectedShares()
	alpha := make([]float64, len(shares))
	beta := make([]float64, len(shares))
	for i, s := range shares {
		alpha[i] = math.Max(0, s-tol)
		beta[i] = math.Min(1, s+tol)
	}
	return NewConstraints(alpha, beta)
}

// ExpectedPrefixCounts returns counts[ell-1][g] = expected number of
// group-g items among the first ell ranks of p, for ell = 1…len(p).
func ExpectedPrefixCounts(p perm.Perm, pg *ProbGroups) ([][]float64, error) {
	if pg.NumItems() < len(p) {
		return nil, fmt.Errorf("fairness: memberships cover %d items, ranking has %d", pg.NumItems(), len(p))
	}
	counts := make([][]float64, len(p))
	running := make([]float64, pg.g)
	for r, item := range p {
		for g, pr := range pg.dist[item] {
			running[g] += pr
		}
		counts[r] = append([]float64(nil), running...)
	}
	return counts, nil
}

// EvaluateExpectedViolations scans every prefix of p against the bound
// table with expected group counts in place of exact ones: prefix ell
// under-represents group g when E[count] < Lower[ell][g] and
// over-represents it when E[count] > Upper[ell][g]. For a one-hot
// ProbGroups the expected counts are exact small integers, so the
// verdicts equal EvaluateViolations' bit for bit; fractional
// memberships yield the natural expected-count relaxation.
func EvaluateExpectedViolations(p perm.Perm, pg *ProbGroups, b *Bounds) (*Violations, error) {
	if b.K() < len(p) {
		return nil, fmt.Errorf("fairness: bounds cover %d prefixes, ranking has %d", b.K(), len(p))
	}
	if pg.NumItems() < len(p) {
		return nil, fmt.Errorf("fairness: memberships cover %d items, ranking has %d", pg.NumItems(), len(p))
	}
	v := &Violations{
		Lower: make([]bool, len(p)),
		Upper: make([]bool, len(p)),
	}
	running := make([]float64, pg.g)
	for r, item := range p {
		for g, pr := range pg.dist[item] {
			running[g] += pr
		}
		for g, cnt := range running {
			if cnt < float64(b.Lower[r][g]) {
				v.Lower[r] = true
			}
			if cnt > float64(b.Upper[r][g]) {
				v.Upper[r] = true
			}
		}
	}
	return v, nil
}

// ExpectedPPfairAt evaluates the probabilistic Definition 4 over the
// first k prefixes: 100·(1 − expected-count violations among prefixes
// 1…k under c / k).
func ExpectedPPfairAt(p perm.Perm, pg *ProbGroups, c *Constraints, k int) (float64, error) {
	if k < 1 || k > len(p) {
		return 0, fmt.Errorf("fairness: k = %d outside [1,%d]", k, len(p))
	}
	v, err := EvaluateExpectedViolations(p, pg, c.Table(len(p)))
	if err != nil {
		return 0, err
	}
	return 100 * (1 - float64(v.TwoSidedAt(k))/float64(k)), nil
}

// ExpectedGroupExposure returns each group's expected share of the
// total attention of the ranking: exposure[g] = Σ_r w(r)·P(p[r] ∈ g)
// normalized by Σ_r w(r). A nil discount means LogExposure. For a
// one-hot ProbGroups this is GroupExposure bit for bit.
func ExpectedGroupExposure(p perm.Perm, pg *ProbGroups, disc ExposureDiscount) ([]float64, error) {
	if pg.NumItems() < len(p) {
		return nil, fmt.Errorf("fairness: memberships cover %d items, ranking has %d", pg.NumItems(), len(p))
	}
	if disc == nil {
		disc = LogExposure
	}
	exposure := make([]float64, pg.g)
	var total float64
	for r, item := range p {
		w := disc(r + 1)
		if w < 0 || math.IsNaN(w) {
			return nil, fmt.Errorf("fairness: discount at rank %d is %v", r+1, w)
		}
		for g, pr := range pg.dist[item] {
			exposure[g] += w * pr
		}
		total += w
	}
	if total > 0 {
		for g := range exposure {
			exposure[g] /= total
		}
	}
	return exposure, nil
}

// expectedBaselineShares returns the reference shares the expected
// exposure is compared against under the chosen baseline: the whole
// ground set's expected shares, or the expected composition of the
// ranked items themselves.
func expectedBaselineShares(p perm.Perm, pg *ProbGroups, baseline ExposureBaseline) ([]float64, error) {
	switch baseline {
	case BaselinePool:
		return pg.ExpectedShares(), nil
	case BaselinePrefix:
		shares := make([]float64, pg.g)
		if len(p) == 0 {
			return shares, nil
		}
		for _, item := range p {
			for g, pr := range pg.dist[item] {
				shares[g] += pr
			}
		}
		for g := range shares {
			shares[g] /= float64(len(p))
		}
		return shares, nil
	default:
		return nil, fmt.Errorf("fairness: unknown exposure baseline %d", baseline)
	}
}

// ExpectedDisparateExposureAgainst is DisparateExposureAgainst in
// expectation: the minimum over groups of (expected exposure
// share)/(expected baseline share), skipping groups with no expected
// mass in the baseline; 1 when every group is skipped.
func ExpectedDisparateExposureAgainst(p perm.Perm, pg *ProbGroups, disc ExposureDiscount, baseline ExposureBaseline) (float64, error) {
	exposure, err := ExpectedGroupExposure(p, pg, disc)
	if err != nil {
		return 0, err
	}
	shares, err := expectedBaselineShares(p, pg, baseline)
	if err != nil {
		return 0, err
	}
	return worstExposureRatio(exposure, shares), nil
}

// ExpectedExposureGapAgainst is ExposureGapAgainst in expectation: the
// largest |expected exposure share − expected baseline share| over the
// groups.
func ExpectedExposureGapAgainst(p perm.Perm, pg *ProbGroups, disc ExposureDiscount, baseline ExposureBaseline) (float64, error) {
	exposure, err := ExpectedGroupExposure(p, pg, disc)
	if err != nil {
		return 0, err
	}
	shares, err := expectedBaselineShares(p, pg, baseline)
	if err != nil {
		return 0, err
	}
	return largestExposureGap(exposure, shares), nil
}
