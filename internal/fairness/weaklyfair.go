package fairness

import (
	"fmt"
	"sort"

	"repro/internal/perm"
)

// WeaklyFairRanking builds an (α,β)-weak k-fair ranking of all items,
// greedily favouring score: the top-k set takes each group's ⌊α_g·k⌋
// best-scored members first, fills the remaining slots with the
// best-scored candidates whose group has not hit ⌈β_g·k⌉, and then both
// the top-k set and the remainder are ordered by non-increasing score.
//
// Weak k-fairness constrains only the *membership* of the k-prefix
// (Definition 2), so score order within it is optimal; the result is the
// NDCG-greedy weakly fair ranking and serves as the central permutation
// for the Mallows mechanism (§IV-A).
//
// scores[i] is the score of item i; the ranking covers all len(scores)
// items. Ties break toward lower item id for determinism.
func WeaklyFairRanking(scores []float64, gr *Groups, c *Constraints, k int) (perm.Perm, error) {
	d := len(scores)
	if gr.NumItems() != d {
		return nil, fmt.Errorf("fairness: %d scores vs %d items in groups", d, gr.NumItems())
	}
	if gr.NumGroups() != c.NumGroups() {
		return nil, fmt.Errorf("fairness: %d groups vs %d constrained groups", gr.NumGroups(), c.NumGroups())
	}
	if k < 1 || k > d {
		return nil, fmt.Errorf("fairness: k = %d outside [1,%d]", k, d)
	}

	sizes := gr.Sizes()
	g := gr.NumGroups()
	need := make([]int, g) // lower bounds at prefix k
	cap_ := make([]int, g) // upper bounds at prefix k, clamped to pool
	sumNeed, sumCap := 0, 0
	for gid := 0; gid < g; gid++ {
		need[gid] = c.LowerAt(gid, k)
		if need[gid] > sizes[gid] {
			return nil, fmt.Errorf("fairness: weak %d-fairness needs %d of group %d but pool has %d",
				k, need[gid], gid, sizes[gid])
		}
		cap_[gid] = c.UpperAt(gid, k)
		if cap_[gid] > sizes[gid] {
			cap_[gid] = sizes[gid]
		}
		sumNeed += need[gid]
		sumCap += cap_[gid]
	}
	if sumNeed > k {
		return nil, fmt.Errorf("fairness: weak %d-fairness lower bounds sum to %d > %d", k, sumNeed, k)
	}
	if sumCap < k {
		return nil, fmt.Errorf("fairness: weak %d-fairness upper bounds admit only %d < %d items", k, sumCap, k)
	}

	// Items by non-increasing score, id-ascending on ties.
	byScore := perm.Identity(d)
	sort.SliceStable(byScore, func(a, b int) bool { return scores[byScore[a]] > scores[byScore[b]] })

	selected := make([]bool, d)
	taken := make([]int, g)
	// Phase 1: per-group lower bounds with each group's best members.
	for _, item := range byScore {
		gid := gr.Of(item)
		if taken[gid] < need[gid] {
			selected[item] = true
			taken[gid]++
		}
	}
	picked := sumNeed
	// Phase 2: fill remaining slots by score, respecting caps.
	for _, item := range byScore {
		if picked == k {
			break
		}
		gid := gr.Of(item)
		if !selected[item] && taken[gid] < cap_[gid] {
			selected[item] = true
			taken[gid]++
			picked++
		}
	}
	if picked != k {
		// Caps admitted ≥ k in aggregate, so phase 2 always fills up.
		return nil, fmt.Errorf("fairness: internal error, selected %d of %d slots", picked, k)
	}

	out := make(perm.Perm, 0, d)
	for _, item := range byScore {
		if selected[item] {
			out = append(out, item)
		}
	}
	for _, item := range byScore {
		if !selected[item] {
			out = append(out, item)
		}
	}
	return out, nil
}
