package fairness

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/perm"
)

func TestGroupExposureSumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	for trial := 0; trial < 50; trial++ {
		d := 1 + rng.Intn(20)
		g := 1 + rng.Intn(4)
		assign := make([]int, d)
		for i := range assign {
			assign[i] = rng.Intn(g)
		}
		gr := MustGroups(assign, g)
		p := perm.Random(d, rng)
		exp, err := GroupExposure(p, gr, nil)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, e := range exp {
			if e < 0 {
				t.Fatalf("negative exposure %v", e)
			}
			sum += e
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("exposure sums to %v", sum)
		}
	}
}

func TestExposureFavorsTopRanks(t *testing.T) {
	// Two singleton groups: the top item's group must receive more
	// exposure than the bottom item's.
	gr := MustGroups([]int{0, 1}, 2)
	exp, err := GroupExposure(perm.Identity(2), gr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if exp[0] <= exp[1] {
		t.Fatalf("top group exposure %v not above bottom %v", exp[0], exp[1])
	}
}

func TestDisparateExposureBounds(t *testing.T) {
	// Segregated ranking: group at the bottom is under-exposed.
	gr := MustGroups([]int{0, 0, 1, 1}, 2)
	seg := perm.Identity(4)
	ratio, err := DisparateExposure(seg, gr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ratio >= 1 || ratio <= 0 {
		t.Fatalf("segregated disparate exposure = %v", ratio)
	}
	// A perfectly balanced two-item ranking per group at alternating
	// positions is closer to 1 than the segregated one.
	alt := perm.MustNew(0, 2, 1, 3)
	ratioAlt, err := DisparateExposure(alt, gr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ratioAlt <= ratio {
		t.Fatalf("alternating ratio %v not above segregated %v", ratioAlt, ratio)
	}
}

func TestExposureGap(t *testing.T) {
	gr := MustGroups([]int{0, 0, 1, 1}, 2)
	gap, err := ExposureGap(perm.Identity(4), gr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if gap <= 0 || gap > 0.5 {
		t.Fatalf("segregated gap = %v", gap)
	}
	// Uniform discount makes exposure equal the population share: gap 0.
	unit := func(int) float64 { return 1 }
	gap, err = ExposureGap(perm.Identity(4), gr, unit)
	if err != nil {
		t.Fatal(err)
	}
	if gap > 1e-12 {
		t.Fatalf("unit-discount gap = %v", gap)
	}
}

func TestExposureErrors(t *testing.T) {
	gr := MustGroups([]int{0}, 1)
	if _, err := GroupExposure(perm.Identity(2), gr, nil); err == nil {
		t.Error("accepted ranking larger than groups")
	}
	bad := func(int) float64 { return math.NaN() }
	if _, err := GroupExposure(perm.Identity(1), gr, bad); err == nil {
		t.Error("accepted NaN discount")
	}
	neg := func(int) float64 { return -1 }
	if _, err := ExposureGap(perm.Identity(1), gr, neg); err == nil {
		t.Error("accepted negative discount")
	}
}

func TestExposureEmptyRanking(t *testing.T) {
	gr := MustGroups([]int{0, 1}, 2)
	exp, err := GroupExposure(perm.Perm{}, gr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if exp[0] != 0 || exp[1] != 0 {
		t.Fatalf("empty ranking exposure = %v", exp)
	}
	// Prefix baseline: an empty ranking has no composition to violate,
	// so the metric is vacuously 1.
	ratio, err := DisparateExposure(perm.Perm{}, gr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ratio != 1 {
		t.Fatalf("empty ranking prefix-baseline disparate exposure = %v, want 1", ratio)
	}
	// Pool baseline: both groups hold population share 0.5 but receive
	// zero exposure → worst ratio 0.
	ratio, err = DisparateExposureAgainst(perm.Perm{}, gr, nil, BaselinePool)
	if err != nil {
		t.Fatal(err)
	}
	if ratio != 0 {
		t.Fatalf("empty ranking pool-baseline disparate exposure = %v, want 0", ratio)
	}
}

func TestExposureBaselinesCoincideOnFullRankings(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 30; trial++ {
		d := 1 + rng.Intn(16)
		g := 1 + rng.Intn(4)
		assign := make([]int, d)
		for i := range assign {
			assign[i] = rng.Intn(g)
		}
		gr := MustGroups(assign, g)
		p := perm.Random(d, rng)
		for _, metric := range []func(perm.Perm, *Groups, ExposureDiscount, ExposureBaseline) (float64, error){
			DisparateExposureAgainst, ExposureGapAgainst,
		} {
			pool, err := metric(p, gr, nil, BaselinePool)
			if err != nil {
				t.Fatal(err)
			}
			prefix, err := metric(p, gr, nil, BaselinePrefix)
			if err != nil {
				t.Fatal(err)
			}
			if pool != prefix {
				t.Fatalf("baselines disagree on a full ranking: pool %v vs prefix %v", pool, prefix)
			}
		}
	}
}

// TestExposurePrefixBaselineRegression pins the bugfix: a top-k prefix
// drawn entirely from one part of the pool used to be scored against
// full-pool shares it could not attain. Both baselines stay available;
// each is pinned to its own exact value here.
func TestExposurePrefixBaselineRegression(t *testing.T) {
	// Pool of 6: items 0–2 group 0, items 3–5 group 1. The prefix ranks
	// items {0, 3} with a unit discount: within the prefix, exposure is
	// exactly proportional to its 50/50 composition.
	gr := MustGroups([]int{0, 0, 0, 1, 1, 1}, 2)
	prefix := perm.Perm{0, 3}
	unit := func(int) float64 { return 1 }

	gap, err := ExposureGap(prefix, gr, unit)
	if err != nil {
		t.Fatal(err)
	}
	if gap != 0 {
		t.Fatalf("prefix-consistent gap = %v, want 0 (attention matches the prefix composition)", gap)
	}
	ratio, err := DisparateExposure(prefix, gr, unit)
	if err != nil {
		t.Fatal(err)
	}
	if ratio != 1 {
		t.Fatalf("prefix-consistent disparate exposure = %v, want 1", ratio)
	}

	// A skewed prefix {0, 1, 3} (two of group 0, one of group 1) under a
	// unit discount is still perfectly position-fair for its own
	// composition, but the pool baseline sees group 1 under-represented:
	// exposure 1/3 against pool share 1/2 → ratio 2/3, gap 1/6.
	skew := perm.Perm{0, 1, 3}
	ratio, err = DisparateExposure(skew, gr, unit)
	if err != nil {
		t.Fatal(err)
	}
	if ratio != 1 {
		t.Fatalf("prefix-consistent disparate exposure of skewed prefix = %v, want 1", ratio)
	}
	ratio, err = DisparateExposureAgainst(skew, gr, unit, BaselinePool)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ratio-2.0/3) > 1e-15 {
		t.Fatalf("pool-baseline disparate exposure of skewed prefix = %v, want 2/3", ratio)
	}
	gap, err = ExposureGapAgainst(skew, gr, unit, BaselinePool)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gap-1.0/6) > 1e-15 {
		t.Fatalf("pool-baseline gap of skewed prefix = %v, want 1/6", gap)
	}
}
