package fairness

import (
	"fmt"
	"math"
)

// Constraints holds per-group proportionate-representation bounds: group
// i must hold at least ⌊Alpha[i]·ℓ⌋ and at most ⌈Beta[i]·ℓ⌉ of every
// constrained prefix of length ℓ.
type Constraints struct {
	Alpha []float64 // lower fractions, one per group
	Beta  []float64 // upper fractions, one per group
}

// NewConstraints validates 0 ≤ α ≤ β ≤ 1 per group.
func NewConstraints(alpha, beta []float64) (*Constraints, error) {
	if len(alpha) != len(beta) {
		return nil, fmt.Errorf("fairness: %d alphas vs %d betas", len(alpha), len(beta))
	}
	if len(alpha) == 0 {
		return nil, fmt.Errorf("fairness: empty constraints")
	}
	for i := range alpha {
		a, b := alpha[i], beta[i]
		if math.IsNaN(a) || math.IsNaN(b) {
			return nil, fmt.Errorf("fairness: group %d has NaN bound", i)
		}
		if a < 0 || b > 1 || a > b {
			return nil, fmt.Errorf("fairness: group %d bounds (α=%v, β=%v) violate 0 ≤ α ≤ β ≤ 1", i, a, b)
		}
	}
	return &Constraints{
		Alpha: append([]float64(nil), alpha...),
		Beta:  append([]float64(nil), beta...),
	}, nil
}

// Proportional builds constraints centred on each group's share of the
// ground set, widened by tol on both sides (clamped into [0,1]).
// tol = 0 yields the strictest proportional representation.
func Proportional(gr *Groups, tol float64) (*Constraints, error) {
	if tol < 0 {
		return nil, fmt.Errorf("fairness: negative tolerance %v", tol)
	}
	shares := gr.Shares()
	alpha := make([]float64, len(shares))
	beta := make([]float64, len(shares))
	for i, s := range shares {
		alpha[i] = math.Max(0, s-tol)
		beta[i] = math.Min(1, s+tol)
	}
	return NewConstraints(alpha, beta)
}

// NumGroups returns the number of groups the constraints cover.
func (c *Constraints) NumGroups() int { return len(c.Alpha) }

// LowerAt returns the minimum count of group g in a prefix of length ell:
// ⌊α_g·ell⌋.
func (c *Constraints) LowerAt(g, ell int) int {
	return int(math.Floor(c.Alpha[g] * float64(ell)))
}

// UpperAt returns the maximum count of group g in a prefix of length ell:
// ⌈β_g·ell⌉.
func (c *Constraints) UpperAt(g, ell int) int {
	return int(math.Ceil(c.Beta[g] * float64(ell)))
}

// Bounds is a materialized table of prefix bounds: Lower[ell-1][g] and
// Upper[ell-1][g] bound the count of group g in the prefix of length ell,
// for ell = 1…k. Rankers consume Bounds rather than Constraints so that
// noisy-constraint variants (§V-C) can perturb the table.
type Bounds struct {
	Lower [][]int
	Upper [][]int
}

// Table materializes the bounds for prefixes of length 1…k.
func (c *Constraints) Table(k int) *Bounds {
	g := len(c.Alpha)
	b := &Bounds{
		Lower: make([][]int, k),
		Upper: make([][]int, k),
	}
	for ell := 1; ell <= k; ell++ {
		lo := make([]int, g)
		hi := make([]int, g)
		for gid := 0; gid < g; gid++ {
			lo[gid] = c.LowerAt(gid, ell)
			hi[gid] = c.UpperAt(gid, ell)
		}
		b.Lower[ell-1] = lo
		b.Upper[ell-1] = hi
	}
	return b
}

// K returns the number of prefix lengths the table covers.
func (b *Bounds) K() int { return len(b.Lower) }

// NumGroups returns the number of groups the table covers; zero for an
// empty table.
func (b *Bounds) NumGroups() int {
	if len(b.Lower) == 0 {
		return 0
	}
	return len(b.Lower[0])
}

// Clone deep-copies the table.
func (b *Bounds) Clone() *Bounds {
	nb := &Bounds{
		Lower: make([][]int, len(b.Lower)),
		Upper: make([][]int, len(b.Upper)),
	}
	for i := range b.Lower {
		nb.Lower[i] = append([]int(nil), b.Lower[i]...)
		nb.Upper[i] = append([]int(nil), b.Upper[i]...)
	}
	return nb
}

// Clamp restores the invariants 0 ≤ Lower ≤ Upper and Lower ≤ ell after a
// perturbation, so that noisy tables remain syntactically usable (they
// may of course still be unsatisfiable together with group sizes).
func (b *Bounds) Clamp() {
	for i := range b.Lower {
		ell := i + 1
		for g := range b.Lower[i] {
			if b.Lower[i][g] < 0 {
				b.Lower[i][g] = 0
			}
			if b.Lower[i][g] > ell {
				b.Lower[i][g] = ell
			}
			if b.Upper[i][g] < b.Lower[i][g] {
				b.Upper[i][g] = b.Lower[i][g]
			}
			if b.Upper[i][g] > ell {
				b.Upper[i][g] = ell
			}
		}
	}
}

// FeasibleForSizes reports whether a ranking of all items can satisfy the
// table given per-group pool sizes: for every prefix length ell the lower
// bounds must be jointly coverable (Σ lower ≤ ell), the upper bounds must
// jointly admit ell items (Σ min(upper, size) ≥ ell), and no group's
// lower bound may exceed its pool.
//
// These conditions are necessary; they are also sufficient for bound
// tables derived from Constraints because ⌊α·ℓ⌋/⌈β·ℓ⌉ grow by at most one
// per step, but arbitrary perturbed tables may pass this check and still
// be infeasible (the DP ranker detects that exactly).
func (b *Bounds) FeasibleForSizes(sizes []int) error {
	if len(sizes) != b.NumGroups() && b.K() > 0 {
		return fmt.Errorf("fairness: %d sizes vs %d groups", len(sizes), b.NumGroups())
	}
	for i := range b.Lower {
		ell := i + 1
		sumLo, sumHi := 0, 0
		for g := range b.Lower[i] {
			if b.Lower[i][g] > sizes[g] {
				return fmt.Errorf("fairness: prefix %d needs %d of group %d but pool has %d",
					ell, b.Lower[i][g], g, sizes[g])
			}
			sumLo += b.Lower[i][g]
			hi := b.Upper[i][g]
			if hi > sizes[g] {
				hi = sizes[g]
			}
			sumHi += hi
		}
		if sumLo > ell {
			return fmt.Errorf("fairness: prefix %d lower bounds sum to %d > %d", ell, sumLo, ell)
		}
		if sumHi < ell {
			return fmt.Errorf("fairness: prefix %d upper bounds admit only %d < %d items", ell, sumHi, ell)
		}
	}
	return nil
}
