package fairness

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/perm"
)

func TestNewProbGroupsValidation(t *testing.T) {
	if _, err := NewProbGroups([][]float64{{0.3, 0.7}, {1, 0}}, 2); err != nil {
		t.Fatal(err)
	}
	bad := []struct {
		name string
		dist [][]float64
		g    int
	}{
		{"zero groups", [][]float64{{1}}, 0},
		{"short row", [][]float64{{1}}, 2},
		{"long row", [][]float64{{0.5, 0.5, 0}}, 2},
		{"NaN mass", [][]float64{{math.NaN(), 1}}, 2},
		{"negative mass", [][]float64{{-0.1, 1.1}}, 2},
		{"above one", [][]float64{{1.2, -0.2}}, 2},
		{"sum below one", [][]float64{{0.3, 0.3}}, 2},
		{"sum above one", [][]float64{{0.8, 0.8}}, 2},
	}
	for _, tc := range bad {
		if _, err := NewProbGroups(tc.dist, tc.g); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestProbGroupsOneHotRoundTrip(t *testing.T) {
	gr := MustGroups([]int{0, 2, 1, 2, 0}, 3)
	pg := OneHot(gr)
	if !pg.IsOneHot() {
		t.Fatal("one-hot lift not reported one-hot")
	}
	back, ok := pg.Harden()
	if !ok {
		t.Fatal("one-hot lift did not harden")
	}
	for i := 0; i < gr.NumItems(); i++ {
		if back.Of(i) != gr.Of(i) {
			t.Fatalf("round trip changed item %d: %d vs %d", i, back.Of(i), gr.Of(i))
		}
	}
	soft := MustProbGroups([][]float64{{0.5, 0.5}}, 2)
	if soft.IsOneHot() {
		t.Error("fractional row reported one-hot")
	}
	if _, ok := soft.Harden(); ok {
		t.Error("fractional row hardened")
	}
}

func TestProbGroupsSubset(t *testing.T) {
	pg := MustProbGroups([][]float64{{1, 0}, {0.25, 0.75}, {0, 1}}, 2)
	sub, err := pg.Subset([]int{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumItems() != 2 || sub.P(0, 1) != 1 || sub.P(1, 0) != 0.25 {
		t.Fatalf("subset wrong: %+v", sub)
	}
	if _, err := pg.Subset([]int{3}); err == nil {
		t.Error("Subset accepted out-of-range item")
	}
	if _, err := pg.Subset([]int{1, 1}); err == nil {
		t.Error("Subset accepted a duplicate item index")
	}
}

// randomGroups draws a random deterministic Groups for the equivalence
// trials.
func randomGroups(rng *rand.Rand) *Groups {
	d := 1 + rng.Intn(24)
	g := 1 + rng.Intn(5)
	assign := make([]int, d)
	for i := range assign {
		assign[i] = rng.Intn(g)
	}
	return MustGroups(assign, g)
}

// TestOneHotEquivalence is the bit-identity suite: every ProbGroups
// metric evaluated on the one-hot lift of a deterministic Groups must
// equal the Groups metric exactly — not approximately — across random
// pools, rankings, prefixes, discounts, and tolerances.
func TestOneHotEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	unit := func(int) float64 { return 1 }
	discounts := []ExposureDiscount{nil, unit, LogExposure}
	for trial := 0; trial < 100; trial++ {
		gr := randomGroups(rng)
		pg := OneHot(gr)
		d := gr.NumItems()

		// Shares and sizes.
		shares, eshares := gr.Shares(), pg.ExpectedShares()
		for g := range shares {
			if shares[g] != eshares[g] {
				t.Fatalf("shares[%d]: %v vs expected %v", g, shares[g], eshares[g])
			}
		}
		sizes, esizes := gr.Sizes(), pg.ExpectedSizes()
		for g := range sizes {
			if float64(sizes[g]) != esizes[g] {
				t.Fatalf("sizes[%d]: %d vs expected %v", g, sizes[g], esizes[g])
			}
		}

		// Constraints from shares.
		tol := rng.Float64() * 0.3
		cons, err := Proportional(gr, tol)
		if err != nil {
			t.Fatal(err)
		}
		pcons, err := ProportionalProb(pg, tol)
		if err != nil {
			t.Fatal(err)
		}
		for g := range cons.Alpha {
			if cons.Alpha[g] != pcons.Alpha[g] || cons.Beta[g] != pcons.Beta[g] {
				t.Fatalf("constraints diverge at group %d: (%v,%v) vs (%v,%v)",
					g, cons.Alpha[g], cons.Beta[g], pcons.Alpha[g], pcons.Beta[g])
			}
		}

		// Rankings: a full ranking and a strict prefix of it.
		full := perm.Random(d, rng)
		prefixLen := 1 + rng.Intn(d)
		prefix := full[:prefixLen]
		for _, p := range []perm.Perm{full, prefix} {
			// Violations and PPfair.
			b := cons.Table(d)
			v, err := EvaluateViolations(p, gr, b)
			if err != nil {
				t.Fatal(err)
			}
			ev, err := EvaluateExpectedViolations(p, pg, b)
			if err != nil {
				t.Fatal(err)
			}
			for i := range v.Lower {
				if v.Lower[i] != ev.Lower[i] || v.Upper[i] != ev.Upper[i] {
					t.Fatalf("violations diverge at prefix %d", i+1)
				}
			}
			k := 1 + rng.Intn(len(p))
			pp, err := PPfairAt(p, gr, cons, k)
			if err != nil {
				t.Fatal(err)
			}
			epp, err := ExpectedPPfairAt(p, pg, cons, k)
			if err != nil {
				t.Fatal(err)
			}
			if pp != epp {
				t.Fatalf("PPfairAt(k=%d): %v vs expected %v", k, pp, epp)
			}

			// Exposure under every discount and both baselines.
			for _, disc := range discounts {
				exp, err := GroupExposure(p, gr, disc)
				if err != nil {
					t.Fatal(err)
				}
				eexp, err := ExpectedGroupExposure(p, pg, disc)
				if err != nil {
					t.Fatal(err)
				}
				for g := range exp {
					if exp[g] != eexp[g] {
						t.Fatalf("exposure[%d]: %v vs expected %v", g, exp[g], eexp[g])
					}
				}
				for _, baseline := range []ExposureBaseline{BaselinePrefix, BaselinePool} {
					de, err := DisparateExposureAgainst(p, gr, disc, baseline)
					if err != nil {
						t.Fatal(err)
					}
					ede, err := ExpectedDisparateExposureAgainst(p, pg, disc, baseline)
					if err != nil {
						t.Fatal(err)
					}
					if de != ede {
						t.Fatalf("disparate exposure (baseline %d): %v vs expected %v", baseline, de, ede)
					}
					gap, err := ExposureGapAgainst(p, gr, disc, baseline)
					if err != nil {
						t.Fatal(err)
					}
					egap, err := ExpectedExposureGapAgainst(p, pg, disc, baseline)
					if err != nil {
						t.Fatal(err)
					}
					if gap != egap {
						t.Fatalf("exposure gap (baseline %d): %v vs expected %v", baseline, gap, egap)
					}
				}
			}
		}
	}
}

func TestExpectedPrefixCounts(t *testing.T) {
	pg := MustProbGroups([][]float64{{0.5, 0.5}, {1, 0}, {0, 1}}, 2)
	counts, err := ExpectedPrefixCounts(perm.Identity(3), pg)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{0.5, 0.5}, {1.5, 0.5}, {1.5, 1.5}}
	for ell := range want {
		for g := range want[ell] {
			if counts[ell][g] != want[ell][g] {
				t.Fatalf("counts[%d][%d] = %v, want %v", ell, g, counts[ell][g], want[ell][g])
			}
		}
	}
	if _, err := ExpectedPrefixCounts(perm.Identity(4), pg); err == nil {
		t.Error("accepted ranking larger than memberships")
	}
}

// TestExpectedViolationsFractional exercises the genuinely probabilistic
// regime: expected counts between the bounds clear constraints a hard
// assignment of the same items could violate.
func TestExpectedViolationsFractional(t *testing.T) {
	// Two items, both 50/50 over two groups: expected prefix counts are
	// (0.5, 0.5) then (1, 1).
	pg := MustProbGroups([][]float64{{0.5, 0.5}, {0.5, 0.5}}, 2)
	cons, err := NewConstraints([]float64{0.4, 0.4}, []float64{0.6, 0.6})
	if err != nil {
		t.Fatal(err)
	}
	// Bounds at ell=1: lower ⌊0.4⌋=0, upper ⌈0.6⌉=1; at ell=2: lower 0,
	// upper 2. Expected counts sit inside everywhere → zero violations.
	v, err := EvaluateExpectedViolations(perm.Identity(2), pg, cons.Table(2))
	if err != nil {
		t.Fatal(err)
	}
	if v.TwoSided() != 0 {
		t.Fatalf("expected violations = %d, want 0", v.TwoSided())
	}
	pp, err := ExpectedPPfairAt(perm.Identity(2), pg, cons, 2)
	if err != nil {
		t.Fatal(err)
	}
	if pp != 100 {
		t.Fatalf("expected PPfair = %v, want 100", pp)
	}
	// Tighten the lower bounds so the fractional counts fall short: with
	// α = 1 for both groups the ell=1 lower bound is ⌊1⌋ = 1, but the
	// expected count of either group after one fractional item is 0.5.
	tight, err := NewConstraints([]float64{1, 1}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	v, err = EvaluateExpectedViolations(perm.Identity(2), pg, tight.Table(2))
	if err != nil {
		t.Fatal(err)
	}
	if v.LowerCount() == 0 {
		t.Fatal("tight lower bounds not violated by fractional expected counts")
	}
}
