package fairness

import (
	"fmt"

	"repro/internal/perm"
)

// PrefixCounts returns counts[ell-1][g] = number of items of group g in
// the first ell ranks of p, for ell = 1…len(p).
func PrefixCounts(p perm.Perm, gr *Groups) [][]int {
	counts := make([][]int, len(p))
	running := make([]int, gr.NumGroups())
	for r, item := range p {
		running[gr.Of(item)]++
		counts[r] = append([]int(nil), running...)
	}
	return counts
}

// Violations holds, per prefix length, whether any group breaches its
// lower or upper bound there.
type Violations struct {
	Lower []bool // Lower[ell-1]: some group under-represented in prefix ell
	Upper []bool // Upper[ell-1]: some group over-represented in prefix ell
}

// EvaluateViolations scans every prefix of p against the bound table.
// The table must cover at least len(p) prefixes.
func EvaluateViolations(p perm.Perm, gr *Groups, b *Bounds) (*Violations, error) {
	if b.K() < len(p) {
		return nil, fmt.Errorf("fairness: bounds cover %d prefixes, ranking has %d", b.K(), len(p))
	}
	if gr.NumItems() < len(p) {
		return nil, fmt.Errorf("fairness: groups cover %d items, ranking has %d", gr.NumItems(), len(p))
	}
	v := &Violations{
		Lower: make([]bool, len(p)),
		Upper: make([]bool, len(p)),
	}
	running := make([]int, gr.NumGroups())
	for r, item := range p {
		running[gr.Of(item)]++
		ell := r
		for g, cnt := range running {
			if cnt < b.Lower[ell][g] {
				v.Lower[ell] = true
			}
			if cnt > b.Upper[ell][g] {
				v.Upper[ell] = true
			}
		}
	}
	return v, nil
}

// LowerCount returns the number of prefixes with a lower-bound violation
// (the paper's LowerViol).
func (v *Violations) LowerCount() int { return countTrue(v.Lower) }

// UpperCount returns the number of prefixes with an upper-bound violation
// (the paper's UpperViol).
func (v *Violations) UpperCount() int { return countTrue(v.Upper) }

// TwoSided returns LowerViol + UpperViol, the paper's Two-Sided
// Infeasible Index (Definition 3). A prefix violating both sides (one
// group under- while another over-represented) contributes 2.
func (v *Violations) TwoSided() int { return v.LowerCount() + v.UpperCount() }

// TwoSidedAt returns the Two-Sided Infeasible Index restricted to the
// first k prefixes — the shortlist-scoped Definition 3 shared by
// PPfairAt and the serving layer's per-response audit.
func (v *Violations) TwoSidedAt(k int) int {
	ii := 0
	for ell := 1; ell <= k && ell <= len(v.Lower); ell++ {
		if v.Lower[ell-1] {
			ii++
		}
		if v.Upper[ell-1] {
			ii++
		}
	}
	return ii
}

// UnionCount returns the number of prefixes with any violation. Unlike
// TwoSided it never exceeds the ranking length.
func (v *Violations) UnionCount() int {
	n := 0
	for i := range v.Lower {
		if v.Lower[i] || v.Upper[i] {
			n++
		}
	}
	return n
}

func countTrue(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}

// TwoSidedInfeasibleIndex evaluates Definition 3 directly with bounds
// derived from c over every prefix of p.
func TwoSidedInfeasibleIndex(p perm.Perm, gr *Groups, c *Constraints) (int, error) {
	v, err := EvaluateViolations(p, gr, c.Table(len(p)))
	if err != nil {
		return 0, err
	}
	return v.TwoSided(), nil
}

// PPfair evaluates Definition 4, the percentage of P-fair positions:
// 100·(1 − TwoSidedInfInd(π)/|π|). Because the two-sided index can reach
// 2|π|, the literal definition can be negative; callers wanting a
// [0,100] quantity should use PPfairUnion.
func PPfair(p perm.Perm, gr *Groups, c *Constraints) (float64, error) {
	if len(p) == 0 {
		return 100, nil
	}
	ii, err := TwoSidedInfeasibleIndex(p, gr, c)
	if err != nil {
		return 0, err
	}
	return 100 * (1 - float64(ii)/float64(len(p))), nil
}

// PPfairAt evaluates Definition 4 over the first k prefixes only:
// 100·(1 − (LowerViol + UpperViol among prefixes 1…k)/k). This is the
// natural audit for shortlist settings where only the top of the
// ranking is consumed.
func PPfairAt(p perm.Perm, gr *Groups, c *Constraints, k int) (float64, error) {
	if k < 1 || k > len(p) {
		return 0, fmt.Errorf("fairness: k = %d outside [1,%d]", k, len(p))
	}
	v, err := EvaluateViolations(p, gr, c.Table(len(p)))
	if err != nil {
		return 0, err
	}
	return 100 * (1 - float64(v.TwoSidedAt(k))/float64(k)), nil
}

// PPfairUnion is the percentage of prefixes with no violation of either
// side; always within [0,100].
func PPfairUnion(p perm.Perm, gr *Groups, c *Constraints) (float64, error) {
	if len(p) == 0 {
		return 100, nil
	}
	v, err := EvaluateViolations(p, gr, c.Table(len(p)))
	if err != nil {
		return 0, err
	}
	return 100 * (1 - float64(v.UnionCount())/float64(len(p))), nil
}

// IsKFair reports whether p is (α,β)-k fair (Definition 1): every prefix
// of length at least k satisfies the bounds.
func IsKFair(p perm.Perm, gr *Groups, c *Constraints, k int) (bool, error) {
	if k < 1 || k > len(p) {
		return false, fmt.Errorf("fairness: k = %d outside [1,%d]", k, len(p))
	}
	v, err := EvaluateViolations(p, gr, c.Table(len(p)))
	if err != nil {
		return false, err
	}
	for ell := k; ell <= len(p); ell++ {
		if v.Lower[ell-1] || v.Upper[ell-1] {
			return false, nil
		}
	}
	return true, nil
}

// IsWeaklyKFair reports whether p is (α,β)-weak k-fair (Definition 2):
// the prefix of length exactly k satisfies the bounds.
func IsWeaklyKFair(p perm.Perm, gr *Groups, c *Constraints, k int) (bool, error) {
	if k < 1 || k > len(p) {
		return false, fmt.Errorf("fairness: k = %d outside [1,%d]", k, len(p))
	}
	counts := make([]int, gr.NumGroups())
	for r := 0; r < k; r++ {
		counts[gr.Of(p[r])]++
	}
	for g, cnt := range counts {
		if cnt < c.LowerAt(g, k) || cnt > c.UpperAt(g, k) {
			return false, nil
		}
	}
	return true, nil
}
