package fairness

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/perm"
)

func TestNewGroupsValidation(t *testing.T) {
	if _, err := NewGroups([]int{0, 1, 0}, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := NewGroups([]int{0, 2}, 2); err == nil {
		t.Error("accepted out-of-range group id")
	}
	if _, err := NewGroups([]int{0, -1}, 2); err == nil {
		t.Error("accepted negative group id")
	}
	if _, err := NewGroups(nil, 0); err == nil {
		t.Error("accepted zero groups")
	}
}

func TestGroupsAccessors(t *testing.T) {
	gr := MustGroups([]int{0, 1, 0, 2, 1, 0}, 3)
	if gr.NumGroups() != 3 || gr.NumItems() != 6 {
		t.Fatalf("NumGroups=%d NumItems=%d", gr.NumGroups(), gr.NumItems())
	}
	sizes := gr.Sizes()
	if sizes[0] != 3 || sizes[1] != 2 || sizes[2] != 1 {
		t.Fatalf("Sizes = %v", sizes)
	}
	shares := gr.Shares()
	if math.Abs(shares[0]-0.5) > 1e-12 || math.Abs(shares[2]-1.0/6) > 1e-12 {
		t.Fatalf("Shares = %v", shares)
	}
	members := gr.Members()
	if len(members[0]) != 3 || members[0][0] != 0 || members[0][1] != 2 || members[0][2] != 5 {
		t.Fatalf("Members[0] = %v", members[0])
	}
	if gr.Of(3) != 2 {
		t.Fatalf("Of(3) = %d", gr.Of(3))
	}
}

func TestGroupsSubset(t *testing.T) {
	gr := MustGroups([]int{0, 1, 0, 1}, 2)
	sub, err := gr.Subset([]int{3, 0})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumItems() != 2 || sub.Of(0) != 1 || sub.Of(1) != 0 {
		t.Fatalf("Subset wrong: %+v", sub)
	}
	if _, err := gr.Subset([]int{4}); err == nil {
		t.Error("Subset accepted out-of-range item")
	}
}

func TestGroupsSubsetRejectsDuplicates(t *testing.T) {
	gr := MustGroups([]int{0, 1, 0, 1}, 2)
	_, err := gr.Subset([]int{1, 2, 1})
	if err == nil {
		t.Fatal("Subset accepted a duplicate item index — its group mass would be double-counted downstream")
	}
	want := "fairness: subset repeats item 1"
	if err.Error() != want {
		t.Fatalf("Subset duplicate error = %q, want %q", err, want)
	}
}

func TestNewConstraintsValidation(t *testing.T) {
	if _, err := NewConstraints([]float64{0.3, 0.2}, []float64{0.6, 0.9}); err != nil {
		t.Fatal(err)
	}
	bad := []struct{ a, b []float64 }{
		{[]float64{0.5}, []float64{0.4}},        // α > β
		{[]float64{-0.1}, []float64{0.5}},       // α < 0
		{[]float64{0.1}, []float64{1.1}},        // β > 1
		{[]float64{0.1, 0.2}, []float64{0.5}},   // length mismatch
		{nil, nil},                              // empty
		{[]float64{math.NaN()}, []float64{0.5}}, // NaN
		{[]float64{0.2}, []float64{math.NaN()}}, // NaN
	}
	for i, c := range bad {
		if _, err := NewConstraints(c.a, c.b); err == nil {
			t.Errorf("case %d accepted invalid constraints", i)
		}
	}
}

func TestProportional(t *testing.T) {
	gr := MustGroups([]int{0, 0, 1, 1}, 2)
	c, err := Proportional(gr, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.Alpha[0]-0.4) > 1e-12 || math.Abs(c.Beta[0]-0.6) > 1e-12 {
		t.Fatalf("Proportional bounds = %v / %v", c.Alpha, c.Beta)
	}
	// Clamping at the edges.
	gr2 := MustGroups([]int{0, 0, 0, 1}, 2)
	c2, err := Proportional(gr2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Beta[0] != 1 || c2.Alpha[1] != 0 {
		t.Fatalf("clamping failed: %v / %v", c2.Alpha, c2.Beta)
	}
	if _, err := Proportional(gr, -0.1); err == nil {
		t.Error("accepted negative tolerance")
	}
}

func TestBoundsTable(t *testing.T) {
	c, _ := NewConstraints([]float64{0.5, 0.5}, []float64{0.5, 0.5})
	b := c.Table(4)
	if b.K() != 4 || b.NumGroups() != 2 {
		t.Fatalf("table shape K=%d g=%d", b.K(), b.NumGroups())
	}
	// ℓ=1: ⌊0.5⌋=0, ⌈0.5⌉=1; ℓ=2: 1,1; ℓ=3: 1,2; ℓ=4: 2,2.
	wantLo := [][]int{{0, 0}, {1, 1}, {1, 1}, {2, 2}}
	wantHi := [][]int{{1, 1}, {1, 1}, {2, 2}, {2, 2}}
	for i := range wantLo {
		for g := 0; g < 2; g++ {
			if b.Lower[i][g] != wantLo[i][g] || b.Upper[i][g] != wantHi[i][g] {
				t.Fatalf("bounds at ℓ=%d: lo=%v hi=%v, want %v %v",
					i+1, b.Lower[i], b.Upper[i], wantLo[i], wantHi[i])
			}
		}
	}
}

func TestBoundsCloneAndClamp(t *testing.T) {
	c, _ := NewConstraints([]float64{0.5}, []float64{0.5})
	b := c.Table(3)
	cl := b.Clone()
	cl.Lower[0][0] = 99
	if b.Lower[0][0] == 99 {
		t.Fatal("Clone aliases the table")
	}
	cl.Upper[0][0] = -5
	cl.Clamp()
	if cl.Lower[0][0] != 1 || cl.Upper[0][0] != 1 {
		t.Fatalf("Clamp gave lo=%d hi=%d", cl.Lower[0][0], cl.Upper[0][0])
	}
}

func TestFeasibleForSizes(t *testing.T) {
	c, _ := NewConstraints([]float64{0.5, 0.5}, []float64{0.5, 0.5})
	b := c.Table(4)
	if err := b.FeasibleForSizes([]int{2, 2}); err != nil {
		t.Fatalf("balanced pools should be feasible: %v", err)
	}
	if err := b.FeasibleForSizes([]int{4, 0}); err == nil {
		t.Fatal("accepted pool that cannot meet group-1 lower bounds")
	}
	if err := b.FeasibleForSizes([]int{2}); err == nil {
		t.Fatal("accepted wrong sizes length")
	}
}

func TestPrefixCounts(t *testing.T) {
	gr := MustGroups([]int{0, 0, 1, 1}, 2)
	p := perm.MustNew(2, 0, 3, 1) // groups 1,0,1,0
	counts := PrefixCounts(p, gr)
	want := [][]int{{0, 1}, {1, 1}, {1, 2}, {2, 2}}
	for i := range want {
		if counts[i][0] != want[i][0] || counts[i][1] != want[i][1] {
			t.Fatalf("counts[%d] = %v, want %v", i, counts[i], want[i])
		}
	}
}

func TestInfeasibleIndexSegregatedRanking(t *testing.T) {
	// Two groups of 5, strict proportional constraints (α=β=0.5).
	// Fully segregated ranking AAAAABBBBB.
	gr := MustGroups([]int{0, 0, 0, 0, 0, 1, 1, 1, 1, 1}, 2)
	c, _ := NewConstraints([]float64{0.5, 0.5}, []float64{0.5, 0.5})
	p := perm.Identity(10)
	v, err := EvaluateViolations(p, gr, c.Table(10))
	if err != nil {
		t.Fatal(err)
	}
	// Hand-computed: prefix ℓ has countA=min(ℓ,5), countB=max(0,ℓ−5).
	// Lower viol when countB < ⌊ℓ/2⌋ or countA < ⌊ℓ/2⌋;
	// upper viol when countA > ⌈ℓ/2⌉ or countB > ⌈ℓ/2⌉.
	wantLower := 0
	wantUpper := 0
	for ell := 1; ell <= 10; ell++ {
		cA := ell
		if cA > 5 {
			cA = 5
		}
		cB := ell - cA
		lo := ell / 2
		hi := (ell + 1) / 2
		if cA < lo || cB < lo {
			wantLower++
		}
		if cA > hi || cB > hi {
			wantUpper++
		}
	}
	if v.LowerCount() != wantLower || v.UpperCount() != wantUpper {
		t.Fatalf("viol = (%d,%d), want (%d,%d)", v.LowerCount(), v.UpperCount(), wantLower, wantUpper)
	}
	if v.TwoSided() != wantLower+wantUpper {
		t.Fatalf("TwoSided = %d", v.TwoSided())
	}
	if v.UnionCount() > 10 {
		t.Fatalf("UnionCount exceeds length: %d", v.UnionCount())
	}
}

func TestAlternatingRankingIsFair(t *testing.T) {
	// ABABABABAB under α=β=0.5 never violates: counts differ by ≤ 1.
	gr := MustGroups([]int{0, 0, 0, 0, 0, 1, 1, 1, 1, 1}, 2)
	c, _ := NewConstraints([]float64{0.5, 0.5}, []float64{0.5, 0.5})
	p := perm.MustNew(0, 5, 1, 6, 2, 7, 3, 8, 4, 9)
	ii, err := TwoSidedInfeasibleIndex(p, gr, c)
	if err != nil {
		t.Fatal(err)
	}
	if ii != 0 {
		t.Fatalf("alternating ranking II = %d, want 0", ii)
	}
	pct, err := PPfair(p, gr, c)
	if err != nil || pct != 100 {
		t.Fatalf("PPfair = %v, %v", pct, err)
	}
	fair, err := IsKFair(p, gr, c, 1)
	if err != nil || !fair {
		t.Fatalf("IsKFair = %v, %v", fair, err)
	}
}

func TestPPfairDefinitions(t *testing.T) {
	gr := MustGroups([]int{0, 0, 1, 1}, 2)
	c, _ := NewConstraints([]float64{0.5, 0.5}, []float64{0.5, 0.5})
	p := perm.Identity(4) // AABB
	// ℓ=1: cA=1 ≤ 1 ok, cB=0 ≥ 0 ok → fine.
	// ℓ=2: cA=2 > 1 upper viol; cB=0 < 1 lower viol.
	// ℓ=3: cA=2 ≤ ⌈1.5⌉=2 ok; cB=1 ≥ ⌊1.5⌋=1 ok.
	// ℓ=4: cA=2 = 2 ok; cB=2 ok.
	v, err := EvaluateViolations(p, gr, c.Table(4))
	if err != nil {
		t.Fatal(err)
	}
	if v.LowerCount() != 1 || v.UpperCount() != 1 {
		t.Fatalf("viol = (%d,%d)", v.LowerCount(), v.UpperCount())
	}
	pct, _ := PPfair(p, gr, c)
	if math.Abs(pct-50) > 1e-12 { // 100·(1−2/4): the two-sided index double counts prefix 2
		t.Fatalf("PPfair = %v", pct)
	}
	pctU, _ := PPfairUnion(p, gr, c)
	if math.Abs(pctU-75) > 1e-12 { // only prefix 2 violated
		t.Fatalf("PPfairUnion = %v", pctU)
	}
}

func TestPPfairAt(t *testing.T) {
	gr := MustGroups([]int{0, 0, 1, 1}, 2)
	c, _ := NewConstraints([]float64{0.5, 0.5}, []float64{0.5, 0.5})
	p := perm.Identity(4) // AABB: only prefix 2 violates (both sides)
	// First 2 prefixes: prefix 2 contributes 2 violations → 100·(1−2/2)=0.
	got, err := PPfairAt(p, gr, c, 2)
	if err != nil || got != 0 {
		t.Fatalf("PPfairAt(2) = %v, %v", got, err)
	}
	// Full length agrees with PPfair.
	full, _ := PPfair(p, gr, c)
	got, err = PPfairAt(p, gr, c, 4)
	if err != nil || got != full {
		t.Fatalf("PPfairAt(4) = %v, want %v (%v)", got, full, err)
	}
	// Prefix 1 alone is clean.
	got, err = PPfairAt(p, gr, c, 1)
	if err != nil || got != 100 {
		t.Fatalf("PPfairAt(1) = %v, %v", got, err)
	}
	if _, err := PPfairAt(p, gr, c, 0); err == nil {
		t.Error("accepted k=0")
	}
	if _, err := PPfairAt(p, gr, c, 5); err == nil {
		t.Error("accepted k>len")
	}
}

func TestPPfairEmptyRanking(t *testing.T) {
	gr := MustGroups([]int{0}, 1)
	c, _ := NewConstraints([]float64{0}, []float64{1})
	pct, err := PPfair(perm.Perm{}, gr, c)
	if err != nil || pct != 100 {
		t.Fatalf("PPfair(empty) = %v, %v", pct, err)
	}
}

func TestIsWeaklyKFair(t *testing.T) {
	gr := MustGroups([]int{0, 0, 1, 1}, 2)
	c, _ := NewConstraints([]float64{0.5, 0.5}, []float64{0.5, 0.5})
	p := perm.MustNew(0, 1, 2, 3) // AABB
	// k=2 prefix = AA: group 1 count 0 < ⌊1⌋ → not weakly fair.
	ok, err := IsWeaklyKFair(p, gr, c, 2)
	if err != nil || ok {
		t.Fatalf("weak 2-fair = %v, %v", ok, err)
	}
	// k=4 prefix holds everything: 2,2 within bounds.
	ok, err = IsWeaklyKFair(p, gr, c, 4)
	if err != nil || !ok {
		t.Fatalf("weak 4-fair = %v, %v", ok, err)
	}
	if _, err := IsWeaklyKFair(p, gr, c, 0); err == nil {
		t.Error("accepted k=0")
	}
	if _, err := IsWeaklyKFair(p, gr, c, 5); err == nil {
		t.Error("accepted k>len")
	}
}

func TestIsKFairStrongVsWeak(t *testing.T) {
	gr := MustGroups([]int{0, 0, 1, 1}, 2)
	c, _ := NewConstraints([]float64{0.5, 0.5}, []float64{0.5, 0.5})
	p := perm.MustNew(0, 1, 2, 3) // AABB: weakly 4-fair but prefix 2,3 violate
	strong, err := IsKFair(p, gr, c, 2)
	if err != nil || strong {
		t.Fatalf("IsKFair(2) = %v, %v", strong, err)
	}
	strong, err = IsKFair(p, gr, c, 4)
	if err != nil || !strong {
		t.Fatalf("IsKFair(4) = %v, %v", strong, err)
	}
}

func TestEvaluateViolationsErrors(t *testing.T) {
	gr := MustGroups([]int{0, 1}, 2)
	c, _ := NewConstraints([]float64{0, 0}, []float64{1, 1})
	if _, err := EvaluateViolations(perm.Identity(2), gr, c.Table(1)); err == nil {
		t.Error("accepted short bounds table")
	}
	if _, err := EvaluateViolations(perm.Identity(3), gr, c.Table(3)); err == nil {
		t.Error("accepted groups smaller than ranking")
	}
}

func TestWeaklyFairRankingBasic(t *testing.T) {
	// Group A items 0-4 (high scores), group B items 5-9 (low scores).
	scores := []float64{10, 9, 8, 7, 6, 5, 4, 3, 2, 1}
	gr := MustGroups([]int{0, 0, 0, 0, 0, 1, 1, 1, 1, 1}, 2)
	c, _ := NewConstraints([]float64{0.4, 0.4}, []float64{0.6, 0.6})
	k := 10
	p, err := WeaklyFairRanking(scores, gr, c, k)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	ok, err := IsWeaklyKFair(p, gr, c, k)
	if err != nil || !ok {
		t.Fatalf("constructed ranking not weakly %d-fair: %v %v (p=%v)", k, ok, err, p)
	}
	// With k = d the whole set is the prefix; the score-sorted order must
	// survive inside the prefix (identity here).
	if !p.Equal(perm.Identity(10)) {
		t.Fatalf("k=d should give the score order, got %v", p)
	}
}

func TestWeaklyFairRankingPromotesMinority(t *testing.T) {
	// Minority group B has the lowest scores; weak 4-fairness with
	// α_B = 0.5 must pull two B items into the top 4.
	scores := []float64{10, 9, 8, 7, 2, 1}
	gr := MustGroups([]int{0, 0, 0, 0, 1, 1}, 2)
	c, _ := NewConstraints([]float64{0.5, 0.5}, []float64{0.5, 0.5})
	p, err := WeaklyFairRanking(scores, gr, c, 4)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := IsWeaklyKFair(p, gr, c, 4)
	if err != nil || !ok {
		t.Fatalf("not weakly 4-fair: %v %v (p=%v)", ok, err, p)
	}
	// Top-4 must contain items 4 and 5; among selected, score order.
	top := map[int]bool{p[0]: true, p[1]: true, p[2]: true, p[3]: true}
	if !top[4] || !top[5] {
		t.Fatalf("minority items not promoted: %v", p)
	}
	// Expected: selected set {0,1,4,5} ordered 0,1,4,5; rest 2,3.
	want := perm.MustNew(0, 1, 4, 5, 2, 3)
	if !p.Equal(want) {
		t.Fatalf("ranking = %v, want %v", p, want)
	}
}

func TestWeaklyFairRankingInfeasible(t *testing.T) {
	scores := []float64{3, 2, 1}
	gr := MustGroups([]int{0, 0, 0}, 1)
	// Demand at least 80% of a group that is 100% of the pool is fine;
	// demand an upper bound of 0% makes k items impossible.
	cBad, _ := NewConstraints([]float64{0, 0}[:1], []float64{0, 0}[:1])
	if _, err := WeaklyFairRanking(scores, gr, cBad, 2); err == nil {
		t.Fatal("accepted upper bounds that admit no items")
	}
	// Lower bound above pool size: group 1 needs ⌊0.9·3⌋ = 2 but has 1.
	gr2 := MustGroups([]int{0, 0, 1}, 2)
	c2, _ := NewConstraints([]float64{0.9, 0.9}, []float64{1, 1})
	if _, err := WeaklyFairRanking(scores, gr2, c2, 3); err == nil {
		t.Fatal("accepted lower bound exceeding pool")
	}
	// k out of range.
	cOK, _ := NewConstraints([]float64{0}, []float64{1})
	if _, err := WeaklyFairRanking(scores, gr, cOK, 0); err == nil {
		t.Fatal("accepted k=0")
	}
	if _, err := WeaklyFairRanking(scores, gr, cOK, 4); err == nil {
		t.Fatal("accepted k>d")
	}
	// Mismatched sizes.
	if _, err := WeaklyFairRanking(scores[:2], gr, cOK, 1); err == nil {
		t.Fatal("accepted scores/groups mismatch")
	}
	if _, err := WeaklyFairRanking(scores, gr, c2, 1); err == nil {
		t.Fatal("accepted groups/constraints mismatch")
	}
}

func TestWeaklyFairRankingRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	for trial := 0; trial < 100; trial++ {
		d := 4 + rng.Intn(30)
		g := 2 + rng.Intn(3)
		assign := make([]int, d)
		for i := range assign {
			assign[i] = rng.Intn(g)
		}
		gr, err := NewGroups(assign, g)
		if err != nil {
			t.Fatal(err)
		}
		// Ensure every group nonempty to keep shares sane.
		scores := make([]float64, d)
		for i := range scores {
			scores[i] = rng.Float64()
		}
		c, err := Proportional(gr, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		k := 1 + rng.Intn(d)
		p, err := WeaklyFairRanking(scores, gr, c, k)
		if err != nil {
			continue // infeasible draws are fine; construction must not lie
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("invalid perm: %v", err)
		}
		ok, err := IsWeaklyKFair(p, gr, c, k)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("claimed weakly fair but is not: d=%d g=%d k=%d p=%v", d, g, k, p)
		}
	}
}
