package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/fairness"
	"repro/internal/mallows"
	"repro/internal/perm"
	"repro/internal/quality"
	"repro/internal/stats"
)

// ScoreGapConfig parameterizes the second experiment (§V-B): two equal
// groups of GroupSize individuals with scores S₁ ~ U(0,1) and
// S₂ ~ U(δ, 1+δ), rankings sorted by descending score.
type ScoreGapConfig struct {
	Seed       int64
	GroupSize  int       // paper: 5 per group
	Deltas     []float64 // difference in score means (paper: 0.0…1.0 step 0.1)
	Thetas     []float64 // dispersion grid for Figs. 3 and 4
	Reps       int       // score redraws per δ
	Samples    int       // Mallows draws per (δ, θ) and score draw
	BootstrapN int
	Confidence float64
}

// DefaultScoreGapConfig mirrors the paper's setup.
func DefaultScoreGapConfig() ScoreGapConfig {
	deltas := make([]float64, 11)
	for i := range deltas {
		deltas[i] = float64(i) / 10
	}
	return ScoreGapConfig{
		Seed:       2,
		GroupSize:  5,
		Deltas:     deltas,
		Thetas:     []float64{0.1, 0.25, 0.5, 1, 2, 3, 5},
		Reps:       60,
		Samples:    25,
		BootstrapN: 1000,
		Confidence: 0.95,
	}
}

func (c ScoreGapConfig) validate() error {
	if c.GroupSize < 1 {
		return fmt.Errorf("experiments: group size %d", c.GroupSize)
	}
	if len(c.Deltas) == 0 {
		return fmt.Errorf("experiments: no deltas")
	}
	if c.Reps < 2 || c.BootstrapN < 1 {
		return fmt.Errorf("experiments: reps/bootstrap too small")
	}
	if c.Confidence <= 0 || c.Confidence >= 1 {
		return fmt.Errorf("experiments: confidence %v", c.Confidence)
	}
	return nil
}

// drawScores samples the §V-B score model: group 0 gets U(0,1), group 1
// gets U(δ, 1+δ).
func drawScores(d int, delta float64, rng *rand.Rand) quality.Scores {
	s := make(quality.Scores, d)
	for i := 0; i < d/2; i++ {
		s[i] = rng.Float64()
	}
	for i := d / 2; i < d; i++ {
		s[i] = delta + rng.Float64()
	}
	return s
}

// Fig2 reproduces Fig. 2: the Infeasible Index of the score-sorted
// central ranking as a function of the group mean gap δ, with bootstrap
// confidence intervals over score redraws.
func Fig2(cfg ScoreGapConfig) (*Figure, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := 2 * cfg.GroupSize
	gr, c := twoEqualGroups(d)

	series := Series{Label: "central II (mean)"}
	for _, delta := range cfg.Deltas {
		iis := make([]float64, cfg.Reps)
		for r := range iis {
			scores := drawScores(d, delta, rng)
			central := quality.Ideal(perm.Identity(d), scores)
			ii, err := fairness.TwoSidedInfeasibleIndex(central, gr, c)
			if err != nil {
				return nil, err
			}
			iis[r] = float64(ii)
		}
		iv, err := stats.BootstrapMean(iis, cfg.BootstrapN, cfg.Confidence, rng)
		if err != nil {
			return nil, err
		}
		series.Points = append(series.Points, Point{X: delta, Y: iv.Point, Lo: iv.Lo, Hi: iv.Hi})
	}
	return &Figure{
		ID:     "fig2",
		Title:  "Infeasible Index of the score-sorted central ranking vs group mean gap",
		XLabel: "delta",
		YLabel: "infeasible index",
		Panels: []Panel{{Title: "two equal groups of 5", Series: []Series{series}}},
	}, nil
}

// Fig3 reproduces Fig. 3: per δ, the mean Infeasible Index of Mallows
// samples around the score-sorted central as a function of θ.
func Fig3(cfg ScoreGapConfig) (*Figure, error) {
	return scoreGapSweep(cfg, "fig3",
		"Mallows randomization vs Infeasible Index (score-sorted centrals)",
		"infeasible index",
		func(p perm.Perm, _ quality.Scores, gr *fairness.Groups, c *fairness.Constraints) (float64, error) {
			ii, err := fairness.TwoSidedInfeasibleIndex(p, gr, c)
			return float64(ii), err
		},
		func(central perm.Perm, _ quality.Scores, gr *fairness.Groups, c *fairness.Constraints) (float64, error) {
			ii, err := fairness.TwoSidedInfeasibleIndex(central, gr, c)
			return float64(ii), err
		},
	)
}

// Fig4 reproduces Fig. 4: per δ, the mean NDCG of Mallows samples as a
// function of θ (the central ranking's NDCG is 1 by construction).
func Fig4(cfg ScoreGapConfig) (*Figure, error) {
	return scoreGapSweep(cfg, "fig4",
		"Mallows randomization vs NDCG (score-sorted centrals)",
		"ndcg",
		func(p perm.Perm, s quality.Scores, _ *fairness.Groups, _ *fairness.Constraints) (float64, error) {
			return quality.NDCG(p, s, len(p))
		},
		nil,
	)
}

// scoreGapSweep is the shared Fig. 3/4 engine: panels per δ, X = θ,
// Y = mean of metric over score redraws × Mallows samples. refMetric, if
// non-nil, adds a flat reference series evaluated on the central
// ranking (averaged over redraws).
func scoreGapSweep(
	cfg ScoreGapConfig,
	id, title, ylabel string,
	metric func(perm.Perm, quality.Scores, *fairness.Groups, *fairness.Constraints) (float64, error),
	refMetric func(perm.Perm, quality.Scores, *fairness.Groups, *fairness.Constraints) (float64, error),
) (*Figure, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(cfg.Thetas) == 0 {
		return nil, fmt.Errorf("experiments: %s needs thetas", id)
	}
	if cfg.Samples < 1 {
		return nil, fmt.Errorf("experiments: %s needs samples", id)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := 2 * cfg.GroupSize
	gr, c := twoEqualGroups(d)

	fig := &Figure{ID: id, Title: title, XLabel: "theta", YLabel: ylabel}
	for _, delta := range cfg.Deltas {
		// Redraw scores (and centrals) once per rep, reused across θ so
		// the θ-sweep is paired.
		scoreDraws := make([]quality.Scores, cfg.Reps)
		centrals := make([]perm.Perm, cfg.Reps)
		var refTotal float64
		for r := 0; r < cfg.Reps; r++ {
			scoreDraws[r] = drawScores(d, delta, rng)
			centrals[r] = quality.Ideal(perm.Identity(d), scoreDraws[r])
			if refMetric != nil {
				v, err := refMetric(centrals[r], scoreDraws[r], gr, c)
				if err != nil {
					return nil, err
				}
				refTotal += v
			}
		}
		sample := Series{Label: "samples (mean)"}
		var ref *Series
		if refMetric != nil {
			ref = &Series{Label: "central (mean)"}
		}
		for _, theta := range cfg.Thetas {
			var values []float64
			for r := 0; r < cfg.Reps; r++ {
				model, err := mallows.New(centrals[r], theta)
				if err != nil {
					return nil, err
				}
				for i := 0; i < cfg.Samples; i++ {
					v, err := metric(model.Sample(rng), scoreDraws[r], gr, c)
					if err != nil {
						return nil, err
					}
					values = append(values, v)
				}
			}
			iv, err := stats.BootstrapMean(values, cfg.BootstrapN, cfg.Confidence, rng)
			if err != nil {
				return nil, err
			}
			sample.Points = append(sample.Points, Point{X: theta, Y: iv.Point, Lo: iv.Lo, Hi: iv.Hi})
			if ref != nil {
				m := refTotal / float64(cfg.Reps)
				ref.Points = append(ref.Points, Point{X: theta, Y: m, Lo: m, Hi: m})
			}
		}
		panel := Panel{Title: fmt.Sprintf("delta = %.1f", delta), Series: []Series{sample}}
		if ref != nil {
			panel.Series = append(panel.Series, *ref)
		}
		fig.Panels = append(fig.Panels, panel)
	}
	return fig, nil
}
