package experiments

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"runtime"
	"strconv"
	"sync"

	"repro/internal/dataset"
	"repro/internal/fairness"
	"repro/internal/quality"
	"repro/internal/rankers"
	"repro/internal/stats"
)

// GermanConfig parameterizes the German Credit experiment (§V-C):
// rankings of the top-N applicants by credit amount, post-processed by
// five algorithms with representation constraints on the known Age–Sex
// attribute, and evaluated for P-fairness against both the known
// attribute (Fig. 5) and the withheld Housing attribute (Fig. 6), plus
// output quality (Fig. 7).
type GermanConfig struct {
	Seed       int64
	Sizes      []int     // ranking sizes (paper: 10…100 step 10)
	Reps       int       // repetitions per cell (paper: 15)
	Thetas     []float64 // Mallows dispersions per panel (paper: 0.5, 1)
	Sigmas     []float64 // constraint noise per panel (paper: 0, 1)
	CentralK   int       // k of the weakly fair central ranking
	BestOf     int       // Mallows best-of-m arm (paper: 15)
	Tolerance  float64   // representation tolerance around each group's share
	BootstrapN int
	Confidence float64
}

// DefaultGermanConfig mirrors the paper's setup.
func DefaultGermanConfig() GermanConfig {
	return GermanConfig{
		Seed:       3,
		Sizes:      []int{10, 20, 30, 40, 50, 60, 70, 80, 90, 100},
		Reps:       15,
		Thetas:     []float64{0.5, 1},
		Sigmas:     []float64{0, 1},
		CentralK:   10,
		BestOf:     15,
		Tolerance:  0.1,
		BootstrapN: 1000,
		Confidence: 0.95,
	}
}

func (c GermanConfig) validate() error {
	if len(c.Sizes) == 0 || len(c.Thetas) == 0 || len(c.Sigmas) == 0 {
		return fmt.Errorf("experiments: german config needs sizes, thetas, sigmas")
	}
	for _, n := range c.Sizes {
		if n < 2 || n > 1000 {
			return fmt.Errorf("experiments: german size %d outside [2,1000]", n)
		}
	}
	if c.Reps < 2 || c.BestOf < 1 || c.CentralK < 1 || c.BootstrapN < 1 {
		return fmt.Errorf("experiments: german reps/bestof/centralk/bootstrap too small")
	}
	if c.Tolerance < 0 {
		return fmt.Errorf("experiments: german tolerance %v", c.Tolerance)
	}
	if c.Confidence <= 0 || c.Confidence >= 1 {
		return fmt.Errorf("experiments: german confidence %v", c.Confidence)
	}
	return nil
}

// GermanResult bundles everything §V-C reports.
type GermanResult struct {
	TableI *Table
	Fig5   *Figure // median PPfair w.r.t. Age–Sex (known attribute)
	Fig6   *Figure // median PPfair w.r.t. Housing (unknown attribute)
	Fig7   *Figure // mean NDCG ± 1 std
}

// Table1 renders the Age–Sex × Housing contingency table of the dataset
// (the paper's Table I).
func Table1(ds *dataset.Dataset) *Table {
	tab := ds.CrossTab()
	t := &Table{
		ID:     "table1",
		Title:  "Distribution of groups defined by Age, Sex, and Housing",
		Header: []string{"Age-Sex", "free", "own", "rent", "Total"},
	}
	colTotals := make([]int, dataset.NumHousing)
	grand := 0
	for a := dataset.AgeSex(0); a < dataset.NumAgeSex; a++ {
		rowTotal := 0
		row := []string{a.String()}
		for h := dataset.Housing(0); h < dataset.NumHousing; h++ {
			row = append(row, strconv.Itoa(tab[a][h]))
			rowTotal += tab[a][h]
			colTotals[h] += tab[a][h]
		}
		row = append(row, strconv.Itoa(rowTotal))
		grand += rowTotal
		t.Rows = append(t.Rows, row)
	}
	totalRow := []string{"Total"}
	for _, v := range colTotals {
		totalRow = append(totalRow, strconv.Itoa(v))
	}
	totalRow = append(totalRow, strconv.Itoa(grand))
	t.Rows = append(t.Rows, totalRow)
	return t
}

// German runs the full §V-C experiment and produces Table I and
// Figs. 5–7.
func German(cfg GermanConfig) (*GermanResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	ds := dataset.SyntheticGermanCredit(rand.New(rand.NewSource(cfg.Seed)))

	res := &GermanResult{
		TableI: Table1(ds),
		Fig5: &Figure{
			ID: "fig5", Title: "Median % of P-fair positions w.r.t. Age-Sex (known attribute)",
			XLabel: "ranking size", YLabel: "median PPfair (Age-Sex)",
		},
		Fig6: &Figure{
			ID: "fig6", Title: "Median % of P-fair positions w.r.t. Housing (unknown attribute)",
			XLabel: "ranking size", YLabel: "median PPfair (Housing)",
		},
		Fig7: &Figure{
			ID: "fig7", Title: "Mean NDCG of output rankings (±1 std as the band)",
			XLabel: "ranking size", YLabel: "ndcg",
		},
	}

	// Cells are embarrassingly parallel: each (arm, size) cell derives
	// its own seed from the arm's name, so an arm's results are
	// independent of every other cell's randomness consumption and the
	// output is bit-identical whether cells run serially or concurrently.
	// (Because Mallows arm names carry θ but not σ, their rows also
	// repeat exactly across σ-panels, as they should.)
	type cellJob struct {
		arm           rankers.Ranker
		size          int
		known, unk, q *Point // result slots inside the series
	}
	var jobs []cellJob

	for _, theta := range cfg.Thetas {
		for _, sigma := range cfg.Sigmas {
			panelTitle := fmt.Sprintf("theta = %g, sigma = %g", theta, sigma)
			arms := []rankers.Ranker{
				rankers.DetConstSort{Sigma: sigma},
				rankers.ApproxMultiValuedIPF{Sigma: sigma},
				rankers.ILPRanker{Sigma: sigma},
				rankers.Mallows{Theta: theta, Samples: 1, Criterion: rankers.SelectFirst},
				rankers.Mallows{Theta: theta, Samples: cfg.BestOf, Criterion: rankers.SelectNDCG},
			}
			p5 := Panel{Title: panelTitle}
			p6 := Panel{Title: panelTitle}
			p7 := Panel{Title: panelTitle}
			for _, arm := range arms {
				s5 := Series{Label: arm.Name(), Points: make([]Point, len(cfg.Sizes))}
				s6 := Series{Label: arm.Name(), Points: make([]Point, len(cfg.Sizes))}
				s7 := Series{Label: arm.Name(), Points: make([]Point, len(cfg.Sizes))}
				for si, size := range cfg.Sizes {
					jobs = append(jobs, cellJob{
						arm: arm, size: size,
						known: &s5.Points[si], unk: &s6.Points[si], q: &s7.Points[si],
					})
				}
				p5.Series = append(p5.Series, s5)
				p6.Series = append(p6.Series, s6)
				p7.Series = append(p7.Series, s7)
			}
			res.Fig5.Panels = append(res.Fig5.Panels, p5)
			res.Fig6.Panels = append(res.Fig6.Panels, p6)
			res.Fig7.Panels = append(res.Fig7.Panels, p7)
		}
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > len(jobs) {
		workers = len(jobs)
	}
	jobCh := make(chan cellJob)
	errCh := make(chan error, len(jobs))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range jobCh {
				rng := rand.New(rand.NewSource(cellSeed(cfg.Seed, job.arm.Name(), job.size)))
				cell, err := germanCell(ds, job.arm, job.size, cfg, rng)
				if err != nil {
					errCh <- fmt.Errorf("experiments: %s at size %d: %w", job.arm.Name(), job.size, err)
					continue
				}
				*job.known, *job.unk, *job.q = cell.known, cell.unknown, cell.ndcg
			}
		}()
	}
	for _, job := range jobs {
		jobCh <- job
	}
	close(jobCh)
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		return nil, err
	}
	return res, nil
}

// cellSeed derives a stable per-cell seed from the configured seed, the
// arm name, and the ranking size.
func cellSeed(seed int64, arm string, size int) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%d", seed, arm, size)
	return int64(h.Sum64())
}

// cellResult carries the three aggregated metrics for one
// (arm, size, panel) cell.
type cellResult struct {
	known   Point // median PPfair w.r.t. Age-Sex + bootstrap CI
	unknown Point // median PPfair w.r.t. Housing + bootstrap CI
	ndcg    Point // mean NDCG ± std
}

// germanCell runs one (arm, size) cell: build the top-N candidate pool,
// the weakly fair central ranking on the known attribute, post-process
// cfg.Reps times, and aggregate the three metrics.
func germanCell(ds *dataset.Dataset, arm rankers.Ranker, size int, cfg GermanConfig, rng *rand.Rand) (cellResult, error) {
	sub, err := ds.TopByAmount(size)
	if err != nil {
		return cellResult{}, err
	}
	scores := quality.Scores(sub.Scores())
	known, err := fairness.NewGroups(sub.AgeSexAssign(), int(dataset.NumAgeSex))
	if err != nil {
		return cellResult{}, err
	}
	unknown, err := fairness.NewGroups(sub.HousingAssign(), int(dataset.NumHousing))
	if err != nil {
		return cellResult{}, err
	}
	cKnown, err := fairness.Proportional(known, cfg.Tolerance)
	if err != nil {
		return cellResult{}, err
	}
	cUnknown, err := fairness.Proportional(unknown, cfg.Tolerance)
	if err != nil {
		return cellResult{}, err
	}
	k := cfg.CentralK
	if k > size {
		k = size
	}
	central, err := fairness.WeaklyFairRanking(scores, known, cKnown, k)
	if err != nil {
		return cellResult{}, fmt.Errorf("building weakly fair central: %w", err)
	}
	in := rankers.Instance{
		Initial: central,
		Scores:  scores,
		Groups:  known,
		Bounds:  cKnown.Table(size),
	}

	ppKnown := make([]float64, 0, cfg.Reps)
	ppUnknown := make([]float64, 0, cfg.Reps)
	ndcgs := make([]float64, 0, cfg.Reps)
	for rep := 0; rep < cfg.Reps; rep++ {
		out, err := arm.Rank(in, rng)
		if err != nil {
			return cellResult{}, err
		}
		pk, err := fairness.PPfair(out, known, cKnown)
		if err != nil {
			return cellResult{}, err
		}
		pu, err := fairness.PPfair(out, unknown, cUnknown)
		if err != nil {
			return cellResult{}, err
		}
		nd, err := quality.NDCG(out, scores, size)
		if err != nil {
			return cellResult{}, err
		}
		ppKnown = append(ppKnown, pk)
		ppUnknown = append(ppUnknown, pu)
		ndcgs = append(ndcgs, nd)
	}

	ivK, err := stats.BootstrapMedian(ppKnown, cfg.BootstrapN, cfg.Confidence, rng)
	if err != nil {
		return cellResult{}, err
	}
	ivU, err := stats.BootstrapMedian(ppUnknown, cfg.BootstrapN, cfg.Confidence, rng)
	if err != nil {
		return cellResult{}, err
	}
	mean := stats.Mean(ndcgs)
	std := stats.StdDev(ndcgs)
	x := float64(size)
	return cellResult{
		known:   Point{X: x, Y: ivK.Point, Lo: ivK.Lo, Hi: ivK.Hi},
		unknown: Point{X: x, Y: ivU.Point, Lo: ivU.Lo, Hi: ivU.Hi},
		ndcg:    Point{X: x, Y: mean, Lo: mean - std, Hi: mean + std},
	}, nil
}
