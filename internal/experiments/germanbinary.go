package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/fairness"
	"repro/internal/quality"
	"repro/internal/rankdist"
	"repro/internal/rankers"
	"repro/internal/stats"
)

// GermanBinary is an extension experiment beyond the paper: the §V-C
// setup restricted to the binary Sex attribute, where Wei et al.'s
// GrBinaryIPF computes the exact Kendall-tau-optimal fair ranking and
// can join the comparison. The figure reports, per ranking size, the
// median PPfair w.r.t. Sex and the mean Kendall tau distance to the
// initial ranking (the efficiency objective GrBinaryIPF optimizes) for
// GrBinaryIPF, ApproxMultiValuedIPF, the ILP, the Mallows arms, and a
// Plackett–Luce arm (the §VI beyond-Mallows mechanism).
func GermanBinary(cfg GermanConfig) (*Figure, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(cfg.Thetas) == 0 {
		return nil, fmt.Errorf("experiments: german-binary needs a theta")
	}
	theta := cfg.Thetas[0]
	ds := dataset.SyntheticGermanCredit(rand.New(rand.NewSource(cfg.Seed)))

	arms := []rankers.Ranker{
		rankers.GrBinaryIPF{},
		rankers.ApproxMultiValuedIPF{},
		rankers.ILPRanker{},
		rankers.Mallows{Theta: theta, Samples: 1, Criterion: rankers.SelectFirst},
		rankers.Mallows{Theta: theta, Samples: cfg.BestOf, Criterion: rankers.SelectKT},
		// The beyond-Mallows arm (§VI): Plackett–Luce noise at the same
		// concentration and best-of count, so the figure shows how the
		// alternative mechanism trades fairness against KT efficiency.
		rankers.PlackettLuce{Strength: theta, Samples: cfg.BestOf, Criterion: rankers.SelectKT},
	}

	fig := &Figure{
		ID:     "figE1",
		Title:  fmt.Sprintf("Binary-attribute extension (Sex): fairness and KT efficiency (θ = %g)", theta),
		XLabel: "ranking size",
		YLabel: "median PPfair (Sex) / mean KT distance",
	}
	pFair := Panel{Title: "median PPfair w.r.t. Sex"}
	pKT := Panel{Title: "mean Kendall tau distance to the initial ranking"}

	for _, arm := range arms {
		sFair := Series{Label: arm.Name()}
		sKT := Series{Label: arm.Name()}
		for _, size := range cfg.Sizes {
			rng := rand.New(rand.NewSource(cellSeed(cfg.Seed, "binary|"+arm.Name(), size)))
			fairPt, ktPt, err := germanBinaryCell(ds, arm, size, cfg, rng)
			if err != nil {
				return nil, fmt.Errorf("experiments: german-binary %s at size %d: %w", arm.Name(), size, err)
			}
			sFair.Points = append(sFair.Points, fairPt)
			sKT.Points = append(sKT.Points, ktPt)
		}
		pFair.Series = append(pFair.Series, sFair)
		pKT.Series = append(pKT.Series, sKT)
	}
	fig.Panels = []Panel{pFair, pKT}
	return fig, nil
}

func germanBinaryCell(ds *dataset.Dataset, arm rankers.Ranker, size int, cfg GermanConfig, rng *rand.Rand) (fairPt, ktPt Point, err error) {
	sub, err := ds.TopByAmount(size)
	if err != nil {
		return Point{}, Point{}, err
	}
	scores := quality.Scores(sub.Scores())
	sex, err := fairness.NewGroups(sub.SexAssign(), 2)
	if err != nil {
		return Point{}, Point{}, err
	}
	cons, err := fairness.Proportional(sex, cfg.Tolerance)
	if err != nil {
		return Point{}, Point{}, err
	}
	k := cfg.CentralK
	if k > size {
		k = size
	}
	central, err := fairness.WeaklyFairRanking(scores, sex, cons, k)
	if err != nil {
		return Point{}, Point{}, err
	}
	in := rankers.Instance{
		Initial: central,
		Scores:  scores,
		Groups:  sex,
		Bounds:  cons.Table(size),
	}
	pps := make([]float64, 0, cfg.Reps)
	kts := make([]float64, 0, cfg.Reps)
	for rep := 0; rep < cfg.Reps; rep++ {
		out, err := arm.Rank(in, rng)
		if err != nil {
			return Point{}, Point{}, err
		}
		pp, err := fairness.PPfair(out, sex, cons)
		if err != nil {
			return Point{}, Point{}, err
		}
		kt, err := rankdist.KendallTau(out, central)
		if err != nil {
			return Point{}, Point{}, err
		}
		pps = append(pps, pp)
		kts = append(kts, float64(kt))
	}
	ivFair, err := stats.BootstrapMedian(pps, cfg.BootstrapN, cfg.Confidence, rng)
	if err != nil {
		return Point{}, Point{}, err
	}
	ivKT, err := stats.BootstrapMean(kts, cfg.BootstrapN, cfg.Confidence, rng)
	if err != nil {
		return Point{}, Point{}, err
	}
	x := float64(size)
	return Point{X: x, Y: ivFair.Point, Lo: ivFair.Lo, Hi: ivFair.Hi},
		Point{X: x, Y: ivKT.Point, Lo: ivKT.Lo, Hi: ivKT.Hi}, nil
}
