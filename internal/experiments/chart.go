package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Chart geometry: every panel renders into a fixed-height grid with one
// column block per x value.
const (
	chartRows = 12
	chartCol  = 6 // characters per x position
)

// seriesMarks label up to ten series within one panel.
var seriesMarks = []byte("abcdefghij")

// WriteCharts renders each panel as an ASCII line chart: the y-axis is
// scaled to the panel's value range, every series plots its points with
// its own letter (overlaps show '#'), and a legend maps letters to
// series labels. Intended for terminal inspection next to the exact
// numbers of WriteText.
func (f *Figure) WriteCharts(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s — %s\n", f.ID, f.Title); err != nil {
		return err
	}
	for _, panel := range f.Panels {
		if err := writePanelChart(w, f, panel); err != nil {
			return err
		}
	}
	return nil
}

func writePanelChart(w io.Writer, f *Figure, panel Panel) error {
	if _, err := fmt.Fprintf(w, "\n  %s\n", panel.Title); err != nil {
		return err
	}
	if len(panel.Series) == 0 || len(panel.Series[0].Points) == 0 {
		_, err := fmt.Fprintln(w, "    (empty)")
		return err
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	maxPts := 0
	for _, s := range panel.Series {
		for _, p := range s.Points {
			lo = math.Min(lo, p.Y)
			hi = math.Max(hi, p.Y)
		}
		if len(s.Points) > maxPts {
			maxPts = len(s.Points)
		}
	}
	if hi == lo {
		hi = lo + 1 // flat panel: give the band some height
	}

	width := maxPts * chartCol
	grid := make([][]byte, chartRows)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	row := func(y float64) int {
		frac := (y - lo) / (hi - lo)
		r := int(math.Round(float64(chartRows-1) * (1 - frac)))
		if r < 0 {
			r = 0
		}
		if r >= chartRows {
			r = chartRows - 1
		}
		return r
	}
	for si, s := range panel.Series {
		mark := byte('?')
		if si < len(seriesMarks) {
			mark = seriesMarks[si]
		}
		for pi, p := range s.Points {
			c := pi*chartCol + chartCol/2
			r := row(p.Y)
			if grid[r][c] == ' ' || grid[r][c] == mark {
				grid[r][c] = mark
			} else {
				grid[r][c] = '#'
			}
		}
	}

	for r := 0; r < chartRows; r++ {
		label := "          "
		switch r {
		case 0:
			label = fmt.Sprintf("%9s ", trimFloat(hi))
		case chartRows - 1:
			label = fmt.Sprintf("%9s ", trimFloat(lo))
		}
		if _, err := fmt.Fprintf(w, "    %s|%s\n", label, grid[r]); err != nil {
			return err
		}
	}
	// X axis with tick labels under each column.
	if _, err := fmt.Fprintf(w, "    %10s+%s\n", "", strings.Repeat("-", width)); err != nil {
		return err
	}
	var ticks strings.Builder
	for _, p := range panel.Series[0].Points {
		ticks.WriteString(center(trimFloat(p.X), chartCol))
	}
	if _, err := fmt.Fprintf(w, "    %10s %s  (%s)\n", "", ticks.String(), f.XLabel); err != nil {
		return err
	}
	for si, s := range panel.Series {
		mark := byte('?')
		if si < len(seriesMarks) {
			mark = seriesMarks[si]
		}
		if _, err := fmt.Fprintf(w, "      %c = %s\n", mark, s.Label); err != nil {
			return err
		}
	}
	return nil
}

// center pads s to width, centred; long strings are truncated.
func center(s string, width int) string {
	if len(s) >= width {
		return s[:width]
	}
	left := (width - len(s)) / 2
	return strings.Repeat(" ", left) + s + strings.Repeat(" ", width-len(s)-left)
}
