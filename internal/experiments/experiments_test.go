package experiments

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

// tinyFig1 keeps test runtime modest while preserving the shape.
func tinyFig1() Fig1Config {
	return Fig1Config{
		Seed:       11,
		D:          10,
		TargetIIs:  []int{0, 8},
		Thetas:     []float64{0.1, 1, 5},
		Samples:    300,
		BootstrapN: 100,
		Confidence: 0.95,
		SearchCap:  100000,
	}
}

func TestFig1ShapeAndTrends(t *testing.T) {
	fig, err := Fig1(tinyFig1())
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "fig1" || len(fig.Panels) != 2 {
		t.Fatalf("fig shape: %s, %d panels", fig.ID, len(fig.Panels))
	}
	for pi, panel := range fig.Panels {
		if len(panel.Series) != 2 {
			t.Fatalf("panel %d has %d series", pi, len(panel.Series))
		}
		samples, ref := panel.Series[0], panel.Series[1]
		if len(samples.Points) != 3 || len(ref.Points) != 3 {
			t.Fatalf("panel %d point counts wrong", pi)
		}
		centralII := ref.Points[0].Y
		// At θ = 5 the samples sit essentially on the central ranking.
		last := samples.Points[len(samples.Points)-1]
		if diff := last.Y - centralII; diff > 1 || diff < -1 {
			t.Fatalf("panel %d: θ=5 sample II %v far from central %v", pi, last.Y, centralII)
		}
		for _, p := range samples.Points {
			if p.Lo > p.Y || p.Y > p.Hi {
				t.Fatalf("CI does not bracket point: %+v", p)
			}
		}
	}
	// The paper's headline: for a very unfair central (II=8), θ→0
	// substantially drops the sampled II; for a fair central (II=0) it
	// raises it mildly.
	unfair := fig.Panels[1]
	centralII := unfair.Series[1].Points[0].Y
	if centralII < 6 {
		t.Fatalf("unfair central II = %v, want ≥ 6", centralII)
	}
	atSmallTheta := unfair.Series[0].Points[0].Y
	if atSmallTheta > centralII-1.5 {
		t.Fatalf("θ=0.1 sample II %v did not drop from central %v", atSmallTheta, centralII)
	}
	fair := fig.Panels[0]
	if fair.Series[0].Points[0].Y <= fair.Series[1].Points[0].Y {
		t.Fatalf("fair central: θ=0.1 samples should raise II above 0")
	}
}

func TestFig1Validation(t *testing.T) {
	bad := tinyFig1()
	bad.D = 7
	if _, err := Fig1(bad); err == nil {
		t.Error("accepted odd D")
	}
	bad = tinyFig1()
	bad.Thetas = nil
	if _, err := Fig1(bad); err == nil {
		t.Error("accepted empty thetas")
	}
	bad = tinyFig1()
	bad.Samples = 1
	if _, err := Fig1(bad); err == nil {
		t.Error("accepted 1 sample")
	}
	bad = tinyFig1()
	bad.Confidence = 1
	if _, err := Fig1(bad); err == nil {
		t.Error("accepted confidence 1")
	}
}

func tinyScoreGap() ScoreGapConfig {
	return ScoreGapConfig{
		Seed:       12,
		GroupSize:  5,
		Deltas:     []float64{0, 0.5, 1},
		Thetas:     []float64{0.1, 1, 5},
		Reps:       20,
		Samples:    10,
		BootstrapN: 100,
		Confidence: 0.95,
	}
}

func TestFig2CentralIIGrowsWithDelta(t *testing.T) {
	fig, err := Fig2(tinyScoreGap())
	if err != nil {
		t.Fatal(err)
	}
	pts := fig.Panels[0].Series[0].Points
	if len(pts) != 3 {
		t.Fatalf("point count %d", len(pts))
	}
	// Larger mean gap segregates the score-sorted ranking more.
	if !(pts[2].Y > pts[0].Y) {
		t.Fatalf("II not increasing with delta: %v vs %v", pts[0].Y, pts[2].Y)
	}
	// δ=1 guarantees full segregation: II is the maximum achievable for
	// AAAAABBBBB-type rankings under α=β=0.5 (computed as 12 in the
	// fairness tests' hand calculation: 6 lower + 6 upper... the exact
	// value is deterministic, so just assert it is large).
	if pts[2].Y < 8 {
		t.Fatalf("fully segregated central II = %v, implausibly small", pts[2].Y)
	}
}

func TestFig3And4TradeOff(t *testing.T) {
	cfg := tinyScoreGap()
	f3, err := Fig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f4, err := Fig4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(f3.Panels) != 3 || len(f4.Panels) != 3 {
		t.Fatalf("panel counts: %d, %d", len(f3.Panels), len(f4.Panels))
	}
	// Fig 3 carries the central reference series; Fig 4 does not.
	if len(f3.Panels[0].Series) != 2 || len(f4.Panels[0].Series) != 1 {
		t.Fatalf("series counts: %d, %d", len(f3.Panels[0].Series), len(f4.Panels[0].Series))
	}
	// δ=1 panel: samples' II at θ=5 approaches the central II; at θ=0.1
	// it is much lower (the fairness gain). NDCG rises with θ toward 1.
	p3 := f3.Panels[2]
	centralII := p3.Series[1].Points[0].Y
	if p3.Series[0].Points[0].Y >= centralII-1 {
		t.Fatalf("θ=0.1 II %v not below central %v", p3.Series[0].Points[0].Y, centralII)
	}
	if diff := p3.Series[0].Points[2].Y - centralII; diff > 1 || diff < -1 {
		t.Fatalf("θ=5 II %v not near central %v", p3.Series[0].Points[2].Y, centralII)
	}
	p4 := f4.Panels[2].Series[0].Points
	if !(p4[2].Y > p4[0].Y) {
		t.Fatalf("NDCG not increasing in θ: %v vs %v", p4[0].Y, p4[2].Y)
	}
	if p4[2].Y < 0.95 {
		t.Fatalf("NDCG at θ=5 = %v, want near 1", p4[2].Y)
	}
}

func TestScoreGapValidation(t *testing.T) {
	bad := tinyScoreGap()
	bad.GroupSize = 0
	if _, err := Fig2(bad); err == nil {
		t.Error("accepted zero group size")
	}
	bad = tinyScoreGap()
	bad.Deltas = nil
	if _, err := Fig3(bad); err == nil {
		t.Error("accepted empty deltas")
	}
	bad = tinyScoreGap()
	bad.Thetas = nil
	if _, err := Fig4(bad); err == nil {
		t.Error("accepted empty thetas")
	}
	bad = tinyScoreGap()
	bad.Samples = 0
	if _, err := Fig3(bad); err == nil {
		t.Error("accepted zero samples")
	}
}

func tinyGerman() GermanConfig {
	return GermanConfig{
		Seed:       13,
		Sizes:      []int{10, 30},
		Reps:       4,
		Thetas:     []float64{0.5},
		Sigmas:     []float64{0, 1},
		CentralK:   10,
		BestOf:     5,
		Tolerance:  0.1,
		BootstrapN: 50,
		Confidence: 0.95,
	}
}

func TestGermanShape(t *testing.T) {
	res, err := German(tinyGerman())
	if err != nil {
		t.Fatal(err)
	}
	// Table I must match the paper exactly.
	if len(res.TableI.Rows) != 5 {
		t.Fatalf("table rows = %d", len(res.TableI.Rows))
	}
	if got := res.TableI.Rows[4]; got[1] != "108" || got[2] != "713" || got[3] != "179" || got[4] != "1000" {
		t.Fatalf("table totals = %v", got)
	}
	for _, fig := range []*Figure{res.Fig5, res.Fig6, res.Fig7} {
		if len(fig.Panels) != 2 { // θ × σ combinations
			t.Fatalf("%s panels = %d", fig.ID, len(fig.Panels))
		}
		for _, panel := range fig.Panels {
			if len(panel.Series) != 5 { // five algorithms
				t.Fatalf("%s series = %d", fig.ID, len(panel.Series))
			}
			for _, s := range panel.Series {
				if len(s.Points) != 2 { // two sizes
					t.Fatalf("%s %q points = %d", fig.ID, s.Label, len(s.Points))
				}
				for _, p := range s.Points {
					if p.X != 10 && p.X != 30 {
						t.Fatalf("unexpected x %v", p.X)
					}
				}
			}
		}
	}
	// NDCG values live in (0, 1]; PPfair values in (-100, 100].
	for _, panel := range res.Fig7.Panels {
		for _, s := range panel.Series {
			for _, p := range s.Points {
				if p.Y <= 0 || p.Y > 1+1e-9 {
					t.Fatalf("NDCG %v out of range for %q", p.Y, s.Label)
				}
			}
		}
	}
	for _, fig := range []*Figure{res.Fig5, res.Fig6} {
		for _, panel := range fig.Panels {
			for _, s := range panel.Series {
				for _, p := range s.Points {
					if p.Y < -200 || p.Y > 100+1e-9 {
						t.Fatalf("PPfair %v out of range for %q", p.Y, s.Label)
					}
				}
			}
		}
	}
}

func TestGermanFairAlgorithmsPerfectOnKnownAttributeWithoutNoise(t *testing.T) {
	res, err := German(tinyGerman())
	if err != nil {
		t.Fatal(err)
	}
	// Panel 0 is σ=0: the ILP and IPF outputs satisfy the Age-Sex bounds
	// at every prefix by construction, so PPfair(Age-Sex) = 100.
	panel := res.Fig5.Panels[0]
	if !strings.Contains(panel.Title, "sigma = 0") {
		t.Fatalf("panel 0 title %q", panel.Title)
	}
	for _, s := range panel.Series {
		if s.Label == "ilp" || s.Label == "approx-multivalued-ipf" {
			for _, p := range s.Points {
				if p.Y != 100 {
					t.Fatalf("%s PPfair = %v at size %v, want 100", s.Label, p.Y, p.X)
				}
			}
		}
	}
}

func TestGermanDeterministicPerSeed(t *testing.T) {
	a, err := German(tinyGerman())
	if err != nil {
		t.Fatal(err)
	}
	b, err := German(tinyGerman())
	if err != nil {
		t.Fatal(err)
	}
	var bufA, bufB bytes.Buffer
	if err := a.Fig6.WriteCSV(&bufA); err != nil {
		t.Fatal(err)
	}
	if err := b.Fig6.WriteCSV(&bufB); err != nil {
		t.Fatal(err)
	}
	if bufA.String() != bufB.String() {
		t.Fatal("same config, different results")
	}
}

func TestGermanValidation(t *testing.T) {
	bad := tinyGerman()
	bad.Sizes = nil
	if _, err := German(bad); err == nil {
		t.Error("accepted empty sizes")
	}
	bad = tinyGerman()
	bad.Sizes = []int{1001}
	if _, err := German(bad); err == nil {
		t.Error("accepted size beyond dataset")
	}
	bad = tinyGerman()
	bad.Reps = 1
	if _, err := German(bad); err == nil {
		t.Error("accepted 1 rep")
	}
}

func TestGermanBinary(t *testing.T) {
	fig, err := GermanBinary(tinyGerman())
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "figE1" || len(fig.Panels) != 2 {
		t.Fatalf("figE1 shape: %s, %d panels", fig.ID, len(fig.Panels))
	}
	// Five baseline arms plus the Plackett–Luce (§VI) arm.
	for _, panel := range fig.Panels {
		if len(panel.Series) != 6 {
			t.Fatalf("%q series = %d", panel.Title, len(panel.Series))
		}
	}
	// GrBinaryIPF is KT-optimal among fair rankings: it must be exactly
	// fair and never farther from the initial ranking than the (also
	// exactly fair) footrule-based IPF.
	fair, kt := fig.Panels[0], fig.Panels[1]
	for i, p := range fair.Series[0].Points {
		if p.Y != 100 {
			t.Fatalf("GrBinary PPfair = %v at size %v", p.Y, p.X)
		}
		if kt.Series[0].Points[i].Y > kt.Series[1].Points[i].Y+1e-9 {
			t.Fatalf("GrBinary KT %v above IPF %v at size %v",
				kt.Series[0].Points[i].Y, kt.Series[1].Points[i].Y, p.X)
		}
	}
	bad := tinyGerman()
	bad.Sizes = nil
	if _, err := GermanBinary(bad); err == nil {
		t.Error("accepted empty sizes")
	}
}

func TestRenderText(t *testing.T) {
	fig, err := Fig2(tinyScoreGap())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fig.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "fig2") || !strings.Contains(out, "delta") {
		t.Fatalf("text rendering missing content:\n%s", out)
	}
	buf.Reset()
	if err := fig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "figure,panel,series,x,y,lo,hi" {
		t.Fatalf("csv header %q", lines[0])
	}
	if len(lines) != 1+3 { // three deltas
		t.Fatalf("csv lines = %d", len(lines))
	}
}

func TestWriteCharts(t *testing.T) {
	fig, err := Fig2(tinyScoreGap())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fig.WriteCharts(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "a = central II (mean)") {
		t.Fatalf("chart missing legend:\n%s", out)
	}
	if !strings.Contains(out, "(delta)") {
		t.Fatalf("chart missing x label:\n%s", out)
	}
	if strings.Count(out, "a") < 3 {
		t.Fatalf("chart missing plotted points:\n%s", out)
	}
	// Flat and empty panels must not crash.
	flat := &Figure{ID: "t", Panels: []Panel{
		{Title: "flat", Series: []Series{{Label: "s", Points: []Point{{X: 1, Y: 5}, {X: 2, Y: 5}}}}},
		{Title: "empty"},
	}}
	buf.Reset()
	if err := flat.WriteCharts(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "(empty)") {
		t.Fatal("empty panel not marked")
	}
}

func TestRenderTable(t *testing.T) {
	tab := &Table{
		ID: "t", Title: "demo",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "2"}, {"3", "with,comma"}},
	}
	var buf bytes.Buffer
	if err := tab.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "demo") {
		t.Fatal("table text missing title")
	}
	buf.Reset()
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"with,comma"`) {
		t.Fatalf("csv escaping broken: %s", buf.String())
	}
}

func TestSearchRankingWithII(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	gr, c := twoEqualGroups(10)
	p, actual, err := searchRankingWithII(4, gr, c, rng, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if actual != 4 {
		t.Fatalf("actual II = %d, want 4", actual)
	}
	// Unreachable target falls back to the closest achievable index.
	_, actual, err = searchRankingWithII(99, gr, c, rng, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if actual >= 99 {
		t.Fatalf("fallback actual = %d", actual)
	}
}
