package experiments

import (
	"fmt"
	"io"
	"strings"
)

// WriteText renders the figure as aligned per-panel tables: one row per
// x value, one column per series, entries "y [lo,hi]".
func (f *Figure) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s — %s\n", f.ID, f.Title); err != nil {
		return err
	}
	for _, panel := range f.Panels {
		if _, err := fmt.Fprintf(w, "\n  %s\n", panel.Title); err != nil {
			return err
		}
		if len(panel.Series) == 0 {
			continue
		}
		// Column header.
		cols := []string{f.XLabel}
		for _, s := range panel.Series {
			cols = append(cols, s.Label)
		}
		rows := [][]string{cols}
		for i := range panel.Series[0].Points {
			row := []string{trimFloat(panel.Series[0].Points[i].X)}
			for _, s := range panel.Series {
				if i >= len(s.Points) {
					row = append(row, "-")
					continue
				}
				p := s.Points[i]
				if p.Lo == p.Hi && p.Lo == p.Y {
					row = append(row, trimFloat(p.Y))
				} else {
					row = append(row, fmt.Sprintf("%s [%s,%s]", trimFloat(p.Y), trimFloat(p.Lo), trimFloat(p.Hi)))
				}
			}
			rows = append(rows, row)
		}
		if err := writeAligned(w, rows, "    "); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteCSV renders the figure in long format:
// figure,panel,series,x,y,lo,hi.
func (f *Figure) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "figure,panel,series,x,y,lo,hi"); err != nil {
		return err
	}
	for _, panel := range f.Panels {
		for _, s := range panel.Series {
			for _, p := range s.Points {
				_, err := fmt.Fprintf(w, "%s,%s,%s,%g,%g,%g,%g\n",
					csvEscape(f.ID), csvEscape(panel.Title), csvEscape(s.Label), p.X, p.Y, p.Lo, p.Hi)
				if err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s — %s\n\n", t.ID, t.Title); err != nil {
		return err
	}
	rows := append([][]string{t.Header}, t.Rows...)
	if err := writeAligned(w, rows, "  "); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteCSV renders the table as plain CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	all := append([][]string{t.Header}, t.Rows...)
	for _, row := range all {
		esc := make([]string, len(row))
		for i, cell := range row {
			esc[i] = csvEscape(cell)
		}
		if _, err := fmt.Fprintln(w, strings.Join(esc, ",")); err != nil {
			return err
		}
	}
	return nil
}

func writeAligned(w io.Writer, rows [][]string, indent string) error {
	if len(rows) == 0 {
		return nil
	}
	widths := make([]int, 0)
	for _, row := range rows {
		for i, cell := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		var b strings.Builder
		b.WriteString(indent)
		for i, cell := range row {
			b.WriteString(cell)
			if i < len(row)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)+2))
			}
		}
		if _, err := fmt.Fprintln(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.4f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
