package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/fairness"
	"repro/internal/mallows"
	"repro/internal/stats"
)

// Fig1Config parameterizes the first experiment (§V-A): the effect of
// Mallows randomization on the Infeasible Index, for central rankings of
// varying unfairness.
type Fig1Config struct {
	Seed       int64
	D          int       // ranking size (paper: 10, two equal groups)
	TargetIIs  []int     // Infeasible Index of each panel's central ranking
	Thetas     []float64 // dispersion grid
	Samples    int       // Mallows draws per (central, θ) point
	BootstrapN int       // bootstrap resamples for the CI (paper: 1000)
	Confidence float64   // CI level
	SearchCap  int       // rejection-sampling tries per central
}

// DefaultFig1Config mirrors the paper's setup at full fidelity.
func DefaultFig1Config() Fig1Config {
	return Fig1Config{
		Seed:       1,
		D:          10,
		TargetIIs:  []int{0, 2, 4, 6, 8},
		Thetas:     []float64{0.1, 0.25, 0.5, 1, 2, 3, 5},
		Samples:    500,
		BootstrapN: 1000,
		Confidence: 0.95,
		SearchCap:  200000,
	}
}

func (c Fig1Config) validate() error {
	if c.D < 2 || c.D%2 != 0 {
		return fmt.Errorf("experiments: fig1 D = %d, want even ≥ 2", c.D)
	}
	if len(c.TargetIIs) == 0 || len(c.Thetas) == 0 {
		return fmt.Errorf("experiments: fig1 needs targets and thetas")
	}
	if c.Samples < 2 || c.BootstrapN < 1 {
		return fmt.Errorf("experiments: fig1 samples/bootstrap too small")
	}
	if c.Confidence <= 0 || c.Confidence >= 1 {
		return fmt.Errorf("experiments: fig1 confidence %v", c.Confidence)
	}
	return nil
}

// Fig1 reproduces Fig. 1: for central rankings constructed at several
// Infeasible Index levels, the mean Infeasible Index of Mallows samples
// as a function of θ, with bootstrap confidence intervals. Each panel
// also carries the central ranking's index as a flat reference series
// (the red line of the paper's plot).
func Fig1(cfg Fig1Config) (*Figure, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	gr, c := twoEqualGroups(cfg.D)

	fig := &Figure{
		ID:     "fig1",
		Title:  "Mallows randomization vs Infeasible Index (two equal groups, d=10)",
		XLabel: "theta",
		YLabel: "infeasible index",
	}
	for _, target := range cfg.TargetIIs {
		central, actual, err := searchRankingWithII(target, gr, c, rng, cfg.SearchCap)
		if err != nil {
			return nil, err
		}
		sample := Series{Label: "samples (mean II)"}
		ref := Series{Label: "central II"}
		for _, theta := range cfg.Thetas {
			model, err := mallows.New(central, theta)
			if err != nil {
				return nil, err
			}
			iis := make([]float64, cfg.Samples)
			for i := range iis {
				p := model.Sample(rng)
				ii, err := fairness.TwoSidedInfeasibleIndex(p, gr, c)
				if err != nil {
					return nil, err
				}
				iis[i] = float64(ii)
			}
			iv, err := stats.BootstrapMean(iis, cfg.BootstrapN, cfg.Confidence, rng)
			if err != nil {
				return nil, err
			}
			sample.Points = append(sample.Points, Point{X: theta, Y: iv.Point, Lo: iv.Lo, Hi: iv.Hi})
			ref.Points = append(ref.Points, Point{X: theta, Y: float64(actual), Lo: float64(actual), Hi: float64(actual)})
		}
		fig.Panels = append(fig.Panels, Panel{
			Title:  fmt.Sprintf("central II = %d (target %d)", actual, target),
			Series: []Series{sample, ref},
		})
	}
	return fig, nil
}
