// Package experiments regenerates every table and figure of the paper's
// evaluation (§V): Figs. 1–4 on synthetic rankings, Table I and
// Figs. 5–7 on the (synthetic) German Credit dataset. Each driver
// returns a structured Figure/Table that cmd/experiments renders as text
// and CSV, and bench_test.go at the repository root wraps one benchmark
// around each driver.
package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/fairness"
	"repro/internal/perm"
)

// Point is one x position of a series with a confidence band.
type Point struct {
	X  float64
	Y  float64
	Lo float64
	Hi float64
}

// Series is a labelled line.
type Series struct {
	Label  string
	Points []Point
}

// Panel is one subplot.
type Panel struct {
	Title  string
	Series []Series
}

// Figure mirrors one figure of the paper.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Panels []Panel
}

// Table mirrors one table of the paper.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
}

// twoEqualGroups builds the d-item, two-equal-groups universe used by
// the synthetic experiments (§V-A, §V-B): items 0…d/2−1 in group 0,
// the rest in group 1, under strict proportional constraints α=β=1/2.
func twoEqualGroups(d int) (*fairness.Groups, *fairness.Constraints) {
	assign := make([]int, d)
	for i := d / 2; i < d; i++ {
		assign[i] = 1
	}
	gr := fairness.MustGroups(assign, 2)
	c, err := fairness.NewConstraints([]float64{0.5, 0.5}, []float64{0.5, 0.5})
	if err != nil {
		panic(err) // static constants; cannot fail
	}
	return gr, c
}

// searchRankingWithII looks for a ranking whose Two-Sided Infeasible
// Index equals target by seeded rejection sampling, falling back to the
// closest index seen. It returns the ranking and its actual index.
func searchRankingWithII(target int, gr *fairness.Groups, c *fairness.Constraints, rng *rand.Rand, tries int) (perm.Perm, int, error) {
	d := gr.NumItems()
	var best perm.Perm
	bestII := -1
	for i := 0; i < tries; i++ {
		p := perm.Random(d, rng)
		ii, err := fairness.TwoSidedInfeasibleIndex(p, gr, c)
		if err != nil {
			return nil, 0, err
		}
		if ii == target {
			return p, ii, nil
		}
		if best == nil || abs(ii-target) < abs(bestII-target) {
			best = p
			bestII = ii
		}
	}
	if best == nil {
		return nil, 0, fmt.Errorf("experiments: no ranking found for II target %d", target)
	}
	return best, bestII, nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
