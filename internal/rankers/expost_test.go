package rankers

import (
	"math/rand"
	"testing"

	"repro/internal/fairness"
	"repro/internal/perm"
)

func TestExPostFairEveryDrawIsFair(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	for trial := 0; trial < 40; trial++ {
		d := 4 + rng.Intn(30)
		g := 2 + rng.Intn(3)
		if g > d {
			g = d
		}
		in := randomFeasibleInstance(t, rng, d, g)
		cons, err := fairness.Proportional(in.Groups, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		in.Bounds = cons.Table(d)
		for draw := 0; draw < 5; draw++ {
			p, err := ExPostFair{}.Rank(in, rng)
			if err != nil {
				t.Fatal(err)
			}
			v, err := fairness.EvaluateViolations(p, in.Groups, in.Bounds)
			if err != nil {
				t.Fatal(err)
			}
			if v.TwoSided() != 0 {
				t.Fatalf("draw violates %d prefixes of a feasible table", v.TwoSided())
			}
		}
	}
}

func TestExPostFairWithinGroupScoreOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	in := randomFeasibleInstance(t, rng, 24, 3)
	p, err := ExPostFair{}.Rank(in, rng)
	if err != nil {
		t.Fatal(err)
	}
	// All randomness is in the group sequence: within a group, items must
	// appear in non-increasing score order.
	last := make(map[int]float64)
	for _, item := range p {
		gid := in.Groups.Of(item)
		if prev, ok := last[gid]; ok && in.Scores[item] > prev {
			t.Fatalf("group %d ranked score %v after %v", gid, in.Scores[item], prev)
		}
		last[gid] = in.Scores[item]
	}
}

func TestExPostFairIsRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	in := randomFeasibleInstance(t, rng, 30, 2)
	// Loose bounds so many group sequences are legal.
	cons, err := fairness.Proportional(in.Groups, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	in.Bounds = cons.Table(30)
	first, err := ExPostFair{}.Rank(in, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	distinct := false
	for seed := int64(2); seed < 12; seed++ {
		p, err := ExPostFair{}.Rank(in, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		if !p.Equal(first) {
			distinct = true
			break
		}
	}
	if !distinct {
		t.Error("ten differently-seeded draws all identical — sampler is not randomizing")
	}
	// Same seed must reproduce the same draw.
	again, err := ExPostFair{}.Rank(in, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if !again.Equal(first) {
		t.Error("same seed produced a different draw")
	}
}

func TestExPostFairDegradesOnInfeasibleTable(t *testing.T) {
	// Two groups of two items, but the table demands 4 of group 0 by
	// prefix 4 — unsatisfiable. The sampler must still emit a complete
	// valid permutation.
	in := makeInstance(t, []float64{4, 3, 2, 1}, []int{0, 0, 1, 1}, 2, 0.2)
	bad := in.Bounds.Clone()
	for ell := range bad.Lower {
		bad.Lower[ell][0] = ell + 1
		bad.Upper[ell][0] = ell + 1
		bad.Upper[ell][1] = ell + 1
	}
	in.Bounds = bad
	p, err := ExPostFair{}.Rank(in, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p) != 4 {
		t.Fatalf("got %d items, want 4", len(p))
	}
}

func TestExPostFairNeedsRNG(t *testing.T) {
	in := makeInstance(t, []float64{2, 1}, []int{0, 1}, 2, 0.2)
	if _, err := (ExPostFair{}).Rank(in, nil); err == nil {
		t.Error("accepted nil RNG")
	}
}

func TestExPostFairEmpty(t *testing.T) {
	cons, err := fairness.NewConstraints([]float64{0}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	in := Instance{
		Initial: perm.Perm{},
		Scores:  nil,
		Groups:  fairness.MustGroups(nil, 1),
		Bounds:  cons.Table(0),
	}
	p, err := ExPostFair{}.Rank(in, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 0 {
		t.Fatalf("empty instance ranked %d items", len(p))
	}
}
