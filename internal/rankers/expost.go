package rankers

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/fairness"
	"repro/internal/perm"
)

// ExPostFair is a randomized group-sequence sampler in the spirit of
// Gorantla, Deshpande & Louis ("Sampling Ex-Post Group-Fair Rankings",
// IJCAI'23): instead of producing one deterministic fair ranking, it
// samples a ranking whose every prefix satisfies the (α,β) bound table
// ex post — each individual draw is fair, not just the expectation.
//
// Position by position it computes the set of groups that can legally
// supply the next item — the group has stock left, placing it stays
// under the prefix's upper bound, and the remaining positions can still
// cover every future lower bound — then picks a group with probability
// proportional to its remaining stock, and emits that group's next-best
// candidate by score. Sampling in proportion to remaining stock is the
// natural-distribution choice of the paper's random-walk sampler; items
// within a group stay in score order, so all randomness is in the group
// sequence.
//
// The feasibility filter makes fairness ex post by construction: when
// the bound table is satisfiable at all (true for tables derived from
// valid (α,β) constraints over the actual group sizes), every prefix of
// the output meets its bounds, so the Two-Sided Infeasible Index is 0
// and PPfair is 100 on every draw. If a position ever has no legal
// group (possible only for hand-built infeasible tables), the sampler
// degrades gracefully rather than failing the request: it takes the
// group with the largest remaining lower-bound deficit, which minimizes
// further damage.
type ExPostFair struct{}

// Name implements Ranker.
func (ExPostFair) Name() string { return "expost-fair" }

// Rank implements Ranker.
func (ExPostFair) Rank(in Instance, rng *rand.Rand) (perm.Perm, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, fmt.Errorf("rankers: expost-fair needs an RNG")
	}
	n := len(in.Initial)
	if n == 0 {
		return perm.Perm{}, nil
	}
	g := in.Groups.NumGroups()

	// Per-group candidate queues in non-increasing score order.
	queues := in.Groups.Members()
	for _, q := range queues {
		sort.SliceStable(q, func(a, b int) bool { return in.Scores[q[a]] > in.Scores[q[b]] })
	}
	nextIdx := make([]int, g)
	counts := make([]int, g)
	ranked := make([]int, 0, n)

	allowed := make([]int, 0, g)
	for pos := 0; pos < n; pos++ {
		allowed = allowed[:0]
		for gid := 0; gid < g; gid++ {
			if nextIdx[gid] >= len(queues[gid]) {
				continue // out of stock
			}
			if counts[gid]+1 > in.Bounds.Upper[pos][gid] {
				continue // would breach this prefix's upper bound
			}
			if !futureLowersFeasible(in.Bounds, counts, queues, nextIdx, gid, pos, n) {
				continue // would strand a future lower bound
			}
			allowed = append(allowed, gid)
		}
		var pick int
		if len(allowed) > 0 {
			pick = weightedByStock(allowed, queues, nextIdx, rng)
		} else {
			// Infeasible table: no group can legally go here. Place the
			// group furthest behind its next lower bound (ties to the
			// larger stock) so the damage stays minimal and the output is
			// still a complete ranking.
			pick = -1
			bestDeficit, bestStock := -1<<31, -1
			for gid := 0; gid < g; gid++ {
				stock := len(queues[gid]) - nextIdx[gid]
				if stock == 0 {
					continue
				}
				deficit := in.Bounds.Lower[n-1][gid] - counts[gid]
				if deficit > bestDeficit || (deficit == bestDeficit && stock > bestStock) {
					pick, bestDeficit, bestStock = gid, deficit, stock
				}
			}
			if pick < 0 {
				return nil, fmt.Errorf("rankers: expost-fair exhausted all groups at position %d", pos)
			}
		}
		ranked = append(ranked, queues[pick][nextIdx[pick]])
		nextIdx[pick]++
		counts[pick]++
	}
	out := perm.Perm(ranked)
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("rankers: expost-fair produced invalid ranking: %w", err)
	}
	return out, nil
}

// futureLowersFeasible reports whether, after placing one item of gid
// at 0-based position pos, every later prefix's lower bounds can still
// be covered: for each prefix length L > pos+1, the total outstanding
// lower-bound demand must fit in the positions remaining before L, and
// no single group may owe more than its stock.
func futureLowersFeasible(b *fairness.Bounds, counts []int, queues [][]int, nextIdx []int, gid, pos, n int) bool {
	g := len(counts)
	placed := pos + 1 // items placed once gid lands at pos
	for L := placed; L <= n; L++ {
		demand := 0
		for h := 0; h < g; h++ {
			c := counts[h]
			stock := len(queues[h]) - nextIdx[h]
			if h == gid {
				c++
				stock--
			}
			owe := b.Lower[L-1][h] - c
			if owe <= 0 {
				continue
			}
			if owe > stock {
				return false // the group cannot supply its own bound
			}
			demand += owe
		}
		if demand > L-placed {
			return false // not enough open slots before prefix L
		}
	}
	return true
}

// weightedByStock samples one of the allowed groups with probability
// proportional to its remaining stock.
func weightedByStock(allowed []int, queues [][]int, nextIdx []int, rng *rand.Rand) int {
	total := 0
	for _, gid := range allowed {
		total += len(queues[gid]) - nextIdx[gid]
	}
	r := rng.Intn(total)
	for _, gid := range allowed {
		r -= len(queues[gid]) - nextIdx[gid]
		if r < 0 {
			return gid
		}
	}
	return allowed[len(allowed)-1]
}
