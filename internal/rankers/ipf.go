package rankers

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/assignment"
	"repro/internal/perm"
)

// ApproxMultiValuedIPF is the multi-group P-fair post-processor of Wei
// et al. (SIGMOD'22, Algorithm 2): the footrule-optimal fair ranking via
// minimum-weight bipartite matching between candidates and positions.
//
// Reconstruction from the published description: in a footrule-optimal
// fair ranking, each group's members keep their relative order from the
// initial ranking (uncrossing two same-group members never increases
// total displacement and preserves the group pattern, hence
// feasibility). The r-th member of group g must therefore sit in the
// window
//
//	release  e_g(r) = min{ p : Upper_g(p) ≥ r }   (else the prefix p would
//	                                               hold r > Upper members)
//	deadline ℓ_g(r) = min{ p : Lower_g(p) ≥ r }   (the prefix that first
//	                                               demands r members)
//
// and conversely — for monotone bound tables, which all tables derived
// from (α,β) constraints are — any matching that places every member
// inside its window satisfies every prefix bound. Minimizing
// Σ|initial position − assigned position| over in-window matchings is
// exactly the assignment problem, solved by internal/assignment.
//
// Sigma > 0 reproduces §V-C: an independent N(0,σ) sample is added to
// each matching weight at the weight-calculation step, so the matching
// optimizes noisy displacements while the windows stay exact.
type ApproxMultiValuedIPF struct {
	Sigma float64
}

// Name implements Ranker.
func (a ApproxMultiValuedIPF) Name() string {
	if a.Sigma > 0 {
		return fmt.Sprintf("approx-multivalued-ipf(σ=%g)", a.Sigma)
	}
	return "approx-multivalued-ipf"
}

// Rank implements Ranker.
func (a ApproxMultiValuedIPF) Rank(in Instance, rng *rand.Rand) (perm.Perm, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if a.Sigma < 0 {
		return nil, fmt.Errorf("rankers: ipf σ = %v, want ≥ 0", a.Sigma)
	}
	if a.Sigma > 0 && rng == nil {
		return nil, fmt.Errorf("rankers: ipf with σ > 0 needs an RNG")
	}
	d := len(in.Initial)
	if d == 0 {
		return perm.Perm{}, nil
	}
	g := in.Groups.NumGroups()

	// Walk the initial ranking, tracking each item's within-group rank.
	groupRank := make([]int, d) // 1-based rank of item within its group
	seen := make([]int, g)
	for _, item := range in.Initial {
		gid := in.Groups.Of(item)
		seen[gid]++
		groupRank[item] = seen[gid]
	}

	// Window endpoints per group and within-group rank (1-based
	// positions). For non-monotone (externally perturbed) tables the
	// min{} forms below remain necessary conditions; the matching then
	// still returns a ranking, just without the exactness guarantee.
	release := make([][]int, g)  // release[g][r-1]
	deadline := make([][]int, g) // deadline[g][r-1]
	for gid := 0; gid < g; gid++ {
		n := seen[gid]
		release[gid] = make([]int, n)
		deadline[gid] = make([]int, n)
		for r := 1; r <= n; r++ {
			release[gid][r-1] = d + 1 // sentinel: nowhere
			deadline[gid][r-1] = d    // default: no prefix demands r
		}
		for r := 1; r <= n; r++ {
			for p := 1; p <= d; p++ {
				if in.Bounds.Upper[p-1][gid] >= r {
					release[gid][r-1] = p
					break
				}
			}
			for p := 1; p <= d; p++ {
				if in.Bounds.Lower[p-1][gid] >= r {
					deadline[gid][r-1] = p
					break
				}
			}
		}
	}

	// Cost matrix: rows = items in initial order, columns = positions.
	cost := make([][]float64, d)
	for i, item := range in.Initial {
		row := make([]float64, d)
		gid := in.Groups.Of(item)
		r := groupRank[item]
		e, dl := release[gid][r-1], deadline[gid][r-1]
		for j := 0; j < d; j++ {
			pos := j + 1
			if pos < e || pos > dl {
				row[j] = assignment.Forbidden
				continue
			}
			w := math.Abs(float64(i - j))
			if a.Sigma > 0 {
				w += rng.NormFloat64() * a.Sigma
			}
			row[j] = w
		}
		cost[i] = row
	}

	match, _, err := assignment.Solve(cost)
	if err != nil {
		return nil, fmt.Errorf("rankers: ipf matching: %w", err)
	}
	out := make(perm.Perm, d)
	for i, item := range in.Initial {
		out[match[i]] = item
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("rankers: ipf produced invalid ranking: %w", err)
	}
	return out, nil
}
