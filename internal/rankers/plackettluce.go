package rankers

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/perm"
)

// PlackettLuce is the §VI beyond-Mallows direction as a ranker: draw
// Samples Plackett–Luce rankings whose item weights decay exponentially
// with the rank in Initial (weight e^{−Strength·rank}, Gumbel-max
// sampling) and keep the best under the criterion. Like Mallows it reads
// neither Groups nor Bounds — the randomization stays attribute-blind.
type PlackettLuce struct {
	Strength  float64
	Samples   int
	Criterion MallowsCriterion
}

// Name implements Ranker.
func (p PlackettLuce) Name() string {
	return fmt.Sprintf("plackett-luce(s=%g,m=%d)", p.Strength, p.Samples)
}

// Rank implements Ranker.
func (p PlackettLuce) Rank(in Instance, rng *rand.Rand) (perm.Perm, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	var crit core.Criterion
	switch p.Criterion {
	case SelectFirst:
	case SelectNDCG:
		crit = core.NDCGCriterion{Scores: in.Scores}
	case SelectKT:
		crit = core.KTCriterion{Reference: in.Initial}
	default:
		return nil, fmt.Errorf("rankers: unknown Plackett-Luce criterion %d", p.Criterion)
	}
	return core.PostProcessWith(in.Initial, core.PlackettLuceNoise{Strength: p.Strength}, p.Samples, crit, rng)
}
