package rankers

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/fairdp"
	"repro/internal/fairness"
	"repro/internal/ilp"
	"repro/internal/perm"
	"repro/internal/quality"
)

// ILPRanker computes the DCG-optimal (α,β)-fair ranking of §IV-B. The
// default backend is the exact dynamic program of internal/fairdp, which
// provably solves the same integer program in polynomial time for a
// constant number of groups; Backend: SimplexBB switches to the general
// branch-and-bound ILP solver (useful for cross-checking and for
// constraint structures the DP does not model).
//
// Sigma > 0 reproduces §V-C: each side of every group-prefix constraint
// is relaxed by an independent |N(0,σ)| sample,
//
//	⌊α_p·ℓ⌋ − X ≤ Σ … ≤ ⌈β_p·ℓ⌉ + Y,   X, Y ~ |N(0,σ)|,
//
// which (as the paper notes) keeps noisy instances feasible rather than
// tightening them into infeasibility.
type ILPRanker struct {
	Sigma   float64
	Backend ILPBackend
}

// ILPBackend selects the solver behind ILPRanker.
type ILPBackend int

const (
	// DP solves via internal/fairdp (exact, polynomial; the default).
	DP ILPBackend = iota
	// SimplexBB solves the explicit x_{ij} integer program with
	// internal/ilp. Exponential worst case; intended for small k.
	SimplexBB
)

// Name implements Ranker.
func (r ILPRanker) Name() string {
	if r.Sigma > 0 {
		return fmt.Sprintf("ilp(σ=%g)", r.Sigma)
	}
	return "ilp"
}

// Rank implements Ranker.
func (r ILPRanker) Rank(in Instance, rng *rand.Rand) (perm.Perm, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if r.Sigma < 0 {
		return nil, fmt.Errorf("rankers: ilp σ = %v, want ≥ 0", r.Sigma)
	}
	if r.Sigma > 0 && rng == nil {
		return nil, fmt.Errorf("rankers: ilp with σ > 0 needs an RNG")
	}
	b := in.Bounds
	if r.Sigma > 0 {
		b = relaxBounds(in.Bounds, r.Sigma, rng)
	}
	switch r.Backend {
	case DP:
		p, _, err := fairdp.Solve(in.Scores, in.Groups, b, nil)
		if err != nil {
			return nil, fmt.Errorf("rankers: ilp(dp): %w", err)
		}
		return p, nil
	case SimplexBB:
		return solveSimplex(in, b)
	default:
		return nil, fmt.Errorf("rankers: unknown ILP backend %d", r.Backend)
	}
}

// relaxBounds widens every (group, prefix) constraint by |N(0,σ)| on
// each side. Integer effective bounds: the lower bound becomes
// ⌈lower − X⌉ and the upper ⌊upper + Y⌋, clamped back into [0, ℓ].
func relaxBounds(b *fairness.Bounds, sigma float64, rng *rand.Rand) *fairness.Bounds {
	nb := b.Clone()
	for i := range nb.Lower {
		for g := range nb.Lower[i] {
			x := math.Abs(rng.NormFloat64() * sigma)
			y := math.Abs(rng.NormFloat64() * sigma)
			nb.Lower[i][g] = int(math.Ceil(float64(nb.Lower[i][g]) - x))
			nb.Upper[i][g] = int(math.Floor(float64(nb.Upper[i][g]) + y))
		}
	}
	nb.Clamp()
	return nb
}

// solveSimplex builds the explicit §IV-B integer program and solves it
// with the branch-and-bound solver.
func solveSimplex(in Instance, b *fairness.Bounds) (perm.Perm, error) {
	d := len(in.Initial)
	if d == 0 {
		return perm.Perm{}, nil
	}
	obj := make([]float64, d*d)
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			obj[i*d+j] = in.Scores[i] * quality.LogDiscount(j+1)
		}
	}
	var cons []ilp.Constraint
	for j := 0; j < d; j++ {
		c := make([]float64, d*d)
		for i := 0; i < d; i++ {
			c[i*d+j] = 1
		}
		cons = append(cons, ilp.Constraint{Coeffs: c, Rel: ilp.EQ, RHS: 1})
	}
	for i := 0; i < d; i++ {
		c := make([]float64, d*d)
		for j := 0; j < d; j++ {
			c[i*d+j] = 1
		}
		cons = append(cons, ilp.Constraint{Coeffs: c, Rel: ilp.LE, RHS: 1})
	}
	for ell := 1; ell <= d; ell++ {
		for p := 0; p < in.Groups.NumGroups(); p++ {
			c := make([]float64, d*d)
			for i := 0; i < d; i++ {
				if in.Groups.Of(i) != p {
					continue
				}
				for j := 0; j < ell; j++ {
					c[i*d+j] = 1
				}
			}
			cons = append(cons,
				ilp.Constraint{Coeffs: c, Rel: ilp.GE, RHS: float64(b.Lower[ell-1][p])},
				ilp.Constraint{Coeffs: append([]float64(nil), c...), Rel: ilp.LE, RHS: float64(b.Upper[ell-1][p])},
			)
		}
	}
	sol, err := ilp.Solve(ilp.Problem{Objective: obj, Constraints: cons, Integer: ilp.AllInteger(d * d)}, ilp.Options{})
	if err != nil {
		return nil, fmt.Errorf("rankers: ilp(simplex): %w", err)
	}
	if sol.Status != ilp.Optimal {
		return nil, fmt.Errorf("rankers: ilp(simplex): %s: %w", sol.Status, ErrInfeasible)
	}
	out := make(perm.Perm, d)
	for j := 0; j < d; j++ {
		out[j] = -1
		for i := 0; i < d; i++ {
			if sol.X[i*d+j] > 0.5 {
				out[j] = i
				break
			}
		}
		if out[j] < 0 {
			return nil, fmt.Errorf("rankers: ilp(simplex): position %d unassigned", j)
		}
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("rankers: ilp(simplex) produced invalid ranking: %w", err)
	}
	return out, nil
}
