package rankers

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/perm"
)

// DetConstSort is the deterministic constrained-sort post-processor of
// Geyik et al. (KDD'19, Algorithm 3), the LinkedIn Talent Search
// re-ranker the paper compares against.
//
// The algorithm walks target positions k = 1, 2, …; whenever a group's
// minimum count ⌊α_g·k⌋ increases, that group's next-best candidate is
// appended and then bubbled up as far as score order wants, but never
// above the position whose minimum count demanded it (maxIndices). Here
// the per-position minimum counts come from the instance's bound table
// (Lower[k−1][g]), which equals ⌊α_g·k⌋ for tables built from
// constraints.
//
// Sigma > 0 reproduces the noisy-constraint variant of §V-C: an
// independent N(0,σ) sample is added to each tempMinCount (Geyik et al.
// Algorithm 3 line 7) before rounding.
type DetConstSort struct {
	Sigma float64
}

// Name implements Ranker.
func (d DetConstSort) Name() string {
	if d.Sigma > 0 {
		return fmt.Sprintf("detconstsort(σ=%g)", d.Sigma)
	}
	return "detconstsort"
}

// Rank implements Ranker.
func (d DetConstSort) Rank(in Instance, rng *rand.Rand) (perm.Perm, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if d.Sigma < 0 {
		return nil, fmt.Errorf("rankers: detconstsort σ = %v, want ≥ 0", d.Sigma)
	}
	if d.Sigma > 0 && rng == nil {
		return nil, fmt.Errorf("rankers: detconstsort with σ > 0 needs an RNG")
	}
	n := len(in.Initial)
	if n == 0 {
		return perm.Perm{}, nil
	}
	g := in.Groups.NumGroups()

	// Per-group candidate queues in non-increasing score order.
	queues := in.Groups.Members()
	for _, q := range queues {
		sort.SliceStable(q, func(a, b int) bool { return in.Scores[q[a]] > in.Scores[q[b]] })
	}
	nextIdx := make([]int, g)

	ranked := make([]int, 0, n) // items placed so far
	maxIdx := make([]int, 0, n) // latest 0-based position each may sink to
	counts := make([]int, g)    // placed per group
	minCounts := make([]int, g) // satisfied minimum counts
	tempMin := make([]int, g)
	var changed []int

	// The loop is bounded: with exact tables all items are placed by
	// k = n; noisy demands can stall below, so after the cap any
	// remaining items are appended in score order (documented safeguard
	// — the published algorithm has no noise and needs none).
	kCap := 10*n + 100
	for k := 1; len(ranked) < n && k <= kCap; k++ {
		for gid := 0; gid < g; gid++ {
			base := in.Bounds.Lower[min(k, n)-1][gid]
			if d.Sigma > 0 {
				base += int(math.Round(rng.NormFloat64() * d.Sigma))
			}
			if remaining := len(queues[gid]) - nextIdx[gid]; base > counts[gid]+remaining {
				base = counts[gid] + remaining
			}
			tempMin[gid] = base
		}
		changed = changed[:0]
		for gid := 0; gid < g; gid++ {
			if minCounts[gid] < tempMin[gid] && nextIdx[gid] < len(queues[gid]) {
				changed = append(changed, gid)
			}
		}
		if len(changed) == 0 {
			continue
		}
		// Highest next-candidate score first.
		sort.SliceStable(changed, func(a, b int) bool {
			sa := in.Scores[queues[changed[a]][nextIdx[changed[a]]]]
			sb := in.Scores[queues[changed[b]][nextIdx[changed[b]]]]
			return sa > sb
		})
		for _, gid := range changed {
			// The demand may exceed one unit (noise); place until met or
			// the queue is empty.
			for minCounts[gid] < tempMin[gid] && nextIdx[gid] < len(queues[gid]) && len(ranked) < n {
				item := queues[gid][nextIdx[gid]]
				nextIdx[gid]++
				ranked = append(ranked, item)
				maxIdx = append(maxIdx, k-1)
				// Bubble up while the item above scores lower and may
				// legally sink one position.
				for start := len(ranked) - 1; start > 0; start-- {
					if maxIdx[start-1] >= start && in.Scores[ranked[start-1]] < in.Scores[ranked[start]] {
						ranked[start-1], ranked[start] = ranked[start], ranked[start-1]
						maxIdx[start-1], maxIdx[start] = maxIdx[start], maxIdx[start-1]
					} else {
						break
					}
				}
				counts[gid]++
				minCounts[gid]++
			}
		}
		copy(minCounts, tempMin) // published line: minCounts := tempMinCounts
	}
	// Safeguard fill (only reachable with noisy demands).
	if len(ranked) < n {
		var rest []int
		for gid := 0; gid < g; gid++ {
			rest = append(rest, queues[gid][nextIdx[gid]:]...)
		}
		sort.SliceStable(rest, func(a, b int) bool { return in.Scores[rest[a]] > in.Scores[rest[b]] })
		ranked = append(ranked, rest...)
	}
	out := perm.Perm(ranked)
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("rankers: detconstsort produced invalid ranking: %w", err)
	}
	return out, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
