package rankers

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/perm"
)

// GrBinaryIPF is the exact Kendall-tau-optimal P-fair post-processor for
// a binary protected attribute, after Wei et al. (SIGMOD'22, the
// mergesort-inspired GrBinaryIPF).
//
// With two groups, a Kendall-tau-optimal fair ranking preserves each
// group's internal order from the initial ranking (swapping two adjacent
// same-group items into initial order removes a discordant pair and
// leaves the group pattern — hence feasibility — unchanged), so the
// output is a merge of the two group subsequences. Within-group pairs of
// a merge are always concordant, so the Kendall tau distance to the
// initial ranking is the number of flipped cross-group pairs, which
// decomposes over merge steps: appending the i-th A-item while j B-items
// are placed flips exactly the not-yet-placed B-items that precede it in
// the initial ranking. That makes the optimal merge a shortest path on
// the (i, j) grid, masked by per-prefix feasibility of the group-A count
// — an O(n_A·n_B) dynamic program solved exactly here.
type GrBinaryIPF struct{}

// Name implements Ranker.
func (GrBinaryIPF) Name() string { return "gr-binary-ipf" }

// Rank implements Ranker.
func (GrBinaryIPF) Rank(in Instance, _ *rand.Rand) (perm.Perm, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if in.Groups.NumGroups() != 2 {
		return nil, fmt.Errorf("rankers: gr-binary-ipf needs exactly 2 groups, have %d", in.Groups.NumGroups())
	}
	d := len(in.Initial)
	if d == 0 {
		return perm.Perm{}, nil
	}

	// Group subsequences in initial order.
	var qa, qb []int
	for _, item := range in.Initial {
		if in.Groups.Of(item) == 0 {
			qa = append(qa, item)
		} else {
			qb = append(qb, item)
		}
	}
	na, nb := len(qa), len(qb)
	pos := in.Initial.Positions()

	// allowed interval of the group-0 count at each prefix length.
	allowLo := make([]int, d+1)
	allowHi := make([]int, d+1)
	for ell := 1; ell <= d; ell++ {
		lo := maxInt(in.Bounds.Lower[ell-1][0], ell-in.Bounds.Upper[ell-1][1])
		hi := minInt(in.Bounds.Upper[ell-1][0], ell-in.Bounds.Lower[ell-1][1])
		lo = maxInt(lo, ell-nb)
		hi = minInt(hi, minInt(na, ell))
		allowLo[ell], allowHi[ell] = lo, hi
	}

	// crossA[i][j] = B-items still unplaced (index ≥ j) that precede
	// A[i] in the initial ranking — the pairs flipped by placing A[i]
	// next. Suffix sums over j; crossB symmetric.
	crossA := make([][]int32, na)
	for i := 0; i < na; i++ {
		row := make([]int32, nb+1)
		for j := nb - 1; j >= 0; j-- {
			row[j] = row[j+1]
			if pos[qb[j]] < pos[qa[i]] {
				row[j]++
			}
		}
		crossA[i] = row
	}
	crossB := make([][]int32, nb)
	for j := 0; j < nb; j++ {
		row := make([]int32, na+1)
		for i := na - 1; i >= 0; i-- {
			row[i] = row[i+1]
			if pos[qa[i]] < pos[qb[j]] {
				row[i]++
			}
		}
		crossB[j] = row
	}

	// Shortest path over states (i, j) = items taken from each queue.
	const inf = math.MaxInt64 / 4
	dp := make([][]int64, na+1)
	from := make([][]int8, na+1) // 0 = came by taking A, 1 = by taking B
	for i := range dp {
		dp[i] = make([]int64, nb+1)
		from[i] = make([]int8, nb+1)
		for j := range dp[i] {
			dp[i][j] = inf
		}
	}
	dp[0][0] = 0
	for i := 0; i <= na; i++ {
		for j := 0; j <= nb; j++ {
			if dp[i][j] == inf {
				continue
			}
			ell := i + j + 1
			if ell > d {
				continue
			}
			if i < na && i+1 >= allowLo[ell] && i+1 <= allowHi[ell] {
				c := dp[i][j] + int64(crossA[i][j])
				if c < dp[i+1][j] {
					dp[i+1][j] = c
					from[i+1][j] = 0
				}
			}
			if j < nb && i >= allowLo[ell] && i <= allowHi[ell] {
				c := dp[i][j] + int64(crossB[j][i])
				if c < dp[i][j+1] {
					dp[i][j+1] = c
					from[i][j+1] = 1
				}
			}
		}
	}
	if dp[na][nb] >= inf {
		return nil, fmt.Errorf("rankers: gr-binary-ipf: %w", ErrInfeasible)
	}

	// Reconstruct the merge back to front.
	out := make(perm.Perm, d)
	i, j := na, nb
	for ell := d - 1; ell >= 0; ell-- {
		if from[i][j] == 0 {
			i--
			out[ell] = qa[i]
		} else {
			j--
			out[ell] = qb[j]
		}
	}
	return out, nil
}

// ErrInfeasible reports that no ranking satisfies the fairness bounds.
var ErrInfeasible = errInfeasible{}

type errInfeasible struct{}

func (errInfeasible) Error() string { return "no ranking satisfies the fairness bounds" }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
