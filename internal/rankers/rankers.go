// Package rankers implements the five ranking post-processors compared
// in the paper's evaluation (§V-C) behind one interface:
//
//   - Mallows       — the paper's Algorithm 1 (attribute-blind), via internal/core
//   - DetConstSort  — Geyik et al., KDD'19 (Algorithm 3)
//   - ApproxMultiValuedIPF — Wei et al., SIGMOD'22 (footrule matching)
//   - GrBinaryIPF   — Wei et al., SIGMOD'22 (exact Kendall tau, 2 groups)
//   - ILP           — the paper's §IV-B program, solved exactly by internal/fairdp
//
// plus the score-sorted identity baseline. The attribute-aware
// algorithms accept a noise level σ reproducing the imperfect-knowledge
// experiment: Gaussian noise injected into their representation
// constraints exactly where §V-C prescribes.
package rankers

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/fairness"
	"repro/internal/perm"
	"repro/internal/quality"
)

// Instance bundles what the post-processors consume. Initial is the
// ranking being post-processed (in the experiments, a weakly fair
// ranking of candidates by descending score); Bounds is the (α,β) prefix
// bound table over exactly len(Initial) prefixes.
type Instance struct {
	Initial perm.Perm
	Scores  quality.Scores
	Groups  *fairness.Groups
	Bounds  *fairness.Bounds
	// Prob optionally refines Groups into a distribution over groups per
	// item (probabilistic protected attribute). Rankers consume the hard
	// Groups; Prob feeds the expected-fairness diagnostics downstream.
	// When set it must cover the same items and groups as Groups.
	Prob *fairness.ProbGroups
}

// Validate checks the cross-field invariants every ranker relies on.
func (in Instance) Validate() error {
	if err := in.Initial.Validate(); err != nil {
		return fmt.Errorf("rankers: invalid initial ranking: %w", err)
	}
	d := len(in.Initial)
	if len(in.Scores) != d {
		return fmt.Errorf("rankers: %d scores for %d items", len(in.Scores), d)
	}
	if err := in.Scores.Validate(); err != nil {
		return err
	}
	if in.Groups == nil || in.Bounds == nil {
		return fmt.Errorf("rankers: nil groups or bounds")
	}
	if in.Groups.NumItems() != d {
		return fmt.Errorf("rankers: groups cover %d items, want %d", in.Groups.NumItems(), d)
	}
	if in.Bounds.K() != d {
		return fmt.Errorf("rankers: bounds cover %d prefixes, want %d", in.Bounds.K(), d)
	}
	if d > 0 && in.Bounds.NumGroups() != in.Groups.NumGroups() {
		return fmt.Errorf("rankers: bounds cover %d groups, want %d", in.Bounds.NumGroups(), in.Groups.NumGroups())
	}
	if in.Prob != nil {
		if in.Prob.NumItems() != d {
			return fmt.Errorf("rankers: membership covers %d items, want %d", in.Prob.NumItems(), d)
		}
		if in.Prob.NumGroups() != in.Groups.NumGroups() {
			return fmt.Errorf("rankers: membership covers %d groups, want %d", in.Prob.NumGroups(), in.Groups.NumGroups())
		}
	}
	return nil
}

// Ranker post-processes an instance into a full ranking. rng feeds both
// randomized algorithms and the noisy-constraint variants; deterministic
// rankers with σ = 0 ignore it.
type Ranker interface {
	Name() string
	Rank(in Instance, rng *rand.Rand) (perm.Perm, error)
}

// ScoreSorted is the quality-optimal, fairness-oblivious baseline: items
// by non-increasing score.
type ScoreSorted struct{}

// Name implements Ranker.
func (ScoreSorted) Name() string { return "score-sorted" }

// Rank implements Ranker.
func (ScoreSorted) Rank(in Instance, _ *rand.Rand) (perm.Perm, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return quality.Ideal(in.Initial, in.Scores), nil
}

// Identity returns the initial ranking unchanged; useful as the
// "no post-processing" arm of experiments.
type Identity struct{}

// Name implements Ranker.
func (Identity) Name() string { return "initial" }

// Rank implements Ranker.
func (Identity) Rank(in Instance, _ *rand.Rand) (perm.Perm, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return in.Initial.Clone(), nil
}

// MallowsCriterion selects how the Mallows ranker picks among samples.
type MallowsCriterion int

const (
	// SelectFirst keeps the first sample (pure randomization).
	SelectFirst MallowsCriterion = iota
	// SelectNDCG keeps the sample with the highest NDCG.
	SelectNDCG
	// SelectKT keeps the sample closest to the initial ranking.
	SelectKT
)

// Mallows is the paper's Algorithm 1: sample from M(Initial, θ), keep
// the best of m draws. It reads neither Groups nor Bounds — the
// attribute-blindness that gives the method its robustness.
type Mallows struct {
	Theta     float64
	Samples   int
	Criterion MallowsCriterion
}

// Name implements Ranker.
func (m Mallows) Name() string {
	return fmt.Sprintf("mallows(θ=%g,m=%d)", m.Theta, m.Samples)
}

// Rank implements Ranker.
func (m Mallows) Rank(in Instance, rng *rand.Rand) (perm.Perm, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	cfg := core.Config{Theta: m.Theta, Samples: m.Samples}
	switch m.Criterion {
	case SelectFirst:
	case SelectNDCG:
		cfg.Criterion = core.NDCGCriterion{Scores: in.Scores}
	case SelectKT:
		cfg.Criterion = core.KTCriterion{Reference: in.Initial}
	default:
		return nil, fmt.Errorf("rankers: unknown Mallows criterion %d", m.Criterion)
	}
	return core.PostProcess(in.Initial, cfg, rng)
}
