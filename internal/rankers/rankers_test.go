package rankers

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/fairness"
	"repro/internal/perm"
	"repro/internal/quality"
	"repro/internal/rankdist"
)

// makeInstance builds a valid instance with the score-sorted ranking as
// Initial and proportional constraints.
func makeInstance(t *testing.T, scores []float64, assign []int, g int, tol float64) Instance {
	t.Helper()
	gr := fairness.MustGroups(assign, g)
	c, err := fairness.Proportional(gr, tol)
	if err != nil {
		t.Fatal(err)
	}
	qs := quality.Scores(scores)
	return Instance{
		Initial: quality.Ideal(perm.Identity(len(scores)), qs),
		Scores:  qs,
		Groups:  gr,
		Bounds:  c.Table(len(scores)),
	}
}

func randomFeasibleInstance(t *testing.T, rng *rand.Rand, d, g int) Instance {
	t.Helper()
	assign := make([]int, d)
	for i := range assign {
		assign[i] = i % g // every group nonempty, balanced-ish
	}
	rng.Shuffle(d, func(i, j int) { assign[i], assign[j] = assign[j], assign[i] })
	scores := make([]float64, d)
	for i := range scores {
		scores[i] = math.Round(rng.Float64()*1000) / 10
	}
	return makeInstance(t, scores, assign, g, 0.05+rng.Float64()*0.3)
}

func TestInstanceValidate(t *testing.T) {
	in := makeInstance(t, []float64{3, 2, 1, 0}, []int{0, 1, 0, 1}, 2, 0.2)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := in
	bad.Scores = bad.Scores[:2]
	if err := bad.Validate(); err == nil {
		t.Error("accepted short scores")
	}
	bad = in
	bad.Initial = perm.Perm{0, 0, 1, 2}
	if err := bad.Validate(); err == nil {
		t.Error("accepted invalid initial")
	}
	bad = in
	bad.Groups = nil
	if err := bad.Validate(); err == nil {
		t.Error("accepted nil groups")
	}
	bad = in
	bad.Bounds = in.Bounds.Clone()
	bad.Bounds.Lower = bad.Bounds.Lower[:2]
	bad.Bounds.Upper = bad.Bounds.Upper[:2]
	if err := bad.Validate(); err == nil {
		t.Error("accepted short bounds")
	}
	bad = in
	bad.Groups = fairness.MustGroups([]int{0, 0, 0, 0}, 1)
	if err := bad.Validate(); err == nil {
		t.Error("accepted group-count mismatch")
	}
	bad = in
	bad.Scores = quality.Scores{1, 2, math.NaN(), 4}
	if err := bad.Validate(); err == nil {
		t.Error("accepted NaN score")
	}
}

func TestScoreSortedAndIdentity(t *testing.T) {
	in := makeInstance(t, []float64{1, 5, 3, 4}, []int{0, 1, 0, 1}, 2, 0.3)
	p, err := ScoreSorted{}.Rank(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(perm.MustNew(1, 3, 2, 0)) {
		t.Fatalf("score-sorted = %v", p)
	}
	q, err := Identity{}.Rank(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Equal(in.Initial) {
		t.Fatalf("identity = %v, want %v", q, in.Initial)
	}
	q[0], q[1] = q[1], q[0]
	if q.Equal(in.Initial) {
		t.Fatal("identity aliases the instance")
	}
	if (ScoreSorted{}).Name() == "" || (Identity{}).Name() == "" {
		t.Error("names must be nonempty")
	}
}

func TestMallowsRanker(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	in := randomFeasibleInstance(t, rng, 12, 2)
	for _, crit := range []MallowsCriterion{SelectFirst, SelectNDCG, SelectKT} {
		m := Mallows{Theta: 1, Samples: 5, Criterion: crit}
		p, err := m.Rank(in, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	// θ→∞ reproduces the initial ranking.
	p, err := Mallows{Theta: 30, Samples: 1}.Rank(in, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(in.Initial) {
		t.Fatalf("θ=30 sample differs from initial")
	}
	if _, err := (Mallows{Theta: 1, Samples: 1, Criterion: MallowsCriterion(99)}).Rank(in, rng); err == nil {
		t.Error("accepted unknown criterion")
	}
	if (Mallows{Theta: 0.5, Samples: 15}).Name() != "mallows(θ=0.5,m=15)" {
		t.Errorf("name = %s", Mallows{Theta: 0.5, Samples: 15}.Name())
	}
}

func TestDetConstSortSatisfiesMinimumsExactShares(t *testing.T) {
	// With α = exact shares (tol 0 lower bounds) and β = 1, DetConstSort
	// must produce zero lower-bound violations: its whole purpose is to
	// meet every ⌊share·k⌋ minimum.
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 40; trial++ {
		d := 6 + rng.Intn(14)
		g := 2 + rng.Intn(2)
		assign := make([]int, d)
		for i := range assign {
			assign[i] = i % g
		}
		rng.Shuffle(d, func(i, j int) { assign[i], assign[j] = assign[j], assign[i] })
		gr := fairness.MustGroups(assign, g)
		shares := gr.Shares()
		beta := make([]float64, g)
		for i := range beta {
			beta[i] = 1
		}
		c, err := fairness.NewConstraints(shares, beta)
		if err != nil {
			t.Fatal(err)
		}
		scores := make([]float64, d)
		for i := range scores {
			scores[i] = rng.Float64() * 100
		}
		qs := quality.Scores(scores)
		in := Instance{
			Initial: quality.Ideal(perm.Identity(d), qs),
			Scores:  qs,
			Groups:  gr,
			Bounds:  c.Table(d),
		}
		p, err := DetConstSort{}.Rank(in, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		v, err := fairness.EvaluateViolations(p, gr, in.Bounds)
		if err != nil {
			t.Fatal(err)
		}
		if v.LowerCount() != 0 {
			t.Fatalf("DetConstSort left %d lower violations (d=%d g=%d, p=%v)", v.LowerCount(), d, g, p)
		}
	}
}

func TestDetConstSortNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	in := randomFeasibleInstance(t, rng, 15, 3)
	p, err := DetConstSort{Sigma: 1}.Rank(in, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := (DetConstSort{Sigma: 1}).Rank(in, nil); err == nil {
		t.Error("accepted σ>0 without RNG")
	}
	if _, err := (DetConstSort{Sigma: -1}).Rank(in, rng); err == nil {
		t.Error("accepted negative σ")
	}
	if (DetConstSort{Sigma: 1}).Name() != "detconstsort(σ=1)" || (DetConstSort{}).Name() != "detconstsort" {
		t.Error("names wrong")
	}
}

// bruteBest finds the feasible permutation minimizing metric (nil result
// if no feasible permutation exists).
func bruteBest(t *testing.T, in Instance, metric func(perm.Perm) float64) (perm.Perm, float64) {
	t.Helper()
	var best perm.Perm
	bestV := math.Inf(1)
	perm.All(len(in.Initial), func(p perm.Perm) bool {
		v, err := fairness.EvaluateViolations(p, in.Groups, in.Bounds)
		if err != nil {
			t.Fatal(err)
		}
		if v.UnionCount() > 0 {
			return true
		}
		if m := metric(p); m < bestV {
			bestV = m
			best = p.Clone()
		}
		return true
	})
	return best, bestV
}

func TestIPFMatchesBruteForceFootrule(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 30; trial++ {
		d := 4 + rng.Intn(3) // 4..6
		g := 2 + rng.Intn(2)
		in := randomFeasibleInstance(t, rng, d, g)
		want, wantV := bruteBest(t, in, func(p perm.Perm) float64 {
			f, err := rankdist.Footrule(p, in.Initial)
			if err != nil {
				t.Fatal(err)
			}
			return float64(f)
		})
		got, err := ApproxMultiValuedIPF{}.Rank(in, nil)
		if want == nil {
			if err == nil {
				t.Fatalf("brute infeasible but IPF returned %v", got)
			}
			continue
		}
		if err != nil {
			t.Fatalf("brute optimum %v but IPF errored: %v", wantV, err)
		}
		viol, err := fairness.EvaluateViolations(got, in.Groups, in.Bounds)
		if err != nil {
			t.Fatal(err)
		}
		if viol.UnionCount() > 0 {
			t.Fatalf("IPF output violates bounds: %v", got)
		}
		f, err := rankdist.Footrule(got, in.Initial)
		if err != nil {
			t.Fatal(err)
		}
		if float64(f) != wantV {
			t.Fatalf("IPF footrule %d, brute optimum %v (d=%d g=%d)", f, wantV, d, g)
		}
	}
}

func TestIPFNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	in := randomFeasibleInstance(t, rng, 12, 3)
	p, err := ApproxMultiValuedIPF{Sigma: 1}.Rank(in, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := (ApproxMultiValuedIPF{Sigma: 1}).Rank(in, nil); err == nil {
		t.Error("accepted σ>0 without RNG")
	}
	if _, err := (ApproxMultiValuedIPF{Sigma: -1}).Rank(in, rng); err == nil {
		t.Error("accepted negative σ")
	}
}

func TestGrBinaryMatchesBruteForceKT(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	for trial := 0; trial < 40; trial++ {
		d := 4 + rng.Intn(4) // 4..7
		in := randomFeasibleInstance(t, rng, d, 2)
		want, wantV := bruteBest(t, in, func(p perm.Perm) float64 {
			kt, err := rankdist.KendallTau(p, in.Initial)
			if err != nil {
				t.Fatal(err)
			}
			return float64(kt)
		})
		got, err := GrBinaryIPF{}.Rank(in, nil)
		if want == nil {
			if !errors.Is(err, ErrInfeasible) {
				t.Fatalf("brute infeasible but GrBinary gave %v, %v", got, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("brute optimum %v but GrBinary errored: %v", wantV, err)
		}
		viol, err := fairness.EvaluateViolations(got, in.Groups, in.Bounds)
		if err != nil {
			t.Fatal(err)
		}
		if viol.UnionCount() > 0 {
			t.Fatalf("GrBinary output violates bounds: %v", got)
		}
		kt, err := rankdist.KendallTau(got, in.Initial)
		if err != nil {
			t.Fatal(err)
		}
		if float64(kt) != wantV {
			t.Fatalf("GrBinary KT %d, brute optimum %v (d=%d)", kt, wantV, d)
		}
	}
}

func TestGrBinaryRejectsNonBinary(t *testing.T) {
	rng := rand.New(rand.NewSource(106))
	in := randomFeasibleInstance(t, rng, 6, 3)
	if _, err := (GrBinaryIPF{}).Rank(in, nil); err == nil {
		t.Fatal("accepted 3 groups")
	}
}

func TestILPRankerMatchesBruteForceDCG(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	for trial := 0; trial < 20; trial++ {
		d := 4 + rng.Intn(3)
		g := 2 + rng.Intn(2)
		in := randomFeasibleInstance(t, rng, d, g)
		want, wantV := bruteBest(t, in, func(p perm.Perm) float64 {
			dcg, err := quality.DCG(p, in.Scores, d)
			if err != nil {
				t.Fatal(err)
			}
			return -dcg // bruteBest minimizes
		})
		got, err := ILPRanker{}.Rank(in, nil)
		if want == nil {
			if err == nil {
				t.Fatal("brute infeasible but ILP ranked")
			}
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		dcg, err := quality.DCG(got, in.Scores, d)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(dcg-(-wantV)) > 1e-9 {
			t.Fatalf("ILP DCG %v, brute %v", dcg, -wantV)
		}
	}
}

func TestILPBackendsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(108))
	for trial := 0; trial < 6; trial++ {
		d := 4 + rng.Intn(2)
		in := randomFeasibleInstance(t, rng, d, 2)
		pDP, err := ILPRanker{Backend: DP}.Rank(in, nil)
		if err != nil {
			t.Fatal(err)
		}
		pBB, err := ILPRanker{Backend: SimplexBB}.Rank(in, nil)
		if err != nil {
			t.Fatal(err)
		}
		a, _ := quality.DCG(pDP, in.Scores, d)
		b, _ := quality.DCG(pBB, in.Scores, d)
		if math.Abs(a-b) > 1e-6 {
			t.Fatalf("backends disagree: DP %v vs BB %v", a, b)
		}
	}
}

func TestILPRankerNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	in := randomFeasibleInstance(t, rng, 10, 2)
	p, err := ILPRanker{Sigma: 1}.Rank(in, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := (ILPRanker{Sigma: 1}).Rank(in, nil); err == nil {
		t.Error("accepted σ>0 without RNG")
	}
	if _, err := (ILPRanker{Sigma: -1}).Rank(in, rng); err == nil {
		t.Error("accepted negative σ")
	}
	if _, err := (ILPRanker{Backend: ILPBackend(9)}).Rank(in, nil); err == nil {
		t.Error("accepted unknown backend")
	}
	if (ILPRanker{Sigma: 1}).Name() != "ilp(σ=1)" || (ILPRanker{}).Name() != "ilp" {
		t.Error("names wrong")
	}
}

func TestAllRankersEmptyInstance(t *testing.T) {
	gr := fairness.MustGroups(nil, 1)
	c, _ := fairness.NewConstraints([]float64{0}, []float64{1})
	in := Instance{Initial: perm.Perm{}, Scores: quality.Scores{}, Groups: gr, Bounds: c.Table(0)}
	rng := rand.New(rand.NewSource(110))
	rankersUnderTest := []Ranker{
		ScoreSorted{}, Identity{}, Mallows{Theta: 1, Samples: 1},
		DetConstSort{}, ApproxMultiValuedIPF{}, ILPRanker{},
	}
	for _, r := range rankersUnderTest {
		p, err := r.Rank(in, rng)
		if err != nil {
			t.Fatalf("%s on empty instance: %v", r.Name(), err)
		}
		if len(p) != 0 {
			t.Fatalf("%s returned non-empty ranking", r.Name())
		}
	}
}
