package service

// Transport middleware tests: request-ID injection, panic recovery,
// and the per-route counters behind GET /v1/metrics.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	fairrank "repro"
)

func TestRequestIDInjectedAndPreserved(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	h := NewHandler(s)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if got := rec.Header().Get("X-Request-Id"); got == "" {
		t.Error("response without a generated X-Request-Id")
	}

	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	req.Header.Set("X-Request-Id", "proxy-abc-123")
	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, req)
	if got := rec2.Header().Get("X-Request-Id"); got != "proxy-abc-123" {
		t.Errorf("inbound request ID not preserved: got %q", got)
	}
}

func TestRecoveryMiddleware(t *testing.T) {
	m := newMetrics()
	h := chain(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("boom")
	}), recovery(m, nil))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", rec.Code)
	}
	var e map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e["error"] != "internal server error" {
		t.Errorf("panic body %q", rec.Body.String())
	}
	if strings.Contains(rec.Body.String(), "boom") {
		t.Error("panic value leaked into the response")
	}
	if m.panics.Load() != 1 {
		t.Errorf("panics counter = %d, want 1", m.panics.Load())
	}
	// A panic after the handler already wrote must not write a second
	// status — just recover and count.
	h2 := chain(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		panic("late")
	}), recovery(m, nil))
	rec2 := httptest.NewRecorder()
	h2.ServeHTTP(rec2, httptest.NewRequest(http.MethodGet, "/", nil))
	if rec2.Code != http.StatusOK {
		t.Errorf("late panic rewrote the status to %d", rec2.Code)
	}
	if m.panics.Load() != 2 {
		t.Errorf("panics counter = %d, want 2", m.panics.Load())
	}
}

// TestRouteMetricsCountsPanics: a panicking handler must land in its
// route's errors_5xx — the failures operators most want to alert on —
// while the outer recovery middleware still produces the 500 response.
func TestRouteMetricsCountsPanics(t *testing.T) {
	m := newMetrics()
	rs := m.route("GET /boom")
	h := chain(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("boom")
	}), recovery(m, nil), routeMetrics(rs))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", rec.Code)
	}
	if rs.errors5xx.Load() != 1 {
		t.Errorf("errors_5xx = %d, want 1", rs.errors5xx.Load())
	}
	if rs.inflight.Load() != 0 {
		t.Errorf("inflight = %d after the panic, want 0", rs.inflight.Load())
	}
	if m.panics.Load() != 1 {
		t.Errorf("panics = %d, want 1", m.panics.Load())
	}
}

// TestMetricsEndpointCounts: the /v1/metrics snapshot must agree with
// the traffic the handler actually served — per-route requests and
// error classes, engine counters, and the ranker-cache gauge.
func TestMetricsEndpointCounts(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	h := NewHandler(s)
	serve := func(method, path, body string) int {
		var rd *strings.Reader
		if body == "" {
			rd = strings.NewReader("")
		} else {
			rd = strings.NewReader(body)
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(method, path, rd))
		return rec.Code
	}

	good := `{"candidates": [{"id":"a","score":2,"group":"x"},{"id":"b","score":1,"group":"y"}], "samples": 3, "seed": 1}`
	if code := serve(http.MethodPost, "/v1/rank", good); code != http.StatusOK {
		t.Fatalf("good rank returned %d", code)
	}
	if code := serve(http.MethodPost, "/v1/rank", `{"candidates": []}`); code != http.StatusBadRequest {
		t.Fatalf("bad rank returned %d", code)
	}
	if code := serve(http.MethodGet, "/healthz", ""); code != http.StatusOK {
		t.Fatalf("healthz returned %d", code)
	}

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/metrics", strings.NewReader("")))
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics returned %d: %s", rec.Code, rec.Body.String())
	}
	var m MetricsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	byRoute := map[string]RouteMetrics{}
	for _, rt := range m.Routes {
		byRoute[rt.Route] = rt
	}
	rank := byRoute["POST /v1/rank"]
	if rank.Requests != 2 || rank.Errors4xx != 1 || rank.Errors5xx != 0 {
		t.Errorf("POST /v1/rank counters %+v", rank)
	}
	if rank.LatencyMsSum <= 0 {
		t.Errorf("POST /v1/rank latency sum %v, want > 0", rank.LatencyMsSum)
	}
	if hz := byRoute["GET /healthz"]; hz.Requests != 1 {
		t.Errorf("GET /healthz counters %+v", hz)
	}
	// The metrics request itself is counted, snapshotted mid-flight.
	if me := byRoute["GET /v1/metrics"]; me.Requests != 1 || me.InFlight != 1 {
		t.Errorf("GET /v1/metrics counters %+v", me)
	}
	if m.Queue.Workers != 2 || m.Queue.Depth != 8 {
		t.Errorf("queue shape %+v", m.Queue)
	}
	if m.Queue.Admitted != 0 || m.Queue.InFlight != 0 {
		t.Errorf("queue gauges not idle: %+v", m.Queue)
	}
	// One successful rank through the default algorithm: one cached
	// engine, one engine request, three draws, one table miss.
	if m.Engine.RankersCached != 1 || m.Engine.Requests != 1 {
		t.Errorf("engine gauges %+v", m.Engine)
	}
	if m.Engine.Draws != 3 || m.Engine.TableMisses != 1 {
		t.Errorf("engine counters %+v", m.Engine)
	}
	if m.Panics != 0 {
		t.Errorf("panics = %d", m.Panics)
	}
}

// TestRankerStatsDirect pins the engine-layer hook the metrics build
// on: requests, draws, and table hit/miss counting on fairrank.Ranker.
func TestRankerStatsDirect(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	req := &RankRequest{Candidates: pool(10), Samples: ptr(4), Seed: 1}
	for i := 0; i < 3; i++ {
		if _, err := s.Rank(t.Context(), req); err != nil {
			t.Fatal(err)
		}
	}
	s.mu.Lock()
	if len(s.rankers) != 1 {
		t.Fatalf("%d cached rankers, want 1", len(s.rankers))
	}
	var st fairrank.RankerStats
	for _, r := range s.rankers {
		st = r.Stats()
	}
	s.mu.Unlock()
	if st.Requests != 3 || st.Draws != 12 {
		t.Errorf("requests=%d draws=%d, want 3 and 12", st.Requests, st.Draws)
	}
	if st.TableMisses != 1 || st.TableHits != 2 {
		t.Errorf("table hits=%d misses=%d, want 2 and 1", st.TableHits, st.TableMisses)
	}
}

// Truncated rank requests on each built-in noise axis surface per-noise
// truncation counters in /v1/metrics, and the axes sum to the total.
func TestMetricsPerNoiseTruncation(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	for _, noise := range []string{"mallows", "gmallows", "plackett-luce"} {
		req := &RankRequest{
			Candidates: pool(30),
			Noise:      noise,
			Samples:    ptr(4),
			TopK:       ptr(5),
			Seed:       1,
		}
		if _, err := s.Rank(t.Context(), req); err != nil {
			t.Fatalf("%s: %v", noise, err)
		}
	}
	m := s.Metrics()
	if m.Engine.DrawsTruncated != 12 {
		t.Fatalf("truncated draws = %d, want 12 (3 requests × 4 samples)", m.Engine.DrawsTruncated)
	}
	var sum int64
	for _, noise := range []string{"mallows", "gmallows", "plackett-luce"} {
		c := m.Engine.DrawsTruncatedByNoise[noise]
		if c != 4 {
			t.Errorf("truncated draws on %s = %d, want 4", noise, c)
		}
		sum += c
	}
	if sum != m.Engine.DrawsTruncated {
		t.Errorf("per-noise axes sum to %d, total is %d", sum, m.Engine.DrawsTruncated)
	}
}
