package service

import (
	"context"
	"errors"
	"net"
	"net/http"
	"time"

	"repro/internal/jobstore"
)

// ServerConfig parameterizes a Server: the service configuration plus
// the HTTP serving shape. The zero value listens on :8080 with the
// service defaults.
type ServerConfig struct {
	Config
	// Addr is the listen address. "127.0.0.1:0" picks a free port —
	// the in-process spawn mode tests, fairrank-soak, and the gateway
	// fleet harness use to run real backends without orchestration.
	// Default ":8080".
	Addr string
	// DrainTimeout is the grace period Shutdown grants in-flight
	// requests and running jobs when its context carries no deadline of
	// its own. Default 30s. When the grace period expires with jobs
	// still running, a durable store (JobDir) keeps their progress: the
	// supervisors hand the jobs back as pending on the way out and the
	// next start resumes them.
	DrainTimeout time.Duration
	// JobDir, when nonempty, stores async jobs durably in this
	// directory (fairrankd's -job-dir flag): NewServer opens the
	// WAL-backed store, replays it, and re-enqueues whatever an earlier
	// process left unfinished. Empty keeps jobs in memory. Mutually
	// exclusive with Config.JobStore (which wins if both are set).
	JobDir string
}

// Server is the canonical fairrankd serving loop — flags → Config →
// http.Server with the full drain sequence — exported so cmd/fairrankd
// shrinks to flag parsing and so tests, fairrank-soak, and the gateway
// can spawn real in-process backends over real listeners.
//
// Lifecycle: NewServer → Start (binds the listener, serves in the
// background) → Shutdown (graceful drain) or Close (abrupt stop — the
// fleet harness's backend-kill switch). Err delivers the serve loop's
// terminal error.
type Server struct {
	cfg       ServerConfig
	svc       *Service
	http      *http.Server
	ln        net.Listener
	errc      chan error
	recovered int
}

// NewServer builds a Server around a fresh Service. When JobDir is set
// it opens (replaying) the durable job store and re-enqueues every
// unfinished job before returning — resumed work starts draining as
// soon as Start serves. Nothing listens until Start.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Addr == "" {
		cfg.Addr = ":8080"
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 30 * time.Second
	}
	if cfg.JobStore == nil && cfg.JobDir != "" {
		store, err := jobstore.OpenDisk(cfg.JobDir)
		if err != nil {
			return nil, err
		}
		cfg.JobStore = store
	}
	svc := New(cfg.Config)
	s := &Server{
		cfg: cfg,
		svc: svc,
		http: &http.Server{
			Handler:           NewHandler(svc),
			ReadHeaderTimeout: 5 * time.Second,
			ReadTimeout:       60 * time.Second,
			WriteTimeout:      120 * time.Second,
			IdleTimeout:       120 * time.Second,
		},
		errc: make(chan error, 1),
	}
	if cfg.JobStore != nil {
		s.recovered = svc.ResumeJobs()
	}
	return s, nil
}

// Recovered reports how many unfinished jobs NewServer re-enqueued
// from the durable store.
func (s *Server) Recovered() int { return s.recovered }

// Service exposes the underlying Service (metrics, drain state) to
// embedders like the soak harness.
func (s *Server) Service() *Service { return s.svc }

// Start binds the configured address and serves in the background.
// After it returns, Addr/URL report the bound address (resolving the
// ":0" form) and the server accepts requests.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	go func() {
		err := s.http.Serve(ln)
		if errors.Is(err, http.ErrServerClosed) {
			err = nil
		}
		s.errc <- err
	}()
	return nil
}

// Addr is the bound listen address; valid after Start.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL is the server's HTTP base URL; valid after Start.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Err delivers the serve loop's terminal error: nil after a clean
// Shutdown/Close, the listener failure otherwise. It fires once.
func (s *Server) Err() <-chan error { return s.errc }

// Shutdown runs the full drain sequence, in dependency order: withdraw
// readiness (/readyz 503, new job submissions rejected) so load
// balancers stop routing first, give running jobs and in-flight
// requests the grace period, shut the HTTP server down, then
// hard-cancel whatever jobs remain. When ctx carries no deadline the
// configured DrainTimeout bounds the grace period. A grace period that
// expires with work still running is reported as context.DeadlineExceeded
// after the sequence completes; it is not fatal — the hard stop already
// happened.
func (s *Server) Shutdown(ctx context.Context) error {
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.DrainTimeout)
		defer cancel()
	}
	s.svc.BeginDrain()
	jobsErr := s.svc.DrainJobs(ctx)
	httpErr := s.http.Shutdown(ctx)
	s.svc.Close()
	if httpErr != nil && !errors.Is(httpErr, context.DeadlineExceeded) {
		return httpErr
	}
	if jobsErr != nil {
		return jobsErr
	}
	return httpErr
}

// Close stops the server abruptly: the listener and every open
// connection are closed and running jobs are cancelled, with no drain.
// This is the fleet harness's backend-kill switch; production shutdown
// should use Shutdown.
func (s *Server) Close() error {
	err := s.http.Close()
	s.svc.Close()
	return err
}
