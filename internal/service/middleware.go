package service

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"log/slog"
	"net/http"
	"sync/atomic"
	"time"
)

// The transport middleware stack. Order (outermost first) as applied by
// NewHandler:
//
//	requestID → accessLog → recovery → mux → [per-route metrics → handler]
//
// requestID runs first so the access log and any panic report carry the
// ID; recovery sits inside the log so a panicking handler still logs a
// 500 line; per-route metrics wrap each route's handler individually,
// so they key on the registered pattern rather than the raw URL.

// middleware is a composable http.Handler wrapper.
type middleware func(http.Handler) http.Handler

// chain applies mws to h, first element outermost.
func chain(h http.Handler, mws ...middleware) http.Handler {
	for i := len(mws) - 1; i >= 0; i-- {
		h = mws[i](h)
	}
	return h
}

// requestIDHeader is the inbound/outbound request-ID header. Inbound
// IDs (from a proxy or a retrying client) are preserved; otherwise one
// is generated.
const requestIDHeader = "X-Request-Id"

// reqIDPrefix decorrelates IDs across processes; reqIDSeq across
// requests within one.
var (
	reqIDPrefix = func() string {
		var b [4]byte
		if _, err := rand.Read(b[:]); err != nil {
			return "00000000"
		}
		return hex.EncodeToString(b[:])
	}()
	reqIDSeq atomic.Int64
)

// requestID ensures every request carries an ID, echoed on the response
// so clients and logs can correlate.
func requestID() middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			id := r.Header.Get(requestIDHeader)
			if id == "" {
				id = fmt.Sprintf("%s-%06d", reqIDPrefix, reqIDSeq.Add(1))
				r.Header.Set(requestIDHeader, id)
			}
			w.Header().Set(requestIDHeader, id)
			next.ServeHTTP(w, r)
		})
	}
}

// statusWriter captures the response status and size for logging and
// metrics. WriteHeader-less handlers count as 200, like net/http.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sw *statusWriter) WriteHeader(status int) {
	if sw.status == 0 {
		sw.status = status
	}
	sw.ResponseWriter.WriteHeader(status)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(p)
	sw.bytes += int64(n)
	return n, err
}

func (sw *statusWriter) Status() int {
	if sw.status == 0 {
		return http.StatusOK
	}
	return sw.status
}

// Flush passes through so streaming responses keep working behind the
// middleware stack. Flushing commits the response (an implicit 200
// when nothing was written yet), so recovery knows not to write a
// second status into the stream.
func (sw *statusWriter) Flush() {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// accessLog emits one structured line per request. A nil logger
// disables the middleware entirely (no wrapper in the chain).
func accessLog(logger *slog.Logger) middleware {
	return func(next http.Handler) http.Handler {
		if logger == nil {
			return next
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			sw := &statusWriter{ResponseWriter: w}
			start := time.Now()
			next.ServeHTTP(sw, r)
			logger.Info("request",
				"method", r.Method,
				"path", r.URL.Path,
				"status", sw.Status(),
				"bytes", sw.bytes,
				"duration_ms", float64(time.Since(start))/float64(time.Millisecond),
				"request_id", r.Header.Get(requestIDHeader),
			)
		})
	}
}

// recovery turns a handler panic into a 500 with a JSON error body
// (when nothing was written yet) instead of a torn connection, counts
// it, and logs it with the request ID. The panic value stays out of the
// response on purpose.
func recovery(m *metrics, logger *slog.Logger) middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			sw := &statusWriter{ResponseWriter: w}
			defer func() {
				if v := recover(); v != nil {
					m.panics.Add(1)
					if logger != nil {
						logger.Error("panic",
							"method", r.Method,
							"path", r.URL.Path,
							"panic", fmt.Sprint(v),
							"request_id", r.Header.Get(requestIDHeader),
						)
					}
					if sw.status == 0 {
						writeJSON(sw, http.StatusInternalServerError,
							map[string]string{"error": "internal server error"})
					}
				}
			}()
			next.ServeHTTP(sw, r)
		})
	}
}

// routeMetrics maintains the per-route counters served by /v1/metrics.
// Applied per registered route, so the key is the route pattern, not
// the raw request path.
func routeMetrics(rs *routeStats) middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			rs.requests.Add(1)
			rs.inflight.Add(1)
			sw := &statusWriter{ResponseWriter: w}
			start := time.Now()
			defer func() {
				rs.inflight.Add(-1)
				if v := recover(); v != nil {
					// A panicking handler becomes a 500 upstream (the
					// recovery middleware wraps this one); count it as
					// such here, then let recovery produce the response.
					rs.observe(http.StatusInternalServerError, time.Since(start))
					panic(v)
				}
				rs.observe(sw.Status(), time.Since(start))
			}()
			next.ServeHTTP(sw, r)
		})
	}
}
