package service

// Admission-layer tests: saturation answers fast 429s with Retry-After
// instead of unbounded blocking, and a drained queue recovers with no
// dropped or duplicated batch items. CI runs this file under -race.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// fillSlots occupies every execution slot; the returned func frees them.
func fillSlots(s *Service) func() {
	n := cap(s.queue.slots)
	for i := 0; i < n; i++ {
		s.queue.slots <- struct{}{}
	}
	return func() {
		for i := 0; i < n; i++ {
			<-s.queue.slots
		}
	}
}

// fillGate occupies every admission ticket; the returned func frees them.
func fillGate(s *Service) func() {
	n := cap(s.queue.gate)
	for i := 0; i < n; i++ {
		s.queue.gate <- struct{}{}
	}
	return func() {
		for i := 0; i < n; i++ {
			<-s.queue.gate
		}
	}
}

// TestSaturation429 drives every saturation path over the wire: each
// case must answer 429 with a Retry-After header and a JSON error body,
// fast — saturation is detected without blocking, never by waiting out
// a backlog.
func TestSaturation429(t *testing.T) {
	singleBody := `{"candidates": [{"id":"a","score":2,"group":"x"},{"id":"b","score":1,"group":"y"}], "seed": 1}`
	batchBody := `{"requests": [` + singleBody + `]}`
	cases := []struct {
		name     string
		saturate func(t *testing.T, s *Service) (release func())
		method   string
		path     string
		body     string
	}{
		{
			name:     "rank with a full admission queue",
			saturate: func(t *testing.T, s *Service) func() { return fillGate(s) },
			method:   http.MethodPost, path: "/v1/rank", body: singleBody,
		},
		{
			name:     "batch with a full admission queue",
			saturate: func(t *testing.T, s *Service) func() { return fillGate(s) },
			method:   http.MethodPost, path: "/v1/rank/batch", body: batchBody,
		},
		{
			name: "rank exhausting its queue-wait budget",
			saturate: func(t *testing.T, s *Service) func() {
				// Slots stay busy but the gate has room: the request is
				// admitted, waits its budget, then gives up.
				return fillSlots(s)
			},
			method: http.MethodPost, path: "/v1/rank", body: singleBody,
		},
		{
			name: "batch exhausting its queue-wait budget",
			saturate: func(t *testing.T, s *Service) func() {
				// The whole batch is refused before any entry ranks — a
				// wedged pool must not hold the connection open forever.
				return fillSlots(s)
			},
			method: http.MethodPost, path: "/v1/rank/batch", body: batchBody,
		},
		{
			name: "job submission with a full job store",
			saturate: func(t *testing.T, s *Service) func() {
				release := fillSlots(s)
				for i := 0; i < s.cfg.MaxJobs; i++ {
					if _, err := s.SubmitJob(&BatchRequest{Requests: []RankRequest{{Candidates: pool(4), Seed: int64(i)}}}); err != nil {
						t.Fatalf("filler job %d: %v", i, err)
					}
				}
				return release
			},
			method: http.MethodPost, path: "/v1/jobs/rank", body: batchBody,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := New(Config{Workers: 2, QueueDepth: 2, QueueWait: 20 * time.Millisecond, MaxJobs: 2})
			defer s.Close()
			h := NewHandler(s)
			release := tc.saturate(t, s)
			defer release()

			req := httptest.NewRequest(tc.method, tc.path, strings.NewReader(tc.body))
			rec := httptest.NewRecorder()
			start := time.Now()
			h.ServeHTTP(rec, req)
			elapsed := time.Since(start)

			if rec.Code != http.StatusTooManyRequests {
				t.Fatalf("status %d, want 429; body %s", rec.Code, rec.Body.String())
			}
			if ra := rec.Header().Get("Retry-After"); ra == "" {
				t.Error("429 without a Retry-After header")
			}
			var e map[string]string
			if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || !strings.Contains(e["error"], "saturated") {
				t.Errorf("429 body %q does not name the saturation", rec.Body.String())
			}
			// The budget case legitimately waits its (20ms) budget; the
			// others must reject in O(1). Either way the bound is far
			// below anything resembling "queueing indefinitely".
			if elapsed > 2*time.Second {
				t.Errorf("saturation rejection took %v", elapsed)
			}
		})
	}
}

// TestInvalidRejectedEvenWhenSaturated: validation runs before
// admission, so an invalid request is a 400 whatever the load — the
// status a client sees for a bad request must not depend on how busy
// the server is, and bad requests must not burn admission tickets.
func TestInvalidRejectedEvenWhenSaturated(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1})
	defer s.Close()
	release := fillGate(s)
	defer release()
	_, err := s.Rank(context.Background(), &RankRequest{}) // empty candidates
	if !errors.Is(err, ErrInvalid) {
		t.Fatalf("got %v, want ErrInvalid even with a full queue", err)
	}
	if _, err := s.RankBatch(context.Background(), &BatchRequest{}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("empty batch: got %v, want ErrInvalid even with a full queue", err)
	}
	if rejected := s.queue.rejected.Load(); rejected != 0 {
		t.Errorf("invalid requests consumed %d saturation rejections", rejected)
	}
}

// TestSaturationFastReject pins the latency contract of the fast path:
// a full admission queue turns requests away without blocking — well
// under the 50ms the serving contract promises, even under -race.
func TestSaturationFastReject(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1})
	defer s.Close()
	release := fillGate(s)
	defer release()
	start := time.Now()
	_, err := s.Rank(context.Background(), &RankRequest{Candidates: pool(4), Seed: 1})
	elapsed := time.Since(start)
	if !errors.Is(err, ErrSaturated) {
		t.Fatalf("got %v, want ErrSaturated", err)
	}
	if elapsed > 50*time.Millisecond {
		t.Errorf("fast-path rejection took %v, want < 50ms", elapsed)
	}
}

// TestQueueWaitBudget: an admitted request may wait at most QueueWait
// for its first slot, then fails with ErrSaturated instead of riding
// out the backlog.
func TestQueueWaitBudget(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4, QueueWait: 15 * time.Millisecond})
	defer s.Close()
	release := fillSlots(s)
	defer release()
	start := time.Now()
	_, err := s.Rank(context.Background(), &RankRequest{Candidates: pool(4), Seed: 1})
	elapsed := time.Since(start)
	if !errors.Is(err, ErrSaturated) {
		t.Fatalf("got %v, want ErrSaturated", err)
	}
	if elapsed < 10*time.Millisecond {
		t.Errorf("gave up after %v, before the 15ms budget", elapsed)
	}
	if elapsed > 2*time.Second {
		t.Errorf("budget expiry took %v", elapsed)
	}
}

// TestQueueRecoversBatchesIntact: saturate the pool, pile batches onto
// it concurrently, then drain — every admitted batch must complete with
// every item present exactly once and correct (no drops, no
// duplicates), and post-drain traffic must flow normally again.
func TestQueueRecoversBatchesIntact(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 8})
	defer s.Close()

	release := fillSlots(s)
	const batches, entries = 4, 6
	type result struct {
		resp *BatchResponse
		err  error
	}
	results := make([]result, batches)
	var wg sync.WaitGroup
	for b := 0; b < batches; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			batch := &BatchRequest{}
			for e := 0; e < entries; e++ {
				batch.Requests = append(batch.Requests, RankRequest{
					Candidates: pool(10), Algorithm: "score", Seed: int64(b*1000 + e),
				})
			}
			resp, err := s.RankBatch(context.Background(), batch)
			results[b] = result{resp: resp, err: err}
		}(b)
	}
	// Give every batch time to admit and block on the busy slots, then
	// drain. Entries of an admitted batch wait without a budget, so none
	// may be dropped by the saturation they sat out.
	time.Sleep(30 * time.Millisecond)
	release()
	wg.Wait()

	for b, res := range results {
		if res.err != nil {
			t.Fatalf("batch %d failed: %v", b, res.err)
		}
		if len(res.resp.Items) != entries {
			t.Fatalf("batch %d returned %d items, want %d", b, len(res.resp.Items), entries)
		}
		seen := map[string]bool{}
		for e, item := range res.resp.Items {
			if item.Error != "" {
				t.Fatalf("batch %d item %d dropped to error: %s", b, e, item.Error)
			}
			if len(item.Response.Ranking) != 10 {
				t.Fatalf("batch %d item %d ranked %d, want 10", b, e, len(item.Response.Ranking))
			}
			key := fmt.Sprintf("%d", item.Response.Diagnostics.Seed)
			if seen[key] {
				t.Fatalf("batch %d: seed %s answered twice (duplicated item)", b, key)
			}
			seen[key] = true
			if want := int64(b*1000 + e); item.Response.Diagnostics.Seed != want {
				t.Fatalf("batch %d item %d carries seed %d, want %d (items reordered?)", b, e, item.Response.Diagnostics.Seed, want)
			}
		}
	}

	// The queue is idle again: ordinary traffic must flow with no
	// residual saturation state.
	if _, err := s.Rank(context.Background(), &RankRequest{Candidates: pool(6), Seed: 9}); err != nil {
		t.Fatalf("post-drain request failed: %v", err)
	}
	admitted, inflight, waiting, _ := s.queue.gauges()
	if admitted != 0 || inflight != 0 || waiting != 0 {
		t.Errorf("queue gauges not drained: admitted=%d inflight=%d waiting=%d", admitted, inflight, waiting)
	}
}

// TestSaturatedBatchNeverPartiallyServed: a batch refused at admission
// is refused whole — 429 with no items — never half-answered.
func TestSaturatedBatchNeverPartiallyServed(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1})
	defer s.Close()
	release := fillGate(s)
	defer release()
	batch := &BatchRequest{Requests: []RankRequest{
		{Candidates: pool(4), Seed: 1},
		{Candidates: pool(4), Seed: 2},
	}}
	resp, err := s.RankBatch(context.Background(), batch)
	if !errors.Is(err, ErrSaturated) {
		t.Fatalf("got %v, want ErrSaturated", err)
	}
	if resp != nil {
		t.Fatalf("saturated batch still returned items: %+v", resp)
	}
	rejectedBefore := s.queue.rejected.Load()
	if rejectedBefore == 0 {
		t.Error("saturation rejection not counted in the queue gauges")
	}
}
