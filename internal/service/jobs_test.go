package service

// Async job layer tests: the submit → poll → fetch → delete lifecycle,
// equivalence with synchronous batch serving, cancellation, TTL
// eviction, and drain semantics.

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitDone polls the job until it reaches a terminal state.
func waitDone(t *testing.T, s *Service, id string) *JobStatusResponse {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := s.JobStatus(id)
		if err != nil {
			t.Fatalf("poll %s: %v", id, err)
		}
		if st.State == JobStateDone || st.State == JobStateCancelled {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q (%d/%d)", id, st.State, st.Completed, st.Total)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestJobLifecycle: a submitted batch runs to done with full progress
// accounting, serves its items, and deletes cleanly.
func TestJobLifecycle(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	batch := &BatchRequest{}
	for seed := int64(0); seed < 5; seed++ {
		batch.Requests = append(batch.Requests, RankRequest{Candidates: pool(12), Samples: ptr(4), Seed: seed})
	}
	sub, err := s.SubmitJob(batch)
	if err != nil {
		t.Fatal(err)
	}
	if sub.ID == "" || sub.Total != 5 || sub.StatusURL != "/v1/jobs/"+sub.ID {
		t.Fatalf("submit response %+v", sub)
	}
	st := waitDone(t, s, sub.ID)
	if st.State != JobStateDone {
		t.Fatalf("terminal state %q, want done", st.State)
	}
	if st.Completed != 5 || st.Failed != 0 || len(st.Items) != 5 {
		t.Fatalf("progress %d/%d failed=%d items=%d", st.Completed, st.Total, st.Failed, len(st.Items))
	}
	for i, item := range st.Items {
		if item.Error != "" || item.Response == nil {
			t.Fatalf("item %d: %+v", i, item)
		}
		if item.Response.Diagnostics.Seed != int64(i) {
			t.Fatalf("item %d carries seed %d (reordered?)", i, item.Response.Diagnostics.Seed)
		}
	}
	// A finished job is not deletable (409 on the wire): eviction is the
	// TTL sweeper's job, and the result stays fetchable meanwhile.
	if err := s.CancelJob(sub.ID); !errors.Is(err, ErrConflict) {
		t.Fatalf("delete finished job: %v, want ErrConflict", err)
	}
	if _, err := s.JobStatus(sub.ID); err != nil {
		t.Fatalf("finished job must stay pollable after the refused delete: %v", err)
	}
}

// TestJobMatchesSyncBatch: the same batch ranks identically through the
// async job path and the sync batch path — the job layer changes where
// results wait, never what they are.
func TestJobMatchesSyncBatch(t *testing.T) {
	s := New(Config{Workers: 4})
	defer s.Close()
	batch := &BatchRequest{}
	for seed := int64(0); seed < 6; seed++ {
		batch.Requests = append(batch.Requests, RankRequest{Candidates: pool(20), Samples: ptr(6), Seed: seed})
	}
	sync, err := s.RankBatch(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := s.SubmitJob(batch)
	if err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, s, sub.ID)
	if !reflect.DeepEqual(st.Items, sync.Items) {
		t.Fatal("async job items differ from the sync batch items for equal seeds")
	}
}

// TestJobPartialFailure: a bad entry fails alone inside a job, counted
// in Failed, without poisoning its neighbors.
func TestJobPartialFailure(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	sub, err := s.SubmitJob(&BatchRequest{Requests: []RankRequest{
		{Candidates: pool(8), Seed: 1},
		{Candidates: nil, Seed: 2}, // invalid: empty pool
		{Candidates: pool(8), Seed: 3},
	}})
	if err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, s, sub.ID)
	if st.State != JobStateDone || st.Failed != 1 || st.Completed != 3 {
		t.Fatalf("state %q completed %d failed %d", st.State, st.Completed, st.Failed)
	}
	if st.Items[1].Error == "" || st.Items[0].Error != "" || st.Items[2].Error != "" {
		t.Fatalf("failure not isolated: %+v", st.Items)
	}
}

// TestJobCancellation: cancelling a running job removes it, aborts its
// remaining work, and the store's gauges account for it.
func TestJobCancellation(t *testing.T) {
	// One worker and a heavy batch so the job is reliably still running
	// when the cancel lands.
	s := New(Config{Workers: 1})
	defer s.Close()
	release := fillSlots(s) // hold the only slot: items queue, none complete
	batch := &BatchRequest{}
	for seed := int64(0); seed < 4; seed++ {
		batch.Requests = append(batch.Requests, RankRequest{Candidates: pool(30), Samples: ptr(50), Seed: seed})
	}
	sub, err := s.SubmitJob(batch)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CancelJob(sub.ID); err != nil {
		t.Fatal(err)
	}
	release()
	if _, err := s.JobStatus(sub.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cancelled job still pollable: %v", err)
	}
	if err := s.CancelJob(sub.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v, want ErrNotFound", err)
	}
	// The supervisor must exit despite never having completed an item.
	done := make(chan struct{})
	go func() { s.jobsWG.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled job's supervisor never exited")
	}
}

// TestJobTTLEviction: finished jobs are evicted TTL after completion by
// the background sweeper — with no store access required to trigger it —
// and counted in the gauges.
func TestJobTTLEviction(t *testing.T) {
	s := New(Config{Workers: 2, JobTTL: 5 * time.Millisecond, SweepEvery: 5 * time.Millisecond})
	defer s.Close()
	sub, err := s.SubmitJob(&BatchRequest{Requests: []RankRequest{{Candidates: pool(6), Seed: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, sub.ID)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := s.JobStatus(sub.ID); errors.Is(err, ErrNotFound) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("expired job still pollable: the background sweeper never evicted it")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if g := s.jobGauges(); g.Evicted != 1 || g.Stored != 0 {
		t.Errorf("gauges after eviction: %+v", g)
	}
}

// TestJobDraining: a draining service refuses new jobs but keeps
// serving status for accepted ones, and DrainJobs waits them out.
func TestJobDraining(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	sub, err := s.SubmitJob(&BatchRequest{Requests: []RankRequest{{Candidates: pool(6), Seed: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	s.BeginDrain()
	if _, err := s.SubmitJob(&BatchRequest{Requests: []RankRequest{{Candidates: pool(6), Seed: 2}}}); !errors.Is(err, ErrDraining) {
		t.Fatalf("draining submit: %v, want ErrDraining", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.DrainJobs(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	st, err := s.JobStatus(sub.ID)
	if err != nil || st.State != JobStateDone {
		t.Fatalf("accepted job after drain: %+v, %v", st, err)
	}
}

// TestSubmitRacesDrain hammers SubmitJob against BeginDrain+DrainJobs
// from many goroutines: no WaitGroup misuse panic, and every job that
// was accepted is either awaited by DrainJobs or finished — none
// escape the drain. Run under -race (CI does).
func TestSubmitRacesDrain(t *testing.T) {
	for round := 0; round < 20; round++ {
		s := New(Config{Workers: 2, MaxJobs: 256})
		var accepted atomic.Int64
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; ; i++ {
					_, err := s.SubmitJob(&BatchRequest{Requests: []RankRequest{
						{Candidates: pool(6), Seed: int64(g*100 + i)},
					}})
					if errors.Is(err, ErrDraining) || errors.Is(err, ErrSaturated) {
						// Drained or (on a slow machine) a full store —
						// either way this submitter is done.
						return
					}
					if err != nil {
						t.Error(err)
						return
					}
					accepted.Add(1)
				}
			}(g)
		}
		s.BeginDrain()
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		if err := s.DrainJobs(ctx); err != nil {
			t.Fatalf("round %d: drain: %v", round, err)
		}
		cancel()
		wg.Wait()
		// After a successful drain every accepted job is terminal.
		if g := s.jobGauges(); int64(g.Done+g.Cancelled) != accepted.Load() {
			t.Fatalf("round %d: %d accepted but gauges show %d terminal (%+v)",
				round, accepted.Load(), g.Done+g.Cancelled, g)
		}
		s.Close()
	}
}

// TestHTTPJobLifecycle drives the whole lifecycle over the wire,
// including the readiness flip while draining.
func TestHTTPJobLifecycle(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	body := `{"requests": [
		{"candidates": [{"id":"a","score":2,"group":"x"},{"id":"b","score":1,"group":"y"}], "algorithm": "score", "seed": 1},
		{"candidates": [{"id":"c","score":2,"group":"x"},{"id":"d","score":1,"group":"y"}], "algorithm": "score", "seed": 2}
	]}`
	resp, err := http.Post(srv.URL+"/v1/jobs/rank", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub JobSubmitResponse
	decodeErr := json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	if decodeErr != nil {
		t.Fatal(decodeErr)
	}
	if sub.Total != 2 || !strings.HasPrefix(sub.ID, "job-") {
		t.Fatalf("submit response %+v", sub)
	}

	var st JobStatusResponse
	deadline := time.Now().Add(10 * time.Second)
	for {
		r2, err := http.Get(srv.URL + sub.StatusURL)
		if err != nil {
			t.Fatal(err)
		}
		if r2.StatusCode != http.StatusOK {
			r2.Body.Close()
			t.Fatalf("poll status %d", r2.StatusCode)
		}
		decodeErr := json.NewDecoder(r2.Body).Decode(&st)
		r2.Body.Close()
		if decodeErr != nil {
			t.Fatal(decodeErr)
		}
		if st.State == JobStateDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", st.State)
		}
		time.Sleep(time.Millisecond)
	}
	if len(st.Items) != 2 || st.Items[0].Response == nil || st.Items[0].Response.Ranking[0].ID != "a" {
		t.Fatalf("done status %+v", st)
	}

	// Deleting the finished job is a conflict with a stable error body —
	// it never races the TTL sweep — and the result stays fetchable.
	del, err := http.NewRequest(http.MethodDelete, srv.URL+sub.StatusURL, nil)
	if err != nil {
		t.Fatal(err)
	}
	r3, err := http.DefaultClient.Do(del)
	if err != nil {
		t.Fatal(err)
	}
	var conflict struct {
		Error string `json:"error"`
	}
	conflictDecodeErr := json.NewDecoder(r3.Body).Decode(&conflict)
	r3.Body.Close()
	if r3.StatusCode != http.StatusConflict {
		t.Fatalf("delete finished job status %d, want 409", r3.StatusCode)
	}
	if conflictDecodeErr != nil {
		t.Fatal(conflictDecodeErr)
	}
	if want := `conflict: job "` + sub.ID + `" is already done`; conflict.Error != want {
		t.Fatalf("409 body %q, want the stable %q", conflict.Error, want)
	}
	r4, err := http.Get(srv.URL + sub.StatusURL)
	if err != nil {
		t.Fatal(err)
	}
	r4.Body.Close()
	if r4.StatusCode != http.StatusOK {
		t.Fatalf("finished job poll after refused delete: status %d, want 200", r4.StatusCode)
	}

	// Drain: readiness flips, liveness stays, submissions refuse.
	s.BeginDrain()
	r5, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	r5.Body.Close()
	if r5.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz status %d, want 503", r5.StatusCode)
	}
	r6, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	r6.Body.Close()
	if r6.StatusCode != http.StatusOK {
		t.Fatalf("draining healthz status %d, want 200", r6.StatusCode)
	}
	r7, err := http.Post(srv.URL+"/v1/jobs/rank", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	r7.Body.Close()
	if r7.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining submit status %d", r7.StatusCode)
	}
	if r7.Header.Get("Retry-After") == "" {
		t.Error("draining 503 without Retry-After")
	}
}
