package service

import "time"

// Candidate is the wire form of one item to rank.
type Candidate struct {
	// ID identifies the candidate; must be unique and nonempty.
	ID string `json:"id"`
	// Score is the quality/relevance score (higher ranks first).
	Score float64 `json:"score"`
	// Group is the protected attribute value; required by the
	// constraint-based algorithms, ignored by the Mallows algorithms.
	Group string `json:"group"`
	// Attrs carries additional attribute values, echoed back unchanged.
	Attrs map[string]string `json:"attrs,omitempty"`
	// Membership optionally states a probability distribution over group
	// names (probabilistic protected attribute). Values must be finite,
	// in [0, 1], and sum to 1 (±1e-9); keys join the group universe.
	// When any candidate carries one, the response diagnostics include
	// the expected-fairness audit.
	Membership map[string]float64 `json:"membership,omitempty"`
}

// RankRequest asks for one fair ranking. Omitted fields take the
// library's Config defaults; pointer fields distinguish "omitted" from
// an explicit zero, which validation rejects where a zero is invalid.
type RankRequest struct {
	// Candidates is the pool to rank; must be nonempty with unique,
	// nonempty IDs.
	Candidates []Candidate `json:"candidates"`
	// Algorithm names the post-processor: any name in the fairrank
	// registry, as served by GET /v1/algorithms. Default "mallows-best".
	Algorithm string `json:"algorithm,omitempty"`
	// Central names the Mallows central ranking ("weak", "fair",
	// "score"). Default "weak".
	Central string `json:"central,omitempty"`
	// Criterion names the best-of-m selection criterion ("ndcg", "kt").
	// Default "ndcg".
	Criterion string `json:"criterion,omitempty"`
	// Noise names the randomization mechanism the sampling algorithms
	// draw from: any name in the fairrank noise registry, as served by
	// GET /v1/algorithms. Default "mallows". Algorithms that pin their
	// own mechanism ignore it.
	Noise string `json:"noise,omitempty"`
	// Theta is the Mallows dispersion; must be ≥ 0 when given (0 draws
	// uniformly random permutations). Default 1.
	Theta *float64 `json:"theta,omitempty"`
	// Samples is the best-of-m draw count; must be ≥ 1 when given.
	// Default 15.
	Samples *int `json:"samples,omitempty"`
	// Tolerance widens the proportional constraints; must be ≥ 0 when
	// given (0 demands exact proportionality). Default 0.1.
	Tolerance *float64 `json:"tolerance,omitempty"`
	// TopK truncates the response ranking to the best TopK candidates
	// and scopes the fairness audit to those prefixes; must be ≥ 1 when
	// given (clamped to the pool size). Omitted returns the full
	// ranking.
	TopK *int `json:"top_k,omitempty"`
	// WeakK is the weakly fair prefix length. Default min(10, pool size).
	WeakK int `json:"weak_k,omitempty"`
	// Sigma is the constraint-noise level of the attribute-aware
	// algorithms. Default 0.
	Sigma float64 `json:"sigma,omitempty"`
	// Seed makes the response deterministic: equal requests with equal
	// seeds return equal rankings.
	Seed int64 `json:"seed"`
}

// RankedCandidate is one position of the response ranking.
type RankedCandidate struct {
	// Rank is the 1-based position (1 is the top of the ranking).
	Rank int `json:"rank"`
	// ID, Score, Group, and Attrs echo the request candidate.
	ID    string            `json:"id"`
	Score float64           `json:"score"`
	Group string            `json:"group"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

// RankResponse is the result of one ranking request.
type RankResponse struct {
	// Algorithm is the post-processor that produced the ranking.
	Algorithm string `json:"algorithm"`
	// Ranking lists the candidates best first, truncated to the
	// request's top_k when set.
	Ranking []RankedCandidate `json:"ranking"`
	// NDCG is the full-ranking quality against the score-ideal order
	// (kept at the top level for pre-diagnostics clients).
	NDCG float64 `json:"ndcg"`
	// Diagnostics reports the resolved parameters and the self-audit of
	// the ranking.
	Diagnostics Diagnostics `json:"diagnostics"`
}

// Diagnostics is the wire form of fairrank.Diagnostics: the parameters
// the request actually ran with after override resolution, and
// quality/fairness measurements of the returned ranking computed from
// state the engine already held.
type Diagnostics struct {
	// Algorithm, Central, Criterion, Theta, Samples, Tolerance, and
	// Seed echo the resolved request parameters.
	Algorithm string  `json:"algorithm"`
	Central   string  `json:"central"`
	Criterion string  `json:"criterion"`
	Theta     float64 `json:"theta"`
	Samples   int     `json:"samples"`
	Tolerance float64 `json:"tolerance"`
	Seed      int64   `json:"seed"`
	// Noise is the mechanism the request actually drew from; omitted
	// for the deterministic algorithms, which draw nothing.
	Noise string `json:"noise,omitempty"`
	// TopK is the length of the returned ranking.
	TopK int `json:"top_k"`
	// NDCG is the full-ranking NDCG of the chosen ranking.
	NDCG float64 `json:"ndcg"`
	// DrawsEvaluated counts Mallows samples drawn and scored (0 for the
	// deterministic algorithms).
	DrawsEvaluated int `json:"draws_evaluated"`
	// CentralKendallTau is the Kendall tau distance between the chosen
	// ranking and the central ranking the noise was centred on.
	CentralKendallTau int64 `json:"central_kendall_tau"`
	// PPfair is the percentage of P-fair positions (paper Definition 4)
	// of the first TopK prefixes under the resolved tolerance.
	PPfair float64 `json:"ppfair"`
	// InfeasibleIndex is the Two-Sided Infeasible Index (Definition 3)
	// over the first TopK prefixes.
	InfeasibleIndex int `json:"infeasible_index"`
	// Probabilistic carries the expected-fairness audit; present only
	// when at least one request candidate stated a membership
	// distribution, so hard-label responses are byte-identical to
	// pre-membership servers.
	Probabilistic *ProbDiagnostics `json:"probabilistic,omitempty"`
}

// ProbDiagnostics is the wire form of fairrank.ProbDiagnostics: the
// delivered ranking audited against the candidates' membership
// distributions, with expected prefix counts in place of hard tallies.
// One-hot memberships reproduce ppfair/infeasible_index bit for bit.
type ProbDiagnostics struct {
	ExpectedPPfair            float64 `json:"expected_ppfair"`
	ExpectedInfeasibleIndex   int     `json:"expected_infeasible_index"`
	ExpectedDisparateExposure float64 `json:"expected_disparate_exposure"`
	ExpectedExposureGap       float64 `json:"expected_exposure_gap"`
}

// BatchRequest bundles independent ranking requests to run concurrently.
type BatchRequest struct {
	Requests []RankRequest `json:"requests"`
	// WebhookURL, on POST /v1/jobs/rank only, subscribes to the job's
	// completion event: once the job finishes, the service POSTs a
	// JobEvent to this absolute http(s) URL, retrying with exponential
	// backoff until it lands (at-least-once, surviving restarts).
	// Ignored by the synchronous batch endpoint, which already delivers
	// its results in the response.
	WebhookURL string `json:"webhook_url,omitempty"`
}

// BatchItem is the outcome of one batch entry: exactly one of Response
// and Error is set, in the entry's request order.
type BatchItem struct {
	Response *RankResponse `json:"response,omitempty"`
	Error    string        `json:"error,omitempty"`
}

// BatchResponse is the result of a batch, item i answering request i.
type BatchResponse struct {
	Items []BatchItem `json:"items"`
}

// JobSubmitResponse answers POST /v1/jobs/rank: the accepted job's ID
// and where to poll it.
type JobSubmitResponse struct {
	// ID names the job for GET/DELETE /v1/jobs/{id}.
	ID string `json:"id"`
	// Total is the number of batch entries the job will rank.
	Total int `json:"total"`
	// StatusURL is the polling endpoint for this job.
	StatusURL string `json:"status_url"`
}

// JobStatusResponse answers GET /v1/jobs/{id}: the job's state and
// per-item progress, plus the results once the job is done.
type JobStatusResponse struct {
	ID string `json:"id"`
	// State is "pending", "running", "done", or "cancelled".
	State string `json:"state"`
	// Total, Completed, and Failed report per-item progress: Completed
	// counts items that finished (successfully or not), Failed the
	// subset that returned an error.
	Total     int `json:"total"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	// Items carries the per-entry results, in request order, once the
	// job reaches "done"; omitted in every other state. Cancelled jobs
	// never serve items.
	Items []BatchItem `json:"items,omitempty"`
}

// JobListResponse answers GET /v1/jobs: one page of the job listing,
// oldest job first, with the cursor of the next page.
type JobListResponse struct {
	Jobs []JobSummary `json:"jobs"`
	// NextCursor, when nonempty, resumes the listing: pass it as the
	// `after` query parameter of the next request. An empty cursor means
	// the listing is exhausted.
	NextCursor string `json:"next_cursor,omitempty"`
}

// JobSummary is one job in the listing: everything JobStatusResponse
// reports except the per-item results (fetch those from StatusURL).
type JobSummary struct {
	ID string `json:"id"`
	// State is "pending", "running", "done", or "cancelled".
	State     string `json:"state"`
	Total     int    `json:"total"`
	Completed int    `json:"completed"`
	Failed    int    `json:"failed"`
	// Created and Finished bracket the job's life; Finished is omitted
	// until the job reaches a terminal state.
	Created   time.Time `json:"created"`
	Finished  time.Time `json:"finished,omitzero"`
	StatusURL string    `json:"status_url"`
	// WebhookURL echoes the completion-event subscription, when one was
	// registered; WebhookSent reports whether it has been delivered.
	WebhookURL  string `json:"webhook_url,omitempty"`
	WebhookSent bool   `json:"webhook_sent,omitempty"`
}

// JobEvent is the completion-event payload POSTed to a job's
// webhook_url when the job reaches a terminal state. It deliberately
// excludes the per-item results — events stay small and at-least-once
// delivery stays cheap; receivers fetch the items from StatusURL.
type JobEvent struct {
	ID        string `json:"id"`
	State     string `json:"state"`
	Total     int    `json:"total"`
	Completed int    `json:"completed"`
	Failed    int    `json:"failed"`
	StatusURL string `json:"status_url"`
}

// ReadyzResponse answers GET /readyz: the readiness verdict plus a
// cheap load snapshot — queue depth and in-flight work — so fleet
// probes (the gateway's backend pool) can rank backends by load off
// the readiness path they already poll, without scraping the heavier
// GET /v1/metrics.
type ReadyzResponse struct {
	// Status is "ready" (HTTP 200) or "draining" (HTTP 503).
	Status string `json:"status"`
	// Queue snapshots the admission layer.
	Queue ReadyzQueue `json:"queue"`
	// JobsRunning counts async jobs currently executing; their items
	// occupy the same worker pool as synchronous traffic.
	JobsRunning int `json:"jobs_running"`
}

// ReadyzQueue is the admission-queue slice of the readiness snapshot:
// the static shape (Workers, Depth) plus the live gauges a prober needs
// to estimate load. Admitted counts synchronous requests in the system
// (executing or queued), InFlight execution slots held by any path
// (sync, batch entries, job items), Queued goroutines blocked waiting
// for their first slot — InFlight+Queued is the canonical "how busy"
// score.
type ReadyzQueue struct {
	Workers  int   `json:"workers"`
	Depth    int   `json:"depth"`
	Admitted int64 `json:"admitted"`
	InFlight int64 `json:"in_flight"`
	Queued   int64 `json:"queued"`
}

// MetricsResponse answers GET /v1/metrics: per-route transport
// counters, admission-queue gauges, async-job gauges, and engine
// counters, all as plain JSON so any scraper can consume them.
type MetricsResponse struct {
	// Routes lists one counter set per registered route, sorted by
	// route pattern.
	Routes []RouteMetrics `json:"routes"`
	// Queue reports the admission/scheduling layer.
	Queue QueueMetrics `json:"queue"`
	// Jobs reports the async job layer.
	Jobs JobMetrics `json:"jobs"`
	// Engine aggregates fairrank.Ranker counters over the currently
	// cached engines (an evicted engine takes its counts with it).
	Engine EngineMetrics `json:"engine"`
	// Panics counts handler panics absorbed by the recovery middleware.
	Panics int64 `json:"panics"`
}

// RouteMetrics is the transport counter set of one route.
type RouteMetrics struct {
	Route     string `json:"route"`
	Requests  int64  `json:"requests"`
	InFlight  int64  `json:"in_flight"`
	Errors4xx int64  `json:"errors_4xx"`
	Errors5xx int64  `json:"errors_5xx"`
	// LatencyMsSum / Requests is the mean handler latency; LatencyMsMax
	// the worst observed.
	LatencyMsSum float64 `json:"latency_ms_sum"`
	LatencyMsMax float64 `json:"latency_ms_max"`
}

// QueueMetrics reports the admission queue: static shape (workers,
// depth, wait budget) and live gauges.
type QueueMetrics struct {
	Workers     int     `json:"workers"`
	Depth       int     `json:"depth"`
	QueueWaitMs float64 `json:"queue_wait_ms"`
	// Admitted counts requests currently in the system (executing or
	// queued); InFlight execution slots held; Queued goroutines blocked
	// waiting for their first slot; Rejected cumulative saturation
	// rejections (fast 429s).
	Admitted int64 `json:"admitted"`
	InFlight int64 `json:"in_flight"`
	Queued   int64 `json:"queued"`
	Rejected int64 `json:"rejected"`
}

// JobMetrics reports the async job layer.
type JobMetrics struct {
	MaxJobs int `json:"max_jobs"`
	// Stored counts jobs currently held (any state); the per-state
	// gauges partition it.
	Stored    int `json:"stored"`
	Pending   int `json:"pending"`
	Running   int `json:"running"`
	Done      int `json:"done"`
	Cancelled int `json:"cancelled"`
	// Submitted counts jobs ever accepted (as far as the store can still
	// tell after a restart); Evicted those dropped by the TTL sweep
	// since the store opened; ItemsDone individual batch entries
	// completed by this process; Recovered jobs re-enqueued from a
	// durable store at startup (ResumeJobs).
	Submitted int64 `json:"submitted"`
	Evicted   int64 `json:"evicted"`
	ItemsDone int64 `json:"items_done"`
	Recovered int64 `json:"recovered"`
	// Webhooks reports completion-event delivery, this process.
	Webhooks WebhookMetrics `json:"webhooks"`
}

// WebhookMetrics counts completion-event delivery work: Attempts is
// every POST made, Delivered the subset acknowledged with a 2xx,
// Retries the attempts beyond each event's first, and Exhausted the
// events that ran out of per-process attempts (they stay durably
// unsent, so a restart retries them — delivery is at-least-once, so
// Delivered can overcount distinct events, never undercount them).
type WebhookMetrics struct {
	Attempts  int64 `json:"attempts"`
	Delivered int64 `json:"delivered"`
	Retries   int64 `json:"retries"`
	Exhausted int64 `json:"exhausted"`
}

// EngineMetrics aggregates fairrank.RankerStats over the cached
// engines, plus the cache's own size. DrawsFull and DrawsTruncated
// split Draws by draw path — full-length reference draws versus the
// lazy top-k sampler that materializes only the delivered prefix —
// and always sum to it. DrawsTruncatedByNoise further splits
// DrawsTruncated by the noise mechanism that drew them
// ("mallows", "gmallows", "plackett-luce"); the axes sum to
// DrawsTruncated and the map is omitted while no truncated draw has
// happened. PoolGets/PoolMisses count pooled draw-buffer checkouts and
// the subset that had to allocate; both describe the live ranker cache,
// so eviction can make them regress between snapshots.
type EngineMetrics struct {
	RankersCached         int              `json:"rankers_cached"`
	Requests              int64            `json:"requests"`
	Draws                 int64            `json:"draws"`
	DrawsFull             int64            `json:"draws_full"`
	DrawsTruncated        int64            `json:"draws_truncated"`
	DrawsTruncatedByNoise map[string]int64 `json:"draws_truncated_by_noise,omitempty"`
	PoolGets              int64            `json:"pool_gets"`
	PoolMisses            int64            `json:"pool_misses"`
	TableHits             int64            `json:"table_hits"`
	TableMisses           int64            `json:"table_misses"`
}

// CatalogResponse answers GET /v1/algorithms: the supported algorithms,
// noise mechanisms, central rankings, and selection criteria with their
// defaults, so clients can introspect the rankable surface instead of
// hardcoding strings. Algorithms and Noises are generated from the
// fairrank registry — algorithms registered through fairrank.Register
// appear here without any serving-layer change.
type CatalogResponse struct {
	Algorithms []AlgorithmInfo `json:"algorithms"`
	Noises     []OptionInfo    `json:"noises"`
	Centrals   []OptionInfo    `json:"centrals"`
	Criteria   []OptionInfo    `json:"criteria"`
	Defaults   DefaultsInfo    `json:"defaults"`
	// Membership describes the probabilistic-membership surface: what
	// the optional candidate "membership" field accepts and which
	// diagnostics it unlocks.
	Membership MembershipInfo `json:"membership"`
}

// MembershipInfo documents the probabilistic protected attribute: the
// candidate-level "membership" field and the expected-fairness metrics
// it adds to the response diagnostics.
type MembershipInfo struct {
	// Description summarizes the field's contract.
	Description string `json:"description"`
	// Metrics lists the diagnostics keys a membership request adds.
	Metrics []string `json:"metrics"`
}

// AlgorithmInfo is the wire form of the fairrank registry metadata of
// one post-processing algorithm.
type AlgorithmInfo struct {
	// Name is the wire value for the "algorithm" field.
	Name string `json:"name"`
	// Description summarizes the method and its source.
	Description string `json:"description"`
	// ReadsGroup reports whether the algorithm consumes the protected
	// attribute; kept alongside AttributeBlind (its negation) for
	// pre-registry clients.
	ReadsGroup bool `json:"reads_group"`
	// AttributeBlind reports that the algorithm never reads the
	// protected attribute — the paper's robustness property.
	AttributeBlind bool `json:"attribute_blind"`
	// Deterministic reports that equal inputs yield equal rankings
	// regardless of the seed (at sigma = 0 for the constraint-based
	// algorithms).
	Deterministic bool `json:"deterministic"`
	// SupportsSigma reports that the algorithm honors the "sigma"
	// constraint-noise field.
	SupportsSigma bool `json:"supports_sigma"`
	// MinGroups and MaxGroups bound the group counts the algorithm can
	// rank; zero means unbounded on that side.
	MinGroups int `json:"min_groups,omitempty"`
	MaxGroups int `json:"max_groups,omitempty"`
	// Tunables lists the request fields the algorithm responds to.
	Tunables []string `json:"tunables"`
	// MinMeanPPfair and MinMeanNDCG echo the registry's advertised
	// statistical guarantees — the floors the conformance suite holds
	// the algorithm to (see fairrank.Guarantees for the measurement
	// protocol). 0 means no promise on that axis.
	MinMeanPPfair float64 `json:"min_mean_ppfair,omitempty"`
	MinMeanNDCG   float64 `json:"min_mean_ndcg,omitempty"`
}

// OptionInfo describes one named option value (a central ranking or a
// selection criterion).
type OptionInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
}

// DefaultsInfo lists the value each omitted request field resolves to.
type DefaultsInfo struct {
	Algorithm string  `json:"algorithm"`
	Central   string  `json:"central"`
	Criterion string  `json:"criterion"`
	Noise     string  `json:"noise"`
	Theta     float64 `json:"theta"`
	Samples   int     `json:"samples"`
	Tolerance float64 `json:"tolerance"`
	// WeakK is "min(10, n)" — it depends on the pool size.
	WeakK string  `json:"weak_k"`
	Sigma float64 `json:"sigma"`
	// TopK reports that omitting top_k returns the full ranking.
	TopK string `json:"top_k"`
}
