package service

// Candidate is the wire form of one item to rank.
type Candidate struct {
	// ID identifies the candidate; must be unique and nonempty.
	ID string `json:"id"`
	// Score is the quality/relevance score (higher ranks first).
	Score float64 `json:"score"`
	// Group is the protected attribute value; required by the
	// constraint-based algorithms, ignored by the Mallows algorithms.
	Group string `json:"group"`
	// Attrs carries additional attribute values, echoed back unchanged.
	Attrs map[string]string `json:"attrs,omitempty"`
}

// RankRequest asks for one fair ranking. Omitted fields take the
// library's Config defaults; pointer fields distinguish "omitted" from
// an explicit zero, which validation rejects where a zero is invalid.
type RankRequest struct {
	// Candidates is the pool to rank; must be nonempty with unique,
	// nonempty IDs.
	Candidates []Candidate `json:"candidates"`
	// Algorithm names the post-processor (fairrank.Algorithm values:
	// "mallows", "mallows-best", "detconstsort", "ipf", "grbinary",
	// "ilp", "score"). Default "mallows-best".
	Algorithm string `json:"algorithm,omitempty"`
	// Central names the Mallows central ranking ("weak", "fair",
	// "score"). Default "weak".
	Central string `json:"central,omitempty"`
	// Criterion names the best-of-m selection criterion ("ndcg", "kt").
	// Default "ndcg".
	Criterion string `json:"criterion,omitempty"`
	// Theta is the Mallows dispersion; must be > 0 when given.
	// Default 1.
	Theta *float64 `json:"theta,omitempty"`
	// Samples is the best-of-m draw count; must be ≥ 1 when given.
	// Default 15.
	Samples *int `json:"samples,omitempty"`
	// Tolerance widens the proportional constraints; must be ≥ 0 when
	// given. Default 0.1.
	Tolerance *float64 `json:"tolerance,omitempty"`
	// WeakK is the weakly fair prefix length. Default min(10, pool size).
	WeakK int `json:"weak_k,omitempty"`
	// Sigma is the constraint-noise level of the attribute-aware
	// algorithms. Default 0.
	Sigma float64 `json:"sigma,omitempty"`
	// Seed makes the response deterministic: equal requests with equal
	// seeds return equal rankings.
	Seed int64 `json:"seed"`
}

// RankedCandidate is one position of the response ranking.
type RankedCandidate struct {
	// Rank is the 1-based position (1 is the top of the ranking).
	Rank int `json:"rank"`
	// ID, Score, Group, and Attrs echo the request candidate.
	ID    string            `json:"id"`
	Score float64           `json:"score"`
	Group string            `json:"group"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

// RankResponse is the result of one ranking request.
type RankResponse struct {
	// Algorithm is the post-processor that produced the ranking.
	Algorithm string `json:"algorithm"`
	// Ranking lists the candidates best first.
	Ranking []RankedCandidate `json:"ranking"`
	// NDCG is the quality of the ranking against the score-ideal order.
	NDCG float64 `json:"ndcg"`
}

// BatchRequest bundles independent ranking requests to run concurrently.
type BatchRequest struct {
	Requests []RankRequest `json:"requests"`
}

// BatchItem is the outcome of one batch entry: exactly one of Response
// and Error is set, in the entry's request order.
type BatchItem struct {
	Response *RankResponse `json:"response,omitempty"`
	Error    string        `json:"error,omitempty"`
}

// BatchResponse is the result of a batch, item i answering request i.
type BatchResponse struct {
	Items []BatchItem `json:"items"`
}
