package service_test

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	fairrank "repro"
	"repro/internal/service"
)

// The service request path: build a Service once, then serve typed
// requests. Equal seeds return equal rankings.
func ExampleService_rank() {
	svc := service.New(service.Config{Workers: 2})
	resp, err := svc.Rank(context.Background(), &service.RankRequest{
		Candidates: []service.Candidate{
			{ID: "ava", Score: 5.2, Group: "f"},
			{ID: "bea", Score: 5.1, Group: "f"},
			{ID: "cleo", Score: 4.8, Group: "f"},
			{ID: "dina", Score: 4.2, Group: "f"},
			{ID: "emil", Score: 9.9, Group: "m"},
			{ID: "finn", Score: 9.5, Group: "m"},
			{ID: "gus", Score: 9.1, Group: "m"},
			{ID: "hank", Score: 8.8, Group: "m"},
		},
		Algorithm: "ilp",
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, rc := range resp.Ranking[:4] {
		fmt.Printf("%d. %s (%s)\n", rc.Rank, rc.ID, rc.Group)
	}
	// Output:
	// 1. emil (m)
	// 2. finn (m)
	// 3. ava (f)
	// 4. gus (m)
}

// Batches run independent requests concurrently; item i answers
// request i, and each item fails or succeeds alone.
func ExampleService_rankBatch() {
	svc := service.New(service.Config{Workers: 4})
	pool := []service.Candidate{
		{ID: "x", Score: 3, Group: "a"},
		{ID: "y", Score: 2, Group: "b"},
		{ID: "z", Score: 1, Group: "a"},
	}
	resp, err := svc.RankBatch(context.Background(), &service.BatchRequest{
		Requests: []service.RankRequest{
			{Candidates: pool, Algorithm: "score"},
			{Candidates: nil}, // invalid: fails alone
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("item 0 top:", resp.Items[0].Response.Ranking[0].ID)
	fmt.Println("item 1 error:", resp.Items[1].Error)
	// Output:
	// item 0 top: x
	// item 1 error: invalid request: empty candidate set
}

// The serving catalog is generated from the fairrank registry: a custom
// Strategy registered through the public library API is immediately
// cataloged by GET /v1/algorithms and servable by name, with no
// serving-layer change.
func ExampleCatalog() {
	// Guarded so a repeated in-process run (go test -count=2) does not
	// re-register; the registry is process-global, first wins.
	if _, registered := fairrank.LookupAlgorithm("central-asis"); !registered {
		fairrank.MustRegister(fairrank.AlgorithmInfo{
			Name:          "central-asis",
			Description:   "serve the central ranking unchanged (example strategy)",
			Deterministic: true,
		}, func(cfg fairrank.Config) (fairrank.Strategy, error) {
			return fairrank.StrategyFunc(func(in *fairrank.Instance, _ *rand.Rand) ([]int, error) {
				return in.Central(), nil
			}), nil
		})
	}
	for _, a := range service.Catalog().Algorithms {
		if a.Name == "central-asis" {
			fmt.Println("cataloged:", a.Name, "—", a.Description)
		}
	}
	svc := service.New(service.Config{Workers: 2})
	resp, err := svc.Rank(context.Background(), &service.RankRequest{
		Candidates: []service.Candidate{
			{ID: "x", Score: 1, Group: "a"},
			{ID: "y", Score: 3, Group: "b"},
			{ID: "z", Score: 2, Group: "a"},
		},
		Algorithm: "central-asis",
		Central:   "score",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top:", resp.Ranking[0].ID)
	// Output:
	// cataloged: central-asis — serve the central ranking unchanged (example strategy)
	// top: y
}
