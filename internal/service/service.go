// Package service is the serving layer over the fairrank library: typed
// request/response DTOs, request validation, a cache of reusable
// fairrank.Ranker engines keyed by configuration, and a bounded worker
// pool that both fans a single request's best-of-m Mallows draws across
// idle workers and ranks the independent requests of a batch
// concurrently. cmd/fairrankd exposes it over HTTP; the package itself
// is transport-agnostic so other frontends (gRPC, queues) can reuse it.
//
// Responses are deterministic: equal requests with equal seeds produce
// equal rankings, regardless of worker count or batch position.
package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	fairrank "repro"
)

// ErrInvalid tags failures caused by the request rather than the
// service; transports should map it to their bad-request status.
var ErrInvalid = errors.New("invalid request")

// invalidf wraps a request-caused failure with ErrInvalid.
func invalidf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrInvalid, fmt.Sprintf(format, args...))
}

// Config parameterizes the service. The zero value is usable.
type Config struct {
	// Workers bounds the service's total ranking concurrency: at most
	// Workers goroutines sample at any moment, shared between the
	// parallel best-of-m draws of single requests and the entries of
	// batches. Default GOMAXPROCS.
	Workers int
	// MaxCandidates rejects larger candidate pools. Default 100000.
	MaxCandidates int
	// MaxBatch rejects larger batches. Default 1024.
	MaxBatch int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxCandidates <= 0 {
		c.MaxCandidates = 100000
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 1024
	}
	return c
}

// maxCachedRankers caps the configuration → Ranker cache; requests with
// configurations beyond the cap still work through one-shot Rankers.
const maxCachedRankers = 256

// Service ranks requests. Construct with New; safe for concurrent use.
type Service struct {
	cfg Config
	sem chan struct{} // one slot per concurrently sampling goroutine

	mu      sync.Mutex
	rankers map[fairrank.Config]*fairrank.Ranker
}

// New returns a Service with the given configuration.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	return &Service{
		cfg:     cfg,
		sem:     make(chan struct{}, cfg.Workers),
		rankers: make(map[fairrank.Config]*fairrank.Ranker),
	}
}

// Rank serves one ranking request. The best-of-m Mallows draws run on as
// many idle workers as the pool has free (at least one); the worker
// count never changes the result.
func (s *Service) Rank(ctx context.Context, req *RankRequest) (*RankResponse, error) {
	return s.rank(ctx, req, s.cfg.Workers)
}

// RankBatch serves independent requests concurrently through the worker
// pool and returns one BatchItem per request, in request order. Entries
// fail independently: a bad request yields an Error item without
// affecting its neighbors.
func (s *Service) RankBatch(ctx context.Context, batch *BatchRequest) (*BatchResponse, error) {
	if len(batch.Requests) == 0 {
		return nil, invalidf("empty batch")
	}
	if len(batch.Requests) > s.cfg.MaxBatch {
		return nil, invalidf("batch of %d requests exceeds the limit of %d", len(batch.Requests), s.cfg.MaxBatch)
	}
	items := make([]BatchItem, len(batch.Requests))
	var wg sync.WaitGroup
	for i := range batch.Requests {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// One pool slot per entry: entries parallelize across the
			// pool, draws within an entry stay sequential. RankParallel
			// results are worker-invariant, so an entry ranks identically
			// here and as a single request.
			resp, err := s.rank(ctx, &batch.Requests[i], 1)
			if err != nil {
				items[i] = BatchItem{Error: err.Error()}
				return
			}
			items[i] = BatchItem{Response: resp}
		}(i)
	}
	wg.Wait()
	return &BatchResponse{Items: items}, nil
}

func (s *Service) rank(ctx context.Context, req *RankRequest, maxWorkers int) (*RankResponse, error) {
	if err := s.validate(req); err != nil {
		return nil, err
	}
	ranker, err := s.ranker(req.config())
	if err != nil {
		return nil, err
	}
	// Never hold slots the request cannot use: only the best-of-m loop
	// parallelizes, and at most one goroutine per draw.
	if p := parallelism(req); p < maxWorkers {
		maxWorkers = p
	}
	workers, err := s.acquireUpTo(ctx, maxWorkers)
	if err != nil {
		return nil, err
	}
	defer s.release(workers)
	cands := make([]fairrank.Candidate, len(req.Candidates))
	for i, c := range req.Candidates {
		cands[i] = fairrank.Candidate{ID: c.ID, Score: c.Score, Group: c.Group, Attrs: c.Attrs}
	}
	ranked, err := ranker.RankParallel(cands, req.Seed, workers)
	if err != nil {
		// Ranking failures are input-caused (e.g. a constraint algorithm
		// over groups too small for the tolerance); report them as such.
		return nil, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	ndcg, err := fairrank.NDCG(ranked)
	if err != nil {
		return nil, err
	}
	resp := &RankResponse{
		Algorithm: string(ranker.Config().Algorithm),
		Ranking:   make([]RankedCandidate, len(ranked)),
		NDCG:      ndcg,
	}
	if resp.Algorithm == "" {
		resp.Algorithm = string(fairrank.AlgorithmMallowsBest)
	}
	for i, c := range ranked {
		resp.Ranking[i] = RankedCandidate{Rank: i + 1, ID: c.ID, Score: c.Score, Group: c.Group, Attrs: c.Attrs}
	}
	return resp, nil
}

// validate rejects malformed requests before any ranking work starts.
func (s *Service) validate(req *RankRequest) error {
	if len(req.Candidates) == 0 {
		return invalidf("empty candidate set")
	}
	if len(req.Candidates) > s.cfg.MaxCandidates {
		return invalidf("%d candidates exceed the limit of %d", len(req.Candidates), s.cfg.MaxCandidates)
	}
	seen := make(map[string]bool, len(req.Candidates))
	for i, c := range req.Candidates {
		if c.ID == "" {
			return invalidf("candidate %d has an empty id", i)
		}
		if seen[c.ID] {
			return invalidf("duplicate candidate id %q", c.ID)
		}
		seen[c.ID] = true
	}
	if req.Theta != nil && !(*req.Theta > 0) {
		return invalidf("theta = %v, want > 0", *req.Theta)
	}
	if req.Samples != nil && *req.Samples < 1 {
		return invalidf("samples = %d, want ≥ 1", *req.Samples)
	}
	if req.Tolerance != nil && !(*req.Tolerance >= 0) {
		return invalidf("tolerance = %v, want ≥ 0", *req.Tolerance)
	}
	if req.WeakK < 0 {
		return invalidf("weak_k = %d, want ≥ 0", req.WeakK)
	}
	return nil
}

// parallelism returns how many workers the request can actually use:
// the best-of-m draw count for mallows-best (the only algorithm whose
// sampling loop fans out), 1 for everything else.
func parallelism(req *RankRequest) int {
	if req.Algorithm != "" && req.Algorithm != string(fairrank.AlgorithmMallowsBest) {
		return 1
	}
	if req.Samples != nil {
		return *req.Samples
	}
	return fairrank.DefaultSamples
}

// config maps the wire request onto the library configuration; omitted
// fields stay zero and take the library defaults.
func (req *RankRequest) config() fairrank.Config {
	cfg := fairrank.Config{
		Algorithm: fairrank.Algorithm(req.Algorithm),
		Central:   fairrank.Central(req.Central),
		Criterion: fairrank.Criterion(req.Criterion),
		WeakK:     req.WeakK,
		Sigma:     req.Sigma,
	}
	if req.Theta != nil {
		cfg.Theta = *req.Theta
	}
	if req.Samples != nil {
		cfg.Samples = *req.Samples
	}
	if req.Tolerance != nil {
		cfg.Tolerance = *req.Tolerance
	}
	return cfg
}

// ranker returns the cached reusable engine for cfg, building and
// caching it on first use. Unknown algorithm/central/criterion names
// surface here as ErrInvalid.
func (s *Service) ranker(cfg fairrank.Config) (*fairrank.Ranker, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.rankers[cfg]; ok {
		return r, nil
	}
	r, err := fairrank.NewRanker(cfg)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	if len(s.rankers) < maxCachedRankers {
		s.rankers[cfg] = r
	}
	return r, nil
}

// acquireUpTo takes between 1 and max worker slots: it blocks for the
// first and opportunistically grabs free ones up to max. It returns the
// number taken, to be released with release.
func (s *Service) acquireUpTo(ctx context.Context, max int) (int, error) {
	if max < 1 {
		max = 1
	}
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		return 0, ctx.Err()
	}
	n := 1
	for n < max {
		select {
		case s.sem <- struct{}{}:
			n++
		default:
			return n, nil
		}
	}
	return n, nil
}

func (s *Service) release(n int) {
	for i := 0; i < n; i++ {
		<-s.sem
	}
}
