// Package service is the serving layer over the fairrank library,
// organized as a four-layer pipeline:
//
//	transport  → composable HTTP middleware (request IDs, access logs,
//	             panic recovery, per-route metrics) over a rebuilt mux
//	admission  → a bounded queue in front of the worker pool: fast
//	             ErrSaturated (HTTP 429 + Retry-After) instead of
//	             unbounded blocking, with a queue-wait budget
//	jobs       → an async job store + supervisor: submit a batch, poll
//	             progress, fetch results, cancel; items drain through
//	             the same admission queue as synchronous traffic
//	engine     → typed DTOs, validation, and a cache of reusable
//	             fairrank.Ranker engines keyed by base configuration
//
// cmd/fairrankd exposes it over HTTP; the package itself is
// transport-agnostic so other frontends (gRPC, queues) can reuse it.
//
// Responses are deterministic: equal requests with equal seeds produce
// equal rankings, regardless of worker count, batch position, or
// sync-vs-async submission.
package service

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	fairrank "repro"
	"repro/internal/jobstore"
)

// ErrInvalid tags failures caused by the request rather than the
// service; transports should map it to their bad-request status.
var ErrInvalid = errors.New("invalid request")

// invalidf wraps a request-caused failure with ErrInvalid.
func invalidf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrInvalid, fmt.Sprintf(format, args...))
}

// Config parameterizes the service. The zero value is usable.
type Config struct {
	// Workers bounds the service's total ranking concurrency: at most
	// Workers goroutines sample at any moment, shared between the
	// parallel best-of-m draws of single requests, the entries of
	// batches, and async job items. Default GOMAXPROCS.
	Workers int
	// MaxCandidates rejects larger candidate pools. Default 100000.
	MaxCandidates int
	// MaxBatch rejects larger batches (sync and per job). Default 1024.
	MaxBatch int
	// QueueDepth bounds how many admitted requests may wait for a
	// worker slot beyond the Workers already executing. At the bound,
	// admission fails fast with ErrSaturated (HTTP 429 + Retry-After)
	// instead of blocking. Default 4×Workers.
	QueueDepth int
	// QueueWait is the per-request deadline budget inside the admission
	// queue: the longest an admitted synchronous request — a single
	// rank, or a batch at its start — may wait for a worker slot before
	// failing with ErrSaturated. Entries of a batch that has started
	// are exempt (an admitted batch completes whole rather than
	// dropping items mid-flight), as are async job items — absorbing
	// backlog is what jobs are for. Default 10s.
	QueueWait time.Duration
	// MaxJobs bounds concurrently stored async jobs (running or
	// retained finished). At the bound, submissions fail with
	// ErrSaturated. Default 64.
	MaxJobs int
	// JobTTL evicts finished (done or cancelled) jobs this long after
	// completion; a background sweeper (see SweepEvery) enforces it, so
	// TTL bounds a finished job's lifetime even on an idle server.
	// Default 10m.
	JobTTL time.Duration
	// SweepEvery is the cadence of the background TTL sweeper. Default
	// 30s, capped at JobTTL so a short test TTL implies a sweeper that
	// can actually observe it.
	SweepEvery time.Duration
	// JobStore persists async jobs. Nil means a fresh in-memory store
	// (jobs die with the process); hand it a jobstore disk store —
	// fairrankd's -job-dir flag — and jobs survive restarts, with
	// ResumeJobs re-enqueuing whatever a crash interrupted. The Service
	// takes ownership: Close closes the store.
	JobStore jobstore.Store
	// WebhookTimeout bounds each completion-event delivery attempt.
	// Default 5s.
	WebhookTimeout time.Duration
	// WebhookBackoff is the delay before the first webhook retry; it
	// doubles per attempt. Default 250ms.
	WebhookBackoff time.Duration
	// WebhookAttempts bounds delivery attempts per process run; an
	// exhausted budget leaves the event durably unsent, so a restart
	// tries again (at-least-once). Default 5.
	WebhookAttempts int
	// AccessLog, when non-nil, receives one structured line per HTTP
	// request from the transport middleware. Nil disables access
	// logging (the default — tests and embedded uses stay quiet).
	AccessLog *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxCandidates <= 0 {
		c.MaxCandidates = 100000
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 1024
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.QueueWait <= 0 {
		c.QueueWait = 10 * time.Second
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 64
	}
	if c.JobTTL <= 0 {
		c.JobTTL = 10 * time.Minute
	}
	if c.SweepEvery <= 0 {
		c.SweepEvery = 30 * time.Second
	}
	if c.SweepEvery > c.JobTTL {
		c.SweepEvery = c.JobTTL
	}
	if c.WebhookTimeout <= 0 {
		c.WebhookTimeout = 5 * time.Second
	}
	if c.WebhookBackoff <= 0 {
		c.WebhookBackoff = 250 * time.Millisecond
	}
	if c.WebhookAttempts <= 0 {
		c.WebhookAttempts = 5
	}
	return c
}

// maxCachedRankers caps the configuration → Ranker cache. At the cap an
// arbitrary entry is evicted rather than refusing the new key, so a
// burst of junk base configurations (e.g. many distinct sigmas) cannot
// permanently lock legitimate traffic out of engine reuse.
const maxCachedRankers = 256

// rankerKey identifies the reusable engine a request needs. Only the
// fields that shape the engine's construction belong here: theta,
// samples, criterion, tolerance, top-k, and seed travel per request
// (fairrank.Request), so requests that differ only in those share one
// engine — and, through its (n, θ)-keyed table cache, share the
// amortized Mallows state across dispersions.
type rankerKey struct {
	algorithm fairrank.Algorithm
	central   fairrank.Central
	weakK     int
	sigma     float64
}

// Service ranks requests. Construct with New; safe for concurrent use.
type Service struct {
	cfg   Config
	queue *queue         // admission/scheduling layer over the worker pool
	store jobstore.Store // job records (Config.JobStore or a fresh Mem)
	stats *metrics       // per-route transport counters, shared with the handler

	draining atomic.Bool // readiness withdrawn; no new work admitted

	jobsCtx    context.Context // parent of every job's context
	jobsCancel context.CancelFunc
	// drainMu orders job admission against the drain flip: SubmitJob
	// checks draining and registers with jobsWG under it, BeginDrain
	// sets the flag under it. Any submission therefore either completes
	// its jobsWG.Add before BeginDrain returns — and is awaited by
	// DrainJobs — or observes draining and is refused; jobsWG.Add can
	// never race jobsWG.Wait.
	drainMu sync.Mutex
	jobsWG  sync.WaitGroup // one per live job supervisor
	bgWG    sync.WaitGroup // background work: TTL sweeper, webhook deliveries

	// running maps live job IDs to their supervisor's cancel handle —
	// the job layer's process-local view, distinct from the store's
	// persisted records.
	runningMu sync.Mutex
	running   map[string]context.CancelFunc

	itemsDone atomic.Int64 // job items completed, this process
	recovered atomic.Int64 // jobs re-enqueued by ResumeJobs

	webhookClient    *http.Client
	webhookAttempts  atomic.Int64
	webhookDelivered atomic.Int64
	webhookRetries   atomic.Int64
	webhookExhausted atomic.Int64

	mu      sync.Mutex
	rankers map[rankerKey]*fairrank.Ranker
}

// New returns a Service with the given configuration.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	store := cfg.JobStore
	if store == nil {
		store = jobstore.NewMem()
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:           cfg,
		queue:         newQueue(cfg.Workers, cfg.QueueDepth, cfg.QueueWait),
		store:         store,
		stats:         newMetrics(),
		jobsCtx:       ctx,
		jobsCancel:    cancel,
		running:       make(map[string]context.CancelFunc),
		webhookClient: &http.Client{Timeout: cfg.WebhookTimeout},
		rankers:       make(map[rankerKey]*fairrank.Ranker),
	}
	s.bgWG.Add(1)
	go s.sweepLoop()
	return s
}

// BeginDrain withdraws readiness: /readyz turns 503 and new job
// submissions are rejected with ErrDraining, while in-flight requests
// and already-accepted jobs keep running. Call it on SIGTERM before
// http.Server.Shutdown so load balancers stop routing first. Once it
// returns, every job DrainJobs must wait for has already registered.
func (s *Service) BeginDrain() {
	s.drainMu.Lock()
	s.draining.Store(true)
	s.drainMu.Unlock()
}

// Draining reports whether BeginDrain has been called.
func (s *Service) Draining() bool { return s.draining.Load() }

// DrainJobs blocks until every accepted job reaches a terminal state,
// or ctx expires. It does not cancel anything; pair with Close for the
// hard stop after the grace period.
func (s *Service) DrainJobs(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		s.jobsWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close cancels every still-running job, waits for their supervisors
// and the background workers to exit, and closes the job store. On a
// durable store the cancelled supervisors hand their jobs back as
// pending first, so a later process resumes them with their progress
// intact. The Service must not be used afterwards.
func (s *Service) Close() {
	s.BeginDrain()
	s.jobsCancel()
	s.jobsWG.Wait()
	s.bgWG.Wait()
	s.store.Close()
}

// Rank serves one ranking request through the admission queue. The
// best-of-m Mallows draws run on as many idle workers as the pool has
// free (at least one); the worker count never changes the result. A
// saturated queue fails fast with ErrSaturated — but validation runs
// first, so an invalid request is a 400 whatever the load, and never
// consumes an admission ticket.
func (s *Service) Rank(ctx context.Context, req *RankRequest) (*RankResponse, error) {
	if err := s.validate(req); err != nil {
		return nil, err
	}
	if err := s.queue.Admit(); err != nil {
		return nil, err
	}
	defer s.queue.Done()
	return s.rank(ctx, req, s.cfg.Workers, true)
}

// RankBatch serves independent requests concurrently through the worker
// pool and returns one BatchItem per request, in request order. Entries
// fail independently: a bad request yields an Error item without
// affecting its neighbors. The batch occupies one admission-queue
// position as a whole and is budget-bounded at its start like any sync
// request: a saturated queue (full gate, or no execution slot freeing
// within QueueWait) rejects it up front with ErrSaturated — whole,
// never by dropping entries mid-batch. Once work begins, entries wait
// for slots without a budget, so an admitted batch always completes.
func (s *Service) RankBatch(ctx context.Context, batch *BatchRequest) (*BatchResponse, error) {
	if err := s.validateBatch(batch); err != nil {
		return nil, err
	}
	if err := s.queue.Admit(); err != nil {
		return nil, err
	}
	defer s.queue.Done()
	// The budget probe: refuse the whole batch while the pool is wedged
	// rather than holding the connection open indefinitely. The probe
	// slot is returned immediately — entries acquire their own.
	if err := s.queue.WaitSlot(ctx, true); err != nil {
		return nil, err
	}
	s.queue.ReleaseSlots(1)
	items := s.runBatch(ctx, batch.Requests, nil, nil)
	// A cancelled batch is a transport-level failure of the whole call,
	// not N independent entry failures: report it as such so the HTTP
	// layer maps it to 499 rather than 200-with-error-items.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return &BatchResponse{Items: items}, nil
}

// validateBatch rejects malformed batches before admission.
func (s *Service) validateBatch(batch *BatchRequest) error {
	if len(batch.Requests) == 0 {
		return invalidf("empty batch")
	}
	if len(batch.Requests) > s.cfg.MaxBatch {
		return invalidf("batch of %d requests exceeds the limit of %d", len(batch.Requests), s.cfg.MaxBatch)
	}
	return nil
}

// runBatch ranks every request into its BatchItem, in order, with at
// most Workers entries in flight at once (each entry still takes an
// execution slot, so total sampling concurrency never exceeds the
// pool). Entries of an admitted batch wait for slots without a budget:
// admission control already happened at the batch boundary, so entries
// can never be dropped mid-batch by saturation. idxs, when non-nil,
// restricts the run to those entry indices — the resume path's "only
// the missing draws re-run" subset; the skipped slots stay zero.
// onItem, when non-nil, observes each completed entry (the async job
// layer's progress hook).
//
// One entry ranks identically here, as a single request, and as a job
// item: DoParallel results are worker-invariant and every path resolves
// the same per-request seed.
func (s *Service) runBatch(ctx context.Context, reqs []RankRequest, idxs []int, onItem func(i int, item BatchItem)) []BatchItem {
	if idxs == nil {
		idxs = make([]int, len(reqs))
		for i := range reqs {
			idxs[i] = i
		}
	}
	items := make([]BatchItem, len(reqs))
	fan := s.cfg.Workers
	if fan > len(idxs) {
		fan = len(idxs)
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < fan; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				// One pool slot per entry: entries parallelize across the
				// pool, draws within an entry stay sequential. ctx flows
				// through to the sampling loop, so cancelling the batch
				// aborts every entry promptly — queued entries at slot
				// wait, running entries between draws. Validation runs
				// before the slot wait, so a bad entry fails without
				// touching the pool.
				var resp *RankResponse
				err := s.validate(&reqs[i])
				if err == nil {
					resp, err = s.rank(ctx, &reqs[i], 1, false)
				}
				if err != nil {
					items[i] = BatchItem{Error: err.Error()}
				} else {
					items[i] = BatchItem{Response: resp}
				}
				if onItem != nil {
					onItem(i, items[i])
				}
			}
		}()
	}
	for _, i := range idxs {
		next <- i
	}
	close(next)
	wg.Wait()
	return items
}

// rank is the engine-layer serving path shared by the sync single,
// sync batch, and async job paths; callers have already validated the
// request. bounded selects the admission queue's wait mode:
// synchronous requests race the queue-wait budget, admitted batch
// entries and job items wait patiently.
func (s *Service) rank(ctx context.Context, req *RankRequest, maxWorkers int, bounded bool) (*RankResponse, error) {
	// An already-cancelled request (a disconnected client, an expired
	// deadline, an aborted batch) does no work at all.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ranker, err := s.ranker(req.key(), req.baseConfig())
	if err != nil {
		return nil, err
	}
	// Never hold slots the request cannot use: only the best-of-m loop
	// parallelizes, and at most one goroutine per draw.
	if p := parallelism(req); p < maxWorkers {
		maxWorkers = p
	}
	if err := s.queue.WaitSlot(ctx, bounded); err != nil {
		return nil, err
	}
	workers := 1 + s.queue.TryExtra(maxWorkers-1)
	defer s.queue.ReleaseSlots(workers)
	cands := make([]fairrank.Candidate, len(req.Candidates))
	for i, c := range req.Candidates {
		cands[i] = fairrank.Candidate{ID: c.ID, Score: c.Score, Group: c.Group, Attrs: c.Attrs, Membership: c.Membership}
	}
	res, err := ranker.DoParallel(ctx, fairrank.Request{
		Candidates: cands,
		Theta:      req.Theta,
		Samples:    req.Samples,
		Criterion:  fairrank.Criterion(req.Criterion),
		Noise:      fairrank.Noise(req.Noise),
		Tolerance:  req.Tolerance,
		TopK:       req.TopK,
		Seed:       &req.Seed,
	}, workers)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			// Cancellation is the caller's doing, not a bad request;
			// keep it distinguishable from ErrInvalid.
			return nil, ctxErr
		}
		// Remaining ranking failures are input-caused (e.g. a constraint
		// algorithm over groups too small for the tolerance, an unknown
		// criterion name); report them as such.
		return nil, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	d := res.Diagnostics
	resp := &RankResponse{
		Algorithm: string(d.Algorithm),
		Ranking:   make([]RankedCandidate, len(res.Ranking)),
		NDCG:      d.NDCG,
		Diagnostics: Diagnostics{
			Algorithm:         string(d.Algorithm),
			Central:           string(d.Central),
			Criterion:         string(d.Criterion),
			Theta:             d.Theta,
			Samples:           d.Samples,
			Tolerance:         d.Tolerance,
			Seed:              d.Seed,
			Noise:             string(d.Noise),
			TopK:              d.TopK,
			NDCG:              d.NDCG,
			DrawsEvaluated:    d.DrawsEvaluated,
			CentralKendallTau: d.CentralKendallTau,
			PPfair:            d.PPfair,
			InfeasibleIndex:   d.InfeasibleIndex,
		},
	}
	if d.Probabilistic != nil {
		resp.Diagnostics.Probabilistic = &ProbDiagnostics{
			ExpectedPPfair:            d.Probabilistic.ExpectedPPfair,
			ExpectedInfeasibleIndex:   d.Probabilistic.ExpectedInfeasibleIndex,
			ExpectedDisparateExposure: d.Probabilistic.ExpectedDisparateExposure,
			ExpectedExposureGap:       d.Probabilistic.ExpectedExposureGap,
		}
	}
	for i, c := range res.Ranking {
		resp.Ranking[i] = RankedCandidate{Rank: i + 1, ID: c.ID, Score: c.Score, Group: c.Group, Attrs: c.Attrs}
	}
	return resp, nil
}

// validate rejects malformed requests before any ranking work starts.
func (s *Service) validate(req *RankRequest) error {
	if len(req.Candidates) == 0 {
		return invalidf("empty candidate set")
	}
	if len(req.Candidates) > s.cfg.MaxCandidates {
		return invalidf("%d candidates exceed the limit of %d", len(req.Candidates), s.cfg.MaxCandidates)
	}
	seen := make(map[string]bool, len(req.Candidates))
	for i, c := range req.Candidates {
		if c.ID == "" {
			return invalidf("candidate %d has an empty id", i)
		}
		if seen[c.ID] {
			return invalidf("duplicate candidate id %q", c.ID)
		}
		seen[c.ID] = true
		if c.Membership != nil {
			var sum float64
			for name, p := range c.Membership {
				if name == "" {
					return invalidf("candidate %q membership names an empty group", c.ID)
				}
				if math.IsNaN(p) || p < 0 || p > 1 {
					return invalidf("candidate %q membership for group %q = %v, want in [0,1]", c.ID, name, p)
				}
				sum += p
			}
			if math.Abs(sum-1) > 1e-9 {
				return invalidf("candidate %q membership sums to %v, want 1", c.ID, sum)
			}
		}
	}
	if req.Theta != nil && !(*req.Theta >= 0) {
		return invalidf("theta = %v, want ≥ 0", *req.Theta)
	}
	if req.Samples != nil && *req.Samples < 1 {
		return invalidf("samples = %d, want ≥ 1", *req.Samples)
	}
	if req.Tolerance != nil && !(*req.Tolerance >= 0) {
		return invalidf("tolerance = %v, want ≥ 0", *req.Tolerance)
	}
	if req.TopK != nil && *req.TopK < 1 {
		return invalidf("top_k = %d, want ≥ 1", *req.TopK)
	}
	if req.WeakK < 0 {
		return invalidf("weak_k = %d, want ≥ 0", req.WeakK)
	}
	if !(req.Sigma >= 0) || math.IsInf(req.Sigma, 0) {
		return invalidf("sigma = %v, want finite ≥ 0", req.Sigma)
	}
	return nil
}

// parallelism returns how many workers the request can actually use:
// the best-of-m draw count for the sampling algorithms whose loop fans
// out (per the registry metadata), 1 for everything else — including
// unknown algorithm names, which fail validation downstream.
func parallelism(req *RankRequest) int {
	name := req.Algorithm
	if name == "" {
		name = string(fairrank.DefaultAlgorithm)
	}
	info, ok := fairrank.LookupAlgorithm(name)
	if !ok || !info.Sampling || !info.BestOf {
		return 1
	}
	if req.Samples != nil {
		return *req.Samples
	}
	return fairrank.DefaultSamples
}

// key identifies the engine the request needs; see rankerKey for why
// only these fields participate.
func (req *RankRequest) key() rankerKey {
	return rankerKey{
		algorithm: fairrank.Algorithm(req.Algorithm),
		central:   fairrank.Central(req.Central),
		weakK:     req.WeakK,
		sigma:     req.Sigma,
	}
}

// baseConfig maps the engine-shaping wire fields onto the library
// configuration; everything else rides on the per-request
// fairrank.Request.
func (req *RankRequest) baseConfig() fairrank.Config {
	return fairrank.Config{
		Algorithm: fairrank.Algorithm(req.Algorithm),
		Central:   fairrank.Central(req.Central),
		WeakK:     req.WeakK,
		Sigma:     req.Sigma,
	}
}

// ranker returns the cached reusable engine for the key, building and
// caching it on first use. Unknown algorithm/central names surface here
// as ErrInvalid.
func (s *Service) ranker(key rankerKey, cfg fairrank.Config) (*fairrank.Ranker, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.rankers[key]; ok {
		return r, nil
	}
	r, err := fairrank.NewRanker(cfg)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	if len(s.rankers) >= maxCachedRankers {
		for k := range s.rankers {
			delete(s.rankers, k) // evict one arbitrary entry
			break
		}
	}
	s.rankers[key] = r
	return r, nil
}

// Catalog describes the rankable surface — every algorithm, noise
// mechanism, central ranking, and selection criterion the service
// accepts, with the value each omitted field resolves to. GET
// /v1/algorithms serves it so clients can introspect instead of
// hardcoding strings.
//
// The algorithm and noise sections are generated from the fairrank
// registry at call time: anything registered through fairrank.Register
// or fairrank.RegisterNoise is immediately servable and cataloged, with
// no serving-layer edit.
func Catalog() *CatalogResponse {
	infos := fairrank.Algorithms()
	algos := make([]AlgorithmInfo, len(infos))
	for i, a := range infos {
		algos[i] = AlgorithmInfo{
			Name:           a.Name,
			Description:    a.Description,
			ReadsGroup:     !a.AttributeBlind,
			AttributeBlind: a.AttributeBlind,
			Deterministic:  a.Deterministic,
			SupportsSigma:  a.SupportsSigma,
			MinGroups:      a.MinGroups,
			MaxGroups:      a.MaxGroups,
			Tunables:       a.Tunables,
			MinMeanPPfair:  a.Guarantees.MinMeanPPfair,
			MinMeanNDCG:    a.Guarantees.MinMeanNDCG,
		}
	}
	noiseInfos := fairrank.Noises()
	noises := make([]OptionInfo, len(noiseInfos))
	for i, n := range noiseInfos {
		noises[i] = OptionInfo{Name: n.Name, Description: n.Description}
	}
	return &CatalogResponse{
		Algorithms: algos,
		Noises:     noises,
		Centrals: []OptionInfo{
			{Name: string(fairrank.CentralWeaklyFair), Description: "score order with the top-weak_k prefix adjusted to weak k-fairness"},
			{Name: string(fairrank.CentralFairDCG), Description: "the DCG-optimal (α,β)-fair ranking (§IV-B program)"},
			{Name: string(fairrank.CentralScoreOrder), Description: "raw score order; all fairness comes from the noise"},
		},
		Criteria: []OptionInfo{
			{Name: string(fairrank.CriterionNDCG), Description: "keep the sample with the highest NDCG"},
			{Name: string(fairrank.CriterionKT), Description: "keep the sample closest to the central ranking in Kendall tau"},
		},
		Defaults: DefaultsInfo{
			Algorithm: string(fairrank.DefaultAlgorithm),
			Central:   string(fairrank.CentralWeaklyFair),
			Criterion: string(fairrank.CriterionNDCG),
			Noise:     string(fairrank.NoiseMallows),
			Theta:     1,
			Samples:   fairrank.DefaultSamples,
			Tolerance: 0.1,
			WeakK:     "min(10, n)",
			Sigma:     0,
			TopK:      "full ranking",
		},
		Membership: MembershipInfo{
			Description: "optional per-candidate distribution over group names (values in [0,1] summing to 1); keys join the group universe, one-hot rows reproduce the deterministic audit bit for bit",
			Metrics:     []string{"expected_ppfair", "expected_infeasible_index", "expected_disparate_exposure", "expected_exposure_gap"},
		},
	}
}
