// Package service is the serving layer over the fairrank library: typed
// request/response DTOs, request validation, a cache of reusable
// fairrank.Ranker engines keyed by configuration, and a bounded worker
// pool that both fans a single request's best-of-m Mallows draws across
// idle workers and ranks the independent requests of a batch
// concurrently. cmd/fairrankd exposes it over HTTP; the package itself
// is transport-agnostic so other frontends (gRPC, queues) can reuse it.
//
// Responses are deterministic: equal requests with equal seeds produce
// equal rankings, regardless of worker count or batch position.
package service

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"

	fairrank "repro"
)

// ErrInvalid tags failures caused by the request rather than the
// service; transports should map it to their bad-request status.
var ErrInvalid = errors.New("invalid request")

// invalidf wraps a request-caused failure with ErrInvalid.
func invalidf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrInvalid, fmt.Sprintf(format, args...))
}

// Config parameterizes the service. The zero value is usable.
type Config struct {
	// Workers bounds the service's total ranking concurrency: at most
	// Workers goroutines sample at any moment, shared between the
	// parallel best-of-m draws of single requests and the entries of
	// batches. Default GOMAXPROCS.
	Workers int
	// MaxCandidates rejects larger candidate pools. Default 100000.
	MaxCandidates int
	// MaxBatch rejects larger batches. Default 1024.
	MaxBatch int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxCandidates <= 0 {
		c.MaxCandidates = 100000
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 1024
	}
	return c
}

// maxCachedRankers caps the configuration → Ranker cache. At the cap an
// arbitrary entry is evicted rather than refusing the new key, so a
// burst of junk base configurations (e.g. many distinct sigmas) cannot
// permanently lock legitimate traffic out of engine reuse.
const maxCachedRankers = 256

// rankerKey identifies the reusable engine a request needs. Only the
// fields that shape the engine's construction belong here: theta,
// samples, criterion, tolerance, top-k, and seed travel per request
// (fairrank.Request), so requests that differ only in those share one
// engine — and, through its (n, θ)-keyed table cache, share the
// amortized Mallows state across dispersions.
type rankerKey struct {
	algorithm fairrank.Algorithm
	central   fairrank.Central
	weakK     int
	sigma     float64
}

// Service ranks requests. Construct with New; safe for concurrent use.
type Service struct {
	cfg Config
	sem chan struct{} // one slot per concurrently sampling goroutine

	mu      sync.Mutex
	rankers map[rankerKey]*fairrank.Ranker
}

// New returns a Service with the given configuration.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	return &Service{
		cfg:     cfg,
		sem:     make(chan struct{}, cfg.Workers),
		rankers: make(map[rankerKey]*fairrank.Ranker),
	}
}

// Rank serves one ranking request. The best-of-m Mallows draws run on as
// many idle workers as the pool has free (at least one); the worker
// count never changes the result.
func (s *Service) Rank(ctx context.Context, req *RankRequest) (*RankResponse, error) {
	return s.rank(ctx, req, s.cfg.Workers)
}

// RankBatch serves independent requests concurrently through the worker
// pool and returns one BatchItem per request, in request order. Entries
// fail independently: a bad request yields an Error item without
// affecting its neighbors.
func (s *Service) RankBatch(ctx context.Context, batch *BatchRequest) (*BatchResponse, error) {
	if len(batch.Requests) == 0 {
		return nil, invalidf("empty batch")
	}
	if len(batch.Requests) > s.cfg.MaxBatch {
		return nil, invalidf("batch of %d requests exceeds the limit of %d", len(batch.Requests), s.cfg.MaxBatch)
	}
	items := make([]BatchItem, len(batch.Requests))
	var wg sync.WaitGroup
	for i := range batch.Requests {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// One pool slot per entry: entries parallelize across the
			// pool, draws within an entry stay sequential. DoParallel
			// results are worker-invariant, so an entry ranks identically
			// here and as a single request. ctx flows through to the
			// sampling loop, so cancelling the batch aborts every entry
			// promptly — queued entries at admission, running entries
			// between draws.
			resp, err := s.rank(ctx, &batch.Requests[i], 1)
			if err != nil {
				items[i] = BatchItem{Error: err.Error()}
				return
			}
			items[i] = BatchItem{Response: resp}
		}(i)
	}
	wg.Wait()
	// A cancelled batch is a transport-level failure of the whole call,
	// not N independent entry failures: report it as such so the HTTP
	// layer maps it to 499 rather than 200-with-error-items.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return &BatchResponse{Items: items}, nil
}

func (s *Service) rank(ctx context.Context, req *RankRequest, maxWorkers int) (*RankResponse, error) {
	// An already-cancelled request (a disconnected client, an expired
	// deadline, an aborted batch) does no work at all.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := s.validate(req); err != nil {
		return nil, err
	}
	ranker, err := s.ranker(req.key(), req.baseConfig())
	if err != nil {
		return nil, err
	}
	// Never hold slots the request cannot use: only the best-of-m loop
	// parallelizes, and at most one goroutine per draw.
	if p := parallelism(req); p < maxWorkers {
		maxWorkers = p
	}
	workers, err := s.acquireUpTo(ctx, maxWorkers)
	if err != nil {
		return nil, err
	}
	defer s.release(workers)
	cands := make([]fairrank.Candidate, len(req.Candidates))
	for i, c := range req.Candidates {
		cands[i] = fairrank.Candidate{ID: c.ID, Score: c.Score, Group: c.Group, Attrs: c.Attrs}
	}
	res, err := ranker.DoParallel(ctx, fairrank.Request{
		Candidates: cands,
		Theta:      req.Theta,
		Samples:    req.Samples,
		Criterion:  fairrank.Criterion(req.Criterion),
		Noise:      fairrank.Noise(req.Noise),
		Tolerance:  req.Tolerance,
		TopK:       req.TopK,
		Seed:       &req.Seed,
	}, workers)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			// Cancellation is the caller's doing, not a bad request;
			// keep it distinguishable from ErrInvalid.
			return nil, ctxErr
		}
		// Remaining ranking failures are input-caused (e.g. a constraint
		// algorithm over groups too small for the tolerance, an unknown
		// criterion name); report them as such.
		return nil, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	d := res.Diagnostics
	resp := &RankResponse{
		Algorithm: string(d.Algorithm),
		Ranking:   make([]RankedCandidate, len(res.Ranking)),
		NDCG:      d.NDCG,
		Diagnostics: Diagnostics{
			Algorithm:         string(d.Algorithm),
			Central:           string(d.Central),
			Criterion:         string(d.Criterion),
			Theta:             d.Theta,
			Samples:           d.Samples,
			Tolerance:         d.Tolerance,
			Seed:              d.Seed,
			Noise:             string(d.Noise),
			TopK:              d.TopK,
			NDCG:              d.NDCG,
			DrawsEvaluated:    d.DrawsEvaluated,
			CentralKendallTau: d.CentralKendallTau,
			PPfair:            d.PPfair,
			InfeasibleIndex:   d.InfeasibleIndex,
		},
	}
	for i, c := range res.Ranking {
		resp.Ranking[i] = RankedCandidate{Rank: i + 1, ID: c.ID, Score: c.Score, Group: c.Group, Attrs: c.Attrs}
	}
	return resp, nil
}

// validate rejects malformed requests before any ranking work starts.
func (s *Service) validate(req *RankRequest) error {
	if len(req.Candidates) == 0 {
		return invalidf("empty candidate set")
	}
	if len(req.Candidates) > s.cfg.MaxCandidates {
		return invalidf("%d candidates exceed the limit of %d", len(req.Candidates), s.cfg.MaxCandidates)
	}
	seen := make(map[string]bool, len(req.Candidates))
	for i, c := range req.Candidates {
		if c.ID == "" {
			return invalidf("candidate %d has an empty id", i)
		}
		if seen[c.ID] {
			return invalidf("duplicate candidate id %q", c.ID)
		}
		seen[c.ID] = true
	}
	if req.Theta != nil && !(*req.Theta >= 0) {
		return invalidf("theta = %v, want ≥ 0", *req.Theta)
	}
	if req.Samples != nil && *req.Samples < 1 {
		return invalidf("samples = %d, want ≥ 1", *req.Samples)
	}
	if req.Tolerance != nil && !(*req.Tolerance >= 0) {
		return invalidf("tolerance = %v, want ≥ 0", *req.Tolerance)
	}
	if req.TopK != nil && *req.TopK < 1 {
		return invalidf("top_k = %d, want ≥ 1", *req.TopK)
	}
	if req.WeakK < 0 {
		return invalidf("weak_k = %d, want ≥ 0", req.WeakK)
	}
	if !(req.Sigma >= 0) || math.IsInf(req.Sigma, 0) {
		return invalidf("sigma = %v, want finite ≥ 0", req.Sigma)
	}
	return nil
}

// parallelism returns how many workers the request can actually use:
// the best-of-m draw count for the sampling algorithms whose loop fans
// out (per the registry metadata), 1 for everything else — including
// unknown algorithm names, which fail validation downstream.
func parallelism(req *RankRequest) int {
	name := req.Algorithm
	if name == "" {
		name = string(fairrank.DefaultAlgorithm)
	}
	info, ok := fairrank.LookupAlgorithm(name)
	if !ok || !info.Sampling || !info.BestOf {
		return 1
	}
	if req.Samples != nil {
		return *req.Samples
	}
	return fairrank.DefaultSamples
}

// key identifies the engine the request needs; see rankerKey for why
// only these fields participate.
func (req *RankRequest) key() rankerKey {
	return rankerKey{
		algorithm: fairrank.Algorithm(req.Algorithm),
		central:   fairrank.Central(req.Central),
		weakK:     req.WeakK,
		sigma:     req.Sigma,
	}
}

// baseConfig maps the engine-shaping wire fields onto the library
// configuration; everything else rides on the per-request
// fairrank.Request.
func (req *RankRequest) baseConfig() fairrank.Config {
	return fairrank.Config{
		Algorithm: fairrank.Algorithm(req.Algorithm),
		Central:   fairrank.Central(req.Central),
		WeakK:     req.WeakK,
		Sigma:     req.Sigma,
	}
}

// ranker returns the cached reusable engine for the key, building and
// caching it on first use. Unknown algorithm/central names surface here
// as ErrInvalid.
func (s *Service) ranker(key rankerKey, cfg fairrank.Config) (*fairrank.Ranker, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.rankers[key]; ok {
		return r, nil
	}
	r, err := fairrank.NewRanker(cfg)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	if len(s.rankers) >= maxCachedRankers {
		for k := range s.rankers {
			delete(s.rankers, k) // evict one arbitrary entry
			break
		}
	}
	s.rankers[key] = r
	return r, nil
}

// acquireUpTo takes between 1 and max worker slots: it blocks for the
// first and opportunistically grabs free ones up to max. It returns the
// number taken, to be released with release.
func (s *Service) acquireUpTo(ctx context.Context, max int) (int, error) {
	if max < 1 {
		max = 1
	}
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		return 0, ctx.Err()
	}
	n := 1
	for n < max {
		select {
		case s.sem <- struct{}{}:
			n++
		default:
			return n, nil
		}
	}
	return n, nil
}

func (s *Service) release(n int) {
	for i := 0; i < n; i++ {
		<-s.sem
	}
}

// Catalog describes the rankable surface — every algorithm, noise
// mechanism, central ranking, and selection criterion the service
// accepts, with the value each omitted field resolves to. GET
// /v1/algorithms serves it so clients can introspect instead of
// hardcoding strings.
//
// The algorithm and noise sections are generated from the fairrank
// registry at call time: anything registered through fairrank.Register
// or fairrank.RegisterNoise is immediately servable and cataloged, with
// no serving-layer edit.
func Catalog() *CatalogResponse {
	infos := fairrank.Algorithms()
	algos := make([]AlgorithmInfo, len(infos))
	for i, a := range infos {
		algos[i] = AlgorithmInfo{
			Name:           a.Name,
			Description:    a.Description,
			ReadsGroup:     !a.AttributeBlind,
			AttributeBlind: a.AttributeBlind,
			Deterministic:  a.Deterministic,
			SupportsSigma:  a.SupportsSigma,
			MinGroups:      a.MinGroups,
			MaxGroups:      a.MaxGroups,
			Tunables:       a.Tunables,
			MinMeanPPfair:  a.Guarantees.MinMeanPPfair,
			MinMeanNDCG:    a.Guarantees.MinMeanNDCG,
		}
	}
	noiseInfos := fairrank.Noises()
	noises := make([]OptionInfo, len(noiseInfos))
	for i, n := range noiseInfos {
		noises[i] = OptionInfo{Name: n.Name, Description: n.Description}
	}
	return &CatalogResponse{
		Algorithms: algos,
		Noises:     noises,
		Centrals: []OptionInfo{
			{Name: string(fairrank.CentralWeaklyFair), Description: "score order with the top-weak_k prefix adjusted to weak k-fairness"},
			{Name: string(fairrank.CentralFairDCG), Description: "the DCG-optimal (α,β)-fair ranking (§IV-B program)"},
			{Name: string(fairrank.CentralScoreOrder), Description: "raw score order; all fairness comes from the noise"},
		},
		Criteria: []OptionInfo{
			{Name: string(fairrank.CriterionNDCG), Description: "keep the sample with the highest NDCG"},
			{Name: string(fairrank.CriterionKT), Description: "keep the sample closest to the central ranking in Kendall tau"},
		},
		Defaults: DefaultsInfo{
			Algorithm: string(fairrank.DefaultAlgorithm),
			Central:   string(fairrank.CentralWeaklyFair),
			Criterion: string(fairrank.CriterionNDCG),
			Noise:     string(fairrank.NoiseMallows),
			Theta:     1,
			Samples:   fairrank.DefaultSamples,
			Tolerance: 0.1,
			WeakK:     "min(10, n)",
			Sigma:     0,
			TopK:      "full ranking",
		},
	}
}
