package service

// The ranker-cache stress suite: many goroutines hammering Rank with
// rotating base configurations, so cache insertion, sharing, and
// at-capacity eviction race each other. Run under -race (CI does) these
// tests pin the concurrency contract of the configuration → Ranker
// cache; without -race they still verify that rankings stay correct and
// deterministic while the cache churns.

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// stressIterations keeps the suite meaningful but bounded; -short
// halves the pressure.
func stressIterations() int {
	if testing.Short() {
		return 150
	}
	return 400
}

// TestRankerCacheStressRotatingConfigs rotates through more distinct
// base configurations (sigma shapes the cache key) than the cache can
// hold, from many goroutines at once: every Rank must keep succeeding
// while entries are concurrently inserted, shared, and evicted.
func TestRankerCacheStressRotatingConfigs(t *testing.T) {
	s := New(Config{Workers: 4})
	cands := pool(12)
	const workers = 8
	iters := stressIterations()
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			algos := []string{"score", "mallows", "detconstsort", "mallows-best"}
			for i := 0; i < iters; i++ {
				// maxCachedRankers+32 distinct sigmas force steady-state
				// eviction; the algorithm rotation mixes sampling and
				// deterministic engines in the same cache.
				req := &RankRequest{
					Candidates: cands,
					Algorithm:  algos[(w+i)%len(algos)],
					Sigma:      float64((w*iters+i)%(maxCachedRankers+32)) / 1000,
					Samples:    ptr(2),
					Seed:       int64(i),
				}
				resp, err := s.Rank(context.Background(), req)
				if err != nil {
					errs <- fmt.Errorf("worker %d iter %d: %v", w, i, err)
					return
				}
				if len(resp.Ranking) != len(cands) {
					errs <- fmt.Errorf("worker %d iter %d: %d ranked, want %d", w, i, len(resp.Ranking), len(cands))
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	s.mu.Lock()
	cached := len(s.rankers)
	s.mu.Unlock()
	if cached > maxCachedRankers {
		t.Fatalf("cache holds %d engines after churn, cap is %d", cached, maxCachedRankers)
	}
}

// TestRankerCacheStressDeterminismUnderContention: goroutines racing on
// the same key must share one engine and still produce the bit-identical
// ranking for equal seeds — cache sharing must never leak cross-request
// state into results.
func TestRankerCacheStressDeterminismUnderContention(t *testing.T) {
	s := New(Config{Workers: 4})
	cands := pool(16)
	const workers = 8
	iters := stressIterations() / 2
	want, err := s.Rank(context.Background(), &RankRequest{Candidates: cands, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Interleave requests on the shared key with cache-churning
				// other keys, so the fixed request keeps racing insert/evict.
				if i%3 == 0 {
					churn := &RankRequest{Candidates: cands, Sigma: float64(i%300)/100 + 1, Algorithm: "detconstsort", Seed: 7}
					if _, err := s.Rank(context.Background(), churn); err != nil {
						errs <- fmt.Errorf("worker %d churn %d: %v", w, i, err)
						return
					}
					continue
				}
				resp, err := s.Rank(context.Background(), &RankRequest{Candidates: cands, Seed: 42})
				if err != nil {
					errs <- fmt.Errorf("worker %d iter %d: %v", w, i, err)
					return
				}
				for p := range resp.Ranking {
					if resp.Ranking[p].ID != want.Ranking[p].ID {
						errs <- fmt.Errorf("worker %d iter %d: rank %d = %s, want %s (cache sharing leaked state)",
							w, i, p+1, resp.Ranking[p].ID, want.Ranking[p].ID)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestRankerCacheStressSharedEngineSizeStates rotates per-request theta
// on one shared engine from many goroutines: the engine's internal
// (n, θ)-keyed table cache does its own lock-free reads with locked
// insert/evict, and must survive the same churn the service cache does.
func TestRankerCacheStressSharedEngineSizeStates(t *testing.T) {
	s := New(Config{Workers: 4})
	cands := pool(10)
	const workers = 8
	iters := stressIterations() / 2
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				theta := float64((w*iters+i)%96)/10 + 0.1 // 96 distinct θ > the engine's size-state cap
				req := &RankRequest{Candidates: cands, Theta: &theta, Samples: ptr(2), Seed: int64(i)}
				if _, err := s.Rank(context.Background(), req); err != nil {
					errs <- fmt.Errorf("worker %d iter %d (θ=%v): %v", w, i, theta, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
