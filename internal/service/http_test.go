package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	fairrank "repro"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(NewHandler(New(Config{Workers: 4})))
	t.Cleanup(srv.Close)
	return srv
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

// End-to-end: POST /v1/rank returns a complete, deterministic ranking.
func TestHTTPRankEndToEnd(t *testing.T) {
	srv := newTestServer(t)
	req := RankRequest{Candidates: pool(20), Samples: ptr(10), Seed: 42}
	resp, body := postJSON(t, srv.URL+"/v1/rank", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var out RankResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Ranking) != 20 || out.Ranking[0].Rank != 1 {
		t.Fatalf("bad ranking shape: %+v", out)
	}
	// Same request over the wire again → same ranking.
	_, body2 := postJSON(t, srv.URL+"/v1/rank", req)
	var out2 RankResponse
	if err := json.Unmarshal(body2, &out2); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.Ranking, out2.Ranking) {
		t.Fatal("equal-seed HTTP requests returned different rankings")
	}
}

// End-to-end: POST /v1/rank/batch answers every entry in order.
func TestHTTPBatchEndToEnd(t *testing.T) {
	srv := newTestServer(t)
	batch := BatchRequest{Requests: []RankRequest{
		{Candidates: pool(10), Seed: 1},
		{Candidates: pool(10), Algorithm: "score", Seed: 2},
		{Candidates: nil, Seed: 3}, // invalid entry fails alone
	}}
	resp, body := postJSON(t, srv.URL+"/v1/rank/batch", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out BatchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Items) != 3 {
		t.Fatalf("%d items, want 3", len(out.Items))
	}
	if out.Items[0].Response == nil || out.Items[1].Response == nil {
		t.Fatalf("valid entries failed: %+v", out.Items)
	}
	if out.Items[1].Response.Algorithm != "score" {
		t.Errorf("entry 1 algorithm = %q", out.Items[1].Response.Algorithm)
	}
	if !strings.Contains(out.Items[2].Error, "empty candidate set") {
		t.Errorf("entry 2 error = %q", out.Items[2].Error)
	}
}

// The new wire fields round-trip: top_k truncates, explicit zero theta
// survives, and the diagnostics block comes back populated.
func TestHTTPOverridesAndDiagnostics(t *testing.T) {
	srv := newTestServer(t)
	req := RankRequest{Candidates: pool(20), Theta: ptr(0.0), TopK: ptr(6), Samples: ptr(5), Seed: 7}
	resp, body := postJSON(t, srv.URL+"/v1/rank", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out RankResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Ranking) != 6 {
		t.Fatalf("top_k=6 returned %d entries", len(out.Ranking))
	}
	d := out.Diagnostics
	if d.Theta != 0 || d.Samples != 5 || d.TopK != 6 || d.Seed != 7 {
		t.Errorf("diagnostics did not echo the overrides: %+v", d)
	}
	if d.DrawsEvaluated != 5 || d.Algorithm != "mallows-best" {
		t.Errorf("diagnostics incomplete: %+v", d)
	}
}

// GET /v1/algorithms exposes the catalog for client introspection.
func TestHTTPAlgorithms(t *testing.T) {
	srv := newTestServer(t)
	resp, err := http.Get(srv.URL + "/v1/algorithms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var cat CatalogResponse
	if err := json.NewDecoder(resp.Body).Decode(&cat); err != nil {
		t.Fatal(err)
	}
	// The served catalog must mirror the registry exactly — derived, not
	// hand-maintained — so registering an algorithm can never silently
	// desynchronize it.
	want := fairrank.Algorithms()
	if len(cat.Algorithms) != len(want) {
		t.Errorf("%d algorithms listed, registry has %d", len(cat.Algorithms), len(want))
	}
	served := map[string]bool{}
	for _, a := range cat.Algorithms {
		served[a.Name] = true
	}
	for _, a := range want {
		if !served[a.Name] {
			t.Errorf("registered algorithm %q missing from the served catalog", a.Name)
		}
	}
	wantNoises := fairrank.Noises()
	if len(cat.Noises) != len(wantNoises) {
		t.Errorf("%d noises listed, registry has %d", len(cat.Noises), len(wantNoises))
	}
	if cat.Defaults.Algorithm != string(fairrank.DefaultAlgorithm) || cat.Defaults.Samples != fairrank.DefaultSamples {
		t.Errorf("defaults = %+v", cat.Defaults)
	}
	if cat.Defaults.Noise != string(fairrank.NoiseMallows) {
		t.Errorf("default noise = %q", cat.Defaults.Noise)
	}
}

// A custom Strategy registered through fairrank.Register is servable
// over HTTP and cataloged by GET /v1/algorithms with no serving-layer
// change — the acceptance contract of the registry redesign.
func TestHTTPCustomAlgorithm(t *testing.T) {
	err := fairrank.Register(fairrank.AlgorithmInfo{
		Name:          "test-http-reverse",
		Description:   "central ranking reversed (HTTP test strategy)",
		Deterministic: true,
	}, func(cfg fairrank.Config) (fairrank.Strategy, error) {
		return fairrank.StrategyFunc(func(in *fairrank.Instance, _ *rand.Rand) ([]int, error) {
			c := in.Central()
			for i, j := 0, len(c)-1; i < j; i, j = i+1, j-1 {
				c[i], c[j] = c[j], c[i]
			}
			return c, nil
		}), nil
	})
	// A repeated in-process run (go test -count=2) hits the duplicate
	// guard; the first registration is identical and stays live.
	if err != nil && !errors.Is(err, fairrank.ErrDuplicateAlgorithm) {
		t.Fatal(err)
	}
	srv := newTestServer(t)
	resp, body := postJSON(t, srv.URL+"/v1/rank", RankRequest{
		Candidates: pool(12), Algorithm: "test-http-reverse", Seed: 1,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out RankResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Algorithm != "test-http-reverse" || len(out.Ranking) != 12 {
		t.Fatalf("response shape: %+v", out)
	}
	catResp, err := http.Get(srv.URL + "/v1/algorithms")
	if err != nil {
		t.Fatal(err)
	}
	defer catResp.Body.Close()
	var cat CatalogResponse
	if err := json.NewDecoder(catResp.Body).Decode(&cat); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range cat.Algorithms {
		if a.Name == "test-http-reverse" {
			found = true
		}
	}
	if !found {
		t.Error("registered algorithm missing from GET /v1/algorithms")
	}
}

// The noise axis is servable end to end: the wire field selects the
// mechanism, the diagnostics echo it, and unknown names are 400s.
func TestHTTPNoise(t *testing.T) {
	srv := newTestServer(t)
	req := RankRequest{Candidates: pool(16), Noise: "plackett-luce", Theta: ptr(0.4), Samples: ptr(5), Seed: 9}
	resp, body := postJSON(t, srv.URL+"/v1/rank", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out RankResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Diagnostics.Noise != "plackett-luce" {
		t.Errorf("diagnostics noise = %q", out.Diagnostics.Noise)
	}
	// Same request, same seed → same ranking, through the generic noise
	// path too.
	_, body2 := postJSON(t, srv.URL+"/v1/rank", req)
	var out2 RankResponse
	if err := json.Unmarshal(body2, &out2); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.Ranking, out2.Ranking) {
		t.Error("equal-seed plackett-luce requests diverged")
	}
	bad, badBody := postJSON(t, srv.URL+"/v1/rank", RankRequest{Candidates: pool(8), Noise: "fog"})
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown noise: status %d, want 400", bad.StatusCode)
	}
	if !strings.Contains(string(badBody), "unknown noise") {
		t.Errorf("unknown noise body %q does not name the failure", badBody)
	}
}

func TestHTTPHealthz(t *testing.T) {
	srv := newTestServer(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
}

func TestHTTPBadRequests(t *testing.T) {
	srv := newTestServer(t)
	// Malformed JSON → 400.
	resp, err := http.Post(srv.URL+"/v1/rank", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d, want 400", resp.StatusCode)
	}
	// Validation failure → 400 with a JSON error body.
	resp2, body := postJSON(t, srv.URL+"/v1/rank", RankRequest{})
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("empty candidates: status %d, want 400", resp2.StatusCode)
	}
	var e map[string]string
	if err := json.Unmarshal(body, &e); err != nil || e["error"] == "" {
		t.Errorf("error body %q lacks an error field", body)
	}
	// Wrong method → 405.
	resp3, err := http.Get(srv.URL + "/v1/rank")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/rank: status %d, want 405", resp3.StatusCode)
	}
	// Unknown route → 404.
	resp4, err := http.Get(srv.URL + "/v2/rank")
	if err != nil {
		t.Fatal(err)
	}
	resp4.Body.Close()
	if resp4.StatusCode != http.StatusNotFound {
		t.Errorf("GET /v2/rank: status %d, want 404", resp4.StatusCode)
	}
}
