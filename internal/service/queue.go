package service

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// ErrSaturated tags failures caused by the server being at capacity:
// the admission queue is full, or an admitted request exhausted its
// queue-wait budget before a worker slot freed. Transports should map
// it to their "back off and retry" status (HTTP 429 with Retry-After).
// Saturation is detected without blocking, so clients learn to back off
// in O(1) instead of queueing indefinitely.
var ErrSaturated = errors.New("server saturated")

// ErrDraining tags requests rejected because the service is shutting
// down: readiness has been withdrawn and no new work is admitted.
// Transports should map it to their "service unavailable" status (503).
var ErrDraining = errors.New("service draining")

// queue is the admission/scheduling layer: a bounded admission gate in
// front of a bounded execution-slot pool.
//
//   - slots bound execution: at most Workers goroutines sample at any
//     moment, shared by single requests, batch entries, and async job
//     items.
//   - gate bounds the number of requests in the system (executing or
//     waiting): beyond Workers+Depth, Admit fails fast with
//     ErrSaturated instead of queueing — the explicit replacement for
//     the old unbounded-blocking semaphore.
//   - wait bounds how long an admitted synchronous request may sit in
//     the queue before its first slot; past it the request fails with
//     ErrSaturated rather than riding out arbitrary backlog. Async job
//     items pass bounded=false and wait patiently — absorbing backlog
//     is what jobs are for.
type queue struct {
	slots chan struct{} // execution slots, cap = Workers
	gate  chan struct{} // admission tickets, cap = Workers + Depth
	wait  time.Duration // queue-wait budget for bounded waiters

	admitted atomic.Int64 // tickets currently held
	inflight atomic.Int64 // slots currently held
	waiting  atomic.Int64 // goroutines blocked for their first slot
	rejected atomic.Int64 // cumulative ErrSaturated rejections
}

func newQueue(workers, depth int, wait time.Duration) *queue {
	return &queue{
		slots: make(chan struct{}, workers),
		gate:  make(chan struct{}, workers+depth),
		wait:  wait,
	}
}

// Admit reserves an admission ticket without blocking. A full gate —
// every execution slot busy and every queue position taken — returns
// ErrSaturated immediately. Pair with Done.
func (q *queue) Admit() error {
	select {
	case q.gate <- struct{}{}:
		q.admitted.Add(1)
		return nil
	default:
		q.rejected.Add(1)
		return ErrSaturated
	}
}

// Done returns the admission ticket taken by Admit.
func (q *queue) Done() {
	<-q.gate
	q.admitted.Add(-1)
}

// WaitSlot blocks for one execution slot. Bounded waiters additionally
// race the queue-wait budget and fail with ErrSaturated when it passes
// first; unbounded waiters (async job items) wait until the slot frees
// or ctx is cancelled. Pair with ReleaseSlots(1).
func (q *queue) WaitSlot(ctx context.Context, bounded bool) error {
	select {
	case q.slots <- struct{}{}:
		q.inflight.Add(1)
		return nil
	default:
	}
	q.waiting.Add(1)
	defer q.waiting.Add(-1)
	if !bounded {
		select {
		case q.slots <- struct{}{}:
			q.inflight.Add(1)
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	timer := time.NewTimer(q.wait)
	defer timer.Stop()
	select {
	case q.slots <- struct{}{}:
		q.inflight.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		q.rejected.Add(1)
		return ErrSaturated
	}
}

// TryExtra opportunistically grabs up to max additional execution slots
// without blocking — the best-of-m fan-out takes free capacity, never
// queues for it. Returns the number taken; release with ReleaseSlots.
func (q *queue) TryExtra(max int) int {
	n := 0
	for n < max {
		select {
		case q.slots <- struct{}{}:
			n++
			q.inflight.Add(1)
		default:
			return n
		}
	}
	return n
}

// ReleaseSlots frees n execution slots.
func (q *queue) ReleaseSlots(n int) {
	for i := 0; i < n; i++ {
		<-q.slots
	}
	q.inflight.Add(int64(-n))
}

// RetryAfter is the back-off hint served with saturation rejections:
// the queue-wait budget rounded up to whole seconds (at least 1s).
func (q *queue) RetryAfter() time.Duration {
	d := q.wait.Round(time.Second)
	if d < q.wait {
		d += time.Second
	}
	if d < time.Second {
		d = time.Second
	}
	return d
}

// gauges snapshots the queue for the metrics endpoint.
func (q *queue) gauges() (admitted, inflight, waiting, rejected int64) {
	return q.admitted.Load(), q.inflight.Load(), q.waiting.Load(), q.rejected.Load()
}
