package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"time"

	"repro/internal/jobstore"
)

// ErrNotFound tags lookups of job IDs the store does not hold — never
// submitted, already deleted, or evicted after their TTL. Transports
// should map it to their not-found status.
var ErrNotFound = errors.New("not found")

// ErrConflict tags requests that name a real resource in a state the
// operation does not apply to — deleting an already-finished job.
// Transports should map it to their conflict status (HTTP 409).
var ErrConflict = errors.New("conflict")

// Job states on the wire. A job is terminal in JobStateDone or
// JobStateCancelled; only JobStateDone carries items. The wire strings
// are the jobstore states verbatim, so stored records need no
// translation layer.
const (
	JobStatePending   = string(jobstore.StatePending)
	JobStateRunning   = string(jobstore.StateRunning)
	JobStateDone      = string(jobstore.StateDone)
	JobStateCancelled = string(jobstore.StateCancelled)
)

// SubmitJob accepts a batch for asynchronous ranking and returns its
// job ID immediately; per-item workers drain through the same admission
// queue as synchronous traffic, so soak-scale batches no longer hold a
// connection open. Poll with JobStatus, list with ListJobs, fetch items
// once the state is "done", cancel with CancelJob — or set WebhookURL
// on the batch and the service POSTs a completion event instead of
// making the client poll. A full job store fails with ErrSaturated; a
// draining service rejects new jobs with ErrDraining.
//
// The batch payload is persisted with the job: on a durable store a
// restarted process replays it, re-enqueues the job, and re-runs only
// the items whose results are missing (see ResumeJobs).
func (s *Service) SubmitJob(batch *BatchRequest) (*JobSubmitResponse, error) {
	if err := s.validateBatch(batch); err != nil {
		return nil, err
	}
	if err := validateWebhookURL(batch.WebhookURL); err != nil {
		return nil, err
	}
	// The stored payload is the resume contract: everything a restart
	// needs to re-run the job bit-identically (per-item seeds included).
	payload, err := json.Marshal(batch)
	if err != nil {
		return nil, invalidf("unencodable batch: %v", err)
	}
	job := &jobstore.Job{
		Total:      len(batch.Requests),
		WebhookURL: batch.WebhookURL,
		Request:    payload,
	}
	ctx, cancel := context.WithCancel(s.jobsCtx)
	// The draining check and the jobsWG registration are one critical
	// section against BeginDrain (see drainMu): a submission in the
	// drain window is either refused or fully registered before
	// DrainJobs can start waiting. The MaxJobs check rides in the same
	// section, so concurrent submissions cannot overshoot the bound.
	s.drainMu.Lock()
	if s.draining.Load() {
		s.drainMu.Unlock()
		cancel()
		return nil, ErrDraining
	}
	if s.store.Len() >= s.cfg.MaxJobs {
		s.drainMu.Unlock()
		cancel()
		return nil, fmt.Errorf("%w: job store is full", ErrSaturated)
	}
	if err := s.store.Create(job); err != nil {
		s.drainMu.Unlock()
		cancel()
		return nil, fmt.Errorf("persisting job: %w", err)
	}
	s.setRunning(job.ID, cancel)
	s.jobsWG.Add(1)
	s.drainMu.Unlock()
	go s.runJob(ctx, job.ID, batch.Requests, nil)
	return &JobSubmitResponse{
		ID:        job.ID,
		Total:     job.Total,
		StatusURL: "/v1/jobs/" + job.ID,
	}, nil
}

// validateWebhookURL accepts an empty URL (no subscription) or an
// absolute http/https URL.
func validateWebhookURL(raw string) error {
	if raw == "" {
		return nil
	}
	u, err := url.Parse(raw)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return invalidf("webhook_url %q is not an absolute http(s) URL", raw)
	}
	return nil
}

// ResumeJobs claims every unfinished job the store holds and re-enqueues
// it through the admission queue, returning how many it resumed. Call it
// once, after New and before serving traffic, when the store is durable:
// jobs interrupted by a crash or drained past the grace period pick up
// where they stopped — completed items are kept, only the missing draws
// re-run, and the per-item request seeds make the re-run bit-identical
// to the run that was interrupted. It also re-arms the completion-event
// deliveries of finished jobs whose webhook never got through
// (at-least-once).
func (s *Service) ResumeJobs() int {
	resumed := 0
	page := s.store.List(jobstore.ListQuery{})
	for _, j := range page.Jobs {
		if j.State.Terminal() {
			if j.WebhookURL != "" && !j.WebhookSent {
				s.enqueueWebhook(j.ID)
			}
			continue
		}
		claimed, ok := s.store.Claim(j.ID)
		if !ok {
			continue
		}
		var batch BatchRequest
		if err := json.Unmarshal(claimed.Request, &batch); err != nil || len(batch.Requests) != claimed.Total {
			// The payload no longer matches the record (foreign tampering
			// or a wire-format break). Refusing loudly beats re-running
			// the wrong work: the job turns cancelled, never silently lost.
			s.store.SetState(j.ID, jobstore.StateCancelled)
			continue
		}
		ctx, cancel := context.WithCancel(s.jobsCtx)
		s.drainMu.Lock()
		if s.draining.Load() {
			s.drainMu.Unlock()
			cancel()
			s.store.SetState(j.ID, jobstore.StatePending)
			break
		}
		s.setRunning(j.ID, cancel)
		s.jobsWG.Add(1)
		s.drainMu.Unlock()
		go s.runJob(ctx, j.ID, batch.Requests, claimed.Items)
		resumed++
	}
	s.recovered.Add(int64(resumed))
	return resumed
}

// runJob is the per-job supervisor: it drives the batch through
// runBatch (at most Workers items in flight, each item taking one
// execution slot with an unbounded, cancellable wait) and persists each
// item's result as it completes. prior carries the already-stored item
// results of a resumed job; those indices are skipped, which is what
// makes resume re-run only the missing draws.
//
// Exit paths: a completed job turns done (fsync'd, compacted) and fires
// its webhook; a cancelled context hands the job back to the store as
// pending — the drain path persists in-flight progress instead of
// discarding it, and a job deleted by CancelJob is already gone, so the
// hand-back is a no-op.
func (s *Service) runJob(ctx context.Context, id string, reqs []RankRequest, prior []json.RawMessage) {
	defer s.jobsWG.Done()
	defer s.clearRunning(id)
	s.store.SetState(id, jobstore.StateRunning)
	// Non-nil even when empty: a resumed job whose items all completed
	// before the crash must run nothing, not everything.
	idxs := make([]int, 0, len(reqs))
	for i := range reqs {
		if i < len(prior) && prior[i] != nil {
			continue
		}
		idxs = append(idxs, i)
	}
	s.runBatch(ctx, reqs, idxs, func(i int, item BatchItem) {
		if item.Error != "" && ctx.Err() != nil {
			// A cancelled context fails every not-yet-ranked entry with a
			// cancellation error. Persisting those would bake the artifact
			// into the record — the resume would skip the filled slot and
			// the "completed" job would carry "context canceled" items.
			// Leave the slot empty instead: the resume re-runs it, and a
			// real failure that raced the cancel reproduces automatically
			// (item errors are deterministic given the request).
			return
		}
		raw, err := json.Marshal(item)
		if err != nil {
			raw, _ = json.Marshal(BatchItem{Error: "unencodable item: " + err.Error()})
		}
		s.store.PutItem(id, i, raw, item.Error != "")
		s.itemsDone.Add(1)
	})
	if ctx.Err() != nil {
		s.store.SetState(id, jobstore.StatePending)
		return
	}
	s.store.SetState(id, jobstore.StateDone)
	s.enqueueWebhook(id)
}

// JobStatus reports a job's state and progress; once the job is done
// the response carries the per-item results, in request order.
func (s *Service) JobStatus(id string) (*JobStatusResponse, error) {
	j, ok := s.store.Get(id)
	if !ok {
		return nil, fmt.Errorf("%w: job %q", ErrNotFound, id)
	}
	resp := &JobStatusResponse{
		ID:        j.ID,
		State:     string(j.State),
		Total:     j.Total,
		Completed: j.Completed,
		Failed:    j.Failed,
	}
	if j.State == jobstore.StateDone {
		resp.Items = make([]BatchItem, len(j.Items))
		for i, raw := range j.Items {
			if raw != nil {
				_ = json.Unmarshal(raw, &resp.Items[i])
			}
		}
	}
	return resp, nil
}

// ListJobs serves one page of the job listing, oldest first, optionally
// filtered by state, resuming from an opaque cursor. Limits are clamped
// to maxListLimit; an unknown state name is an ErrInvalid.
func (s *Service) ListJobs(states []string, after string, limit int) (*JobListResponse, error) {
	q := jobstore.ListQuery{After: after, Limit: limit}
	for _, raw := range states {
		st := jobstore.State(raw)
		switch st {
		case jobstore.StatePending, jobstore.StateRunning, jobstore.StateDone, jobstore.StateCancelled:
			q.States = append(q.States, st)
		default:
			return nil, invalidf("unknown job state %q", raw)
		}
	}
	if q.Limit <= 0 || q.Limit > maxListLimit {
		q.Limit = maxListLimit
	}
	page := s.store.List(q)
	resp := &JobListResponse{
		Jobs:       make([]JobSummary, len(page.Jobs)),
		NextCursor: page.NextCursor,
	}
	for i, j := range page.Jobs {
		resp.Jobs[i] = JobSummary{
			ID:          j.ID,
			State:       string(j.State),
			Total:       j.Total,
			Completed:   j.Completed,
			Failed:      j.Failed,
			Created:     j.Created,
			Finished:    j.Finished,
			StatusURL:   "/v1/jobs/" + j.ID,
			WebhookURL:  j.WebhookURL,
			WebhookSent: j.WebhookSent,
		}
	}
	return resp, nil
}

// maxListLimit caps (and defaults) the page size of ListJobs.
const maxListLimit = 100

// CancelJob cancels an unfinished job (its in-flight items abort
// between draws, its queued items never start) and removes it from the
// store, WAL files included. A job that already finished is not
// cancellable: deleting it would race the TTL sweep and erase a result
// a webhook or another poller may still be about to read, so the call
// fails with ErrConflict and eviction stays the sweeper's job.
func (s *Service) CancelJob(id string) error {
	j, ok := s.store.Get(id)
	if !ok {
		return fmt.Errorf("%w: job %q", ErrNotFound, id)
	}
	if j.State.Terminal() {
		return fmt.Errorf("%w: job %q is already %s", ErrConflict, id, j.State)
	}
	// Remove first, cancel second: the supervisor's hand-back-as-pending
	// path then finds no record and the job stays deleted.
	if _, ok := s.store.Remove(id); !ok {
		return fmt.Errorf("%w: job %q", ErrNotFound, id)
	}
	s.cancelRunning(id)
	return nil
}

// setRunning registers the cancel handle of a live job supervisor.
func (s *Service) setRunning(id string, cancel context.CancelFunc) {
	s.runningMu.Lock()
	defer s.runningMu.Unlock()
	s.running[id] = cancel
}

// clearRunning drops (and fires, as cleanup) a supervisor's handle.
func (s *Service) clearRunning(id string) {
	s.runningMu.Lock()
	cancel := s.running[id]
	delete(s.running, id)
	s.runningMu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// cancelRunning aborts a live supervisor, if the job has one.
func (s *Service) cancelRunning(id string) {
	s.runningMu.Lock()
	cancel := s.running[id]
	s.runningMu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// sweepLoop evicts expired finished jobs on a fixed cadence for the
// life of the service. Eviction used to be lazy — piggybacked on store
// accesses — which left expired jobs inflating the /v1/metrics gauges
// on idle servers; the ticker makes TTL an upper bound on their
// lifetime regardless of traffic.
func (s *Service) sweepLoop() {
	defer s.bgWG.Done()
	t := time.NewTicker(s.cfg.SweepEvery)
	defer t.Stop()
	for {
		select {
		case <-s.jobsCtx.Done():
			return
		case now := <-t.C:
			s.store.Sweep(now, s.cfg.JobTTL)
		}
	}
}

// enqueueWebhook starts the completion-event delivery of a finished
// job, if it registered a subscription that has not been delivered.
func (s *Service) enqueueWebhook(id string) {
	j, ok := s.store.Get(id)
	if !ok || j.WebhookURL == "" || j.WebhookSent {
		return
	}
	event, err := json.Marshal(&JobEvent{
		ID:        j.ID,
		State:     string(j.State),
		Total:     j.Total,
		Completed: j.Completed,
		Failed:    j.Failed,
		StatusURL: "/v1/jobs/" + j.ID,
	})
	if err != nil {
		return
	}
	s.bgWG.Add(1)
	go s.deliverWebhook(j.ID, j.WebhookURL, event)
}

// deliverWebhook POSTs the completion event until it lands or the
// attempt budget runs out, backing off exponentially between attempts.
// Success is durably marked on the job, so the delivery happens
// at-least-once across restarts: a crash (or shutdown) between the
// receiver's 200 and the mark re-delivers on the next start, and an
// exhausted budget leaves the event unsent for the next start to retry.
func (s *Service) deliverWebhook(id, rawURL string, event []byte) {
	defer s.bgWG.Done()
	backoff := s.cfg.WebhookBackoff
	for attempt := 1; attempt <= s.cfg.WebhookAttempts; attempt++ {
		if s.jobsCtx.Err() != nil {
			return
		}
		if attempt > 1 {
			s.webhookRetries.Add(1)
			select {
			case <-s.jobsCtx.Done():
				return
			case <-time.After(backoff):
			}
			backoff *= 2
		}
		s.webhookAttempts.Add(1)
		if s.postWebhook(rawURL, event) {
			s.store.MarkWebhookSent(id)
			s.webhookDelivered.Add(1)
			return
		}
	}
	s.webhookExhausted.Add(1)
}

// postWebhook performs one delivery attempt; any 2xx is a success.
func (s *Service) postWebhook(rawURL string, event []byte) bool {
	ctx, cancel := context.WithTimeout(s.jobsCtx, s.cfg.WebhookTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rawURL, bytes.NewReader(event))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := s.webhookClient.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode >= 200 && resp.StatusCode < 300
}

// jobGauges snapshots the job layer for the metrics endpoint.
func (s *Service) jobGauges() JobMetrics {
	st := s.store.Stats()
	return JobMetrics{
		MaxJobs:   s.cfg.MaxJobs,
		Stored:    st.Stored,
		Pending:   st.Pending,
		Running:   st.Running,
		Done:      st.Done,
		Cancelled: st.Cancelled,
		Submitted: st.Submitted,
		Evicted:   st.Evicted,
		ItemsDone: s.itemsDone.Load(),
		Recovered: s.recovered.Load(),
		Webhooks: WebhookMetrics{
			Attempts:  s.webhookAttempts.Load(),
			Delivered: s.webhookDelivered.Load(),
			Retries:   s.webhookRetries.Load(),
			Exhausted: s.webhookExhausted.Load(),
		},
	}
}
