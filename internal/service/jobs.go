package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrNotFound tags lookups of job IDs the store does not hold — never
// submitted, already deleted, or evicted after their TTL. Transports
// should map it to their not-found status.
var ErrNotFound = errors.New("not found")

// Job states on the wire. A job is terminal in JobStateDone or
// JobStateCancelled; only JobStateDone carries items.
const (
	JobStatePending   = "pending"
	JobStateRunning   = "running"
	JobStateDone      = "done"
	JobStateCancelled = "cancelled"
)

// job is one asynchronous batch: submitted, supervised, and drained
// item by item through the same admission queue as synchronous traffic.
type job struct {
	id     string
	total  int
	cancel context.CancelFunc

	mu        sync.Mutex
	state     string
	finished  time.Time
	completed int
	failed    int
	items     []BatchItem // set once, when the job reaches JobStateDone
}

func (j *job) progress(item BatchItem) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.completed++
	if item.Error != "" {
		j.failed++
	}
}

// finish moves the job to its terminal state. A cancelled job keeps no
// items: cancellation aborted an unknown subset mid-flight, and serving
// a half-ranked batch as if it were a result would be worse than
// serving nothing.
func (j *job) finish(items []BatchItem, cancelled bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.finished = time.Now()
	if cancelled {
		j.state = JobStateCancelled
		return
	}
	j.state = JobStateDone
	j.items = items
}

func (j *job) status() *JobStatusResponse {
	j.mu.Lock()
	defer j.mu.Unlock()
	resp := &JobStatusResponse{
		ID:        j.id,
		State:     j.state,
		Total:     j.total,
		Completed: j.completed,
		Failed:    j.failed,
	}
	if j.state == JobStateDone {
		resp.Items = j.items
	}
	return resp
}

// jobStore holds submitted jobs, bounded by max, with lazy TTL eviction
// of terminal jobs on every access.
type jobStore struct {
	max int
	ttl time.Duration

	mu      sync.Mutex
	jobs    map[string]*job
	seq     uint64
	evicted int64
	// itemsDone is atomic, not mu-guarded: it is incremented on the
	// per-item hot path of every running job, which must not contend
	// with store accesses (each of which sweeps the whole store).
	itemsDone atomic.Int64
}

func newJobStore(max int, ttl time.Duration) *jobStore {
	return &jobStore{max: max, ttl: ttl, jobs: make(map[string]*job)}
}

// sweep drops terminal jobs whose TTL has passed. Callers hold s.mu.
func (st *jobStore) sweep(now time.Time) {
	for id, j := range st.jobs {
		j.mu.Lock()
		expired := (j.state == JobStateDone || j.state == JobStateCancelled) &&
			now.Sub(j.finished) >= st.ttl
		j.mu.Unlock()
		if expired {
			delete(st.jobs, id)
			st.evicted++
		}
	}
}

func (st *jobStore) add(j *job) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.sweep(time.Now())
	if len(st.jobs) >= st.max {
		return ErrSaturated
	}
	st.seq++
	j.id = fmt.Sprintf("job-%06d", st.seq)
	st.jobs[j.id] = j
	return nil
}

func (st *jobStore) get(id string) (*job, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.sweep(time.Now())
	j, ok := st.jobs[id]
	return j, ok
}

func (st *jobStore) remove(id string) (*job, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	if ok {
		delete(st.jobs, id)
	}
	st.sweep(time.Now())
	return j, ok
}

// SubmitJob accepts a batch for asynchronous ranking and returns its
// job ID immediately; per-item workers drain through the same admission
// queue as synchronous traffic, so soak-scale batches no longer hold a
// connection open. Poll with JobStatus, fetch items once the state is
// "done", cancel with CancelJob. A full job store fails with
// ErrSaturated; a draining service rejects new jobs with ErrDraining.
func (s *Service) SubmitJob(batch *BatchRequest) (*JobSubmitResponse, error) {
	if err := s.validateBatch(batch); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(s.jobsCtx)
	j := &job{
		total:  len(batch.Requests),
		cancel: cancel,
		state:  JobStatePending,
	}
	// The draining check and the jobsWG registration are one critical
	// section against BeginDrain (see drainMu): a submission in the
	// drain window is either refused or fully registered before
	// DrainJobs can start waiting.
	s.drainMu.Lock()
	if s.draining.Load() {
		s.drainMu.Unlock()
		cancel()
		return nil, ErrDraining
	}
	if err := s.jobs.add(j); err != nil {
		s.drainMu.Unlock()
		cancel()
		return nil, err
	}
	s.jobsWG.Add(1)
	s.drainMu.Unlock()
	go s.runJob(ctx, j, batch.Requests)
	return &JobSubmitResponse{
		ID:        j.id,
		Total:     j.total,
		StatusURL: "/v1/jobs/" + j.id,
	}, nil
}

// runJob is the per-job supervisor: it drives the batch through
// runBatch (at most Workers items in flight, each item taking one
// execution slot with an unbounded, cancellable wait) and records
// per-item progress as items complete.
func (s *Service) runJob(ctx context.Context, j *job, reqs []RankRequest) {
	defer s.jobsWG.Done()
	defer j.cancel()
	j.mu.Lock()
	j.state = JobStateRunning
	j.mu.Unlock()
	items := s.runBatch(ctx, reqs, func(_ int, item BatchItem) {
		j.progress(item)
		s.jobs.itemsDone.Add(1)
	})
	j.finish(items, ctx.Err() != nil)
}

// JobStatus reports a job's state and progress; once the job is done
// the response carries the per-item results, in request order.
func (s *Service) JobStatus(id string) (*JobStatusResponse, error) {
	j, ok := s.jobs.get(id)
	if !ok {
		return nil, fmt.Errorf("%w: job %q", ErrNotFound, id)
	}
	return j.status(), nil
}

// CancelJob cancels a running job (its in-flight items abort between
// draws, its queued items never start) and removes it from the store.
// Deleting a finished job just removes it.
func (s *Service) CancelJob(id string) error {
	j, ok := s.jobs.remove(id)
	if !ok {
		return fmt.Errorf("%w: job %q", ErrNotFound, id)
	}
	j.cancel()
	return nil
}

// jobGauges snapshots the job layer for the metrics endpoint.
func (s *Service) jobGauges() JobMetrics {
	st := s.jobs
	st.mu.Lock()
	defer st.mu.Unlock()
	st.sweep(time.Now())
	m := JobMetrics{
		MaxJobs:   st.max,
		Stored:    len(st.jobs),
		Evicted:   st.evicted,
		ItemsDone: st.itemsDone.Load(),
		Submitted: int64(st.seq),
	}
	for _, j := range st.jobs {
		j.mu.Lock()
		switch j.state {
		case JobStatePending:
			m.Pending++
		case JobStateRunning:
			m.Running++
		case JobStateDone:
			m.Done++
		case JobStateCancelled:
			m.Cancelled++
		}
		j.mu.Unlock()
	}
	return m
}
