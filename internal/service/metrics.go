package service

import (
	"sort"
	"sync/atomic"
	"time"
)

// routeStats is the per-route transport counter set maintained by the
// metrics middleware. Latency is accumulated in microseconds so the
// counters stay integral and atomic.
type routeStats struct {
	requests  atomic.Int64
	inflight  atomic.Int64
	errors4xx atomic.Int64
	errors5xx atomic.Int64
	latUsSum  atomic.Int64
	latUsMax  atomic.Int64
}

func (rs *routeStats) observe(status int, elapsed time.Duration) {
	switch {
	case status >= 500:
		rs.errors5xx.Add(1)
	case status >= 400:
		rs.errors4xx.Add(1)
	}
	us := elapsed.Microseconds()
	rs.latUsSum.Add(us)
	for {
		cur := rs.latUsMax.Load()
		if us <= cur || rs.latUsMax.CompareAndSwap(cur, us) {
			return
		}
	}
}

// metrics holds the transport layer's counters: one routeStats per
// registered route pattern, plus the panic counter maintained by the
// recovery middleware. Routes register at handler construction, so
// reads are lock-free.
type metrics struct {
	routes map[string]*routeStats
	panics atomic.Int64
}

func newMetrics() *metrics {
	return &metrics{routes: make(map[string]*routeStats)}
}

// route returns (registering if needed) the stats of a route pattern.
// Registration happens only during NewHandler, before serving starts.
func (m *metrics) route(pattern string) *routeStats {
	rs, ok := m.routes[pattern]
	if !ok {
		rs = &routeStats{}
		m.routes[pattern] = rs
	}
	return rs
}

// Metrics assembles the full observability snapshot served by
// GET /v1/metrics: per-route transport counters, admission-queue
// gauges, job-layer gauges, and engine counters aggregated over the
// currently cached rankers (evicted engines take their counts with
// them; the engine section describes the live cache, not all of
// history).
func (s *Service) Metrics() *MetricsResponse {
	resp := &MetricsResponse{
		Queue:  s.queueGauges(),
		Jobs:   s.jobGauges(),
		Panics: s.stats.panics.Load(),
	}
	names := make([]string, 0, len(s.stats.routes))
	for name := range s.stats.routes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rs := s.stats.routes[name]
		resp.Routes = append(resp.Routes, RouteMetrics{
			Route:        name,
			Requests:     rs.requests.Load(),
			InFlight:     rs.inflight.Load(),
			Errors4xx:    rs.errors4xx.Load(),
			Errors5xx:    rs.errors5xx.Load(),
			LatencyMsSum: float64(rs.latUsSum.Load()) / 1000,
			LatencyMsMax: float64(rs.latUsMax.Load()) / 1000,
		})
	}
	s.mu.Lock()
	resp.Engine.RankersCached = len(s.rankers)
	for _, r := range s.rankers {
		st := r.Stats()
		resp.Engine.Requests += st.Requests
		resp.Engine.Draws += st.Draws
		resp.Engine.DrawsFull += st.DrawsFull
		resp.Engine.DrawsTruncated += st.DrawsTruncated
		for noise, c := range st.DrawsTruncatedByNoise {
			if resp.Engine.DrawsTruncatedByNoise == nil {
				resp.Engine.DrawsTruncatedByNoise = make(map[string]int64)
			}
			resp.Engine.DrawsTruncatedByNoise[noise] += c
		}
		resp.Engine.PoolGets += int64(st.PoolGets)
		resp.Engine.PoolMisses += int64(st.PoolMisses)
		resp.Engine.TableHits += st.TableHits
		resp.Engine.TableMisses += st.TableMisses
	}
	s.mu.Unlock()
	return resp
}

// Readyz assembles the readiness snapshot served by GET /readyz and
// reports whether the service is ready (not draining). The snapshot is
// a few atomic loads — cheap enough for aggressive probe cadences.
func (s *Service) Readyz() (*ReadyzResponse, bool) {
	admitted, inflight, waiting, _ := s.queue.gauges()
	resp := &ReadyzResponse{
		Status: "ready",
		Queue: ReadyzQueue{
			Workers:  s.cfg.Workers,
			Depth:    s.cfg.QueueDepth,
			Admitted: admitted,
			InFlight: inflight,
			Queued:   waiting,
		},
		JobsRunning: s.jobGauges().Running,
	}
	if s.Draining() {
		resp.Status = "draining"
		return resp, false
	}
	return resp, true
}

func (s *Service) queueGauges() QueueMetrics {
	admitted, inflight, waiting, rejected := s.queue.gauges()
	return QueueMetrics{
		Workers:     s.cfg.Workers,
		Depth:       s.cfg.QueueDepth,
		QueueWaitMs: float64(s.cfg.QueueWait) / float64(time.Millisecond),
		Admitted:    admitted,
		InFlight:    inflight,
		Queued:      waiting,
		Rejected:    rejected,
	}
}
