package service

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

func pool(n int) []Candidate {
	groups := []string{"a", "b"}
	out := make([]Candidate, n)
	for i := range out {
		out[i] = Candidate{
			ID:    fmt.Sprintf("c%03d", i),
			Score: float64(n - i),
			Group: groups[i%len(groups)],
		}
	}
	return out
}

func ptr[T any](v T) *T { return &v }

func TestValidationErrors(t *testing.T) {
	s := New(Config{Workers: 2})
	cases := []struct {
		name string
		req  RankRequest
		want string
	}{
		{"empty candidates", RankRequest{}, "empty candidate set"},
		{"empty id", RankRequest{Candidates: []Candidate{{ID: "", Score: 1, Group: "a"}}}, "empty id"},
		{"duplicate ids", RankRequest{Candidates: []Candidate{
			{ID: "x", Score: 2, Group: "a"}, {ID: "x", Score: 1, Group: "b"},
		}}, `duplicate candidate id "x"`},
		{"zero theta", RankRequest{Candidates: pool(4), Theta: ptr(0.0)}, "theta = 0"},
		{"negative theta", RankRequest{Candidates: pool(4), Theta: ptr(-1.5)}, "theta = -1.5"},
		{"zero samples", RankRequest{Candidates: pool(4), Samples: ptr(0)}, "samples = 0"},
		{"negative tolerance", RankRequest{Candidates: pool(4), Tolerance: ptr(-0.1)}, "tolerance = -0.1"},
		{"negative weak_k", RankRequest{Candidates: pool(4), WeakK: -2}, "weak_k = -2"},
		{"unknown algorithm", RankRequest{Candidates: pool(4), Algorithm: "quicksort"}, `unknown algorithm "quicksort"`},
		{"unknown central", RankRequest{Candidates: pool(4), Central: "median"}, `unknown central ranking "median"`},
		{"unknown criterion", RankRequest{Candidates: pool(4), Criterion: "vibes"}, `unknown criterion "vibes"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := s.Rank(context.Background(), &tc.req)
			if err == nil {
				t.Fatal("accepted invalid request")
			}
			if !errors.Is(err, ErrInvalid) {
				t.Fatalf("error %v is not ErrInvalid", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestRankLimits(t *testing.T) {
	s := New(Config{Workers: 2, MaxCandidates: 10, MaxBatch: 2})
	if _, err := s.Rank(context.Background(), &RankRequest{Candidates: pool(11)}); !errors.Is(err, ErrInvalid) {
		t.Errorf("oversized pool: got %v, want ErrInvalid", err)
	}
	batch := &BatchRequest{Requests: []RankRequest{
		{Candidates: pool(4)}, {Candidates: pool(4)}, {Candidates: pool(4)},
	}}
	if _, err := s.RankBatch(context.Background(), batch); !errors.Is(err, ErrInvalid) {
		t.Errorf("oversized batch: got %v, want ErrInvalid", err)
	}
	if _, err := s.RankBatch(context.Background(), &BatchRequest{}); !errors.Is(err, ErrInvalid) {
		t.Errorf("empty batch: got %v, want ErrInvalid", err)
	}
}

func TestRankDefaultsAndShape(t *testing.T) {
	s := New(Config{Workers: 4})
	req := &RankRequest{Candidates: pool(12), Seed: 5}
	resp, err := s.Rank(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Algorithm != "mallows-best" {
		t.Errorf("default algorithm reported as %q", resp.Algorithm)
	}
	if len(resp.Ranking) != 12 {
		t.Fatalf("ranking has %d entries, want 12", len(resp.Ranking))
	}
	seen := map[string]bool{}
	for i, rc := range resp.Ranking {
		if rc.Rank != i+1 {
			t.Errorf("entry %d has rank %d", i, rc.Rank)
		}
		if seen[rc.ID] {
			t.Errorf("candidate %q ranked twice", rc.ID)
		}
		seen[rc.ID] = true
	}
	if resp.NDCG <= 0 || resp.NDCG > 1+1e-9 {
		t.Errorf("NDCG = %v", resp.NDCG)
	}
}

// Equal seeds must yield equal rankings: across repeated calls, across
// worker counts, and across single-vs-batch serving.
func TestEqualSeedDeterminism(t *testing.T) {
	req := func(seed int64) RankRequest {
		return RankRequest{Candidates: pool(40), Samples: ptr(12), Seed: seed}
	}
	base, err := New(Config{Workers: 1}).Rank(context.Background(), ptrReq(req(3)))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		s := New(Config{Workers: workers})
		got, err := s.Rank(context.Background(), ptrReq(req(3)))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Ranking, base.Ranking) {
			t.Fatalf("workers=%d changed the ranking", workers)
		}
	}
	other, err := New(Config{Workers: 2}).Rank(context.Background(), ptrReq(req(4)))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(other.Ranking, base.Ranking) {
		t.Error("different seeds produced identical rankings (suspicious at n=40, m=12)")
	}
}

func ptrReq(r RankRequest) *RankRequest { return &r }

func TestBatchMatchesSingleAndIsDeterministic(t *testing.T) {
	s := New(Config{Workers: 4})
	batch := &BatchRequest{}
	for seed := int64(0); seed < 8; seed++ {
		batch.Requests = append(batch.Requests, RankRequest{
			Candidates: pool(25), Samples: ptr(8), Seed: seed,
		})
	}
	first, err := s.RankBatch(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Items) != 8 {
		t.Fatalf("%d items, want 8", len(first.Items))
	}
	// Re-running the identical batch must reproduce it exactly.
	second, err := s.RankBatch(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("equal-seed batches diverged")
	}
	// Each entry must match the single-request path.
	for i := range batch.Requests {
		if first.Items[i].Error != "" {
			t.Fatalf("item %d failed: %s", i, first.Items[i].Error)
		}
		single, err := s.Rank(context.Background(), &batch.Requests[i])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(single.Ranking, first.Items[i].Response.Ranking) {
			t.Fatalf("item %d: batch ranking differs from single-request ranking", i)
		}
	}
}

// A bad entry fails alone; its neighbors still rank.
func TestBatchPartialFailure(t *testing.T) {
	s := New(Config{Workers: 2})
	batch := &BatchRequest{Requests: []RankRequest{
		{Candidates: pool(10), Seed: 1},
		{Candidates: nil, Seed: 2}, // invalid: empty pool
		{Candidates: pool(10), Algorithm: "nope", Seed: 3},
		{Candidates: pool(10), Seed: 4},
	}}
	resp, err := s.RankBatch(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Items[0].Error != "" || resp.Items[0].Response == nil {
		t.Errorf("item 0 should succeed: %+v", resp.Items[0])
	}
	if resp.Items[1].Error == "" {
		t.Error("item 1 should fail (empty candidates)")
	}
	if !strings.Contains(resp.Items[2].Error, "unknown algorithm") {
		t.Errorf("item 2 error = %q", resp.Items[2].Error)
	}
	if resp.Items[3].Error != "" || resp.Items[3].Response == nil {
		t.Errorf("item 3 should succeed: %+v", resp.Items[3])
	}
}

func TestRankCanceledContext(t *testing.T) {
	s := New(Config{Workers: 1})
	// Fill the only slot so acquire must block, then cancel.
	s.sem <- struct{}{}
	defer func() { <-s.sem }()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := s.Rank(ctx, &RankRequest{Candidates: pool(5)})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// Requests must not hold worker slots they cannot use: only the
// mallows-best sampling loop fans out, bounded by its draw count.
func TestParallelismBound(t *testing.T) {
	cases := []struct {
		req  RankRequest
		want int
	}{
		{RankRequest{}, 15},
		{RankRequest{Algorithm: "mallows-best", Samples: ptr(4)}, 4},
		{RankRequest{Samples: ptr(1)}, 1},
		{RankRequest{Algorithm: "score"}, 1},
		{RankRequest{Algorithm: "ilp"}, 1},
		{RankRequest{Algorithm: "mallows"}, 1},
	}
	for _, tc := range cases {
		if got := parallelism(&tc.req); got != tc.want {
			t.Errorf("parallelism(%+v) = %d, want %d", tc.req, got, tc.want)
		}
	}
}

// All algorithms are reachable through the service.
func TestAllAlgorithms(t *testing.T) {
	s := New(Config{Workers: 2})
	for _, algo := range []string{"mallows", "mallows-best", "detconstsort", "ipf", "ilp", "score"} {
		resp, err := s.Rank(context.Background(), &RankRequest{
			Candidates: pool(16), Algorithm: algo, Seed: 1,
		})
		if err != nil {
			t.Errorf("%s: %v", algo, err)
			continue
		}
		if resp.Algorithm != algo {
			t.Errorf("%s reported as %q", algo, resp.Algorithm)
		}
	}
	// grbinary requires exactly two groups, which pool provides.
	if _, err := s.Rank(context.Background(), &RankRequest{Candidates: pool(16), Algorithm: "grbinary", Seed: 1}); err != nil {
		t.Errorf("grbinary: %v", err)
	}
}
