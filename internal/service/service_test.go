package service

import (
	"context"
	"errors"
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"
)

func pool(n int) []Candidate {
	groups := []string{"a", "b"}
	out := make([]Candidate, n)
	for i := range out {
		out[i] = Candidate{
			ID:    fmt.Sprintf("c%03d", i),
			Score: float64(n - i),
			Group: groups[i%len(groups)],
		}
	}
	return out
}

func ptr[T any](v T) *T { return &v }

func TestValidationErrors(t *testing.T) {
	s := New(Config{Workers: 2})
	cases := []struct {
		name string
		req  RankRequest
		want string
	}{
		{"empty candidates", RankRequest{}, "empty candidate set"},
		{"empty id", RankRequest{Candidates: []Candidate{{ID: "", Score: 1, Group: "a"}}}, "empty id"},
		{"duplicate ids", RankRequest{Candidates: []Candidate{
			{ID: "x", Score: 2, Group: "a"}, {ID: "x", Score: 1, Group: "b"},
		}}, `duplicate candidate id "x"`},
		{"negative theta", RankRequest{Candidates: pool(4), Theta: ptr(-1.5)}, "theta = -1.5"},
		{"NaN theta", RankRequest{Candidates: pool(4), Theta: ptr(math.NaN())}, "theta = NaN"},
		{"zero samples", RankRequest{Candidates: pool(4), Samples: ptr(0)}, "samples = 0"},
		{"negative tolerance", RankRequest{Candidates: pool(4), Tolerance: ptr(-0.1)}, "tolerance = -0.1"},
		{"zero top_k", RankRequest{Candidates: pool(4), TopK: ptr(0)}, "top_k = 0"},
		{"negative weak_k", RankRequest{Candidates: pool(4), WeakK: -2}, "weak_k = -2"},
		{"negative sigma", RankRequest{Candidates: pool(4), Sigma: -1}, "sigma = -1"},
		{"NaN score", RankRequest{Candidates: []Candidate{
			{ID: "x", Score: math.NaN(), Group: "a"}, {ID: "y", Score: 1, Group: "b"},
		}}, "NaN score"},
		{"unknown algorithm", RankRequest{Candidates: pool(4), Algorithm: "quicksort"}, `unknown algorithm "quicksort"`},
		{"unknown central", RankRequest{Candidates: pool(4), Central: "median"}, `unknown central ranking "median"`},
		{"unknown criterion", RankRequest{Candidates: pool(4), Criterion: "vibes"}, `unknown criterion "vibes"`},
		{"unknown noise", RankRequest{Candidates: pool(4), Noise: "fog"}, `unknown noise "fog"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := s.Rank(context.Background(), &tc.req)
			if err == nil {
				t.Fatal("accepted invalid request")
			}
			if !errors.Is(err, ErrInvalid) {
				t.Fatalf("error %v is not ErrInvalid", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestRankLimits(t *testing.T) {
	s := New(Config{Workers: 2, MaxCandidates: 10, MaxBatch: 2})
	if _, err := s.Rank(context.Background(), &RankRequest{Candidates: pool(11)}); !errors.Is(err, ErrInvalid) {
		t.Errorf("oversized pool: got %v, want ErrInvalid", err)
	}
	batch := &BatchRequest{Requests: []RankRequest{
		{Candidates: pool(4)}, {Candidates: pool(4)}, {Candidates: pool(4)},
	}}
	if _, err := s.RankBatch(context.Background(), batch); !errors.Is(err, ErrInvalid) {
		t.Errorf("oversized batch: got %v, want ErrInvalid", err)
	}
	if _, err := s.RankBatch(context.Background(), &BatchRequest{}); !errors.Is(err, ErrInvalid) {
		t.Errorf("empty batch: got %v, want ErrInvalid", err)
	}
}

func TestRankDefaultsAndShape(t *testing.T) {
	s := New(Config{Workers: 4})
	req := &RankRequest{Candidates: pool(12), Seed: 5}
	resp, err := s.Rank(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Algorithm != "mallows-best" {
		t.Errorf("default algorithm reported as %q", resp.Algorithm)
	}
	if len(resp.Ranking) != 12 {
		t.Fatalf("ranking has %d entries, want 12", len(resp.Ranking))
	}
	seen := map[string]bool{}
	for i, rc := range resp.Ranking {
		if rc.Rank != i+1 {
			t.Errorf("entry %d has rank %d", i, rc.Rank)
		}
		if seen[rc.ID] {
			t.Errorf("candidate %q ranked twice", rc.ID)
		}
		seen[rc.ID] = true
	}
	if resp.NDCG <= 0 || resp.NDCG > 1+1e-9 {
		t.Errorf("NDCG = %v", resp.NDCG)
	}
}

// Equal seeds must yield equal rankings: across repeated calls, across
// worker counts, and across single-vs-batch serving.
func TestEqualSeedDeterminism(t *testing.T) {
	req := func(seed int64) RankRequest {
		return RankRequest{Candidates: pool(40), Samples: ptr(12), Seed: seed}
	}
	base, err := New(Config{Workers: 1}).Rank(context.Background(), ptrReq(req(3)))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		s := New(Config{Workers: workers})
		got, err := s.Rank(context.Background(), ptrReq(req(3)))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Ranking, base.Ranking) {
			t.Fatalf("workers=%d changed the ranking", workers)
		}
	}
	other, err := New(Config{Workers: 2}).Rank(context.Background(), ptrReq(req(4)))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(other.Ranking, base.Ranking) {
		t.Error("different seeds produced identical rankings (suspicious at n=40, m=12)")
	}
}

func ptrReq(r RankRequest) *RankRequest { return &r }

func TestBatchMatchesSingleAndIsDeterministic(t *testing.T) {
	s := New(Config{Workers: 4})
	batch := &BatchRequest{}
	for seed := int64(0); seed < 8; seed++ {
		batch.Requests = append(batch.Requests, RankRequest{
			Candidates: pool(25), Samples: ptr(8), Seed: seed,
		})
	}
	first, err := s.RankBatch(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Items) != 8 {
		t.Fatalf("%d items, want 8", len(first.Items))
	}
	// Re-running the identical batch must reproduce it exactly.
	second, err := s.RankBatch(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("equal-seed batches diverged")
	}
	// Each entry must match the single-request path.
	for i := range batch.Requests {
		if first.Items[i].Error != "" {
			t.Fatalf("item %d failed: %s", i, first.Items[i].Error)
		}
		single, err := s.Rank(context.Background(), &batch.Requests[i])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(single.Ranking, first.Items[i].Response.Ranking) {
			t.Fatalf("item %d: batch ranking differs from single-request ranking", i)
		}
	}
}

// A bad entry fails alone; its neighbors still rank.
func TestBatchPartialFailure(t *testing.T) {
	s := New(Config{Workers: 2})
	batch := &BatchRequest{Requests: []RankRequest{
		{Candidates: pool(10), Seed: 1},
		{Candidates: nil, Seed: 2}, // invalid: empty pool
		{Candidates: pool(10), Algorithm: "nope", Seed: 3},
		{Candidates: pool(10), Seed: 4},
	}}
	resp, err := s.RankBatch(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Items[0].Error != "" || resp.Items[0].Response == nil {
		t.Errorf("item 0 should succeed: %+v", resp.Items[0])
	}
	if resp.Items[1].Error == "" {
		t.Error("item 1 should fail (empty candidates)")
	}
	if !strings.Contains(resp.Items[2].Error, "unknown algorithm") {
		t.Errorf("item 2 error = %q", resp.Items[2].Error)
	}
	if resp.Items[3].Error != "" || resp.Items[3].Response == nil {
		t.Errorf("item 3 should succeed: %+v", resp.Items[3])
	}
}

func TestRankCanceledContext(t *testing.T) {
	s := New(Config{Workers: 1})
	// Fill the only execution slot so the slot wait must block, then
	// cancel.
	s.queue.slots <- struct{}{}
	defer func() { <-s.queue.slots }()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := s.Rank(ctx, &RankRequest{Candidates: pool(5)})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// Requests must not hold worker slots they cannot use: only the
// mallows-best sampling loop fans out, bounded by its draw count.
func TestParallelismBound(t *testing.T) {
	cases := []struct {
		req  RankRequest
		want int
	}{
		{RankRequest{}, 15},
		{RankRequest{Algorithm: "mallows-best", Samples: ptr(4)}, 4},
		{RankRequest{Samples: ptr(1)}, 1},
		{RankRequest{Algorithm: "score"}, 1},
		{RankRequest{Algorithm: "ilp"}, 1},
		{RankRequest{Algorithm: "mallows"}, 1},
		{RankRequest{Algorithm: "pl-best", Samples: ptr(6)}, 6},
		{RankRequest{Algorithm: "no-such-algorithm"}, 1},
	}
	for _, tc := range cases {
		if got := parallelism(&tc.req); got != tc.want {
			t.Errorf("parallelism(%+v) = %d, want %d", tc.req, got, tc.want)
		}
	}
}

// θ = 0 (uniform noise) and tolerance = 0 (exact proportionality) are
// real values on the wire, not "unset": the response must echo them in
// the diagnostics rather than silently substituting the defaults.
func TestExplicitZeroOverrides(t *testing.T) {
	s := New(Config{Workers: 2})
	resp, err := s.Rank(context.Background(), &RankRequest{
		Candidates: pool(12), Theta: ptr(0.0), Tolerance: ptr(0.0), Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Diagnostics.Theta != 0 {
		t.Errorf("theta = 0 resolved to %v", resp.Diagnostics.Theta)
	}
	if resp.Diagnostics.Tolerance != 0 {
		t.Errorf("tolerance = 0 resolved to %v", resp.Diagnostics.Tolerance)
	}
	// Omitted fields still take the documented defaults.
	dflt, err := s.Rank(context.Background(), &RankRequest{Candidates: pool(12), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if dflt.Diagnostics.Theta != 1 || dflt.Diagnostics.Tolerance != 0.1 {
		t.Errorf("defaults resolved to θ=%v tol=%v", dflt.Diagnostics.Theta, dflt.Diagnostics.Tolerance)
	}
}

// Requests that differ only in per-request overrides share one cached
// engine; the overrides must still take full effect per request.
func TestPerRequestOverridesShareEngine(t *testing.T) {
	s := New(Config{Workers: 2})
	thetas := []float64{0.25, 1, 4}
	for _, th := range thetas {
		resp, err := s.Rank(context.Background(), &RankRequest{
			Candidates: pool(30), Theta: ptr(th), Samples: ptr(6), Seed: 11,
		})
		if err != nil {
			t.Fatalf("theta %v: %v", th, err)
		}
		if resp.Diagnostics.Theta != th {
			t.Errorf("theta %v reported as %v", th, resp.Diagnostics.Theta)
		}
	}
	s.mu.Lock()
	n := len(s.rankers)
	s.mu.Unlock()
	if n != 1 {
		t.Errorf("%d cached engines for one base configuration, want 1", n)
	}
}

// Saturating the engine cache with junk base configurations must not
// lock later configurations out of caching: the cache stays bounded and
// keeps admitting new keys by evicting old ones.
func TestRankerCacheEvictsAtCap(t *testing.T) {
	s := New(Config{Workers: 1})
	for i := 0; i <= maxCachedRankers; i++ {
		req := RankRequest{Sigma: float64(i) * 1e-9, Algorithm: "detconstsort"}
		if _, err := s.ranker(req.key(), req.baseConfig()); err != nil {
			t.Fatal(err)
		}
	}
	s.mu.Lock()
	n := len(s.rankers)
	_, lastCached := s.rankers[rankerKey{algorithm: "detconstsort", sigma: float64(maxCachedRankers) * 1e-9}]
	s.mu.Unlock()
	if n != maxCachedRankers {
		t.Errorf("cache holds %d engines, want %d", n, maxCachedRankers)
	}
	if !lastCached {
		t.Error("key past the cap was not admitted to the cache")
	}
}

// top_k truncates the response ranking, scopes the audit (and, for the
// best-of algorithms, the selection) to the delivered prefix, and stays
// deterministic per seed. For a single-draw algorithm — no selection —
// the prefix is exactly the head of the full ranking.
func TestTopK(t *testing.T) {
	s := New(Config{Workers: 2})
	top, err := s.Rank(context.Background(), &RankRequest{Candidates: pool(20), TopK: ptr(5), Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(top.Ranking) != 5 || top.Diagnostics.TopK != 5 {
		t.Fatalf("top_k=5 returned %d entries (diag %d)", len(top.Ranking), top.Diagnostics.TopK)
	}
	again, err := s.Rank(context.Background(), &RankRequest{Candidates: pool(20), TopK: ptr(5), Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(top, again) {
		t.Error("equal top_k requests returned different responses")
	}
	full, err := s.Rank(context.Background(), &RankRequest{Candidates: pool(20), Algorithm: "mallows", Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	single, err := s.Rank(context.Background(), &RankRequest{Candidates: pool(20), Algorithm: "mallows", TopK: ptr(5), Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(single.Ranking, full.Ranking[:5]) {
		t.Error("single-draw top_k ranking is not a prefix of the full ranking")
	}
	// Oversized top_k clamps to the pool.
	big, err := s.Rank(context.Background(), &RankRequest{Candidates: pool(20), TopK: ptr(100), Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(big.Ranking) != 20 {
		t.Errorf("top_k=100 over 20 candidates returned %d entries", len(big.Ranking))
	}
}

// The diagnostics block is internally consistent and mirrors the
// top-level fields kept for older clients.
func TestDiagnosticsShape(t *testing.T) {
	s := New(Config{Workers: 2})
	resp, err := s.Rank(context.Background(), &RankRequest{
		Candidates: pool(16), Samples: ptr(7), Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	d := resp.Diagnostics
	if d.Algorithm != resp.Algorithm || d.NDCG != resp.NDCG {
		t.Errorf("diagnostics disagree with top-level fields: %+v", d)
	}
	if d.DrawsEvaluated != 7 {
		t.Errorf("draws_evaluated = %d, want 7", d.DrawsEvaluated)
	}
	if d.Seed != 2 || d.TopK != 16 || d.Central != "weak" || d.Criterion != "ndcg" {
		t.Errorf("resolved parameters wrong: %+v", d)
	}
	want := 100 * (1 - float64(d.InfeasibleIndex)/float64(d.TopK))
	if math.Abs(d.PPfair-want) > 1e-9 {
		t.Errorf("ppfair %v inconsistent with infeasible index %d", d.PPfair, d.InfeasibleIndex)
	}
	if d.CentralKendallTau < 0 {
		t.Errorf("central KT = %d", d.CentralKendallTau)
	}
}

// A cancelled context aborts every batch entry promptly and surfaces as
// a batch-level cancellation error (the HTTP layer maps it to 499), not
// as a bad request and not as a 200 full of error items.
func TestBatchCancelledContext(t *testing.T) {
	s := New(Config{Workers: 4})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	batch := &BatchRequest{}
	for seed := int64(0); seed < 6; seed++ {
		batch.Requests = append(batch.Requests, RankRequest{Candidates: pool(30), Seed: seed})
	}
	if _, err := s.RankBatch(ctx, batch); !errors.Is(err, context.Canceled) {
		t.Errorf("batch: got %v, want context.Canceled", err)
	} else if errors.Is(err, ErrInvalid) {
		t.Error("batch cancellation misclassified as ErrInvalid")
	}
	if _, err := s.Rank(ctx, &batch.Requests[0]); !errors.Is(err, context.Canceled) {
		t.Errorf("single rank: got %v, want context.Canceled", err)
	} else if errors.Is(err, ErrInvalid) {
		t.Error("cancellation misclassified as ErrInvalid")
	}
}

// The catalog names every algorithm the serving path accepts, with
// resolvable defaults.
func TestCatalog(t *testing.T) {
	cat := Catalog()
	names := map[string]bool{}
	for _, a := range cat.Algorithms {
		names[a.Name] = true
	}
	s := New(Config{Workers: 2})
	for name := range names {
		if _, err := s.Rank(context.Background(), &RankRequest{Candidates: pool(16), Algorithm: name, Seed: 1}); err != nil {
			t.Errorf("catalog algorithm %q not rankable: %v", name, err)
		}
	}
	for _, want := range []string{"mallows", "mallows-best", "detconstsort", "ipf", "grbinary", "ilp", "score"} {
		if !names[want] {
			t.Errorf("catalog missing algorithm %q", want)
		}
	}
	if cat.Defaults.Theta != 1 || cat.Defaults.Samples != 15 || cat.Defaults.Tolerance != 0.1 {
		t.Errorf("catalog defaults %+v disagree with the library", cat.Defaults)
	}
	if len(cat.Centrals) != 3 || len(cat.Criteria) != 2 {
		t.Errorf("catalog lists %d centrals, %d criteria", len(cat.Centrals), len(cat.Criteria))
	}
}

// All algorithms are reachable through the service.
func TestAllAlgorithms(t *testing.T) {
	s := New(Config{Workers: 2})
	for _, algo := range []string{"mallows", "mallows-best", "detconstsort", "ipf", "ilp", "score"} {
		resp, err := s.Rank(context.Background(), &RankRequest{
			Candidates: pool(16), Algorithm: algo, Seed: 1,
		})
		if err != nil {
			t.Errorf("%s: %v", algo, err)
			continue
		}
		if resp.Algorithm != algo {
			t.Errorf("%s reported as %q", algo, resp.Algorithm)
		}
	}
	// grbinary requires exactly two groups, which pool provides.
	if _, err := s.Rank(context.Background(), &RankRequest{Candidates: pool(16), Algorithm: "grbinary", Seed: 1}); err != nil {
		t.Errorf("grbinary: %v", err)
	}
}
