package service

// Completion-event subscription tests: at-least-once delivery against
// a flaky receiver with the retry/exhaustion counters reconciled
// through /v1/metrics, and redelivery across a restart when the
// attempt budget ran out.

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/jobstore"
)

// flakyReceiver is a webhook endpoint that fails its first n deliveries
// with 500 and records every body it sees.
type flakyReceiver struct {
	mu     sync.Mutex
	fails  int
	bodies [][]byte
	srv    *httptest.Server
}

func newFlakyReceiver(fails int) *flakyReceiver {
	r := &flakyReceiver{fails: fails}
	r.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		body, _ := io.ReadAll(req.Body)
		r.mu.Lock()
		r.bodies = append(r.bodies, body)
		n := len(r.bodies)
		fails := r.fails
		r.mu.Unlock()
		if n <= fails {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	return r
}

func (r *flakyReceiver) calls() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.bodies)
}

func (r *flakyReceiver) body(i int) []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.bodies[i]
}

// TestWebhookAtLeastOnce: a receiver that answers 500, 500, 200 still
// gets the completion event, the event carries the job's terminal
// shape, and every attempt is accounted for in /v1/metrics.
func TestWebhookAtLeastOnce(t *testing.T) {
	recv := newFlakyReceiver(2)
	defer recv.srv.Close()

	s := New(Config{Workers: 2, WebhookBackoff: time.Millisecond})
	defer s.Close()
	h := NewHandler(s)

	sub, err := s.SubmitJob(&BatchRequest{
		Requests:   []RankRequest{{Candidates: pool(6), Seed: 7}},
		WebhookURL: recv.srv.URL + "/hook",
	})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, sub.ID)

	deadline := time.Now().Add(10 * time.Second)
	for s.jobGauges().Webhooks.Delivered < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("event never delivered; receiver saw %d attempts", recv.calls())
		}
		time.Sleep(time.Millisecond)
	}
	if got := recv.calls(); got != 3 {
		t.Fatalf("receiver saw %d deliveries, want exactly 3 (500, 500, 200)", got)
	}

	var event JobEvent
	if err := json.Unmarshal(recv.body(2), &event); err != nil {
		t.Fatal(err)
	}
	if event.ID != sub.ID || event.State != JobStateDone || event.Total != 1 ||
		event.Completed != 1 || event.Failed != 0 || event.StatusURL != "/v1/jobs/"+sub.ID {
		t.Fatalf("delivered event: %+v", event)
	}
	// The retries also delivered the same bytes — at-least-once means
	// duplicates are possible and identical, never divergent.
	for i := 0; i < 2; i++ {
		if string(recv.body(i)) != string(recv.body(2)) {
			t.Fatalf("attempt %d sent different bytes:\n%s\nvs\n%s", i, recv.body(i), recv.body(2))
		}
	}

	// Reconcile the counters over the wire, where operators read them.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/metrics", nil))
	var m struct {
		Jobs JobMetrics `json:"jobs"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	wh := m.Jobs.Webhooks
	if wh.Attempts != 3 || wh.Delivered != 1 || wh.Retries != 2 || wh.Exhausted != 0 {
		t.Fatalf("webhook counters on /v1/metrics: %+v", wh)
	}
	if wh.Attempts != wh.Delivered+wh.Retries {
		t.Fatalf("counters do not reconcile: %d attempts != %d delivered + %d retries",
			wh.Attempts, wh.Delivered, wh.Retries)
	}
}

// TestWebhookRedeliveryAfterRestart: a dead receiver exhausts the
// process's attempt budget; because the sent-marker never landed, the
// next process re-arms the delivery at resume and the event finally
// goes through — at-least-once across restarts, then never again once
// the durable marker is set.
func TestWebhookRedeliveryAfterRestart(t *testing.T) {
	recv := newFlakyReceiver(2)
	defer recv.srv.Close()

	dir := t.TempDir()
	store, err := jobstore.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1 := New(Config{Workers: 2, JobStore: store, WebhookBackoff: time.Millisecond, WebhookAttempts: 2})
	sub, err := s1.SubmitJob(&BatchRequest{
		Requests:   []RankRequest{{Candidates: pool(6), Seed: 7}},
		WebhookURL: recv.srv.URL + "/hook",
	})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s1, sub.ID)
	deadline := time.Now().Add(10 * time.Second)
	for s1.jobGauges().Webhooks.Exhausted < 1 {
		if time.Now().After(deadline) {
			t.Fatal("attempt budget never ran out against the dead receiver")
		}
		time.Sleep(time.Millisecond)
	}
	s1.Close()

	// Restart over the same directory: ResumeJobs re-arms the unsent
	// event, and the receiver now answers 200 on the third call.
	store2, err := jobstore.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(Config{Workers: 2, JobStore: store2, WebhookBackoff: time.Millisecond})
	defer s2.Close()
	if n := s2.ResumeJobs(); n != 0 {
		t.Fatalf("ResumeJobs re-ran %d finished jobs", n)
	}
	deadline = time.Now().Add(10 * time.Second)
	for s2.jobGauges().Webhooks.Delivered < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("event never redelivered after restart; receiver saw %d calls", recv.calls())
		}
		time.Sleep(time.Millisecond)
	}
	if got := recv.calls(); got != 3 {
		t.Fatalf("receiver saw %d total deliveries, want 3 (2 exhausted + 1 redelivered)", got)
	}

	// The durable marker stops a further restart from delivering again.
	store3, err := jobstore.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	j, ok := store3.Get(sub.ID)
	if !ok || !j.WebhookSent {
		t.Fatalf("sent-marker not durable: ok=%v %+v", ok, j)
	}
	s3 := New(Config{Workers: 2, JobStore: store3, WebhookBackoff: time.Millisecond})
	defer s3.Close()
	s3.ResumeJobs()
	time.Sleep(20 * time.Millisecond)
	if got := recv.calls(); got != 3 {
		t.Fatalf("marked-sent event delivered again: %d calls", got)
	}
}
