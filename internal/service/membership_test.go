package service

// Wire-level behavior of the probabilistic membership field: a request
// with memberships gains the "probabilistic" diagnostics object, a
// hard-label request must not grow one (response-shape compatibility),
// and one-hot memberships reproduce the deterministic audit exactly.

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

func rankBody(t *testing.T, body string) RankResponse {
	t.Helper()
	rec := serve(t, http.MethodPost, "/v1/rank", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp RankResponse
	if err := json.NewDecoder(rec.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

const softCandidatesJSON = `[
	{"id":"a","score":4,"group":"x","membership":{"x":0.7,"y":0.3}},
	{"id":"b","score":3,"group":"x","membership":{"x":0.6,"y":0.4}},
	{"id":"c","score":2,"group":"y","membership":{"x":0.2,"y":0.8}},
	{"id":"d","score":1,"group":"y"}
]`

func TestWireMembershipAddsProbabilisticDiagnostics(t *testing.T) {
	resp := rankBody(t, `{"candidates": `+softCandidatesJSON+`, "algorithm": "score", "seed": 1}`)
	pd := resp.Diagnostics.Probabilistic
	if pd == nil {
		t.Fatal("membership request returned no probabilistic diagnostics")
	}
	if pd.ExpectedPPfair < 0 || pd.ExpectedPPfair > 100 {
		t.Fatalf("expected_ppfair = %v", pd.ExpectedPPfair)
	}
	if pd.ExpectedDisparateExposure < 0 || pd.ExpectedDisparateExposure > 1 {
		t.Fatalf("expected_disparate_exposure = %v", pd.ExpectedDisparateExposure)
	}
}

func TestWireHardLabelsOmitProbabilistic(t *testing.T) {
	rec := serve(t, http.MethodPost, "/v1/rank", `{"candidates": `+candidatesJSON+`, "seed": 1}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if strings.Contains(rec.Body.String(), "probabilistic") {
		t.Fatal("hard-label response serialized a probabilistic block")
	}
}

func TestWireOneHotMembershipMatchesDeterministicAudit(t *testing.T) {
	hard := rankBody(t, `{"candidates": [
		{"id":"a","score":4,"group":"x"},{"id":"b","score":3,"group":"x"},
		{"id":"c","score":2,"group":"y"},{"id":"d","score":1,"group":"y"}
	], "algorithm": "score", "seed": 5}`)
	soft := rankBody(t, `{"candidates": [
		{"id":"a","score":4,"group":"x","membership":{"x":1}},{"id":"b","score":3,"group":"x","membership":{"x":1}},
		{"id":"c","score":2,"group":"y","membership":{"y":1}},{"id":"d","score":1,"group":"y","membership":{"y":1}}
	], "algorithm": "score", "seed": 5}`)
	for i := range hard.Ranking {
		if hard.Ranking[i].ID != soft.Ranking[i].ID {
			t.Fatalf("one-hot membership changed the ranking at %d", i)
		}
	}
	pd := soft.Diagnostics.Probabilistic
	if pd == nil {
		t.Fatal("one-hot request returned no probabilistic diagnostics")
	}
	if pd.ExpectedPPfair != hard.Diagnostics.PPfair {
		t.Fatalf("expected_ppfair %v != ppfair %v", pd.ExpectedPPfair, hard.Diagnostics.PPfair)
	}
	if pd.ExpectedInfeasibleIndex != hard.Diagnostics.InfeasibleIndex {
		t.Fatalf("expected_infeasible_index %d != infeasible_index %d",
			pd.ExpectedInfeasibleIndex, hard.Diagnostics.InfeasibleIndex)
	}
}

func TestWireCatalogAdvertisesMembership(t *testing.T) {
	rec := serve(t, http.MethodGet, "/v1/algorithms", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var cat CatalogResponse
	if err := json.NewDecoder(rec.Body).Decode(&cat); err != nil {
		t.Fatal(err)
	}
	if cat.Membership.Description == "" {
		t.Fatal("catalog has no membership description")
	}
	found := false
	for _, m := range cat.Membership.Metrics {
		if m == "expected_ppfair" {
			found = true
		}
	}
	if !found {
		t.Fatalf("catalog membership metrics %v lack expected_ppfair", cat.Membership.Metrics)
	}
	// The new sampler must be in the served catalog with honest flags.
	var expost *AlgorithmInfo
	for i := range cat.Algorithms {
		if cat.Algorithms[i].Name == "expost-fair" {
			expost = &cat.Algorithms[i]
		}
	}
	if expost == nil {
		t.Fatal("expost-fair missing from the served catalog")
	}
	if expost.Deterministic || expost.AttributeBlind || !expost.ReadsGroup {
		t.Fatalf("expost-fair flags wrong: %+v", *expost)
	}
	if expost.MinMeanPPfair < 99 {
		t.Fatalf("expost-fair advertises PPfair floor %v, want ≥ 99", expost.MinMeanPPfair)
	}
}
