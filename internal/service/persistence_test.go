package service

// Durable-job tests: crash-recovery equivalence (a restart completes an
// interrupted job bit-identically), drain-suspend (Close hands partial
// progress back to the store instead of discarding it), and the
// listing endpoint the durable store feeds.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/jobstore"
)

// resumeBatch is a job whose entries are individually seeded — the
// contract that makes a resumed re-run bit-identical.
func resumeBatch(n int) *BatchRequest {
	b := &BatchRequest{}
	for i := 0; i < n; i++ {
		b.Requests = append(b.Requests, RankRequest{
			Candidates: pool(12),
			Algorithm:  "mallows-best",
			Theta:      ptr(0.7),
			Samples:    ptr(200),
			Seed:       int64(1000 + i),
		})
	}
	return b
}

// referenceItems runs the batch to completion on a throwaway in-memory
// service and returns the item results every recovery path must
// reproduce byte-for-byte.
func referenceItems(t *testing.T, batch *BatchRequest) []json.RawMessage {
	t.Helper()
	s := New(Config{Workers: 2})
	defer s.Close()
	sub, err := s.SubmitJob(batch)
	if err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, s, sub.ID)
	raws := make([]json.RawMessage, len(st.Items))
	for i := range st.Items {
		raw, err := json.Marshal(st.Items[i])
		if err != nil {
			t.Fatal(err)
		}
		raws[i] = raw
	}
	return raws
}

func assertItemsIdentical(t *testing.T, st *JobStatusResponse, want []json.RawMessage) {
	t.Helper()
	if st.State != JobStateDone || len(st.Items) != len(want) {
		t.Fatalf("recovered job: state=%q items=%d, want done with %d", st.State, len(st.Items), len(want))
	}
	for i := range want {
		got, err := json.Marshal(st.Items[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want[i]) {
			t.Fatalf("item %d diverged after recovery:\nwant %s\ngot  %s", i, want[i], got)
		}
	}
}

// TestJobCrashRecoveryBitIdentical is the crash drill: a job is
// interrupted with part of its items persisted (exactly the record a
// SIGKILL'd process leaves in its WAL — no suspend, no cleanup, claims
// gone with the process), a new server opens the same directory, and
// the resumed job must (a) re-run only the missing items and (b) finish
// with results byte-identical to an uninterrupted run.
func TestJobCrashRecoveryBitIdentical(t *testing.T) {
	const total = 6
	batch := resumeBatch(total)
	want := referenceItems(t, batch)
	payload, err := json.Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}

	// The post-crash WAL: created, running, items 0/2/4 persisted.
	dir := t.TempDir()
	store, err := jobstore.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	job := &jobstore.Job{Total: total, Request: payload}
	if err := store.Create(job); err != nil {
		t.Fatal(err)
	}
	store.SetState(job.ID, jobstore.StateRunning)
	prefilled := []int{0, 2, 4}
	for _, i := range prefilled {
		store.PutItem(job.ID, i, want[i], false)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	srv, err := NewServer(ServerConfig{Config: Config{Workers: 2}, Addr: "127.0.0.1:0", JobDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Recovered() != 1 {
		t.Fatalf("recovered %d jobs, want 1", srv.Recovered())
	}
	svc := srv.Service()
	st := waitDone(t, svc, job.ID)
	assertItemsIdentical(t, st, want)
	if st.Failed != 0 {
		t.Fatalf("recovered job reports %d failed items", st.Failed)
	}

	// Only the missing draws ran: the prefilled slots were skipped.
	g := svc.jobGauges()
	if g.ItemsDone != int64(total-len(prefilled)) {
		t.Fatalf("resume ran %d items, want only the %d missing", g.ItemsDone, total-len(prefilled))
	}
	if g.Recovered != 1 {
		t.Fatalf("recovered gauge %d, want 1", g.Recovered)
	}
}

// TestJobDrainSuspendAndResume is the graceful half of the drill: Close
// (the SIGTERM path) suspends a running job back to pending with its
// completed items persisted and no cancellation artifacts stored; a new
// service over the same directory resumes it to a bit-identical finish.
func TestJobDrainSuspendAndResume(t *testing.T) {
	const total = 10
	batch := resumeBatch(total)
	want := referenceItems(t, batch)

	dir := t.TempDir()
	store, err := jobstore.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1 := New(Config{Workers: 1, JobStore: store})
	sub, err := s1.SubmitJob(batch)
	if err != nil {
		t.Fatal(err)
	}
	// Let some progress land, then shut down mid-job.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := s1.JobStatus(sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.Completed >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never made progress")
		}
		time.Sleep(time.Millisecond)
	}
	s1.Close()

	// The suspended record: pending, unclaimed, partial progress, and
	// not a single stored cancellation artifact.
	store2, err := jobstore.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	j, ok := store2.Get(sub.ID)
	if !ok {
		t.Fatal("suspended job lost")
	}
	if j.State != jobstore.StatePending {
		t.Fatalf("suspended job in state %q, want pending", j.State)
	}
	if j.Completed < 1 {
		t.Fatal("suspend discarded the completed items")
	}
	for i, raw := range j.Items {
		if raw != nil && !bytes.Equal(raw, want[i]) {
			t.Fatalf("suspended item %d holds a non-reference result: %s", i, raw)
		}
	}

	s2 := New(Config{Workers: 2, JobStore: store2})
	defer s2.Close()
	if n := s2.ResumeJobs(); n != 1 {
		t.Fatalf("resumed %d jobs, want 1", n)
	}
	assertItemsIdentical(t, waitDone(t, s2, sub.ID), want)
}

// TestJobResumeRejectsTamperedPayload: a stored payload that no longer
// matches its record is refused loudly — the job turns cancelled
// instead of re-running the wrong work or vanishing.
func TestJobResumeRejectsTamperedPayload(t *testing.T) {
	dir := t.TempDir()
	store, err := jobstore.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	job := &jobstore.Job{Total: 3, Request: json.RawMessage(`{"requests":[]}`)}
	if err := store.Create(job); err != nil {
		t.Fatal(err)
	}
	// Claims die with the creating process; only a reopened store hands
	// the job to the resume path.
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	store, err = jobstore.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}

	s := New(Config{Workers: 2, JobStore: store})
	defer s.Close()
	if n := s.ResumeJobs(); n != 0 {
		t.Fatalf("resumed %d tampered jobs, want 0", n)
	}
	st, err := s.JobStatus(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobStateCancelled {
		t.Fatalf("tampered job in state %q, want cancelled", st.State)
	}
}

// TestHTTPJobList pins the listing endpoint: cursor paging, state
// filters, and the 400s for malformed queries.
func TestHTTPJobList(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	h := NewHandler(s)
	srv := httptest.NewServer(h)
	defer srv.Close()

	var ids []string
	for i := 0; i < 5; i++ {
		sub, err := s.SubmitJob(&BatchRequest{Requests: []RankRequest{{Candidates: pool(6), Seed: int64(i)}}})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, sub.ID)
	}
	for _, id := range ids {
		waitDone(t, s, id)
	}

	getPage := func(query string, wantStatus int) *JobListResponse {
		t.Helper()
		resp, err := http.Get(srv.URL + "/v1/jobs" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Fatalf("GET /v1/jobs%s: status %d, want %d", query, resp.StatusCode, wantStatus)
		}
		if wantStatus != http.StatusOK {
			return nil
		}
		var page JobListResponse
		if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
			t.Fatal(err)
		}
		return &page
	}

	page := getPage("?limit=2", http.StatusOK)
	if len(page.Jobs) != 2 || page.Jobs[0].ID != ids[0] || page.Jobs[1].ID != ids[1] {
		t.Fatalf("first page: %+v", page.Jobs)
	}
	if page.NextCursor != ids[1] {
		t.Fatalf("first cursor %q", page.NextCursor)
	}
	if page.Jobs[0].StatusURL != "/v1/jobs/"+ids[0] {
		t.Fatalf("status URL %q", page.Jobs[0].StatusURL)
	}

	page = getPage("?limit=10&after="+page.NextCursor, http.StatusOK)
	if len(page.Jobs) != 3 || page.Jobs[0].ID != ids[2] || page.NextCursor != "" {
		t.Fatalf("second page: %+v", page)
	}

	if page := getPage("?state=done", http.StatusOK); len(page.Jobs) != 5 {
		t.Fatalf("done filter returned %d jobs", len(page.Jobs))
	}
	if page := getPage("?state=pending&state=running", http.StatusOK); len(page.Jobs) != 0 {
		t.Fatalf("pending/running filter returned %d jobs", len(page.Jobs))
	}
	getPage("?state=finished", http.StatusBadRequest)
	getPage("?limit=zero", http.StatusBadRequest)
	getPage("?limit=-1", http.StatusBadRequest)
}

// TestSubmitRejectsBadWebhookURL: subscriptions must be absolute
// http(s) URLs; anything else is a 400 at submit time, not a delivery
// failure later.
func TestSubmitRejectsBadWebhookURL(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	h := NewHandler(s)
	for _, bad := range []string{"not-a-url", "ftp://x/hook", "/relative/hook"} {
		body, _ := json.Marshal(&BatchRequest{
			Requests:   []RankRequest{{Candidates: pool(4), Seed: 1}},
			WebhookURL: bad,
		})
		req := httptest.NewRequest(http.MethodPost, "/v1/jobs/rank", strings.NewReader(string(body)))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("webhook_url %q accepted with status %d", bad, rec.Code)
		}
	}
}
