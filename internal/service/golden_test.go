package service

// Golden-file tests for the HTTP wire format: the exact bytes of
// canonical /v1/rank, /v1/rank/batch, and /v1/algorithms responses are
// pinned under testdata/, so any wire change — a renamed field, a
// reordered struct, a float formatting shift, a new catalog entry —
// shows up as a reviewable golden diff instead of silently reaching
// clients. After an intentional change, regenerate with:
//
//	go test ./internal/service -run TestGolden -update
//
// and review the diff like any other code change.

import (
	"bytes"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite the golden files with the observed responses")

// goldenCompare checks observed response bytes against
// testdata/<name>.golden (or rewrites the file under -update).
func goldenCompare(t *testing.T, name string, got []byte) {
	t.Helper()
	goldenPath := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create it): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s wire format changed.\n--- want (%s)\n%s\n--- got\n%s\nIf the change is intentional, regenerate with -update and review the diff.",
			name, goldenPath, want, got)
	}
}

// goldenServe serves one request against a handler and returns the
// response body after pinning status and content type.
func goldenServe(t *testing.T, h http.Handler, method, path, body string, wantStatus int) []byte {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != wantStatus {
		t.Fatalf("%s %s returned %d, want %d: %s", method, path, rec.Code, wantStatus, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("%s %s Content-Type = %q, want application/json", method, path, ct)
	}
	return rec.Body.Bytes()
}

// goldenBody serves one request against a fresh HTTP stack and
// compares the response bytes to testdata/<name>.golden.
func goldenBody(t *testing.T, name, method, path, body string) {
	t.Helper()
	h := NewHandler(New(Config{Workers: 2}))
	goldenCompare(t, name, goldenServe(t, h, method, path, body, http.StatusOK))
}

// goldenRankBody is a canonical request touching every response
// feature: overrides, top-k truncation, attrs echo, and diagnostics.
const goldenRankBody = `{
  "candidates": [
    {"id": "ava",   "score": 9.5, "group": "f", "attrs": {"region": "north"}},
    {"id": "bo",    "score": 9.0, "group": "m"},
    {"id": "cy",    "score": 8.0, "group": "f"},
    {"id": "dee",   "score": 7.5, "group": "m"},
    {"id": "eli",   "score": 6.0, "group": "m"},
    {"id": "fran",  "score": 5.0, "group": "f"},
    {"id": "gus",   "score": 4.0, "group": "m"},
    {"id": "hana",  "score": 3.0, "group": "f"}
  ],
  "algorithm": "mallows-best",
  "theta": 1.5,
  "samples": 7,
  "tolerance": 0.2,
  "top_k": 5,
  "seed": 42
}`

func TestGoldenRank(t *testing.T) {
	goldenBody(t, "rank", http.MethodPost, "/v1/rank", goldenRankBody)
}

func TestGoldenRankBatch(t *testing.T) {
	// Two entries that succeed plus one that fails validation, pinning
	// the independent-failure item shape on the wire.
	body := `{
  "requests": [
    {
      "candidates": [
        {"id": "a", "score": 3, "group": "x"},
        {"id": "b", "score": 2, "group": "y"},
        {"id": "c", "score": 1, "group": "x"}
      ],
      "algorithm": "score",
      "seed": 1
    },
    {
      "candidates": [
        {"id": "a", "score": 1, "group": "x"},
        {"id": "b", "score": 2, "group": "y"}
      ],
      "algorithm": "detconstsort",
      "seed": 2
    },
    {
      "candidates": [],
      "seed": 3
    }
  ]
}`
	goldenBody(t, "rank_batch", http.MethodPost, "/v1/rank/batch", body)
}

// TestGoldenReadyz pins both readiness bodies: the ready snapshot with
// its queue/inflight gauges (the shape fleet probes parse for
// least-loaded fallback) and the draining 503.
func TestGoldenReadyz(t *testing.T) {
	goldenBody(t, "readyz", http.MethodGet, "/readyz", "")

	s := New(Config{Workers: 2})
	defer s.Close()
	s.BeginDrain()
	goldenCompare(t, "readyz_draining",
		goldenServe(t, NewHandler(s), http.MethodGet, "/readyz", "", http.StatusServiceUnavailable))
}

// TestGoldenMetrics pins the /v1/metrics wire shape on a fresh server:
// every registered route with zeroed counters (except the metrics
// request itself, counted mid-flight), the queue/job/engine gauges at
// their configured shape. Latency fields are all zero because no other
// request has completed — the shape, field names, and route inventory
// are what this golden guards.
func TestGoldenMetrics(t *testing.T) {
	goldenBody(t, "metrics", http.MethodGet, "/v1/metrics", "")
}

// TestGoldenJobLifecycle pins the async-job wire formats across one
// full lifecycle on a single fresh handler: the 202 submit response
// (IDs are sequential per service, so a fresh store always answers
// job-000001), the done status with its items, the 409 a delete of a
// finished job earns, and the 404 for a job that never existed. The
// intermediate poll loop is not golden — its progress values race the
// supervisor — but the terminal responses are exact.
func TestGoldenJobLifecycle(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	h := NewHandler(s)
	submitBody := `{
  "requests": [
    {
      "candidates": [
        {"id": "a", "score": 3, "group": "x"},
        {"id": "b", "score": 2, "group": "y"},
        {"id": "c", "score": 1, "group": "x"}
      ],
      "algorithm": "score",
      "seed": 1
    },
    {
      "candidates": [],
      "seed": 2
    }
  ]
}`
	goldenCompare(t, "job_submit",
		goldenServe(t, h, http.MethodPost, "/v1/jobs/rank", submitBody, http.StatusAccepted))

	// Wait off the wire so the golden comparison only ever sees the
	// terminal state.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := s.JobStatus("job-000001")
		if err != nil {
			t.Fatal(err)
		}
		if st.State == JobStateDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", st.State)
		}
		time.Sleep(time.Millisecond)
	}
	goldenCompare(t, "job_status_done",
		goldenServe(t, h, http.MethodGet, "/v1/jobs/job-000001", "", http.StatusOK))

	// Deleting a finished job is refused: 409 with a stable error body,
	// and the result stays fetchable until the TTL sweep takes it.
	goldenCompare(t, "job_delete_conflict",
		goldenServe(t, h, http.MethodDelete, "/v1/jobs/job-000001", "", http.StatusConflict))
	goldenCompare(t, "job_status_done",
		goldenServe(t, h, http.MethodGet, "/v1/jobs/job-000001", "", http.StatusOK))
	goldenCompare(t, "job_not_found",
		goldenServe(t, h, http.MethodGet, "/v1/jobs/job-999999", "", http.StatusNotFound))
}

func TestGoldenAlgorithms(t *testing.T) {
	// The catalog is generated from the live registry; the golden file
	// therefore also pins the registry metadata of every built-in. A
	// deliberate registration change regenerates this file — that diff
	// is the reviewable record of the catalog change.
	//
	// Other tests in this binary register throwaway "test…" algorithms.
	// In the default file order they run after this one; under -shuffle
	// they may not, and a polluted registry cannot match the pristine
	// golden — skip rather than fail on an ordering artifact.
	for _, a := range Catalog().Algorithms {
		if strings.HasPrefix(a.Name, "test") {
			t.Skipf("registry already holds test-registered entry %q; the catalog golden needs the pristine registry", a.Name)
		}
	}
	goldenBody(t, "algorithms", http.MethodGet, "/v1/algorithms", "")
}
