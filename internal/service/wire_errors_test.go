package service

// Exact wire-level error contracts: for every rejectable RankRequest
// field the HTTP status code and the exact JSON error body are pinned,
// because clients match on them. A wording change here is a wire
// change.

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// wantErrorBody renders the exact bytes the handler writes for an
// error message (the JSON encoder escapes embedded quotes and appends
// a newline).
func wantErrorBody(t *testing.T, msg string) string {
	t.Helper()
	b, err := json.Marshal(map[string]string{"error": msg})
	if err != nil {
		t.Fatal(err)
	}
	return string(b) + "\n"
}

// serve runs one request through the full handler stack.
func serve(t *testing.T, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	h := NewHandler(New(Config{Workers: 2, MaxCandidates: 16, MaxBatch: 2}))
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// candidatesJSON renders a minimal valid pool inline.
const candidatesJSON = `[{"id":"a","score":2,"group":"x"},{"id":"b","score":1,"group":"y"}]`

func TestWireValidationErrorsExact(t *testing.T) {
	cases := []struct {
		name string
		body string
		want string // exact "error" payload
	}{
		{"empty candidates", `{"candidates": []}`,
			"invalid request: empty candidate set"},
		{"oversized pool", `{"candidates": [` + bigPool(17) + `]}`,
			"invalid request: 17 candidates exceed the limit of 16"},
		{"empty id", `{"candidates": [{"id":"","score":1,"group":"x"}]}`,
			"invalid request: candidate 0 has an empty id"},
		{"duplicate id", `{"candidates": [{"id":"a","score":1,"group":"x"},{"id":"a","score":2,"group":"y"}]}`,
			`invalid request: duplicate candidate id "a"`},
		{"negative theta", `{"candidates": ` + candidatesJSON + `, "theta": -1.5}`,
			"invalid request: theta = -1.5, want ≥ 0"},
		{"zero samples", `{"candidates": ` + candidatesJSON + `, "samples": 0}`,
			"invalid request: samples = 0, want ≥ 1"},
		{"negative tolerance", `{"candidates": ` + candidatesJSON + `, "tolerance": -0.1}`,
			"invalid request: tolerance = -0.1, want ≥ 0"},
		{"zero top_k", `{"candidates": ` + candidatesJSON + `, "top_k": 0}`,
			"invalid request: top_k = 0, want ≥ 1"},
		{"negative weak_k", `{"candidates": ` + candidatesJSON + `, "weak_k": -2}`,
			"invalid request: weak_k = -2, want ≥ 0"},
		{"negative sigma", `{"candidates": ` + candidatesJSON + `, "sigma": -1}`,
			"invalid request: sigma = -1, want finite ≥ 0"},
		{"empty group", `{"candidates": [{"id":"a","score":1,"group":""},{"id":"b","score":2,"group":"y"}]}`,
			`invalid request: fairrank: candidate "a" has empty Group`},
		{"unknown algorithm", `{"candidates": ` + candidatesJSON + `, "algorithm": "quicksort"}`,
			`invalid request: fairrank: unknown algorithm "quicksort"`},
		{"unknown central", `{"candidates": ` + candidatesJSON + `, "central": "median"}`,
			`invalid request: fairrank: unknown central ranking "median"`},
		{"unknown criterion", `{"candidates": ` + candidatesJSON + `, "criterion": "vibes"}`,
			`invalid request: fairrank: unknown criterion "vibes"`},
		{"unknown noise", `{"candidates": ` + candidatesJSON + `, "noise": "fog"}`,
			`invalid request: fairrank: unknown noise "fog"`},
		{"membership empty group", `{"candidates": [{"id":"a","score":2,"group":"x","membership":{"":1}},{"id":"b","score":1,"group":"y"}]}`,
			`invalid request: candidate "a" membership names an empty group`},
		{"membership negative", `{"candidates": [{"id":"a","score":2,"group":"x","membership":{"x":-0.5}},{"id":"b","score":1,"group":"y"}]}`,
			`invalid request: candidate "a" membership for group "x" = -0.5, want in [0,1]`},
		{"membership above one", `{"candidates": [{"id":"a","score":2,"group":"x","membership":{"x":1.25}},{"id":"b","score":1,"group":"y"}]}`,
			`invalid request: candidate "a" membership for group "x" = 1.25, want in [0,1]`},
		{"membership not normalized", `{"candidates": [{"id":"a","score":2,"group":"x","membership":{"x":0.25,"y":0.25}},{"id":"b","score":1,"group":"y"}]}`,
			`invalid request: candidate "a" membership sums to 0.5, want 1`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := serve(t, http.MethodPost, "/v1/rank", tc.body)
			if rec.Code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400; body %s", rec.Code, rec.Body.String())
			}
			want := wantErrorBody(t, tc.want)
			if got := rec.Body.String(); got != want {
				t.Errorf("body = %q, want exactly %q", got, want)
			}
		})
	}
}

// TestWireNaNScoreRejected: JSON has no NaN literal, so a NaN score can
// only arrive via the Go API — but the service must still reject it
// with its exact message when it does.
func TestWireNaNScoreRejected(t *testing.T) {
	s := New(Config{Workers: 1})
	_, err := s.Rank(t.Context(), &RankRequest{Candidates: []Candidate{
		{ID: "a", Score: math.NaN(), Group: "x"}, {ID: "b", Score: 1, Group: "y"},
	}})
	if err == nil {
		t.Fatal("NaN score accepted")
	}
	const want = `invalid request: fairrank: candidate "a" has NaN score`
	if err.Error() != want {
		t.Errorf("error = %q, want exactly %q", err, want)
	}
}

// TestWireNaNMembershipRejected: like NaN scores, a NaN membership
// probability can only arrive through the Go API; the validation layer
// still pins its exact message.
func TestWireNaNMembershipRejected(t *testing.T) {
	s := New(Config{Workers: 1})
	_, err := s.Rank(t.Context(), &RankRequest{Candidates: []Candidate{
		{ID: "a", Score: 2, Group: "x", Membership: map[string]float64{"x": math.NaN()}},
		{ID: "b", Score: 1, Group: "y"},
	}})
	if err == nil {
		t.Fatal("NaN membership accepted")
	}
	const want = `invalid request: candidate "a" membership for group "x" = NaN, want in [0,1]`
	if err.Error() != want {
		t.Errorf("error = %q, want exactly %q", err, want)
	}
}

func TestWireBatchLimitsExact(t *testing.T) {
	cases := []struct {
		name string
		body string
		want string
	}{
		{"empty batch", `{"requests": []}`, "invalid request: empty batch"},
		{"oversized batch", `{"requests": [{"candidates": ` + candidatesJSON + `}, {"candidates": ` + candidatesJSON + `}, {"candidates": ` + candidatesJSON + `}]}`,
			"invalid request: batch of 3 requests exceeds the limit of 2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := serve(t, http.MethodPost, "/v1/rank/batch", tc.body)
			if rec.Code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400; body %s", rec.Code, rec.Body.String())
			}
			want := wantErrorBody(t, tc.want)
			if got := rec.Body.String(); got != want {
				t.Errorf("body = %q, want exactly %q", got, want)
			}
		})
	}
}

// TestWireMalformedJSONExactStatus pins the malformed-body contract:
// 400 with a body that names the decode failure.
func TestWireMalformedJSONExactStatus(t *testing.T) {
	rec := serve(t, http.MethodPost, "/v1/rank", `{"candidates": [`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", rec.Code)
	}
	if !strings.HasPrefix(rec.Body.String(), `{"error":"malformed JSON: `) {
		t.Errorf("body %q does not carry the malformed-JSON prefix", rec.Body.String())
	}
}

// TestWireContextStatusCodes pins the cancellation-vs-deadline wire
// contract: a client that went away gets nginx's 499, while a deadline
// that expired server-side is a gateway timeout, 504 — they are
// different failures and clients retry them differently. Both bodies
// carry the exact context error string.
func TestWireContextStatusCodes(t *testing.T) {
	cases := []struct {
		name       string
		ctx        func(t *testing.T) context.Context
		wantStatus int
		wantBody   string
	}{
		{
			name: "client cancellation is 499",
			ctx: func(t *testing.T) context.Context {
				ctx, cancel := context.WithCancel(context.Background())
				cancel()
				return ctx
			},
			wantStatus: 499,
			wantBody:   "context canceled",
		},
		{
			name: "deadline expiry is 504",
			ctx: func(t *testing.T) context.Context {
				ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
				t.Cleanup(cancel)
				return ctx
			},
			wantStatus: http.StatusGatewayTimeout,
			wantBody:   "context deadline exceeded",
		},
	}
	body := `{"candidates": ` + candidatesJSON + `, "seed": 1}`
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := NewHandler(New(Config{Workers: 2}))
			req := httptest.NewRequest(http.MethodPost, "/v1/rank", strings.NewReader(body))
			req = req.WithContext(tc.ctx(t))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != tc.wantStatus {
				t.Fatalf("status %d, want %d; body %s", rec.Code, tc.wantStatus, rec.Body.String())
			}
			if got, want := rec.Body.String(), wantErrorBody(t, tc.wantBody); got != want {
				t.Errorf("body = %q, want exactly %q", got, want)
			}
		})
	}
}

// TestWireSaturationExact pins the 429 contract: exact error body and a
// Retry-After header carrying the queue-wait budget in whole seconds.
func TestWireSaturationExact(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1, QueueWait: 2 * time.Second})
	defer s.Close()
	h := NewHandler(s)
	release := fillGate(s)
	defer release()
	req := httptest.NewRequest(http.MethodPost, "/v1/rank",
		strings.NewReader(`{"candidates": `+candidatesJSON+`, "seed": 1}`))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", got)
	}
	if got, want := rec.Body.String(), wantErrorBody(t, "server saturated"); got != want {
		t.Errorf("body = %q, want exactly %q", got, want)
	}
}

// TestWireJobNotFoundExact pins the 404 contract of the job routes.
func TestWireJobNotFoundExact(t *testing.T) {
	rec := serve(t, http.MethodGet, "/v1/jobs/job-000042", "")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("status %d, want 404", rec.Code)
	}
	if got, want := rec.Body.String(), wantErrorBody(t, `not found: job "job-000042"`); got != want {
		t.Errorf("body = %q, want exactly %q", got, want)
	}
}

// bigPool renders n one-group candidates inline.
func bigPool(n int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(`{"id":"c` + string(rune('a'+i%26)) + string(rune('a'+i/26)) + `","score":1,"group":"x"}`)
	}
	return sb.String()
}
