package service

// Exact wire-level error contracts: for every rejectable RankRequest
// field the HTTP status code and the exact JSON error body are pinned,
// because clients match on them. A wording change here is a wire
// change.

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// wantErrorBody renders the exact bytes the handler writes for an
// error message (the JSON encoder escapes embedded quotes and appends
// a newline).
func wantErrorBody(t *testing.T, msg string) string {
	t.Helper()
	b, err := json.Marshal(map[string]string{"error": msg})
	if err != nil {
		t.Fatal(err)
	}
	return string(b) + "\n"
}

// serve runs one request through the full handler stack.
func serve(t *testing.T, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	h := NewHandler(New(Config{Workers: 2, MaxCandidates: 16, MaxBatch: 2}))
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// candidatesJSON renders a minimal valid pool inline.
const candidatesJSON = `[{"id":"a","score":2,"group":"x"},{"id":"b","score":1,"group":"y"}]`

func TestWireValidationErrorsExact(t *testing.T) {
	cases := []struct {
		name string
		body string
		want string // exact "error" payload
	}{
		{"empty candidates", `{"candidates": []}`,
			"invalid request: empty candidate set"},
		{"oversized pool", `{"candidates": [` + bigPool(17) + `]}`,
			"invalid request: 17 candidates exceed the limit of 16"},
		{"empty id", `{"candidates": [{"id":"","score":1,"group":"x"}]}`,
			"invalid request: candidate 0 has an empty id"},
		{"duplicate id", `{"candidates": [{"id":"a","score":1,"group":"x"},{"id":"a","score":2,"group":"y"}]}`,
			`invalid request: duplicate candidate id "a"`},
		{"negative theta", `{"candidates": ` + candidatesJSON + `, "theta": -1.5}`,
			"invalid request: theta = -1.5, want ≥ 0"},
		{"zero samples", `{"candidates": ` + candidatesJSON + `, "samples": 0}`,
			"invalid request: samples = 0, want ≥ 1"},
		{"negative tolerance", `{"candidates": ` + candidatesJSON + `, "tolerance": -0.1}`,
			"invalid request: tolerance = -0.1, want ≥ 0"},
		{"zero top_k", `{"candidates": ` + candidatesJSON + `, "top_k": 0}`,
			"invalid request: top_k = 0, want ≥ 1"},
		{"negative weak_k", `{"candidates": ` + candidatesJSON + `, "weak_k": -2}`,
			"invalid request: weak_k = -2, want ≥ 0"},
		{"negative sigma", `{"candidates": ` + candidatesJSON + `, "sigma": -1}`,
			"invalid request: sigma = -1, want finite ≥ 0"},
		{"empty group", `{"candidates": [{"id":"a","score":1,"group":""},{"id":"b","score":2,"group":"y"}]}`,
			`invalid request: fairrank: candidate "a" has empty Group`},
		{"unknown algorithm", `{"candidates": ` + candidatesJSON + `, "algorithm": "quicksort"}`,
			`invalid request: fairrank: unknown algorithm "quicksort"`},
		{"unknown central", `{"candidates": ` + candidatesJSON + `, "central": "median"}`,
			`invalid request: fairrank: unknown central ranking "median"`},
		{"unknown criterion", `{"candidates": ` + candidatesJSON + `, "criterion": "vibes"}`,
			`invalid request: fairrank: unknown criterion "vibes"`},
		{"unknown noise", `{"candidates": ` + candidatesJSON + `, "noise": "fog"}`,
			`invalid request: fairrank: unknown noise "fog"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := serve(t, http.MethodPost, "/v1/rank", tc.body)
			if rec.Code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400; body %s", rec.Code, rec.Body.String())
			}
			want := wantErrorBody(t, tc.want)
			if got := rec.Body.String(); got != want {
				t.Errorf("body = %q, want exactly %q", got, want)
			}
		})
	}
}

// TestWireNaNScoreRejected: JSON has no NaN literal, so a NaN score can
// only arrive via the Go API — but the service must still reject it
// with its exact message when it does.
func TestWireNaNScoreRejected(t *testing.T) {
	s := New(Config{Workers: 1})
	_, err := s.Rank(t.Context(), &RankRequest{Candidates: []Candidate{
		{ID: "a", Score: math.NaN(), Group: "x"}, {ID: "b", Score: 1, Group: "y"},
	}})
	if err == nil {
		t.Fatal("NaN score accepted")
	}
	const want = `invalid request: fairrank: candidate "a" has NaN score`
	if err.Error() != want {
		t.Errorf("error = %q, want exactly %q", err, want)
	}
}

func TestWireBatchLimitsExact(t *testing.T) {
	cases := []struct {
		name string
		body string
		want string
	}{
		{"empty batch", `{"requests": []}`, "invalid request: empty batch"},
		{"oversized batch", `{"requests": [{"candidates": ` + candidatesJSON + `}, {"candidates": ` + candidatesJSON + `}, {"candidates": ` + candidatesJSON + `}]}`,
			"invalid request: batch of 3 requests exceeds the limit of 2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := serve(t, http.MethodPost, "/v1/rank/batch", tc.body)
			if rec.Code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400; body %s", rec.Code, rec.Body.String())
			}
			want := wantErrorBody(t, tc.want)
			if got := rec.Body.String(); got != want {
				t.Errorf("body = %q, want exactly %q", got, want)
			}
		})
	}
}

// TestWireMalformedJSONExactStatus pins the malformed-body contract:
// 400 with a body that names the decode failure.
func TestWireMalformedJSONExactStatus(t *testing.T) {
	rec := serve(t, http.MethodPost, "/v1/rank", `{"candidates": [`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", rec.Code)
	}
	if !strings.HasPrefix(rec.Body.String(), `{"error":"malformed JSON: `) {
		t.Errorf("body %q does not carry the malformed-JSON prefix", rec.Body.String())
	}
}

// bigPool renders n one-group candidates inline.
func bigPool(n int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(`{"id":"c` + string(rune('a'+i%26)) + string(rune('a'+i/26)) + `","score":1,"group":"x"}`)
	}
	return sb.String()
}
