package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
)

// statusClientClosedRequest is nginx's non-standard 499: the client went
// away before the response was produced. Server-side deadline expiry is
// distinct and maps to 504.
const statusClientClosedRequest = 499

// maxBodyBytes bounds request bodies accepted by the HTTP handler.
const maxBodyBytes = 32 << 20

// NewHandler exposes the service over HTTP:
//
//	POST   /v1/rank        RankRequest  → RankResponse (sync)
//	POST   /v1/rank/batch  BatchRequest → BatchResponse (sync)
//	POST   /v1/jobs/rank   BatchRequest → JobSubmitResponse (async, 202;
//	                       webhook_url subscribes to the completion event)
//	GET    /v1/jobs        JobListResponse (cursor paging via ?after=,
//	                       ?limit=, state filters via repeated ?state=)
//	GET    /v1/jobs/{id}   JobStatusResponse (progress; items once done)
//	DELETE /v1/jobs/{id}   cancel+delete an unfinished job (204); a
//	                       finished job is 409 (eviction is the TTL's job)
//	GET    /v1/algorithms  CatalogResponse (introspection)
//	GET    /v1/metrics     MetricsResponse (transport/queue/jobs/engine)
//	GET    /healthz        liveness probe (process is up)
//	GET    /readyz         readiness probe (503 once draining)
//
// Every route runs behind the transport middleware stack: request-ID
// injection (X-Request-Id, inbound IDs preserved), optional structured
// access logging (Config.AccessLog), panic recovery (500 instead of a
// torn connection), and per-route latency/inflight/error counters
// served by GET /v1/metrics.
//
// Error mapping: request-caused failures (ErrInvalid, malformed JSON)
// return 400 with a JSON {"error": "..."} body; unknown job IDs 404;
// deleting a finished job 409; a saturated admission queue or job
// store 429 with Retry-After; a
// draining service 503 (new jobs) with Retry-After; a client
// cancellation 499; a deadline expiry 504; anything else 500. Each
// request's context flows into the sampling loops, so client
// disconnects abort in-flight ranking work.
func NewHandler(s *Service) http.Handler {
	mux := http.NewServeMux()
	route := func(pattern string, h http.HandlerFunc) {
		mux.Handle(pattern, chain(h, routeMetrics(s.stats.route(pattern))))
	}
	route("POST /v1/rank", func(w http.ResponseWriter, r *http.Request) {
		var req RankRequest
		if !decode(w, r, &req) {
			return
		}
		resp, err := s.Rank(r.Context(), &req)
		if err != nil {
			s.writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	route("POST /v1/rank/batch", func(w http.ResponseWriter, r *http.Request) {
		var req BatchRequest
		if !decode(w, r, &req) {
			return
		}
		resp, err := s.RankBatch(r.Context(), &req)
		if err != nil {
			s.writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	route("POST /v1/jobs/rank", func(w http.ResponseWriter, r *http.Request) {
		var req BatchRequest
		if !decode(w, r, &req) {
			return
		}
		resp, err := s.SubmitJob(&req)
		if err != nil {
			s.writeError(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, resp)
	})
	route("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		limit := 0
		if raw := q.Get("limit"); raw != "" {
			n, err := strconv.Atoi(raw)
			if err != nil || n < 1 {
				s.writeError(w, invalidf("limit %q is not a positive integer", raw))
				return
			}
			limit = n
		}
		resp, err := s.ListJobs(q["state"], q.Get("after"), limit)
		if err != nil {
			s.writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	route("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		resp, err := s.JobStatus(r.PathValue("id"))
		if err != nil {
			s.writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	route("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		if err := s.CancelJob(r.PathValue("id")); err != nil {
			s.writeError(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	route("GET /v1/algorithms", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, Catalog())
	})
	route("GET /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Metrics())
	})
	route("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	route("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		resp, ready := s.Readyz()
		status := http.StatusOK
		if !ready {
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, resp)
	})
	return chain(mux,
		requestID(),
		accessLog(s.cfg.AccessLog),
		recovery(s.stats, s.cfg.AccessLog),
	)
}

func decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(dst); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "malformed JSON: " + err.Error()})
		return false
	}
	return true
}

// writeError maps service errors onto wire statuses; see NewHandler.
func (s *Service) writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrInvalid):
		status = http.StatusBadRequest
	case errors.Is(err, ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, ErrConflict):
		status = http.StatusConflict
	case errors.Is(err, ErrSaturated):
		status = http.StatusTooManyRequests
		w.Header().Set("Retry-After", strconv.Itoa(int(s.queue.RetryAfter().Seconds())))
	case errors.Is(err, ErrDraining):
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", strconv.Itoa(int(s.queue.RetryAfter().Seconds())))
	case errors.Is(err, context.Canceled):
		status = statusClientClosedRequest
	case errors.Is(err, context.DeadlineExceeded):
		// The budget for producing a response ran out server-side:
		// a gateway timeout, not a client disconnect.
		status = http.StatusGatewayTimeout
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding failures past WriteHeader can only be logged by the
	// server; the types here marshal unconditionally.
	_ = json.NewEncoder(w).Encode(v)
}
