package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
)

// statusClientClosedRequest is nginx's non-standard 499: the client went
// away (or its deadline passed) before the response was produced.
const statusClientClosedRequest = 499

// maxBodyBytes bounds request bodies accepted by the HTTP handler.
const maxBodyBytes = 32 << 20

// NewHandler exposes the service over HTTP:
//
//	POST /v1/rank        RankRequest  → RankResponse
//	POST /v1/rank/batch  BatchRequest → BatchResponse
//	GET  /v1/algorithms  CatalogResponse (introspection)
//	GET  /healthz        liveness probe
//
// Request-caused failures (ErrInvalid, malformed JSON) return 400 with a
// JSON {"error": "..."} body; a cancelled or timed-out request returns
// 499 (client closed request); anything else returns 500. Each request's
// context flows into the sampling loops, so client disconnects abort
// in-flight ranking work.
func NewHandler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/rank", func(w http.ResponseWriter, r *http.Request) {
		var req RankRequest
		if !decode(w, r, &req) {
			return
		}
		resp, err := s.Rank(r.Context(), &req)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("POST /v1/rank/batch", func(w http.ResponseWriter, r *http.Request) {
		var req BatchRequest
		if !decode(w, r, &req) {
			return
		}
		resp, err := s.RankBatch(r.Context(), &req)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("GET /v1/algorithms", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, Catalog())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

func decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(dst); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "malformed JSON: " + err.Error()})
		return false
	}
	return true
}

func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrInvalid):
		status = http.StatusBadRequest
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		status = statusClientClosedRequest
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding failures past WriteHeader can only be logged by the
	// server; the types here marshal unconditionally.
	_ = json.NewEncoder(w).Encode(v)
}
