package gateway

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/service"
)

// JobListResponse is the gateway's answer to GET /v1/jobs: the merged
// fleet-wide listing, with the backend prefix baked into every job ID
// (the same "b2-job-000017" form the submit path issues, so a listed
// job's StatusURL routes straight back through forwardJob).
type JobListResponse struct {
	Jobs []service.JobSummary `json:"jobs"`
	// NextCursor resumes the merged listing; it is a composite of
	// per-backend cursors ("b0=job-000003,b2=job-000001") but opaque to
	// clients — pass it back as ?after=.
	NextCursor string `json:"next_cursor,omitempty"`
	// Partial reports that at least one backend could not be listed;
	// Unreachable names them. The reachable majority still answers —
	// a listing that degrades beats one that disappears with its
	// weakest backend.
	Partial     bool     `json:"partial,omitempty"`
	Unreachable []string `json:"unreachable,omitempty"`
}

// maxListLimit mirrors the backends' page-size cap.
const maxListLimit = 100

// forwardJobList fans GET /v1/jobs out to every serving backend,
// rewrites each job's ID with its backend prefix, merges the pages by
// creation time, and cuts the merged page to the requested limit. The
// composite cursor records, per backend, the last job the merged page
// consumed, so the next page resumes every backend exactly where this
// one stopped.
func (g *Gateway) forwardJobList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	limit := maxListLimit
	if raw := q.Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 {
			writeJSON(w, http.StatusBadRequest, map[string]string{
				"error": fmt.Sprintf("limit %q is not a positive integer", raw),
			})
			return
		}
		if n < limit {
			limit = n
		}
	}
	for _, st := range q["state"] {
		switch st {
		case service.JobStatePending, service.JobStateRunning, service.JobStateDone, service.JobStateCancelled:
		default:
			writeJSON(w, http.StatusBadRequest, map[string]string{
				"error": fmt.Sprintf("unknown job state %q", st),
			})
			return
		}
	}
	cursors := parseListCursor(q.Get("after"))

	pool := g.routable(nil)
	if len(pool) == 0 {
		g.metrics.unroutable.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(int(g.cfg.ProbeInterval.Seconds())+1))
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "no serving backend"})
		return
	}

	type page struct {
		b    *Backend
		resp *service.JobListResponse
		err  error
	}
	pages := make([]page, len(pool))
	var wg sync.WaitGroup
	for i, b := range pool {
		wg.Add(1)
		go func() {
			defer wg.Done()
			bq := url.Values{}
			for _, st := range q["state"] {
				bq.Add("state", st)
			}
			if after := cursors[b.name]; after != "" {
				bq.Set("after", after)
			}
			bq.Set("limit", strconv.Itoa(limit))
			res := g.attempt(r.Context(), b, http.MethodGet, "/v1/jobs?"+bq.Encode(), r.Header, nil)
			if res.err != nil {
				b.errors.Add(1)
				b.noteFailure(g.cfg.UnhealthyThreshold)
				pages[i] = page{b: b, err: res.err}
				return
			}
			if res.status != http.StatusOK {
				pages[i] = page{b: b, err: fmt.Errorf("status %d", res.status)}
				return
			}
			var lr service.JobListResponse
			if err := json.Unmarshal(res.body, &lr); err != nil {
				pages[i] = page{b: b, err: err}
				return
			}
			pages[i] = page{b: b, resp: &lr}
		}()
	}
	wg.Wait()

	// Merge the reachable pages oldest-first. Backend sequences are
	// independent, so creation time is the only fleet-wide order there
	// is; the prefixed ID breaks ties deterministically.
	type entry struct {
		backend string
		job     service.JobSummary // ID already prefixed
		more    bool               // this backend has jobs past this one
	}
	var merged []entry
	out := &JobListResponse{Jobs: []service.JobSummary{}}
	backendMore := make(map[string]bool)
	for _, p := range pages {
		if p.err != nil {
			out.Partial = true
			out.Unreachable = append(out.Unreachable, p.b.name)
			continue
		}
		backendMore[p.b.name] = p.resp.NextCursor != ""
		for _, j := range p.resp.Jobs {
			j.ID = p.b.name + "-" + j.ID
			j.StatusURL = "/v1/jobs/" + j.ID
			merged = append(merged, entry{backend: p.b.name, job: j})
		}
	}
	sort.Slice(merged, func(a, b int) bool {
		if !merged[a].job.Created.Equal(merged[b].job.Created) {
			return merged[a].job.Created.Before(merged[b].job.Created)
		}
		return merged[a].job.ID < merged[b].job.ID
	})

	// Cut the merged page and advance each backend's cursor to the last
	// job of it the page consumed; untouched backends keep the cursor
	// the client sent.
	next := make(map[string]string, len(cursors))
	for name, c := range cursors {
		next[name] = c
	}
	more := false
	for i, e := range merged {
		if i >= limit {
			more = true
			break
		}
		out.Jobs = append(out.Jobs, e.job)
		// The unprefixed ID is the backend's own cursor space.
		next[e.backend] = strings.TrimPrefix(e.job.ID, e.backend+"-")
	}
	for _, m := range backendMore {
		more = more || m
	}
	if more {
		out.NextCursor = formatListCursor(next)
	}
	writeJSON(w, http.StatusOK, out)
}

// parseListCursor splits a composite cursor ("b0=job-000003,b2=...")
// into per-backend cursors. Unparseable pieces are dropped — cursors
// are opaque hints, and a stale or foreign one just restarts that
// backend's listing from the top.
func parseListCursor(raw string) map[string]string {
	out := make(map[string]string)
	if raw == "" {
		return out
	}
	for _, part := range strings.Split(raw, ",") {
		name, after, ok := strings.Cut(part, "=")
		if ok && name != "" && after != "" {
			out[name] = after
		}
	}
	return out
}

// formatListCursor renders per-backend cursors in stable (sorted) order.
func formatListCursor(cursors map[string]string) string {
	names := make([]string, 0, len(cursors))
	for name, c := range cursors {
		if c != "" {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, name := range names {
		parts[i] = name + "=" + cursors[name]
	}
	return strings.Join(parts, ",")
}
