package gateway

// Tests for the fleet-wide GET /v1/jobs fan-out: merged paging with
// the composite cursor, ID prefix rewriting, state filtering, degraded
// (partial) listings when a backend dies, and the cursor formats.

import (
	"encoding/json"
	"net/http"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/service"
)

// submitFleetJobs pushes n single-item jobs through the gateway and
// waits for all of them to finish, returning the prefixed IDs in
// submission order.
func submitFleetJobs(t *testing.T, gURL string, n int) []string {
	t.Helper()
	ids := make([]string, n)
	for i := range ids {
		body := `{"requests": [` + rankBody(int64(100+i), 0) + `]}`
		resp, payload := do(t, http.MethodPost, gURL+"/v1/jobs/rank", body)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d: %s", i, resp.StatusCode, payload)
		}
		var sub service.JobSubmitResponse
		if err := json.Unmarshal(payload, &sub); err != nil {
			t.Fatal(err)
		}
		ids[i] = sub.ID
		// Jobs are timestamp-merged; spacing the submissions keeps the
		// fleet-wide creation order deterministic for the test.
		time.Sleep(2 * time.Millisecond)
	}
	for _, id := range ids {
		deadline := time.Now().Add(10 * time.Second)
		for {
			resp, payload := do(t, http.MethodGet, gURL+"/v1/jobs/"+id, "")
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("poll %s: status %d", id, resp.StatusCode)
			}
			var st service.JobStatusResponse
			if err := json.Unmarshal(payload, &st); err != nil {
				t.Fatal(err)
			}
			if st.State == service.JobStateDone {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s stuck in %q", id, st.State)
			}
			time.Sleep(time.Millisecond)
		}
	}
	return ids
}

func getList(t *testing.T, gURL, query string, wantStatus int) *JobListResponse {
	t.Helper()
	resp, payload := do(t, http.MethodGet, gURL+"/v1/jobs"+query, "")
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET /v1/jobs%s: status %d, want %d: %s", query, resp.StatusCode, wantStatus, payload)
	}
	if wantStatus != http.StatusOK {
		return nil
	}
	var out JobListResponse
	if err := json.Unmarshal(payload, &out); err != nil {
		t.Fatal(err)
	}
	return &out
}

// TestGatewayJobListMerge: the merged listing covers every backend's
// jobs exactly once, IDs carry their backend prefix and route back
// through the gateway, and cursor paging walks the merged order
// without gaps or duplicates.
func TestGatewayJobListMerge(t *testing.T) {
	_, gsrv, _ := startFleet(t, 3, nil)
	ids := submitFleetJobs(t, gsrv.URL, 7)

	full := getList(t, gsrv.URL, "", http.StatusOK)
	if full.Partial || len(full.Unreachable) != 0 {
		t.Fatalf("healthy fleet listed partial: %+v", full)
	}
	if len(full.Jobs) != len(ids) {
		t.Fatalf("merged listing has %d jobs, want %d", len(full.Jobs), len(ids))
	}
	for _, j := range full.Jobs {
		if !strings.Contains(j.ID, "-job-") {
			t.Fatalf("listed ID %q lacks the backend prefix", j.ID)
		}
		if j.StatusURL != "/v1/jobs/"+j.ID {
			t.Fatalf("listed StatusURL %q does not route back through the gateway", j.StatusURL)
		}
		if j.State != service.JobStateDone {
			t.Fatalf("job %s listed as %q after completion", j.ID, j.State)
		}
	}
	// Same set as the submissions, each exactly once.
	want := append([]string(nil), ids...)
	got := make([]string, len(full.Jobs))
	for i, j := range full.Jobs {
		got[i] = j.ID
	}
	sort.Strings(want)
	sort.Strings(got)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merged set mismatch:\nwant %v\ngot  %v", want, got)
		}
	}
	// The merge is oldest-first fleet-wide.
	for i := 1; i < len(full.Jobs); i++ {
		if full.Jobs[i].Created.Before(full.Jobs[i-1].Created) {
			t.Fatalf("merged listing out of creation order at %d", i)
		}
	}

	// Page through with limit=3: same jobs, same order, no overlap.
	var paged []string
	query := "?limit=3"
	for pages := 0; ; pages++ {
		if pages > len(ids) {
			t.Fatal("cursor never exhausted")
		}
		page := getList(t, gsrv.URL, query, http.StatusOK)
		if len(page.Jobs) > 3 {
			t.Fatalf("page of %d jobs exceeds limit 3", len(page.Jobs))
		}
		for _, j := range page.Jobs {
			paged = append(paged, j.ID)
		}
		if page.NextCursor == "" {
			break
		}
		query = "?limit=3&after=" + page.NextCursor
	}
	if len(paged) != len(full.Jobs) {
		t.Fatalf("paged walk saw %d jobs, full listing %d", len(paged), len(full.Jobs))
	}
	for i := range paged {
		if paged[i] != full.Jobs[i].ID {
			t.Fatalf("paged walk diverged at %d: %q vs %q", i, paged[i], full.Jobs[i].ID)
		}
	}

	// State filters fan out too; malformed queries are gateway 400s.
	if page := getList(t, gsrv.URL, "?state=done", http.StatusOK); len(page.Jobs) != len(ids) {
		t.Fatalf("state=done listed %d jobs, want %d", len(page.Jobs), len(ids))
	}
	if page := getList(t, gsrv.URL, "?state=cancelled", http.StatusOK); len(page.Jobs) != 0 {
		t.Fatalf("state=cancelled listed %d jobs, want 0", len(page.Jobs))
	}
	getList(t, gsrv.URL, "?state=nope", http.StatusBadRequest)
	getList(t, gsrv.URL, "?limit=x", http.StatusBadRequest)
}

// TestGatewayJobListPartial: losing a backend degrades the listing to
// partial (with the dead backend named) instead of failing it.
func TestGatewayJobListPartial(t *testing.T) {
	g, gsrv, backends := startFleet(t, 2, nil)
	submitFleetJobs(t, gsrv.URL, 4)

	backends[0].Close()
	// The listing degrades immediately — no need to wait for the probe
	// loop to demote the backend, the fan-out's own failure marks it.
	page := getList(t, gsrv.URL, "", http.StatusOK)
	if !page.Partial || len(page.Unreachable) != 1 {
		t.Fatalf("listing over a dead backend: partial=%v unreachable=%v", page.Partial, page.Unreachable)
	}
	for _, j := range page.Jobs {
		if strings.HasPrefix(j.ID, page.Unreachable[0]+"-") {
			t.Fatalf("job %s listed from the unreachable backend", j.ID)
		}
	}
	_ = g
}

// TestListCursorRoundTrip pins the composite cursor codec.
func TestListCursorRoundTrip(t *testing.T) {
	in := map[string]string{"b0": "job-000003", "b2": "job-000001", "b10": "job-001000"}
	raw := formatListCursor(in)
	if raw != "b0=job-000003,b10=job-001000,b2=job-000001" {
		t.Fatalf("cursor format unstable: %q", raw)
	}
	out := parseListCursor(raw)
	if len(out) != len(in) {
		t.Fatalf("round trip lost entries: %v", out)
	}
	for k, v := range in {
		if out[k] != v {
			t.Fatalf("round trip mangled %q: %q", k, out[k])
		}
	}
	// Unparseable pieces are dropped, not fatal: cursors are hints.
	out = parseListCursor("b0=job-000001,garbage,=x,b1=")
	if len(out) != 1 || out["b0"] != "job-000001" {
		t.Fatalf("lenient parse: %v", out)
	}
	if formatListCursor(map[string]string{}) != "" {
		t.Fatal("empty cursor renders nonempty")
	}
}
