package gateway

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/service"
)

// rankBody builds a canonical rank request; seed and sigma vary the
// determinism / shard key under test.
func rankBody(seed int64, sigma float64) string {
	return fmt.Sprintf(`{
		"candidates": [
			{"id": "ava",  "score": 9.5, "group": "f"},
			{"id": "bo",   "score": 9.0, "group": "m"},
			{"id": "cy",   "score": 8.0, "group": "f"},
			{"id": "dee",  "score": 7.5, "group": "m"},
			{"id": "eli",  "score": 6.0, "group": "m"},
			{"id": "fran", "score": 5.0, "group": "f"}
		],
		"algorithm": "mallows-best",
		"theta": 1.5,
		"samples": 5,
		"sigma": %g,
		"seed": %d
	}`, sigma, seed)
}

// startFleet spins up n real fairrankd backends (service.NewServer on
// ephemeral ports) behind a gateway with test-speed probe and retry
// cadences, and blocks until every backend is serving.
func startFleet(t *testing.T, n int, mutate func(*Config)) (*Gateway, *httptest.Server, []*service.Server) {
	t.Helper()
	backends := make([]*service.Server, n)
	urls := make([]string, n)
	for i := range backends {
		srv, err := service.NewServer(service.ServerConfig{
			Config: service.Config{Workers: 2},
			Addr:   "127.0.0.1:0",
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		backends[i] = srv
		urls[i] = srv.URL()
	}
	cfg := Config{
		Backends:      urls,
		ProbeInterval: 5 * time.Millisecond,
		RetryBackoff:  2 * time.Millisecond,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	gsrv := httptest.NewServer(g.Handler())
	t.Cleanup(func() {
		gsrv.Close()
		g.Stop()
		for _, b := range backends {
			b.Close()
		}
	})
	waitServing(t, g, n)
	return g, gsrv, backends
}

func waitServing(t *testing.T, g *Gateway, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for g.Serving() < want {
		if time.Now().After(deadline) {
			t.Fatalf("fleet stuck at %d/%d serving", g.Serving(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

func waitBackendState(t *testing.T, b *Backend, want State) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for b.State() != want {
		if time.Now().After(deadline) {
			t.Fatalf("backend %s stuck in %s, want %s", b.Name(), b.State(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// do sends one request and returns the full response with its body
// buffered.
func do(t *testing.T, method, url, body string) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, payload
}

// TestGatewayBitIdentity pins the acceptance criterion: equal-seed
// responses through the gateway are byte-identical to direct fairrankd
// responses — for single ranks, batches, and the catalog.
func TestGatewayBitIdentity(t *testing.T) {
	_, gsrv, backends := startFleet(t, 2, nil)
	direct := backends[0].URL()

	batch := `{"requests": [` + rankBody(7, 0.5) + `,` + rankBody(8, 0.5) + `]}`
	cases := []struct {
		name, method, path, body string
	}{
		{"rank", http.MethodPost, "/v1/rank", rankBody(42, 0)},
		{"rank_batch", http.MethodPost, "/v1/rank/batch", batch},
		{"algorithms", http.MethodGet, "/v1/algorithms", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			gwResp, gwBody := do(t, tc.method, gsrv.URL+tc.path, tc.body)
			dResp, dBody := do(t, tc.method, direct+tc.path, tc.body)
			if gwResp.StatusCode != http.StatusOK || dResp.StatusCode != http.StatusOK {
				t.Fatalf("status gateway=%d direct=%d, want 200/200 (gateway body: %s)", gwResp.StatusCode, dResp.StatusCode, gwBody)
			}
			if string(gwBody) != string(dBody) {
				t.Errorf("gateway response diverges from direct fairrankd.\n--- direct\n%s\n--- gateway\n%s", dBody, gwBody)
			}
			if gct, dct := gwResp.Header.Get("Content-Type"), dResp.Header.Get("Content-Type"); gct != dct {
				t.Errorf("Content-Type: gateway %q, direct %q", gct, dct)
			}
		})
	}
}

// TestGatewayShardAffinity pins that one engine configuration pins to
// one backend: repeated requests sharing a shard key all land on a
// single backend, and a different key can land elsewhere — exactly the
// cache-locality contract the consistent hash exists for.
func TestGatewayShardAffinity(t *testing.T) {
	g, gsrv, _ := startFleet(t, 3, nil)

	hits := func() []int64 {
		counts := make([]int64, len(g.Backends()))
		for i, b := range g.Backends() {
			counts[i] = b.requests.Load()
		}
		return counts
	}
	before := hits()
	const sends = 6
	for i := 0; i < sends; i++ {
		resp, body := do(t, http.MethodPost, gsrv.URL+"/v1/rank", rankBody(int64(i), 0.25))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("send %d: status %d: %s", i, resp.StatusCode, body)
		}
	}
	after := hits()
	touched := 0
	for i := range after {
		if delta := after[i] - before[i]; delta > 0 {
			touched++
			if delta != sends {
				t.Fatalf("backend %s took %d of %d equal-key requests; affinity leaked", g.Backends()[i].Name(), delta, sends)
			}
		}
	}
	if touched != 1 {
		t.Fatalf("%d backends served one shard key, want exactly 1", touched)
	}

	// Every decision had a healthy owner, so none fell back.
	if p, f := g.metrics.pickPrimary.Load(), g.metrics.pickFallback.Load(); p < sends || f != 0 {
		t.Fatalf("picker split primary=%d fallback=%d, want ≥%d/0", p, f, sends)
	}
}

// TestGatewayFailoverOnKilledBackend kills one of three backends and
// pins the availability contract: every subsequent request still
// succeeds (rerouted via the retry loop), the dead backend is demoted
// to degraded, and the fallback path shows up in the picker metrics.
func TestGatewayFailoverOnKilledBackend(t *testing.T) {
	g, gsrv, backends := startFleet(t, 3, nil)
	backends[0].Close()

	// Spread requests over many shard keys so some keys' owner is the
	// dead backend — those must fail over, the rest route normally.
	for i := 0; i < 30; i++ {
		resp, body := do(t, http.MethodPost, gsrv.URL+"/v1/rank", rankBody(1, float64(i)/10))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d after backend kill: status %d: %s", i, resp.StatusCode, body)
		}
	}
	waitBackendState(t, g.Backends()[0], StateDegraded)

	// The dead backend's owned shards were retried elsewhere.
	if g.Backends()[0].errors.Load() == 0 {
		t.Fatal("dead backend recorded no failed attempts; the kill never exercised failover")
	}
	if g.metrics.pickFallback.Load() == 0 {
		t.Fatal("no fallback decisions recorded; all 30 keys avoiding the dead backend is implausible")
	}

	// Once degraded it leaves the routable pool entirely.
	reqs := g.Backends()[0].requests.Load()
	for i := 0; i < 10; i++ {
		resp, body := do(t, http.MethodPost, gsrv.URL+"/v1/rank", rankBody(2, float64(i)/10))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d with degraded backend: status %d: %s", i, resp.StatusCode, body)
		}
	}
	if got := g.Backends()[0].requests.Load(); got != reqs {
		t.Fatalf("degraded backend received %d new attempts, want 0", got-reqs)
	}
}

// TestGatewayJobLifecycle drives a job end to end through the gateway:
// the accepted ID carries the owning backend's prefix, polls and the
// final delete route by that prefix alone, and unprefixed or unknown
// IDs 404.
func TestGatewayJobLifecycle(t *testing.T) {
	_, gsrv, _ := startFleet(t, 2, nil)

	body := `{"requests": [` + rankBody(11, 0) + `,` + rankBody(12, 0) + `]}`
	resp, payload := do(t, http.MethodPost, gsrv.URL+"/v1/jobs/rank", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, payload)
	}
	var sub service.JobSubmitResponse
	if err := json.Unmarshal(payload, &sub); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sub.ID, "b0-job-") && !strings.HasPrefix(sub.ID, "b1-job-") {
		t.Fatalf("job ID %q lacks the backend prefix", sub.ID)
	}
	if sub.StatusURL != "/v1/jobs/"+sub.ID {
		t.Fatalf("status URL %q does not route back through the gateway ID %q", sub.StatusURL, sub.ID)
	}
	if sub.Total != 2 {
		t.Fatalf("submit total %d, want 2", sub.Total)
	}

	var st service.JobStatusResponse
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, payload = do(t, http.MethodGet, gsrv.URL+sub.StatusURL, "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll status %d: %s", resp.StatusCode, payload)
		}
		if err := json.Unmarshal(payload, &st); err != nil {
			t.Fatal(err)
		}
		if st.State == service.JobStateDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(st.Items) != 2 || st.Completed != 2 || st.Failed != 0 {
		t.Fatalf("done job items=%d completed=%d failed=%d, want 2/2/0", len(st.Items), st.Completed, st.Failed)
	}

	// Deleting a finished job is the backend's 409, passed through with
	// the conflict body intact; the result stays fetchable.
	resp, payload = do(t, http.MethodDelete, gsrv.URL+sub.StatusURL, "")
	if resp.StatusCode != http.StatusConflict || !strings.Contains(string(payload), "conflict") {
		t.Fatalf("delete finished job: status %d body %s, want 409", resp.StatusCode, payload)
	}
	if resp, _ = do(t, http.MethodGet, gsrv.URL+sub.StatusURL, ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("poll after refused delete: status %d, want 200", resp.StatusCode)
	}

	// An ID without a known backend prefix is the gateway's own 404 —
	// it never guesses a backend.
	resp, payload = do(t, http.MethodGet, gsrv.URL+"/v1/jobs/job-000001", "")
	if resp.StatusCode != http.StatusNotFound || !strings.Contains(string(payload), "backend prefix") {
		t.Fatalf("unprefixed ID: status %d body %s, want the gateway's 404", resp.StatusCode, payload)
	}
	// A well-formed prefix for a job the backend never saw passes the
	// backend's 404 through.
	if resp, _ = do(t, http.MethodGet, gsrv.URL+"/v1/jobs/b0-job-999999", ""); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: status %d, want 404", resp.StatusCode)
	}
}

// fakeServingBackend is an httptest backend that passes probes
// immediately and answers all other traffic with the given handler.
func fakeServingBackend(traffic http.HandlerFunc) *httptest.Server {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, &service.ReadyzResponse{Status: "ready"})
	})
	mux.HandleFunc("/", traffic)
	return httptest.NewServer(mux)
}

// startFakeFleet wires n scripted backends behind a gateway.
func startFakeFleet(t *testing.T, n int, traffic http.HandlerFunc, mutate func(*Config)) (*Gateway, *httptest.Server) {
	t.Helper()
	urls := make([]string, n)
	for i := range urls {
		srv := fakeServingBackend(traffic)
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	cfg := Config{
		Backends:        urls,
		ProbeInterval:   5 * time.Millisecond,
		RetryBackoff:    time.Millisecond,
		RetryBackoffMax: 5 * time.Millisecond,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	gsrv := httptest.NewServer(g.Handler())
	t.Cleanup(func() {
		gsrv.Close()
		g.Stop()
	})
	waitServing(t, g, n)
	return g, gsrv
}

// TestGatewaySingleFlightSubmitNotRetried pins the single-flight
// contract: a job submit that reaches a backend and fails with a
// non-refusal status is reported to the client, never resent — exactly
// one attempt crosses the wire.
func TestGatewaySingleFlightSubmitNotRetried(t *testing.T) {
	var hits atomic.Int64
	g, gsrv := startFakeFleet(t, 2, func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": "boom"})
	}, nil)

	resp, _ := do(t, http.MethodPost, gsrv.URL+"/v1/jobs/rank", rankBody(1, 0))
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("client saw %d, want the backend's 500 relayed", resp.StatusCode)
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("backend saw %d submit attempts, want exactly 1 (single-flight)", got)
	}

	// The idempotent rank path retries the same failure across backends.
	hits.Store(0)
	resp, _ = do(t, http.MethodPost, gsrv.URL+"/v1/rank", rankBody(1, 0))
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("rank client saw %d, want 500 after exhausting retries", resp.StatusCode)
	}
	if got := hits.Load(); got != 2 {
		t.Fatalf("rank path made %d attempts across 2 backends, want 2 (one each)", got)
	}
	_ = g
}

// TestGatewayRetryAfterPassthrough pins the saturation path: a fleet
// answering 429 is retried once per distinct backend, the terminal 429
// reaches the client with its Retry-After hint intact, and each
// backend was tried exactly once (tried-set exclusion).
func TestGatewayRetryAfterPassthrough(t *testing.T) {
	var hits atomic.Int64
	g, gsrv := startFakeFleet(t, 2, func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, map[string]string{"error": "saturated"})
	}, nil)

	resp, _ := do(t, http.MethodPost, gsrv.URL+"/v1/rank", rankBody(1, 0))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("client saw %d, want the fleet's 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want the backend's hint relayed", got)
	}
	if got := hits.Load(); got != 2 {
		t.Fatalf("fleet saw %d attempts, want 2 — one per backend, no backend hammered twice", got)
	}
	for _, b := range g.Backends() {
		if got := b.requests.Load(); got != 1 {
			t.Fatalf("backend %s saw %d attempts, want 1", b.Name(), got)
		}
	}
}

// TestGatewayUnroutable pins the empty-pool answer: with no backend
// serving, sharded routes refuse with 503, a Retry-After sized to the
// probe cadence, and an unroutable picker metric.
func TestGatewayUnroutable(t *testing.T) {
	g, err := New(Config{
		Backends:      []string{"http://127.0.0.1:1"},
		ProbeInterval: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Never started: the backend stays in probing and nothing routes.
	gsrv := httptest.NewServer(g.Handler())
	defer gsrv.Close()

	resp, payload := do(t, http.MethodPost, gsrv.URL+"/v1/rank", rankBody(1, 0))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(string(payload), "no serving backend") {
		t.Fatalf("body %s, want the no-serving-backend error", payload)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 carries no Retry-After hint")
	}
	if got := g.metrics.unroutable.Load(); got != 1 {
		t.Fatalf("unroutable metric = %d, want 1", got)
	}
}

// TestGatewayMetrics pins the observability surface after real
// traffic: route counters, per-backend attempt counts, the picker
// split, and the live-aggregated fleet engine view.
func TestGatewayMetrics(t *testing.T) {
	_, gsrv, _ := startFleet(t, 2, nil)

	const sends = 4
	for i := 0; i < sends; i++ {
		if resp, body := do(t, http.MethodPost, gsrv.URL+"/v1/rank", rankBody(int64(i), float64(i))); resp.StatusCode != http.StatusOK {
			t.Fatalf("send %d: status %d: %s", i, resp.StatusCode, body)
		}
	}
	resp, payload := do(t, http.MethodGet, gsrv.URL+"/v1/metrics", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	var m MetricsResponse
	if err := json.Unmarshal(payload, &m); err != nil {
		t.Fatal(err)
	}

	var rankRoute *RouteMetrics
	for i := range m.Routes {
		if m.Routes[i].Route == "POST /v1/rank" {
			rankRoute = &m.Routes[i]
		}
	}
	if rankRoute == nil || rankRoute.Requests != sends || rankRoute.Errors5xx != 0 {
		t.Fatalf("rank route counters %+v, want %d requests and no 5xx", rankRoute, sends)
	}
	if len(m.Backends) != 2 {
		t.Fatalf("%d backend entries, want 2", len(m.Backends))
	}
	var attempts int64
	for _, b := range m.Backends {
		attempts += b.Requests
		if b.State != "serving" || b.ProbeSuccesses == 0 {
			t.Fatalf("backend %s: state %s with %d probe successes, want a probed serving backend", b.Name, b.State, b.ProbeSuccesses)
		}
	}
	if attempts < sends {
		t.Fatalf("backends saw %d attempts total, want ≥ %d", attempts, sends)
	}
	if m.Picker.Primary+m.Picker.Fallback < sends {
		t.Fatalf("picker decisions %d+%d, want ≥ %d", m.Picker.Primary, m.Picker.Fallback, sends)
	}
	if m.Fleet.Backends != 2 || m.Fleet.Serving != 2 || m.Fleet.Reporting != 2 {
		t.Fatalf("fleet view %+v, want 2 backends all serving and reporting", m.Fleet)
	}
	if m.Fleet.Engine.Requests < sends || m.Fleet.Engine.Draws == 0 {
		t.Fatalf("fleet engine aggregate %+v, want the %d ranks' work summed in", m.Fleet.Engine, sends)
	}
}

// TestGatewayReadyz pins the gateway's own readiness contract: ready
// iff ≥ 1 backend serves, with per-backend states in the body.
func TestGatewayReadyz(t *testing.T) {
	g, gsrv, backends := startFleet(t, 2, nil)

	resp, payload := do(t, http.MethodGet, gsrv.URL+"/readyz", "")
	var rz ReadyzResponse
	if err := json.Unmarshal(payload, &rz); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || rz.Status != "ready" || rz.Serving != 2 || len(rz.Backends) != 2 {
		t.Fatalf("healthy fleet readyz: status %d body %s", resp.StatusCode, payload)
	}

	backends[0].Close()
	backends[1].Close()
	waitBackendState(t, g.Backends()[0], StateDegraded)
	waitBackendState(t, g.Backends()[1], StateDegraded)
	resp, payload = do(t, http.MethodGet, gsrv.URL+"/readyz", "")
	if err := json.Unmarshal(payload, &rz); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable || rz.Status != "unavailable" || rz.Serving != 0 {
		t.Fatalf("dead fleet readyz: status %d body %s, want 503 unavailable", resp.StatusCode, payload)
	}
}

// TestGatewayConcurrentTrafficWithBackendKill is the routing-path race
// stress (run under -race): live probers flip backend states while
// concurrent clients rank, batch, and scrape metrics, and a backend
// dies mid-run. Every client request must still succeed — the
// zero-client-visible-failures contract the fleet soak enforces at
// scale.
func TestGatewayConcurrentTrafficWithBackendKill(t *testing.T) {
	g, gsrv, backends := startFleet(t, 3, func(cfg *Config) {
		cfg.ProbeInterval = 2 * time.Millisecond
	})

	const clients, perClient = 6, 25
	var wg sync.WaitGroup
	var failures atomic.Int64
	var killOnce sync.Once
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				if c == 0 && i == perClient/2 {
					killOnce.Do(func() { backends[2].Close() })
				}
				var resp *http.Response
				var body []byte
				switch i % 3 {
				case 0:
					resp, body = do(t, http.MethodPost, gsrv.URL+"/v1/rank", rankBody(int64(i), float64(c)+float64(i)/100))
				case 1:
					resp, body = do(t, http.MethodPost, gsrv.URL+"/v1/rank/batch",
						`{"requests": [`+rankBody(int64(i), float64(c))+`]}`)
				default:
					resp, body = do(t, http.MethodGet, gsrv.URL+"/v1/metrics", "")
				}
				if resp.StatusCode != http.StatusOK {
					failures.Add(1)
					t.Errorf("client %d request %d: status %d: %s", c, i, resp.StatusCode, body)
				}
			}
		}(c)
	}
	wg.Wait()
	if failures.Load() > 0 {
		t.Fatalf("%d client-visible failures during the backend kill, want 0", failures.Load())
	}
	waitBackendState(t, g.Backends()[2], StateDegraded)
}
