// Package gateway is the fleet scale-out layer: an HTTP reverse proxy
// that shards fairrankd traffic across N backends.
//
// Routing is a consistent hash on the ranker-cache key — the
// (algorithm, central, weak_k, sigma) tuple that keys the backends'
// reusable-engine cache — so every request needing one engine
// configuration lands on the same backend and that backend's Mallows
// (n, θ) table cache stays hot for its shard. Backend selection sits
// behind one Choose-style Picker interface (consistent-hash primary,
// least-loaded fallback when the shard owner is unhealthy), each
// backend runs a supervised probe lifecycle (probing → serving →
// degraded → draining, driven by periodic /healthz + /readyz polls),
// and the forwarding path retries with backoff — honoring Retry-After
// on 429/503, bounding each attempt with its own timeout, and keeping
// non-idempotent job submissions single-flight.
//
// The gateway serves its own GET /v1/metrics (per-backend
// request/error/retry/inflight counters, picker decisions, probe state
// transitions) plus an aggregated fleet view summing the backends'
// engine metrics, and a GET /readyz that is ready iff at least one
// backend is serving. cmd/fairrank-gateway exposes it over HTTP;
// fairrank-soak's -fleet mode spawns it in-process around real
// service.Server backends.
package gateway

import (
	"net/http"
	"net/url"
	"time"
)

// Config parameterizes the gateway. Backends is required; everything
// else has serving-grade defaults.
type Config struct {
	// Backends lists the fairrankd base URLs (e.g.
	// "http://10.0.0.1:8080"). Backend i is named "b<i>"; the name
	// seeds the hash ring and prefixes gateway-issued job IDs, so keep
	// the order stable across gateway restarts.
	Backends []string

	// ProbeInterval is the cadence of the per-backend health/readiness
	// probe loop. Default 2s.
	ProbeInterval time.Duration
	// ProbeTimeout bounds each probe round trip. Default 1s.
	ProbeTimeout time.Duration
	// HealthyThreshold is the consecutive probe successes a probing or
	// degraded backend needs to become serving. Default 2.
	HealthyThreshold int
	// UnhealthyThreshold is the consecutive failures (probe or forward)
	// that degrade a serving backend. Default 2.
	UnhealthyThreshold int

	// MaxAttempts bounds the forwarding attempts per proxied request,
	// first try included. Default 3.
	MaxAttempts int
	// RetryBackoff is the sleep before the first retry; it doubles per
	// subsequent retry. A 429/503 carrying Retry-After overrides the
	// computed backoff (capped at RetryBackoffMax). Default 50ms.
	RetryBackoff time.Duration
	// RetryBackoffMax caps both the exponential backoff and an honored
	// Retry-After hint. Default 2s.
	RetryBackoffMax time.Duration
	// AttemptTimeout bounds each forwarding attempt; the inbound
	// request's own context still cancels everything. Default 60s.
	AttemptTimeout time.Duration

	// VirtualNodes is the number of hash-ring points per backend;
	// more points spread shards more evenly. Default 128.
	VirtualNodes int
	// MaxBodyBytes bounds inbound request bodies. Default 32 MiB.
	MaxBodyBytes int64

	// Picker overrides the backend selection policy. Default: the
	// consistent-hash primary with least-loaded fallback
	// (NewDefaultPicker).
	Picker Picker
	// Client overrides the upstream HTTP client (tests). Default: a
	// keep-alive transport sized for fleet fan-out, with no overall
	// timeout — AttemptTimeout bounds attempts.
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.HealthyThreshold <= 0 {
		c.HealthyThreshold = 2
	}
	if c.UnhealthyThreshold <= 0 {
		c.UnhealthyThreshold = 2
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 50 * time.Millisecond
	}
	if c.RetryBackoffMax <= 0 {
		c.RetryBackoffMax = 2 * time.Second
	}
	if c.AttemptTimeout <= 0 {
		c.AttemptTimeout = 60 * time.Second
	}
	if c.VirtualNodes <= 0 {
		c.VirtualNodes = 128
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.Client == nil {
		c.Client = &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        256,
				MaxIdleConnsPerHost: 64,
				IdleConnTimeout:     90 * time.Second,
			},
		}
	}
	return c
}

// validate rejects an unusable backend list before anything starts.
func (c Config) validate() error {
	if len(c.Backends) == 0 {
		return errNoBackends
	}
	seen := make(map[string]bool, len(c.Backends))
	for _, b := range c.Backends {
		u, err := url.Parse(b)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return errBadBackend(b)
		}
		if seen[b] {
			return errDupBackend(b)
		}
		seen[b] = true
	}
	return nil
}
