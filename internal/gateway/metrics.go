package gateway

import (
	"context"
	"encoding/json"
	"net/http"
	"sort"
	"sync/atomic"

	"repro/internal/service"
)

// metrics holds the gateway's own counters: per-route totals and the
// picker's decision split. Per-backend counters live on the Backend.
// Routes register at handler construction, so reads are lock-free.
type metrics struct {
	routes map[string]*routeStats

	pickPrimary  atomic.Int64 // shard owner chosen
	pickFallback atomic.Int64 // owner unhealthy, fallback chose
	unroutable   atomic.Int64 // no serving backend at all
}

type routeStats struct {
	requests  atomic.Int64
	errors4xx atomic.Int64
	errors5xx atomic.Int64
}

func newGatewayMetrics() *metrics {
	return &metrics{routes: make(map[string]*routeStats)}
}

func (m *metrics) route(pattern string) *routeStats {
	rs, ok := m.routes[pattern]
	if !ok {
		rs = &routeStats{}
		m.routes[pattern] = rs
	}
	return rs
}

func (rs *routeStats) observe(status int) {
	switch {
	case status >= 500:
		rs.errors5xx.Add(1)
	case status >= 400:
		rs.errors4xx.Add(1)
	}
}

// MetricsResponse answers the gateway's GET /v1/metrics: the gateway's
// own route counters, the per-backend forwarding/probe state, the
// picker decision split, and the aggregated fleet view.
type MetricsResponse struct {
	// Routes lists one counter set per gateway route, sorted by
	// pattern.
	Routes []RouteMetrics `json:"routes"`
	// Backends lists one entry per configured backend, in config
	// order.
	Backends []BackendMetrics `json:"backends"`
	// Picker reports the routing policy and its decision split.
	Picker PickerMetrics `json:"picker"`
	// Fleet aggregates the backends' own engine metrics, fetched live
	// from each serving backend's GET /v1/metrics at snapshot time.
	Fleet FleetMetrics `json:"fleet"`
}

// RouteMetrics is the counter set of one gateway route.
type RouteMetrics struct {
	Route     string `json:"route"`
	Requests  int64  `json:"requests"`
	Errors4xx int64  `json:"errors_4xx"`
	Errors5xx int64  `json:"errors_5xx"`
}

// BackendMetrics is the gateway's view of one backend: lifecycle
// state, forwarding counters, probe history, and the load snapshot
// from the last successful readiness probe.
type BackendMetrics struct {
	Name  string `json:"name"`
	URL   string `json:"url"`
	State string `json:"state"`
	// Requests counts forwarding attempts targeted at the backend;
	// Errors the subset that failed (transport error or retryable
	// status); Retries the retries those failures caused; InFlight the
	// attempts executing right now.
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
	Retries  int64 `json:"retries"`
	InFlight int64 `json:"in_flight"`
	// ProbeSuccesses/ProbeFailures count probe rounds; Transitions the
	// lifecycle state changes they drove.
	ProbeSuccesses int64 `json:"probe_successes"`
	ProbeFailures  int64 `json:"probe_failures"`
	Transitions    int64 `json:"transitions"`
	// ReportedInFlight/ReportedQueued/ReportedJobs echo the backend's
	// last /readyz load snapshot — the least-loaded picker's input.
	ReportedInFlight int64 `json:"reported_in_flight"`
	ReportedQueued   int64 `json:"reported_queued"`
	ReportedJobs     int   `json:"reported_jobs"`
}

// PickerMetrics reports the routing policy's decision split: Primary
// counts decisions that landed on the shard's hash owner, Fallback
// decisions rerouted off an unroutable owner, Unroutable requests
// refused because no backend was serving.
type PickerMetrics struct {
	Policy     string `json:"policy"`
	Primary    int64  `json:"primary"`
	Fallback   int64  `json:"fallback"`
	Unroutable int64  `json:"unroutable"`
}

// FleetMetrics is the aggregated fleet view: engine counters summed
// over the backends that answered a live GET /v1/metrics fan-out.
// Backends counts the fleet size, Reporting how many answered (a
// degraded backend drops out of the sum, so totals can regress between
// snapshots), Serving how many are currently routable.
type FleetMetrics struct {
	Backends  int                   `json:"backends"`
	Serving   int                   `json:"serving"`
	Reporting int                   `json:"reporting"`
	Engine    service.EngineMetrics `json:"engine"`
}

// Metrics assembles the gateway snapshot, fanning out to the serving
// backends for the aggregated fleet view.
func (g *Gateway) Metrics(ctx context.Context) *MetricsResponse {
	resp := &MetricsResponse{
		Picker: PickerMetrics{
			Policy:     g.picker.Name(),
			Primary:    g.metrics.pickPrimary.Load(),
			Fallback:   g.metrics.pickFallback.Load(),
			Unroutable: g.metrics.unroutable.Load(),
		},
	}
	names := make([]string, 0, len(g.metrics.routes))
	for name := range g.metrics.routes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rs := g.metrics.routes[name]
		resp.Routes = append(resp.Routes, RouteMetrics{
			Route:     name,
			Requests:  rs.requests.Load(),
			Errors4xx: rs.errors4xx.Load(),
			Errors5xx: rs.errors5xx.Load(),
		})
	}
	resp.Fleet.Backends = len(g.backends)
	for _, b := range g.backends {
		b.mu.Lock()
		reported, jobs := b.reported, b.reportedJobs
		b.mu.Unlock()
		resp.Backends = append(resp.Backends, BackendMetrics{
			Name:             b.name,
			URL:              b.url,
			State:            b.State().String(),
			Requests:         b.requests.Load(),
			Errors:           b.errors.Load(),
			Retries:          b.retries.Load(),
			InFlight:         b.inflight.Load(),
			ProbeSuccesses:   b.probeOK.Load(),
			ProbeFailures:    b.probeFail.Load(),
			Transitions:      b.transitions.Load(),
			ReportedInFlight: reported.InFlight,
			ReportedQueued:   reported.Queued,
			ReportedJobs:     jobs,
		})
		if b.State() == StateServing {
			resp.Fleet.Serving++
		}
	}
	for _, b := range g.backends {
		if b.State() != StateServing {
			continue
		}
		var m service.MetricsResponse
		if g.fetchBackendMetrics(ctx, b, &m) {
			resp.Fleet.Reporting++
			e := &resp.Fleet.Engine
			e.RankersCached += m.Engine.RankersCached
			e.Requests += m.Engine.Requests
			e.Draws += m.Engine.Draws
			e.DrawsFull += m.Engine.DrawsFull
			e.DrawsTruncated += m.Engine.DrawsTruncated
			for noise, c := range m.Engine.DrawsTruncatedByNoise {
				if e.DrawsTruncatedByNoise == nil {
					e.DrawsTruncatedByNoise = make(map[string]int64)
				}
				e.DrawsTruncatedByNoise[noise] += c
			}
			e.PoolGets += m.Engine.PoolGets
			e.PoolMisses += m.Engine.PoolMisses
			e.TableHits += m.Engine.TableHits
			e.TableMisses += m.Engine.TableMisses
		}
	}
	return resp
}

// fetchBackendMetrics pulls one backend's /v1/metrics for the fleet
// aggregate, bounded by the probe timeout so a wedged backend cannot
// stall the gateway's own metrics endpoint.
func (g *Gateway) fetchBackendMetrics(ctx context.Context, b *Backend, dst *service.MetricsResponse) bool {
	ctx, cancel := context.WithTimeout(ctx, g.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/v1/metrics", nil)
	if err != nil {
		return false
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false
	}
	return json.NewDecoder(resp.Body).Decode(dst) == nil
}
