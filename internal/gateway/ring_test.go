package gateway

import (
	"fmt"
	"testing"
)

func ringNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("b%d", i)
	}
	return names
}

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		// Shaped like real shard keys: algorithm|central|weak_k|sigma.
		keys[i] = fmt.Sprintf("algo-%d|weak|%d|%g", i%7, i%23, float64(i%11)/10)
	}
	return keys
}

// TestRingDeterminism pins that the ring is a pure function of its
// inputs: two rings built from the same names agree on every owner and
// every failover sequence — the property that lets any number of
// gateway replicas route identically with no coordination.
func TestRingDeterminism(t *testing.T) {
	a := NewRing(ringNames(8), 128)
	b := NewRing(ringNames(8), 128)
	for _, key := range ringKeys(2000) {
		if ao, bo := a.Owner(key), b.Owner(key); ao != bo {
			t.Fatalf("owner(%q): ring A says %d, ring B says %d", key, ao, bo)
		}
		as, bs := a.Sequence(key), b.Sequence(key)
		if len(as) != len(bs) {
			t.Fatalf("sequence(%q): lengths %d vs %d", key, len(as), len(bs))
		}
		for i := range as {
			if as[i] != bs[i] {
				t.Fatalf("sequence(%q)[%d]: %d vs %d", key, i, as[i], bs[i])
			}
		}
	}
}

// TestRingSequence pins the failover-order contract: the sequence
// starts at the owner and enumerates every backend exactly once.
func TestRingSequence(t *testing.T) {
	r := NewRing(ringNames(6), 64)
	for _, key := range ringKeys(500) {
		seq := r.Sequence(key)
		if len(seq) != 6 {
			t.Fatalf("sequence(%q) has %d entries, want 6", key, len(seq))
		}
		if seq[0] != r.Owner(key) {
			t.Fatalf("sequence(%q) starts at %d, owner is %d", key, seq[0], r.Owner(key))
		}
		seen := make(map[int]bool)
		for _, b := range seq {
			if seen[b] {
				t.Fatalf("sequence(%q) repeats backend %d", key, b)
			}
			seen[b] = true
		}
	}
}

// TestRingMinimalRemapOnRemove pins the consistent-hash property the
// fleet's cache locality rests on: removing a backend moves only the
// keys it owned. Every other shard keeps its owner — and therefore its
// backend's hot Mallows tables.
func TestRingMinimalRemapOnRemove(t *testing.T) {
	const n = 8
	names := ringNames(n)
	full := NewRing(names, 128)
	// Removing the last name keeps surviving indices aligned between
	// the two rings.
	reduced := NewRing(names[:n-1], 128)
	removed := n - 1
	moved := 0
	keys := ringKeys(5000)
	for _, key := range keys {
		was, is := full.Owner(key), reduced.Owner(key)
		if was != removed && is != was {
			t.Fatalf("key %q moved %d → %d although backend %d was the one removed", key, was, is, removed)
		}
		if was == removed {
			moved++
		}
	}
	// Sanity: the removed backend owned roughly 1/n of the keys, so the
	// remap actually exercised the property rather than matching on an
	// empty set.
	if moved == 0 {
		t.Fatal("removed backend owned no keys; the remap check tested nothing")
	}
	if frac := float64(moved) / float64(len(keys)); frac > 3.0/n {
		t.Fatalf("removed backend owned %.1f%% of keys, want roughly %.1f%% — the ring is badly unbalanced", frac*100, 100.0/n)
	}
}

// TestRingMinimalRemapOnAdd pins the mirror property: adding a backend
// only moves keys onto the newcomer.
func TestRingMinimalRemapOnAdd(t *testing.T) {
	const n = 8
	names := ringNames(n + 1)
	before := NewRing(names[:n], 128)
	after := NewRing(names, 128)
	added := n
	gained := 0
	for _, key := range ringKeys(5000) {
		was, is := before.Owner(key), after.Owner(key)
		if is != was && is != added {
			t.Fatalf("key %q moved %d → %d although only backend %d was added", key, was, is, added)
		}
		if is == added {
			gained++
		}
	}
	if gained == 0 {
		t.Fatal("added backend gained no keys")
	}
}

// TestRingEmpty pins the degenerate cases.
func TestRingEmpty(t *testing.T) {
	r := NewRing(nil, 128)
	if got := r.Owner("key"); got != -1 {
		t.Fatalf("empty ring owner = %d, want -1", got)
	}
	if got := r.Sequence("key"); got != nil {
		t.Fatalf("empty ring sequence = %v, want nil", got)
	}
}
