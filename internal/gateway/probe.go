package gateway

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/service"
)

// State is a backend's position in the supervised lifecycle:
//
//	probing ──(HealthyThreshold consecutive probe successes)──▶ serving
//	serving ──(UnhealthyThreshold consecutive failures)───────▶ degraded
//	serving ──(readyz answers "draining")─────────────────────▶ draining
//	degraded/draining ──(HealthyThreshold successes)──────────▶ serving
//	draining ──(UnhealthyThreshold failures)──────────────────▶ degraded
//
// Only serving backends receive new shard-routed work. Job-affinity
// traffic (GET/DELETE /v1/jobs/{id}) follows its backend regardless of
// state — a draining backend still owes answers for the jobs it holds.
type State int32

const (
	// StateProbing is the initial state: the backend has not yet proven
	// itself healthy and receives no traffic.
	StateProbing State = iota
	// StateServing marks a backend passing probes and receiving work.
	StateServing
	// StateDegraded marks a backend failing probes or forwards; it
	// receives no new work until probes recover.
	StateDegraded
	// StateDraining marks a backend that answered readyz with
	// "draining": it is shutting down gracefully and must not receive
	// new work, but still completes what it holds.
	StateDraining
)

func (s State) String() string {
	switch s {
	case StateProbing:
		return "probing"
	case StateServing:
		return "serving"
	case StateDegraded:
		return "degraded"
	case StateDraining:
		return "draining"
	}
	return "unknown"
}

// Backend is one fairrankd instance in the pool: its identity, its
// lifecycle state, the gateway-side forwarding counters, and the load
// snapshot from its last successful readiness probe.
type Backend struct {
	name string // "b<i>", stable in config order
	url  string // base URL, no trailing slash

	state atomic.Int32

	// Gateway-side forwarding counters.
	requests atomic.Int64 // attempts targeted at this backend
	errors   atomic.Int64 // attempts that failed (transport or retryable status)
	retries  atomic.Int64 // retries this backend's failures caused
	inflight atomic.Int64 // attempts currently executing

	// Probe counters.
	probeOK     atomic.Int64
	probeFail   atomic.Int64
	transitions atomic.Int64

	// mu guards the consecutive-outcome counters driving transitions
	// and the reported load snapshot.
	mu         sync.Mutex
	consecOK   int
	consecFail int
	reported   service.ReadyzQueue
	reportedJobs int
}

// Name is the backend's stable identity ("b0", "b1", …).
func (b *Backend) Name() string { return b.name }

// URL is the backend's base URL.
func (b *Backend) URL() string { return b.url }

// State is the backend's current lifecycle state.
func (b *Backend) State() State { return State(b.state.Load()) }

// LoadScore ranks backends for the least-loaded picker: the in-flight
// plus queued work the backend reported on its last readiness probe
// (the /readyz snapshot exists precisely so this needs no /v1/metrics
// scrape), plus the requests this gateway currently has in flight to
// it — the between-probe delta the snapshot can't see.
func (b *Backend) LoadScore() int64 {
	b.mu.Lock()
	reported := b.reported.InFlight + b.reported.Queued + int64(b.reportedJobs)
	b.mu.Unlock()
	return reported + b.inflight.Load()
}

// setState flips the lifecycle state, counting the transition.
func (b *Backend) setState(next State) {
	if State(b.state.Swap(int32(next))) != next {
		b.transitions.Add(1)
	}
}

// probeSuccess records one healthy probe round (readyz 200) with its
// load snapshot, promoting the backend to serving at the healthy
// threshold.
func (b *Backend) probeSuccess(threshold int, q service.ReadyzQueue, jobs int) {
	b.probeOK.Add(1)
	b.mu.Lock()
	b.consecOK++
	b.consecFail = 0
	b.reported = q
	b.reportedJobs = jobs
	promote := b.consecOK >= threshold
	b.mu.Unlock()
	if promote {
		b.setState(StateServing)
	}
}

// probeDraining records a graceful-shutdown answer (readyz 503 with
// status "draining"): the backend is alive but must stop receiving new
// work immediately — no threshold.
func (b *Backend) probeDraining() {
	b.probeOK.Add(1)
	b.mu.Lock()
	b.consecOK = 0
	b.consecFail = 0
	b.mu.Unlock()
	b.setState(StateDraining)
}

// probeFailure records one failed probe round, demoting the backend at
// the unhealthy threshold.
func (b *Backend) probeFailure(threshold int) {
	b.probeFail.Add(1)
	b.noteFailure(threshold)
}

// noteFailure is the shared demotion path for probe failures and
// forward-attempt transport failures: the proxy reporting a dead
// connection accelerates detection instead of waiting out the probe
// cadence.
func (b *Backend) noteFailure(threshold int) {
	b.mu.Lock()
	b.consecFail++
	b.consecOK = 0
	demote := b.consecFail >= threshold
	b.mu.Unlock()
	if demote {
		b.setState(StateDegraded)
	}
}

// prober is one backend's supervisor: a loop polling /healthz and
// /readyz every ProbeInterval and feeding the outcomes into the
// backend's state machine.
type prober struct {
	cfg    Config
	b      *Backend
	client *http.Client
	stop   chan struct{}
	done   chan struct{}
}

func newProber(cfg Config, b *Backend) *prober {
	return &prober{cfg: cfg, b: b, client: cfg.Client, stop: make(chan struct{}), done: make(chan struct{})}
}

// run probes immediately, then on the configured cadence, until Stop.
func (p *prober) run() {
	defer close(p.done)
	ticker := time.NewTicker(p.cfg.ProbeInterval)
	defer ticker.Stop()
	p.probeOnce()
	for {
		select {
		case <-p.stop:
			return
		case <-ticker.C:
			p.probeOnce()
		}
	}
}

func (p *prober) halt() {
	close(p.stop)
	<-p.done
}

// probeOnce runs one probe round: liveness first (a dead process fails
// fast), then readiness with its load snapshot.
func (p *prober) probeOnce() {
	ctx, cancel := context.WithTimeout(context.Background(), p.cfg.ProbeTimeout)
	defer cancel()
	if !p.get(ctx, "/healthz", nil) {
		p.b.probeFailure(p.cfg.UnhealthyThreshold)
		return
	}
	var ready service.ReadyzResponse
	status, ok := p.getJSON(ctx, "/readyz", &ready)
	switch {
	case ok && status == http.StatusOK:
		p.b.probeSuccess(p.cfg.HealthyThreshold, ready.Queue, ready.JobsRunning)
	case ok && status == http.StatusServiceUnavailable && ready.Status == "draining":
		p.b.probeDraining()
	default:
		p.b.probeFailure(p.cfg.UnhealthyThreshold)
	}
}

// get fetches path and reports HTTP 200, decoding into dst when
// non-nil.
func (p *prober) get(ctx context.Context, path string, dst any) bool {
	status, ok := p.getJSON(ctx, path, dst)
	return ok && status == http.StatusOK
}

// getJSON fetches path, returning the status and whether the round
// trip (and decode, when dst is non-nil) succeeded.
func (p *prober) getJSON(ctx context.Context, path string, dst any) (int, bool) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.b.url+path, nil)
	if err != nil {
		return 0, false
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return 0, false
	}
	defer resp.Body.Close()
	if dst == nil {
		_, err = io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, err == nil
	}
	if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
		return resp.StatusCode, false
	}
	return resp.StatusCode, true
}
