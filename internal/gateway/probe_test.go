package gateway

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/service"
)

// fakeBackendModes drives a scriptable backend for probe tests:
// "ready" answers both probes healthily, "draining" answers readyz
// with the graceful-shutdown body, "dead" fails healthz.
func fakeProbeTarget(mode *atomic.Value) *httptest.Server {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if mode.Load() == "dead" {
			http.Error(w, "dead", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"status":"ok"}`))
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		resp := service.ReadyzResponse{
			Status:      "ready",
			Queue:       service.ReadyzQueue{Workers: 4, Depth: 16, InFlight: 3, Queued: 2},
			JobsRunning: 1,
		}
		if mode.Load() == "draining" {
			resp.Status = "draining"
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		json.NewEncoder(w).Encode(&resp)
	})
	return httptest.NewServer(mux)
}

// TestProbeLifecycle drives the full state machine through direct
// probe rounds: probing → serving at the healthy threshold, serving →
// draining immediately on a draining readyz, draining → serving on
// recovery, serving → degraded at the unhealthy threshold, degraded →
// serving again — with the readyz load snapshot captured along the
// way.
func TestProbeLifecycle(t *testing.T) {
	var mode atomic.Value
	mode.Store("ready")
	srv := fakeProbeTarget(&mode)
	defer srv.Close()

	cfg := Config{
		Backends:           []string{srv.URL},
		HealthyThreshold:   2,
		UnhealthyThreshold: 2,
		ProbeInterval:      time.Hour, // probeOnce is driven by hand
	}.withDefaults()
	b := &Backend{name: "b0", url: srv.URL}
	p := newProber(cfg, b)

	step := func(wantState State, what string) {
		t.Helper()
		if got := b.State(); got != wantState {
			t.Fatalf("%s: state = %s, want %s", what, got, wantState)
		}
	}

	step(StateProbing, "initial")
	p.probeOnce()
	step(StateProbing, "one success below the healthy threshold")
	p.probeOnce()
	step(StateServing, "second success")

	// The successful readyz recorded its load snapshot.
	if got := b.LoadScore(); got != 3+2+1 {
		t.Fatalf("LoadScore = %d, want 6 (reported 3 in-flight + 2 queued + 1 job)", got)
	}

	mode.Store("draining")
	p.probeOnce()
	step(StateDraining, "draining readyz demotes immediately, no threshold")

	mode.Store("ready")
	p.probeOnce()
	step(StateDraining, "one recovery below the healthy threshold")
	p.probeOnce()
	step(StateServing, "recovered")

	mode.Store("dead")
	p.probeOnce()
	step(StateServing, "one failure below the unhealthy threshold")
	p.probeOnce()
	step(StateDegraded, "second failure")

	mode.Store("ready")
	p.probeOnce()
	p.probeOnce()
	step(StateServing, "degraded backend recovered")

	if ok, fail := b.probeOK.Load(), b.probeFail.Load(); ok != 7 || fail != 2 {
		t.Fatalf("probe counters ok=%d fail=%d, want 7/2", ok, fail)
	}
	if tr := b.transitions.Load(); tr != 5 {
		t.Fatalf("transitions = %d, want 5 (probing→serving→draining→serving→degraded→serving)", tr)
	}
}

// TestProbeUnreachableBackend pins that a connection-refused backend
// degrades and never serves.
func TestProbeUnreachableBackend(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	url := srv.URL
	srv.Close() // nothing listens anymore

	cfg := Config{Backends: []string{url}, UnhealthyThreshold: 2, ProbeInterval: time.Hour}.withDefaults()
	b := &Backend{name: "b0", url: url}
	p := newProber(cfg, b)
	p.probeOnce()
	p.probeOnce()
	if got := b.State(); got != StateDegraded {
		t.Fatalf("state = %s, want degraded", got)
	}
}

// TestProberLoop pins the supervisor loop end to end: a started prober
// promotes a healthy backend on its own cadence, demotes it when the
// backend dies, and halts cleanly.
func TestProberLoop(t *testing.T) {
	var mode atomic.Value
	mode.Store("ready")
	srv := fakeProbeTarget(&mode)
	defer srv.Close()

	cfg := Config{
		Backends:           []string{srv.URL},
		ProbeInterval:      2 * time.Millisecond,
		HealthyThreshold:   2,
		UnhealthyThreshold: 2,
	}.withDefaults()
	b := &Backend{name: "b0", url: srv.URL}
	p := newProber(cfg, b)
	go p.run()
	defer p.halt()

	waitState := func(want State, what string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for b.State() != want {
			if time.Now().After(deadline) {
				t.Fatalf("%s: state stuck at %s, want %s", what, b.State(), want)
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitState(StateServing, "healthy backend")
	mode.Store("dead")
	waitState(StateDegraded, "dead backend")
	mode.Store("ready")
	waitState(StateServing, "recovered backend")
}
