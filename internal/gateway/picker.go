package gateway

import (
	"math/rand"
	"sync"
)

// Picker chooses which backend receives a shard-keyed request — the
// one pluggable decision point of the routing path (the same shape as
// allocator strategies behind a single Choose interface). pool holds
// the currently routable candidates: serving backends the forwarding
// loop has not already tried for this request. Choose returns nil to
// decline (empty pool); it must not mutate pool.
//
// Implementations must be safe for concurrent use — probes flip
// backend states while Choose runs.
type Picker interface {
	// Name identifies the policy in metrics and flags.
	Name() string
	// Choose picks one backend from pool for the shard key.
	Choose(key string, pool []*Backend) *Backend
}

// HashPicker routes by consistent hash: the first pool member in ring
// order from the key's owner. With the owner routable this pins every
// shard to one backend (hot engine caches); with it excluded the walk
// yields the deterministic failover order — the backend that would
// inherit the shard if the owner were removed from the ring.
type HashPicker struct {
	ring     *Ring
	backends []*Backend
}

// NewHashPicker builds the ring picker over the fleet's backends.
func NewHashPicker(ring *Ring, backends []*Backend) *HashPicker {
	return &HashPicker{ring: ring, backends: backends}
}

// Name implements Picker.
func (p *HashPicker) Name() string { return "hash" }

// Choose implements Picker: the first pool member in ring order.
func (p *HashPicker) Choose(key string, pool []*Backend) *Backend {
	for _, i := range p.ring.Sequence(key) {
		b := p.backends[i]
		for _, cand := range pool {
			if cand == b {
				return b
			}
		}
	}
	return nil
}

// Owner returns the shard's owner of record — the ring's choice over
// the whole fleet, health ignored. The routing metrics compare the
// actual choice against it to count primary vs fallback decisions.
func (p *HashPicker) Owner(key string) *Backend {
	i := p.ring.Owner(key)
	if i < 0 {
		return nil
	}
	return p.backends[i]
}

// LeastLoadedPicker ignores the key and picks the pool member with the
// lowest load score (backend-reported in-flight + queued work from its
// last readiness probe, plus this gateway's own in-flight count), ties
// broken by name so equal-load choices stay deterministic.
type LeastLoadedPicker struct{}

// Name implements Picker.
func (LeastLoadedPicker) Name() string { return "least-loaded" }

// Choose implements Picker.
func (LeastLoadedPicker) Choose(_ string, pool []*Backend) *Backend {
	var best *Backend
	var bestScore int64
	for _, b := range pool {
		score := b.LoadScore()
		if best == nil || score < bestScore || (score == bestScore && b.name < best.name) {
			best, bestScore = b, score
		}
	}
	return best
}

// RandomPicker spreads load uniformly at random — the baseline policy
// for workloads whose engine configurations are too diverse to shard.
type RandomPicker struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// NewRandomPicker seeds the picker; equal seeds give equal pick
// sequences, which keeps tests replayable.
func NewRandomPicker(seed int64) *RandomPicker {
	return &RandomPicker{rng: rand.New(rand.NewSource(seed))}
}

// Name implements Picker.
func (p *RandomPicker) Name() string { return "random" }

// Choose implements Picker.
func (p *RandomPicker) Choose(_ string, pool []*Backend) *Backend {
	if len(pool) == 0 {
		return nil
	}
	p.mu.Lock()
	i := p.rng.Intn(len(pool))
	p.mu.Unlock()
	return pool[i]
}

// FailoverPicker is the default policy: the consistent-hash owner
// while it is routable, the least-loaded routable backend when it is
// not. Falling back by load rather than by ring successor keeps an
// unhealthy owner's whole shard from dogpiling onto one neighbor.
type FailoverPicker struct {
	Primary  *HashPicker
	Fallback Picker
}

// NewDefaultPicker wires the hash-primary/least-loaded-fallback
// composite over the fleet.
func NewDefaultPicker(ring *Ring, backends []*Backend) *FailoverPicker {
	return &FailoverPicker{Primary: NewHashPicker(ring, backends), Fallback: LeastLoadedPicker{}}
}

// Name implements Picker.
func (p *FailoverPicker) Name() string { return "hash+least-loaded" }

// Choose implements Picker: the shard owner if it is in the pool, the
// fallback's choice otherwise.
func (p *FailoverPicker) Choose(key string, pool []*Backend) *Backend {
	owner := p.Primary.Owner(key)
	for _, cand := range pool {
		if cand == owner {
			return owner
		}
	}
	return p.Fallback.Choose(key, pool)
}
