package gateway

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// Ring is a consistent-hash ring over backend indices. Each backend
// contributes `replicas` virtual points (FNV-1a of "name#i"), sorted on
// a 64-bit circle; a key is owned by the backend of the first point at
// or clockwise of the key's hash.
//
// The construction gives the two properties the fleet needs:
//
//   - determinism: the ring is a pure function of (names, replicas), so
//     every gateway instance with the same backend list routes every
//     shard key identically;
//   - minimal remap: adding a backend only moves keys onto it, and
//     removing one only moves the keys it owned — all other shard→owner
//     assignments (and therefore the backends' hot Mallows table
//     caches) are untouched.
//
// The ring is immutable after New; health is not its concern. Callers
// overlay liveness by walking Sequence until a routable backend
// appears.
type Ring struct {
	points []ringPoint // sorted by hash
	n      int         // distinct backends
}

type ringPoint struct {
	hash    uint64
	backend int
}

// NewRing builds the ring for the named backends with the given number
// of virtual points each.
func NewRing(names []string, replicas int) *Ring {
	r := &Ring{points: make([]ringPoint, 0, len(names)*replicas), n: len(names)}
	for i, name := range names {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(name + "#" + strconv.Itoa(v)), backend: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Equal hashes (vanishingly rare) tie-break on backend index so
		// the ring stays a pure function of its inputs.
		return r.points[a].backend < r.points[b].backend
	})
	return r
}

// Owner returns the index of the backend owning key, or -1 on an empty
// ring.
func (r *Ring) Owner(key string) int {
	if len(r.points) == 0 {
		return -1
	}
	return r.points[r.at(key)].backend
}

// Sequence returns every backend index in ring order starting from
// key's owner — the deterministic failover preference: the owner first,
// then the backends that would inherit the shard if the ones before
// them disappeared.
func (r *Ring) Sequence(key string) []int {
	if len(r.points) == 0 {
		return nil
	}
	seq := make([]int, 0, r.n)
	seen := make([]bool, r.n)
	for i, start := 0, r.at(key); i < len(r.points) && len(seq) < r.n; i++ {
		b := r.points[(start+i)%len(r.points)].backend
		if !seen[b] {
			seen[b] = true
			seq = append(seq, b)
		}
	}
	return seq
}

// at locates the first point at or clockwise of key's hash.
func (r *Ring) at(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the circle's first point
	}
	return i
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
