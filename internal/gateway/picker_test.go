package gateway

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/service"
)

// testFleet builds n backends (all serving unless told otherwise) with
// the ring/pickers wired the way New does, without any HTTP.
func testFleet(n int) ([]*Backend, *Ring) {
	backends := make([]*Backend, n)
	names := make([]string, n)
	for i := range backends {
		backends[i] = &Backend{name: fmt.Sprintf("b%d", i), url: fmt.Sprintf("http://backend-%d", i)}
		backends[i].state.Store(int32(StateServing))
		names[i] = backends[i].name
	}
	return backends, NewRing(names, 128)
}

func poolOf(backends []*Backend, except map[*Backend]bool) []*Backend {
	pool := make([]*Backend, 0, len(backends))
	for _, b := range backends {
		if !except[b] {
			pool = append(pool, b)
		}
	}
	return pool
}

// TestHashPickerFailoverOrdering pins that excluding backends from the
// pool walks the ring in its deterministic failover order: the choice
// with k backends excluded is the (k+1)-th entry of the key's ring
// sequence.
func TestHashPickerFailoverOrdering(t *testing.T) {
	backends, ring := testFleet(5)
	p := NewHashPicker(ring, backends)
	for _, key := range ringKeys(200) {
		seq := ring.Sequence(key)
		excluded := map[*Backend]bool{}
		for step := 0; step < len(seq); step++ {
			got := p.Choose(key, poolOf(backends, excluded))
			want := backends[seq[step]]
			if got != want {
				t.Fatalf("key %q step %d: chose %s, ring order wants %s", key, step, got.Name(), want.Name())
			}
			excluded[got] = true
		}
		if got := p.Choose(key, nil); got != nil {
			t.Fatalf("key %q: empty pool chose %s, want nil", key, got.Name())
		}
	}
}

// TestFailoverPickerPrimaryAndFallback pins the composite policy: the
// shard owner while it is in the pool, the least-loaded member once it
// is not.
func TestFailoverPickerPrimaryAndFallback(t *testing.T) {
	backends, ring := testFleet(4)
	p := NewDefaultPicker(ring, backends)
	key := "mallows-best|weak|10|0"
	owner := p.Primary.Owner(key)

	if got := p.Choose(key, poolOf(backends, nil)); got != owner {
		t.Fatalf("healthy owner: chose %s, want owner %s", got.Name(), owner.Name())
	}

	// Load the survivors unevenly; with the owner excluded the fallback
	// must pick the least-loaded, not the ring successor.
	var lightest *Backend
	for _, b := range backends {
		if b == owner {
			continue
		}
		b.inflight.Store(50)
		if lightest == nil {
			lightest = b
		}
	}
	lightest.inflight.Store(1)
	got := p.Choose(key, poolOf(backends, map[*Backend]bool{owner: true}))
	if got != lightest {
		t.Fatalf("unhealthy owner: chose %s (load %d), want least-loaded %s", got.Name(), got.LoadScore(), lightest.Name())
	}
	for _, b := range backends {
		b.inflight.Store(0)
	}
}

// TestLeastLoadedPicker pins the load scoring: the backend-reported
// readyz snapshot plus the gateway's own in-flight count, ties broken
// by name for determinism.
func TestLeastLoadedPicker(t *testing.T) {
	backends, _ := testFleet(3)
	p := LeastLoadedPicker{}
	pool := poolOf(backends, nil)

	// All idle: the name tie-break keeps the choice deterministic.
	if got := p.Choose("", pool); got != backends[0] {
		t.Fatalf("idle fleet: chose %s, want b0 by tie-break", got.Name())
	}

	// Reported load (from the /readyz snapshot) dominates.
	backends[0].mu.Lock()
	backends[0].reported = service.ReadyzQueue{InFlight: 4, Queued: 3}
	backends[0].mu.Unlock()
	backends[1].inflight.Store(2)
	if got := p.Choose("", pool); got != backends[2] {
		t.Fatalf("loaded fleet: chose %s, want idle b2", got.Name())
	}

	// Gateway-side in-flight covers the staleness between probes.
	backends[2].inflight.Store(9)
	if got := p.Choose("", pool); got != backends[1] {
		t.Fatalf("stale-probe fleet: chose %s, want b1 (score 2)", got.Name())
	}
}

// TestRandomPickerSeeded pins that equal seeds give equal pick
// sequences and that picks stay inside the pool.
func TestRandomPickerSeeded(t *testing.T) {
	backends, _ := testFleet(4)
	pool := poolOf(backends, nil)
	a, b := NewRandomPicker(7), NewRandomPicker(7)
	for i := 0; i < 100; i++ {
		ga, gb := a.Choose("", pool), b.Choose("", pool)
		if ga != gb {
			t.Fatalf("pick %d: %s vs %s under equal seeds", i, ga.Name(), gb.Name())
		}
	}
	if got := a.Choose("", nil); got != nil {
		t.Fatalf("empty pool chose %s, want nil", got.Name())
	}
}

// TestPickerRaceUnderStateFlips stresses every picker while probe-like
// goroutines flip backend states and load reports concurrently — the
// routing path must stay race-free (run under -race) and always return
// a pool member.
func TestPickerRaceUnderStateFlips(t *testing.T) {
	backends, ring := testFleet(6)
	pickers := []Picker{
		NewHashPicker(ring, backends),
		LeastLoadedPicker{},
		NewRandomPicker(1),
		NewDefaultPicker(ring, backends),
	}
	stop := make(chan struct{})
	var flippers sync.WaitGroup
	for _, b := range backends {
		flippers.Add(1)
		go func(b *Backend) {
			defer flippers.Done()
			states := []State{StateServing, StateDegraded, StateProbing, StateDraining, StateServing}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				b.setState(states[i%len(states)])
				b.probeSuccess(1, service.ReadyzQueue{InFlight: int64(i % 17), Queued: int64(i % 5)}, i%3)
				b.inflight.Add(1)
				b.inflight.Add(-1)
			}
		}(b)
	}
	var routers sync.WaitGroup
	keys := ringKeys(64)
	for w := 0; w < 4; w++ {
		routers.Add(1)
		go func(w int) {
			defer routers.Done()
			for i := 0; i < 2000; i++ {
				key := keys[(i+w)%len(keys)]
				// The routing path's snapshot: serving backends only.
				pool := make([]*Backend, 0, len(backends))
				for _, b := range backends {
					if b.State() == StateServing {
						pool = append(pool, b)
					}
				}
				if len(pool) == 0 {
					continue
				}
				p := pickers[i%len(pickers)]
				got := p.Choose(key, pool)
				if got == nil {
					t.Errorf("%s.Choose returned nil for a non-empty pool", p.Name())
					return
				}
				found := false
				for _, b := range pool {
					if b == got {
						found = true
						break
					}
				}
				if !found {
					t.Errorf("%s.Choose returned %s, not a pool member", p.Name(), got.Name())
					return
				}
			}
		}(w)
	}
	routers.Wait()
	close(stop)
	flippers.Wait()
}
