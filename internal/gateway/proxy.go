package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/service"
)

var errNoBackends = errors.New("gateway: no backends configured")

func errBadBackend(u string) error {
	return fmt.Errorf("gateway: backend %q is not an absolute URL", u)
}

func errDupBackend(u string) error {
	return fmt.Errorf("gateway: backend %q listed twice", u)
}

// Gateway shards fairrankd traffic across a probed backend pool.
// Construct with New, launch the probe supervisors with Start, expose
// Handler over HTTP, and Stop when done.
type Gateway struct {
	cfg      Config
	client   *http.Client
	backends []*Backend
	byName   map[string]*Backend
	ring     *Ring
	hash     *HashPicker // owner-of-record, for the primary/fallback split
	picker   Picker
	metrics  *metrics
	probers  []*prober
}

// New validates the configuration and builds the gateway. Backends
// start in the probing state; nothing is routable until Start's probe
// supervisors promote them.
func New(cfg Config) (*Gateway, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	g := &Gateway{
		cfg:     cfg,
		client:  cfg.Client,
		byName:  make(map[string]*Backend, len(cfg.Backends)),
		metrics: newGatewayMetrics(),
	}
	names := make([]string, len(cfg.Backends))
	for i, u := range cfg.Backends {
		b := &Backend{name: "b" + strconv.Itoa(i), url: strings.TrimRight(u, "/")}
		g.backends = append(g.backends, b)
		g.byName[b.name] = b
		names[i] = b.name
	}
	g.ring = NewRing(names, cfg.VirtualNodes)
	g.hash = NewHashPicker(g.ring, g.backends)
	g.picker = cfg.Picker
	if g.picker == nil {
		g.picker = NewDefaultPicker(g.ring, g.backends)
	}
	return g, nil
}

// Backends exposes the pool, in config order (read-only).
func (g *Gateway) Backends() []*Backend { return g.backends }

// Serving counts backends currently in the serving state.
func (g *Gateway) Serving() int {
	n := 0
	for _, b := range g.backends {
		if b.State() == StateServing {
			n++
		}
	}
	return n
}

// Start launches one probe supervisor per backend. Each probes
// immediately, so a healthy fleet becomes routable after
// HealthyThreshold probe rounds.
func (g *Gateway) Start() {
	for _, b := range g.backends {
		p := newProber(g.cfg, b)
		g.probers = append(g.probers, p)
		go p.run()
	}
}

// Stop halts the probe supervisors and drops idle upstream
// connections. In-flight forwards complete.
func (g *Gateway) Stop() {
	for _, p := range g.probers {
		p.halt()
	}
	g.probers = nil
	g.client.CloseIdleConnections()
}

// ReadyzResponse answers the gateway's GET /readyz: ready iff at least
// one backend is serving, with the per-backend lifecycle states so
// operators (and the fleet soak harness) can see the pool converge.
type ReadyzResponse struct {
	// Status is "ready" (HTTP 200) or "unavailable" (HTTP 503).
	Status string `json:"status"`
	// Serving counts routable backends.
	Serving int `json:"serving"`
	// Backends reports each backend's lifecycle state, in config order.
	Backends []BackendState `json:"backends"`
}

// BackendState is one backend's lifecycle state in the readiness body.
type BackendState struct {
	Name  string `json:"name"`
	State string `json:"state"`
}

// Readyz assembles the gateway readiness snapshot.
func (g *Gateway) Readyz() (*ReadyzResponse, bool) {
	resp := &ReadyzResponse{Backends: make([]BackendState, len(g.backends))}
	for i, b := range g.backends {
		resp.Backends[i] = BackendState{Name: b.name, State: b.State().String()}
		if b.State() == StateServing {
			resp.Serving++
		}
	}
	if resp.Serving > 0 {
		resp.Status = "ready"
		return resp, true
	}
	resp.Status = "unavailable"
	return resp, false
}

// Handler exposes the gateway over HTTP. The ranking and job-submit
// routes are shard-routed through the picker; job polls and deletes
// follow the backend prefix baked into gateway-issued job IDs; the
// catalog route goes to any serving backend; metrics, healthz, and
// readyz are answered by the gateway itself.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	route := func(pattern string, h http.HandlerFunc) {
		rs := g.metrics.route(pattern)
		mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
			rs.requests.Add(1)
			sw := &statusRecorder{ResponseWriter: w}
			h(sw, r)
			rs.observe(sw.Status())
		})
	}
	route("POST /v1/rank", func(w http.ResponseWriter, r *http.Request) {
		g.forwardSharded(w, r, false, nil)
	})
	route("POST /v1/rank/batch", func(w http.ResponseWriter, r *http.Request) {
		g.forwardSharded(w, r, false, nil)
	})
	route("POST /v1/jobs/rank", func(w http.ResponseWriter, r *http.Request) {
		// Job submissions are single-flight, and accepted jobs come
		// back with the owning backend's name baked into the job ID so
		// later polls need no gateway-side affinity state.
		g.forwardSharded(w, r, true, rewriteJobSubmit)
	})
	route("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		// The fleet-wide listing: fan out to every serving backend,
		// merge, and page with a composite cursor (see forwardJobList).
		g.forwardJobList(w, r)
	})
	route("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		g.forwardJob(w, r)
	})
	route("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		g.forwardJob(w, r)
	})
	route("GET /v1/algorithms", func(w http.ResponseWriter, r *http.Request) {
		// The catalog is identical fleet-wide; any serving backend
		// answers. The empty shard key still hashes deterministically.
		g.forward(w, r, "", http.MethodGet, "/v1/algorithms", nil, false, nil)
	})
	route("GET /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, g.Metrics(r.Context()))
	})
	route("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	route("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		resp, ready := g.Readyz()
		status := http.StatusOK
		if !ready {
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, resp)
	})
	return mux
}

// shardProbe is the minimal decode of a rank request: exactly the
// fields of the backends' ranker-cache key, so requests sharing one
// reusable engine land on one backend.
type shardProbe struct {
	Algorithm string  `json:"algorithm"`
	Central   string  `json:"central"`
	WeakK     int     `json:"weak_k"`
	Sigma     float64 `json:"sigma"`
}

type batchShardProbe struct {
	Requests []shardProbe `json:"requests"`
}

// shardKey derives the routing key from a request body: the
// engine-shaping fields of the request (a batch is keyed by its first
// entry — batches mixing engine configurations still rank correctly,
// they just cross shards). Undecodable bodies key to the default
// shard; the owning backend rejects them with the exact 400 a direct
// client would get.
func shardKey(body []byte) string {
	var p shardProbe
	var b batchShardProbe
	if err := json.Unmarshal(body, &b); err == nil && len(b.Requests) > 0 {
		p = b.Requests[0]
	} else {
		_ = json.Unmarshal(body, &p)
	}
	return p.Algorithm + "|" + p.Central + "|" + strconv.Itoa(p.WeakK) + "|" + strconv.FormatFloat(p.Sigma, 'g', -1, 64)
}

// upstreamResult is one forwarding attempt's outcome: a transport
// error, or a fully buffered response. Buffering is what makes retry
// safe — the client never sees bytes from an attempt that dies
// mid-response.
type upstreamResult struct {
	status int
	header http.Header
	body   []byte
	err    error
}

// transform optionally rewrites a relayed response (the job-submit ID
// prefix); it runs only on the final, non-retried response.
type transform func(b *Backend, res *upstreamResult)

// forwardSharded reads and bounds the body, derives the shard key, and
// forwards.
func (g *Gateway) forwardSharded(w http.ResponseWriter, r *http.Request, singleFlight bool, tf transform) {
	r.Body = http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		writeJSON(w, status, map[string]string{"error": "reading request body: " + err.Error()})
		return
	}
	g.forward(w, r, shardKey(body), r.Method, r.URL.Path, body, singleFlight, tf)
}

// forward runs the retrying forwarding loop: pick a backend (shard
// owner first, fallback when it is unroutable), attempt with a
// per-attempt timeout, and on a retryable failure back off and try the
// next backend — excluding every backend already tried, so a dying
// backend is never hammered twice for one request. Retries honor
// Retry-After on 429/503 saturation answers. Single-flight requests
// (job submits) are retried only when the attempt provably never
// reached a backend (a dial failure) or the backend provably refused
// it (429/503); any other failure is reported rather than resent.
func (g *Gateway) forward(w http.ResponseWriter, r *http.Request, key, method, path string, body []byte, singleFlight bool, tf transform) {
	owner := g.hash.Owner(key)
	tried := make(map[*Backend]bool)
	backoff := g.cfg.RetryBackoff
	var last *upstreamResult
	for attempt := 0; attempt < g.cfg.MaxAttempts; attempt++ {
		pool := g.routable(tried)
		if len(pool) == 0 {
			break
		}
		b := g.picker.Choose(key, pool)
		if b == nil {
			break
		}
		if b == owner {
			g.metrics.pickPrimary.Add(1)
		} else {
			g.metrics.pickFallback.Add(1)
		}
		res := g.attempt(r.Context(), b, method, path, r.Header, body)
		if done := g.settle(w, r, b, res, singleFlight, tf); done {
			return
		}
		tried[b] = true
		last = res
		if attempt == g.cfg.MaxAttempts-1 {
			break
		}
		b.retries.Add(1)
		wait := backoff
		if res.err == nil {
			if ra := retryAfterHint(res.header); ra > 0 {
				wait = ra
			}
		}
		if wait > g.cfg.RetryBackoffMax {
			wait = g.cfg.RetryBackoffMax
		}
		select {
		case <-r.Context().Done():
			writeJSON(w, statusClientClosedRequest, map[string]string{"error": "client cancelled during retry backoff"})
			return
		case <-time.After(wait):
		}
		backoff *= 2
	}
	g.exhausted(w, last, tried)
}

// settle decides one attempt's fate: relay the response (done), or
// record the failure and let the loop retry (not done). It writes the
// terminal response itself for the failures that must not retry — a
// cancelled client, a single-flight request that may have reached the
// backend.
func (g *Gateway) settle(w http.ResponseWriter, r *http.Request, b *Backend, res *upstreamResult, singleFlight bool, tf transform) bool {
	if res.err == nil && !retryableStatus(res.status, singleFlight) {
		if tf != nil {
			tf(b, res)
		}
		relay(w, res)
		return true
	}
	b.errors.Add(1)
	if res.err == nil {
		// A retryable saturation/unavailability status: the backend
		// answered, so no failure is noted against its lifecycle.
		return false
	}
	b.noteFailure(g.cfg.UnhealthyThreshold)
	if r.Context().Err() != nil {
		// The client went away (or its deadline passed) mid-attempt;
		// nothing to retry for.
		writeJSON(w, statusClientClosedRequest, map[string]string{"error": "client cancelled: " + res.err.Error()})
		return true
	}
	if singleFlight && !dialError(res.err) {
		// The request may have reached the backend and died mid-air; a
		// resend could double-submit the job. Report instead.
		writeJSON(w, http.StatusBadGateway, map[string]string{
			"error": "job submission failed after reaching a backend; not retried (single-flight): " + res.err.Error(),
		})
		return true
	}
	return false
}

// exhausted writes the terminal failure after the retry loop gives up:
// the last upstream answer when there was one (a saturated fleet's 429
// passes through, Retry-After intact), 503 when no backend was ever
// routable, 502 otherwise.
func (g *Gateway) exhausted(w http.ResponseWriter, last *upstreamResult, tried map[*Backend]bool) {
	switch {
	case last != nil && last.err == nil:
		relay(w, last)
	case last != nil:
		writeJSON(w, http.StatusBadGateway, map[string]string{
			"error": fmt.Sprintf("all %d backend attempts failed; last: %v", len(tried), last.err),
		})
	default:
		g.metrics.unroutable.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(int(g.cfg.ProbeInterval.Seconds())+1))
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "no serving backend"})
	}
}

// attempt forwards once to b, buffering the full response.
func (g *Gateway) attempt(ctx context.Context, b *Backend, method, path string, inbound http.Header, body []byte) *upstreamResult {
	b.requests.Add(1)
	b.inflight.Add(1)
	defer b.inflight.Add(-1)
	ctx, cancel := context.WithTimeout(ctx, g.cfg.AttemptTimeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, b.url+path, rd)
	if err != nil {
		return &upstreamResult{err: err}
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if id := inbound.Get("X-Request-Id"); id != "" {
		req.Header.Set("X-Request-Id", id)
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return &upstreamResult{err: err}
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return &upstreamResult{err: err}
	}
	return &upstreamResult{status: resp.StatusCode, header: resp.Header, body: payload}
}

// forwardJob routes GET/DELETE /v1/jobs/{id} by the backend prefix a
// gateway-issued job ID carries ("b2-job-000017" lives on backend b2),
// so polls and cancels reach the store that holds the job with no
// affinity table — the routing survives gateway restarts. Transport
// errors retry on the same backend only: no other backend has the job.
func (g *Gateway) forwardJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	name, rest, ok := strings.Cut(id, "-")
	b := g.byName[name]
	if !ok || b == nil || rest == "" {
		writeJSON(w, http.StatusNotFound, map[string]string{
			"error": fmt.Sprintf("unknown job %q: gateway job IDs carry their backend prefix (e.g. %q)", id, "b0-job-000001"),
		})
		return
	}
	path := "/v1/jobs/" + rest
	backoff := g.cfg.RetryBackoff
	var res *upstreamResult
	for attempt := 0; attempt < g.cfg.MaxAttempts; attempt++ {
		res = g.attempt(r.Context(), b, r.Method, path, r.Header, nil)
		if res.err == nil {
			relay(w, res)
			return
		}
		b.errors.Add(1)
		b.noteFailure(g.cfg.UnhealthyThreshold)
		if r.Context().Err() != nil {
			writeJSON(w, statusClientClosedRequest, map[string]string{"error": "client cancelled: " + res.err.Error()})
			return
		}
		if attempt == g.cfg.MaxAttempts-1 {
			break
		}
		b.retries.Add(1)
		wait := backoff
		if wait > g.cfg.RetryBackoffMax {
			wait = g.cfg.RetryBackoffMax
		}
		time.Sleep(wait)
		backoff *= 2
	}
	writeJSON(w, http.StatusBadGateway, map[string]string{
		"error": fmt.Sprintf("backend %s holding job %s is unreachable: %v", b.name, id, res.err),
	})
}

// rewriteJobSubmit prefixes an accepted job's ID (and status URL) with
// the owning backend's name — the whole affinity mechanism.
func rewriteJobSubmit(b *Backend, res *upstreamResult) {
	if res.status != http.StatusAccepted {
		return
	}
	var sub service.JobSubmitResponse
	if err := json.Unmarshal(res.body, &sub); err != nil {
		return
	}
	sub.ID = b.name + "-" + sub.ID
	sub.StatusURL = "/v1/jobs/" + sub.ID
	var buf bytes.Buffer
	if json.NewEncoder(&buf).Encode(&sub) == nil {
		res.body = buf.Bytes()
	}
}

// routable snapshots the serving backends not yet tried this request.
func (g *Gateway) routable(tried map[*Backend]bool) []*Backend {
	pool := make([]*Backend, 0, len(g.backends))
	for _, b := range g.backends {
		if b.State() == StateServing && !tried[b] {
			pool = append(pool, b)
		}
	}
	return pool
}

// retryableStatus reports whether a buffered upstream status may be
// retried on another backend. Saturation (429) and unavailability
// (502/503) are always retryable — the backend refused the work.
// 500 retries only for idempotent requests: equal seeds rank
// identically, so re-running them elsewhere is safe; a job submit is
// not resent past a response that proves acceptance was possible.
func retryableStatus(status int, singleFlight bool) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusBadGateway, http.StatusServiceUnavailable:
		return true
	case http.StatusInternalServerError:
		return !singleFlight
	}
	return false
}

// dialError reports whether err failed before any bytes reached the
// backend — the only transport failure a single-flight request may
// retry.
func dialError(err error) bool {
	var op *net.OpError
	return errors.As(err, &op) && op.Op == "dial"
}

// retryAfterHint parses an integer-seconds Retry-After header (the
// form fairrankd emits); 0 means no hint.
func retryAfterHint(h http.Header) time.Duration {
	if h == nil {
		return 0
	}
	secs, err := strconv.Atoi(h.Get("Retry-After"))
	if err != nil || secs <= 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// relay writes a buffered upstream response to the client verbatim:
// status, content type, saturation hints, and body bytes — equal-seed
// responses through the gateway stay bit-identical to direct ones.
func relay(w http.ResponseWriter, res *upstreamResult) {
	if ct := res.header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := res.header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(res.status)
	_, _ = w.Write(res.body)
}

// statusClientClosedRequest mirrors fairrankd's 499 for client
// cancellations observed at the gateway.
const statusClientClosedRequest = 499

// statusRecorder captures the response status for the route counters.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(status int) {
	if sr.status == 0 {
		sr.status = status
	}
	sr.ResponseWriter.WriteHeader(status)
}

func (sr *statusRecorder) Write(p []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	return sr.ResponseWriter.Write(p)
}

func (sr *statusRecorder) Status() int {
	if sr.status == 0 {
		return http.StatusOK
	}
	return sr.status
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
