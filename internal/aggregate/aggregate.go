// Package aggregate implements rank aggregation: combining a collection
// of rankings (votes) into one consensus ranking. The paper's §IV-A
// names "the result of a rank aggregation problem" as a natural central
// ranking for the Mallows mechanism, and its related work (Wei et al.,
// Chakraborty et al.) builds fair rankings on top of exactly these
// aggregates.
//
// Provided aggregators:
//
//   - KemenyExact   — the Kendall tau median ranking, exact via Held–Karp
//     style bitmask DP (NP-hard in general; practical to ~20 items)
//   - Footrule      — the Spearman footrule median via minimum-cost
//     bipartite matching (polynomial; a classic 2-approximation of Kemeny)
//   - Borda         — items by mean rank (a 5-approximation of Kemeny and
//     a consistent estimator of the Mallows center)
//   - Copeland      — items by pairwise majority wins
package aggregate

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"repro/internal/assignment"
	"repro/internal/perm"
	"repro/internal/rankdist"
)

// MaxKemenyItems bounds the exact Kemeny solver's bitmask DP.
const MaxKemenyItems = 20

// validateVotes checks a non-empty collection of equal-size rankings.
func validateVotes(votes []perm.Perm) (int, error) {
	if len(votes) == 0 {
		return 0, fmt.Errorf("aggregate: no votes")
	}
	n := len(votes[0])
	for i, v := range votes {
		if len(v) != n {
			return 0, fmt.Errorf("aggregate: vote %d ranks %d items, want %d", i, len(v), n)
		}
		if err := v.Validate(); err != nil {
			return 0, fmt.Errorf("aggregate: vote %d: %w", i, err)
		}
	}
	return n, nil
}

// prefCounts returns pref[a][b] = number of votes ranking a before b.
func prefCounts(votes []perm.Perm, n int) [][]int {
	pref := make([][]int, n)
	for i := range pref {
		pref[i] = make([]int, n)
	}
	for _, v := range votes {
		pos := v.Positions()
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				if pos[a] < pos[b] {
					pref[a][b]++
				} else {
					pref[b][a]++
				}
			}
		}
	}
	return pref
}

// KemenyCost returns the total Kendall tau distance from p to the votes
// — the objective Kemeny aggregation minimizes.
func KemenyCost(p perm.Perm, votes []perm.Perm) (int64, error) {
	var total int64
	for i, v := range votes {
		d, err := rankdist.KendallTau(p, v)
		if err != nil {
			return 0, fmt.Errorf("aggregate: vote %d: %w", i, err)
		}
		total += d
	}
	return total, nil
}

// KemenyExact returns a ranking minimizing the total Kendall tau
// distance to the votes, together with that optimal cost. Exact dynamic
// programming over subsets: appending item i to a placed set S costs the
// votes preferring each unplaced j≠i over i. O(2ⁿ·n²) time, O(2ⁿ) space;
// n is capped at MaxKemenyItems.
func KemenyExact(votes []perm.Perm) (perm.Perm, int64, error) {
	n, err := validateVotes(votes)
	if err != nil {
		return nil, 0, err
	}
	if n > MaxKemenyItems {
		return nil, 0, fmt.Errorf("aggregate: exact Kemeny supports ≤ %d items, have %d", MaxKemenyItems, n)
	}
	if n == 0 {
		return perm.Perm{}, 0, nil
	}
	pref := prefCounts(votes, n)

	size := 1 << n
	dp := make([]int64, size)
	parent := make([]int8, size)
	for s := 1; s < size; s++ {
		dp[s] = math.MaxInt64
	}
	for s := 0; s < size-1; s++ {
		if dp[s] == math.MaxInt64 {
			continue
		}
		for i := 0; i < n; i++ {
			if s&(1<<i) != 0 {
				continue
			}
			// Cost of placing i next: every item j still unplaced after i
			// ends up below i, flipping the votes that prefer j over i.
			var add int64
			rest := ^(s | 1<<i) & (size - 1)
			for t := rest; t != 0; t &= t - 1 {
				j := bits.TrailingZeros(uint(t))
				add += int64(pref[j][i])
			}
			ns := s | 1<<i
			if c := dp[s] + add; c < dp[ns] {
				dp[ns] = c
				parent[ns] = int8(i)
			}
		}
	}
	// parent[s] is the item placed last (deepest) among the set s, so
	// walking down from the full set fills the ranking bottom-up.
	out := make(perm.Perm, n)
	s := size - 1
	for r := n - 1; r >= 0; r-- {
		i := int(parent[s])
		out[r] = i
		s &^= 1 << i
	}
	return out, dp[size-1], nil
}

// Footrule returns the ranking minimizing the total Spearman footrule
// distance to the votes, via one minimum-cost assignment of items to
// positions with cost Σ_votes |pos_vote(item) − position|. Polynomial
// and a 2-approximation of the Kemeny optimum (Diaconis–Graham).
func Footrule(votes []perm.Perm) (perm.Perm, int64, error) {
	n, err := validateVotes(votes)
	if err != nil {
		return nil, 0, err
	}
	if n == 0 {
		return perm.Perm{}, 0, nil
	}
	positions := make([]perm.Perm, len(votes))
	for i, v := range votes {
		positions[i] = v.Positions()
	}
	cost := make([][]float64, n)
	for item := 0; item < n; item++ {
		row := make([]float64, n)
		for p := 0; p < n; p++ {
			var c float64
			for _, pos := range positions {
				c += math.Abs(float64(pos[item] - p))
			}
			row[p] = c
		}
		cost[item] = row
	}
	match, total, err := assignment.Solve(cost)
	if err != nil {
		return nil, 0, err
	}
	out := make(perm.Perm, n)
	for item, p := range match {
		out[p] = item
	}
	return out, int64(math.Round(total)), nil
}

// Borda returns the items ordered by mean rank across the votes (ties
// by item id). A 5-approximation of Kemeny and the classic consistent
// estimator of a Mallows center.
func Borda(votes []perm.Perm) (perm.Perm, error) {
	n, err := validateVotes(votes)
	if err != nil {
		return nil, err
	}
	sums := make([]int64, n)
	for _, v := range votes {
		for r, item := range v {
			sums[item] += int64(r)
		}
	}
	out := perm.Identity(n)
	sort.SliceStable(out, func(a, b int) bool { return sums[out[a]] < sums[out[b]] })
	return out, nil
}

// Copeland returns the items ordered by pairwise-majority wins (a win
// is a majority of votes preferring the item; ties count half). Ties in
// the win score break by item id.
func Copeland(votes []perm.Perm) (perm.Perm, error) {
	n, err := validateVotes(votes)
	if err != nil {
		return nil, err
	}
	pref := prefCounts(votes, n)
	score := make([]float64, n)
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a == b {
				continue
			}
			switch {
			case pref[a][b] > pref[b][a]:
				score[a]++
			case pref[a][b] == pref[b][a]:
				score[a] += 0.5
			}
		}
	}
	out := perm.Identity(n)
	sort.SliceStable(out, func(a, b int) bool { return score[out[a]] > score[out[b]] })
	return out, nil
}
