package aggregate

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mallows"
	"repro/internal/perm"
	"repro/internal/rankdist"
)

func randomVotes(rng *rand.Rand, n, count int) []perm.Perm {
	votes := make([]perm.Perm, count)
	for i := range votes {
		votes[i] = perm.Random(n, rng)
	}
	return votes
}

// bruteKemeny enumerates all permutations.
func bruteKemeny(t *testing.T, votes []perm.Perm) (perm.Perm, int64) {
	t.Helper()
	var best perm.Perm
	bestCost := int64(math.MaxInt64)
	perm.All(len(votes[0]), func(p perm.Perm) bool {
		c, err := KemenyCost(p, votes)
		if err != nil {
			t.Fatal(err)
		}
		if c < bestCost {
			bestCost = c
			best = p.Clone()
		}
		return true
	})
	return best, bestCost
}

func TestKemenyExactMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(5) // 2..6
		votes := randomVotes(rng, n, 1+rng.Intn(7))
		_, wantCost := bruteKemeny(t, votes)
		got, cost, err := KemenyExact(votes)
		if err != nil {
			t.Fatal(err)
		}
		if err := got.Validate(); err != nil {
			t.Fatal(err)
		}
		if cost != wantCost {
			t.Fatalf("Kemeny cost %d, brute %d (votes=%v)", cost, wantCost, votes)
		}
		// The reported cost must match the actual cost of the ranking.
		actual, err := KemenyCost(got, votes)
		if err != nil {
			t.Fatal(err)
		}
		if actual != cost {
			t.Fatalf("reported %d, ranking costs %d", cost, actual)
		}
	}
}

func TestKemenyExactUnanimous(t *testing.T) {
	v := perm.MustNew(3, 1, 0, 2)
	got, cost, err := KemenyExact([]perm.Perm{v.Clone(), v.Clone(), v.Clone()})
	if err != nil {
		t.Fatal(err)
	}
	if cost != 0 || !got.Equal(v) {
		t.Fatalf("unanimous aggregate = %v (cost %d), want %v", got, cost, v)
	}
}

func TestKemenyExactLimits(t *testing.T) {
	if _, _, err := KemenyExact(nil); err == nil {
		t.Error("accepted no votes")
	}
	big := []perm.Perm{perm.Identity(MaxKemenyItems + 1)}
	if _, _, err := KemenyExact(big); err == nil {
		t.Error("accepted oversized instance")
	}
	if _, _, err := KemenyExact([]perm.Perm{perm.Identity(3), perm.Identity(4)}); err == nil {
		t.Error("accepted ragged votes")
	}
	if _, _, err := KemenyExact([]perm.Perm{{0, 0, 1}}); err == nil {
		t.Error("accepted invalid vote")
	}
}

// bruteFootrule enumerates all permutations for the footrule objective.
func bruteFootrule(t *testing.T, votes []perm.Perm) int64 {
	t.Helper()
	best := int64(math.MaxInt64)
	perm.All(len(votes[0]), func(p perm.Perm) bool {
		var total int64
		for _, v := range votes {
			f, err := rankdist.Footrule(p, v)
			if err != nil {
				t.Fatal(err)
			}
			total += f
		}
		if total < best {
			best = total
		}
		return true
	})
	return best
}

func TestFootruleMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(5)
		votes := randomVotes(rng, n, 1+rng.Intn(6))
		want := bruteFootrule(t, votes)
		got, cost, err := Footrule(votes)
		if err != nil {
			t.Fatal(err)
		}
		if err := got.Validate(); err != nil {
			t.Fatal(err)
		}
		if cost != want {
			t.Fatalf("footrule cost %d, brute %d", cost, want)
		}
		var actual int64
		for _, v := range votes {
			f, err := rankdist.Footrule(got, v)
			if err != nil {
				t.Fatal(err)
			}
			actual += f
		}
		if actual != cost {
			t.Fatalf("reported %d, ranking costs %d", cost, actual)
		}
	}
}

func TestFootruleTwoApproxOfKemeny(t *testing.T) {
	// Diaconis–Graham per vote: KT ≤ footrule ≤ 2·KT, so the footrule
	// median's Kemeny cost is at most twice the Kemeny optimum.
	rng := rand.New(rand.NewSource(82))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(4)
		votes := randomVotes(rng, n, 3+rng.Intn(5))
		fr, _, err := Footrule(votes)
		if err != nil {
			t.Fatal(err)
		}
		frCost, err := KemenyCost(fr, votes)
		if err != nil {
			t.Fatal(err)
		}
		_, opt, err := KemenyExact(votes)
		if err != nil {
			t.Fatal(err)
		}
		if frCost > 2*opt {
			t.Fatalf("footrule median Kemeny cost %d > 2×optimum %d", frCost, opt)
		}
	}
}

func TestBordaRecoversMallowsCenter(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	truth := perm.Random(9, rng)
	model, err := mallows.New(truth, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Borda(model.SampleN(3000, rng))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(truth) {
		t.Fatalf("Borda %v, want Mallows center %v", got, truth)
	}
	if _, err := Borda(nil); err == nil {
		t.Error("accepted no votes")
	}
}

func TestCopelandCondorcetWinnerFirst(t *testing.T) {
	// Item 0 beats everything pairwise in a majority of votes.
	votes := []perm.Perm{
		perm.MustNew(0, 1, 2, 3),
		perm.MustNew(0, 2, 3, 1),
		perm.MustNew(0, 3, 1, 2),
		perm.MustNew(1, 0, 2, 3),
	}
	got, err := Copeland(votes)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 {
		t.Fatalf("Condorcet winner not first: %v", got)
	}
	if _, err := Copeland(nil); err == nil {
		t.Error("accepted no votes")
	}
}

func TestAggregatorsAgreeOnUnanimity(t *testing.T) {
	v := perm.MustNew(2, 4, 0, 3, 1)
	votes := []perm.Perm{v.Clone(), v.Clone()}
	k, _, err := KemenyExact(votes)
	if err != nil {
		t.Fatal(err)
	}
	f, _, err := Footrule(votes)
	if err != nil {
		t.Fatal(err)
	}
	bo, err := Borda(votes)
	if err != nil {
		t.Fatal(err)
	}
	co, err := Copeland(votes)
	if err != nil {
		t.Fatal(err)
	}
	for _, got := range []perm.Perm{k, f, bo, co} {
		if !got.Equal(v) {
			t.Fatalf("unanimous aggregate = %v, want %v", got, v)
		}
	}
}
