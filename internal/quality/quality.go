// Package quality implements the ranking quality measures of §III-D:
// Cumulative Gain, Discounted Cumulative Gain, Ideal DCG, and Normalized
// DCG.
//
// Scores are indexed by item: scores[i] is the relevance/quality score of
// item i, and a ranking is a perm.Perm listing items by rank. The paper
// writes the discount as 1/log(1+i) with ranks starting at 1; the log
// base cancels in NDCG (DCG and IDCG scale by the same constant), so this
// package uses log₂, the information-retrieval convention.
package quality

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/perm"
)

// Scores holds one relevance score per item, indexed by item id.
type Scores []float64

// Validate rejects NaN scores, which would poison every aggregate.
func (s Scores) Validate() error {
	for i, v := range s {
		if math.IsNaN(v) {
			return fmt.Errorf("quality: score of item %d is NaN", i)
		}
	}
	return nil
}

// Discount maps a 1-based rank to its gain multiplier.
type Discount func(rank int) float64

// LogDiscount is the standard DCG discount 1/log₂(1+rank).
func LogDiscount(rank int) float64 {
	return 1 / math.Log2(float64(1+rank))
}

// UnitDiscount weighs every rank equally, turning DCG into CG.
func UnitDiscount(rank int) float64 { return 1 }

// CG returns the cumulative gain of the top-k prefix: the plain sum of
// the scores of the first k items. k is clamped to the ranking length.
func CG(p perm.Perm, s Scores, k int) (float64, error) {
	return DCGWith(p, s, k, UnitDiscount)
}

// DCG returns the discounted cumulative gain of the top-k prefix with the
// standard logarithmic discount. k is clamped to the ranking length.
func DCG(p perm.Perm, s Scores, k int) (float64, error) {
	return DCGWith(p, s, k, LogDiscount)
}

// DCGWith is DCG with a caller-supplied discount.
func DCGWith(p perm.Perm, s Scores, k int, disc Discount) (float64, error) {
	if len(p) > len(s) {
		return 0, fmt.Errorf("quality: ranking has %d items but only %d scores", len(p), len(s))
	}
	if k < 0 {
		return 0, fmt.Errorf("quality: negative prefix length %d", k)
	}
	if k > len(p) {
		k = len(p)
	}
	var sum float64
	for r := 0; r < k; r++ {
		sum += s[p[r]] * disc(r+1)
	}
	return sum, nil
}

// IDCG returns the best achievable DCG over any ranking of the items that
// p ranks: the items sorted by non-increasing score. This is the paper's
// DCG(π*).
func IDCG(p perm.Perm, s Scores, k int) (float64, error) {
	return DCGWith(Ideal(p, s), s, k, LogDiscount)
}

// Ideal returns the quality-optimal ranking of the items of p: items in
// non-increasing score order. Ties keep the relative order of p (stable),
// making the result deterministic.
func Ideal(p perm.Perm, s Scores) perm.Perm {
	ideal := p.Clone()
	sort.SliceStable(ideal, func(a, b int) bool { return s[ideal[a]] > s[ideal[b]] })
	return ideal
}

// NDCG returns DCG(p)/IDCG over the top-k prefix. When IDCG is zero
// (all-zero scores) the ranking trivially achieves the ideal and NDCG is
// defined as 1.
func NDCG(p perm.Perm, s Scores, k int) (float64, error) {
	dcg, err := DCG(p, s, k)
	if err != nil {
		return 0, err
	}
	idcg, err := IDCG(p, s, k)
	if err != nil {
		return 0, err
	}
	if idcg == 0 {
		return 1, nil
	}
	return dcg / idcg, nil
}

// NDCGFull is NDCG over the entire ranking.
func NDCGFull(p perm.Perm, s Scores) (float64, error) {
	return NDCG(p, s, len(p))
}
