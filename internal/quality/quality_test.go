package quality

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/perm"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestDCGKnownValue(t *testing.T) {
	// Ranking ⟨0 1 2⟩, scores 3,2,1:
	// DCG = 3/log2(2) + 2/log2(3) + 1/log2(4) = 3 + 2/1.58496... + 0.5
	s := Scores{3, 2, 1}
	got, err := DCG(perm.Identity(3), s, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := 3 + 2/math.Log2(3) + 0.5
	if !almostEqual(got, want) {
		t.Fatalf("DCG = %v, want %v", got, want)
	}
}

func TestCGIsUnweightedSum(t *testing.T) {
	s := Scores{1, 10, 100}
	got, err := CG(perm.MustNew(2, 0, 1), s, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 101) {
		t.Fatalf("CG = %v, want 101", got)
	}
}

func TestIdealSortsDescending(t *testing.T) {
	s := Scores{1, 5, 3, 5}
	ideal := Ideal(perm.Identity(4), s)
	// Stable: both items with score 5 keep identity order (1 before 3).
	want := perm.MustNew(1, 3, 2, 0)
	if !ideal.Equal(want) {
		t.Fatalf("Ideal = %v, want %v", ideal, want)
	}
}

func TestNDCGBoundsAndOptimality(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for trial := 0; trial < 200; trial++ {
		d := 1 + rng.Intn(20)
		s := make(Scores, d)
		for i := range s {
			s[i] = rng.Float64() * 10
		}
		p := perm.Random(d, rng)
		k := 1 + rng.Intn(d)
		v, err := NDCG(p, s, k)
		if err != nil {
			t.Fatal(err)
		}
		if v < 0 || v > 1+1e-12 {
			t.Fatalf("NDCG out of [0,1]: %v", v)
		}
		// The ideal ranking achieves NDCG 1.
		one, err := NDCG(Ideal(p, s), s, k)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(one, 1) {
			t.Fatalf("NDCG of ideal = %v", one)
		}
	}
}

func TestNDCGAllZeroScores(t *testing.T) {
	v, err := NDCG(perm.Identity(5), make(Scores, 5), 5)
	if err != nil || v != 1 {
		t.Fatalf("NDCG on zero scores = %v, %v", v, err)
	}
}

func TestPrefixClampingAndErrors(t *testing.T) {
	s := Scores{1, 2, 3}
	full, err := DCG(perm.Identity(3), s, 10)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := DCG(perm.Identity(3), s, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(full, exact) {
		t.Fatalf("k clamping broken: %v vs %v", full, exact)
	}
	zero, err := DCG(perm.Identity(3), s, 0)
	if err != nil || zero != 0 {
		t.Fatalf("DCG(k=0) = %v, %v", zero, err)
	}
	if _, err := DCG(perm.Identity(3), s, -1); err == nil {
		t.Fatal("DCG accepted negative k")
	}
	if _, err := DCG(perm.Identity(4), s, 2); err == nil {
		t.Fatal("DCG accepted ranking longer than scores")
	}
}

func TestScoresValidate(t *testing.T) {
	if err := (Scores{1, 2, 3}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Scores{1, math.NaN()}).Validate(); err == nil {
		t.Fatal("Validate accepted NaN")
	}
}

func TestExtraScoresAllowed(t *testing.T) {
	// More scores than ranked items: the ranking names a subset universe
	// of size 2 over item ids {0,1} while scores covers 5 items.
	s := Scores{9, 4, 1, 1, 1}
	v, err := NDCG(perm.MustNew(1, 0), s, 2)
	if err != nil {
		t.Fatal(err)
	}
	// DCG = 4/log2(2) + 9/log2(3); IDCG = 9/log2(2) + 4/log2(3).
	want := (4 + 9/math.Log2(3)) / (9 + 4/math.Log2(3))
	if !almostEqual(v, want) {
		t.Fatalf("NDCG = %v, want %v", v, want)
	}
}

func TestQuickSwapTowardIdealImprovesDCG(t *testing.T) {
	// Swapping an adjacent out-of-score-order pair never decreases DCG.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 2 + rng.Intn(16)
		s := make(Scores, d)
		for i := range s {
			s[i] = rng.Float64()
		}
		p := perm.Random(d, rng)
		before, _ := DCG(p, s, d)
		// Find an adjacent pair with lower score first; swap it.
		for r := 0; r < d-1; r++ {
			if s[p[r]] < s[p[r+1]] {
				q := p.Clone()
				q.Swap(r, r+1)
				after, _ := DCG(q, s, d)
				return after >= before-1e-12
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
