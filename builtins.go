package fairrank

import (
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/perm"
	"repro/internal/rankers"
)

// gmallowsDecay is the per-position geometric decay of the generalized
// Mallows built-in: insertion step j uses dispersion θ·gmallowsDecay^j,
// so the head of the ranking stays close to the central while the tail
// mixes progressively more.
const gmallowsDecay = 0.97

// internalStrategy adapts an internal/rankers implementation to the
// public Strategy interface; the built-in factories use it, and it keeps
// their Rank-time behavior byte-for-byte what the pre-registry dispatch
// produced.
type internalStrategy struct {
	r rankers.Ranker
}

func (s internalStrategy) Rank(in *Instance, rng *rand.Rand) ([]int, error) {
	p, err := s.r.Rank(in.in, rng)
	return []int(p), err
}

func init() {
	// Noise mechanisms first: sampling algorithms may pin one.
	MustRegisterNoise(NoiseInfo{
		Name:        string(NoiseMallows),
		Description: "Mallows model M(central, θ) — the paper's mechanism (repeated-insertion sampling, amortized tables)",
	}, func(central []int, theta float64) (func(*rand.Rand) []int, error) {
		return adaptNoise(core.MallowsNoise{Theta: theta}, central)
	})
	MustRegisterNoise(NoiseInfo{
		Name:        string(NoiseGMallows),
		Description: "generalized Mallows (Fligner–Verducci) with per-position dispersion θ·0.97^j: the head stays close to the central, the tail mixes more",
	}, func(central []int, theta float64) (func(*rand.Rand) []int, error) {
		thetas := make([]float64, len(central))
		for j := range thetas {
			thetas[j] = theta * math.Pow(gmallowsDecay, float64(j))
		}
		return adaptNoise(core.GeneralizedMallowsNoise{Thetas: thetas}, central)
	})
	MustRegisterNoise(NoiseInfo{
		Name:        string(NoisePlackettLuce),
		Description: "Plackett–Luce with weights e^{−θ·rank} (Gumbel-max sampling); θ = 0 is uniform, large θ concentrates on the central",
	}, func(central []int, theta float64) (func(*rand.Rand) []int, error) {
		return adaptNoise(core.PlackettLuceNoise{Strength: theta}, central)
	})

	samplingTunables := []string{"central", "theta", "noise", "tolerance", "weak_k", "seed"}
	bestOfTunables := []string{"central", "criterion", "theta", "noise", "samples", "tolerance", "weak_k", "seed"}
	plTunables := []string{"central", "criterion", "theta", "samples", "tolerance", "weak_k", "seed"}
	constraintTunables := []string{"tolerance", "sigma", "seed"}

	MustRegister(AlgorithmInfo{
		Name:           string(AlgorithmMallowsBest),
		Description:    "paper Algorithm 1: best of m noise draws around the central ranking (Mallows by default; see the noise catalog)",
		AttributeBlind: true,
		Sampling:       true,
		BestOf:         true,
		Tunables:       bestOfTunables,
	}, nil)
	MustRegister(AlgorithmInfo{
		Name:           string(AlgorithmMallows),
		Description:    "paper Algorithm 1 with m = 1 (a single noise draw around the central ranking)",
		AttributeBlind: true,
		Sampling:       true,
		Tunables:       samplingTunables,
	}, nil)
	MustRegister(AlgorithmInfo{
		Name:           string(AlgorithmPlackettLuce),
		Description:    "best of m Plackett–Luce draws around the central ranking (the paper's §VI beyond-Mallows direction; θ is the concentration strength)",
		AttributeBlind: true,
		Sampling:       true,
		BestOf:         true,
		Noise:          NoisePlackettLuce,
		Tunables:       plTunables,
	}, nil)
	MustRegister(AlgorithmInfo{
		Name:          string(AlgorithmILP),
		Description:   "DCG-optimal (α,β)-fair ranking, paper §IV-B, solved exactly",
		Deterministic: true,
		SupportsSigma: true,
		Tunables:      constraintTunables,
	}, func(cfg Config) (Strategy, error) {
		return internalStrategy{rankers.ILPRanker{Sigma: cfg.Sigma}}, nil
	})
	MustRegister(AlgorithmInfo{
		Name:          string(AlgorithmDetConstSort),
		Description:   "Geyik et al., KDD'19 DetConstSort",
		Deterministic: true,
		SupportsSigma: true,
		Tunables:      constraintTunables,
	}, func(cfg Config) (Strategy, error) {
		return internalStrategy{rankers.DetConstSort{Sigma: cfg.Sigma}}, nil
	})
	MustRegister(AlgorithmInfo{
		Name:          string(AlgorithmIPF),
		Description:   "Wei et al., SIGMOD'22 ApproxMultiValuedIPF (footrule-optimal)",
		Deterministic: true,
		SupportsSigma: true,
		Tunables:      constraintTunables,
	}, func(cfg Config) (Strategy, error) {
		return internalStrategy{rankers.ApproxMultiValuedIPF{Sigma: cfg.Sigma}}, nil
	})
	MustRegister(AlgorithmInfo{
		Name:          string(AlgorithmGrBinary),
		Description:   "Wei et al., SIGMOD'22 GrBinaryIPF (Kendall-tau-optimal, exactly two groups)",
		Deterministic: true,
		MinGroups:     2,
		MaxGroups:     2,
		Tunables:      []string{"tolerance", "seed"},
	}, func(cfg Config) (Strategy, error) {
		return internalStrategy{rankers.GrBinaryIPF{}}, nil
	})
	MustRegister(AlgorithmInfo{
		Name:           string(AlgorithmScoreSorted),
		Description:    "sort by score (no-fairness baseline)",
		AttributeBlind: true,
		Deterministic:  true,
	}, func(cfg Config) (Strategy, error) {
		return internalStrategy{rankers.ScoreSorted{}}, nil
	})
}

// adaptNoise bridges a core.Noise mechanism into the public NoiseSampler
// draw shape over plain index slices.
func adaptNoise(n core.Noise, central []int) (func(*rand.Rand) []int, error) {
	draw, err := n.Sampler(perm.Perm(central))
	if err != nil {
		return nil, err
	}
	return func(rng *rand.Rand) []int { return []int(draw(rng)) }, nil
}
