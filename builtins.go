package fairrank

import (
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/perm"
	"repro/internal/rankers"
)

// gmallowsDecay is the per-position geometric decay of the generalized
// Mallows built-in: insertion step j uses dispersion θ·gmallowsDecay^j,
// so the head of the ranking stays close to the central while the tail
// mixes progressively more.
const gmallowsDecay = 0.97

// internalStrategy adapts an internal/rankers implementation to the
// public Strategy interface; the built-in factories use it, and it keeps
// their Rank-time behavior byte-for-byte what the pre-registry dispatch
// produced.
type internalStrategy struct {
	r rankers.Ranker
}

func (s internalStrategy) Rank(in *Instance, rng *rand.Rand) ([]int, error) {
	p, err := s.r.Rank(in.in, rng)
	return []int(p), err
}

func init() {
	// Noise mechanisms first: sampling algorithms may pin one.
	MustRegisterNoise(NoiseInfo{
		Name:        string(NoiseMallows),
		Description: "Mallows model M(central, θ) — the paper's mechanism (repeated-insertion sampling, amortized tables)",
		Truncated:   true,
	}, func(central []int, theta float64) (func(*rand.Rand) []int, error) {
		return adaptNoise(core.MallowsNoise{Theta: theta}, central)
	})
	MustRegisterNoise(NoiseInfo{
		Name:        string(NoiseGMallows),
		Description: "generalized Mallows (Fligner–Verducci) with per-position dispersion θ·0.97^j: the head stays close to the central, the tail mixes more",
		Truncated:   true,
	}, func(central []int, theta float64) (func(*rand.Rand) []int, error) {
		thetas := make([]float64, len(central))
		for j := range thetas {
			thetas[j] = theta * math.Pow(gmallowsDecay, float64(j))
		}
		return adaptNoise(core.GeneralizedMallowsNoise{Thetas: thetas}, central)
	})
	MustRegisterNoise(NoiseInfo{
		Name:        string(NoisePlackettLuce),
		Description: "Plackett–Luce with weights e^{−θ·rank} (Gumbel-max sampling); θ = 0 is uniform, large θ concentrates on the central",
		Truncated:   true,
	}, func(central []int, theta float64) (func(*rand.Rand) []int, error) {
		return adaptNoise(core.PlackettLuceNoise{Strength: theta}, central)
	})

	samplingTunables := []string{"central", "theta", "noise", "tolerance", "weak_k", "seed"}
	bestOfTunables := []string{"central", "criterion", "theta", "noise", "samples", "tolerance", "weak_k", "seed"}
	plTunables := []string{"central", "criterion", "theta", "samples", "tolerance", "weak_k", "seed"}
	constraintTunables := []string{"tolerance", "sigma", "seed"}

	// The Guarantees floors below are calibrated against the
	// "conformance" scenario corpus (internal/scenario) under the
	// protocol documented on the Guarantees type: θ = 1, default
	// samples and tolerance, the fair central for the sampling family,
	// fairness audited over the top-min(10, n) prefix. Each floor sits
	// below the worst mean observed across that corpus — adversarial
	// all-minority-at-bottom and heavily tied pools included — with
	// enough margin that sampling noise cannot trip it, and close
	// enough that a behavioral regression does.
	MustRegister(AlgorithmInfo{
		Name:           string(AlgorithmMallowsBest),
		Description:    "paper Algorithm 1: best of m noise draws around the central ranking (Mallows by default; see the noise catalog)",
		AttributeBlind: true,
		Sampling:       true,
		BestOf:         true,
		Tunables:       bestOfTunables,
		// The NDCG selection criterion trades fairness for quality, so
		// the fairness floor sits below the single-draw mallows entry.
		Guarantees: Guarantees{MinMeanPPfair: 40, MinMeanNDCG: 0.94},
	}, nil)
	MustRegister(AlgorithmInfo{
		Name:           string(AlgorithmMallows),
		Description:    "paper Algorithm 1 with m = 1 (a single noise draw around the central ranking)",
		AttributeBlind: true,
		Sampling:       true,
		Tunables:       samplingTunables,
		Guarantees:     Guarantees{MinMeanPPfair: 75, MinMeanNDCG: 0.90},
	}, nil)
	MustRegister(AlgorithmInfo{
		Name:           string(AlgorithmPlackettLuce),
		Description:    "best of m Plackett–Luce draws around the central ranking (the paper's §VI beyond-Mallows direction; θ is the concentration strength)",
		AttributeBlind: true,
		Sampling:       true,
		BestOf:         true,
		Noise:          NoisePlackettLuce,
		Tunables:       plTunables,
		Guarantees:     Guarantees{MinMeanPPfair: 55, MinMeanNDCG: 0.94},
	}, nil)
	MustRegister(AlgorithmInfo{
		Name:          string(AlgorithmILP),
		Description:   "DCG-optimal (α,β)-fair ranking, paper §IV-B, solved exactly",
		Deterministic: true,
		SupportsSigma: true,
		Tunables:      constraintTunables,
		Guarantees:    Guarantees{MinMeanPPfair: 99, MinMeanNDCG: 0.90},
	}, func(cfg Config) (Strategy, error) {
		return internalStrategy{rankers.ILPRanker{Sigma: cfg.Sigma}}, nil
	})
	MustRegister(AlgorithmInfo{
		Name:          string(AlgorithmDetConstSort),
		Description:   "Geyik et al., KDD'19 DetConstSort",
		Deterministic: true,
		SupportsSigma: true,
		Tunables:      constraintTunables,
		// DetConstSort enforces only the lower representation bounds,
		// so the two-sided audit can fail most prefixes on skewed
		// adversarial pools; the floor reflects that known limitation.
		Guarantees: Guarantees{MinMeanPPfair: 15, MinMeanNDCG: 0.95},
	}, func(cfg Config) (Strategy, error) {
		return internalStrategy{rankers.DetConstSort{Sigma: cfg.Sigma}}, nil
	})
	MustRegister(AlgorithmInfo{
		Name:          string(AlgorithmIPF),
		Description:   "Wei et al., SIGMOD'22 ApproxMultiValuedIPF (footrule-optimal)",
		Deterministic: true,
		SupportsSigma: true,
		Tunables:      constraintTunables,
		Guarantees:    Guarantees{MinMeanPPfair: 99, MinMeanNDCG: 0.90},
	}, func(cfg Config) (Strategy, error) {
		return internalStrategy{rankers.ApproxMultiValuedIPF{Sigma: cfg.Sigma}}, nil
	})
	MustRegister(AlgorithmInfo{
		Name:          string(AlgorithmGrBinary),
		Description:   "Wei et al., SIGMOD'22 GrBinaryIPF (Kendall-tau-optimal, exactly two groups)",
		Deterministic: true,
		MinGroups:     2,
		MaxGroups:     2,
		Tunables:      []string{"tolerance", "seed"},
		Guarantees:    Guarantees{MinMeanPPfair: 99, MinMeanNDCG: 0.95},
	}, func(cfg Config) (Strategy, error) {
		return internalStrategy{rankers.GrBinaryIPF{}}, nil
	})
	MustRegister(AlgorithmInfo{
		Name:        string(AlgorithmExPostFair),
		Description: "Gorantla et al., IJCAI'23-style ex-post group-fair sampler: every draw satisfies the (α,β) prefix bounds, randomness lives in the group sequence",
		// Randomized (each Rank draw is a fresh group sequence) but not
		// Sampling: it never goes through a noise mechanism around a
		// central ranking — fairness comes from the constraint table.
		Tunables: []string{"tolerance", "seed"},
		// Fairness is structural: a feasible table is satisfied on every
		// prefix of every draw, so mean PPfair is 100 minus nothing.
		// Quality is what it costs — the group sequence ignores scores
		// beyond within-group order; the worst conformance-corpus mean
		// NDCG observed is ≈0.87 (g4-skewed-tied-adversarial).
		Guarantees: Guarantees{MinMeanPPfair: 99, MinMeanNDCG: 0.85},
	}, func(cfg Config) (Strategy, error) {
		return internalStrategy{rankers.ExPostFair{}}, nil
	})
	MustRegister(AlgorithmInfo{
		Name:           string(AlgorithmScoreSorted),
		Description:    "sort by score (no-fairness baseline)",
		AttributeBlind: true,
		Deterministic:  true,
		// The baseline promises quality only: it is the score-ideal
		// order, so its NDCG is 1 by construction.
		Guarantees: Guarantees{MinMeanNDCG: 0.999},
	}, func(cfg Config) (Strategy, error) {
		return internalStrategy{rankers.ScoreSorted{}}, nil
	})
}

// adaptNoise bridges a core.Noise mechanism into the public NoiseSampler
// draw shape over plain index slices.
func adaptNoise(n core.Noise, central []int) (func(*rand.Rand) []int, error) {
	draw, err := n.Sampler(perm.Perm(central))
	if err != nil {
		return nil, err
	}
	return func(rng *rand.Rand) []int { return []int(draw(rng)) }, nil
}
