package fairrank

import (
	"context"
	"testing"
)

// softPool lifts pool(n) into fractional memberships: every candidate
// keeps 80% of its mass on its hard group and spreads 20% on the other.
func softPool(n int) []Candidate {
	out := pool(n)
	for i := range out {
		other := "b"
		if out[i].Group == "b" {
			other = "a"
		}
		out[i].Membership = map[string]float64{out[i].Group: 0.8, other: 0.2}
	}
	return out
}

func TestMembershipAddsProbabilisticDiagnostics(t *testing.T) {
	r, err := NewRanker(Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Do(context.Background(), Request{Candidates: softPool(12)})
	if err != nil {
		t.Fatal(err)
	}
	pd := res.Diagnostics.Probabilistic
	if pd == nil {
		t.Fatal("membership request returned no probabilistic diagnostics")
	}
	if pd.ExpectedPPfair < 0 || pd.ExpectedPPfair > 100 {
		t.Fatalf("ExpectedPPfair = %v", pd.ExpectedPPfair)
	}
	if pd.ExpectedDisparateExposure < 0 || pd.ExpectedDisparateExposure > 1 {
		t.Fatalf("ExpectedDisparateExposure = %v", pd.ExpectedDisparateExposure)
	}
	if pd.ExpectedExposureGap < 0 || pd.ExpectedExposureGap > 1 {
		t.Fatalf("ExpectedExposureGap = %v", pd.ExpectedExposureGap)
	}

	// Without membership the block must stay absent: hard-label requests
	// keep their historical response shape.
	res, err = r.Do(context.Background(), Request{Candidates: pool(12)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Diagnostics.Probabilistic != nil {
		t.Fatal("hard-label request grew probabilistic diagnostics")
	}
}

// TestMembershipOneHotMatchesDeterministic: one-hot memberships must
// reproduce the deterministic audit bit for bit — the library-level face
// of the fairness layer's one-hot equivalence guarantee.
func TestMembershipOneHotMatchesDeterministic(t *testing.T) {
	r, err := NewRanker(Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	hard := pool(16)
	soft := pool(16)
	for i := range soft {
		soft[i].Membership = map[string]float64{soft[i].Group: 1}
	}
	a, err := r.Do(context.Background(), Request{Candidates: hard})
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Do(context.Background(), Request{Candidates: soft})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Ranking {
		if a.Ranking[i].ID != b.Ranking[i].ID {
			t.Fatalf("one-hot membership changed the ranking at %d: %q vs %q", i, a.Ranking[i].ID, b.Ranking[i].ID)
		}
	}
	pd := b.Diagnostics.Probabilistic
	if pd == nil {
		t.Fatal("one-hot membership request returned no probabilistic diagnostics")
	}
	if pd.ExpectedPPfair != a.Diagnostics.PPfair {
		t.Fatalf("ExpectedPPfair %v != PPfair %v", pd.ExpectedPPfair, a.Diagnostics.PPfair)
	}
	if pd.ExpectedInfeasibleIndex != a.Diagnostics.InfeasibleIndex {
		t.Fatalf("ExpectedInfeasibleIndex %d != InfeasibleIndex %d", pd.ExpectedInfeasibleIndex, a.Diagnostics.InfeasibleIndex)
	}
}

// TestMembershipExtendsGroupUniverse: a group named only inside a
// Membership map joins the constraint universe even though no candidate
// carries it as a hard label.
func TestMembershipExtendsGroupUniverse(t *testing.T) {
	cands := []Candidate{
		{ID: "x", Score: 3, Group: "a", Membership: map[string]float64{"a": 0.6, "c": 0.4}},
		{ID: "y", Score: 2, Group: "a"},
		{ID: "z", Score: 1, Group: "b"},
	}
	r, err := NewRanker(Config{Algorithm: AlgorithmScoreSorted})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Do(context.Background(), Request{Candidates: cands})
	if err != nil {
		t.Fatal(err)
	}
	if res.Diagnostics.Probabilistic == nil {
		t.Fatal("no probabilistic diagnostics")
	}
	// Group "c" exists only probabilistically; its expected share is
	// 0.4/3, and the audit must have accounted for three groups without
	// tripping any internal bounds mismatch (reaching here is the test).
}

func TestMembershipTopKPrefixAudit(t *testing.T) {
	r, err := NewRanker(Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Do(context.Background(), Request{Candidates: softPool(20), TopK: iptr(5)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ranking) != 5 {
		t.Fatalf("ranked %d, want 5", len(res.Ranking))
	}
	if res.Diagnostics.Probabilistic == nil {
		t.Fatal("top-k membership request returned no probabilistic diagnostics")
	}
}
