package fairrank

import (
	"fmt"
	"math"
	"reflect"
	"sync"
	"testing"
)

// rankerEqualPools returns candidate pools of several sizes for the
// equivalence tests.
func rankerEqualPools(t *testing.T) [][]Candidate {
	t.Helper()
	return [][]Candidate{
		germanPool(t, 8),
		germanPool(t, 40),
		germanPool(t, 100),
	}
}

// The Ranker's contract is bit-for-bit equivalence with the package
// function: for every algorithm and seed, Ranker.Rank must return
// exactly what Rank returns.
func TestRankerMatchesRank(t *testing.T) {
	configs := []Config{
		{Algorithm: AlgorithmMallows, Theta: 0.5},
		{Algorithm: AlgorithmMallowsBest},
		{Algorithm: AlgorithmMallowsBest, Criterion: CriterionKT, Theta: 2},
		{Algorithm: AlgorithmMallowsBest, Central: CentralScoreOrder, Samples: 5},
		{Algorithm: AlgorithmMallowsBest, Central: CentralFairDCG, Criterion: CriterionKT},
		{Algorithm: AlgorithmScoreSorted},
		{Algorithm: AlgorithmDetConstSort},
		{Algorithm: AlgorithmIPF},
		{Algorithm: AlgorithmILP},
	}
	for _, cfg := range configs {
		cfg := cfg
		t.Run(string(cfg.Algorithm)+"/"+string(cfg.Criterion), func(t *testing.T) {
			r, err := NewRanker(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, pool := range rankerEqualPools(t) {
				for seed := int64(0); seed < 4; seed++ {
					cfgSeeded := cfg
					cfgSeeded.Seed = seed
					want, err := Rank(pool, cfgSeeded)
					if err != nil {
						t.Fatal(err)
					}
					// Twice per seed: the second call exercises the warm
					// caches and pooled buffers.
					for rep := 0; rep < 2; rep++ {
						got, err := r.Rank(pool, seed)
						if err != nil {
							t.Fatal(err)
						}
						if !sameRanking(got, want) {
							t.Fatalf("n=%d seed=%d rep=%d: Ranker %v, Rank %v",
								len(pool), seed, rep, ids(got), ids(want))
						}
					}
				}
			}
		})
	}
}

func TestRankerConcurrentUse(t *testing.T) {
	r, err := NewRanker(Config{Algorithm: AlgorithmMallowsBest, Theta: 1, Samples: 10})
	if err != nil {
		t.Fatal(err)
	}
	pool := germanPool(t, 60)
	want, err := r.Rank(pool, 7)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := r.Rank(pool, 7)
			if err != nil {
				errs <- err
				return
			}
			if !sameRanking(got, want) {
				errs <- fmt.Errorf("concurrent result diverged: %v vs %v", ids(got), ids(want))
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// RankParallel must be deterministic in the seed and invariant in the
// worker count — only the seed may change the result.
func TestRankParallelDeterministic(t *testing.T) {
	r, err := NewRanker(Config{Algorithm: AlgorithmMallowsBest, Theta: 1, Samples: 16})
	if err != nil {
		t.Fatal(err)
	}
	pool := germanPool(t, 50)
	base, err := r.RankParallel(pool, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 7, 16, 64} {
		got, err := r.RankParallel(pool, 3, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !sameRanking(got, base) {
			t.Fatalf("workers=%d changed the result: %v vs %v", workers, ids(got), ids(base))
		}
	}
	other, err := r.RankParallel(pool, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sameRanking(other, base) {
		t.Fatal("different seeds produced identical rankings (suspicious for m=16, n=50)")
	}
}

// Non-sampling algorithms fall back to the sequential path, so
// RankParallel and Rank agree exactly there.
func TestRankParallelFallback(t *testing.T) {
	for _, cfg := range []Config{
		{Algorithm: AlgorithmScoreSorted},
		{Algorithm: AlgorithmILP},
		{Algorithm: AlgorithmMallows, Theta: 1},
	} {
		r, err := NewRanker(cfg)
		if err != nil {
			t.Fatal(err)
		}
		pool := germanPool(t, 20)
		want, err := r.Rank(pool, 9)
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.RankParallel(pool, 9, 8)
		if err != nil {
			t.Fatal(err)
		}
		if !sameRanking(got, want) {
			t.Fatalf("%s: fallback diverged from Rank", cfg.Algorithm)
		}
	}
}

func TestNewRankerRejectsInvalid(t *testing.T) {
	cases := []Config{
		{Algorithm: "frobnicate"},
		{Algorithm: AlgorithmMallowsBest, Criterion: "splines"},
		{Central: "midpoint"},
		{Theta: -1},
		{Theta: math.NaN()},
		{Samples: -3},
		{Tolerance: -0.2},
		{Tolerance: math.NaN()},
		{Sigma: -1},
		{Sigma: math.NaN()},
	}
	for _, cfg := range cases {
		if _, err := NewRanker(cfg); err == nil {
			t.Errorf("NewRanker(%+v) accepted invalid config", cfg)
		}
	}
}

func TestRankerWarm(t *testing.T) {
	r, err := NewRanker(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Warm(10, 100, 1000); err != nil {
		t.Fatal(err)
	}
	pool := germanPool(t, 100)
	if _, err := r.Rank(pool, 1); err != nil {
		t.Fatal(err)
	}
}

// Beyond maxSizeStates distinct pool sizes the cache stays bounded
// (evicting an old entry per new key) and ranking stays equivalent to
// Rank — a burst of junk (n, θ) keys cannot lock later traffic out of
// the amortization.
func TestRankerSizeCacheCap(t *testing.T) {
	r, err := NewRanker(Config{Theta: 1, Samples: 3})
	if err != nil {
		t.Fatal(err)
	}
	sizes := make([]int, maxSizeStates)
	for i := range sizes {
		sizes[i] = i + 2
	}
	if err := r.Warm(sizes...); err != nil {
		t.Fatal(err)
	}
	if got := r.numStates.Load(); got != maxSizeStates {
		t.Fatalf("cached %d size states, want %d", got, maxSizeStates)
	}
	// A fresh size past the cap must rank correctly, evicting rather
	// than growing.
	pool := germanPool(t, maxSizeStates+10)
	want, err := Rank(pool, Config{Theta: 1, Samples: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Rank(pool, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !sameRanking(got, want) {
		t.Fatal("over-cap ranking diverged from Rank")
	}
	if n := r.numStates.Load(); n != maxSizeStates {
		t.Fatalf("cache grew past the cap: %d", n)
	}
}

// The Stats hook counts what the engine actually did: requests served,
// draws executed, and table-cache hits/misses — the counters the
// serving layer's /v1/metrics aggregates.
func TestRankerStats(t *testing.T) {
	pool := germanPool(t, 20)
	r, err := NewRanker(Config{Algorithm: AlgorithmMallowsBest, Samples: 5})
	if err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); !reflect.DeepEqual(st, RankerStats{}) {
		t.Fatalf("fresh Ranker has nonzero stats: %+v", st)
	}
	for seed := int64(0); seed < 3; seed++ {
		if _, err := r.Rank(pool, seed); err != nil {
			t.Fatal(err)
		}
	}
	st := r.Stats()
	if st.Requests != 3 {
		t.Errorf("requests = %d, want 3", st.Requests)
	}
	if st.Draws != 15 {
		t.Errorf("draws = %d, want 15 (3 requests × 5 samples)", st.Draws)
	}
	if st.TableMisses != 1 || st.TableHits != 2 {
		t.Errorf("table hits/misses = %d/%d, want 2/1", st.TableHits, st.TableMisses)
	}
	// A second pool size pays exactly one more table build.
	if _, err := r.Rank(germanPool(t, 35), 1); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.TableMisses != 2 {
		t.Errorf("table misses after a new size = %d, want 2", st.TableMisses)
	}
	// Deterministic algorithms draw nothing.
	det, err := NewRanker(Config{Algorithm: AlgorithmScoreSorted})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := det.Rank(pool, 1); err != nil {
		t.Fatal(err)
	}
	if st := det.Stats(); st.Requests != 1 || st.Draws != 0 {
		t.Errorf("deterministic stats %+v, want 1 request, 0 draws", st)
	}
}

func sameRanking(a, b []Candidate) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			return false
		}
	}
	return true
}

func ids(c []Candidate) []string {
	out := make([]string, len(c))
	for i, x := range c {
		out[i] = x.ID
	}
	return out
}
